// Quantization speedup harness (DESIGN.md §8): every fixed-point kernel is
// benchmarked against its float32 counterpart on identical inputs so
// `go test -bench=BenchmarkQuantSpeedup` regenerates the int8-vs-float
// record wholesale (scripts/bench_quant.sh distills it into
// BENCH_quant.json). The fused conv and FC kernels are the headline: the
// ISSUE floor is >=1.5x over float, and platform.QuantSpeedup documents the
// modeled operating-point ratio those numbers back.
package sov

import (
	"math/rand"
	"testing"

	"sov/internal/detect"
	"sov/internal/isp"
	"sov/internal/nn"
	"sov/internal/vision"
)

// quantBenchConv builds a float conv and its calibrated int8 twin over a
// perception-sized activation (16ch 48x64 -> 32ch, 3x3 stride 1).
func quantBenchConv() (*nn.Conv2D, *nn.QConv2D, *nn.Tensor) {
	rng := rand.New(rand.NewSource(11))
	conv := nn.NewConv2D(16, 32, 3, 1, 1, true, rng)
	in := nn.NewTensor(16, 48, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%13)/13 - 0.4
	}
	out := conv.Forward(in)
	lo, hi := out.Data[0], out.Data[0]
	for _, v := range out.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	qc := nn.NewQConv2D(conv, nn.ChooseQuantParams(-0.4, 0.6), nn.ChooseQuantParams(lo, hi))
	return conv, qc, in
}

// quantBenchFC mirrors quantBenchConv for the fully-connected kernel
// (256 -> 128 with fused ReLU).
func quantBenchFC() (*nn.FC, *nn.QFC, *nn.Tensor) {
	rng := rand.New(rand.NewSource(12))
	fc := nn.NewFC(256, 128, true, rng)
	in := nn.NewTensor(256, 1, 1)
	for i := range in.Data {
		in.Data[i] = float32(i%17)/17 - 0.3
	}
	out := fc.Forward(in)
	lo, hi := out.Data[0], out.Data[0]
	for _, v := range out.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	qf := nn.NewQFC(fc, nn.ChooseQuantParams(-0.3, 0.7), nn.ChooseQuantParams(lo, hi))
	return fc, qf, in
}

// BenchmarkQuantSpeedup pairs each quantized kernel with its float32
// counterpart; the per-kernel speedups come from dividing the paired
// ns/op figures (scripts/bench_quant.sh automates this).
func BenchmarkQuantSpeedup(b *testing.B) {
	b.Run("conv/float32", func(b *testing.B) {
		conv, _, in := quantBenchConv()
		oc, oh, ow := conv.OutShape(in.C, in.H, in.W)
		out := nn.NewTensor(oc, oh, ow)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.ForwardInto(in, out)
		}
	})
	b.Run("conv/int8", func(b *testing.B) {
		_, qc, in := quantBenchConv()
		qin := nn.GetQTensor(in.C, in.H, in.W, qc.InP)
		nn.QuantizeTensorInto(qin, in)
		oc, oh, ow := qc.OutShape(in.C, in.H, in.W)
		qout := nn.GetQTensor(oc, oh, ow, qc.OutParams())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qc.ForwardInto(qin, qout)
		}
		b.StopTimer()
		nn.PutQTensor(qout)
		nn.PutQTensor(qin)
	})
	b.Run("fc/float32", func(b *testing.B) {
		fc, _, in := quantBenchFC()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fc.Forward(in)
		}
	})
	b.Run("fc/int8", func(b *testing.B) {
		_, qf, in := quantBenchFC()
		qin := nn.GetQTensor(in.C, 1, 1, qf.InP)
		nn.QuantizeTensorInto(qin, in)
		qout := nn.GetQTensor(qf.Out, 1, 1, qf.OutParams())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qf.ForwardInto(qin, qout)
		}
		b.StopTimer()
		nn.PutQTensor(qout)
		nn.PutQTensor(qin)
	})
	b.Run("isp/float32", func(b *testing.B) {
		left, _ := benchStereoPair(256, 192)
		cfg := isp.DefaultPixelPipeline()
		out := vision.NewImage(left.W, left.H)
		blur := vision.NewImage(left.W, left.H)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg.ProcessInto(out, blur, left)
		}
	})
	b.Run("isp/int8", func(b *testing.B) {
		left, _ := benchStereoPair(256, 192)
		q := isp.DefaultPixelPipeline().Quantized()
		in := vision.QuantizeImage(left)
		out := vision.NewQImage(in.W, in.H)
		blur := vision.NewQImage(in.W, in.H)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.ProcessInto(out, blur, in)
		}
	})
	b.Run("stereo/float32", func(b *testing.B) {
		left, right := benchStereoPair(128, 96)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vision.BlockMatch(left, right, 12, 3)
		}
	})
	b.Run("stereo/int8", func(b *testing.B) {
		leftF, rightF := benchStereoPair(128, 96)
		left, right := vision.QuantizeImage(leftF), vision.QuantizeImage(rightF)
		var m vision.DisparityMap
		var s vision.StereoScratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vision.BlockMatchQuantInto(&m, left, right, 12, 3, &s)
		}
	})
	b.Run("detect-e2e/float32", func(b *testing.B) {
		model := nn.NewTinyYOLO(56, 72, 3, 11)
		in := nn.NewTensor(1, 56, 72)
		for i := range in.Data {
			in.Data[i] = float32(i%11) / 11
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			detect.RunCNN(model, in, 0.35, 0.5)
		}
	})
	b.Run("detect-e2e/int8", func(b *testing.B) {
		model := nn.NewTinyYOLO(56, 72, 3, 11)
		calib := nn.NewTensor(1, 56, 72)
		for i := range calib.Data {
			calib.Data[i] = float32(i%7) / 7
		}
		qm := nn.QuantizeYOLO(model, calib)
		in := nn.NewTensor(1, 56, 72)
		for i := range in.Data {
			in.Data[i] = float32(i%11) / 11
		}
		var s detect.QuantDetectScratch
		var boxes []detect.BBox
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			boxes = detect.RunQuantCNNInto(boxes, qm, in, 0.35, 0.5, &s)
		}
	})
	b.Run("detect-batch4/int8", func(b *testing.B) {
		model := nn.NewTinyYOLO(56, 72, 3, 11)
		calib := nn.NewTensor(1, 56, 72)
		for i := range calib.Data {
			calib.Data[i] = float32(i%7) / 7
		}
		qm := nn.QuantizeYOLO(model, calib)
		inputs := make([]*nn.Tensor, 4)
		for cam := range inputs {
			ti := nn.NewTensor(1, 56, 72)
			for i := range ti.Data {
				ti.Data[i] = float32((i*(cam+3))%11) / 11
			}
			inputs[cam] = ti
		}
		var s detect.QuantDetectScratch
		var out [][]detect.BBox
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = detect.RunQuantCNNBatch(out, qm, inputs, 0.35, 0.5, &s)
		}
	})
}
