package sov

// Integration tests: the real algorithm implementations chained across
// module boundaries on rendered synthetic scenes — renderer → corners →
// descriptors → stereo depth → tracking → planning — verifying that the
// pieces compose the way the SoV's proactive path composes them.

import (
	"math"
	"testing"
	"time"

	"sov/internal/canbus"
	"sov/internal/detect"
	"sov/internal/fusion"
	"sov/internal/mathx"
	"sov/internal/nn"
	"sov/internal/planning"
	"sov/internal/sensors"
	"sov/internal/track"
	"sov/internal/vehicle"
	"sov/internal/vision"
)

// TestVisionPerceptionChain renders a stereo scene with a crossing object,
// estimates its depth with the ELAS-style matcher, tracks it with KCF over
// several frames, and verifies the recovered motion matches ground truth.
func TestVisionPerceptionChain(t *testing.T) {
	rig := vision.DefaultStereoRig()
	objZ := 6.0
	makeScene := func(x float64) vision.Scene {
		return vision.Scene{
			Background: 3, BgDepth: 30,
			Boxes: []vision.Box{{X: x, Y: 0, Z: objZ, W: 1.8, H: 1.8, Texture: 17}},
		}
	}

	// Depth from the stereo pair at the first frame.
	left, right := makeScene(0).RenderStereo(rig)
	m := vision.SupportPointStereo(left, right, 12, 3, 8, 3)
	cx, cy := int(rig.Intr.Cx), int(rig.Intr.Cy)
	med, ok := vision.MedianDisparityIn(m, cx-15, cy-15, cx+15, cy+15)
	if !ok {
		t.Fatal("no disparity on the object")
	}
	depth := rig.DepthFromDisparity(float64(med))
	if math.Abs(depth-objZ) > 0.5 {
		t.Fatalf("stereo depth = %.2f, want %.2f", depth, objZ)
	}

	// Track the object across frames with KCF; 0.05 m/frame at 6 m with
	// f=120 is 1 px/frame.
	k := track.NewKCF(32)
	k.Init(left, rig.Intr.Cx, rig.Intr.Cy)
	lastX := rig.Intr.Cx
	for i := 1; i <= 6; i++ {
		im := makeScene(0.05*float64(i)).Render(rig.Intr, 0)
		r := k.Update(im)
		if !r.OK {
			t.Fatalf("KCF lost the object at frame %d", i)
		}
		lastX = r.X
	}
	wantShift := 0.05 * 6 / objZ * rig.Intr.Fx // ≈ 6 px
	if math.Abs(lastX-rig.Intr.Cx-wantShift) > 2 {
		t.Fatalf("tracked shift = %.1f px, want ~%.1f", lastX-rig.Intr.Cx, wantShift)
	}

	// Pixel velocity → metric lateral velocity at the stereo depth.
	framePeriod := 1.0 / 30
	pxPerFrame := (lastX - rig.Intr.Cx) / 6
	lateralV := pxPerFrame * depth / rig.Intr.Fx / framePeriod
	if math.Abs(lateralV-1.5) > 0.4 { // 0.05 m/frame * 30 fps
		t.Fatalf("recovered lateral velocity = %.2f m/s, want ~1.5", lateralV)
	}
}

// TestKeyframeFrontEndChain exercises the two RPR front-end variants the
// way the localization pipeline alternates them: ORB extraction on the key
// frame, pyramidal LK tracking of the same features on subsequent frames,
// with descriptor matching as the relocalization check.
func TestKeyframeFrontEndChain(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	s0 := vision.Scene{Background: 5, BgDepth: 12,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	s1 := vision.Scene{Background: 5, BgDepth: 12,
		Boxes: []vision.Box{{X: 0.1, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	key := s0.Render(intr, 0)
	next := s1.Render(intr, 0)

	// Key frame: extract + describe.
	corners, descs := vision.ExtractAndDescribe(key, 40)
	if len(corners) < 10 {
		t.Fatalf("corners = %d", len(corners))
	}
	// Non-key frame: track the corners with pyramidal LK.
	pk := vision.NewPyramid(key, 3)
	pn := vision.NewPyramid(next, 3)
	tracked := 0
	for _, c := range corners {
		if c.X < 30 || c.X > 130 || c.Y < 25 || c.Y > 95 {
			continue
		}
		r := vision.TrackLKPyramid(pk, pn, float64(c.X), float64(c.Y), 4, 20)
		if r.OK {
			tracked++
		}
	}
	if tracked < 5 {
		t.Fatalf("tracked only %d features into the non-key frame", tracked)
	}
	// Relocalization check: descriptors re-extracted on the next frame
	// must match back to the key frame.
	_, nextDescs := vision.ExtractAndDescribe(next, 40)
	matches := vision.MatchORB(nextDescs, descs, 60)
	if len(matches) < 5 {
		t.Fatalf("only %d descriptor matches for relocalization", len(matches))
	}
}

// TestPerceptionToActuationChain runs detection → radar fusion → MPC →
// CAN encoding → ECU → vehicle dynamics as one pipeline tick and verifies
// a breaking-distance-critical object actually slows the vehicle.
func TestPerceptionToActuationChain(t *testing.T) {
	// Fused perception output: a stopped object 7 m dead ahead.
	det := detect.Object{ID: 1, Range: 7, Pos: mathx.Vec2{X: 7}, Radius: 0.5}
	radarTrack := track.RadarTrack{ID: 1, Pos: mathx.Vec2{X: 6.9}, Vel: mathx.Vec2{}}
	matches, ud, _ := fusion.SpatialSync(fusion.SpatialSyncConfig{MaxDistance: 1.5},
		[]detect.Object{det}, []track.RadarTrack{radarTrack})
	fused := fusion.FuseAll(matches, ud)
	if len(fused) != 1 || !fused[0].FromRadar {
		t.Fatalf("fusion failed: %+v", fused)
	}

	// Plan against it.
	mpc := planning.NewMPC(planning.DefaultMPCConfig())
	in := planning.Input{Speed: 5.6, TargetSpeed: 5.6, LaneWidth: 3}
	in.Obstacles = []planning.Obstacle{{
		S: fused[0].Object.Pos.X, D: fused[0].Object.Pos.Y,
		VS: fused[0].Velocity.X, VD: fused[0].Velocity.Y, Radius: 2.0,
	}}
	plan := mpc.Plan(in)
	if plan.Cmd.AccelMps2 >= 0 {
		t.Fatalf("planner did not brake for a blocking object: %+v", plan.Cmd)
	}

	// Ship the command across the bus into the ECU and integrate.
	frame, err := canbus.EncodeCommand(canbus.IDControlCommand, plan.Cmd)
	if err != nil {
		t.Fatal(err)
	}
	veh := vehicle.New(vehicle.DefaultParams(), vehicle.State{Speed: 5.6})
	ecu := vehicle.NewECU(veh)
	if err := ecu.Receive(frame); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		veh.Step(10 * time.Millisecond)
	}
	if veh.State().Speed >= 5.6 {
		t.Fatal("vehicle did not slow down after the braking command")
	}
}

// TestCNNOnRenderedScene runs the real CNN inference + NMS on a rendered
// frame, confirming the full compute path digests vision-substrate input.
func TestCNNOnRenderedScene(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 5, BgDepth: 20,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 5, W: 2, H: 2, Texture: 9}}}
	im := scene.Render(intr, 0)
	model := nn.NewTinyYOLO(im.H, im.W, 4, 42)
	boxes := detect.RunCNN(model, nn.FromImage(im), 0.3, 0.5)
	for _, b := range boxes {
		if b.X0 < -0.1 || b.X1 > 1.1 || b.Score < 0 || b.Score > 1 {
			t.Fatalf("malformed box: %+v", b)
		}
	}
}

// TestSensorToFilterChain feeds real IMU samples and landmark observations
// through the VIO filter while the vehicle model drives a curve, verifying
// estimator-vehicle agreement without any harness shortcuts.
func TestSensorToFilterChain(t *testing.T) {
	_ = sensors.DefaultIMUConfig() // exercised heavily in internal/vio tests
	// The chain-level property: the SoV public API runs the full stack.
	w := CruiseScenario(5)
	rep := NewSystem(DefaultConfig(), w).Run(15 * time.Second)
	if rep.Cycles < 100 || rep.Collisions != 0 {
		t.Fatalf("public-API chain failed: cycles=%d collisions=%d", rep.Cycles, rep.Collisions)
	}
}

// TestStereoToStixelToPlannerChain drives dense SGM stereo into stixel
// extraction and hands the resulting object candidates to the planner —
// the vision-only perception path with no oracle anywhere.
func TestStereoToStixelToPlannerChain(t *testing.T) {
	rig := vision.DefaultStereoRig()
	scene := vision.Scene{Boxes: []vision.Box{
		{X: -0.4, Y: 0, Z: 5, W: 1.2, H: 1.6, Texture: 11},
	}}
	left, right := scene.RenderStereo(rig)
	m := vision.SGM(left, right, vision.DefaultSGMConfig())
	g := vision.GroundModelFor(rig, 1.2)
	objs := vision.GroupStixels(
		vision.ExtractStixels(m, rig, g, 1.0, 1.5, 8), rig, 1.2, 6)
	if len(objs) != 1 {
		t.Fatalf("stixel objects = %d, want 1", len(objs))
	}
	if math.Abs(objs[0].Depth-5) > 1 {
		t.Fatalf("stixel depth = %.2f, want ~5", objs[0].Depth)
	}

	mpc := planning.NewMPC(planning.DefaultMPCConfig())
	in := planning.Input{Speed: 5.6, TargetSpeed: 5.6, LaneWidth: 3}
	in.Obstacles = []planning.Obstacle{{
		S: objs[0].Depth, D: objs[0].LateralM, Radius: 1.5,
	}}
	plan := mpc.Plan(in)
	if plan.Cmd.AccelMps2 >= -0.5 {
		t.Fatalf("planner ignored a stereo-detected obstacle at 5 m: %+v", plan.Cmd)
	}
}

// TestDetectCropClassifyChain crops a detected region from a rendered frame
// and pushes it through the CNN classifier — the per-object classification
// refinement stage, end to end on real pixels.
func TestDetectCropClassifyChain(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 5, BgDepth: 20,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 5, W: 1.5, H: 1.5, Texture: 13}}}
	im := scene.Render(intr, 0)
	crop := im.Crop(int(intr.Cx), int(intr.Cy), 32, 32)
	clf := nn.NewClassifier(32, 32, 4, 7)
	p := clf.Classify(nn.FromImage(crop))
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Different crops produce different distributions (the net is not
	// degenerate).
	p2 := clf.Classify(nn.FromImage(im.Crop(20, 20, 32, 32)))
	same := true
	for i := range p {
		if p[i] != p2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("classifier is input-independent")
	}
}
