// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the paper-vs-measured record), plus component
// benchmarks for the real algorithm implementations. Reported custom
// metrics carry the figure's headline quantity so `go test -bench=.`
// regenerates the evaluation wholesale.
package sov

import (
	"testing"
	"time"

	"sov/internal/cachesim"
	"sov/internal/core"
	"sov/internal/detect"
	"sov/internal/experiments"
	"sov/internal/fusion"
	"sov/internal/mathx"
	"sov/internal/models"
	"sov/internal/platform"
	"sov/internal/pointcloud"
	"sov/internal/rpr"
	"sov/internal/sensors"
	"sov/internal/sensorsync"
	"sov/internal/sim"
	"sov/internal/track"
	"sov/internal/vio"
	"sov/internal/vision"
	"sov/internal/world"
)

// --- Fig. 2 / Eq. 1: end-to-end latency model -------------------------------

func BenchmarkFig2LatencyModel(b *testing.B) {
	m := models.DefaultLatencyModel()
	var d float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d = m.StoppingDistance(164 * time.Millisecond)
	}
	b.ReportMetric(d, "stop_m@164ms")
	b.ReportMetric(m.BrakingDistance(), "braking_floor_m")
}

// --- Fig. 3a: computing latency requirement vs distance ---------------------

func BenchmarkFig3aLatencyRequirement(b *testing.B) {
	m := models.DefaultLatencyModel()
	var pts []models.RequirementPoint
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts = gatherFig3a(m)
	}
	b.ReportMetric(pts[0].Budget.Seconds()*1000, "budget_ms@4.5m")
	b.ReportMetric(m.AvoidableDistance(164*time.Millisecond), "avoid_m@164ms")
	b.ReportMetric(m.AvoidableDistance(740*time.Millisecond), "avoid_m@740ms")
}

func gatherFig3a(m models.LatencyModel) []models.RequirementPoint {
	return m.RequirementCurve(4.5, 10, 12)
}

// --- Fig. 3b: reduced driving time vs PAD -----------------------------------

func BenchmarkFig3bDrivingTime(b *testing.B) {
	em := models.DefaultEnergyModel()
	base := models.DefaultPowerBudget().TotalKW()
	var cur float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur = em.ReducedDrivingTimeHours(base)
	}
	b.ReportMetric(cur, "reduced_h_current")
	b.ReportMetric(em.ReducedDrivingTimeHours(base+0.092), "reduced_h_lidar")
	b.ReportMetric(em.ReducedDrivingTimeHours(base+0.031), "reduced_h_idle_server")
	b.ReportMetric(em.ReducedDrivingTimeHours(base+0.118), "reduced_h_full_server")
}

// --- Table I / Table II ------------------------------------------------------

func BenchmarkTable1PowerBreakdown(b *testing.B) {
	var total float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total = models.DefaultPowerBudget().TotalW()
	}
	b.ReportMetric(total, "PAD_W")
}

func BenchmarkTable2CostBreakdown(b *testing.B) {
	var ratio float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ratio = models.DefaultLiDARVehicleCost().SensorTotalUSD() /
			models.DefaultCameraVehicleCost().SensorTotalUSD()
	}
	b.ReportMetric(ratio, "lidar_vs_camera_sensor_x")
	b.ReportMetric(models.DefaultTCO().CostPerTripUSD(), "usd_per_trip")
}

// --- Fig. 4a: irregular point reuse ------------------------------------------

func BenchmarkFig4aPointReuse(b *testing.B) {
	rng := sim.NewRNG(11)
	scan := pointcloud.GenerateScan(3000, 100, rng.Fork())
	moved := scan.Transform(0.03, mathx.Vec3{X: 0.3})
	var spread float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree := pointcloud.Build(scan, nil)
		pointcloud.Localize(tree, moved, nil, 15, 2)
		min, max := 1<<30, 0
		for _, r := range tree.Reuse {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		spread = float64(max) / float64(min+1)
	}
	b.ReportMetric(spread, "reuse_max/min")
}

// --- Fig. 4b: off-chip memory traffic ----------------------------------------

func BenchmarkFig4bMemoryTraffic(b *testing.B) {
	rng := sim.NewRNG(12)
	scan := pointcloud.GenerateScan(3000, 42, rng.Fork())
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.2})
	var loc, seg float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cachesim.New(cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8})
		tree := pointcloud.Build(scan, c)
		c.Reset()
		pointcloud.Localize(tree, moved, c, 10, 2)
		loc = c.Stats().TrafficRatio()

		c2 := cachesim.New(cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8})
		tree2 := pointcloud.Build(scan, c2)
		c2.Reset()
		pointcloud.Segment(tree2, scan, c2, 0.6, 20)
		seg = c2.Stats().TrafficRatio()
	}
	b.ReportMetric(loc, "localization_traffic_x")
	b.ReportMetric(seg, "segmentation_traffic_x")
}

// --- Fig. 6: platform latency / energy ---------------------------------------

func BenchmarkFig6aPlatformLatency(b *testing.B) {
	var tx2 time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx2 = platform.TX2CumulativePerception()
	}
	cat := platform.Catalog()
	b.ReportMetric(tx2.Seconds()*1000, "tx2_cumulative_ms")
	b.ReportMetric(cat["FPGA"].Latency[platform.TaskLocalization].Seconds()*1000, "fpga_loc_ms")
	b.ReportMetric(cat["GPU"].Latency[platform.TaskDetection].Seconds()*1000, "gpu_det_ms")
}

func BenchmarkFig6bPlatformEnergy(b *testing.B) {
	cat := platform.Catalog()
	var e float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, _ = cat["CPU"].Energy(platform.TaskDepth)
	}
	b.ReportMetric(e, "cpu_depth_J")
	eg, _ := cat["GPU"].Energy(platform.TaskDetection)
	et, _ := cat["TX2"].Energy(platform.TaskDetection)
	b.ReportMetric(et/eg, "tx2_vs_gpu_det_energy_x")
}

// --- Fig. 8: mapping strategies ----------------------------------------------

func BenchmarkFig8MappingStrategies(b *testing.B) {
	var results []platform.PerceptionResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results = platform.ExploreMappings()
	}
	best := results[0].PerceptionLatency
	worstGPU := time.Duration(0)
	for _, r := range results {
		if r.Mapping.SceneUnderstanding == "GPU" && r.Mapping.Localization == "GPU" {
			worstGPU = r.PerceptionLatency
		}
	}
	b.ReportMetric(best.Seconds()*1000, "our_perception_ms")
	b.ReportMetric(float64(worstGPU)/float64(best), "fpga_offload_speedup_x")
}

// --- Fig. 9: RPR engine -------------------------------------------------------

func BenchmarkFig9RPREngine(b *testing.B) {
	eng := rpr.NewEngine(rpr.DefaultEngineConfig())
	var r rpr.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r = eng.Transfer(rpr.BitstreamFeatureExtract.Bytes)
	}
	b.ReportMetric(r.Throughput/1e6, "engine_MBps")
	b.ReportMetric(r.Duration.Seconds()*1000, "swap_ms")
	b.ReportMetric(r.EnergyJ*1000, "swap_mJ")
	cpu := rpr.DefaultCPUDriven().Transfer(rpr.BitstreamFeatureExtract.Bytes)
	b.ReportMetric(cpu.Duration.Seconds()/r.Duration.Seconds(), "vs_cpu_x")
}

// --- Fig. 10: end-to-end characterization -------------------------------------

func BenchmarkFig10aLatencyDistribution(b *testing.B) {
	var rep *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		w := core.CruiseScenario(3)
		rep = core.New(cfg, w).Run(60 * time.Second)
	}
	b.ReportMetric(rep.Tcomp.Mean(), "tcomp_mean_ms")
	b.ReportMetric(rep.Tcomp.Min(), "tcomp_best_ms")
	b.ReportMetric(rep.Tcomp.Quantile(0.99), "tcomp_p99_ms")
	b.ReportMetric(100*rep.ComputeShare(), "compute_share_pct")
	b.ReportMetric(100*rep.SensingShare(), "sensing_share_pct")
	b.ReportMetric(100*rep.ProactiveFraction, "proactive_pct")
}

func BenchmarkFig10bPerceptionTasks(b *testing.B) {
	var rep *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		w := core.CruiseScenario(3)
		rep = core.New(cfg, w).Run(60 * time.Second)
	}
	b.ReportMetric(rep.Depth.Mean(), "depth_ms")
	b.ReportMetric(rep.Detection.Mean(), "detection_ms")
	b.ReportMetric(rep.Tracking.Mean(), "tracking_ms")
	b.ReportMetric(rep.Localization.Median(), "localization_p50_ms")
	b.ReportMetric(rep.Localization.Std(), "localization_std_ms")
}

// --- Fig. 11a: depth error vs stereo sync error --------------------------------

func BenchmarkFig11aDepthVsSync(b *testing.B) {
	var e30, e90 float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e30 = sensorsync.DepthErrorAtOffset(30*time.Millisecond, 5, 1.2, 25)
		e90 = sensorsync.DepthErrorAtOffset(90*time.Millisecond, 5, 1.2, 25)
	}
	b.ReportMetric(e30, "depth_err_m@30ms")
	b.ReportMetric(e90, "depth_err_m@90ms")
}

// --- Fig. 11b: localization vs camera-IMU sync error ---------------------------

func BenchmarkFig11bLocalizationVsSync(b *testing.B) {
	cfg := vio.DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.GyroBias = 0
	imuCfg.AccelBias = 0
	w := world.NewRing(20, sim.NewRNG(8))
	traj := vio.CircleTrajectory(20, 5.6)
	var synced, off40 vio.RunResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synced = vio.RunTrajectory(cfg, imuCfg, traj, w,
			vio.RunOptions{Duration: 40 * time.Second}, sim.NewRNG(9))
		off40 = vio.RunTrajectory(cfg, imuCfg, traj, w,
			vio.RunOptions{Duration: 40 * time.Second, CameraTimestampOffset: 40 * time.Millisecond}, sim.NewRNG(9))
	}
	b.ReportMetric(synced.Errors.Mean(), "err_m_synced")
	b.ReportMetric(off40.Errors.Mean(), "err_m@40ms")
	b.ReportMetric(off40.MaxError, "err_m_max@40ms")
}

// --- Fig. 12: synchronization architecture -------------------------------------

func BenchmarkFig12HardwareSync(b *testing.B) {
	var sw, hw sensorsync.PairingResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw = sensorsync.SoftwareSyncExperiment(10*time.Second, sim.NewRNG(13))
		hw = sensorsync.HardwareSyncExperiment(10*time.Second, sim.NewRNG(13))
	}
	b.ReportMetric(sw.MeanMs, "sw_pairing_err_ms")
	b.ReportMetric(hw.MeanMs, "hw_pairing_err_ms")
}

// --- Throughput / reactive path / planner comparison ---------------------------

func BenchmarkThroughputPipeline(b *testing.B) {
	var rep *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		rep = core.New(cfg, core.CruiseScenario(5)).Run(30 * time.Second)
	}
	b.ReportMetric(rep.ThroughputHz, "commands_hz")
}

func BenchmarkReactivePath(b *testing.B) {
	var out core.CutInOutcome
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = core.RunSuddenObstacle(core.DefaultConfig(), 4.5, 25*time.Second)
	}
	collided := 0.0
	if out.Collided {
		collided = 1
	}
	b.ReportMetric(collided, "collided@4.5m")
	b.ReportMetric(out.MinClearanceM, "clearance_m")
}

func BenchmarkPlannerComparisonMPC(b *testing.B) {
	m := newBenchMPC()
	in := benchPlanInput()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Plan(in)
	}
}

func BenchmarkPlannerComparisonEM(b *testing.B) {
	e := newBenchEM()
	in := benchPlanInput()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Plan(in)
	}
}

// --- Sec. VI-B: fusion / spatial sync vs KCF ------------------------------------

func BenchmarkFusionGPSVIO(b *testing.B) {
	g := fusion.NewGPSVIO()
	fix := sensors.GPSFix{Pos: mathx.Vec2{X: 100}, Valid: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Update(time.Duration(i)*100*time.Millisecond, mathx.Vec2{X: 99.5}, fix)
	}
}

func BenchmarkSpatialSync(b *testing.B) {
	cfg := fusion.DefaultSpatialSyncConfig()
	var dets []detect.Object
	var tracks []track.RadarTrack
	for i := 0; i < 8; i++ {
		dets = append(dets, detect.Object{ID: i, Pos: mathx.Vec2{X: 10 + float64(i), Y: float64(i % 3)}})
		tracks = append(tracks, track.RadarTrack{ID: i, Pos: mathx.Vec2{X: 8.8 + float64(i), Y: float64(i % 3)}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fusion.SpatialSync(cfg, dets, tracks)
	}
}

func BenchmarkKCFTrackerStep(b *testing.B) {
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 2, BgDepth: 25,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 6, W: 1.8, H: 1.8, Texture: 17}}}
	im := scene.Render(intr, 0)
	k := track.NewKCF(32)
	k.Init(im, intr.Cx, intr.Cy)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Update(im)
	}
}

// --- Full regeneration pass ------------------------------------------------------

func BenchmarkAllExperimentsReport(b *testing.B) {
	if testing.Short() {
		b.Skip("full pass")
	}
	var out string
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = experiments.All(1, 30*time.Second, 2000)
	}
	b.ReportMetric(float64(len(out)), "report_bytes")
}

// --- Ablations: what each design choice buys in the end-to-end system ---------

func ablationRun(mutate func(*core.Config)) *core.Report {
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg, core.CruiseScenario(3)).Run(60 * time.Second)
}

func BenchmarkAblationNoFPGAOffload(b *testing.B) {
	var ours, shared *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ours = ablationRun(nil)
		shared = ablationRun(func(c *core.Config) { c.FPGAOffload = false })
	}
	b.ReportMetric(shared.Perception.Mean()/ours.Perception.Mean(), "perception_inflation_x")
	b.ReportMetric(shared.Tcomp.Mean()/ours.Tcomp.Mean(), "tcomp_inflation_x")
}

func BenchmarkAblationSoftwareSync(b *testing.B) {
	var hw, sw *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hw = ablationRun(nil)
		sw = ablationRun(func(c *core.Config) { c.HardwareSync = false })
	}
	b.ReportMetric(sw.Sensing.Mean()-hw.Sensing.Mean(), "sensing_penalty_ms")
}

func BenchmarkAblationKCFTracking(b *testing.B) {
	var radar, kcf *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		radar = ablationRun(nil)
		kcf = ablationRun(func(c *core.Config) { c.RadarTracking = false })
	}
	b.ReportMetric(kcf.Tracking.Mean()/radar.Tracking.Mean(), "tracking_inflation_x")
}

func BenchmarkAblationEMPlanner(b *testing.B) {
	var mpc, em *core.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mpc = ablationRun(nil)
		em = ablationRun(func(c *core.Config) { c.EMPlanner = true })
	}
	b.ReportMetric(em.Planning.Mean()/mpc.Planning.Mean(), "planning_inflation_x")
	b.ReportMetric(em.Tcomp.Mean()-mpc.Tcomp.Mean(), "tcomp_penalty_ms")
}

func BenchmarkAblationNoReactivePath(b *testing.B) {
	var with, without core.CutInOutcome
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		with = core.RunSuddenObstacle(core.DefaultConfig(), 4.5, 25*time.Second)
		cfg := core.DefaultConfig()
		cfg.ReactivePath = false
		without = core.RunSuddenObstacle(cfg, 4.5, 25*time.Second)
	}
	b.ReportMetric(with.MinClearanceM, "clearance_with_m")
	b.ReportMetric(without.MinClearanceM, "clearance_without_m")
}
