// Determinism and identity contracts of the online heterogeneous scheduler
// (DESIGN.md §13). The scheduler observes latencies, projects thermal state,
// and rewrites the latency-draw transform every cycle window — all on the
// engine thread, in cycle order, from virtual-time inputs only — so a
// sched-attached run must stay bit-identical across worker counts and
// control-loop modes. And because its deployed-point multipliers are exactly
// 1.0, a calm cruise with the scheduler holding every decision must be
// byte-identical to the scheduler-off baseline.
package sov

import (
	"bytes"
	"testing"
	"time"

	"sov/internal/core"
)

// schedCruise runs the 5 s reference cruise with the online scheduler
// attached, under the given worker count and control-loop mode. An empty
// mapping starts from the deployed GPU/FPGA point.
func schedCruise(t *testing.T, workers int, pipelined bool, mapping string) (string, *core.Report) {
	t.Helper()
	var buf bytes.Buffer
	var rep *core.Report
	atWorkers(workers, func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 4
		cfg.Pipeline = pipelined
		// Keep the staged dataflow under test even on a single-CPU host.
		cfg.PipelineForce = pipelined
		cfg.Sched = true
		cfg.SchedMapping = mapping
		s := core.New(cfg, core.CruiseScenario(4))
		tr := core.NewTracer(&buf)
		s.AttachTracer(tr)
		rep = s.Run(5 * time.Second)
		if _, err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return buf.String(), rep
}

// TestCoreSimulationSchedDeterministicAcrossModes: with the scheduler in the
// loop, serial and pipelined runs at worker counts 1 and 8 must produce
// bit-identical traces and reports — the scheduler's EWMAs, thermal
// projection, and window decisions all live on the engine thread.
func TestCoreSimulationSchedDeterministicAcrossModes(t *testing.T) {
	ref, repRef := schedCruise(t, 1, false, "")
	if repRef.Sched == nil {
		t.Fatal("sched run did not record scheduler stats")
	}
	for _, c := range []struct {
		workers   int
		pipelined bool
	}{{1, true}, {8, false}, {8, true}} {
		tr, rep := schedCruise(t, c.workers, c.pipelined, "")
		if tr != ref {
			t.Fatalf("sched trace at workers=%d pipeline=%v differs from serial workers=1",
				c.workers, c.pipelined)
		}
		assertSameCruise(t, repRef, rep)
	}
}

// TestSchedSteadyStateIdentity pins the scheduler's zero-overhead contract:
// under the calm cruise the thermal model never nears its ceiling, every
// window decision holds the deployed GPU/FPGA float point, and the draw
// multipliers are exactly 1.0 — so the trace must match the scheduler-off
// baseline byte for byte. The second half proves the knob is not inert: the
// same cruise pinned to the contended GPU/GPU start must draw different
// latencies (the contention factor inflates scene understanding) and the
// online scheduler must remap away from it.
func TestSchedSteadyStateIdentity(t *testing.T) {
	off, _ := tracedCruise(t, 1, false)
	on, _ := schedCruise(t, 1, false, "")
	if on != off {
		t.Fatal("scheduler-attached steady cruise diverges from the scheduler-off baseline; the deployed-point multipliers are not exact")
	}

	contended, rep := schedCruise(t, 1, false, "GPU/GPU")
	if contended == off {
		t.Fatal("GPU/GPU-pinned sched trace identical to baseline; the mapping knob is inert")
	}
	if rep.Sched == nil || rep.Sched.Remaps < 1 {
		t.Fatalf("online scheduler never remapped away from the contended GPU/GPU start: %+v", rep.Sched)
	}
	if rep.Sched.Mapping != "GPU/FPGA" {
		t.Fatalf("online scheduler converged to %s, want the deployed GPU/FPGA point", rep.Sched.Mapping)
	}
}
