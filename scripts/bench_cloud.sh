#!/bin/sh
# bench_cloud.sh — run the fleet telemetry backend benchmarks
# (BenchmarkTelemetry*) and emit a machine-readable snapshot as
# BENCH_cloud.json: the OLTP ingest path (events/sec and write
# amplification: WAL + run-rewrite bytes per user byte), the OLAP full
# scan (rows/sec and read amplification: run bytes read per result byte),
# the B+-tree kind query, and bloom-guarded point reads (DESIGN.md §14).
#
# Usage:
#   scripts/bench_cloud.sh [output.json]
#   scripts/bench_cloud.sh --check [baseline.json]
#
# Snapshot mode regenerates the JSON wholesale. Check mode is the nightly
# regression gate: it re-runs the suite (best of three) and fails if any
# benchmark's throughput fell more than 10% below the committed baseline,
# or if its amplification factor grew more than 5% (write amp growing
# means compaction is rewriting more bytes per ingested byte; read amp
# growing means scans are touching more run bytes per result byte — both
# are storage-engine regressions even when raw throughput holds).
set -eu

cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "--check" ]; then
    mode=check
    shift
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

count=1
if [ "$mode" = "check" ]; then
    count=3
fi

go test -run '^$' -bench 'BenchmarkTelemetry' -benchmem -benchtime 5x -count "$count" . | tee "$raw" >&2

# parse_bench reduces the raw output to "name ns throughput amp" lines,
# keeping the best (max) throughput across -count runs. throughput is the
# benchmark's rate metric (events/sec, rows/sec, or gets/sec); amp is its
# amplification factor (write_amp, read_amp, blocks/get; 0 if none).
parse_bench() {
    awk '
    /^BenchmarkTelemetry/ {
        name = $1
        sub(/^BenchmarkTelemetry/, "", name)
        sub(/-[0-9]+$/, "", name)
        delete m
        for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
        thr = m["events/sec"] + m["rows/sec"] + m["gets/sec"]
        amp = m["write_amp"] + m["read_amp"] + m["blocks/get"]
        if (!(name in best) || thr + 0 > best[name] + 0) {
            best[name] = thr
            ns[name] = m["ns/op"]
            am[name] = amp
        }
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        for (i = 1; i <= n; i++) {
            k = order[i]
            print k, ns[k], best[k], am[k] + 0
        }
    }
    ' "$1"
}

if [ "$mode" = "check" ]; then
    baseline="${1:-BENCH_cloud.json}"
    [ -f "$baseline" ] || { echo "bench_cloud: baseline $baseline not found" >&2; exit 2; }
    parse_bench "$raw" | awk -v baseline="$baseline" '
    BEGIN {
        while ((getline line < baseline) > 0) {
            if (line !~ /"name"/) continue
            k = line; sub(/.*"name": *"/, "", k); sub(/".*/, "", k)
            t = line; sub(/.*"throughput_per_sec": */, "", t); sub(/[,}].*/, "", t)
            a = line; sub(/.*"amplification": */, "", a); sub(/[,}].*/, "", a)
            base_thr[k] = t + 0
            base_amp[k] = a + 0
        }
    }
    {
        k = $1; thr = $3 + 0; amp = $4 + 0
        if (!(k in base_thr)) {
            printf "  %-12s %12.0f /sec  (no baseline; informational)\n", k, thr
            next
        }
        ratio = thr / base_thr[k]
        status = "ok"
        if (ratio < 0.90) { status = "REGRESSION"; bad++ }
        if (base_amp[k] > 0 && amp > base_amp[k] * 1.05) {
            status = status " AMP-REGRESSION"; bad++
        }
        printf "  %-12s %12.0f /sec vs baseline %12.0f  (%+5.1f%%, amp %.3f vs %.3f)  %s\n",
            k, thr, base_thr[k], (ratio - 1) * 100, amp, base_amp[k], status
    }
    END {
        if (bad) { print "bench_cloud: " bad " regression(s) vs " baseline; exit 1 }
        print "bench_cloud: all points within 10% throughput / 5% amplification of " baseline
    }
    '
    exit $?
fi

out="${1:-BENCH_cloud.json}"
cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
procs="$(awk '/^BenchmarkTelemetry/ { if (match($1, /-[0-9]+$/)) { print substr($1, RSTART + 1); exit } }' "$raw")"
parse_bench "$raw" | awk -v cpu="$cpu" -v procs="${procs:-1}" '
{
    printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"throughput_per_sec\": %s, \"amplification\": %s}",
        n++ ? ",\n" : "", $1, $2, $3, $4
}
BEGIN { printf "{\n  \"benchmark\": \"BenchmarkTelemetry*\",\n  \"results\": [\n" }
END   { printf "\n  ],\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s\n}\n", cpu, procs }
' > "$out"

echo "wrote $out" >&2
