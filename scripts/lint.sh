#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate: gofmt cleanliness plus the
# sovlint invariant suite (determinism, hot-path allocation, concurrency
# hygiene; see DESIGN.md §7). Exits non-zero on any finding so CI and
# pre-push hooks can use it directly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "all files formatted"

echo "== sovlint =="
go build -o /dev/null ./cmd/sovlint
go run ./cmd/sovlint "$@" ./...
echo "no findings"

echo "== sovlint -json worker invariance =="
# The determinism contract sovlint enforces also applies to sovlint: the
# machine-readable output must be byte-identical for any worker count.
j1=$(go run ./cmd/sovlint -workers 1 -json ./... ) || true
j8=$(go run ./cmd/sovlint -workers 8 -json ./... ) || true
if [ "$j1" != "$j8" ]; then
    echo "sovlint -json output differs between -workers 1 and -workers 8" >&2
    diff <(echo "$j1") <(echo "$j8") >&2 || true
    exit 1
fi
echo "json output stable across worker counts"
