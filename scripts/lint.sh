#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate: gofmt cleanliness plus the
# sovlint invariant suite (determinism, hot-path allocation, concurrency
# hygiene; see DESIGN.md §7). Exits non-zero on any finding so CI and
# pre-push hooks can use it directly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "all files formatted"

echo "== sovlint =="
go build -o /dev/null ./cmd/sovlint
go run ./cmd/sovlint "$@" ./...
echo "no findings"
