#!/bin/sh
# bench_sched.sh — regenerate the online-scheduler evaluation (DESIGN.md §13)
# as a machine-readable snapshot, BENCH_sched.json: the Fig. 6/8 mapping
# tables re-run under dynamic traffic with static pinned baselines vs the
# online scheduler (p50/p99 perception, remap/op-switch/RPR-swap counts), the
# steady-cruise overhead check, and the 3-camera batched-inference
# comparison.
#
# Usage:
#   scripts/bench_sched.sh [output.json]
#   scripts/bench_sched.sh --check [baseline.json]
#
# Unlike the wall-clock bench scripts, every number here is virtual-time
# deterministic — byte-identical for any worker count or host — so check
# mode can exact-diff the regenerated JSON against the committed baseline.
# Both modes also assert the two acceptance invariants on the fresh numbers:
# the online scheduler beats the best static mapping on p99 under the
# dynamic scenario, and costs at most 2% p50 under steady load (it is
# bit-identical there, so the measured overhead is exactly 0).
set -eu

cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "--check" ]; then
    mode=check
    shift
fi

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

go run ./cmd/sovbench -only sched-json > "$fresh"

awk '
/"name":/ {
    n = $0; sub(/.*"name": "/, "", n); sub(/".*/, "", n)
    p = $0; sub(/.*"p99_ms": /, "", p); sub(/,.*/, "", p)
    if (n ~ /^static/) { if (best == "" || p + 0 < best + 0) { best = p; bestname = n } }
    if (n == "online") online = p
}
/"delta_pct":/ {
    d = $0; sub(/.*"delta_pct": /, "", d); sub(/[,}].*/, "", d)
}
END {
    if (online == "" || best == "" || d == "") {
        print "bench_sched: rows missing from sovbench output" > "/dev/stderr"; exit 1
    }
    if (online + 0 >= best + 0) {
        printf "bench_sched: online p99 %.1f ms does not beat best static (%s, %.1f ms)\n",
            online, bestname, best > "/dev/stderr"; exit 1
    }
    if (d + 0 > 2) {
        printf "bench_sched: steady p50 overhead %+.2f%% exceeds the 2%% budget\n", d > "/dev/stderr"; exit 1
    }
    printf "bench_sched: online p99 %.1f ms beats best static (%s, %.1f ms); steady overhead %+.3f%%\n",
        online, best + 0 < online + 0 ? "?" : bestname, best, d
}
' "$fresh" >&2

if [ "$mode" = "check" ]; then
    baseline="${1:-BENCH_sched.json}"
    [ -f "$baseline" ] || { echo "bench_sched: baseline $baseline not found" >&2; exit 2; }
    if ! cmp -s "$fresh" "$baseline"; then
        echo "bench_sched: regenerated output differs from $baseline (virtual-time results are deterministic; a diff means the scheduler or model changed — regenerate the snapshot if intended):" >&2
        diff "$baseline" "$fresh" >&2 || true
        exit 1
    fi
    echo "bench_sched: regenerated output is byte-identical to $baseline" >&2
    exit 0
fi

out="${1:-BENCH_sched.json}"
cp "$fresh" "$out"
echo "wrote $out" >&2
