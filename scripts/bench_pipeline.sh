#!/bin/sh
# bench_pipeline.sh — run BenchmarkPipelineThroughput and emit a
# machine-readable snapshot as BENCH_pipeline.json (serial vs pipelined
# control loop: ns/op, allocs/op, B/op, cycles/op, cycles/sec).
#
# Usage: scripts/bench_pipeline.sh [output.json]
#
# The throughput comparison is only meaningful on a multi-core runner:
# the pipelined mode trades goroutine handoff overhead for stage overlap,
# which a single-CPU host cannot express. The JSON therefore records the
# host's processor count (GOMAXPROCS, from the benchmark name suffix)
# alongside the numbers.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkPipelineThroughput' -benchmem -benchtime 3x . | tee "$raw" >&2

awk '
BEGIN { printf "{\n  \"benchmark\": \"BenchmarkPipelineThroughput\",\n  \"results\": [\n" }
/^BenchmarkPipelineThroughput\// {
    mode = $1
    sub(/^BenchmarkPipelineThroughput\//, "", mode)
    if (match(mode, /-[0-9]+$/)) {
        procs = substr(mode, RSTART + 1)
        mode = substr(mode, 1, RSTART - 1)
    }
    delete m
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    printf "%s    {\"mode\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"cycles_per_op\": %s, \"cycles_per_sec\": %s, \"inflight_mean\": %s}",
        n++ ? ",\n" : "", mode, m["ns/op"], m["allocs/op"], m["B/op"],
        m["cycles/op"], m["cycles/sec"], m["inflight_mean"]
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "\n  ],\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s\n}\n", cpu, procs ? procs : 1
}
' "$raw" > "$out"

echo "wrote $out" >&2
