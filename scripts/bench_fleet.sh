#!/bin/sh
# bench_fleet.sh — run BenchmarkFleetThroughput and emit a machine-readable
# snapshot as BENCH_fleet.json: for every fleet-size × worker-count point,
# the epoch latency, vehicle-seconds of virtual time advanced per wall
# second, and the epoch loop's allocs/op (the zero-steady-state-allocation
# contract holds on the one-worker serial path; multi-worker rows include
# the fan-out's per-call scheduling allocations, DESIGN.md §11).
#
# Usage:
#   scripts/bench_fleet.sh [output.json]
#   scripts/bench_fleet.sh --check [baseline.json]
#
# Snapshot mode regenerates the JSON wholesale. Check mode is the nightly
# regression gate: it re-runs the sweep (best of three) and fails if any
# one-worker point's throughput fell more than 10% below the committed
# baseline, or if the one-worker epoch loop's allocs/op grew. Multi-worker
# points are reported but not gated: on a small host the fan-out's spin
# workers contend for the same cores as the measurement, which makes those
# rows far too noisy to gate on (the w=1 rows carry the substrate cost the
# gate is protecting).
#
# Worker-count scaling is only expressible on a multi-core runner — on a
# single-CPU host every w-column collapses to the serial cost plus fan-out
# overhead — so the JSON records num_cpu next to the numbers, the same
# convention as BENCH_pipeline.json.
set -eu

cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "--check" ]; then
    mode=check
    shift
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

count=1
if [ "$mode" = "check" ]; then
    count=3
fi

go test -run '^$' -bench 'BenchmarkFleetThroughput' -benchmem -benchtime 2x -count "$count" . | tee "$raw" >&2

# parse_bench reduces the raw output to "vehicles workers ns veh_sec_per_sec
# allocs" lines, keeping the best (max) throughput across -count runs.
parse_bench() {
    awk '
    /^BenchmarkFleetThroughput\// {
        name = $1
        sub(/^BenchmarkFleetThroughput\/v/, "", name)
        sub(/-[0-9]+$/, "", name)
        split(name, parts, "/w")
        key = parts[1] SUBSEP parts[2]
        delete m
        for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
        if (!(key in vs) || m["veh_sec/sec"] + 0 > vs[key] + 0) {
            vs[key] = m["veh_sec/sec"]
            ns[key] = m["ns/op"]
        }
        al[key] = m["allocs/op"]
        if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
    }
    END {
        for (i = 1; i <= n; i++) {
            split(order[i], kv, SUBSEP)
            print kv[1], kv[2], ns[order[i]], vs[order[i]], al[order[i]]
        }
    }
    ' "$1"
}

if [ "$mode" = "check" ]; then
    baseline="${1:-BENCH_fleet.json}"
    [ -f "$baseline" ] || { echo "bench_fleet: baseline $baseline not found" >&2; exit 2; }
    parse_bench "$raw" | awk -v baseline="$baseline" '
    BEGIN {
        while ((getline line < baseline) > 0) {
            if (line !~ /"vehicles"/) continue
            v = line; sub(/.*"vehicles": */, "", v); sub(/[,}].*/, "", v)
            w = line; sub(/.*"workers": */, "", w); sub(/[,}].*/, "", w)
            t = line; sub(/.*"vehicles_per_sec": */, "", t); sub(/[,}].*/, "", t)
            a = line; sub(/.*"allocs_per_epoch": */, "", a); sub(/[,}].*/, "", a)
            k = v + 0 SUBSEP w + 0
            base_vs[k] = t + 0
            base_al[k] = a + 0
        }
    }
    {
        k = $1 + 0 SUBSEP $2 + 0; vs = $4 + 0; al = $5 + 0
        label = "v" $1 "/w" $2
        if (!(k in base_vs)) {
            printf "  %-12s %10.0f veh-sec/sec  (no baseline; informational)\n", label, vs
            next
        }
        ratio = vs / base_vs[k]
        status = "ok"
        if ($2 + 0 != 1) status = "informational (not gated)"
        if ($2 + 0 == 1 && ratio < 0.90) { status = "REGRESSION"; bad++ }
        if ($2 + 0 == 1 && al > base_al[k]) { status = status " ALLOC-REGRESSION"; bad++ }
        printf "  %-12s %10.0f veh-sec/sec vs baseline %10.0f  (%+5.1f%%, allocs %d vs %d)  %s\n",
            label, vs, base_vs[k], (ratio - 1) * 100, al, base_al[k], status
    }
    END {
        if (bad) { print "bench_fleet: " bad " regression(s) vs " baseline; exit 1 }
        print "bench_fleet: all points within 10% of " baseline
    }
    '
    exit $?
fi

out="${1:-BENCH_fleet.json}"
cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
procs="$(awk '/^BenchmarkFleetThroughput\// { if (match($1, /-[0-9]+$/)) { print substr($1, RSTART + 1); exit } }' "$raw")"
parse_bench "$raw" | awk -v cpu="$cpu" -v procs="${procs:-1}" '
{
    printf "%s    {\"vehicles\": %s, \"workers\": %s, \"ns_per_epoch\": %s, \"vehicles_per_sec\": %s, \"allocs_per_epoch\": %s}",
        n++ ? ",\n" : "", $1, $2, $3, $4, $5
}
BEGIN { printf "{\n  \"benchmark\": \"BenchmarkFleetThroughput\",\n  \"results\": [\n" }
END   { printf "\n  ],\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s\n}\n", cpu, procs }
' > "$out"

echo "wrote $out" >&2
