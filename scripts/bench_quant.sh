#!/bin/sh
# bench_quant.sh — run BenchmarkQuantSpeedup and emit a machine-readable
# snapshot as BENCH_quant.json: for every perception kernel with a
# fixed-point twin (fused conv, fused FC, ISP pixel chain, stereo block
# match, end-to-end detection), the float32 and int8 ns/op, the speedup
# ratio, and the int8 path's allocs/op (the zero-steady-state-allocation
# contract, DESIGN.md §8).
#
# Usage: scripts/bench_quant.sh [output.json]
#
# The ISSUE floor is >=1.5x on the fused conv and FC kernels; the JSON is
# the committed evidence, regenerated wholesale by re-running this script.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_quant.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkQuantSpeedup' -benchmem -benchtime 500ms . | tee "$raw" >&2

awk '
/^BenchmarkQuantSpeedup\// {
    name = $1
    sub(/^BenchmarkQuantSpeedup\//, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, parts, "/")
    kernel = parts[1]; variant = parts[2]
    if (!(kernel in seen)) { order[++nk] = kernel; seen[kernel] = 1 }
    delete m
    for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
    ns[kernel, variant] = m["ns/op"]
    al[kernel, variant] = m["allocs/op"]
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"benchmark\": \"BenchmarkQuantSpeedup\",\n  \"results\": [\n"
    for (k = 1; k <= nk; k++) {
        kr = order[k]
        f = ns[kr, "float32"]; q = ns[kr, "int8"]
        printf "%s    {\"kernel\": \"%s\", \"float32_ns_per_op\": %s, \"int8_ns_per_op\": %s, \"speedup\": %.2f, \"int8_allocs_per_op\": %s}",
            (k > 1 ? ",\n" : ""), kr, f, q, f / q, al[kr, "int8"]
    }
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}
' "$raw" > "$out"

echo "wrote $out" >&2
