#!/bin/sh
# bench_quant.sh — run BenchmarkQuantSpeedup and emit a machine-readable
# snapshot as BENCH_quant.json: for every perception kernel with a
# fixed-point twin (fused conv, fused FC, ISP pixel chain, stereo block
# match, end-to-end detection), the float32 and int8 ns/op, the speedup
# ratio, and the int8 path's allocs/op (the zero-steady-state-allocation
# contract, DESIGN.md §8). Kernels without a float32 twin (the batched
# detector) record only their int8 figures.
#
# Usage:
#   scripts/bench_quant.sh [output.json]
#   scripts/bench_quant.sh --check [baseline.json]
#
# Snapshot mode regenerates the JSON wholesale. Check mode is the
# regression gate: it re-runs the int8 benches (best of three, to shave
# scheduler noise) and fails if any kernel is more than 10% slower than the
# committed baseline, or if a kernel's steady-state allocs/op grew.
set -eu

cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "--check" ]; then
    mode=check
    shift
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

count=1
if [ "$mode" = "check" ]; then
    count=3
fi

go test -run '^$' -bench 'BenchmarkQuantSpeedup' -benchmem -benchtime 500ms -count "$count" . | tee "$raw" >&2

# parse_bench reduces the raw `go test -bench` output to
# "kernel variant ns allocs" lines, keeping the minimum ns/op across
# repeated -count runs.
parse_bench() {
    awk '
    /^BenchmarkQuantSpeedup\// {
        name = $1
        sub(/^BenchmarkQuantSpeedup\//, "", name)
        sub(/-[0-9]+$/, "", name)
        split(name, parts, "/")
        key = parts[1] SUBSEP parts[2]
        delete m
        for (i = 3; i < NF; i += 2) m[$(i + 1)] = $i
        if (!(key in ns) || m["ns/op"] + 0 < ns[key] + 0) ns[key] = m["ns/op"]
        al[key] = m["allocs/op"]
        if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
    }
    END {
        for (i = 1; i <= n; i++) {
            split(order[i], kv, SUBSEP)
            print kv[1], kv[2], ns[order[i]], al[order[i]]
        }
    }
    ' "$1"
}

if [ "$mode" = "check" ]; then
    baseline="${1:-BENCH_quant.json}"
    [ -f "$baseline" ] || { echo "bench_quant: baseline $baseline not found" >&2; exit 2; }
    parse_bench "$raw" | awk -v baseline="$baseline" '
    BEGIN {
        while ((getline line < baseline) > 0) {
            if (line !~ /"kernel"/) continue
            k = line; sub(/.*"kernel": *"/, "", k); sub(/".*/, "", k)
            if (line ~ /"int8_ns_per_op"/) {
                v = line; sub(/.*"int8_ns_per_op": */, "", v); sub(/[,}].*/, "", v)
                base_ns[k] = v + 0
            }
            if (line ~ /"int8_allocs_per_op"/) {
                v = line; sub(/.*"int8_allocs_per_op": */, "", v); sub(/[,}].*/, "", v)
                base_al[k] = v + 0
            }
        }
    }
    $2 == "int8" {
        k = $1; ns = $3 + 0; al = $4 + 0
        if (!(k in base_ns)) {
            printf "  %-14s %12.0f ns/op  (no baseline; informational)\n", k, ns
            next
        }
        ratio = ns / base_ns[k]
        status = "ok"
        if (ratio > 1.10) { status = "REGRESSION"; bad++ }
        if (al > base_al[k]) { status = status " ALLOC-REGRESSION"; bad++ }
        printf "  %-14s %12.0f ns/op vs baseline %12.0f  (%+5.1f%%, allocs %d vs %d)  %s\n",
            k, ns, base_ns[k], (ratio - 1) * 100, al, base_al[k], status
    }
    END {
        if (bad) { print "bench_quant: " bad " regression(s) vs " baseline; exit 1 }
        print "bench_quant: all kernels within 10% of " baseline
    }
    '
    exit $?
fi

out="${1:-BENCH_quant.json}"
cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
parse_bench "$raw" | awk -v cpu="$cpu" '
{
    kernel = $1; variant = $2
    if (!(kernel in seen)) { order[++nk] = kernel; seen[kernel] = 1 }
    ns[kernel, variant] = $3
    al[kernel, variant] = $4
}
END {
    printf "{\n  \"benchmark\": \"BenchmarkQuantSpeedup\",\n  \"results\": [\n"
    for (k = 1; k <= nk; k++) {
        kr = order[k]
        f = ns[kr, "float32"]; q = ns[kr, "int8"]
        if (f != "")
            printf "%s    {\"kernel\": \"%s\", \"float32_ns_per_op\": %s, \"int8_ns_per_op\": %s, \"speedup\": %.2f, \"int8_allocs_per_op\": %s}",
                (k > 1 ? ",\n" : ""), kr, f, q, f / q, al[kr, "int8"]
        else
            printf "%s    {\"kernel\": \"%s\", \"int8_ns_per_op\": %s, \"int8_allocs_per_op\": %s}",
                (k > 1 ? ",\n" : ""), kr, q, al[kr, "int8"]
    }
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}
' > "$out"

echo "wrote $out" >&2
