// LiDAR vs camera: the Sec. III-D case study end to end. Runs the
// point-cloud kernels through the cache simulator to show the memory-
// irregularity problem (Fig. 4), then compares the two sensing stacks on
// latency, power, and cost — the constraint-driven reasoning behind
// abandoning LiDAR for this vehicle class.
package main

import (
	"fmt"

	"sov/internal/cachesim"
	"sov/internal/mathx"
	"sov/internal/models"
	"sov/internal/pointcloud"
	"sov/internal/sim"
)

func main() {
	fmt.Println("== LiDAR processing irregularity (Fig. 4) ==")
	rng := sim.NewRNG(7)
	scan := pointcloud.GenerateScan(4000, 42, rng.Fork())
	moved := scan.Transform(0.03, mathx.Vec3{X: 0.3})

	// Reuse irregularity.
	tree := pointcloud.Build(scan, nil)
	pointcloud.Localize(tree, moved, nil, 15, 2)
	min, max := 1<<30, 0
	for _, r := range tree.Reuse {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	fmt.Printf("point reuse during ICP localization: min %d, max %d (%.0fx spread)\n",
		min, max, float64(max)/float64(min+1))

	// Memory traffic vs optimal.
	c := cachesim.New(cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8})
	tr := pointcloud.Build(scan, c)
	c.Reset()
	pointcloud.Localize(tr, moved, c, 10, 2)
	s := c.Stats()
	fmt.Printf("off-chip traffic: %.0fx the compulsory minimum (miss rate %.0f%%)\n\n",
		s.TrafficRatio(), 100*s.MissRate())

	fmt.Println("== Constraint comparison (camera stack vs LiDAR stack) ==")
	fmt.Printf("%-28s %-22s %s\n", "", "camera (ours)", "LiDAR")
	fmt.Printf("%-28s %-22s %s\n", "localization latency", "24 ms (FPGA VIO)", "100 ms - 1 s (CPU+GPU ICP)")
	lidarW := 0.0
	for _, comp := range models.WaymoLiDARSuite() {
		lidarW += comp.TotalW()
	}
	fmt.Printf("%-28s %-22s %.0f W\n", "sensor power", "< 1 W (4 cameras)", lidarW)
	cam := models.DefaultCameraVehicleCost()
	lid := models.DefaultLiDARVehicleCost()
	fmt.Printf("%-28s $%-21.0f $%.0f\n", "sensor cost", cam.SensorTotalUSD(), lid.SensorTotalUSD())
	fmt.Printf("%-28s $%-21.0f >$%.0f\n", "vehicle retail", cam.RetailPriceUSD, lid.RetailPriceUSD)

	em := models.DefaultEnergyModel()
	base := models.DefaultPowerBudget().TotalKW()
	fmt.Printf("%-28s %-22s %.1f h\n", "driving time (6 kWh)",
		fmt.Sprintf("%.1f h", em.DrivingTimeHours(base)),
		em.DrivingTimeHours(base+lidarW/1000))

	fmt.Println("\nDepth precision: LiDAR wins (~2 cm vs ~0.2 m) — but lane-granularity")
	fmt.Println("maneuvering (1-3 m lanes) tolerates 0.2 m, so the precision is unpurchased.")
}
