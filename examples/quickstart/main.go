// Quickstart: assemble the deployed vehicle configuration, drive the cruise
// scenario for a minute of virtual time, and print the latency
// characterization — the 60-second version of the paper's Fig. 10.
package main

import (
	"fmt"
	"time"

	"sov"
)

func main() {
	world := sov.CruiseScenario(1)
	system := sov.NewSystem(sov.DefaultConfig(), world)

	report := system.Run(60 * time.Second)

	fmt.Println("== SoV quickstart: 60 s cruise ==")
	fmt.Print(report.Render())
	fmt.Printf("\nvehicle covered %.0f m, final speed %.1f m/s\n",
		system.DistanceM(), system.Speed())

	// The analytical models answer the design questions of Sec. III.
	lm := sov.DefaultLatencyModel()
	fmt.Printf("\nAt the measured mean Tcomp (%.0f ms) the vehicle avoids objects sensed >= %.1f m away.\n",
		report.Tcomp.Mean(), lm.AvoidableDistance(time.Duration(report.Tcomp.Mean()*1e6)))
}
