// Obstacle course: pedestrian cut-ins at decreasing distances show the
// three regimes of the paper's safety analysis (Sec. III-A / IV):
//
//   - far cut-ins are handled proactively by the planner;
//   - cut-ins inside the proactive envelope (~5 m at the mean latency) are
//     caught by the radar/sonar reactive path down to ~4.1 m;
//   - inside the 4 m braking floor, physics forbids avoidance.
//
// The same sweep is repeated with the reactive path disarmed to show what
// the last line of defense buys.
package main

import (
	"fmt"
	"time"

	"sov"
)

func main() {
	distances := []float64{20, 10, 7, 5.5, 4.5, 4.2, 3.0}

	fmt.Println("== Sudden-obstacle sweep (v = 5.6 m/s, braking floor 3.92 m) ==")
	fmt.Printf("%-12s | %-34s | %s\n", "appears (m)", "full system", "reactive path disarmed")
	fmt.Printf("%-12s | %-10s %-9s %-12s | %-10s %-9s %s\n",
		"", "reactive", "collided", "clearance", "reactive", "collided", "clearance")
	for _, d := range distances {
		full := sov.RunSuddenObstacle(sov.DefaultConfig(), d, 30*time.Second)

		bare := sov.DefaultConfig()
		bare.ReactivePath = false
		noReact := sov.RunSuddenObstacle(bare, d, 30*time.Second)

		fmt.Printf("%-12.1f | %-10v %-9v %-12.2f | %-10v %-9v %.2f\n",
			d, full.Reactive, full.Collided, full.MinClearanceM,
			noReact.Reactive, noReact.Collided, noReact.MinClearanceM)
	}

	lm := sov.DefaultLatencyModel()
	fmt.Printf("\nmodel check: mean-latency envelope %.2f m, reactive envelope %.2f m, floor %.2f m\n",
		lm.AvoidableDistance(164*time.Millisecond),
		lm.AvoidableDistance(30*time.Millisecond),
		lm.BrakingDistance())
}
