// Campus loop: the Fribourg-style deployment — the vehicle follows a
// rectangular route through four 90° corners using the annotated lane map
// (route handover with lookahead), while the battery model tracks what the
// trip costs the pack.
package main

import (
	"fmt"
	"time"

	"sov"
)

func main() {
	cfg := sov.DefaultConfig()
	cfg.TargetSpeed = 3.0 // corner-appropriate cruise

	world := sov.CampusLoop(80, 4)
	system := sov.NewSystem(cfg, world)

	duration := 2 * time.Minute
	report := system.Run(duration)

	fmt.Println("== Campus loop (80 m sides, 4 corners) ==")
	fmt.Printf("distance: %.0f m of the %.0f m loop in %v\n",
		system.DistanceM(), 4*80.0, duration)
	fmt.Printf("lane-keeping RMS: %.2f m (corners included)\n", report.LateralRMSM)
	fmt.Printf("collisions: %d, min clearance %.2f m\n", report.Collisions, report.MinClearance)
	fmt.Printf("reactive engagements: %d, proactive %.1f%% of time\n",
		report.ReactiveEngagements, 100*report.ProactiveFraction)
	fmt.Printf("energy: %.1f Wh for the trip (%.2f%% of the pack)\n",
		report.ADEnergyWh, 100*report.BatteryShare)

	fmt.Println("\nlatency profile on the loop:")
	fmt.Printf("  Tcomp mean %.0f ms (sensing %.0f%%, planning %.1f ms)\n",
		report.Tcomp.Mean(), 100*report.SensingShare(), report.Planning.Mean())
}
