// Sensor synchronization: reproduce the Sec. VI-A case study interactively.
// First the camera–IMU pairing error of software-only synchronization is
// compared with the hardware synchronizer; then the stereo depth error is
// measured through the real rendering + matching stack as the two cameras
// fall out of sync (Fig. 11a).
package main

import (
	"fmt"
	"time"

	"sov"
)

func main() {
	fmt.Println("== Camera-IMU pairing error (20 s of sensor data) ==")
	sw := sov.SoftwareSyncExperiment(20*time.Second, 42)
	hw := sov.HardwareSyncExperiment(20*time.Second, 42)
	fmt.Printf("software-only: mean %6.2f ms   p99 %6.2f ms   max %6.2f ms\n", sw.MeanMs, sw.P99Ms, sw.MaxMs)
	fmt.Printf("hardware sync: mean %6.2f ms   p99 %6.2f ms   max %6.2f ms\n", hw.MeanMs, hw.P99Ms, hw.MaxMs)
	fmt.Printf("improvement: %.0fx mean pairing error reduction\n\n", sw.MeanMs/hw.MeanMs)

	fmt.Println("== Stereo depth error vs inter-camera sync error (rendered) ==")
	fmt.Println("object at 5 m crossing at 1.2 m/s; ELAS-style matcher on 160x120 frames")
	fmt.Printf("%-12s %s\n", "offset (ms)", "depth error (m)")
	for _, ms := range []int{0, 15, 30, 60, 90, 120, 150} {
		err := sov.StereoDepthErrorAtOffset(time.Duration(ms) * time.Millisecond)
		bar := ""
		for i := 0; i < int(err*2.5); i++ {
			bar += "#"
		}
		fmt.Printf("%-12d %6.2f  %s\n", ms, err, bar)
	}
	fmt.Println("\nEven tens of milliseconds of desynchronization produce meter-scale depth errors,")
	fmt.Println("which is why the vehicle timestamps near the sensor, not at the application layer.")
}
