// Fleet energy and cost: the operator's view of the Sec. III models. How
// much driving time does each hardware choice cost, and what does a trip
// have to earn? Reproduces the reasoning behind Fig. 3b and Tables I/II.
package main

import (
	"fmt"

	"sov"
)

func main() {
	em := sov.DefaultEnergyModel()
	budget := sov.DefaultPowerBudget()

	fmt.Println("== Power budget (Table I) ==")
	fmt.Print(budget.Render())

	base := budget.TotalKW()
	fmt.Println("\n== Driving time per charge (6 kWh battery, Fig. 3b) ==")
	rows := []struct {
		name  string
		padKW float64
	}{
		{"no autonomy", 0},
		{"current system (175 W)", base},
		{"+1 server, idle (+31 W)", base + 0.031},
		{"+1 server, full load (+118 W)", base + 0.118},
		{"switch to Waymo-style LiDAR suite (+92 W)", base + 0.092},
	}
	for _, r := range rows {
		h := em.DrivingTimeHours(r.padKW)
		fmt.Printf("%-44s %5.2f h  (lost %4.2f h/charge)\n", r.name, h, 10-h)
	}
	fmt.Printf("\nan always-on idle server costs %.1f%% of a 10 h operating day\n",
		em.RevenueLossPercent(base, base+0.031, 10))

	fmt.Println("\n== Vehicle cost (Table II) ==")
	cam := sov.CameraVehicleCost()
	lidar := sov.LiDARVehicleCost()
	fmt.Printf("camera-based sensors: $%.0f (retail $%.0f)\n", cam.SensorTotalUSD(), cam.RetailPriceUSD)
	fmt.Printf("LiDAR-based sensors : $%.0f (retail >$%.0f)\n", lidar.SensorTotalUSD(), lidar.RetailPriceUSD)
	fmt.Printf("sensor cost ratio   : %.0fx\n", lidar.SensorTotalUSD()/cam.SensorTotalUSD())

	tco := sov.DefaultTCO()
	fmt.Printf("\n== TCO (tourist-site profile) ==\nannual: $%.0f -> break-even $%.2f per trip (site charges $1)\n",
		tco.AnnualUSD(), tco.CostPerTripUSD())
}
