module sov

go 1.22
