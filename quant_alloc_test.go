// Steady-state allocation gate for the quantized hot path (DESIGN.md §10):
// every fixed-point kernel the perception cycle leans on must allocate
// nothing once warm on the serial path. The Into variants own all scratch;
// a regression here means a kernel started reaching for the heap per frame.
package sov

import (
	"testing"

	"sov/internal/detect"
	"sov/internal/isp"
	"sov/internal/nn"
	"sov/internal/parallel"
	"sov/internal/vision"
)

// TestQuantKernelsZeroAllocSteadyState warms each kernel, then requires
// zero allocations per run with one worker (the serial paths; the parallel
// fan-outs borrow pooled buffers and are audited by sovlint instead).
func TestQuantKernelsZeroAllocSteadyState(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	kernels := []struct {
		name string
		run  func()
	}{}

	// conv: perception-shaped QConv2D through the GEMM dispatcher.
	{
		_, qc, in := quantBenchConv()
		qin := nn.GetQTensor(in.C, in.H, in.W, qc.InP)
		nn.QuantizeTensorInto(qin, in)
		oc, oh, ow := qc.OutShape(in.C, in.H, in.W)
		qout := nn.GetQTensor(oc, oh, ow, qc.OutParams())
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"conv", func() { qc.ForwardInto(qin, qout) }})
	}

	// fc: SWAR pair-dot QFC.
	{
		_, qf, in := quantBenchFC()
		qin := nn.GetQTensor(in.C, 1, 1, qf.InP)
		nn.QuantizeTensorInto(qin, in)
		qout := nn.GetQTensor(qf.Out, 1, 1, qf.OutParams())
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"fc", func() { qf.ForwardInto(qin, qout) }})
	}

	// isp: fused fixed-point pixel pipeline.
	{
		left, _ := benchStereoPair(256, 192)
		q := isp.DefaultPixelPipeline().Quantized()
		in := vision.QuantizeImage(left)
		out := vision.NewQImage(in.W, in.H)
		blur := vision.NewQImage(in.W, in.H)
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"isp", func() { q.ProcessInto(out, blur, in) }})
	}

	// stereo: SWAR block matcher into caller-owned map and scratch.
	{
		leftF, rightF := benchStereoPair(128, 96)
		left, right := vision.QuantizeImage(leftF), vision.QuantizeImage(rightF)
		var m vision.DisparityMap
		var s vision.StereoScratch
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"stereo", func() { vision.BlockMatchQuantInto(&m, left, right, 12, 3, &s) }})
	}

	// detect-e2e: quantized forward, code-domain decode, NMS.
	{
		model := nn.NewTinyYOLO(56, 72, 3, 11)
		calib := nn.NewTensor(1, 56, 72)
		for i := range calib.Data {
			calib.Data[i] = float32(i%7) / 7
		}
		qm := nn.QuantizeYOLO(model, calib)
		in := nn.NewTensor(1, 56, 72)
		for i := range in.Data {
			in.Data[i] = float32(i%11) / 11
		}
		var s detect.QuantDetectScratch
		var boxes []detect.BBox
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"detect-e2e", func() { boxes = detect.RunQuantCNNInto(boxes, qm, in, 0.35, 0.5, &s) }})

		// detect-batch4: the layer-major multi-camera runner shares the model.
		inputs := make([]*nn.Tensor, 4)
		for cam := range inputs {
			ti := nn.NewTensor(1, 56, 72)
			for i := range ti.Data {
				ti.Data[i] = float32((i*(cam+3))%11) / 11
			}
			inputs[cam] = ti
		}
		var bs detect.QuantDetectScratch
		var out [][]detect.BBox
		kernels = append(kernels, struct {
			name string
			run  func()
		}{"detect-batch4", func() { out = detect.RunQuantCNNBatch(out, qm, inputs, 0.35, 0.5, &bs) }})
	}

	for _, k := range kernels {
		k.run() // warm: scratch growth and pool population happen here
		k.run()
		if avg := testing.AllocsPerRun(20, k.run); avg > 0 {
			t.Errorf("%s: %.2f allocs/op in steady state, want 0", k.name, avg)
		}
	}
}
