// Determinism contract of the parallel compute substrate: every kernel that
// fans out over internal/parallel must produce byte-identical results for
// any worker count, so the calibrated figures regenerate unchanged whatever
// hardware runs them. Each test executes the same workload at workers=1 and
// workers=8 and asserts bit-exact equality.
package sov

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sov/internal/core"
	"sov/internal/detect"
	"sov/internal/isp"
	"sov/internal/mathx"
	"sov/internal/nn"
	"sov/internal/parallel"
	"sov/internal/pointcloud"
	"sov/internal/sim"
	"sov/internal/track"
	"sov/internal/vision"
)

// atWorkers runs fn under the given worker count, restoring the previous
// configuration afterwards.
func atWorkers(n int, fn func()) {
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	fn()
}

func TestSGMDeterministicAcrossWorkers(t *testing.T) {
	left, right := benchStereoPair(128, 96)
	cfg := vision.DefaultSGMConfig()
	cfg.MaxDisp = 24
	var serial, par *vision.DisparityMap
	atWorkers(1, func() { serial = vision.SGM(left, right, cfg) })
	atWorkers(8, func() { par = vision.SGM(left, right, cfg) })
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("SGM disparity maps differ between workers=1 and workers=8")
	}
}

func TestBlockStereoDeterministicAcrossWorkers(t *testing.T) {
	left, right := benchStereoPair(128, 96)
	var bm1, bm8, sp1, sp8 *vision.DisparityMap
	atWorkers(1, func() {
		bm1 = vision.BlockMatch(left, right, 16, 2)
		sp1 = vision.SupportPointStereo(left, right, 16, 2, 8, 3)
	})
	atWorkers(8, func() {
		bm8 = vision.BlockMatch(left, right, 16, 2)
		sp8 = vision.SupportPointStereo(left, right, 16, 2, 8, 3)
	})
	if !reflect.DeepEqual(bm1, bm8) {
		t.Fatal("BlockMatch disparity maps differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(sp1, sp8) {
		t.Fatal("SupportPointStereo disparity maps differ between workers=1 and workers=8")
	}
}

func TestConvForwardDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D(8, 16, 3, 1, 1, true, rng)
	in := nn.NewTensor(8, 40, 40)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	var serial, par *nn.Tensor
	atWorkers(1, func() { serial = conv.Forward(in) })
	atWorkers(8, func() { par = conv.Forward(in) })
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("conv forward outputs differ between workers=1 and workers=8")
	}
}

func TestFFT2DDeterministicAcrossWorkers(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(5))
	src := make([]complex128, n*n)
	for i := range src {
		src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	run := func(workers int) []complex128 {
		out := make([]complex128, len(src))
		copy(out, src)
		atWorkers(workers, func() {
			if err := mathx.FFT2D(out, n, n, false); err != nil {
				t.Fatal(err)
			}
		})
		return out
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("FFT2D outputs differ between workers=1 and workers=8")
	}
}

func TestICPDeterministicAcrossWorkers(t *testing.T) {
	rng := sim.NewRNG(17)
	scan := pointcloud.GenerateScan(3000, 55, rng.Fork())
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.25, Y: -0.1})
	run := func(workers int) (pointcloud.ICPResult, []int, []pointcloud.Normal) {
		var res pointcloud.ICPResult
		var reuse []int
		var normals []pointcloud.Normal
		atWorkers(workers, func() {
			tree := pointcloud.Build(scan, nil)
			res = pointcloud.Localize(tree, moved, nil, 10, 1)
			reuse = append([]int(nil), tree.Reuse...)
			normals = pointcloud.EstimateNormals(tree, scan, nil, 8)
		})
		return res, reuse, normals
	}
	r1, u1, n1 := run(1)
	r8, u8, n8 := run(8)
	if r1 != r8 {
		t.Fatalf("ICP results differ: workers=1 %+v, workers=8 %+v", r1, r8)
	}
	if !reflect.DeepEqual(u1, u8) {
		t.Fatal("kd-tree reuse counters differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(n1, n8) {
		t.Fatal("estimated normals differ between workers=1 and workers=8")
	}
}

func TestKCFDeterministicAcrossWorkers(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 2, BgDepth: 25,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 6, W: 1.8, H: 1.8, Texture: 17}}}
	im := scene.Render(intr, 0)
	moved := vision.Scene{Background: 2, BgDepth: 25,
		Boxes: []vision.Box{{X: 0.12, Y: 0.05, Z: 6, W: 1.8, H: 1.8, Texture: 17}}}.Render(intr, 0)
	run := func(workers int) (track.Result, float64, float64) {
		var res track.Result
		var cx, cy float64
		atWorkers(workers, func() {
			k := track.NewKCF(32)
			k.Init(im, intr.Cx, intr.Cy)
			res = k.Update(moved)
			cx, cy = k.Center()
		})
		return res, cx, cy
	}
	r1, x1, y1 := run(1)
	r8, x8, y8 := run(8)
	if r1 != r8 || x1 != x8 || y1 != y8 {
		t.Fatalf("KCF tracking differs: workers=1 %+v (%.9f,%.9f), workers=8 %+v (%.9f,%.9f)",
			r1, x1, y1, r8, x8, y8)
	}
}

func TestDetectionDecodeDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cells := make([]nn.GridBox, 2048)
	for i := range cells {
		cells[i] = nn.GridBox{
			CX: rng.Float32(), CY: rng.Float32(),
			W: 0.05 + 0.1*rng.Float32(), H: 0.05 + 0.1*rng.Float32(),
			Objectness:  rng.Float32(),
			ClassScores: []float32{rng.Float32(), rng.Float32(), rng.Float32()},
		}
	}
	run := func(workers int) ([]detect.BBox, []detect.BBox) {
		var boxes, kept []detect.BBox
		atWorkers(workers, func() {
			boxes = detect.DecodeGrid(cells, 0.5)
			kept = detect.NMS(boxes, 0.4)
		})
		return boxes, kept
	}
	b1, k1 := run(1)
	b8, k8 := run(8)
	if !reflect.DeepEqual(b1, b8) {
		t.Fatal("DecodeGrid outputs differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(k1, k8) {
		t.Fatal("NMS outputs differ between workers=1 and workers=8")
	}
}

// TestQuantKernelsDeterministicAcrossWorkers covers the fixed-point
// perception kernels (DESIGN.md §8): the int8 NN forward pass and YOLO
// decode, quantized stereo matchers, fixed-point ISP chain, and the
// code-domain detection decode must be bit-identical across worker counts —
// integer arithmetic makes this exact, not approximate.
func TestQuantKernelsDeterministicAcrossWorkers(t *testing.T) {
	// Quantized network + YOLO decode.
	y := nn.NewTinyYOLO(48, 64, 3, 21)
	calib := nn.NewTensor(1, 48, 64)
	for i := range calib.Data {
		calib.Data[i] = float32(i%13) / 13
	}
	qy := nn.QuantizeYOLO(y, calib)
	probe := nn.NewTensor(1, 48, 64)
	for i := range probe.Data {
		probe.Data[i] = float32(i%7) / 7
	}
	var cells1, cells8 []nn.GridBox
	var boxes1, boxes8 []detect.BBox
	atWorkers(1, func() {
		cells1 = qy.Infer(probe)
		raw := qy.ForwardRaw(probe)
		boxes1 = detect.DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), 0.3)
		nn.PutQTensor(raw)
	})
	atWorkers(8, func() {
		cells8 = qy.Infer(probe)
		raw := qy.ForwardRaw(probe)
		boxes8 = detect.DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), 0.3)
		nn.PutQTensor(raw)
	})
	if !reflect.DeepEqual(cells1, cells8) {
		t.Fatal("quantized YOLO decode differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(boxes1, boxes8) {
		t.Fatal("quantized grid decode differs between workers=1 and workers=8")
	}

	// Quantized stereo matchers.
	leftF, rightF := benchStereoPair(128, 96)
	left, right := vision.QuantizeImage(leftF), vision.QuantizeImage(rightF)
	var bm1, bm8, sp1, sp8 *vision.DisparityMap
	atWorkers(1, func() {
		bm1 = vision.BlockMatchQuant(left, right, 16, 2)
		sp1 = vision.SupportPointStereoQuant(left, right, 16, 2, 8, 3)
	})
	atWorkers(8, func() {
		bm8 = vision.BlockMatchQuant(left, right, 16, 2)
		sp8 = vision.SupportPointStereoQuant(left, right, 16, 2, 8, 3)
	})
	if !reflect.DeepEqual(bm1, bm8) {
		t.Fatal("BlockMatchQuant differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(sp1, sp8) {
		t.Fatal("SupportPointStereoQuant differs between workers=1 and workers=8")
	}

	// Fixed-point ISP chain (serial kernel, but run under both settings to
	// pin the contract alongside the others).
	qp := isp.DefaultPixelPipeline().Quantized()
	var isp1, isp8 *vision.QImage
	atWorkers(1, func() { isp1 = qp.Process(left) })
	atWorkers(8, func() { isp8 = qp.Process(left) })
	if !reflect.DeepEqual(isp1, isp8) {
		t.Fatal("fixed-point ISP differs between workers=1 and workers=8")
	}
}

// TestCoreSimulationDeterministicAcrossWorkers drives the full SoV control
// loop — concurrent perception-branch dispatch included — and asserts the
// per-cycle trace and headline report figures are bit-identical across
// worker counts.
func TestCoreSimulationDeterministicAcrossWorkers(t *testing.T) {
	tr1, rep1 := tracedCruise(t, 1, false)
	tr8, rep8 := tracedCruise(t, 8, false)
	if tr1 != tr8 {
		t.Fatal("simulation traces differ between workers=1 and workers=8")
	}
	assertSameCruise(t, rep1, rep8)
}

// TestCoreSimulationDeterministicAcrossPipelineModes is the determinism
// contract of the staged control-loop dataflow: serial and pipelined runs,
// at worker counts 1 and 8 each, must produce bit-identical traces and
// reports — four executions, one result.
func TestCoreSimulationDeterministicAcrossPipelineModes(t *testing.T) {
	ref, repRef := tracedCruise(t, 1, false)
	for _, c := range []struct {
		workers   int
		pipelined bool
	}{{1, true}, {8, false}, {8, true}} {
		tr, rep := tracedCruise(t, c.workers, c.pipelined)
		if tr != ref {
			t.Fatalf("trace at workers=%d pipeline=%v differs from serial workers=1",
				c.workers, c.pipelined)
		}
		assertSameCruise(t, repRef, rep)
	}
}

// TestCoreSimulationQuantDeterministicAcrossModes: the quantized perception
// path must keep the same determinism contract — serial and pipelined runs
// at worker counts 1 and 8 produce bit-identical traces and reports.
func TestCoreSimulationQuantDeterministicAcrossModes(t *testing.T) {
	ref, repRef := tracedQuantCruise(t, 1, false)
	if !repRef.QuantizedPerception {
		t.Fatal("quant run did not record QuantizedPerception")
	}
	for _, c := range []struct {
		workers   int
		pipelined bool
	}{{1, true}, {8, false}, {8, true}} {
		tr, rep := tracedQuantCruise(t, c.workers, c.pipelined)
		if tr != ref {
			t.Fatalf("quant trace at workers=%d pipeline=%v differs from serial workers=1",
				c.workers, c.pipelined)
		}
		assertSameCruise(t, repRef, rep)
	}
	// And the knob actually changes the drawn latencies: a float-path run
	// must NOT match the quantized trace.
	floatTr, _ := tracedCruise(t, 1, false)
	if floatTr == ref {
		t.Fatal("quantized trace identical to float trace; the knob is inert")
	}
}

// tracedCruise runs the 5 s reference cruise under the given worker count
// and control-loop mode, returning the full trace and report.
func tracedCruise(t *testing.T, workers int, pipelined bool) (string, *core.Report) {
	return cruiseWith(t, workers, pipelined, false)
}

// tracedQuantCruise is tracedCruise on the int8 fixed-point perception path.
func tracedQuantCruise(t *testing.T, workers int, pipelined bool) (string, *core.Report) {
	return cruiseWith(t, workers, pipelined, true)
}

func cruiseWith(t *testing.T, workers int, pipelined, quant bool) (string, *core.Report) {
	t.Helper()
	var buf bytes.Buffer
	var rep *core.Report
	atWorkers(workers, func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 4
		cfg.Pipeline = pipelined
		// Keep the staged dataflow under test even on a single-CPU host.
		cfg.PipelineForce = pipelined
		cfg.Quant = quant
		s := core.New(cfg, core.CruiseScenario(4))
		tr := core.NewTracer(&buf)
		s.AttachTracer(tr)
		rep = s.Run(5 * time.Second)
		if _, err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return buf.String(), rep
}

func assertSameCruise(t *testing.T, a, b *core.Report) {
	t.Helper()
	if a.Cycles != b.Cycles || a.CommandsDelivered != b.CommandsDelivered ||
		a.Tcomp.Mean() != b.Tcomp.Mean() || a.EndToEnd.Mean() != b.EndToEnd.Mean() ||
		a.PipelineDepth.Mean() != b.PipelineDepth.Mean() {
		t.Fatalf("simulation reports differ: cycles=%d tcomp=%v vs cycles=%d tcomp=%v",
			a.Cycles, a.Tcomp.Mean(), b.Cycles, b.Tcomp.Mean())
	}
}
