// Benchmarks for the fleet telemetry backend (DESIGN.md §14): OLTP ingest
// throughput with its write amplification (WAL + run rewrites over user
// bytes), OLAP range-scan throughput with its read amplification (run
// bytes read over result bytes), and point-read latency under the bloom
// filters. scripts/bench_cloud.sh turns the output into BENCH_cloud.json
// and carries the nightly --check regression gate.
package sov

import (
	"fmt"
	"testing"

	"sov/internal/telemetry"
)

// benchTelemetryEvents builds the synthetic fleet workload: per epoch, one
// snapshot per vehicle plus sparse incident events, mirroring what the
// fleet barrier emits. Payloads are realistic JSONL-sized (40-80 bytes).
func benchTelemetryEvents(vehicles, epochs int) []telemetry.Event {
	var out []telemetry.Event
	for e := 1; e <= epochs; e++ {
		tMs := uint64(e * 1000)
		for v := 0; v < vehicles; v++ {
			payload := fmt.Sprintf(`{"soc":0.%04d,"odo_m":%d.5,"state":"idle","trips":%d}`,
				(v*37+e)%10000, v*e, e%50)
			out = append(out, telemetry.Event{
				Key:     telemetry.Key{Vehicle: uint32(v), TMs: tMs, Kind: telemetry.KindEpoch},
				Payload: []byte(payload),
			})
			if (v+e)%17 == 0 {
				out = append(out, telemetry.Event{
					Key:     telemetry.Key{Vehicle: uint32(v), TMs: tMs, Kind: telemetry.KindReactiveBrake},
					Payload: []byte(`{"n":1}`),
				})
			}
		}
	}
	return out
}

// benchStoreOptions uses a small flush threshold so the benchmark exercises
// flushes and compactions, not just the memtable.
func benchStoreOptions() telemetry.Options {
	return telemetry.Options{FlushBytes: 256 << 10, Shards: 8}
}

// BenchmarkTelemetryIngest is the OLTP write path: epoch-sized batches
// through WAL, shard sort, memtable merge, flush, and compaction.
// write_amp is total storage bytes written per user byte.
func BenchmarkTelemetryIngest(b *testing.B) {
	const vehicles, epochs = 200, 20
	events := benchTelemetryEvents(vehicles, epochs)
	batch := make([]telemetry.Event, 0, 2*vehicles)

	s, err := telemetry.Open(b.TempDir(), benchStoreOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	var userBytes int64
	for _, e := range events {
		userBytes += int64(telemetry.KeySize + len(e.Payload))
	}

	b.ReportAllocs()
	b.SetBytes(userBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One iteration = the whole workload, epoch batch by epoch batch
		// (timestamps repeat across iterations; Seq keeps keys unique).
		off := 0
		for off < len(events) {
			end := off
			t0 := events[off].Key.TMs
			for end < len(events) && events[end].Key.TMs == t0 {
				end++
			}
			batch = append(batch[:0], events[off:end]...)
			if err := s.Ingest(batch); err != nil {
				b.Fatal(err)
			}
			off = end
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.Events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(st.WriteAmplification(), "write_amp")
	b.ReportMetric(float64(st.Compactions)/float64(b.N), "compactions/op")
}

// benchPopulatedStore builds one store holding the full workload.
func benchPopulatedStore(b *testing.B, vehicles, epochs int) *telemetry.Store {
	b.Helper()
	s, err := telemetry.Open(b.TempDir(), benchStoreOptions())
	if err != nil {
		b.Fatal(err)
	}
	events := benchTelemetryEvents(vehicles, epochs)
	batch := make([]telemetry.Event, 0, 2*vehicles)
	off := 0
	for off < len(events) {
		end := off
		t0 := events[off].Key.TMs
		for end < len(events) && events[end].Key.TMs == t0 {
			end++
		}
		batch = append(batch[:0], events[off:end]...)
		if err := s.Ingest(batch); err != nil {
			b.Fatal(err)
		}
		off = end
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTelemetryScan is the OLAP path: a full-window range scan (every
// vehicle, every epoch) merged across all runs. read_amp is run bytes read
// per result byte — the size-tiered overlap cost analytics pay.
func BenchmarkTelemetryScan(b *testing.B) {
	const vehicles, epochs = 200, 50
	s := benchPopulatedStore(b, vehicles, epochs)
	defer s.Close()

	before := s.Stats()
	var rows, resultBytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, resultBytes = 0, 0
		err := s.Scan(telemetry.Query{}, func(e telemetry.Event) bool {
			rows++
			resultBytes += int64(len(e.Payload))
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	read := s.Stats().RunBytesRead - before.RunBytesRead
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
	if resultBytes > 0 {
		b.ReportMetric(float64(read)/float64(b.N)/float64(resultBytes), "read_amp")
	}
}

// BenchmarkTelemetryKindQuery is the indexed OLAP path: a kind-first query
// ("all reactive-brake events in a one-hour window") through the B+-tree
// secondary index with bloom-guarded point reads.
func BenchmarkTelemetryKindQuery(b *testing.B) {
	const vehicles, epochs = 200, 50
	s := benchPopulatedStore(b, vehicles, epochs)
	defer s.Close()
	q := telemetry.Query{
		TMinMs: 10_000, TMaxMs: 40_000,
		Kinds: []telemetry.Kind{telemetry.KindReactiveBrake},
	}
	// Build the index outside the timed region (it amortizes across every
	// later query in a real session).
	if _, err := s.Count(q); err != nil {
		b.Fatal(err)
	}

	var rows int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = 0
		err := s.ScanByKind(q, func(e telemetry.Event) bool { rows++; return true })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("kind query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkTelemetryGet is the OLTP point-read path: single-key lookups
// resolved through the memtable, bloom filters, and at most one block read
// per overlapping run.
func BenchmarkTelemetryGet(b *testing.B) {
	const vehicles, epochs = 200, 50
	s := benchPopulatedStore(b, vehicles, epochs)
	defer s.Close()
	// Collect real keys to probe (every 97th event).
	var keys []telemetry.Key
	n := 0
	err := s.Scan(telemetry.Query{}, func(e telemetry.Event) bool {
		if n%97 == 0 {
			keys = append(keys, e.Key)
		}
		n++
		return true
	})
	if err != nil || len(keys) == 0 {
		b.Fatalf("key harvest: %d keys, err=%v", len(keys), err)
	}

	before := s.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[(i*97)%len(keys)]
		if _, ok, err := s.Get(k); err != nil || !ok {
			b.Fatalf("get %v: ok=%v err=%v", k, ok, err)
		}
	}
	b.StopTimer()
	d := s.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gets/sec")
	b.ReportMetric(float64(d.BlocksRead-before.BlocksRead)/float64(b.N), "blocks/get")
}
