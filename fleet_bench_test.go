// Benchmarks for the fleet-scale simulation substrate: vehicles advanced
// per wall-clock second and epoch latency, swept over fleet size × worker
// count. scripts/bench_fleet.sh turns the output into BENCH_fleet.json and
// carries the nightly --check regression gate.
package sov

import (
	"strconv"
	"testing"
	"time"

	"sov/internal/core"
	"sov/internal/fleet"
	"sov/internal/parallel"
)

// benchFleetConfig uses a reduced-rate per-vehicle template: the substrate
// under test is the epoch scheduler, dispatcher, and telemetry, and the
// deployed 100 Hz physics would drown those in per-vehicle event cost
// (and push a 1000-vehicle epoch past any reasonable benchtime).
func benchFleetConfig(vehicles int) fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Vehicles = vehicles
	cfg.Regions = 8
	if vehicles < 8 {
		cfg.Regions = vehicles
	}
	cfg.Seed = 3
	cfg.Epoch = time.Second
	cfg.DemandPerHour = 300
	v := core.DefaultConfig()
	v.ControlRate = 2
	v.PhysicsRate = 10
	v.RadarRate = 5
	v.ReactiveRate = 5
	v.Pipeline = false
	v.Quant = false
	cfg.Vehicle = v
	return cfg
}

// benchFleetEpoch times one lockstep epoch of the whole fleet. The
// headline metric is veh_sec/sec: vehicle-seconds of virtual time advanced
// per wall-clock second (fleet size × epoch length ÷ epoch latency).
func benchFleetEpoch(b *testing.B, vehicles, workers int) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	cfg := benchFleetConfig(vehicles)
	f := fleet.New(cfg)
	for e := 0; e < 3; e++ { // warm arenas, queues, event free lists
		f.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
	b.StopTimer()
	virtual := float64(vehicles) * cfg.Epoch.Seconds() * float64(b.N)
	b.ReportMetric(virtual/b.Elapsed().Seconds(), "veh_sec/sec")
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1000, "epoch_ms")
}

// BenchmarkFleetThroughput sweeps fleet size × worker count. Like the
// pipeline benchmark, worker-count speedups are only expressible on a
// multi-core host — bench_fleet.sh records num_cpu next to the numbers so
// a single-CPU runner's flat curve reads as what it is.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, v := range []int{100, 1000} {
		for _, w := range []int{1, 4, 8} {
			v, w := v, w
			name := "v" + strconv.Itoa(v) + "/w" + strconv.Itoa(w)
			b.Run(name, func(b *testing.B) { benchFleetEpoch(b, v, w) })
		}
	}
}
