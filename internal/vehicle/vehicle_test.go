package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sov/internal/canbus"
	"sov/internal/mathx"
)

func step(v *Vehicle, total, dt time.Duration) {
	for el := time.Duration(0); el < total; el += dt {
		v.Step(dt)
	}
}

func TestStraightLineMotion(t *testing.T) {
	v := New(DefaultParams(), State{Speed: 5})
	step(v, time.Second, time.Millisecond)
	s := v.State()
	if math.Abs(s.Pos.X-5) > 1e-6 || math.Abs(s.Pos.Y) > 1e-9 {
		t.Fatalf("pos = %v, want (5,0)", s.Pos)
	}
	if math.Abs(v.Odometer()-5) > 1e-6 {
		t.Fatalf("odometer = %v", v.Odometer())
	}
}

func TestMechanicalLatencyDelaysCommand(t *testing.T) {
	v := New(DefaultParams(), State{Speed: 5})
	v.Apply(canbus.Command{EStop: true})
	// 10 ms later (< 19 ms Tmech) the vehicle must not yet be braking.
	step(v, 10*time.Millisecond, time.Millisecond)
	if v.State().Speed < 5-1e-9 {
		t.Fatal("braking before mechanical latency elapsed")
	}
	// After Tmech it must be braking.
	step(v, 20*time.Millisecond, time.Millisecond)
	if v.State().Speed >= 5 {
		t.Fatal("not braking after mechanical latency")
	}
}

func TestBrakingDistanceMatchesModel(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 5.6})
	v.Apply(canbus.Command{EStop: true})
	start := v.State().Pos
	step(v, 3*time.Second, time.Millisecond)
	if v.State().Speed != 0 {
		t.Fatalf("speed = %v, want 0", v.State().Speed)
	}
	dist := v.State().Pos.DistTo(start)
	want := 5.6 * 5.6 / (2 * 4.0) // 3.92 m
	if math.Abs(dist-want) > 0.01 {
		t.Fatalf("stopping distance = %v, want %v", dist, want)
	}
	if math.Abs(v.StopDistanceFrom(5.6)-want) > 1e-9 {
		t.Fatalf("StopDistanceFrom = %v", v.StopDistanceFrom(5.6))
	}
}

func TestSpeedClamps(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 8})
	v.Apply(canbus.Command{AccelMps2: 100}) // demands above MaxAccel
	step(v, 10*time.Second, 10*time.Millisecond)
	if v.State().Speed > p.MaxSpeed+1e-9 {
		t.Fatalf("speed %v exceeds cap %v", v.State().Speed, p.MaxSpeed)
	}
	v2 := New(p, State{Speed: 2})
	v2.Apply(canbus.Command{AccelMps2: -100})
	step(v2, 2*time.Second, 10*time.Millisecond)
	if v2.State().Speed != 0 {
		t.Fatalf("speed = %v, want 0 (no reverse)", v2.State().Speed)
	}
}

func TestSteeringTurnsCircle(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	p.MaxSpeed = 100
	v := New(p, State{Speed: 5})
	v.Apply(canbus.Command{SteerRad: 0.2})
	// heading rate = v/L*tan(0.2); after t seconds heading ≈ rate*t.
	step(v, time.Second, time.Millisecond)
	wantRate := 5.0 / p.WheelBase * math.Tan(0.2)
	if math.Abs(v.State().Heading-wantRate) > 0.01 {
		t.Fatalf("heading = %v, want ~%v", v.State().Heading, wantRate)
	}
}

func TestZeroDtIsNoop(t *testing.T) {
	v := New(DefaultParams(), State{Speed: 5})
	before := v.State()
	v.Step(0)
	v.Step(-time.Second)
	if v.State() != before {
		t.Fatal("zero/negative dt changed state")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.WheelBase = 0
	if bad.Validate() == nil {
		t.Fatal("zero wheelbase should be invalid")
	}
	bad = DefaultParams()
	bad.MechLatency = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative latency should be invalid")
	}
}

func mustEncode(t *testing.T, id uint32, c canbus.Command) canbus.Frame {
	t.Helper()
	f, err := canbus.EncodeCommand(id, c)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestECUReactiveOverrideSuppressesProactive(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 5})
	e := NewECU(v)

	if err := e.Receive(mustEncode(t, canbus.IDReactiveOverride, canbus.Command{})); err != nil {
		t.Fatal(err)
	}
	if !e.OverrideActive() {
		t.Fatal("override should be active")
	}
	// A proactive "accelerate" during the hold must be rejected.
	if err := e.Receive(mustEncode(t, canbus.IDControlCommand, canbus.Command{AccelMps2: 2})); err != nil {
		t.Fatal(err)
	}
	step(v, 100*time.Millisecond, time.Millisecond)
	if v.State().Speed >= 5 {
		t.Fatal("vehicle should be braking under override")
	}
	_, overrides, rejected := e.Stats()
	if overrides != 1 || rejected != 1 {
		t.Fatalf("overrides=%d rejected=%d", overrides, rejected)
	}
}

func TestECUProactiveAfterHoldExpires(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 5})
	e := NewECU(v)
	e.HoldTime = 50 * time.Millisecond

	_ = e.Receive(mustEncode(t, canbus.IDReactiveOverride, canbus.Command{}))
	step(v, 60*time.Millisecond, time.Millisecond)
	if e.OverrideActive() {
		t.Fatal("override should have expired")
	}
	if err := e.Receive(mustEncode(t, canbus.IDControlCommand, canbus.Command{AccelMps2: 1})); err != nil {
		t.Fatal(err)
	}
	if v.ActiveCommand().EStop {
		// command not yet active; step to activate
		step(v, 10*time.Millisecond, time.Millisecond)
	}
	step(v, 10*time.Millisecond, time.Millisecond)
	if v.ActiveCommand().AccelMps2 != 1 {
		t.Fatalf("active command = %+v, want accel 1", v.ActiveCommand())
	}
}

func TestECUDropsCorruptFrames(t *testing.T) {
	v := New(DefaultParams(), State{})
	e := NewECU(v)
	f := mustEncode(t, canbus.IDControlCommand, canbus.Command{AccelMps2: 1})
	f.Data[0] ^= 0xFF
	if err := e.Receive(f); err == nil {
		t.Fatal("expected checksum error")
	}
	frames, _, rejected := e.Stats()
	if frames != 1 || rejected != 1 {
		t.Fatalf("frames=%d rejected=%d", frames, rejected)
	}
}

func TestECUIgnoresStatusFrames(t *testing.T) {
	v := New(DefaultParams(), State{Speed: 3})
	e := NewECU(v)
	f := mustEncode(t, canbus.IDVehicleStatus, canbus.Command{AccelMps2: -4})
	if err := e.Receive(f); err != nil {
		t.Fatal(err)
	}
	step(v, 100*time.Millisecond, time.Millisecond)
	if v.State().Speed < 3-1e-9 {
		t.Fatal("status frame should not actuate")
	}
}

func TestHeadingWraps(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 5})
	v.Apply(canbus.Command{SteerRad: p.MaxSteer})
	step(v, 30*time.Second, 10*time.Millisecond)
	h := v.State().Heading
	if h <= -math.Pi-1e-9 || h > math.Pi+1e-9 {
		t.Fatalf("heading not wrapped: %v", h)
	}
}

func TestPositionContinuity(t *testing.T) {
	p := DefaultParams()
	p.MechLatency = 0
	v := New(p, State{Speed: 5, Pos: mathx.Vec2{X: 1, Y: 2}})
	v.Apply(canbus.Command{SteerRad: 0.1})
	prev := v.State().Pos
	for i := 0; i < 1000; i++ {
		s := v.Step(time.Millisecond)
		if s.Pos.DistTo(prev) > 0.01 { // max 9 mm/ms at top speed
			t.Fatalf("teleport at step %d: %v -> %v", i, prev, s.Pos)
		}
		prev = s.Pos
	}
}

func TestShuttleParams(t *testing.T) {
	s := ShuttleParams()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	if s.MaxSpeed != p.MaxSpeed {
		t.Fatal("both product lines are capped at 20 mph")
	}
	if s.MaxBrake >= p.MaxBrake {
		t.Fatal("shuttle must brake more gently")
	}
	if s.MassKg <= p.MassKg || s.BasePowerKW <= p.BasePowerKW {
		t.Fatal("shuttle is the heavier, hungrier platform")
	}
	// The softer brake stretches the braking floor: Eq. 1 trade-off.
	shuttle := New(s, State{Speed: 5.6})
	pod := New(p, State{Speed: 5.6})
	if shuttle.StopDistanceFrom(5.6) <= pod.StopDistanceFrom(5.6) {
		t.Fatal("shuttle braking floor must exceed the pod's")
	}
}

func TestVehicleInvariantsUnderRandomCommands(t *testing.T) {
	// Property: whatever command stream arrives, speed stays within
	// [0, MaxSpeed] and the heading stays wrapped.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(DefaultParams(), State{Speed: rng.Float64() * 8})
		for i := 0; i < 300; i++ {
			if rng.Intn(4) == 0 {
				v.Apply(canbus.Command{
					SteerRad:  rng.Float64()*4 - 2,
					AccelMps2: rng.Float64()*40 - 20,
					EStop:     rng.Intn(10) == 0,
				})
			}
			s := v.Step(10 * time.Millisecond)
			if s.Speed < 0 || s.Speed > v.Params.MaxSpeed+1e-9 {
				return false
			}
			if s.Heading <= -math.Pi-1e-9 || s.Heading > math.Pi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryDrainMatchesEq2(t *testing.T) {
	// Eq. 2's scenario played forward: 6 kWh at Pv+PAD = 0.775 kW lasts
	// ~7.74 h.
	b := NewBattery(6)
	load := 0.6 + 0.175
	hours := 0.0
	for !b.Empty() && hours < 20 {
		b.Drain(load, time.Minute)
		hours += 1.0 / 60
	}
	if math.Abs(hours-7.74) > 0.05 {
		t.Fatalf("pack lasted %.2f h, want ~7.74", hours)
	}
}

func TestBatteryRemainingDrivingTime(t *testing.T) {
	b := NewBattery(6)
	got := b.RemainingDrivingTime(0.6)
	if math.Abs(got.Hours()-10) > 1e-9 {
		t.Fatalf("remaining = %v, want 10 h", got)
	}
	b.Drain(0.6, 5*time.Hour)
	if math.Abs(b.RemainingKWh()-3) > 1e-9 {
		t.Fatalf("remaining = %v kWh, want 3", b.RemainingKWh())
	}
	if b.Empty() {
		t.Fatal("half-full pack reported empty")
	}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}

func TestBatteryClampsAtZero(t *testing.T) {
	b := NewBattery(1)
	if b.Drain(100, time.Hour) {
		t.Fatal("over-drain should report empty")
	}
	if b.SoC != 0 || !b.Empty() {
		t.Fatalf("SoC = %v", b.SoC)
	}
	if (&Battery{}).Drain(1, time.Hour) {
		t.Fatal("zero-capacity pack should be empty")
	}
	if b.RemainingDrivingTime(0) <= 0 {
		t.Fatal("zero load should return effectively infinite time")
	}
}

func TestBatteryCharge(t *testing.T) {
	b := NewBattery(6)
	b.SoC = 0.5
	// 3 kW for one hour adds half the 6 kWh pack.
	if full := b.Charge(3, time.Hour); !full || math.Abs(b.SoC-1) > 1e-12 {
		t.Fatalf("after 1 h at 3 kW: SoC %.3f full=%v, want 1.0 true", b.SoC, full)
	}
	// Charging a full pack clamps at 1 and keeps reporting full.
	if full := b.Charge(3, time.Hour); !full || b.SoC > 1 {
		t.Fatalf("overcharge: SoC %.3f full=%v", b.SoC, full)
	}
	b.SoC = 0.2
	if full := b.Charge(3, 30*time.Minute); full || math.Abs(b.SoC-0.45) > 1e-12 {
		t.Fatalf("after 30 min at 3 kW: SoC %.3f full=%v, want 0.45 false", b.SoC, full)
	}
	var zero Battery
	if zero.Charge(3, time.Hour) {
		t.Fatal("zero-capacity pack cannot report full")
	}
}
