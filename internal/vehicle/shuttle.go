package vehicle

import "time"

// ShuttleParams returns the 8-seater shuttle configuration (the paper's
// second product line: public autonomous transportation services). Same
// 20 mph cap as the pod, but heavier — which softens braking and raises
// the base power draw, shifting the Eq. 1/Eq. 2 trade-offs.
func ShuttleParams() Params {
	return Params{
		WheelBase:   3.2,
		MaxSpeed:    8.9, // both designs are capped at 20 mph
		MaxBrake:    3.2, // heavier vehicle, gentler for standing passengers
		MaxAccel:    1.5,
		MaxSteer:    0.45,
		MechLatency: 24 * time.Millisecond, // larger actuators
		MassKg:      1400,
		PayloadKg:   640, // 8 passengers
		BasePowerKW: 1.1,
		PeakPowerKW: 5.0,
	}
}
