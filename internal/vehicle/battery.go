package vehicle

import (
	"fmt"
	"time"
)

// Battery tracks the pack's state of charge as the vehicle and the
// autonomous-driving system draw power — the on-line counterpart of the
// Eq. 2 driving-time model.
type Battery struct {
	// CapacityKWh is the pack size (6 kWh deployed).
	CapacityKWh float64
	// SoC is the state of charge in [0,1].
	SoC float64
}

// NewBattery returns a full pack of the given capacity.
func NewBattery(capacityKWh float64) *Battery {
	return &Battery{CapacityKWh: capacityKWh, SoC: 1}
}

// Drain removes energy for a load over an interval; SoC clamps at zero.
// It reports whether the pack still has charge.
func (b *Battery) Drain(loadKW float64, dt time.Duration) bool {
	if b.CapacityKWh <= 0 {
		return false
	}
	b.SoC -= loadKW * dt.Hours() / b.CapacityKWh
	if b.SoC < 0 {
		b.SoC = 0
	}
	return b.SoC > 0
}

// Charge adds energy from a charger of the given power over an interval;
// SoC clamps at one. It reports whether the pack reached full charge.
func (b *Battery) Charge(chargeKW float64, dt time.Duration) bool {
	if b.CapacityKWh <= 0 {
		return false
	}
	b.SoC += chargeKW * dt.Hours() / b.CapacityKWh
	if b.SoC > 1 {
		b.SoC = 1
	}
	return b.SoC >= 1
}

// RemainingKWh returns the usable energy left.
func (b *Battery) RemainingKWh() float64 { return b.SoC * b.CapacityKWh }

// RemainingDrivingTime returns how long the pack sustains a load.
func (b *Battery) RemainingDrivingTime(loadKW float64) time.Duration {
	if loadKW <= 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Duration(b.RemainingKWh() / loadKW * float64(time.Hour))
}

// Empty reports whether the pack is exhausted.
func (b *Battery) Empty() bool { return b.SoC <= 0 }

// String summarizes the pack.
func (b *Battery) String() string {
	return fmt.Sprintf("battery: %.1f%% (%.2f kWh of %.1f)", 100*b.SoC, b.RemainingKWh(), b.CapacityKWh)
}
