// Package vehicle models the mechanical side of the SoV: a kinematic
// bicycle model for the vehicle body, the engine control unit (ECU) that
// accepts CAN commands — including the reactive-path safety override — and
// the actuator with its ~19 ms mechanical latency (Tmech in Fig. 2).
package vehicle

import (
	"fmt"
	"math"
	"time"

	"sov/internal/canbus"
	"sov/internal/mathx"
)

// Params are the physical parameters of the micromobility vehicle.
type Params struct {
	WheelBase   float64       // meters
	MaxSpeed    float64       // m/s (paper: vehicles capped at 20 mph ≈ 8.9 m/s)
	MaxBrake    float64       // m/s², positive (paper: ~4)
	MaxAccel    float64       // m/s²
	MaxSteer    float64       // rad
	MechLatency time.Duration // delay before a command takes mechanical effect
	MassKg      float64       // curb mass (2-seater pod)
	PayloadKg   float64       // passenger payload (~1/5 of vehicle mass per the paper)
	BasePowerKW float64       // Pv: average vehicle power without AD
	PeakPowerKW float64       // peak traction power (paper: up to 2 kW)
}

// DefaultParams returns the 2-seater pod configuration.
func DefaultParams() Params {
	return Params{
		WheelBase:   1.8,
		MaxSpeed:    8.9, // 20 mph
		MaxBrake:    4.0,
		MaxAccel:    2.0,
		MaxSteer:    0.55,
		MechLatency: 19 * time.Millisecond,
		MassKg:      450,
		PayloadKg:   90,
		BasePowerKW: 0.6,
		PeakPowerKW: 2.0,
	}
}

// State is the vehicle's kinematic state on the ground plane.
type State struct {
	Pos     mathx.Vec2 // meters, world frame
	Heading float64    // radians
	Speed   float64    // m/s, non-negative
}

// Vehicle integrates the kinematic bicycle model and applies commands after
// the mechanical latency.
type Vehicle struct {
	Params Params
	state  State

	// pendingCmds are commands received but not yet mechanically active.
	pendingCmds []timedCommand
	active      canbus.Command
	now         time.Duration

	odometer float64
}

type timedCommand struct {
	at  time.Duration
	cmd canbus.Command
}

// New returns a vehicle at the given initial state.
func New(p Params, initial State) *Vehicle {
	return &Vehicle{Params: p, state: initial}
}

// State returns the current kinematic state.
func (v *Vehicle) State() State { return v.state }

// Odometer returns distance traveled in meters.
func (v *Vehicle) Odometer() float64 { return v.odometer }

// Now returns the vehicle's internal clock.
func (v *Vehicle) Now() time.Duration { return v.now }

// ActiveCommand returns the command currently in mechanical effect.
func (v *Vehicle) ActiveCommand() canbus.Command { return v.active }

// Apply registers a command at the current time; it becomes mechanically
// effective MechLatency later (Tmech).
func (v *Vehicle) Apply(cmd canbus.Command) {
	v.pendingCmds = append(v.pendingCmds, timedCommand{at: v.now + v.Params.MechLatency, cmd: cmd})
}

// Step advances the simulation by dt, activating any matured commands and
// integrating the bicycle model. It returns the new state.
func (v *Vehicle) Step(dt time.Duration) State {
	if dt <= 0 {
		return v.state
	}
	v.now += dt
	// Activate matured commands in order.
	n := 0
	for _, tc := range v.pendingCmds {
		if tc.at <= v.now {
			v.active = tc.cmd
		} else {
			v.pendingCmds[n] = tc
			n++
		}
	}
	v.pendingCmds = v.pendingCmds[:n]

	p := v.Params
	accel := v.active.AccelMps2
	if v.active.EStop {
		accel = -p.MaxBrake
	}
	accel = mathx.Clamp(accel, -p.MaxBrake, p.MaxAccel)
	steer := mathx.Clamp(v.active.SteerRad, -p.MaxSteer, p.MaxSteer)

	s := v.state
	h := dt.Seconds()
	newSpeed := mathx.Clamp(s.Speed+accel*h, 0, p.MaxSpeed)
	avgSpeed := (s.Speed + newSpeed) / 2
	dist := avgSpeed * h

	// Kinematic bicycle: heading rate = v/L * tan(steer).
	if p.WheelBase > 0 {
		s.Heading = mathx.WrapAngle(s.Heading + avgSpeed/p.WheelBase*math.Tan(steer)*h)
	}
	s.Pos = s.Pos.Add(mathx.Vec2{X: math.Cos(s.Heading), Y: math.Sin(s.Heading)}.Scale(dist))
	s.Speed = newSpeed

	v.odometer += dist
	v.state = s
	return s
}

// StopDistanceFrom returns the distance needed to brake to zero from speed
// with MaxBrake (v²/2a) — the mechanical braking floor.
func (v *Vehicle) StopDistanceFrom(speed float64) float64 {
	if v.Params.MaxBrake <= 0 {
		return math.Inf(1)
	}
	return speed * speed / (2 * v.Params.MaxBrake)
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.WheelBase <= 0 || p.MaxSpeed <= 0 || p.MaxBrake <= 0 {
		return fmt.Errorf("vehicle: wheelbase, max speed, and max brake must be positive")
	}
	if p.MechLatency < 0 {
		return fmt.Errorf("vehicle: negative mechanical latency")
	}
	return nil
}

// ECU is the engine control unit: it decodes CAN frames into commands and
// enforces the reactive-path override semantics — a reactive frame
// (IDReactiveOverride) suppresses proactive commands for HoldTime.
type ECU struct {
	Vehicle  *Vehicle
	HoldTime time.Duration

	overrideUntil time.Duration
	frames        int
	overrides     int
	rejected      int
}

// NewECU wires an ECU to a vehicle with a default 500 ms override hold.
func NewECU(v *Vehicle) *ECU {
	return &ECU{Vehicle: v, HoldTime: 500 * time.Millisecond}
}

// Receive processes one delivered CAN frame at the vehicle's current time.
// Malformed frames are counted and dropped (the real ECU's behaviour).
func (e *ECU) Receive(f canbus.Frame) error {
	e.frames++
	cmd, err := canbus.DecodeCommand(f)
	if err != nil {
		e.rejected++
		return err
	}
	now := e.Vehicle.Now()
	switch f.ID {
	case canbus.IDReactiveOverride:
		e.overrides++
		e.overrideUntil = now + e.HoldTime
		cmd.EStop = true
		e.Vehicle.Apply(cmd)
	case canbus.IDControlCommand:
		if now < e.overrideUntil {
			// Proactive command suppressed by an active reactive hold.
			e.rejected++
			return nil
		}
		e.Vehicle.Apply(cmd)
	default:
		// Status/diagnostic traffic; not a command.
	}
	return nil
}

// Stats reports frames seen, overrides honored, and commands rejected.
func (e *ECU) Stats() (frames, overrides, rejected int) {
	return e.frames, e.overrides, e.rejected
}

// OverrideActive reports whether a reactive hold is in effect.
func (e *ECU) OverrideActive() bool {
	return e.Vehicle.Now() < e.overrideUntil
}
