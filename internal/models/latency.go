// Package models implements the paper's generic analytical design-constraint
// models (Sec. III): the end-to-end latency model (Eq. 1, Fig. 2/3a), the
// energy / driving-time model (Eq. 2, Fig. 3b, Table I), and the vehicle
// cost model (Table II). These are the quantitative tools the paper uses to
// reason about any autonomous vehicle; the concrete parameter sets measured
// from the deployed micromobility vehicles are provided as defaults.
package models

import (
	"fmt"
	"math"
	"time"
)

// LatencyModel captures Eq. 1: the end-to-end chain from "new event sensed"
// to "vehicle fully stopped" (Fig. 2).
//
//	(Tcomp + Tdata + Tmech) * v + 1/2 * a * Tstop²  <= D,  Tstop = v/a
type LatencyModel struct {
	// Speed is the vehicle speed v in m/s.
	Speed float64
	// BrakeDecel is the brake deceleration a in m/s² (positive).
	BrakeDecel float64
	// DataLatency is Tdata, the CAN-bus transmission latency.
	DataLatency time.Duration
	// MechLatency is Tmech, the time for the mechanical components to
	// start reacting.
	MechLatency time.Duration
}

// DefaultLatencyModel returns the parameters measured from the deployed
// vehicles: v = 5.6 m/s, a = 4 m/s², Tdata ≈ 1 ms, Tmech ≈ 19 ms.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		Speed:       5.6,
		BrakeDecel:  4.0,
		DataLatency: 1 * time.Millisecond,
		MechLatency: 19 * time.Millisecond,
	}
}

// StopTime returns Tstop = v/a (Eq. 1b).
func (m LatencyModel) StopTime() time.Duration {
	return time.Duration(m.Speed / m.BrakeDecel * float64(time.Second))
}

// BrakingDistance returns 1/2*a*Tstop² = v²/(2a), the theoretical
// lower-bound of obstacle avoidance (4 m at the default parameters).
func (m LatencyModel) BrakingDistance() float64 {
	return m.Speed * m.Speed / (2 * m.BrakeDecel)
}

// StoppingDistance returns the total distance traveled between the event
// being sensed and the vehicle standing still, for a given computing
// latency (the left-hand side of Eq. 1a).
func (m LatencyModel) StoppingDistance(tcomp time.Duration) float64 {
	reaction := tcomp + m.DataLatency + m.MechLatency
	return reaction.Seconds()*m.Speed + m.BrakingDistance()
}

// ComputingBudget inverts Eq. 1a: the maximum allowed Tcomp for avoiding an
// object first sensed at distance d meters. A negative result means the
// object is inside the braking-distance floor and cannot be avoided by any
// computing system (Fig. 3a's left edge).
func (m LatencyModel) ComputingBudget(d float64) time.Duration {
	slack := (d - m.BrakingDistance()) / m.Speed
	budget := time.Duration(slack*float64(time.Second)) - m.DataLatency - m.MechLatency
	return budget
}

// AvoidableDistance returns the minimum object distance that a computing
// latency tcomp can still avoid (the paper: 164 ms → 5 m, 740 ms → 8.3 m,
// reactive path 30 ms → 4.1 m... sic, including data+mech).
func (m LatencyModel) AvoidableDistance(tcomp time.Duration) float64 {
	return m.StoppingDistance(tcomp)
}

// CanAvoid reports whether an object sensed at d meters is avoidable with
// computing latency tcomp.
func (m LatencyModel) CanAvoid(tcomp time.Duration, d float64) bool {
	return m.StoppingDistance(tcomp) <= d
}

// ComputeShare returns Tcomp / (Tcomp + Tdata + Tmech): the fraction of the
// pre-braking end-to-end latency attributable to the computing system (the
// paper reports 88% at the mean 164 ms).
func (m LatencyModel) ComputeShare(tcomp time.Duration) float64 {
	total := tcomp + m.DataLatency + m.MechLatency
	if total == 0 {
		return 0
	}
	return float64(tcomp) / float64(total)
}

// Validate reports whether the model parameters are physically meaningful.
func (m LatencyModel) Validate() error {
	if m.Speed <= 0 {
		return fmt.Errorf("models: speed %v must be positive", m.Speed)
	}
	if m.BrakeDecel <= 0 {
		return fmt.Errorf("models: brake deceleration %v must be positive", m.BrakeDecel)
	}
	if m.DataLatency < 0 || m.MechLatency < 0 {
		return fmt.Errorf("models: negative latency components")
	}
	return nil
}

// RequirementPoint is one <distance, budget> sample of the Fig. 3a curve.
type RequirementPoint struct {
	Distance float64       // object distance in meters
	Budget   time.Duration // max allowed computing latency
}

// RequirementCurve samples the Fig. 3a curve over [dMin, dMax] with n
// points (n >= 2).
func (m LatencyModel) RequirementCurve(dMin, dMax float64, n int) []RequirementPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]RequirementPoint, n)
	for i := 0; i < n; i++ {
		d := dMin + (dMax-dMin)*float64(i)/float64(n-1)
		pts[i] = RequirementPoint{Distance: d, Budget: m.ComputingBudget(d)}
	}
	return pts
}

// SpeedForBudget answers the dual question: given a fixed computing latency
// and object distance, what is the maximum safe speed? Solved from Eq. 1a:
// v²/(2a) + v*T - d = 0.
func (m LatencyModel) SpeedForBudget(tcomp time.Duration, d float64) float64 {
	t := (tcomp + m.DataLatency + m.MechLatency).Seconds()
	a := m.BrakeDecel
	// v = a*(-T + sqrt(T² + 2d/a))
	disc := t*t + 2*d/a
	v := a * (-t + math.Sqrt(disc))
	if v < 0 {
		return 0
	}
	return v
}
