package models

import (
	"math"
	"strings"
	"testing"
)

func TestDrivingTimeBaseline(t *testing.T) {
	m := DefaultEnergyModel()
	// 6 kWh / 0.6 kW = 10 hours without AD.
	if got := m.DrivingTimeHours(0); math.Abs(got-10) > 1e-12 {
		t.Fatalf("baseline driving time = %v", got)
	}
}

func TestCurrentSystemDrivingTime(t *testing.T) {
	m := DefaultEnergyModel()
	// Paper: PAD = 175 W reduces driving time from 10 h to 7.7 h.
	got := m.DrivingTimeHours(0.175)
	if math.Abs(got-7.74) > 0.05 {
		t.Fatalf("driving time with AD = %v, want ~7.7", got)
	}
	red := m.ReducedDrivingTimeHours(0.175)
	if math.Abs(red-2.26) > 0.05 {
		t.Fatalf("reduced = %v, want ~2.3", red)
	}
}

func TestAdditionalIdleServerCostsPointThreeHours(t *testing.T) {
	m := DefaultEnergyModel()
	// Paper: +31 W idle server reduces driving time by ~0.3 h → 3% of a
	// 10 h operating day.
	base := 0.175
	withServer := base + ServerIdlePowerW/1000
	delta := m.DrivingTimeHours(base) - m.DrivingTimeHours(withServer)
	if math.Abs(delta-0.3) > 0.05 {
		t.Fatalf("idle server delta = %v h, want ~0.3", delta)
	}
	pct := m.RevenueLossPercent(base, withServer, 10)
	if math.Abs(pct-3) > 0.5 {
		t.Fatalf("revenue loss = %v%%, want ~3%%", pct)
	}
}

func TestLiDARSuiteCostsPointEightHours(t *testing.T) {
	m := DefaultEnergyModel()
	// Paper: applying Waymo's LiDAR suite (~92 W) reduces driving time a
	// further ~0.8 h vs. the current system.
	lidarW := 0.0
	for _, c := range WaymoLiDARSuite() {
		lidarW += c.TotalW()
	}
	if math.Abs(lidarW-92) > 1e-9 {
		t.Fatalf("LiDAR suite power = %v W, want 92", lidarW)
	}
	delta := m.DrivingTimeHours(0.175) - m.DrivingTimeHours(0.175+lidarW/1000)
	if math.Abs(delta-0.8) > 0.1 {
		t.Fatalf("LiDAR delta = %v h, want ~0.8", delta)
	}
}

func TestFullLoadServerAbout3Hours(t *testing.T) {
	m := DefaultEnergyModel()
	// Paper Fig. 3b: +1 server at full load lands near 0.29 kW where the
	// total reduction is ~3.3-3.5 h.
	red := m.ReducedDrivingTimeHours(0.175 + ServerDynamicPowerW/1000)
	if red < 3.0 || red > 3.6 {
		t.Fatalf("full-load reduction = %v h, want ~3.3", red)
	}
}

func TestReducedMonotonicInPAD(t *testing.T) {
	m := DefaultEnergyModel()
	prev := -1.0
	for pad := 0.15; pad <= 0.35; pad += 0.01 {
		r := m.ReducedDrivingTimeHours(pad)
		if r <= prev {
			t.Fatalf("not monotonic at pad=%v", pad)
		}
		prev = r
	}
}

func TestPowerBudgetTotalsMatchTableI(t *testing.T) {
	b := DefaultPowerBudget()
	if math.Abs(b.TotalW()-175) > 1e-9 {
		t.Fatalf("PAD total = %v W, want 175", b.TotalW())
	}
	if math.Abs(b.TotalKW()-0.175) > 1e-12 {
		t.Fatalf("PAD total kW = %v", b.TotalKW())
	}
}

func TestPowerBudgetWith(t *testing.T) {
	b := DefaultPowerBudget()
	b2 := b.With(PowerComponent{Name: "Extra server (idle)", PowerW: 31, Quantity: 1})
	if math.Abs(b2.TotalW()-206) > 1e-9 {
		t.Fatalf("with server = %v W", b2.TotalW())
	}
	if len(b.Components) == len(b2.Components) {
		t.Fatal("With should not mutate the receiver")
	}
}

func TestPowerBudgetRender(t *testing.T) {
	out := DefaultPowerBudget().Render()
	for _, want := range []string{"Radar", "Sonar", "PAD", "175.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEnergyModelValidate(t *testing.T) {
	if err := DefaultEnergyModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if (EnergyModel{}).Validate() == nil {
		t.Fatal("zero model should be invalid")
	}
}

func TestRechargeHours(t *testing.T) {
	m := DefaultEnergyModel()
	// Full 6 kWh pack on the 3 kW depot feed: 2 hours out of service.
	if got := m.RechargeHours(1, DepotChargeRateKW); math.Abs(got-2) > 1e-12 {
		t.Fatalf("full recharge = %v h, want 2", got)
	}
	// The fleet's usual 20% → 95% top-up is three quarters of that.
	if got := m.RechargeHours(0.75, DepotChargeRateKW); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("0.75 SoC recharge = %v h, want 1.5", got)
	}
	if m.RechargeHours(0, DepotChargeRateKW) != 0 || m.RechargeHours(0.5, 0) != 0 {
		t.Fatal("degenerate inputs must cost no time")
	}
}
