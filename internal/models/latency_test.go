package models

import (
	"math"
	"testing"
	"time"
)

func TestBrakingDistanceMatchesPaper(t *testing.T) {
	m := DefaultLatencyModel()
	// v=5.6 m/s, a=4 m/s² → 3.92 m, the paper's "4 m braking distance".
	if got := m.BrakingDistance(); math.Abs(got-3.92) > 1e-9 {
		t.Fatalf("braking distance = %v, want 3.92", got)
	}
	if st := m.StopTime(); math.Abs(st.Seconds()-1.4) > 1e-9 {
		t.Fatalf("stop time = %v, want 1.4 s", st)
	}
}

func TestMeanLatencyAvoidsFiveMeters(t *testing.T) {
	m := DefaultLatencyModel()
	// Paper: with 164 ms mean Tcomp, the vehicle avoids objects >= 5 m.
	d := m.AvoidableDistance(164 * time.Millisecond)
	if d > 5.0 || d < 4.8 {
		t.Fatalf("avoidable distance at 164 ms = %.3f m, want ~4.95 (<= 5)", d)
	}
	if !m.CanAvoid(164*time.Millisecond, 5.0) {
		t.Fatal("164 ms should avoid a 5 m object")
	}
}

func TestWorstCaseLatencyAvoidsEightPointThree(t *testing.T) {
	m := DefaultLatencyModel()
	// Paper: with 740 ms worst-case Tcomp, avoid objects >= 8.3 m.
	d := m.AvoidableDistance(740 * time.Millisecond)
	if math.Abs(d-8.176) > 0.2 {
		t.Fatalf("avoidable distance at 740 ms = %.3f m, want ~8.2-8.3", d)
	}
}

func TestReactivePathApproachesBrakingLimit(t *testing.T) {
	m := DefaultLatencyModel()
	// Paper: the 30 ms reactive path avoids objects ~4.1 m away,
	// approaching the 4 m theoretical limit.
	d := m.AvoidableDistance(30 * time.Millisecond)
	if d < 4.0 || d > 4.3 {
		t.Fatalf("reactive avoidable distance = %.3f m, want ~4.1-4.2", d)
	}
}

func TestComputingBudgetInverse(t *testing.T) {
	m := DefaultLatencyModel()
	for _, d := range []float64{4.5, 5, 7, 10} {
		budget := m.ComputingBudget(d)
		// At exactly the budget, stopping distance equals d.
		got := m.StoppingDistance(budget)
		if math.Abs(got-d) > 1e-6 {
			t.Fatalf("inverse mismatch at d=%v: stopping=%v", d, got)
		}
	}
}

func TestComputingBudgetNegativeInsideBrakingFloor(t *testing.T) {
	m := DefaultLatencyModel()
	if b := m.ComputingBudget(3.0); b >= 0 {
		t.Fatalf("budget inside braking floor = %v, want negative", b)
	}
}

func TestBudgetTightensWithDistance(t *testing.T) {
	m := DefaultLatencyModel()
	pts := m.RequirementCurve(4, 10, 20)
	for i := 1; i < len(pts); i++ {
		if pts[i].Budget <= pts[i-1].Budget {
			t.Fatalf("budget not monotonic at %d: %v -> %v", i, pts[i-1].Budget, pts[i].Budget)
		}
	}
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestComputeShareMatchesPaper(t *testing.T) {
	m := DefaultLatencyModel()
	// Paper: computing is 88% of end-to-end latency at the 164 ms mean
	// (rest is mechanical latency + CAN).
	share := m.ComputeShare(164 * time.Millisecond)
	if math.Abs(share-0.89) > 0.02 {
		t.Fatalf("compute share = %.3f, want ~0.88-0.89", share)
	}
	if m.ComputeShare(0) >= 0.01 {
		t.Fatal("zero tcomp should have ~0 share")
	}
}

func TestSpeedForBudgetRoundTrip(t *testing.T) {
	m := DefaultLatencyModel()
	// With the default speed's own stopping distance, the answer should
	// be the default speed.
	d := m.StoppingDistance(164 * time.Millisecond)
	v := m.SpeedForBudget(164*time.Millisecond, d)
	if math.Abs(v-m.Speed) > 1e-9 {
		t.Fatalf("speed = %v, want %v", v, m.Speed)
	}
	if m.SpeedForBudget(164*time.Millisecond, 0) != 0 {
		t.Fatal("zero distance should force zero speed")
	}
}

func TestLatencyModelValidate(t *testing.T) {
	if err := DefaultLatencyModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLatencyModel()
	bad.Speed = 0
	if bad.Validate() == nil {
		t.Fatal("zero speed should be invalid")
	}
	bad = DefaultLatencyModel()
	bad.BrakeDecel = -1
	if bad.Validate() == nil {
		t.Fatal("negative decel should be invalid")
	}
	bad = DefaultLatencyModel()
	bad.MechLatency = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative latency should be invalid")
	}
}

func TestRequirementCurveMinPoints(t *testing.T) {
	m := DefaultLatencyModel()
	pts := m.RequirementCurve(4, 10, 1)
	if len(pts) != 2 {
		t.Fatalf("n<2 should clamp to 2, got %d", len(pts))
	}
}
