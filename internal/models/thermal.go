package models

import "fmt"

// ThermalModel is the Sec. III-B thermal constraint: a lumped
// thermal-resistance model of the computing enclosure. The paper's point is
// that at PAD < 200 W, conventional fan cooling holds the system inside its
// commercial temperature range across the deployment climates
// (−20 °C … +40 °C); this model lets that claim be checked quantitatively
// and shows where it would break.
type ThermalModel struct {
	// ThermalResistanceCW is the enclosure's effective junction-to-ambient
	// thermal resistance in °C per watt with the stock fans.
	ThermalResistanceCW float64
	// MaxComponentTempC is the commercial-grade ceiling.
	MaxComponentTempC float64
	// FanPowerW is drawn whenever active cooling runs.
	FanPowerW float64
}

// DefaultThermalModel returns the deployed server-enclosure parameters:
// ~0.25 °C/W with fans, 85 °C ceiling.
func DefaultThermalModel() ThermalModel {
	return ThermalModel{ThermalResistanceCW: 0.25, MaxComponentTempC: 85, FanPowerW: 6}
}

// SteadyTempC returns the steady-state internal temperature for a heat load
// at an ambient temperature.
func (m ThermalModel) SteadyTempC(loadW, ambientC float64) float64 {
	return ambientC + m.ThermalResistanceCW*loadW
}

// WithinLimits reports whether the load is thermally safe at the ambient.
func (m ThermalModel) WithinLimits(loadW, ambientC float64) bool {
	return m.SteadyTempC(loadW, ambientC) <= m.MaxComponentTempC
}

// HeadroomW returns how much more power could be dissipated at the ambient
// before hitting the ceiling (negative when already over).
func (m ThermalModel) HeadroomW(loadW, ambientC float64) float64 {
	if m.ThermalResistanceCW <= 0 {
		return 0
	}
	return (m.MaxComponentTempC-ambientC)/m.ThermalResistanceCW - loadW
}

// MaxLoadW returns the largest thermally safe load at the ambient.
func (m ThermalModel) MaxLoadW(ambientC float64) float64 {
	if m.ThermalResistanceCW <= 0 {
		return 0
	}
	return (m.MaxComponentTempC - ambientC) / m.ThermalResistanceCW
}

// Validate reports whether the model is physically meaningful.
func (m ThermalModel) Validate() error {
	if m.ThermalResistanceCW <= 0 || m.MaxComponentTempC <= 0 {
		return fmt.Errorf("models: thermal model needs positive resistance and ceiling")
	}
	return nil
}
