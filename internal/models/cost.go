package models

import (
	"fmt"
	"strings"
)

// CostItem is one row of the Table II cost breakdown.
type CostItem struct {
	Name     string
	PriceUSD float64
	Quantity int
}

// TotalUSD returns PriceUSD * Quantity.
func (c CostItem) TotalUSD() float64 { return c.PriceUSD * float64(c.Quantity) }

// CostModel captures the vehicle bill-of-materials view of Table II plus
// the simple TCO-style operating view sketched in Sec. VII.
type CostModel struct {
	Items []CostItem
	// RetailPriceUSD is the vehicle's selling price (sensor rows are a
	// subset of what the retail price covers).
	RetailPriceUSD float64
}

// DefaultCameraVehicleCost returns our camera-based vehicle's Table II
// rows: cameras×4 + IMU $1,000, radar×6 $3,000, sonar×8 $1,600, GPS
// $1,000, retail $70,000.
func DefaultCameraVehicleCost() CostModel {
	return CostModel{
		Items: []CostItem{
			{Name: "Cameras x4 + IMU", PriceUSD: 1000, Quantity: 1},
			{Name: "Radar", PriceUSD: 500, Quantity: 6},
			{Name: "Sonar", PriceUSD: 200, Quantity: 8},
			{Name: "GPS", PriceUSD: 1000, Quantity: 1},
		},
		RetailPriceUSD: 70000,
	}
}

// DefaultLiDARVehicleCost returns the LiDAR-based comparison rows: one
// long-range LiDAR $80,000, four short-range $4,000 each, estimated retail
// >$300,000.
func DefaultLiDARVehicleCost() CostModel {
	return CostModel{
		Items: []CostItem{
			{Name: "Long-range LiDAR", PriceUSD: 80000, Quantity: 1},
			{Name: "Short-range LiDAR", PriceUSD: 4000, Quantity: 4},
		},
		RetailPriceUSD: 300000,
	}
}

// SensorTotalUSD sums the sensor rows.
func (m CostModel) SensorTotalUSD() float64 {
	sum := 0.0
	for _, it := range m.Items {
		sum += it.TotalUSD()
	}
	return sum
}

// Render formats the cost model as an aligned text table (Table II).
func (m CostModel) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-30s %12s %5s %12s\n", "Component", "Price (USD)", "Qty", "Total (USD)")
	for _, it := range m.Items {
		fmt.Fprintf(&sb, "%-30s %12.0f %5d %12.0f\n", it.Name, it.PriceUSD, it.Quantity, it.TotalUSD())
	}
	fmt.Fprintf(&sb, "%-30s %12s %5s %12.0f\n", "Sensor subtotal", "", "", m.SensorTotalUSD())
	fmt.Fprintf(&sb, "%-30s %12s %5s %12.0f\n", "Retail price", "", "", m.RetailPriceUSD)
	return sb.String()
}

// TCO is the total-cost-of-ownership sketch from Sec. VII: vehicle capital
// cost amortized over a service life plus recurring operating costs.
type TCO struct {
	VehicleUSD        float64 // purchase price
	ServiceLifeYears  float64
	AnnualServiceUSD  float64 // maintenance, insurance, remote ops
	AnnualCloudUSD    float64 // map upkeep, model training, storage
	AnnualEnergyUSD   float64 // charging
	TripsPerDay       float64
	OperatingDaysYear float64
}

// DefaultTCO returns a plausible operating profile for the Japan tourist
// site deployment ($1/trip pricing context).
func DefaultTCO() TCO {
	return TCO{
		VehicleUSD:        70000,
		ServiceLifeYears:  5,
		AnnualServiceUSD:  6000,
		AnnualCloudUSD:    2000,
		AnnualEnergyUSD:   800,
		TripsPerDay:       60,
		OperatingDaysYear: 330,
	}
}

// AnnualUSD returns the total cost per operating year.
func (t TCO) AnnualUSD() float64 {
	capital := 0.0
	if t.ServiceLifeYears > 0 {
		capital = t.VehicleUSD / t.ServiceLifeYears
	}
	return capital + t.AnnualServiceUSD + t.AnnualCloudUSD + t.AnnualEnergyUSD
}

// CostPerTripUSD returns the break-even per-trip cost.
func (t TCO) CostPerTripUSD() float64 {
	trips := t.TripsPerDay * t.OperatingDaysYear
	if trips == 0 {
		return 0
	}
	return t.AnnualUSD() / trips
}

// Validate reports whether the TCO profile is self-consistent.
func (t TCO) Validate() error {
	if t.VehicleUSD < 0 || t.ServiceLifeYears <= 0 {
		return fmt.Errorf("models: TCO needs non-negative vehicle cost and positive service life")
	}
	if t.TripsPerDay < 0 || t.OperatingDaysYear < 0 {
		return fmt.Errorf("models: TCO needs non-negative trip counts")
	}
	return nil
}
