package models

import (
	"fmt"
	"sort"
	"strings"
)

// EnergyModel captures Eq. 2: the driving time lost to the power drawn by
// the autonomous-driving system.
//
//	Treduced = E/Pv − E/(Pv + Pad)
type EnergyModel struct {
	// CapacityKWh is the battery capacity E in kilowatt-hours.
	CapacityKWh float64
	// VehiclePowerKW is Pv, the average power of the vehicle itself
	// (without autonomous driving), in kW.
	VehiclePowerKW float64
}

// DefaultEnergyModel returns the deployed vehicle's parameters: a 6 kWh
// battery and a 0.6 kW average vehicle draw (10 h driving time baseline).
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{CapacityKWh: 6, VehiclePowerKW: 0.6}
}

// DrivingTimeHours returns the driving time on a single charge when the
// autonomous-driving system draws padKW kilowatts.
func (m EnergyModel) DrivingTimeHours(padKW float64) float64 {
	return m.CapacityKWh / (m.VehiclePowerKW + padKW)
}

// DepotChargeRateKW is the nominal depot charger power for the deployed
// fleet: a level-2-class 3 kW feed, which refills the 6 kWh pack in about
// two hours — the recharge-downtime constant the fleet dispatcher's
// availability metric is built on.
const DepotChargeRateKW = 3.0

// RechargeHours returns how long a charger of chargeKW takes to restore
// deltaSoC (a fraction of the pack) — the out-of-service window a vehicle
// pays per depot visit.
func (m EnergyModel) RechargeHours(deltaSoC, chargeKW float64) float64 {
	if chargeKW <= 0 || deltaSoC <= 0 {
		return 0
	}
	return deltaSoC * m.CapacityKWh / chargeKW
}

// ReducedDrivingTimeHours implements Eq. 2.
func (m EnergyModel) ReducedDrivingTimeHours(padKW float64) float64 {
	return m.CapacityKWh/m.VehiclePowerKW - m.DrivingTimeHours(padKW)
}

// RevenueLossPercent converts a driving-time reduction into percent of an
// operating day of the given length (the paper's +31 W idle server →
// 0.3 h → 3% of a 10 h day).
func (m EnergyModel) RevenueLossPercent(padBeforeKW, padAfterKW, dayHours float64) float64 {
	delta := m.DrivingTimeHours(padBeforeKW) - m.DrivingTimeHours(padAfterKW)
	return 100 * delta / dayHours
}

// Validate reports whether the parameters are physically meaningful.
func (m EnergyModel) Validate() error {
	if m.CapacityKWh <= 0 || m.VehiclePowerKW <= 0 {
		return fmt.Errorf("models: energy model needs positive capacity and vehicle power")
	}
	return nil
}

// PowerComponent is one row of the Table I power breakdown.
type PowerComponent struct {
	Name     string
	PowerW   float64
	Quantity int
}

// TotalW returns PowerW * Quantity.
func (c PowerComponent) TotalW() float64 { return c.PowerW * float64(c.Quantity) }

// PowerBudget is the autonomous-driving power breakdown (Table I).
type PowerBudget struct {
	Components []PowerComponent
}

// DefaultPowerBudget returns Table I as measured on the deployed vehicles:
// the main CPU+GPU server (118 W dynamic / 31 W idle), the embedded vision
// module (FPGA + cameras/IMU/GPS, 11 W), six radars (13 W total), and eight
// sonars (2 W total), for a 175 W PAD total. The server row uses its
// average (dynamic) figure; idle is tracked separately by callers that need
// it (e.g. the "+1 server idle" point of Fig. 3b).
func DefaultPowerBudget() PowerBudget {
	return PowerBudget{Components: []PowerComponent{
		{Name: "Main computing server (CPU+GPU), dynamic", PowerW: 118, Quantity: 1},
		{Name: "Main computing server (CPU+GPU), idle overhead", PowerW: 31, Quantity: 1},
		{Name: "Embedded vision module (FPGA+cameras/IMU/GPS)", PowerW: 11, Quantity: 1},
		{Name: "Radar", PowerW: 13.0 / 6.0, Quantity: 6},
		{Name: "Sonar", PowerW: 2.0 / 8.0, Quantity: 8},
	}}
}

// Constants for the LiDAR comparison of Table I / Fig. 3b.
const (
	// LongRangeLiDARPowerW is a Velodyne HDL-64E-class unit.
	LongRangeLiDARPowerW = 60.0
	// ShortRangeLiDARPowerW is a Velodyne Puck-class unit.
	ShortRangeLiDARPowerW = 8.0
	// ServerIdlePowerW is the idle draw of one on-vehicle server.
	ServerIdlePowerW = 31.0
	// ServerDynamicPowerW is the loaded draw of one on-vehicle server.
	ServerDynamicPowerW = 118.0
)

// TotalW sums all component rows.
func (b PowerBudget) TotalW() float64 {
	sum := 0.0
	for _, c := range b.Components {
		sum += c.TotalW()
	}
	return sum
}

// TotalKW is TotalW in kilowatts (for the EnergyModel).
func (b PowerBudget) TotalKW() float64 { return b.TotalW() / 1000 }

// With returns a copy of the budget with an extra component appended; used
// to build the "+LiDAR" and "+1 server" scenarios of Fig. 3b.
func (b PowerBudget) With(c PowerComponent) PowerBudget {
	out := PowerBudget{Components: make([]PowerComponent, len(b.Components)+1)}
	copy(out.Components, b.Components)
	out.Components[len(b.Components)] = c
	return out
}

// WaymoLiDARSuite returns the 1 long-range + 4 short-range configuration
// (~92 W) the paper uses for its Fig. 3b "Use LiDAR" point.
func WaymoLiDARSuite() []PowerComponent {
	return []PowerComponent{
		{Name: "Long-range LiDAR", PowerW: LongRangeLiDARPowerW, Quantity: 1},
		{Name: "Short-range LiDAR", PowerW: ShortRangeLiDARPowerW, Quantity: 4},
	}
}

// Render formats the budget as an aligned text table (Table I).
func (b PowerBudget) Render() string {
	var sb strings.Builder
	rows := make([]PowerComponent, len(b.Components))
	copy(rows, b.Components)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TotalW() > rows[j].TotalW() })
	fmt.Fprintf(&sb, "%-50s %10s %5s %10s\n", "Component", "Power (W)", "Qty", "Total (W)")
	for _, c := range rows {
		fmt.Fprintf(&sb, "%-50s %10.1f %5d %10.1f\n", c.Name, c.PowerW, c.Quantity, c.TotalW())
	}
	fmt.Fprintf(&sb, "%-50s %10s %5s %10.1f\n", "Total for AD (PAD)", "", "", b.TotalW())
	return sb.String()
}
