package models

import (
	"math"
	"strings"
	"testing"
)

func TestCameraVehicleCostMatchesTableII(t *testing.T) {
	m := DefaultCameraVehicleCost()
	// Cameras+IMU 1000, radar 3000, sonar 1600, GPS 1000 → 6600 total.
	if got := m.SensorTotalUSD(); math.Abs(got-6600) > 1e-9 {
		t.Fatalf("sensor total = %v, want 6600", got)
	}
	if m.RetailPriceUSD != 70000 {
		t.Fatalf("retail = %v", m.RetailPriceUSD)
	}
}

func TestLiDARVehicleCostMatchesTableII(t *testing.T) {
	m := DefaultLiDARVehicleCost()
	// Long-range 80k + 4×4k short-range = 96k sensors.
	if got := m.SensorTotalUSD(); math.Abs(got-96000) > 1e-9 {
		t.Fatalf("sensor total = %v, want 96000", got)
	}
	if m.RetailPriceUSD < 300000 {
		t.Fatalf("retail = %v, want >= 300000", m.RetailPriceUSD)
	}
}

func TestLiDARSensorsCostAtLeastTenXCamera(t *testing.T) {
	cam := DefaultCameraVehicleCost().SensorTotalUSD()
	lidar := DefaultLiDARVehicleCost().SensorTotalUSD()
	if lidar/cam < 10 {
		t.Fatalf("LiDAR/camera sensor ratio = %v, want >= 10", lidar/cam)
	}
}

func TestCostRender(t *testing.T) {
	out := DefaultCameraVehicleCost().Render()
	for _, want := range []string{"Radar", "GPS", "70000", "Sensor subtotal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTCODollarPerTrip(t *testing.T) {
	tco := DefaultTCO()
	// The tourist site charges $1/trip; break-even should be near that.
	perTrip := tco.CostPerTripUSD()
	if perTrip < 0.5 || perTrip > 2.0 {
		t.Fatalf("cost per trip = %v, want O($1)", perTrip)
	}
}

func TestTCOAnnual(t *testing.T) {
	tco := TCO{VehicleUSD: 50000, ServiceLifeYears: 5, AnnualServiceUSD: 1000,
		AnnualCloudUSD: 500, AnnualEnergyUSD: 500, TripsPerDay: 10, OperatingDaysYear: 100}
	if got := tco.AnnualUSD(); got != 12000 {
		t.Fatalf("annual = %v", got)
	}
	if got := tco.CostPerTripUSD(); got != 12 {
		t.Fatalf("per trip = %v", got)
	}
}

func TestTCOZeroTrips(t *testing.T) {
	tco := DefaultTCO()
	tco.TripsPerDay = 0
	if tco.CostPerTripUSD() != 0 {
		t.Fatal("zero trips should return 0, not NaN/Inf")
	}
}

func TestTCOValidate(t *testing.T) {
	if err := DefaultTCO().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTCO()
	bad.ServiceLifeYears = 0
	if bad.Validate() == nil {
		t.Fatal("zero life should be invalid")
	}
	bad = DefaultTCO()
	bad.TripsPerDay = -1
	if bad.Validate() == nil {
		t.Fatal("negative trips should be invalid")
	}
}
