package models

import (
	"math"
	"testing"
)

func TestDeployedLoadSafeAcrossClimates(t *testing.T) {
	// Sec. III-B: PAD < 200 W is thermally unproblematic from −20 °C to
	// +40 °C with conventional cooling.
	m := DefaultThermalModel()
	load := DefaultPowerBudget().TotalW() // 175 W
	for _, ambient := range []float64{-20, 0, 25, 40} {
		if !m.WithinLimits(load, ambient) {
			t.Fatalf("175 W unsafe at %v°C (temp %v)", ambient, m.SteadyTempC(load, ambient))
		}
	}
}

func TestThermalLimitExistsAtHighLoad(t *testing.T) {
	m := DefaultThermalModel()
	// A LiDAR-class stack plus extra servers at desert ambient would not
	// be "not a problem" anymore.
	if m.WithinLimits(500, 40) {
		t.Fatal("500 W at 40°C should exceed the ceiling (this is why PAD matters)")
	}
}

func TestSteadyTempLinear(t *testing.T) {
	m := DefaultThermalModel()
	if got := m.SteadyTempC(100, 20); math.Abs(got-45) > 1e-9 {
		t.Fatalf("steady temp = %v, want 45", got)
	}
}

func TestHeadroomAndMaxLoad(t *testing.T) {
	m := DefaultThermalModel()
	max := m.MaxLoadW(40)
	if math.Abs(max-180) > 1e-9 {
		t.Fatalf("max load at 40°C = %v, want 180", max)
	}
	if h := m.HeadroomW(175, 40); math.Abs(h-5) > 1e-9 {
		t.Fatalf("headroom = %v, want 5", h)
	}
	if m.HeadroomW(300, 40) >= 0 {
		t.Fatal("over-ceiling load should have negative headroom")
	}
}

func TestThermalValidate(t *testing.T) {
	if err := DefaultThermalModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if (ThermalModel{}).Validate() == nil {
		t.Fatal("zero model should be invalid")
	}
	z := ThermalModel{}
	if z.MaxLoadW(20) != 0 || z.HeadroomW(10, 20) != 0 {
		t.Fatal("degenerate model should return zeros, not Inf")
	}
}
