package sensorsync

import (
	"testing"
	"time"

	"sov/internal/sim"
)

func TestSoftwareSyncHasLargeVariableError(t *testing.T) {
	res := SoftwareSyncExperiment(20*time.Second, sim.NewRNG(1))
	if res.Frames < 500 {
		t.Fatalf("frames = %d", res.Frames)
	}
	// Fig. 12b: software pairing errors reach tens of ms (C0 matched with
	// M7 is ~29 ms at 240 Hz).
	if res.MeanMs < 5 {
		t.Fatalf("software sync mean error = %.2f ms, expected tens of ms", res.MeanMs)
	}
	if res.MaxMs < 20 {
		t.Fatalf("software sync max error = %.2f ms, expected > 20 ms", res.MaxMs)
	}
	// And it is variable, not a constant compensable bias.
	if res.Errors.Std() < 2 {
		t.Fatalf("software sync error std = %.2f ms, expected variable", res.Errors.Std())
	}
}

func TestHardwareSyncSubMillisecond(t *testing.T) {
	res := HardwareSyncExperiment(20*time.Second, sim.NewRNG(2))
	if res.Frames < 500 {
		t.Fatalf("frames = %d", res.Frames)
	}
	// Sec. VI-A3: "The localization results are indistinguishable from
	// ground truth"; pairing error is bounded by the interface jitter.
	if res.MeanMs > 2 {
		t.Fatalf("hardware sync mean error = %.3f ms, want ~1 ms", res.MeanMs)
	}
	if res.MaxMs > 5 {
		t.Fatalf("hardware sync max error = %.3f ms", res.MaxMs)
	}
}

func TestHardwareBeatsSoftwareByOrderOfMagnitude(t *testing.T) {
	sw := SoftwareSyncExperiment(15*time.Second, sim.NewRNG(3))
	hw := HardwareSyncExperiment(15*time.Second, sim.NewRNG(3))
	if sw.MeanMs < 8*hw.MeanMs {
		t.Fatalf("sw %.2f ms vs hw %.2f ms: want >= 8x gap", sw.MeanMs, hw.MeanMs)
	}
}

func TestSynchronizerFootprint(t *testing.T) {
	r := HardwareSynchronizerResources()
	if r.LUTs != 1443 || r.Registers != 1587 {
		t.Fatalf("resources = %+v", r)
	}
	if r.PowerW > 0.01 {
		t.Fatalf("power = %v W, want ~5 mW", r.PowerW)
	}
	if r.AddedLatency >= time.Millisecond {
		t.Fatalf("added latency = %v, want < 1 ms", r.AddedLatency)
	}
}

func TestDepthErrorGrowsWithOffset(t *testing.T) {
	// Fig. 11a: depth error increases as the stereo pair desynchronizes.
	objZ, v, maxD := 5.0, 1.2, 25.0
	e0 := DepthErrorAtOffset(0, objZ, v, maxD)
	e30 := DepthErrorAtOffset(30*time.Millisecond, objZ, v, maxD)
	e90 := DepthErrorAtOffset(90*time.Millisecond, objZ, v, maxD)
	if e0 > 0.5 {
		t.Fatalf("synchronized depth error = %.2f m, want small", e0)
	}
	if e30 <= e0 {
		t.Fatalf("30 ms error (%.2f) should exceed synced (%.2f)", e30, e0)
	}
	if e90 <= e30 {
		t.Fatalf("90 ms error (%.2f) should exceed 30 ms (%.2f)", e90, e30)
	}
	// Meter-scale error from a 30 ms offset (paper: ~5 m at their
	// full-scale rig; ours is a scaled-down 160x120 rig — see DESIGN.md).
	if e30 < 0.8 {
		t.Fatalf("30 ms depth error = %.2f m, want meter-scale", e30)
	}
}

func TestAnalyticMatchesRenderedDirection(t *testing.T) {
	objZ, v, maxD := 5.0, 1.2, 25.0
	for _, off := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond} {
		a := AnalyticDepthError(off, objZ, v, maxD)
		r := DepthErrorAtOffset(off, objZ, v, maxD)
		if a == 0 || r == 0 {
			t.Fatalf("degenerate errors at %v: analytic=%v rendered=%v", off, a, r)
		}
		// Within a factor of 3 of each other (matcher quantization).
		ratio := a / r
		if ratio < 0.33 || ratio > 3 {
			t.Fatalf("analytic %v vs rendered %v at %v", a, r, off)
		}
	}
}

func TestAnalyticDepthErrorSaturates(t *testing.T) {
	// Past the offset where disparity collapses, the error clamps at the
	// stack's max depth.
	e := AnalyticDepthError(500*time.Millisecond, 5, 1.2, 25)
	if e != 20 {
		t.Fatalf("saturated error = %v, want maxDepth - objZ = 20", e)
	}
}

func TestMultiCameraSyncScales(t *testing.T) {
	// Sec. VI-A3: the design extends to more cameras with no loss of
	// precision — the spread stays at interface-jitter level for 4 and 8
	// cameras alike.
	four := MultiCameraSyncExperiment(4, 10*time.Second, sim.NewRNG(4))
	eight := MultiCameraSyncExperiment(8, 10*time.Second, sim.NewRNG(5))
	if four.Frames < 200 || eight.Frames < 200 {
		t.Fatalf("frames = %d/%d", four.Frames, eight.Frames)
	}
	// Spread is the max-min of per-camera interface jitter; the extreme
	// spread grows slowly with camera count (order statistics) but stays
	// at the interface-jitter scale — far below software sync's tens of ms.
	if four.MeanMs > 1.5 || eight.MeanMs > 2.5 {
		t.Fatalf("multi-cam spread too large: 4-cam %.2f ms, 8-cam %.2f ms", four.MeanMs, eight.MeanMs)
	}
	// Doubling the rig must not blow up the spread.
	if eight.MeanMs > 3*four.MeanMs+0.1 {
		t.Fatalf("spread grew with camera count: %.2f -> %.2f ms", four.MeanMs, eight.MeanMs)
	}
	if !four.IMUSynced {
		t.Fatal("camera pulses must coincide with IMU triggers")
	}
}

func TestMultiCameraMinimumTwo(t *testing.T) {
	r := MultiCameraSyncExperiment(1, 2*time.Second, sim.NewRNG(6))
	if r.Cameras != 2 {
		t.Fatalf("cameras = %d, want clamp to 2", r.Cameras)
	}
}
