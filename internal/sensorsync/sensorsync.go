// Package sensorsync implements the sensor-synchronization co-design of
// Sec. VI-A: the software-only baseline (application-layer timestamping
// after a variable-latency pipeline, Fig. 12a/b) and the hardware
// synchronizer (GPS-disciplined common timer, camera trigger downsampled 8×
// from the IMU trigger, near-sensor timestamping with constant-delay
// compensation, Fig. 12c), plus the stereo depth-error experiment of
// Fig. 11a driven through the real rendering + stereo-matching stack.
package sensorsync

import (
	"math"
	"time"

	"sov/internal/isp"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/stats"
	"sov/internal/vision"
)

// SynchronizerResources documents the hardware synchronizer's footprint
// (Sec. VI-A3: 1,443 LUTs, 1,587 registers, 5 mW).
type SynchronizerResources struct {
	LUTs, Registers int
	PowerW          float64
	// AddedLatency is the end-to-end latency cost of synchronization.
	AddedLatency time.Duration
}

// HardwareSynchronizerResources returns the deployed footprint.
func HardwareSynchronizerResources() SynchronizerResources {
	return SynchronizerResources{LUTs: 1443, Registers: 1587, PowerW: 0.005,
		AddedLatency: 800 * time.Microsecond}
}

// PairingResult summarizes a camera–IMU association experiment: the error
// between the true capture instant of each frame and the true sample
// instant of the IMU measurement it was associated with.
type PairingResult struct {
	Frames  int
	Errors  *stats.Sample // milliseconds
	MeanMs  float64
	MaxMs   float64
	P99Ms   float64
	Dropped int
}

func summarize(errs *stats.Sample, frames, dropped int) PairingResult {
	return PairingResult{
		Frames:  frames,
		Errors:  errs,
		MeanMs:  errs.Mean(),
		MaxMs:   errs.Max(),
		P99Ms:   errs.Quantile(0.99),
		Dropped: dropped,
	}
}

// SoftwareSyncExperiment runs the Fig. 12a/b baseline: free-running camera
// and IMU on their own (drifting) oscillators, frames delivered through the
// variable-latency ISP/kernel pipeline, both timestamped at the application
// layer, then paired by nearest application timestamp.
func SoftwareSyncExperiment(horizon time.Duration, rng *sim.RNG) PairingResult {
	camCfg := sensors.DefaultCameraConfig("front-left")
	camCfg.Clock = sensors.Clock{DriftPPM: 150, Offset: 2 * time.Millisecond}
	cam := sensors.NewCamera(camCfg)
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.Clock = sensors.Clock{DriftPPM: -120, Offset: -1 * time.Millisecond}
	imu := sensors.NewIMU(imuCfg, rng.Fork())
	pipe := isp.DefaultPipeline()
	pipeRNG := rng.Fork()
	imuDelayRNG := rng.Fork()

	// IMU samples with application timestamps (small variable CPU delay).
	type appIMU struct {
		appTS  time.Duration
		trueTS time.Duration
	}
	var imuSamples []appIMU
	period := imu.Period()
	for t := time.Duration(0); t < horizon; t += period {
		// The IMU's local clock drives when it *thinks* it samples; the
		// application receives it after a variable delay.
		trueT := imuCfg.Clock.TrueFromLocal(t)
		if trueT < 0 || trueT >= horizon {
			continue
		}
		delay := time.Duration(imuDelayRNG.TruncNormal(1.5e6, 1e6, 0.1e6, 8e6))
		imuSamples = append(imuSamples, appIMU{appTS: trueT + delay, trueTS: trueT})
	}

	errs := stats.NewSample()
	frames := 0
	for _, trig := range cam.FreeRunTriggers(horizon) {
		f := cam.CaptureAt(trig)
		tr := pipe.Deliver(pipeRNG)
		appTS := f.ArrivalTime + tr.Total
		// Nearest application-timestamp IMU sample.
		best := time.Duration(math.MaxInt64)
		var bestTrue time.Duration
		for _, s := range imuSamples {
			d := s.appTS - appTS
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
				bestTrue = s.trueTS
			}
		}
		err := f.TrueCaptureTime - bestTrue
		if err < 0 {
			err = -err
		}
		errs.Observe(err.Seconds() * 1000)
		frames++
	}
	return summarize(errs, frames, 0)
}

// HardwareSyncExperiment runs the Fig. 12c design: one common timer
// (initialized from GPS atomic time) triggers the IMU at 240 Hz and the
// cameras on every 8th trigger; IMU samples are timestamped inside the
// synchronizer; camera frames are timestamped at the sensor interface and
// adjusted in software by the constant exposure + readout delay.
func HardwareSyncExperiment(horizon time.Duration, rng *sim.RNG) PairingResult {
	camCfg := sensors.DefaultCameraConfig("front-left")
	cam := sensors.NewCamera(camCfg)
	imuCfg := sensors.DefaultIMUConfig()
	imu := sensors.NewIMU(imuCfg, rng.Fork())
	pipe := isp.DefaultPipeline()
	ifaceRNG := rng.Fork()

	errs := stats.NewSample()
	frames := 0
	imuPeriod := imu.Period()
	camEvery := 8
	i := 0
	for t := imuPeriod; t < horizon; t += imuPeriod {
		i++
		// IMU sample timestamped by the synchronizer at the trigger.
		imuTrue := t
		if i%camEvery != 0 {
			continue
		}
		// Camera triggered by the same pulse.
		f := cam.CaptureAt(t)
		// Sensor-interface timestamp: arrival plus the tiny interface
		// stage (the only variability left).
		ifaceTS := f.ArrivalTime + pipe.InterfaceDelay(ifaceRNG)
		// Software adjustment: subtract the constant exposure + readout
		// (from the sensor datasheet) to recover the trigger time; add
		// half the exposure for mid-exposure alignment.
		recovered := ifaceTS - camCfg.Exposure - camCfg.Readout + camCfg.Exposure/2
		// The associated IMU sample is the one from the same trigger.
		err := (f.TrueCaptureTime - recovered) + (t - imuTrue)
		if err < 0 {
			err = -err
		}
		errs.Observe(err.Seconds() * 1000)
		frames++
	}
	return summarize(errs, frames, 0)
}

// DepthErrorAtOffset renders the Fig. 11a experiment for one inter-camera
// synchronization error: a textured target at depth objZ moving laterally
// at objSpeed m/s is captured by the left camera at t and by the right
// camera offset seconds later; the ELAS-style matcher estimates its depth
// and the absolute error against ground truth is returned. maxDepth clamps
// the estimate the way the deployed stack clamps its disparity search.
func DepthErrorAtOffset(offset time.Duration, objZ, objSpeed, maxDepth float64) float64 {
	rig := vision.DefaultStereoRig()
	left := vision.Scene{
		Background: 3, BgDepth: 30,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: objZ, W: 2.5, H: 2, Texture: 21}},
	}
	// While the right camera waits, the object moves laterally.
	dx := objSpeed * offset.Seconds()
	right := vision.Scene{
		Background: 3, BgDepth: 30,
		Boxes: []vision.Box{{X: dx, Y: 0, Z: objZ, W: 2.5, H: 2, Texture: 21}},
	}
	l := left.Render(rig.Intr, 0)
	r := right.Render(rig.Intr, rig.Baseline)

	maxDisp := int(rig.DisparityFromDepth(1.5)) + 2
	m := vision.SupportPointStereo(l, r, maxDisp, 3, 8, 3)
	// Object occupies the image center; use the median disparity there.
	cx, cy := int(rig.Intr.Cx), int(rig.Intr.Cy)
	med, ok := vision.MedianDisparityIn(m, cx-20, cy-15, cx+20, cy+15)
	minDisp := rig.DisparityFromDepth(maxDepth)
	if !ok || float64(med) < minDisp {
		// Matching failed or depth beyond the stack's limit.
		return maxDepth - objZ
	}
	est := rig.DepthFromDisparity(float64(med))
	if est > maxDepth {
		est = maxDepth
	}
	return math.Abs(est - objZ)
}

// AnalyticDepthError is the closed-form counterpart used by the sweep
// benches: the moving object shifts by v·Δt between the two exposures,
// corrupting the disparity by f·v·Δt/Z.
func AnalyticDepthError(offset time.Duration, objZ, objSpeed, maxDepth float64) float64 {
	rig := vision.DefaultStereoRig()
	d := rig.DisparityFromDepth(objZ)
	shift := rig.Intr.Fx * objSpeed * offset.Seconds() / objZ
	est := rig.DepthFromDisparity(d - shift)
	if est > maxDepth || est < 0 || math.IsInf(est, 1) {
		est = maxDepth
	}
	return math.Abs(est - objZ)
}
