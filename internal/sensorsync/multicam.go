package sensorsync

import (
	"time"

	"sov/internal/isp"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/stats"
)

// MultiCamResult summarizes an N-camera synchronization experiment: the
// spread between the recovered capture timestamps of cameras triggered by
// the same pulse, across all frames.
type MultiCamResult struct {
	Cameras   int
	Frames    int
	SpreadMs  *stats.Sample // per-trigger max pairwise spread, ms
	MeanMs    float64
	MaxMs     float64
	IMUSynced bool // every camera trigger coincides with an IMU trigger
}

// MultiCameraSyncExperiment extends the hardware synchronizer to nCams
// cameras (Sec. VI-A3: "synchronizing more cameras simply requires
// expanding the number of trigger signals; the rest ... is all handled at
// the application layer"). All cameras fire on the common 30 Hz pulse
// (downsampled 8× from the 240 Hz IMU trigger); each camera's frame is
// timestamped at its own sensor interface and software-adjusted by its
// constant datasheet delays. The result verifies the recovered timestamps
// agree to interface-jitter precision regardless of camera count.
func MultiCameraSyncExperiment(nCams int, horizon time.Duration, rng *sim.RNG) MultiCamResult {
	if nCams < 2 {
		nCams = 2
	}
	cams := make([]*sensors.Camera, nCams)
	pipes := make([]*sim.RNG, nCams)
	pipe := isp.DefaultPipeline()
	for i := range cams {
		cfg := sensors.DefaultCameraConfig("cam")
		// Per-camera exposure calibration differences are constant and
		// known from the datasheet, hence compensable.
		cfg.Exposure += time.Duration(i) * 500 * time.Microsecond
		cams[i] = sensors.NewCamera(cfg)
		pipes[i] = rng.Fork()
	}
	res := MultiCamResult{Cameras: nCams, SpreadMs: stats.NewSample(), IMUSynced: true}

	imuPeriod := time.Second / 240
	i := 0
	for t := imuPeriod; t < horizon; t += imuPeriod {
		i++
		if i%8 != 0 {
			continue // camera pulse is the IMU trigger downsampled 8x
		}
		recovered := make([]time.Duration, nCams)
		for ci, cam := range cams {
			f := cam.CaptureAt(t)
			ifaceTS := f.ArrivalTime + pipe.InterfaceDelay(pipes[ci])
			cfg := cam.Config
			recovered[ci] = ifaceTS - cfg.Exposure - cfg.Readout + cfg.Exposure/2
		}
		min, max := recovered[0], recovered[0]
		for _, r := range recovered[1:] {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		res.SpreadMs.Observe((max - min).Seconds() * 1000)
		res.Frames++
	}
	res.MeanMs = res.SpreadMs.Mean()
	res.MaxMs = res.SpreadMs.Max()
	return res
}
