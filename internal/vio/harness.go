package vio

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/stats"
	"sov/internal/world"
)

// Trajectory yields the ground-truth pose and angular velocity at time t.
type Trajectory func(t time.Duration) (world.Pose, mathx.Vec3)

// RunOptions configures a closed-loop trajectory run.
type RunOptions struct {
	Duration time.Duration
	// IMURate / CamRate in Hz (240 / 30 deployed).
	IMURate, CamRate float64
	// CameraTimestampOffset models camera–IMU desynchronization: a frame
	// physically captured at t is fused as if captured at t+offset
	// (Fig. 11b sweeps this). Under software-only synchronization the
	// offset is not constant — it is dominated by the variable sensor
	// pipeline latency (Fig. 12b) — so each frame draws its actual offset
	// from U(0, 2*CameraTimestampOffset), i.e. the configured value is
	// the mean desynchronization. (A constant, known offset could simply
	// be compensated in software; the variable part is what cannot.)
	CameraTimestampOffset time.Duration
	// GPS, when non-nil, is fused at 10 Hz (the GPS-VIO hybrid).
	GPS *sensors.GPS
	// GPSRate in Hz (default 10 when GPS is set).
	GPSRate float64
	// KnownMap localizes against the pre-constructed landmark map
	// (production mode) instead of pure odometry.
	KnownMap bool
}

// RunResult summarizes a trajectory run.
type RunResult struct {
	Errors     *stats.Sample // position error sampled at camera rate, meters
	FinalError float64
	MaxError   float64
	TruePath   []mathx.Vec2
	EstPath    []mathx.Vec2
}

// RunTrajectory drives a VIO filter along a ground-truth trajectory,
// generating IMU samples (with noise/bias from imuCfg) and camera landmark
// observations from the world, and returns the error history. It is the
// engine behind the Fig. 11b experiment and the Sec. VI-B fusion study.
func RunTrajectory(cfg Config, imuCfg sensors.IMUConfig, traj Trajectory, w *world.World,
	opt RunOptions, rng *sim.RNG) RunResult {

	if opt.IMURate <= 0 {
		opt.IMURate = 240
	}
	if opt.CamRate <= 0 {
		opt.CamRate = 30
	}
	if opt.GPS != nil && opt.GPSRate <= 0 {
		opt.GPSRate = 10
	}

	imu := sensors.NewIMU(imuCfg, rng.Fork())
	obsRNG := rng.Fork()

	startPose, _ := traj(0)
	var filter *VIO
	if opt.KnownMap {
		filter = NewWithMap(cfg, startPose, w)
	} else {
		filter = New(cfg, startPose)
	}
	// Seed the initial velocity from the trajectory (wheel odometry).
	p1, _ := traj(10 * time.Millisecond)
	filter.SetVelocity(p1.Pos.Sub(startPose.Pos).Scale(100))

	imuDT := time.Duration(float64(time.Second) / opt.IMURate)
	camDT := time.Duration(float64(time.Second) / opt.CamRate)
	var gpsDT time.Duration
	if opt.GPS != nil {
		gpsDT = time.Duration(float64(time.Second) / opt.GPSRate)
	}

	res := RunResult{Errors: stats.NewSample()}
	nextCam := camDT
	nextGPS := gpsDT

	for t := imuDT; t <= opt.Duration; t += imuDT {
		ax, ay, yawRate := bodyKinematics(traj, t)
		sample := imu.SampleAt(t, ax, ay, yawRate)
		filter.PropagateIMU(sample, imuDT)

		if t >= nextCam {
			nextCam += camDT
			// The frame fused now was captured at t - offset, with the
			// offset drawn per frame (variable pipeline latency).
			offset := opt.CameraTimestampOffset
			if offset > 0 {
				offset = time.Duration(obsRNG.Uniform(0, 2*float64(offset)))
			}
			captureT := t - offset
			if captureT < 0 {
				captureT = 0
			}
			truthAtCapture, _ := traj(captureT)
			obs := ObserveLandmarks(w, truthAtCapture, cfg, obsRNG)
			filter.UpdateCamera(obs)

			truthNow, _ := traj(t)
			err := filter.PositionError(truthNow)
			res.Errors.Observe(err)
			if err > res.MaxError {
				res.MaxError = err
			}
			res.TruePath = append(res.TruePath, truthNow.Pos)
			res.EstPath = append(res.EstPath, filter.Pose().Pos)
		}
		if opt.GPS != nil && t >= nextGPS {
			nextGPS += gpsDT
			truthNow, _ := traj(t)
			filter.UpdateGPS(opt.GPS.FixAt(t, truthNow.Pos))
		}
	}
	truthEnd, _ := traj(opt.Duration)
	res.FinalError = filter.PositionError(truthEnd)
	return res
}

// WeaveTrajectory returns a lane-keeping trajectory that advances at speed
// m/s while weaving sinusoidally with the given amplitude (m) and angular
// frequency (rad/s). The heading follows the velocity vector, so the yaw
// dynamics are exactly what exposes camera–IMU timestamp offsets (Fig. 11b).
func WeaveTrajectory(speed, amplitude, omega float64) Trajectory {
	return func(t time.Duration) (world.Pose, mathx.Vec3) {
		s := t.Seconds()
		y := amplitude * math.Sin(omega*s)
		vy := amplitude * omega * math.Cos(omega*s)
		heading := math.Atan2(vy, speed)
		return world.Pose{Pos: mathx.Vec2{X: speed * s, Y: y}, Heading: heading}, mathx.Vec3{}
	}
}

// CircleTrajectory returns a constant-curvature loop of the given radius at
// speed m/s, counter-clockwise around the origin, starting at (radius, 0).
func CircleTrajectory(radius, speed float64) Trajectory {
	omega := speed / radius
	return func(t time.Duration) (world.Pose, mathx.Vec3) {
		ang := omega * t.Seconds()
		return world.Pose{
			Pos:     mathx.Vec2{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)},
			Heading: mathx.WrapAngle(ang + math.Pi/2),
		}, mathx.Vec3{Z: omega}
	}
}

// bodyKinematics differentiates the trajectory numerically to produce the
// ground-truth body-frame acceleration and yaw rate an ideal IMU would see.
// The yaw rate is differentiated from the heading rather than taken from the
// trajectory's analytic value so that pose and rate can never disagree.
func bodyKinematics(traj Trajectory, t time.Duration) (ax, ay, yawRate float64) {
	const h = time.Millisecond
	pm, _ := traj(t - h)
	p0, _ := traj(t)
	pp, _ := traj(t + h)
	hs := h.Seconds()
	// Central second difference for world acceleration.
	awx := (pp.Pos.X - 2*p0.Pos.X + pm.Pos.X) / (hs * hs)
	awy := (pp.Pos.Y - 2*p0.Pos.Y + pm.Pos.Y) / (hs * hs)
	// Rotate into the body frame.
	body := mathx.Vec2{X: awx, Y: awy}.Rotate(-p0.Heading)
	yawRate = mathx.WrapAngle(pp.Heading-pm.Heading) / (2 * hs)
	return body.X, body.Y, yawRate
}
