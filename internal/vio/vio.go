// Package vio implements the localization module of Table III: an
// EKF-based visual-inertial odometry in the plane (ground vehicles do not
// excite roll/pitch, so the deployed 3-D filter reduces to this planar
// form without losing the behaviours the paper studies — cumulative drift,
// sensitivity to camera–IMU synchronization, and GPS fusion).
//
// The filter state is [px, py, vx, vy, yaw, bGyro, bAccX, bAccY]:
// position, velocity, heading, gyro bias, and accelerometer bias. IMU
// samples propagate the state at 240 Hz; camera landmark observations
// (stereo range + bearing) correct it at 30 Hz. Landmarks are initialized
// from their first observation relative to the *current estimated* pose —
// the mechanism by which VIO accumulates error over distance (Sec. VI-B).
package vio

import (
	"fmt"
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/world"
)

// state vector indices.
const (
	iPx = iota
	iPy
	iVx
	iVy
	iYaw
	iBg
	iBax
	iBay
	stateDim
)

// Config holds noise parameters.
type Config struct {
	GyroNoise   float64 // rad/s/√Hz equivalent per-sample std
	AccelNoise  float64 // m/s²
	BiasWalk    float64 // bias random-walk per-sample std
	RangeStd    float64 // stereo landmark range noise, m
	BearingStd  float64 // landmark bearing noise, rad
	GPSPosStd   float64 // GPS position noise for fused updates, m
	MaxLMRange  float64 // landmark visibility range
	CameraFOV   float64 // horizontal FOV
	MaxLandmark int     // max landmarks used per update
	// LandmarkPosStd accounts for the anchor error a landmark inherits
	// from the pose estimate it was initialized against. Without it the
	// filter becomes overconfident, freezes its bias estimates, and
	// fights GPS corrections.
	LandmarkPosStd float64
}

// DefaultConfig matches the deployed sensor suite.
func DefaultConfig() Config {
	return Config{
		GyroNoise:      0.003,
		AccelNoise:     0.03,
		BiasWalk:       1e-5,
		RangeStd:       0.15,
		BearingStd:     0.01,
		GPSPosStd:      0.5,
		MaxLMRange:     18,
		CameraFOV:      math.Pi * 0.8,
		MaxLandmark:    12,
		LandmarkPosStd: 0.5,
	}
}

// LandmarkObs is one stereo landmark observation in the body frame.
type LandmarkObs struct {
	ID      int
	Range   float64
	Bearing float64
}

// VIO is the filter.
type VIO struct {
	Config Config

	x [stateDim]float64
	p *mathx.Mat

	// landmarks maps landmark ID to its estimated world position, fixed
	// once initialized.
	landmarks map[int]mathx.Vec2
	// pending accumulates the first sightings of a landmark; the anchor
	// is committed as their average (initAnchorSightings), which reduces
	// the anchor noise that drives odometry frame drift.
	pending map[int][]mathx.Vec2

	updates     int
	propagns    int
	newLM       int
	lastUpdated time.Duration
}

// New returns a filter initialized at the given pose with small initial
// uncertainty.
func New(cfg Config, initial world.Pose) *VIO {
	v := &VIO{Config: cfg, p: mathx.NewMat(stateDim, stateDim),
		landmarks: make(map[int]mathx.Vec2), pending: make(map[int][]mathx.Vec2)}
	v.x[iPx] = initial.Pos.X
	v.x[iPy] = initial.Pos.Y
	v.x[iYaw] = initial.Heading
	for i := 0; i < stateDim; i++ {
		v.p.Set(i, i, 0.01)
	}
	v.p.Set(iVx, iVx, 1.0)
	v.p.Set(iVy, iVy, 1.0)
	v.p.Set(iBg, iBg, 1e-4)
	v.p.Set(iBax, iBax, 1e-2)
	v.p.Set(iBay, iBay, 1e-2)
	return v
}

// SetVelocity seeds the world-frame velocity estimate (e.g. from wheel
// odometry at startup). Starting the filter at rest while the vehicle moves
// forces a large transient that odometry mode cannot fully unwind.
func (v *VIO) SetVelocity(vel mathx.Vec2) {
	v.x[iVx] = vel.X
	v.x[iVy] = vel.Y
}

// NewWithMap returns a filter that localizes against a pre-constructed
// landmark map (the production configuration: the paper's vehicles localize
// in a global, pre-annotated map). Known landmarks bound the position error;
// the pure-odometry mode of New is what exhibits the cumulative drift of
// Sec. VI-B.
func NewWithMap(cfg Config, initial world.Pose, w *world.World) *VIO {
	cfg.LandmarkPosStd = 0.1 // survey-grade map
	v := New(cfg, initial)
	for i, lm := range w.Landmarks {
		v.landmarks[i] = lm.XY()
	}
	return v
}

// Pose returns the current estimate.
func (v *VIO) Pose() world.Pose {
	return world.Pose{Pos: mathx.Vec2{X: v.x[iPx], Y: v.x[iPy]}, Heading: mathx.WrapAngle(v.x[iYaw])}
}

// Velocity returns the world-frame velocity estimate.
func (v *VIO) Velocity() mathx.Vec2 { return mathx.Vec2{X: v.x[iVx], Y: v.x[iVy]} }

// Covariance returns a copy of the state covariance.
func (v *VIO) Covariance() *mathx.Mat { return v.p.Clone() }

// Stats reports propagation steps, camera updates, and landmarks created.
func (v *VIO) Stats() (propagations, updates, landmarks int) {
	return v.propagns, v.updates, v.newLM
}

// PropagateIMU advances the filter with one IMU sample over dt.
func (v *VIO) PropagateIMU(s sensors.IMUSample, dt time.Duration) {
	h := dt.Seconds()
	if h <= 0 {
		return
	}
	v.propagns++
	cfg := v.Config

	omega := s.YawRate - v.x[iBg]
	ax := s.AccelX - v.x[iBax]
	ay := s.AccelY - v.x[iBay]
	yaw := v.x[iYaw]
	c, sn := math.Cos(yaw), math.Sin(yaw)
	// World-frame acceleration.
	awx := c*ax - sn*ay
	awy := sn*ax + c*ay

	// Nominal propagation.
	v.x[iPx] += v.x[iVx]*h + 0.5*awx*h*h
	v.x[iPy] += v.x[iVy]*h + 0.5*awy*h*h
	v.x[iVx] += awx * h
	v.x[iVy] += awy * h
	v.x[iYaw] = mathx.WrapAngle(yaw + omega*h)

	// Error-state Jacobian F (discrete, first order).
	f := mathx.Eye(stateDim)
	f.Set(iPx, iVx, h)
	f.Set(iPy, iVy, h)
	// d v / d yaw: rotating the body accel.
	f.Set(iVx, iYaw, (-sn*ax-c*ay)*h)
	f.Set(iVy, iYaw, (c*ax-sn*ay)*h)
	// d v / d ba = -R h.
	f.Set(iVx, iBax, -c*h)
	f.Set(iVx, iBay, sn*h)
	f.Set(iVy, iBax, -sn*h)
	f.Set(iVy, iBay, -c*h)
	f.Set(iYaw, iBg, -h)

	// P = F P Fᵀ + Q.
	v.p = mathx.MatMul(mathx.MatMul(f, v.p), f.T())
	qa := cfg.AccelNoise * cfg.AccelNoise * h
	qg := cfg.GyroNoise * cfg.GyroNoise * h
	qb := cfg.BiasWalk * cfg.BiasWalk * h
	v.p.Add(iVx, iVx, qa)
	v.p.Add(iVy, iVy, qa)
	v.p.Add(iYaw, iYaw, qg)
	v.p.Add(iBg, iBg, qb)
	v.p.Add(iBax, iBax, qb)
	v.p.Add(iBay, iBay, qb)
	v.p.Symmetrize()
}

// UpdateCamera applies a set of landmark observations. Unknown landmarks
// are initialized relative to the current estimate; known ones correct the
// state.
func (v *VIO) UpdateCamera(obs []LandmarkObs) {
	cfg := v.Config
	if len(obs) > cfg.MaxLandmark {
		obs = obs[:cfg.MaxLandmark]
	}
	const initAnchorSightings = 4
	for _, o := range obs {
		lm, known := v.landmarks[o.ID]
		if !known {
			// Anchor to the current (possibly drifted) estimate once
			// enough sightings have accumulated. This inheritance is
			// where VIO's cumulative error comes from (Sec. VI-B).
			pose := v.Pose()
			rel := mathx.Vec2{X: o.Range * math.Cos(o.Bearing), Y: o.Range * math.Sin(o.Bearing)}
			est := pose.Pos.Add(rel.Rotate(pose.Heading))
			v.pending[o.ID] = append(v.pending[o.ID], est)
			if len(v.pending[o.ID]) >= initAnchorSightings {
				var avg mathx.Vec2
				for _, p := range v.pending[o.ID] {
					avg = avg.Add(p)
				}
				v.landmarks[o.ID] = avg.Scale(1 / float64(len(v.pending[o.ID])))
				delete(v.pending, o.ID)
				v.newLM++
			}
			continue
		}
		v.updateOne(lm, o)
	}
	v.updates++
}

// updateOne performs a 2-D (range, bearing) EKF update against the stored
// landmark position.
func (v *VIO) updateOne(lm mathx.Vec2, o LandmarkObs) {
	dx := lm.X - v.x[iPx]
	dy := lm.Y - v.x[iPy]
	r2 := dx*dx + dy*dy
	r := math.Sqrt(r2)
	if r < 0.5 {
		return // too close; Jacobian ill-conditioned
	}
	predRange := r
	predBearing := mathx.WrapAngle(math.Atan2(dy, dx) - v.x[iYaw])

	// H: 2 x stateDim.
	h := mathx.NewMat(2, stateDim)
	h.Set(0, iPx, -dx/r)
	h.Set(0, iPy, -dy/r)
	h.Set(1, iPx, dy/r2)
	h.Set(1, iPy, -dx/r2)
	h.Set(1, iYaw, -1)

	lmVar := v.Config.LandmarkPosStd * v.Config.LandmarkPosStd
	rm := mathx.NewMat(2, 2)
	rm.Set(0, 0, v.Config.RangeStd*v.Config.RangeStd+lmVar)
	rm.Set(1, 1, v.Config.BearingStd*v.Config.BearingStd+lmVar/r2)

	resid := []float64{
		o.Range - predRange,
		mathx.WrapAngle(o.Bearing - predBearing),
	}
	v.kalmanUpdate(h, rm, resid, nil)
}

// UpdateGPS applies a global position fix (the GPS-VIO hybrid of Sec. VI-B:
// when GNSS is strong it corrects the accumulated VIO drift; the EKF update
// itself is trivially cheap compared to the vision front-end).
func (v *VIO) UpdateGPS(fix sensors.GPSFix) {
	if !fix.Valid {
		return
	}
	h := mathx.NewMat(2, stateDim)
	h.Set(0, iPx, 1)
	h.Set(1, iPy, 1)
	rm := mathx.NewMat(2, 2)
	rm.Set(0, 0, v.Config.GPSPosStd*v.Config.GPSPosStd)
	rm.Set(1, 1, v.Config.GPSPosStd*v.Config.GPSPosStd)
	resid := []float64{fix.Pos.X - v.x[iPx], fix.Pos.Y - v.x[iPy]}
	// Schmidt-style considered update: the gain is restricted to the
	// position states. In pure-odometry mode the landmark anchors live in
	// a drifted frame; letting a global position fix rip through the
	// velocity/bias cross-covariances pumps energy into the filter (the
	// anchors pull back every frame). Restricting the gain matches the
	// paper's design — "GNSS updates are directly used as the vehicle's
	// current position".
	before := mathx.Vec2{X: v.x[iPx], Y: v.x[iPy]}
	v.kalmanUpdate(h, rm, resid, []int{iPx, iPy})
	// "The GNSS signals are used to correct the VIO errors": the
	// correction re-anchors the odometry frame, so translate the landmark
	// anchors along with the pose. Otherwise drifted anchors pull the
	// estimate straight back.
	shift := mathx.Vec2{X: v.x[iPx], Y: v.x[iPy]}.Sub(before)
	if shift.Norm() > 0 {
		for id, lm := range v.landmarks {
			v.landmarks[id] = lm.Add(shift)
		}
	}
}

// kalmanUpdate applies a measurement with Joseph-form covariance update
// (valid for any, including masked, gain). gainRows, when non-nil, limits
// the correction to those state indices.
func (v *VIO) kalmanUpdate(h, rm *mathx.Mat, resid []float64, gainRows []int) {
	ht := h.T()
	s := mathx.MatAdd(mathx.MatMul(mathx.MatMul(h, v.p), ht), rm)
	sInv, err := mathx.InvertSPD(s)
	if err != nil {
		return // numerically degenerate; skip this measurement
	}
	k := mathx.MatMul(mathx.MatMul(v.p, ht), sInv)
	if gainRows != nil {
		allowed := make(map[int]bool, len(gainRows))
		for _, r := range gainRows {
			allowed[r] = true
		}
		for i := 0; i < k.Rows; i++ {
			if !allowed[i] {
				for j := 0; j < k.Cols; j++ {
					k.Set(i, j, 0)
				}
			}
		}
	}
	dx := k.MulVec(resid)
	for i := 0; i < stateDim; i++ {
		v.x[i] += dx[i]
	}
	v.x[iYaw] = mathx.WrapAngle(v.x[iYaw])
	// Joseph form: P = (I-KH) P (I-KH)ᵀ + K R Kᵀ.
	ikh := mathx.MatSub(mathx.Eye(stateDim), mathx.MatMul(k, h))
	v.p = mathx.MatAdd(mathx.MatMul(mathx.MatMul(ikh, v.p), ikh.T()), mathx.MatMul(mathx.MatMul(k, rm), k.T()))
	v.p.Symmetrize()
}

// PositionError returns the Euclidean error against a true pose.
func (v *VIO) PositionError(truth world.Pose) float64 {
	return v.Pose().Pos.DistTo(truth.Pos)
}

// ObserveLandmarks generates stereo landmark observations of the world from
// the TRUE pose with measurement noise — the camera front-end's output.
func ObserveLandmarks(w *world.World, truth world.Pose, cfg Config, rng *sim.RNG) []LandmarkObs {
	idx := w.LandmarksInFOV(truth, cfg.MaxLMRange, cfg.CameraFOV)
	out := make([]LandmarkObs, 0, len(idx))
	for _, i := range idx {
		lm := w.Landmarks[i].XY()
		rel := lm.Sub(truth.Pos)
		out = append(out, LandmarkObs{
			ID:      i,
			Range:   rel.Norm() + rng.Normal(0, cfg.RangeStd),
			Bearing: mathx.WrapAngle(rel.Angle()-truth.Heading) + rng.Normal(0, cfg.BearingStd),
		})
	}
	return out
}

// String summarizes the filter for logs.
func (v *VIO) String() string {
	p := v.Pose()
	return fmt.Sprintf("vio: pos=(%.2f,%.2f) yaw=%.3f vel=(%.2f,%.2f) lms=%d",
		p.Pos.X, p.Pos.Y, p.Heading, v.x[iVx], v.x[iVy], len(v.landmarks))
}
