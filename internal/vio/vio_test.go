package vio

import (
	"math"
	"testing"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/world"
)

func TestStationaryStaysPut(t *testing.T) {
	cfg := DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.GyroBias = 0
	imuCfg.AccelBias = 0
	rng := sim.NewRNG(1)
	w := world.NewCorridor(50, rng)
	traj := func(time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: 10}}, mathx.Vec3{}
	}
	res := RunTrajectory(cfg, imuCfg, traj, w, RunOptions{Duration: 10 * time.Second}, rng)
	if res.FinalError > 0.5 {
		t.Fatalf("stationary drift = %v m", res.FinalError)
	}
}

// calibratedIMU returns the deployed IMU with its constant biases removed —
// production rigs calibrate these at the factory; the residual noise and
// bias random walk remain.
func calibratedIMU() sensors.IMUConfig {
	cfg := sensors.DefaultIMUConfig()
	cfg.GyroBias = 0
	cfg.AccelBias = 0
	return cfg
}

func TestStraightLineTrackingWithMap(t *testing.T) {
	// Production mode: localize against the pre-constructed map.
	cfg := DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	rng := sim.NewRNG(2)
	w := world.NewCorridor(300, rng)
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	res := RunTrajectory(cfg, imuCfg, traj, w,
		RunOptions{Duration: 30 * time.Second, KnownMap: true}, rng)
	if res.Errors.Mean() > 0.5 {
		t.Fatalf("mean error = %v m with known map", res.Errors.Mean())
	}
	if res.FinalError > 1.5 {
		t.Fatalf("final error = %v m", res.FinalError)
	}
}

func TestOdometryModeDriftsMoreThanMapMode(t *testing.T) {
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	w := world.NewCorridor(600, sim.NewRNG(3))
	odo := RunTrajectory(cfg, imuCfg, traj, w, RunOptions{Duration: 90 * time.Second}, sim.NewRNG(4))
	mapped := RunTrajectory(cfg, imuCfg, traj, w,
		RunOptions{Duration: 90 * time.Second, KnownMap: true}, sim.NewRNG(4))
	if odo.Errors.Quantile(0.9) <= mapped.Errors.Quantile(0.9) {
		t.Fatalf("odometry p90 %v should exceed map p90 %v",
			odo.Errors.Quantile(0.9), mapped.Errors.Quantile(0.9))
	}
}

func TestVIOAccumulatesDriftWithDistance(t *testing.T) {
	// The paper (Sec. VI-B): "The longer distance the vehicle travels,
	// the more inaccurate the position estimation is."
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	short := RunTrajectory(cfg, imuCfg, traj, world.NewCorridor(1200, sim.NewRNG(3)),
		RunOptions{Duration: 20 * time.Second}, sim.NewRNG(4))
	long := RunTrajectory(cfg, imuCfg, traj, world.NewCorridor(1200, sim.NewRNG(3)),
		RunOptions{Duration: 120 * time.Second}, sim.NewRNG(4))
	if long.Errors.Quantile(0.9) <= short.Errors.Quantile(0.9) {
		t.Fatalf("drift did not grow: short p90 %v vs long p90 %v",
			short.Errors.Quantile(0.9), long.Errors.Quantile(0.9))
	}
}

func TestGPSFusionBoundsDrift(t *testing.T) {
	// Sec. VI-B: fusing GNSS bounds the cumulative VIO error cheaply.
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	w := world.NewCorridor(1200, sim.NewRNG(5))
	gps := sensors.NewGPS(sensors.DefaultGPSConfig(), w, sim.NewRNG(6))
	bare := RunTrajectory(cfg, imuCfg, traj, w, RunOptions{Duration: 120 * time.Second}, sim.NewRNG(7))
	fused := RunTrajectory(cfg, imuCfg, traj, w, RunOptions{Duration: 120 * time.Second, GPS: gps}, sim.NewRNG(7))
	if fused.Errors.Quantile(0.9) >= bare.Errors.Quantile(0.9) {
		t.Fatalf("GPS fusion did not help: fused p90 %v vs bare p90 %v",
			fused.Errors.Quantile(0.9), bare.Errors.Quantile(0.9))
	}
	if fused.Errors.Quantile(0.9) > 1.5 {
		t.Fatalf("fused p90 error = %v m, want bounded ~GPS noise", fused.Errors.Quantile(0.9))
	}
}

func TestCameraSyncOffsetDegradesLocalization(t *testing.T) {
	// Fig. 11b: a camera–IMU timestamp offset corrupts the trajectory.
	// Constant-curvature motion (steady yaw rate) makes the offset's
	// systematic bearing error unidirectional, as in the paper's loop.
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	w := world.NewRing(20, sim.NewRNG(8))
	traj := CircleTrajectory(20, 5.6)
	synced := RunTrajectory(cfg, imuCfg, traj, w,
		RunOptions{Duration: 60 * time.Second}, sim.NewRNG(9))
	off40 := RunTrajectory(cfg, imuCfg, traj, w,
		RunOptions{Duration: 60 * time.Second, CameraTimestampOffset: 40 * time.Millisecond}, sim.NewRNG(9))
	if off40.Errors.Mean() < 2*synced.Errors.Mean() {
		t.Fatalf("40 ms offset should degrade localization: synced mean %v vs offset mean %v",
			synced.Errors.Mean(), off40.Errors.Mean())
	}
	if off40.MaxError < 1.5 {
		t.Fatalf("offset max error = %v m, expected meter-scale divergence", off40.MaxError)
	}
}

func TestUpdateGPSIgnoresInvalidFix(t *testing.T) {
	v := New(DefaultConfig(), world.Pose{})
	before := v.Pose()
	v.UpdateGPS(sensors.GPSFix{Pos: mathx.Vec2{X: 100}, Valid: false})
	if v.Pose() != before {
		t.Fatal("invalid fix changed state")
	}
	v.UpdateGPS(sensors.GPSFix{Pos: mathx.Vec2{X: 100}, Valid: true})
	if v.Pose().Pos.X <= before.Pos.X {
		t.Fatal("valid fix should pull the estimate")
	}
}

func TestCovarianceStaysSymmetricPSD(t *testing.T) {
	cfg := DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	rng := sim.NewRNG(10)
	w := world.NewCorridor(100, rng)
	v := New(cfg, world.Pose{})
	imu := sensors.NewIMU(imuCfg, rng.Fork())
	obsRNG := rng.Fork()
	dt := 4167 * time.Microsecond
	for i := 0; i < 2000; i++ {
		tt := time.Duration(i) * dt
		v.PropagateIMU(imu.SampleAt(tt, 0.1, 0, 0.05), dt)
		if i%8 == 0 {
			truth := world.Pose{Pos: mathx.Vec2{X: float64(i) * 0.02}}
			v.UpdateCamera(ObserveLandmarks(w, truth, cfg, obsRNG))
		}
	}
	p := v.Covariance()
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			if math.Abs(p.At(i, j)-p.At(j, i)) > 1e-9 {
				t.Fatalf("covariance asymmetric at (%d,%d)", i, j)
			}
		}
		if p.At(i, i) < 0 {
			t.Fatalf("negative variance at %d: %v", i, p.At(i, i))
		}
	}
}

func TestLandmarkInitializationAfterSightings(t *testing.T) {
	v := New(DefaultConfig(), world.Pose{})
	obs := []LandmarkObs{{ID: 7, Range: 5, Bearing: 0.1}}
	// The anchor commits after 4 sightings (averaged) and never again.
	for i := 0; i < 3; i++ {
		v.UpdateCamera(obs)
		if _, _, lms := v.Stats(); lms != 0 {
			t.Fatalf("landmark committed after %d sightings", i+1)
		}
	}
	v.UpdateCamera(obs)
	if _, _, lms := v.Stats(); lms != 1 {
		t.Fatal("landmark not committed after 4 sightings")
	}
	v.UpdateCamera(obs)
	_, updates, lms := v.Stats()
	if lms != 1 {
		t.Fatalf("landmark re-initialized: %d", lms)
	}
	if updates != 5 {
		t.Fatalf("updates = %d", updates)
	}
}

func TestEstimatorEstimatesGyroBias(t *testing.T) {
	cfg := DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.GyroBias = 0.01 // strong bias
	rng := sim.NewRNG(11)
	w := world.NewCorridor(300, rng)
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	// Run long enough for the bias state to converge; use the known map
	// so the bias is cleanly observable.
	imu := sensors.NewIMU(imuCfg, rng.Fork())
	obsRNG := rng.Fork()
	v := NewWithMap(cfg, world.Pose{}, w)
	dt := 4167 * time.Microsecond
	for i := 1; i <= 20000; i++ {
		tt := time.Duration(i) * dt
		pose, _ := traj(tt)
		v.PropagateIMU(imu.SampleAt(tt, 0, 0, 0), dt)
		if i%8 == 0 {
			v.UpdateCamera(ObserveLandmarks(w, pose, cfg, obsRNG))
		}
	}
	if math.Abs(v.x[iBg]-0.01) > 0.005 {
		t.Fatalf("estimated gyro bias = %v, want ~0.01", v.x[iBg])
	}
}

func TestStringHasContent(t *testing.T) {
	v := New(DefaultConfig(), world.Pose{})
	if v.String() == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkPropagateIMU(b *testing.B) {
	v := New(DefaultConfig(), world.Pose{})
	imu := sensors.NewIMU(sensors.DefaultIMUConfig(), sim.NewRNG(1))
	s := imu.SampleAt(0, 0.5, 0.1, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.PropagateIMU(s, 4167*time.Microsecond)
	}
}

func BenchmarkUpdateCamera12Landmarks(b *testing.B) {
	cfg := DefaultConfig()
	rng := sim.NewRNG(2)
	w := world.NewCorridor(100, rng)
	v := New(cfg, world.Pose{Pos: mathx.Vec2{X: 50}})
	obs := ObserveLandmarks(w, world.Pose{Pos: mathx.Vec2{X: 50}}, cfg, rng)
	v.UpdateCamera(obs) // initialize landmarks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.UpdateCamera(obs)
	}
}

func TestGPSOutageWindowHandled(t *testing.T) {
	// The Sec. VI-B failure story end to end: GPS corrects drift, a
	// tunnel outage lets error grow from the corrected baseline, and
	// recovery snaps it back.
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	w := world.NewCorridor(1200, sim.NewRNG(20))
	w.GPSOutages = []world.TimeWindow{{From: 40 * time.Second, To: 80 * time.Second}}
	gps := sensors.NewGPS(sensors.DefaultGPSConfig(), w, sim.NewRNG(21))
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	res := RunTrajectory(cfg, imuCfg, traj, w,
		RunOptions{Duration: 120 * time.Second, GPS: gps}, sim.NewRNG(22))
	// Bounded throughout — the corrected VIO carries the outage.
	if res.Errors.Max() > 4 {
		t.Fatalf("max error through the outage = %.2f m", res.Errors.Max())
	}
	if res.FinalError > 1.5 {
		t.Fatalf("final error after recovery = %.2f m", res.FinalError)
	}
}

func TestMapModeFilterConsistencyNEES(t *testing.T) {
	// Normalized estimation error squared on the position block: for a
	// consistent filter, err' * P⁻¹ * err has mean ≈ 2 (the position
	// dimension). Gross overconfidence (NEES >> 2) or underconfidence
	// (NEES << 2) would invalidate every covariance-based decision.
	cfg := DefaultConfig()
	imuCfg := calibratedIMU()
	rng := sim.NewRNG(31)
	w := world.NewCorridor(300, rng)
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	imu := sensors.NewIMU(imuCfg, rng.Fork())
	obsRNG := rng.Fork()
	v := NewWithMap(cfg, world.Pose{}, w)
	v.SetVelocity(mathx.Vec2{X: speed})
	dt := 4167 * time.Microsecond
	nees := 0.0
	n := 0
	for i := 1; i <= 24000; i++ {
		tt := time.Duration(i) * dt
		ax, ay, yr := bodyKinematics(traj, tt)
		v.PropagateIMU(imu.SampleAt(tt, ax, ay, yr), dt)
		if i%8 == 0 {
			pose, _ := traj(tt)
			v.UpdateCamera(ObserveLandmarks(w, pose, cfg, obsRNG))
			if i > 4800 { // skip the convergence transient
				est := v.Pose().Pos
				ex, ey := est.X-pose.Pos.X, est.Y-pose.Pos.Y
				p := v.Covariance()
				pp := mathx.MatFromRows([][]float64{
					{p.At(0, 0), p.At(0, 1)},
					{p.At(1, 0), p.At(1, 1)},
				})
				sol, err := mathx.SolveSPD(pp, []float64{ex, ey})
				if err != nil {
					t.Fatal(err)
				}
				nees += ex*sol[0] + ey*sol[1]
				n++
			}
		}
	}
	mean := nees / float64(n)
	// Generous consistency band: within ~8x of the ideal value 2 in
	// either direction (landmark-map correlations bias NEES upward).
	if mean < 0.25 || mean > 16 {
		t.Fatalf("position NEES mean = %.2f over %d updates, want O(2)", mean, n)
	}
}
