package vision

import "sov/internal/parallel"

// Semi-global matching: per-pixel absolute-difference costs aggregated along
// four scanline directions with the classic P1/P2 smoothness penalties. It
// fills weakly-textured regions better than window matching at ~the same
// asymptotic cost — the production alternative the depth-estimation design
// space includes alongside the ELAS-style matcher (Table III).

// SGMConfig tunes the aggregation.
type SGMConfig struct {
	MaxDisp int
	// P1 penalizes ±1 disparity changes; P2 larger jumps.
	P1, P2 float32
	// UniquenessRatio rejects ambiguous winners (second-best must exceed
	// best by this factor).
	UniquenessRatio float32
	// MinTexture invalidates pixels whose 3×3 neighborhood variance is
	// below this threshold — the standard confidence gate against SGM's
	// smoothness prior streaking disparities into textureless regions.
	MinTexture float32
}

// DefaultSGMConfig returns settings matched to the 160×120 test rig.
func DefaultSGMConfig() SGMConfig {
	return SGMConfig{MaxDisp: 16, P1: 0.06, P2: 0.5, UniquenessRatio: 1.02, MinTexture: 1e-4}
}

// SGM computes a dense disparity map by semi-global cost aggregation over
// the four horizontal/vertical directions.
//
// Parallel structure: the raw cost volume and the winner-take-all pass are
// embarrassingly row-parallel; the aggregation runs the four directions in
// sequence (agg accumulates them in a fixed order) but fans the scanlines
// of each direction out across the worker pool — scanlines of one
// direction touch disjoint pixels, and each scanline keeps its serial
// recurrence, so the result is byte-identical for any worker count.
func SGM(left, right *Image, cfg SGMConfig) *DisparityMap {
	w, h := left.W, left.H
	nd := cfg.MaxDisp + 1
	// Raw matching cost: absolute difference of 3x1 means (cheap census
	// substitute adequate for the synthetic texture).
	cost := make([]float32, w*h*nd)
	idx := func(x, y, d int) int { return (y*w+x)*nd + d }
	parallel.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				for d := 0; d < nd; d++ {
					if x-d < 0 {
						cost[idx(x, y, d)] = 1 // out of view: high cost
						continue
					}
					diff := left.At(x, y) - right.At(x-d, y)
					if diff < 0 {
						diff = -diff
					}
					cost[idx(x, y, d)] = diff
				}
			}
		}
	})
	// Aggregate along 4 directions.
	agg := make([]float32, w*h*nd)
	dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for _, dir := range dirs {
		dx, dy := dir[0], dir[1]
		// Scanlines of one direction are independent recurrences over
		// disjoint pixels; each worker carries its own path/prev scratch.
		starts := scanStarts(w, h, dx, dy)
		parallel.For(len(starts), 1, func(s0, s1 int) {
			path := parallel.GetF32(nd)
			prev := parallel.GetF32(nd)
			for si := s0; si < s1; si++ {
				x, y := starts[si][0], starts[si][1]
				for d := 0; d < nd; d++ {
					prev[d] = cost[idx(x, y, d)]
					agg[idx(x, y, d)] += prev[d]
				}
				for {
					x += dx
					y += dy
					if x < 0 || x >= w || y < 0 || y >= h {
						break
					}
					minPrev := prev[0]
					for d := 1; d < nd; d++ {
						if prev[d] < minPrev {
							minPrev = prev[d]
						}
					}
					for d := 0; d < nd; d++ {
						best := prev[d]
						if d > 0 && prev[d-1]+cfg.P1 < best {
							best = prev[d-1] + cfg.P1
						}
						if d < nd-1 && prev[d+1]+cfg.P1 < best {
							best = prev[d+1] + cfg.P1
						}
						if minPrev+cfg.P2 < best {
							best = minPrev + cfg.P2
						}
						path[d] = cost[idx(x, y, d)] + best - minPrev
					}
					for d := 0; d < nd; d++ {
						prev[d] = path[d]
						agg[idx(x, y, d)] += path[d]
					}
				}
			}
			parallel.PutF32(prev)
			parallel.PutF32(path)
		})
	}
	// Winner take all with texture gating, uniqueness, and sub-pixel
	// refinement.
	m := &DisparityMap{W: w, H: h, D: make([]float32, w*h)}
	parallel.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				if cfg.MinTexture > 0 && localVariance3(left, x, y) < cfg.MinTexture {
					m.D[y*w+x] = -1
					continue
				}
				bestD, best, second := -1, float32(1e30), float32(1e30)
				for d := 0; d < nd; d++ {
					c := agg[idx(x, y, d)]
					if c < best {
						second = best
						best = c
						bestD = d
					} else if c < second {
						second = c
					}
				}
				if bestD < 0 || second < best*cfg.UniquenessRatio {
					m.D[y*w+x] = -1
					continue
				}
				dv := float32(bestD)
				if bestD > 0 && bestD < nd-1 {
					c0 := agg[idx(x, y, bestD-1)]
					c1 := best
					c2 := agg[idx(x, y, bestD+1)]
					den := c0 - 2*c1 + c2
					if den > 1e-9 {
						dv += 0.5 * (c0 - c2) / den
					}
				}
				m.D[y*w+x] = dv
			}
		}
	})
	return m
}

// localVariance3 returns the 3×3 intensity variance at (x, y).
func localVariance3(im *Image, x, y int) float32 {
	var sum, sumSq float32
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			v := im.At(x+dx, y+dy)
			sum += v
			sumSq += v * v
		}
	}
	mean := sum / 9
	return sumSq/9 - mean*mean
}

// scanStarts enumerates the starting pixels of every scanline for a
// direction.
func scanStarts(w, h, dx, dy int) [][2]int {
	var out [][2]int
	switch {
	case dx == 1:
		for y := 0; y < h; y++ {
			out = append(out, [2]int{0, y})
		}
	case dx == -1:
		for y := 0; y < h; y++ {
			out = append(out, [2]int{w - 1, y})
		}
	case dy == 1:
		for x := 0; x < w; x++ {
			out = append(out, [2]int{x, 0})
		}
	default: // dy == -1
		for x := 0; x < w; x++ {
			out = append(out, [2]int{x, h - 1})
		}
	}
	return out
}
