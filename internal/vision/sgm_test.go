package vision

import (
	"math"
	"testing"
)

func TestSGMRecoversKnownDepth(t *testing.T) {
	rig := DefaultStereoRig()
	z := 3.0
	s := Scene{Background: 5, BgDepth: 30, Boxes: []Box{{X: 0, Y: 0, Z: z, W: 3, H: 2.4, Texture: 11}}}
	left, right := s.RenderStereo(rig)
	m := SGM(left, right, DefaultSGMConfig())
	med, ok := MedianDisparityIn(m, 60, 40, 100, 80)
	if !ok {
		t.Fatal("no disparities on the object")
	}
	want := rig.DisparityFromDepth(z)
	if math.Abs(float64(med)-want) > 0.5 {
		t.Fatalf("SGM median disparity = %v, want %v", med, want)
	}
}

func TestSGMAgreesWithBlockMatch(t *testing.T) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 20, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2.4, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	sgm := SGM(left, right, DefaultSGMConfig())
	bm := BlockMatch(left, right, 16, 3)
	sm, ok1 := MedianDisparityIn(sgm, 60, 40, 100, 80)
	bmm, ok2 := MedianDisparityIn(bm, 60, 40, 100, 80)
	if !ok1 || !ok2 {
		t.Fatal("missing disparities")
	}
	if math.Abs(float64(sm-bmm)) > 0.75 {
		t.Fatalf("SGM %v vs block match %v", sm, bmm)
	}
}

func TestSGMDensity(t *testing.T) {
	// The smoothness prior fills more pixels than plain block matching on
	// the same scene.
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 8}
	left, right := s.RenderStereo(rig)
	sgm := SGM(left, right, DefaultSGMConfig())
	bm := BlockMatch(left, right, 16, 3)
	if sgm.ValidFraction() < bm.ValidFraction()-0.02 {
		t.Fatalf("SGM density %.2f below block matching %.2f",
			sgm.ValidFraction(), bm.ValidFraction())
	}
	if sgm.ValidFraction() < 0.5 {
		t.Fatalf("SGM density = %.2f, want dense output", sgm.ValidFraction())
	}
}

func TestSGMSmoothness(t *testing.T) {
	// On a fronto-parallel plane the disparity gradient should be near
	// zero almost everywhere.
	rig := DefaultStereoRig()
	s := Scene{Background: 7, BgDepth: 6}
	left, right := s.RenderStereo(rig)
	m := SGM(left, right, DefaultSGMConfig())
	jumps := 0
	valid := 0
	for y := 10; y < m.H-10; y++ {
		for x := 20; x < m.W-10; x++ {
			a, b := m.At(x, y), m.At(x+1, y)
			if a < 0 || b < 0 {
				continue
			}
			valid++
			if math.Abs(float64(a-b)) > 1 {
				jumps++
			}
		}
	}
	if valid == 0 {
		t.Fatal("no valid pairs")
	}
	if frac := float64(jumps) / float64(valid); frac > 0.05 {
		t.Fatalf("disparity jump fraction = %.3f on a plane, want smooth", frac)
	}
}

func BenchmarkSGM160x120(b *testing.B) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	cfg := DefaultSGMConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SGM(left, right, cfg)
	}
}
