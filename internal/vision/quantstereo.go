package vision

import "sov/internal/parallel"

// Fixed-point stereo cost aggregation (DESIGN.md §8). The SAD search over
// 8-bit codes accumulates in int32 — exact integer arithmetic, no clamping
// branches on the interior fast path — and only the final sub-pixel parabola
// touches floating point. Disparities land within a tested budget of the
// float matcher while the cost loop runs several times faster.

// sadAtQ computes the int32 sum of absolute differences between a
// (2*half+1)² patch in left at (x, y) and in right at (x-d, y).
//
//sov:hotpath
func sadAtQ(left, right *QImage, x, y, d, half int) int32 {
	if x-half >= 0 && x+half < left.W && y-half >= 0 && y+half < left.H &&
		x-d-half >= 0 && x-d+half < right.W {
		// Interior: both patches are fully inside their images, so the rows
		// are contiguous subslices and the inner loop is branch-free.
		var sad int32
		for dy := -half; dy <= half; dy++ {
			lo := (y+dy)*left.W + x - half
			lrow := left.Pix[lo : lo+2*half+1]
			rrow := right.Pix[(y+dy)*right.W+x-d-half:]
			for i, lv := range lrow {
				diff := int32(lv) - int32(rrow[i])
				if diff < 0 {
					diff = -diff
				}
				sad += diff
			}
		}
		return sad
	}
	var sad int32
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			diff := int32(left.At(x+dx, y+dy)) - int32(right.At(x+dx-d, y+dy))
			if diff < 0 {
				diff = -diff
			}
			sad += diff
		}
	}
	return sad
}

// matchPixelQ is the fixed-point matchPixel: best disparity in [dMin, dMax]
// by int32 SAD with the same uniqueness check and sub-pixel parabola as the
// float path. scratch holds per-candidate costs (borrow via parallel.GetI32).
//
//sov:hotpath
func matchPixelQ(left, right *QImage, x, y, dMin, dMax, half int, scratch []int32) float32 {
	if dMin < 0 {
		dMin = 0
	}
	if dMax > x {
		dMax = x // right image column would be negative
	}
	if dMax < dMin {
		return -1
	}
	const maxCost = int32(1) << 30
	best, second := maxCost, maxCost
	bestD := -1
	costs := scratch
	if cap(costs) < dMax-dMin+1 {
		//sovlint:ignore hotalloc fallback for nil scratch; the matchers pass pooled GetI32 buffers
		costs = make([]int32, dMax-dMin+1)
	}
	costs = costs[:dMax-dMin+1]
	// The SWAR row kernel covers the sub-band whose right-image windows are
	// interior: d ≤ x−half. Near the left image edge that is a strict prefix
	// of [dMin, dMax]; the few remaining candidates take the clamped scalar
	// path. Costs are exact either way, so the best/second scan below sees
	// the same values in the same order as the all-scalar loop.
	dSw := dMax
	if dSw > x-half {
		dSw = x - half
	}
	if dSw >= dMin && sadSWAROK(left, right, x, dMin, dSw, half) {
		sadSweepSWAR(left, right, x, y, dMin, half, costs[:dSw-dMin+1])
		for d := dSw + 1; d <= dMax; d++ {
			costs[d-dMin] = sadAtQ(left, right, x, y, d, half)
		}
		for i, c := range costs {
			if c < best {
				second = best
				best = c
				bestD = dMin + i
			} else if c < second {
				second = c
			}
		}
	} else {
		for d := dMin; d <= dMax; d++ {
			c := sadAtQ(left, right, x, y, d, half)
			costs[d-dMin] = c
			if c < best {
				second = best
				best = c
				bestD = d
			} else if c < second {
				second = c
			}
		}
	}
	if bestD < 0 {
		return -1
	}
	// Uniqueness, all-integer: second < best*1.05  ⟺  20*second < 21*best.
	if dMax > dMin && 20*second < 21*best {
		return -1
	}
	// Sub-pixel parabola fit around the minimum.
	d := float64(bestD)
	i := bestD - dMin
	if i > 0 && i < len(costs)-1 {
		c0, c1, c2 := costs[i-1], costs[i], costs[i+1]
		if denom := c0 - 2*c1 + c2; denom > 0 {
			d += 0.5 * float64(c0-c2) / float64(denom)
		}
	}
	return float32(d)
}

// StereoScratch carries the fixed-point matchers' reusable state across
// frames: the per-pixel cost band and the support-point list. The zero
// value is ready to use; buffers grow on first use and stick, so a control
// loop that keeps one StereoScratch per camera pair allocates nothing once
// warm (serial path — the parallel fan-out borrows pooled buffers instead).
type StereoScratch struct {
	costs []int32
	sps   []SupportPoint
}

// costBand returns the scratch cost vector for an n-candidate search.
func (s *StereoScratch) costBand(n int) []int32 {
	if cap(s.costs) < n {
		//sovlint:ignore hotalloc first-call scratch growth; warm frames reuse the band
		s.costs = make([]int32, n)
	}
	return s.costs[:n]
}

// sizeMap readies m for a w×h disparity plane, reusing its backing store
// when it is large enough.
func sizeMap(m *DisparityMap, w, h int) {
	m.W, m.H = w, h
	if cap(m.D) < w*h {
		//sovlint:ignore hotalloc first-call output growth; warm frames reuse the plane
		m.D = make([]float32, w*h)
	} else {
		m.D = m.D[:w*h]
	}
}

// BlockMatchQuant is the fixed-point BlockMatch: exhaustive int32-SAD search
// over 8-bit frames. Output layout and validity semantics are identical to
// the float matcher's.
func BlockMatchQuant(left, right *QImage, maxDisp, half int) *DisparityMap {
	m := &DisparityMap{}
	BlockMatchQuantInto(m, left, right, maxDisp, half, &StereoScratch{})
	return m
}

// BlockMatchQuantInto is the allocation-free BlockMatchQuant: the disparity
// plane and cost band live in caller-owned storage. Output is byte-identical
// to BlockMatchQuant for any worker count.
//
//sov:hotpath
func BlockMatchQuantInto(m *DisparityMap, left, right *QImage, maxDisp, half int, s *StereoScratch) {
	sizeMap(m, left.W, left.H)
	if parallel.Workers() <= 1 {
		costs := s.costBand(maxDisp + 1)
		for y := 0; y < left.H; y++ {
			for x := 0; x < left.W; x++ {
				m.D[y*m.W+x] = matchPixelQ(left, right, x, y, 0, maxDisp, half, costs)
			}
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(left.H, sadRowBlock, func(y0, y1 int) {
		costs := parallel.GetI32(maxDisp + 1)
		for y := y0; y < y1; y++ {
			for x := 0; x < left.W; x++ {
				m.D[y*m.W+x] = matchPixelQ(left, right, x, y, 0, maxDisp, half, costs)
			}
		}
		parallel.PutI32(costs)
	})
}

// SupportPointsQuant matches a sparse grid of points with the fixed-point
// matcher; output order matches the serial row-major scan exactly.
func SupportPointsQuant(left, right *QImage, maxDisp, half, stride int) []SupportPoint {
	return SupportPointsQuantInto(nil, left, right, maxDisp, half, stride, &StereoScratch{})
}

// SupportPointsQuantInto appends the support grid's matches to dst and
// returns it. The element order is the serial row-major scan for any worker
// count: the parallel path buckets per tile and concatenates in tile order.
//
//sov:hotpath
func SupportPointsQuantInto(dst []SupportPoint, left, right *QImage, maxDisp, half, stride int, s *StereoScratch) []SupportPoint {
	nRows := 0
	for y := half; y < left.H-half; y += stride {
		nRows++
	}
	if parallel.Workers() <= 1 {
		costs := s.costBand(maxDisp + 1)
		for r := 0; r < nRows; r++ {
			y := half + r*stride
			for x := half; x < left.W-half; x += stride {
				if d := matchPixelQ(left, right, x, y, 0, maxDisp, half, costs); d >= 0 {
					dst = append(dst, SupportPoint{X: x, Y: y, D: d})
				}
			}
		}
		return dst
	}
	//sovlint:ignore hotalloc per-tile buckets only exist on the parallel path; the serial path above is allocation-free
	buckets := make([][]SupportPoint, parallel.Tiles(nRows, 1))
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.ForTiled(nRows, 1, func(tile, r0, r1 int) {
		costs := parallel.GetI32(maxDisp + 1)
		var rows []SupportPoint
		for r := r0; r < r1; r++ {
			y := half + r*stride
			for x := half; x < left.W-half; x += stride {
				d := matchPixelQ(left, right, x, y, 0, maxDisp, half, costs)
				if d >= 0 {
					//sovlint:ignore hotalloc per-tile bucket growth on the parallel path only; the serial path appends into caller-owned dst
					rows = append(rows, SupportPoint{X: x, Y: y, D: d})
				}
			}
		}
		buckets[tile] = rows
		parallel.PutI32(costs)
	})
	for _, b := range buckets {
		dst = append(dst, b...)
	}
	return dst
}

// SupportPointStereoQuant is the fixed-point ELAS-style matcher: sparse
// support points build a disparity prior, then each pixel searches a narrow
// band with the int32-SAD kernel.
func SupportPointStereoQuant(left, right *QImage, maxDisp, half, stride, band int) *DisparityMap {
	m := &DisparityMap{}
	SupportPointStereoQuantInto(m, left, right, maxDisp, half, stride, band, &StereoScratch{})
	return m
}

// SupportPointStereoQuantInto is the allocation-free SupportPointStereoQuant:
// support points, cost bands, and the disparity plane all live in
// caller-owned storage. Output is byte-identical to the allocating form.
//
//sov:hotpath
func SupportPointStereoQuantInto(m *DisparityMap, left, right *QImage, maxDisp, half, stride, band int, s *StereoScratch) {
	s.sps = SupportPointsQuantInto(s.sps[:0], left, right, maxDisp, half, stride, s)
	sps := s.sps
	sizeMap(m, left.W, left.H)
	if len(sps) == 0 {
		for i := range m.D {
			m.D[i] = -1
		}
		return
	}
	if parallel.Workers() <= 1 {
		costs := s.costBand(maxDisp + 1)
		for y := 0; y < left.H; y++ {
			for x := 0; x < left.W; x++ {
				prior := interpolatePrior(sps, x, y)
				dMin := int(prior) - band
				dMax := int(prior) + band
				if dMax > maxDisp {
					dMax = maxDisp
				}
				m.D[y*m.W+x] = matchPixelQ(left, right, x, y, dMin, dMax, half, costs)
			}
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(left.H, sadRowBlock, func(y0, y1 int) {
		costs := parallel.GetI32(maxDisp + 1)
		for y := y0; y < y1; y++ {
			for x := 0; x < left.W; x++ {
				prior := interpolatePrior(sps, x, y)
				dMin := int(prior) - band
				dMax := int(prior) + band
				if dMax > maxDisp {
					dMax = maxDisp
				}
				m.D[y*m.W+x] = matchPixelQ(left, right, x, y, dMin, dMax, half, costs)
			}
		}
		parallel.PutI32(costs)
	})
}
