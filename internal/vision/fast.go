package vision

// FAST-9 segment-test corner detection: a pixel is a corner when 9
// contiguous pixels on the 16-pixel Bresenham circle are all brighter or
// all darker than the center by a threshold. This is the detector ORB
// builds on (Table III reference [67]); DetectCorners (Shi-Tomasi) remains
// the quality-ranked alternative.

// circleOffsets16 is the radius-3 Bresenham circle.
var circleOffsets16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// fastScore returns the corner score (sum of absolute differences of the
// contiguous arc) or 0 when the segment test fails.
func fastScore(im *Image, x, y int, threshold float32) float64 {
	c := im.At(x, y)
	// Classify each circle pixel: +1 brighter, -1 darker, 0 similar.
	var cls [16]int8
	var diff [16]float32
	for i, off := range circleOffsets16 {
		v := im.At(x+off[0], y+off[1])
		d := v - c
		diff[i] = d
		switch {
		case d > threshold:
			cls[i] = 1
		case d < -threshold:
			cls[i] = -1
		}
	}
	// Look for 9 contiguous same-sign entries (wrap-around).
	for _, want := range []int8{1, -1} {
		run := 0
		best := 0
		for i := 0; i < 32; i++ { // doubled scan handles wrap
			if cls[i%16] == want {
				run++
				if run > best {
					best = run
				}
				if best >= 9 {
					// Score: mean absolute contrast over the circle.
					var s float64
					for _, d := range diff {
						if d < 0 {
							s -= float64(d)
						} else {
							s += float64(d)
						}
					}
					return s
				}
			} else {
				run = 0
			}
		}
	}
	return 0
}

// DetectFAST runs FAST-9 with 3×3 non-max suppression on the score map and
// returns up to maxCorners corners, strongest first.
func DetectFAST(im *Image, threshold float32, maxCorners int) []Corner {
	if maxCorners <= 0 {
		return nil
	}
	w, h := im.W, im.H
	scores := make([]float64, w*h)
	for y := 3; y < h-3; y++ {
		for x := 3; x < w-3; x++ {
			scores[y*w+x] = fastScore(im, x, y, threshold)
		}
	}
	var cands []Corner
	for y := 3; y < h-3; y++ {
		for x := 3; x < w-3; x++ {
			s := scores[y*w+x]
			if s == 0 {
				continue
			}
			if s >= scores[(y-1)*w+x-1] && s >= scores[(y-1)*w+x] && s >= scores[(y-1)*w+x+1] &&
				s >= scores[y*w+x-1] && s > scores[y*w+x+1] &&
				s > scores[(y+1)*w+x-1] && s > scores[(y+1)*w+x] && s > scores[(y+1)*w+x+1] {
				cands = append(cands, Corner{X: x, Y: y, Score: s})
			}
		}
	}
	// Selection sort of the top maxCorners (candidate lists are small).
	if len(cands) > 1 {
		for i := 0; i < len(cands) && i < maxCorners; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].Score > cands[best].Score {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
	}
	if len(cands) > maxCorners {
		cands = cands[:maxCorners]
	}
	return cands
}
