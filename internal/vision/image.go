// Package vision is the camera-processing substrate: a grayscale image
// container, a synthetic pinhole stereo renderer, Shi-Tomasi-style corner
// extraction, pyramidal-free Lucas–Kanade patch tracking, and two stereo
// matchers (dense block matching and an ELAS-style support-point matcher).
// These are the "regular stencil" vision kernels the paper contrasts with
// irregular LiDAR processing (Sec. III-D).
package vision

import (
	"fmt"
	"math"
)

// Image is a single-channel float32 image, row-major.
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a zero image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y) with border clamping.
func (im *Image) At(x, y int) float32 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y); out-of-bounds writes are dropped.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Bilinear samples the image at a sub-pixel location.
func (im *Image) Bilinear(x, y float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := im.At(x0, y0)
	v10 := im.At(x0+1, y0)
	v01 := im.At(x0, y0+1)
	v11 := im.At(x0+1, y0+1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// GradX returns the central-difference horizontal gradient at (x, y).
func (im *Image) GradX(x, y int) float32 { return (im.At(x+1, y) - im.At(x-1, y)) / 2 }

// GradY returns the central-difference vertical gradient at (x, y).
func (im *Image) GradY(x, y int) float32 { return (im.At(x, y+1) - im.At(x, y-1)) / 2 }

// Crop extracts a w×h sub-image centered at (cx, cy) with border clamping —
// the detector-to-classifier hand-off (each detection box becomes a crop).
func (im *Image) Crop(cx, cy, w, h int) *Image {
	out := NewImage(w, h)
	x0 := cx - w/2
	y0 := cy - h/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.At(x0+x, y0+y)
		}
	}
	return out
}

// MeanAbsDiff returns the mean absolute pixel difference between images of
// identical shape; a cheap similarity metric used in tests.
func MeanAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("vision: MeanAbsDiff shape mismatch")
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a.Pix))
}
