package vision

import "fmt"

// QImage is the fixed-point counterpart of Image: a single-channel 8-bit
// image, row-major, with the implicit quantization code = round(255·v) for
// real values in [0, 1]. The quantized perception path (DESIGN.md §8) keeps
// camera frames in this representation end to end — four times denser in
// cache than float32 and addressable by pure integer arithmetic.
type QImage struct {
	W, H int
	Pix  []uint8
}

// NewQImage allocates a zero 8-bit image.
func NewQImage(w, h int) *QImage {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	return &QImage{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y) with border clamping, mirroring Image.At.
func (im *QImage) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y); out-of-bounds writes are dropped.
func (im *QImage) Set(x, y int, v uint8) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// quantizePixel maps a real value in [0, 1] to its 8-bit code (round to
// nearest, saturating).
func quantizePixel(v float32) uint8 {
	q := int32(v*255 + 0.5)
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return uint8(q)
}

// QuantizeImageInto fills q (which must match im's dimensions) with im's
// pixels quantized to 8-bit codes. The only float arithmetic on the
// fixed-point camera path.
//
//sov:hotpath
func QuantizeImageInto(q *QImage, im *Image) {
	if q.W != im.W || q.H != im.H {
		panic("vision: QuantizeImageInto dimensions do not match")
	}
	for i, v := range im.Pix {
		q.Pix[i] = quantizePixel(v)
	}
}

// QuantizeImage returns a freshly allocated 8-bit copy of im.
func QuantizeImage(im *Image) *QImage {
	q := NewQImage(im.W, im.H)
	QuantizeImageInto(q, im)
	return q
}

// DequantizeInto fills out (which must match im's dimensions) with the real
// values of im's codes.
//
//sov:hotpath
func (im *QImage) DequantizeInto(out *Image) {
	if out.W != im.W || out.H != im.H {
		panic("vision: DequantizeInto dimensions do not match")
	}
	const inv = float32(1.0 / 255.0)
	for i, v := range im.Pix {
		out.Pix[i] = float32(v) * inv
	}
}

// Dequantize returns a freshly allocated float copy of im.
func (im *QImage) Dequantize() *Image {
	out := NewImage(im.W, im.H)
	im.DequantizeInto(out)
	return out
}
