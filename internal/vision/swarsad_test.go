package vision

import (
	"math/rand"
	"testing"
)

// TestSAD8Exhaustive proves the byte-wise compare-select over every pair of
// byte values: each (a, b) is planted in a different lane with random
// neighbors, so lane independence is exercised alongside the formula.
func TestSAD8Exhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			lane := (a*256 + b) % 8
			var x, y uint64
			var want int32
			for i := 0; i < 8; i++ {
				xa, yb := rng.Intn(256), rng.Intn(256)
				if i == lane {
					xa, yb = a, b
				}
				x |= uint64(xa) << (8 * i)
				y |= uint64(yb) << (8 * i)
				d := int32(xa) - int32(yb)
				if d < 0 {
					d = -d
				}
				want += d
			}
			if got := sad8(x, y); got != want {
				t.Fatalf("a=%d b=%d lane=%d: sad8=%d want %d", a, b, lane, got, want)
			}
		}
	}
}

// TestSAD8Extremes pins the saturating corners: all-zero, all-255, and the
// maximum per-word sum 8·255.
func TestSAD8Extremes(t *testing.T) {
	if got := sad8(0, 0); got != 0 {
		t.Fatalf("sad8(0,0)=%d", got)
	}
	all := ^uint64(0)
	if got := sad8(all, all); got != 0 {
		t.Fatalf("sad8(ff,ff)=%d", got)
	}
	if got := sad8(all, 0); got != 8*255 {
		t.Fatalf("sad8(ff,0)=%d want %d", got, 8*255)
	}
	if got := sad8(0, all); got != 8*255 {
		t.Fatalf("sad8(0,ff)=%d want %d", got, 8*255)
	}
}

// TestSADSweepMatchesScalar drives the masked row kernel against sadAtQ over
// window widths 1..4 (w=3..9 triggers both the SWAR path and the w>8
// fallback), random images, and every disparity band shape the matchers
// produce.
func TestSADSweepMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	W, H := 40, 24
	left := &QImage{W: W, H: H, Pix: make([]uint8, W*H)}
	right := &QImage{W: W, H: H, Pix: make([]uint8, W*H)}
	for i := range left.Pix {
		left.Pix[i] = uint8(rng.Intn(256))
		right.Pix[i] = uint8(rng.Intn(256))
	}
	for half := 1; half <= 3; half++ {
		for trial := 0; trial < 200; trial++ {
			x := rng.Intn(W)
			y := rng.Intn(H)
			dMin := rng.Intn(6)
			dMax := dMin + rng.Intn(10)
			if !sadSWAROK(left, right, x, dMin, dMax, half) {
				continue
			}
			costs := make([]int32, dMax-dMin+1)
			sadSweepSWAR(left, right, x, y, dMin, half, costs)
			for d := dMin; d <= dMax; d++ {
				if want := sadAtQ(left, right, x, y, d, half); costs[d-dMin] != want {
					t.Fatalf("half=%d x=%d y=%d d=%d: SWAR %d != scalar %d",
						half, x, y, d, costs[d-dMin], want)
				}
			}
		}
	}
}
