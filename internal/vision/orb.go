package vision

import (
	"math/bits"
	"math/rand"
)

// Descriptor256 is a BRIEF/ORB-style 256-bit binary descriptor: each bit is
// an intensity comparison between a fixed pair of offsets around the
// keypoint. This is the key-frame feature-extraction path (Table III's ORB
// reference) — the slower of the two localization front-end variants that
// runtime partial reconfiguration swaps against LK tracking.
type Descriptor256 [4]uint64

// descriptorPattern is the fixed comparison-pair layout, generated once
// deterministically (ORB learns its pattern offline; a seeded random
// Gaussian pattern is the classic BRIEF construction).
var descriptorPattern = func() [256][4]int {
	// Fixed literal seed (detrand): the pattern must be identical in every
	// process or descriptors would not match across runs.
	rng := rand.New(rand.NewSource(0x0B5E55ED))
	var out [256][4]int
	for i := range out {
		for j := 0; j < 4; j++ {
			v := int(rng.NormFloat64() * 4)
			if v > 12 {
				v = 12
			}
			if v < -12 {
				v = -12
			}
			out[i][j] = v
		}
	}
	return out
}()

// DescribeORB computes the binary descriptor of a keypoint. Points closer
// than 13 px to the border use clamped samples (acceptable for matching).
func DescribeORB(im *Image, x, y int) Descriptor256 {
	var d Descriptor256
	for i, p := range descriptorPattern {
		a := im.At(x+p[0], y+p[1])
		b := im.At(x+p[2], y+p[3])
		if a < b {
			d[i/64] |= 1 << (i % 64)
		}
	}
	return d
}

// HammingDistance counts differing bits between two descriptors.
func HammingDistance(a, b Descriptor256) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] ^ b[i])
	}
	return n
}

// FeatureMatch pairs a query keypoint index with a train keypoint index.
type FeatureMatch struct {
	Query, Train int
	Distance     int
}

// MatchORB greedily matches descriptors with a ratio test: a match is kept
// when its best Hamming distance is below maxDist and clearly better than
// the second best (Lowe-style criterion adapted to binary descriptors).
func MatchORB(query, train []Descriptor256, maxDist int) []FeatureMatch {
	var out []FeatureMatch
	for qi, q := range query {
		best, second, bestTi := 257, 257, -1
		for ti, t := range train {
			d := HammingDistance(q, t)
			if d < best {
				second = best
				best = d
				bestTi = ti
			} else if d < second {
				second = d
			}
		}
		if bestTi >= 0 && best <= maxDist && best*4 <= second*3 {
			out = append(out, FeatureMatch{Query: qi, Train: bestTi, Distance: best})
		}
	}
	return out
}

// ExtractAndDescribe runs the full key-frame front-end: corner detection
// followed by descriptor extraction. Returns the corners and descriptors.
func ExtractAndDescribe(im *Image, maxCorners int) ([]Corner, []Descriptor256) {
	corners := DetectCorners(im, maxCorners, 0.02, 8)
	descs := make([]Descriptor256, len(corners))
	for i, c := range corners {
		descs[i] = DescribeORB(im, c.X, c.Y)
	}
	return corners, descs
}
