package vision

import (
	"math"
	"testing"
)

func TestQImageRoundTrip(t *testing.T) {
	im := NewImage(16, 8)
	for i := range im.Pix {
		im.Pix[i] = float32(i) / float32(len(im.Pix)-1)
	}
	q := QuantizeImage(im)
	back := q.Dequantize()
	for i := range im.Pix {
		// Half a code of quantization noise at most.
		if d := math.Abs(float64(back.Pix[i] - im.Pix[i])); d > 1.0/510+1e-6 {
			t.Fatalf("pixel %d: %g -> %d -> %g off by %g", i, im.Pix[i], q.Pix[i], back.Pix[i], d)
		}
	}
	im.Pix[0], im.Pix[1] = -0.5, 1.5
	QuantizeImageInto(q, im)
	if q.Pix[0] != 0 || q.Pix[1] != 255 {
		t.Fatalf("out-of-range pixels must saturate: got %d, %d", q.Pix[0], q.Pix[1])
	}
	if q.At(-3, -3) != q.At(0, 0) || q.At(100, 100) != q.At(15, 7) {
		t.Fatal("QImage.At border clamping broken")
	}
}

// disparityParity checks the fixed-point map against the float reference:
// where both are valid, disparities must agree within the documented budget
// on nearly every pixel (DESIGN.md §8).
func disparityParity(t *testing.T, ref, q *DisparityMap) {
	t.Helper()
	both, close_ := 0, 0
	var sum float64
	for i := range ref.D {
		if ref.D[i] < 0 || q.D[i] < 0 {
			continue
		}
		both++
		d := math.Abs(float64(ref.D[i] - q.D[i]))
		sum += d
		if d <= 1 {
			close_++
		}
	}
	if both < len(ref.D)/4 {
		t.Fatalf("only %d/%d pixels valid in both maps", both, len(ref.D))
	}
	if frac := float64(close_) / float64(both); frac < 0.95 {
		t.Fatalf("only %.1f%% of shared pixels within 1 disparity (want >= 95%%)", frac*100)
	}
	if mean := sum / float64(both); mean > 0.25 {
		t.Fatalf("mean |quant - float| disparity = %g (budget 0.25)", mean)
	}
}

func TestBlockMatchQuantTracksFloat(t *testing.T) {
	rig := DefaultStereoRig()
	z := 3.0
	s := Scene{Background: 5, BgDepth: 30, Boxes: []Box{{X: 0, Y: 0, Z: z, W: 3, H: 2.4, Texture: 11}}}
	left, right := s.RenderStereo(rig)
	ref := BlockMatch(left, right, 12, 3)
	q := BlockMatchQuant(QuantizeImage(left), QuantizeImage(right), 12, 3)
	disparityParity(t, ref, q)

	// The quantized map must still recover the known metric depth on its own.
	med, ok := MedianDisparityIn(q, 60, 40, 100, 80)
	if !ok {
		t.Fatal("no valid quantized disparities in object region")
	}
	if want := rig.DisparityFromDepth(z); math.Abs(float64(med)-want) > 0.5 {
		t.Fatalf("quantized median disparity = %v, want %v", med, want)
	}
}

func TestSupportPointStereoQuantTracksFloat(t *testing.T) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 20, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2.4, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	ref := SupportPointStereo(left, right, 12, 3, 8, 2)
	q := SupportPointStereoQuant(QuantizeImage(left), QuantizeImage(right), 12, 3, 8, 2)
	disparityParity(t, ref, q)

	refMed, _ := MedianDisparityIn(ref, 60, 40, 100, 80)
	qMed, ok := MedianDisparityIn(q, 60, 40, 100, 80)
	if !ok {
		t.Fatal("quantized support-point stereo produced no disparities in region")
	}
	if math.Abs(float64(refMed-qMed)) > 0.5 {
		t.Fatalf("float %v vs quant %v median disparity", refMed, qMed)
	}
}
