package vision

import (
	"math"
)

// Intrinsics is a pinhole camera model.
type Intrinsics struct {
	Fx, Fy float64 // focal lengths in pixels
	Cx, Cy float64 // principal point
	W, H   int
}

// DefaultIntrinsics returns the rig used throughout the experiments: a
// 160×120 rendering of the deployed camera's geometry (focal length scaled
// accordingly) to keep the real-algorithm benches fast.
func DefaultIntrinsics() Intrinsics {
	return Intrinsics{Fx: 120, Fy: 120, Cx: 80, Cy: 60, W: 160, H: 120}
}

// StereoRig is a rectified stereo pair: the right camera is displaced by
// Baseline along the camera-frame X axis.
type StereoRig struct {
	Intr     Intrinsics
	Baseline float64 // meters
}

// DefaultStereoRig returns a 12 cm baseline rig.
func DefaultStereoRig() StereoRig {
	return StereoRig{Intr: DefaultIntrinsics(), Baseline: 0.12}
}

// DepthFromDisparity converts a disparity in pixels to metric depth.
func (r StereoRig) DepthFromDisparity(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return r.Intr.Fx * r.Baseline / d
}

// DisparityFromDepth converts metric depth to disparity in pixels.
func (r StereoRig) DisparityFromDepth(z float64) float64 {
	if z <= 0 {
		return math.Inf(1)
	}
	return r.Intr.Fx * r.Baseline / z
}

// Box is a textured axis-aligned rectangle at constant camera-frame depth:
// the renderer's scene primitive. X/Y are the camera-frame coordinates of
// its center, in meters; depth Z is along the optical axis.
type Box struct {
	X, Y, Z float64 // center, camera frame (X right, Y down, Z forward)
	W, H    float64 // extent in meters
	Texture uint32  // procedural texture seed
}

// Scene is a renderable set of boxes over a textured background plane.
type Scene struct {
	Background uint32 // background texture seed
	BgDepth    float64
	Boxes      []Box
}

// hash32 is a small integer hash for procedural texturing.
func hash32(x, y, seed uint32) float32 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ seed*0xC2B2AE3D
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	return float32(h&0xFFFF) / 65535.0
}

// texture samples a band-limited procedural texture at world coordinates
// (meters): two octaves of smoothly interpolated hash noise, with texels
// chosen so the pattern stays resolvable (not aliased) at the depths the
// experiments use — a prerequisite for sub-pixel stereo and LK tracking.
func texture(u, v float64, seed uint32) float32 {
	return 0.7*textureOctave(u, v, seed, 0.08) + 0.3*textureOctave(u, v, seed^0xA5A5A5A5, 0.3)
}

func textureOctave(u, v float64, seed uint32, texel float64) float32 {
	x := u / texel
	y := v / texel
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := float32(x-x0), float32(y-y0)
	ix, iy := uint32(int64(x0)+1<<20), uint32(int64(y0)+1<<20)
	v00 := hash32(ix, iy, seed)
	v10 := hash32(ix+1, iy, seed)
	v01 := hash32(ix, iy+1, seed)
	v11 := hash32(ix+1, iy+1, seed)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Render draws the scene from a camera displaced by baselineOffset meters
// along camera X (0 for the left camera, rig baseline for the right).
// Boxes are rendered nearest-last so closer boxes occlude farther ones.
func (s Scene) Render(intr Intrinsics, baselineOffset float64) *Image {
	im := NewImage(intr.W, intr.H)
	var scratch []Box
	s.RenderInto(im, intr, baselineOffset, &scratch)
	return im
}

// RenderInto draws the scene into im, which must be intr.W×intr.H, borrowing
// *scratch for the depth sort (grown as needed and handed back) — the
// zero-allocation variant of Render for recycled frame buffers. Every pixel
// is overwritten, so im may hold a stale frame on entry.
func (s Scene) RenderInto(im *Image, intr Intrinsics, baselineOffset float64, scratch *[]Box) {
	if im.W != intr.W || im.H != intr.H {
		panic("vision: RenderInto image does not match intrinsics")
	}
	// Depth-sorted copy, far to near.
	boxes := append((*scratch)[:0], s.Boxes...)
	*scratch = boxes
	for i := 1; i < len(boxes); i++ {
		for j := i; j > 0 && boxes[j].Z > boxes[j-1].Z; j-- {
			boxes[j], boxes[j-1] = boxes[j-1], boxes[j]
		}
	}
	for py := 0; py < intr.H; py++ {
		for px := 0; px < intr.W; px++ {
			// Back-project the pixel ray.
			dx := (float64(px) - intr.Cx) / intr.Fx
			dy := (float64(py) - intr.Cy) / intr.Fy
			// Background plane.
			var val float32
			if s.BgDepth > 0 {
				u := dx*s.BgDepth + baselineOffset
				v := dy * s.BgDepth
				val = 0.3 + 0.4*texture(u, v, s.Background)
			}
			for _, b := range boxes {
				// Intersection of the ray with the plane Z = b.Z.
				u := dx*b.Z + baselineOffset // camera-frame X at depth Z (left cam at 0)
				v := dy * b.Z
				if math.Abs(u-b.X) <= b.W/2 && math.Abs(v-b.Y) <= b.H/2 {
					val = 0.5 + 0.5*texture(u-b.X, v-b.Y, b.Texture)
				}
			}
			im.Pix[py*im.W+px] = val
		}
	}
}

// RenderStereo renders the left and right views of the scene.
func (s Scene) RenderStereo(rig StereoRig) (left, right *Image) {
	return s.Render(rig.Intr, 0), s.Render(rig.Intr, rig.Baseline)
}
