package vision

import (
	"math"
	"testing"
)

// stixelScene: two boxes at different depths and lateral offsets over a
// distant background.
func stixelScene() (StereoRig, *DisparityMap) {
	rig := DefaultStereoRig()
	// No background plane: at 30 m the procedural texture aliases below
	// pixel scale and is unmatchable by any stereo algorithm (see the
	// texture-resolution note in render.go), which is physically the
	// "featureless distant background" case.
	s := Scene{
		Boxes: []Box{
			{X: -1.2, Y: 0, Z: 4, W: 1.2, H: 1.6, Texture: 11},
			{X: 1.5, Y: 0, Z: 6, W: 1.2, H: 1.6, Texture: 23},
		},
	}
	left, right := s.RenderStereo(rig)
	return rig, SGM(left, right, DefaultSGMConfig())
}

func TestExtractStixelsFindsObstacles(t *testing.T) {
	rig, m := stixelScene()
	g := GroundModelFor(rig, 1.2)
	stixels := ExtractStixels(m, rig, g, 1.0, 1.5, 8)
	if len(stixels) < 10 {
		t.Fatalf("stixels = %d, want columns across both boxes", len(stixels))
	}
	// Every stixel should be at one of the two box depths.
	for _, s := range stixels {
		// Box-edge columns mix object and background disparities (SGM
		// smear), so the per-column tolerance is loose; grouping below
		// tightens it.
		near4 := math.Abs(s.Depth-4) < 1.2
		near6 := math.Abs(s.Depth-6) < 1.6
		if !near4 && !near6 {
			t.Fatalf("stixel at depth %.2f, want ~4 or ~6", s.Depth)
		}
		if s.Bottom <= s.Top {
			t.Fatalf("degenerate stixel %+v", s)
		}
	}
}

func TestGroupStixelsSeparatesObjects(t *testing.T) {
	rig, m := stixelScene()
	g := GroundModelFor(rig, 1.2)
	stixels := ExtractStixels(m, rig, g, 1.0, 1.5, 8)
	objs := GroupStixels(stixels, rig, 1.2, 6)
	if len(objs) != 2 {
		t.Fatalf("objects = %d, want 2", len(objs))
	}
	// Identify by depth.
	var nearObj, farObj *StixelObject
	for i := range objs {
		if math.Abs(objs[i].Depth-4) < 0.8 {
			nearObj = &objs[i]
		}
		if math.Abs(objs[i].Depth-6) < 0.8 {
			farObj = &objs[i]
		}
	}
	if nearObj == nil || farObj == nil {
		t.Fatalf("depths = %+v", objs)
	}
	// Lateral positions: -1.2 m and +1.5 m.
	if math.Abs(nearObj.LateralM-(-1.2)) > 0.5 {
		t.Fatalf("near lateral = %.2f, want ~-1.2", nearObj.LateralM)
	}
	if math.Abs(farObj.LateralM-1.5) > 0.5 {
		t.Fatalf("far lateral = %.2f, want ~1.5", farObj.LateralM)
	}
}

func TestGroundModel(t *testing.T) {
	rig := DefaultStereoRig()
	g := GroundModelFor(rig, 1.2)
	if g.Expected(int(g.Horizon)-10) != 0 {
		t.Fatal("above-horizon ground disparity must be 0")
	}
	if g.Expected(int(g.Horizon)+20) <= g.Expected(int(g.Horizon)+10) {
		t.Fatal("ground disparity must grow downward")
	}
	// Degenerate camera height defaults instead of dividing by zero.
	g2 := GroundModelFor(rig, 0)
	if g2.A <= 0 || math.IsInf(g2.A, 0) {
		t.Fatalf("A = %v", g2.A)
	}
}

func TestExtractStixelsEmptyScene(t *testing.T) {
	rig := DefaultStereoRig()
	s := Scene{}
	left, right := s.RenderStereo(rig)
	m := SGM(left, right, DefaultSGMConfig())
	g := GroundModelFor(rig, 1.2)
	stixels := ExtractStixels(m, rig, g, 1.0, 1.5, 8)
	if len(stixels) != 0 {
		t.Fatalf("empty scene produced %d stixels", len(stixels))
	}
}

func BenchmarkStixelPipeline(b *testing.B) {
	rig, m := stixelScene()
	g := GroundModelFor(rig, 1.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupStixels(ExtractStixels(m, rig, g, 1.0, 1.5, 8), rig, 0.8, 4)
	}
}
