package vision

import (
	"testing"

	"sov/internal/cachesim"
)

// The stereo matchers' parallel row-block height is held to a cachesim
// sweep the same way the GEMM column block is: this test replays the block
// matcher's access stream — per-pixel left-row loads and the per-candidate
// right-row loads of the SWAR sweep — once per tile through a cold cache
// (each worker's private cache sees its tile from scratch), and requires
// the shipped sadRowBlock to sit at the miss-rate optimum among candidates
// that still split the bench frame (96 rows) across eight workers. Small
// tiles pay the (R + 2·half)-row halo over and over; the constraint caps
// how far the sweep can push R.

// replaySADStream drives one frame of BlockMatchQuant accesses (the bench
// shape: 128×96, maxDisp 12, half 3) tiled into row blocks of height r.
// The cache resets per tile to model each tile landing on a cold private
// cache.
func replaySADStream(c *cachesim.Cache, r int) (accesses, misses int64) {
	const (
		w, h                = 128, 96
		maxDisp, half       = 12, 3
		lbase         int64 = 0
		rbase         int64 = 1 << 20
	)
	for y0 := 0; y0 < h; y0 += r {
		y1 := y0 + r
		if y1 > h {
			y1 = h
		}
		c.Reset()
		for y := y0; y < y1; y++ {
			for x := half; x < w-half-8; x++ {
				dMax := maxDisp
				if dMax > x-half {
					dMax = x - half
				}
				for dy := -half; dy <= half; dy++ {
					iy := y + dy
					if iy < 0 {
						iy = 0
					} else if iy >= h {
						iy = h - 1
					}
					c.Access(lbase+int64(iy*w+x-half), 8)
					for d := 0; d <= dMax; d++ {
						c.Access(rbase+int64(iy*w+x-d-half), 8)
					}
				}
			}
		}
		s := c.Stats()
		accesses += s.Accesses
		misses += s.Misses
	}
	return accesses, misses
}

// TestSADRowBlockAtSweepOptimum sweeps the row-block height and requires
// the shipped sadRowBlock to sit within 10% of the best measured miss rate
// among candidates that keep at least eight tiles on the bench frame.
func TestSADRowBlockAtSweepOptimum(t *testing.T) {
	const frameRows, minTiles = 96, 8
	candidates := []int{2, 3, 4, 6, 8, 12, 16, 24}
	rates := make(map[int]float64, len(candidates))
	best := 1.0
	for _, r := range candidates {
		if (frameRows+r-1)/r < minTiles {
			continue // too coarse: the frame no longer feeds every worker
		}
		c := cachesim.New(cachesim.DefaultConfig())
		acc, miss := replaySADStream(c, r)
		rate := float64(miss) / float64(acc)
		rates[r] = rate
		if rate < best {
			best = rate
		}
		t.Logf("row block %2d: miss rate %.5f", r, rate)
	}
	shipped, ok := rates[sadRowBlock]
	if !ok {
		t.Fatalf("shipped sadRowBlock %d not among admissible candidates", sadRowBlock)
	}
	if shipped > best*1.10 {
		t.Fatalf("shipped sadRowBlock %d misses at %.5f, > 10%% above sweep optimum %.5f",
			sadRowBlock, shipped, best)
	}
}
