package vision

import (
	"math"
	"testing"
)

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, 0.5)
	if im.At(1, 2) != 0.5 {
		t.Fatal("set/get failed")
	}
	// Border clamping.
	im.Set(0, 0, 0.9)
	if im.At(-5, -5) != 0.9 {
		t.Fatal("clamp to (0,0) failed")
	}
	if im.At(100, 100) != im.At(3, 2) {
		t.Fatal("clamp to max failed")
	}
	// Out-of-bounds set is dropped.
	im.Set(-1, 0, 123)
	if im.At(0, 0) != 0.9 {
		t.Fatal("OOB set leaked")
	}
	c := im.Clone()
	c.Set(0, 0, 0)
	if im.At(0, 0) != 0.9 {
		t.Fatal("clone aliases source")
	}
}

func TestImagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewImage(0, 5)
}

func TestBilinear(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 0)
	im.Set(1, 0, 1)
	im.Set(0, 1, 2)
	im.Set(1, 1, 3)
	if got := im.Bilinear(0.5, 0.5); math.Abs(float64(got)-1.5) > 1e-6 {
		t.Fatalf("bilinear center = %v", got)
	}
	if got := im.Bilinear(0, 0); got != 0 {
		t.Fatalf("bilinear corner = %v", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	s := Scene{Background: 1, BgDepth: 20, Boxes: []Box{{X: 0, Y: 0, Z: 8, W: 2, H: 2, Texture: 7}}}
	intr := DefaultIntrinsics()
	a := s.Render(intr, 0)
	b := s.Render(intr, 0)
	if MeanAbsDiff(a, b) != 0 {
		t.Fatal("render not deterministic")
	}
}

func TestRenderOcclusion(t *testing.T) {
	intr := DefaultIntrinsics()
	near := Scene{BgDepth: 30, Background: 1, Boxes: []Box{
		{X: 0, Y: 0, Z: 20, W: 4, H: 4, Texture: 2},
		{X: 0, Y: 0, Z: 5, W: 1, H: 1, Texture: 3},
	}}
	farOnly := Scene{BgDepth: 30, Background: 1, Boxes: []Box{
		{X: 0, Y: 0, Z: 20, W: 4, H: 4, Texture: 2},
	}}
	a := near.Render(intr, 0)
	b := farOnly.Render(intr, 0)
	// Center pixel must differ (near box occludes far box).
	if a.At(80, 60) == b.At(80, 60) {
		t.Fatal("near box did not occlude")
	}
	// Corner pixels (background) must agree.
	if a.At(2, 2) != b.At(2, 2) {
		t.Fatal("background corrupted by occluder")
	}
}

func TestStereoDisparityGeometry(t *testing.T) {
	rig := DefaultStereoRig()
	// f=120 px, b=0.12 m → at Z=4.8 m disparity = 3 px.
	if got := rig.DisparityFromDepth(4.8); math.Abs(got-3) > 1e-9 {
		t.Fatalf("disparity = %v, want 3", got)
	}
	if got := rig.DepthFromDisparity(3); math.Abs(got-4.8) > 1e-9 {
		t.Fatalf("depth = %v, want 4.8", got)
	}
	if !math.IsInf(rig.DepthFromDisparity(0), 1) {
		t.Fatal("zero disparity should be infinite depth")
	}
}

func TestBlockMatchRecoversKnownDepth(t *testing.T) {
	rig := DefaultStereoRig()
	z := 3.0
	s := Scene{Background: 5, BgDepth: 30, Boxes: []Box{{X: 0, Y: 0, Z: z, W: 3, H: 2.4, Texture: 11}}}
	left, right := s.RenderStereo(rig)
	m := BlockMatch(left, right, 12, 3)
	wantD := rig.DisparityFromDepth(z)
	med, ok := MedianDisparityIn(m, 60, 40, 100, 80)
	if !ok {
		t.Fatal("no valid disparities in object region")
	}
	if math.Abs(float64(med)-wantD) > 0.5 {
		t.Fatalf("median disparity = %v, want %v", med, wantD)
	}
	depth := rig.DepthFromDisparity(float64(med))
	if math.Abs(depth-z) > 0.3 {
		t.Fatalf("depth = %v, want %v", depth, z)
	}
}

func TestSupportPointStereoMatchesBlockMatch(t *testing.T) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 20, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2.4, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	bm := BlockMatch(left, right, 12, 3)
	sp := SupportPointStereo(left, right, 12, 3, 8, 2)
	bmMed, _ := MedianDisparityIn(bm, 60, 40, 100, 80)
	spMed, ok := MedianDisparityIn(sp, 60, 40, 100, 80)
	if !ok {
		t.Fatal("support-point stereo produced no disparities in region")
	}
	if math.Abs(float64(bmMed-spMed)) > 0.5 {
		t.Fatalf("BM %v vs ELAS-style %v", bmMed, spMed)
	}
}

func TestSupportPointsDetectPlane(t *testing.T) {
	rig := DefaultStereoRig()
	s := Scene{Background: 3, BgDepth: 6} // textured plane at 6 m → d = 2.4 px
	left, right := s.RenderStereo(rig)
	sps := SupportPoints(left, right, 10, 3, 8)
	if len(sps) < 20 {
		t.Fatalf("support points = %d, want >= 20", len(sps))
	}
	want := rig.DisparityFromDepth(6)
	good := 0
	for _, sp := range sps {
		if math.Abs(float64(sp.D)-want) < 0.75 {
			good++
		}
	}
	if float64(good)/float64(len(sps)) < 0.7 {
		t.Fatalf("only %d/%d support points near %v px", good, len(sps), want)
	}
}

func TestDisparityMapHelpers(t *testing.T) {
	m := &DisparityMap{W: 2, H: 2, D: []float32{1, -1, 2, 3}}
	if m.At(0, 0) != 1 || m.At(1, 0) != -1 {
		t.Fatal("At wrong")
	}
	if m.At(-1, 0) != -1 || m.At(0, 5) != -1 {
		t.Fatal("OOB should be -1")
	}
	if m.ValidFraction() != 0.75 {
		t.Fatalf("valid fraction = %v", m.ValidFraction())
	}
	med, ok := MedianDisparityIn(m, 0, 0, 1, 1)
	if !ok || med != 2 {
		t.Fatalf("median = %v ok=%v", med, ok)
	}
	if _, ok := MedianDisparityIn(m, 1, 0, 1, 0); ok {
		t.Fatal("all-invalid region should report !ok")
	}
}

func TestDetectCornersFindsBoxCorners(t *testing.T) {
	intr := DefaultIntrinsics()
	s := Scene{Background: 0, BgDepth: 0, Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 2, H: 2, Texture: 4}}}
	im := s.Render(intr, 0)
	corners := DetectCorners(im, 50, 0.05, 5)
	if len(corners) < 10 {
		t.Fatalf("corners = %d, want >= 10 on textured box", len(corners))
	}
	// Scores sorted descending by construction of selection.
	for i := 1; i < len(corners); i++ {
		if corners[i].Score > corners[0].Score {
			t.Fatal("first corner is not the strongest")
		}
	}
	// Min-distance respected.
	for i := 0; i < len(corners); i++ {
		for j := i + 1; j < len(corners); j++ {
			dx := corners[i].X - corners[j].X
			dy := corners[i].Y - corners[j].Y
			if dx*dx+dy*dy < 25 {
				t.Fatalf("corners %d,%d too close", i, j)
			}
		}
	}
}

func TestDetectCornersEmptyImage(t *testing.T) {
	im := NewImage(32, 32)
	if got := DetectCorners(im, 10, 0.01, 3); len(got) != 0 {
		t.Fatalf("flat image corners = %d", len(got))
	}
	if got := DetectCorners(im, 0, 0.01, 3); got != nil {
		t.Fatal("maxCorners=0 should return nil")
	}
}

func TestTrackLKRecoverShift(t *testing.T) {
	intr := DefaultIntrinsics()
	s1 := Scene{Background: 0, BgDepth: 0, Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 2, H: 2, Texture: 4}}}
	s2 := Scene{Background: 0, BgDepth: 0, Boxes: []Box{{X: 0.05, Y: 0.025, Z: 5, W: 2, H: 2, Texture: 4}}}
	im1 := s1.Render(intr, 0)
	im2 := s2.Render(intr, 0)
	// 0.05 m at Z=5 with f=120 → 1.2 px right; 0.6 px down.
	corners := DetectCorners(im1, 10, 0.05, 8)
	if len(corners) == 0 {
		t.Fatal("no corners to track")
	}
	okCount := 0
	for _, c := range corners {
		// Skip corners too close to the box edge (texture leaves the patch).
		if c.X < 30 || c.X > 130 || c.Y < 25 || c.Y > 95 {
			continue
		}
		r := TrackLK(im1, im2, float64(c.X), float64(c.Y), 4, 20)
		if !r.OK {
			continue
		}
		if math.Abs(r.X-float64(c.X)-1.2) < 0.5 && math.Abs(r.Y-float64(c.Y)-0.6) < 0.5 {
			okCount++
		}
	}
	if okCount < 3 {
		t.Fatalf("only %d corners tracked to the expected shift", okCount)
	}
}

func TestTrackLKFlatRegionFails(t *testing.T) {
	im := NewImage(64, 64)
	r := TrackLK(im, im, 32, 32, 4, 10)
	if r.OK {
		t.Fatal("tracking on flat region should fail (singular system)")
	}
}

func TestMeanAbsDiffPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanAbsDiff(NewImage(2, 2), NewImage(3, 3))
}

func BenchmarkBlockMatch160x120(b *testing.B) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockMatch(left, right, 12, 2)
	}
}

func BenchmarkSupportPointStereo160x120(b *testing.B) {
	rig := DefaultStereoRig()
	s := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	left, right := s.RenderStereo(rig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SupportPointStereo(left, right, 12, 2, 8, 2)
	}
}

func BenchmarkDetectCorners(b *testing.B) {
	intr := DefaultIntrinsics()
	s := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	im := s.Render(intr, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectCorners(im, 100, 0.02, 5)
	}
}

func BenchmarkTrackLK(b *testing.B) {
	intr := DefaultIntrinsics()
	s1 := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	s2 := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0.02, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	im1 := s1.Render(intr, 0)
	im2 := s2.Render(intr, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrackLK(im1, im2, 80, 60, 4, 20)
	}
}

func TestCrop(t *testing.T) {
	im := NewImage(10, 10)
	im.Set(5, 5, 0.9)
	c := im.Crop(5, 5, 4, 4)
	if c.W != 4 || c.H != 4 {
		t.Fatalf("crop shape %dx%d", c.W, c.H)
	}
	// Center pixel lands at (2,2) of the crop (w/2, h/2).
	if c.At(2, 2) != 0.9 {
		t.Fatalf("crop center = %v", c.At(2, 2))
	}
	// Border clamping near the edge does not panic and fills values.
	e := im.Crop(0, 0, 6, 6)
	if e.W != 6 {
		t.Fatal("edge crop wrong")
	}
}
