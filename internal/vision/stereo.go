package vision

import (
	"math"

	"sov/internal/parallel"
)

// DisparityMap is a dense per-pixel disparity image; invalid pixels are
// negative.
type DisparityMap struct {
	W, H int
	D    []float32
}

// At returns the disparity at (x, y), or -1 out of bounds.
func (m *DisparityMap) At(x, y int) float32 {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return -1
	}
	return m.D[y*m.W+x]
}

// ValidFraction returns the fraction of pixels with a valid disparity.
func (m *DisparityMap) ValidFraction() float64 {
	n := 0
	for _, d := range m.D {
		if d >= 0 {
			n++
		}
	}
	return float64(n) / float64(len(m.D))
}

// sadAt computes the sum of absolute differences between a (2*half+1)²
// patch in left at (x, y) and in right at (x-d, y).
func sadAt(left, right *Image, x, y, d, half int) float64 {
	var sad float64
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			diff := float64(left.At(x+dx, y+dy) - right.At(x+dx-d, y+dy))
			if diff < 0 {
				diff = -diff
			}
			sad += diff
		}
	}
	return sad
}

// matchPixel finds the best disparity in [dMin, dMax] with sub-pixel
// parabola refinement and a uniqueness check. Returns -1 when ambiguous.
// scratch, when non-nil with sufficient capacity, holds the per-candidate
// costs so the per-pixel hot path does not allocate.
func matchPixel(left, right *Image, x, y, dMin, dMax, half int, scratch []float64) float32 {
	if dMin < 0 {
		dMin = 0
	}
	if dMax > x {
		dMax = x // right image column would be negative
	}
	if dMax < dMin {
		return -1
	}
	best, second := math.Inf(1), math.Inf(1)
	bestD := -1
	costs := scratch
	if cap(costs) < dMax-dMin+1 {
		costs = make([]float64, dMax-dMin+1)
	}
	costs = costs[:dMax-dMin+1]
	for d := dMin; d <= dMax; d++ {
		c := sadAt(left, right, x, y, d, half)
		costs[d-dMin] = c
		if c < best {
			second = best
			best = c
			bestD = d
		} else if c < second {
			second = c
		}
	}
	if bestD < 0 {
		return -1
	}
	// Uniqueness: the best must beat the second-best clearly.
	if second < best*1.05 && dMax > dMin {
		return -1
	}
	// Sub-pixel parabola fit around the minimum.
	d := float64(bestD)
	i := bestD - dMin
	if i > 0 && i < len(costs)-1 {
		c0, c1, c2 := costs[i-1], costs[i], costs[i+1]
		denom := c0 - 2*c1 + c2
		if denom > 1e-12 {
			d += 0.5 * (c0 - c2) / denom
		}
	}
	return float32(d)
}

// BlockMatch computes a dense disparity map by exhaustive SAD search in
// [0, maxDisp] with a (2*half+1)² window. This is the naive baseline the
// ELAS-style matcher is compared against.
func BlockMatch(left, right *Image, maxDisp, half int) *DisparityMap {
	m := &DisparityMap{W: left.W, H: left.H, D: make([]float32, left.W*left.H)}
	parallel.ForRows(left.H, func(y0, y1 int) {
		costs := parallel.GetF64(maxDisp + 1)
		for y := y0; y < y1; y++ {
			for x := 0; x < left.W; x++ {
				m.D[y*m.W+x] = matchPixel(left, right, x, y, 0, maxDisp, half, costs)
			}
		}
		parallel.PutF64(costs)
	})
	return m
}

// SupportPoint is a robustly matched sparse point used as a disparity prior.
type SupportPoint struct {
	X, Y int
	D    float32
}

// SupportPoints matches a sparse grid of points exhaustively; only
// unambiguous matches are kept. The grid stride trades prior density for
// speed, exactly as ELAS's support points do.
func SupportPoints(left, right *Image, maxDisp, half, stride int) []SupportPoint {
	// Grid rows are matched in parallel into per-tile buckets, then
	// concatenated in tile order so the output order matches the serial
	// row-major scan exactly.
	nRows := 0
	for y := half; y < left.H-half; y += stride {
		nRows++
	}
	buckets := make([][]SupportPoint, parallel.Tiles(nRows, 1))
	parallel.ForTiled(nRows, 1, func(tile, r0, r1 int) {
		costs := parallel.GetF64(maxDisp + 1)
		var rows []SupportPoint
		for r := r0; r < r1; r++ {
			y := half + r*stride
			for x := half; x < left.W-half; x += stride {
				d := matchPixel(left, right, x, y, 0, maxDisp, half, costs)
				if d >= 0 {
					rows = append(rows, SupportPoint{X: x, Y: y, D: d})
				}
			}
		}
		buckets[tile] = rows
		parallel.PutF64(costs)
	})
	var out []SupportPoint
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// SupportPointStereo is the ELAS-style matcher: sparse support points build
// a disparity prior (inverse-distance interpolation); each pixel then
// searches only a narrow band around its prior. It produces denser, faster
// results than exhaustive block matching on well-textured scenes.
func SupportPointStereo(left, right *Image, maxDisp, half, stride, band int) *DisparityMap {
	sps := SupportPoints(left, right, maxDisp, half, stride)
	m := &DisparityMap{W: left.W, H: left.H, D: make([]float32, left.W*left.H)}
	if len(sps) == 0 {
		for i := range m.D {
			m.D[i] = -1
		}
		return m
	}
	parallel.ForRows(left.H, func(y0, y1 int) {
		costs := parallel.GetF64(maxDisp + 1)
		for y := y0; y < y1; y++ {
			for x := 0; x < left.W; x++ {
				prior := interpolatePrior(sps, x, y)
				dMin := int(prior) - band
				dMax := int(prior) + band
				if dMax > maxDisp {
					dMax = maxDisp
				}
				m.D[y*m.W+x] = matchPixel(left, right, x, y, dMin, dMax, half, costs)
			}
		}
		parallel.PutF64(costs)
	})
	return m
}

// interpolatePrior returns the inverse-distance-weighted disparity of the
// nearest support points (capped neighborhood for speed).
func interpolatePrior(sps []SupportPoint, x, y int) float64 {
	var num, den float64
	for _, sp := range sps {
		dx := float64(sp.X - x)
		dy := float64(sp.Y - y)
		d2 := dx*dx + dy*dy
		w := 1.0 / (d2 + 1)
		num += w * float64(sp.D)
		den += w
	}
	return num / den
}

// MedianDisparityIn returns the median valid disparity inside the given
// pixel rectangle; the SoV uses it to assign a single depth per detected
// object (lane-granularity depth is all the planner needs — Sec. III-D).
func MedianDisparityIn(m *DisparityMap, x0, y0, x1, y1 int) (float32, bool) {
	var vals []float32
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if d := m.At(x, y); d >= 0 {
				vals = append(vals, d)
			}
		}
	}
	if len(vals) == 0 {
		return -1, false
	}
	// Insertion sort: rectangles are small.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2], true
}
