package vision

import "encoding/binary"

// SWAR sum-of-absolute-differences over 8-bit pixel codes (DESIGN.md §10).
// One uint64 holds eight horizontally adjacent pixels; a branch-free
// byte-wise unsigned max/min select turns |a−b| into hi−lo with no
// per-pixel sign test, and a multiply-fold reduces the eight byte
// differences to one int32. Stereo windows up to eight pixels wide load as
// a single masked word per row, so the cost loop retires eight pixel
// differences per ~20 ALU operations instead of eight compare-and-branch
// round trips.

const (
	// sadRowBlock is the stereo matchers' parallel row-block height. Each
	// tile of R output rows drags a (R + 2·half)-row halo of both images
	// through a worker's cache, so the redundant halo traffic scales as
	// (R + 2·half)/R and larger tiles waste less; the cap is load balance —
	// the bench frames (96 rows) must still split across every worker. The
	// cachesim sweep in tiles_test.go holds the shipped value at the
	// miss-rate optimum among candidates that keep at least eight tiles
	// (DESIGN.md §10).
	sadRowBlock = 12

	// sadHigh marks bit 7 of every byte lane — the carry fence of the
	// byte-wise unsigned comparison.
	sadHigh = 0x8080808080808080
	// sadLow16 selects the even byte of every 16-bit lane for the fold.
	sadLow16 = 0x00FF00FF00FF00FF
	// sadOnes16 is the 16-bit-lane horizontal-sum multiplier: the top lane
	// of t*sadOnes16 accumulates all four lanes.
	sadOnes16 = 0x0001000100010001
)

// load8u loads eight consecutive pixels little-endian: pixel p[off+i] lands
// in byte lane i. binary.LittleEndian.Uint64 compiles to a single load on
// little-endian targets.
func load8u(p []uint8, off int) uint64 {
	return binary.LittleEndian.Uint64(p[off : off+8 : off+8])
}

// sadWindowMask keeps the low w byte lanes of a loaded word, discarding the
// up-to-(8−w) trailing pixels a window narrower than the load width drags
// in. w must be in [1, 8].
func sadWindowMask(w int) uint64 {
	return ^uint64(0) >> (8 * uint(8-w))
}

// sad8 returns Σ|x_i − y_i| over the eight unsigned byte lanes of x and y.
//
// The byte-wise x ≥ y mask comes from the classic borrow-fenced subtract:
// z = (x|H) − (y &^ H) subtracts within each byte (the forced high bit
// blocks inter-byte borrows), and bit 7 of (x &^ y) | (^(x^y) & z) is the
// per-byte comparison — x's high bit wins outright, equal high bits defer
// to the fenced difference. Spreading that bit to a full-byte mask selects
// hi = max(x,y) and lo = min(x,y) per lane, whose difference has no
// inter-byte borrows; two 16-bit folds and one multiply sum the lanes.
//
//sov:hotpath
func sad8(x, y uint64) int32 {
	z := (x | sadHigh) - (y &^ sadHigh)
	m := ((((x &^ y) | (^(x ^ y) & z)) & sadHigh) >> 7) * 0xFF
	d := ((x & m) | (y &^ m)) - ((y & m) | (x &^ m))
	return int32((((d & sadLow16) + ((d >> 8) & sadLow16)) * sadOnes16) >> 48)
}

// sadSWAROK reports whether every candidate disparity in [dMin, dMax] for
// output pixel column x can run the SWAR row kernel: the window fits one
// masked word and the horizontal extents — window plus load tail — stay
// inside both images for every candidate. Vertical border rows are fine:
// the sweep clamps the row index exactly like the scalar path's At, and a
// row-local load never crosses the pixel buffer's end once its x-tail fits
// the row.
func sadSWAROK(left, right *QImage, x, dMin, dMax, half int) bool {
	return 2*half+1 <= 8 && left.H == right.H &&
		x-half >= 0 && x-half+8 <= left.W &&
		x-dMax-half >= 0 && x-dMin-half+8 <= right.W
}

// sadSweepSWAR fills costs[i] with the SAD at disparity dMin+i for the
// (2·half+1)² window at (x, y), reusing each left-row load across every
// candidate. Rows off the top or bottom edge replicate the border row —
// the same clamp At applies — so border-row windows cost the same as
// interior ones. Caller must have checked sadSWAROK. The sums are exact,
// so costs match sadAtQ byte for byte.
//
//sov:hotpath
func sadSweepSWAR(left, right *QImage, x, y, dMin, half int, costs []int32) {
	w := 2*half + 1
	mask := sadWindowMask(w)
	for i := range costs {
		costs[i] = 0
	}
	for dy := -half; dy <= half; dy++ {
		iy := y + dy
		if iy < 0 {
			iy = 0
		} else if iy >= left.H {
			iy = left.H - 1
		}
		lo := iy*left.W + x - half
		ro := iy*right.W + x - dMin - half
		lv := load8u(left.Pix, lo) & mask
		for i := range costs {
			rv := load8u(right.Pix, ro-i) & mask
			costs[i] += sad8(lv, rv)
		}
	}
}
