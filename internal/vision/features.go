package vision

import (
	"math"
	"sort"
)

// Corner is a detected feature point with its Shi-Tomasi response.
type Corner struct {
	X, Y  int
	Score float64
}

// DetectCorners finds up to maxCorners Shi-Tomasi corners (min eigenvalue of
// the structure tensor over a 3×3 window) with greedy non-max suppression of
// minDist pixels. This is the "feature extraction" kernel used on key
// frames — the slower of the two localization front-end variants that the
// runtime-partial-reconfiguration engine swaps between (Sec. V-B3).
func DetectCorners(im *Image, maxCorners int, qualityLevel float64, minDist int) []Corner {
	if maxCorners <= 0 {
		return nil
	}
	w, h := im.W, im.H
	scores := make([]float64, w*h)
	maxScore := 0.0
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var sxx, syy, sxy float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					gx := float64(im.GradX(x+dx, y+dy))
					gy := float64(im.GradY(x+dx, y+dy))
					sxx += gx * gx
					syy += gy * gy
					sxy += gx * gy
				}
			}
			// Min eigenvalue of [[sxx, sxy], [sxy, syy]].
			tr := (sxx + syy) / 2
			det := math.Sqrt((sxx-syy)*(sxx-syy)/4 + sxy*sxy)
			lam := tr - det
			scores[y*w+x] = lam
			if lam > maxScore {
				maxScore = lam
			}
		}
	}
	if maxScore == 0 {
		return nil
	}
	thresh := maxScore * qualityLevel
	cands := make([]Corner, 0, 256)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			s := scores[y*w+x]
			if s < thresh {
				continue
			}
			// Local 3x3 maximum.
			if s >= scores[(y-1)*w+x-1] && s >= scores[(y-1)*w+x] && s >= scores[(y-1)*w+x+1] &&
				s >= scores[y*w+x-1] && s > scores[y*w+x+1] &&
				s > scores[(y+1)*w+x-1] && s > scores[(y+1)*w+x] && s > scores[(y+1)*w+x+1] {
				cands = append(cands, Corner{X: x, Y: y, Score: s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	var out []Corner
	minD2 := minDist * minDist
	for _, c := range cands {
		ok := true
		for _, kept := range out {
			dx, dy := c.X-kept.X, c.Y-kept.Y
			if dx*dx+dy*dy < minD2 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
			if len(out) == maxCorners {
				break
			}
		}
	}
	return out
}

// TrackResult is the outcome of tracking one point with LK.
type TrackResult struct {
	X, Y     float64 // refined location in the next image
	OK       bool    // converged within bounds
	Residual float64 // mean absolute photometric residual at convergence
}

// TrackLK tracks the point (x, y) from prev into next using iterative
// Lucas–Kanade over a (2*half+1)² patch. This is the "feature tracking"
// kernel used on non-key frames — the faster RPR variant (the paper: 10 ms,
// 50% faster than extraction).
func TrackLK(prev, next *Image, x, y float64, half, iters int) TrackResult {
	return TrackLKGuess(prev, next, x, y, x, y, half, iters)
}

// TrackLKGuess is TrackLK with an explicit initial estimate (gx, gy) of the
// point's location in next — the hook the pyramidal tracker uses to seed
// each finer level with the coarser level's displacement.
func TrackLKGuess(prev, next *Image, x, y, gx, gy float64, half, iters int) TrackResult {
	px, py := gx, gy
	size := float64((2*half + 1) * (2*half + 1))
	for it := 0; it < iters; it++ {
		var gxx, gyy, gxy, bx, by float64
		for dy := -half; dy <= half; dy++ {
			for dx := -half; dx <= half; dx++ {
				tx, ty := x+float64(dx), y+float64(dy)
				gx := float64(prev.Bilinear(tx+1, ty)-prev.Bilinear(tx-1, ty)) / 2
				gy := float64(prev.Bilinear(tx, ty+1)-prev.Bilinear(tx, ty-1)) / 2
				diff := float64(next.Bilinear(px+float64(dx), py+float64(dy)) - prev.Bilinear(tx, ty))
				gxx += gx * gx
				gyy += gy * gy
				gxy += gx * gy
				bx -= gx * diff
				by -= gy * diff
			}
		}
		det := gxx*gyy - gxy*gxy
		if det < 1e-12 {
			return TrackResult{X: px, Y: py, OK: false, Residual: math.Inf(1)}
		}
		ux := (gyy*bx - gxy*by) / det
		uy := (gxx*by - gxy*bx) / det
		px += ux
		py += uy
		if math.Hypot(ux, uy) < 0.01 {
			break
		}
	}
	if px < 0 || py < 0 || px >= float64(next.W) || py >= float64(next.H) {
		return TrackResult{X: px, Y: py, OK: false, Residual: math.Inf(1)}
	}
	var resid float64
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			d := float64(next.Bilinear(px+float64(dx), py+float64(dy)) - prev.Bilinear(x+float64(dx), y+float64(dy)))
			resid += math.Abs(d)
		}
	}
	resid /= size
	return TrackResult{X: px, Y: py, OK: resid < 0.25, Residual: resid}
}
