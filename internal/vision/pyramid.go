package vision

// Pyramid is an image pyramid (2× downsampling per level with 2×2
// averaging) used by the pyramidal LK tracker to handle displacements
// larger than a patch radius — the regime the fast non-keyframe front-end
// (Sec. V-B3) must survive at vehicle speeds.
type Pyramid struct {
	Levels []*Image
}

// NewPyramid builds up to levels levels (level 0 is the source image).
func NewPyramid(im *Image, levels int) *Pyramid {
	if levels < 1 {
		levels = 1
	}
	p := &Pyramid{Levels: make([]*Image, 0, levels)}
	p.Levels = append(p.Levels, im)
	cur := im
	for l := 1; l < levels; l++ {
		if cur.W < 16 || cur.H < 16 {
			break
		}
		cur = downsample2(cur)
		p.Levels = append(p.Levels, cur)
	}
	return p
}

// downsample2 halves each dimension with 2x2 averaging.
func downsample2(im *Image) *Image {
	out := NewImage(im.W/2, im.H/2)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			s := im.At(2*x, 2*y) + im.At(2*x+1, 2*y) + im.At(2*x, 2*y+1) + im.At(2*x+1, 2*y+1)
			out.Set(x, y, s/4)
		}
	}
	return out
}

// TrackLKPyramid tracks (x, y) from prev into next coarse-to-fine: each
// level's displacement seeds the next finer level, extending the
// convergence basin by 2^(levels-1) over plain LK.
func TrackLKPyramid(prev, next *Pyramid, x, y float64, half, iters int) TrackResult {
	n := len(prev.Levels)
	if len(next.Levels) < n {
		n = len(next.Levels)
	}
	if n == 0 {
		return TrackResult{OK: false}
	}
	// Displacement estimate, in the coordinates of the level being solved.
	dx, dy := 0.0, 0.0
	var res TrackResult
	for l := n - 1; l >= 0; l-- {
		scale := float64(int(1) << l)
		lx, ly := x/scale, y/scale
		res = TrackLKGuess(prev.Levels[l], next.Levels[l], lx, ly, lx+dx, ly+dy, half, iters)
		dx = res.X - lx
		dy = res.Y - ly
		if l > 0 {
			dx *= 2
			dy *= 2
		}
	}
	return TrackResult{X: x + dx, Y: y + dy, OK: res.OK, Residual: res.Residual}
}
