package vision

import (
	"testing"
)

func renderedPair() (*Image, *Image) {
	intr := DefaultIntrinsics()
	s1 := Scene{Background: 5, BgDepth: 12, Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	s2 := Scene{Background: 5, BgDepth: 12, Boxes: []Box{{X: 0.08, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	return s1.Render(intr, 0), s2.Render(intr, 0)
}

func TestDescriptorSelfDistanceZero(t *testing.T) {
	im, _ := renderedPair()
	d := DescribeORB(im, 80, 60)
	if HammingDistance(d, d) != 0 {
		t.Fatal("self distance != 0")
	}
}

func TestDescriptorDistinguishesPoints(t *testing.T) {
	im, _ := renderedPair()
	a := DescribeORB(im, 60, 50)
	b := DescribeORB(im, 100, 70)
	if HammingDistance(a, b) < 40 {
		t.Fatalf("distinct textured points too similar: %d bits", HammingDistance(a, b))
	}
}

func TestHammingDistanceKnown(t *testing.T) {
	var a, b Descriptor256
	a[0] = 0xFF
	b[0] = 0x0F
	if HammingDistance(a, b) != 4 {
		t.Fatalf("distance = %d, want 4", HammingDistance(a, b))
	}
}

func TestMatchORBAcrossShift(t *testing.T) {
	im1, im2 := renderedPair()
	// 0.08 m at Z=5, f=120 → 1.92 px shift.
	c1, d1 := ExtractAndDescribe(im1, 30)
	c2, d2 := ExtractAndDescribe(im2, 30)
	if len(c1) < 8 || len(c2) < 8 {
		t.Fatalf("corners = %d/%d", len(c1), len(c2))
	}
	matches := MatchORB(d1, d2, 60)
	if len(matches) < 5 {
		t.Fatalf("matches = %d, want >= 5", len(matches))
	}
	// Box corners shift ~+1.9 px; background corners stay put. Either is
	// a correct correspondence — outliers would show large displacements.
	good := 0
	for _, m := range matches {
		dx := float64(c2[m.Train].X - c1[m.Query].X)
		dy := float64(c2[m.Train].Y - c1[m.Query].Y)
		if dx >= -1.5 && dx <= 4 && dy >= -2.5 && dy <= 2.5 {
			good++
		}
	}
	if good*3 < len(matches)*2 {
		t.Fatalf("only %d/%d matches geometrically consistent", good, len(matches))
	}
}

func TestMatchORBRatioTestRejectsAmbiguity(t *testing.T) {
	// Identical train descriptors: best == second best, ratio test fails.
	var q, t1, t2 Descriptor256
	q[0] = 0xAAAA
	matches := MatchORB([]Descriptor256{q}, []Descriptor256{t1, t2}, 256)
	if len(matches) != 0 {
		t.Fatalf("ambiguous match kept: %+v", matches)
	}
}

func TestMatchORBEmpty(t *testing.T) {
	if got := MatchORB(nil, nil, 60); len(got) != 0 {
		t.Fatal("empty match")
	}
}

func BenchmarkExtractAndDescribe(b *testing.B) {
	im, _ := renderedPair()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractAndDescribe(im, 60)
	}
}

func BenchmarkMatchORB(b *testing.B) {
	im1, im2 := renderedPair()
	_, d1 := ExtractAndDescribe(im1, 60)
	_, d2 := ExtractAndDescribe(im2, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchORB(d1, d2, 60)
	}
}
