package vision

import "testing"

// checkerCorner builds an image with a bright square on dark background:
// its four corners are canonical FAST responses.
func checkerCorner() *Image {
	im := NewImage(48, 48)
	for y := 16; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 1)
		}
	}
	return im
}

func TestFASTDetectsSquareCorners(t *testing.T) {
	im := checkerCorner()
	corners := DetectFAST(im, 0.3, 20)
	if len(corners) < 4 {
		t.Fatalf("corners = %d, want the square's 4", len(corners))
	}
	// Every corner must lie near one of the square's vertices.
	verts := [][2]int{{16, 16}, {31, 16}, {16, 31}, {31, 31}}
	for _, c := range corners {
		ok := false
		for _, v := range verts {
			dx, dy := c.X-v[0], c.Y-v[1]
			if dx*dx+dy*dy <= 8 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("corner at (%d,%d) is not a square vertex", c.X, c.Y)
		}
	}
	// Strongest first.
	for i := 1; i < len(corners); i++ {
		if corners[i].Score > corners[i-1].Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestFASTRejectsEdgesAndFlats(t *testing.T) {
	// A straight vertical edge has at most 8 contiguous same-sign circle
	// pixels: the 9-segment test must reject its interior.
	im := NewImage(48, 48)
	for y := 0; y < 48; y++ {
		for x := 24; x < 48; x++ {
			im.Set(x, y, 1)
		}
	}
	for _, c := range DetectFAST(im, 0.3, 50) {
		if c.Y > 8 && c.Y < 40 {
			t.Fatalf("edge interior fired at (%d,%d)", c.X, c.Y)
		}
	}
	if got := DetectFAST(NewImage(32, 32), 0.3, 10); len(got) != 0 {
		t.Fatalf("flat image corners = %d", len(got))
	}
	if DetectFAST(checkerCorner(), 0.3, 0) != nil {
		t.Fatal("maxCorners=0 should be nil")
	}
}

func TestFASTOnRenderedSceneAgreesWithShiTomasi(t *testing.T) {
	intr := DefaultIntrinsics()
	s := Scene{Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 2, H: 2, Texture: 4}}}
	im := s.Render(intr, 0)
	fast := DetectFAST(im, 0.08, 60)
	st := DetectCorners(im, 60, 0.02, 5)
	if len(fast) < 10 || len(st) < 10 {
		t.Fatalf("fast=%d shi-tomasi=%d", len(fast), len(st))
	}
	// The two detectors should fire in overlapping regions: most FAST
	// corners have a Shi-Tomasi corner within a few pixels.
	nearby := 0
	for _, f := range fast {
		for _, c := range st {
			dx, dy := f.X-c.X, f.Y-c.Y
			if dx*dx+dy*dy <= 36 {
				nearby++
				break
			}
		}
	}
	if nearby*2 < len(fast) {
		t.Fatalf("only %d/%d FAST corners near Shi-Tomasi corners", nearby, len(fast))
	}
}

func BenchmarkDetectFAST(b *testing.B) {
	intr := DefaultIntrinsics()
	s := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	im := s.Render(intr, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectFAST(im, 0.08, 100)
	}
}
