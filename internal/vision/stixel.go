package vision

import "math"

// Stixel is one column-wise obstacle segment extracted from a disparity
// map: the compact intermediate representation between dense stereo and
// object-level perception.
type Stixel struct {
	X      int     // image column
	Top    int     // first obstacle row
	Bottom int     // last obstacle row
	Depth  float64 // metric depth of the segment
}

// GroundModel is the expected disparity of the ground plane per image row:
// d(v) = A*(v - Horizon) for v below the horizon, 0 above. For a camera at
// height h with focal length f and baseline b, A = b/h.
type GroundModel struct {
	Horizon float64 // row of the horizon
	A       float64 // disparity slope per row below the horizon
}

// GroundModelFor builds the model from the rig geometry and camera height.
func GroundModelFor(rig StereoRig, cameraHeight float64) GroundModel {
	if cameraHeight <= 0 {
		cameraHeight = 1.2
	}
	return GroundModel{
		Horizon: rig.Intr.Cy,
		A:       rig.Baseline / cameraHeight,
	}
}

// Expected returns the ground disparity at image row v.
func (g GroundModel) Expected(v int) float64 {
	d := g.A * (float64(v) - g.Horizon)
	if d < 0 {
		return 0
	}
	return d
}

// ExtractStixels segments each column of the disparity map into obstacle
// runs: consecutive pixels whose disparity exceeds the ground model by
// margin and stays within coherence of the run's median. Runs shorter than
// minHeight rows are dropped.
func ExtractStixels(m *DisparityMap, rig StereoRig, g GroundModel, margin float32, coherence float32, minHeight int) []Stixel {
	var out []Stixel
	for x := 0; x < m.W; x++ {
		runStart := -1
		var runSum float64
		var runN int
		flush := func(end int) {
			if runStart >= 0 && end-runStart >= minHeight && runN > 0 {
				meanD := runSum / float64(runN)
				out = append(out, Stixel{
					X: x, Top: runStart, Bottom: end - 1,
					Depth: rig.DepthFromDisparity(meanD),
				})
			}
			runStart = -1
			runSum, runN = 0, 0
		}
		for y := 0; y < m.H; y++ {
			d := m.At(x, y)
			isObstacle := d >= 0 && float64(d) > g.Expected(y)+float64(margin)
			if isObstacle && runStart >= 0 && runN > 0 {
				// Depth coherence: a new surface starts a new run.
				if math.Abs(float64(d)-runSum/float64(runN)) > float64(coherence) {
					flush(y)
				}
			}
			if isObstacle {
				if runStart < 0 {
					runStart = y
				}
				runSum += float64(d)
				runN++
			} else {
				flush(y)
			}
		}
		flush(m.H)
	}
	return out
}

// StixelObject is a cluster of adjacent stixels at consistent depth — an
// object candidate with an image bounding box and a metric position.
type StixelObject struct {
	X0, X1, Top, Bottom int
	Depth               float64
	// LateralM is the metric lateral offset of the object center.
	LateralM float64
}

// GroupStixels merges column-adjacent stixels whose depths agree within
// depthTol meters into object candidates, dropping groups narrower than
// minWidth columns.
func GroupStixels(stixels []Stixel, rig StereoRig, depthTol float64, minWidth int) []StixelObject {
	var out []StixelObject
	used := make([]bool, len(stixels))
	for i := range stixels {
		if used[i] {
			continue
		}
		used[i] = true
		obj := StixelObject{
			X0: stixels[i].X, X1: stixels[i].X,
			Top: stixels[i].Top, Bottom: stixels[i].Bottom,
			Depth: stixels[i].Depth,
		}
		n := 1.0
		for j := i + 1; j < len(stixels); j++ {
			if used[j] {
				continue
			}
			s := stixels[j]
			if s.X <= obj.X1+2 && math.Abs(s.Depth-obj.Depth) <= depthTol {
				used[j] = true
				if s.X > obj.X1 {
					obj.X1 = s.X
				}
				if s.Top < obj.Top {
					obj.Top = s.Top
				}
				if s.Bottom > obj.Bottom {
					obj.Bottom = s.Bottom
				}
				obj.Depth = (obj.Depth*n + s.Depth) / (n + 1)
				n++
			}
		}
		if obj.X1-obj.X0+1 >= minWidth {
			cx := float64(obj.X0+obj.X1) / 2
			obj.LateralM = (cx - rig.Intr.Cx) / rig.Intr.Fx * obj.Depth
			out = append(out, obj)
		}
	}
	return out
}
