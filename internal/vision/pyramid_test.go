package vision

import (
	"math"
	"testing"
)

func TestPyramidShapes(t *testing.T) {
	im := NewImage(160, 120)
	p := NewPyramid(im, 3)
	if len(p.Levels) != 3 {
		t.Fatalf("levels = %d", len(p.Levels))
	}
	if p.Levels[1].W != 80 || p.Levels[2].W != 40 {
		t.Fatalf("widths = %d %d", p.Levels[1].W, p.Levels[2].W)
	}
	if p.Levels[0] != im {
		t.Fatal("level 0 must be the source image")
	}
}

func TestPyramidStopsAtSmallImages(t *testing.T) {
	im := NewImage(20, 20)
	p := NewPyramid(im, 5)
	if len(p.Levels) != 2 {
		t.Fatalf("levels = %d, want 2 (10x10 is below the floor)", len(p.Levels))
	}
	if q := NewPyramid(im, 0); len(q.Levels) != 1 {
		t.Fatal("levels<1 should clamp to 1")
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	im := NewImage(8, 8)
	var sum float32
	for i := range im.Pix {
		im.Pix[i] = float32(i) / 64
		sum += im.Pix[i]
	}
	d := downsample2(im)
	var dsum float32
	for _, v := range d.Pix {
		dsum += v
	}
	if math.Abs(float64(sum/64-dsum/16)) > 1e-6 {
		t.Fatalf("mean changed: %v vs %v", sum/64, dsum/16)
	}
}

func TestPyramidalLKRecoversLargeShift(t *testing.T) {
	intr := DefaultIntrinsics()
	// 0.3 m at Z=5 with f=120 → 7.2 px shift: beyond plain LK's basin
	// with a 4 px patch, within the pyramid's.
	s1 := Scene{Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	s2 := Scene{Boxes: []Box{{X: 0.3, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	im1 := s1.Render(intr, 0)
	im2 := s2.Render(intr, 0)
	p1 := NewPyramid(im1, 3)
	p2 := NewPyramid(im2, 3)

	corners := DetectCorners(im1, 15, 0.05, 8)
	if len(corners) == 0 {
		t.Fatal("no corners")
	}
	plainOK, pyrOK := 0, 0
	for _, c := range corners {
		if c.X < 40 || c.X > 115 || c.Y < 30 || c.Y > 90 {
			continue
		}
		plain := TrackLK(im1, im2, float64(c.X), float64(c.Y), 4, 25)
		pyr := TrackLKPyramid(p1, p2, float64(c.X), float64(c.Y), 4, 25)
		if plain.OK && math.Abs(plain.X-float64(c.X)-7.2) < 1 {
			plainOK++
		}
		if pyr.OK && math.Abs(pyr.X-float64(c.X)-7.2) < 1 {
			pyrOK++
		}
	}
	if pyrOK < 3 {
		t.Fatalf("pyramidal LK recovered only %d corners", pyrOK)
	}
	if pyrOK <= plainOK {
		t.Fatalf("pyramid (%d) should beat plain LK (%d) on a 7.2 px shift", pyrOK, plainOK)
	}
}

func TestPyramidalLKSmallShiftStillWorks(t *testing.T) {
	intr := DefaultIntrinsics()
	s1 := Scene{Boxes: []Box{{X: 0, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	s2 := Scene{Boxes: []Box{{X: 0.05, Y: 0, Z: 5, W: 3, H: 2.4, Texture: 4}}}
	p1 := NewPyramid(s1.Render(intr, 0), 3)
	p2 := NewPyramid(s2.Render(intr, 0), 3)
	r := TrackLKPyramid(p1, p2, 80, 60, 4, 25)
	if !r.OK {
		t.Fatalf("lost small shift: %+v", r)
	}
	if math.Abs(r.X-80-1.2) > 0.6 {
		t.Fatalf("x = %v, want ~81.2", r.X)
	}
}

func BenchmarkTrackLKPyramid(b *testing.B) {
	intr := DefaultIntrinsics()
	s1 := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	s2 := Scene{Background: 5, BgDepth: 10, Boxes: []Box{{X: 0.1, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	p1 := NewPyramid(s1.Render(intr, 0), 3)
	p2 := NewPyramid(s2.Render(intr, 0), 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrackLKPyramid(p1, p2, 80, 60, 4, 20)
	}
}
