package core

import (
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/vehicle"
	"sov/internal/world"
)

// CruiseScenario builds a long empty corridor for latency characterization
// runs — the vehicle cruises at the target speed with occasional pedestrian
// crossings far ahead to modulate scene complexity without forcing stops.
func CruiseScenario(seed int64) *world.World {
	rng := sim.NewRNG(seed)
	w := world.NewCorridor(2000, rng)
	// Distant, lane-clearing crossings every ~15 s keep the scene dynamic.
	for x := 150.0; x < 1900; x += 90 {
		t := time.Duration(x/5.6*0.7) * time.Second
		w.AddCutInPedestrian(x, t, 2.0)
	}
	return w
}

// DynamicTrafficScenario builds the phase-shifting corridor behind the
// online-scheduler studies: calm cruising, then a dense pedestrian block
// (crossings every 8 m saturate the scene-complexity model, inflating
// detection and forcing feature-extraction keyframes nearly every frame),
// then calm again. The task mix — detection-heavy with stall-amplified
// tails during the heavy block, localization-light either side — is what
// a static mapping cannot track and the scheduler can.
func DynamicTrafficScenario(seed int64) *world.World {
	rng := sim.NewRNG(seed)
	w := world.NewCorridor(1600, rng)
	cross := func(x float64) {
		t := time.Duration(x/5.6*0.7) * time.Second
		w.AddCutInPedestrian(x, t, 2.0)
	}
	for x := 150.0; x < 500; x += 90 {
		cross(x) // calm approach
	}
	for x := 500.0; x < 1100; x += 8 {
		cross(x) // heavy block: complexity saturates
	}
	for x := 1100.0; x < 1500; x += 90 {
		cross(x) // calm again
	}
	return w
}

// CutInScenario places a pedestrian that steps into the lane when the
// vehicle is exactly triggerDistance meters away (at the configured speed),
// the canonical obstacle-avoidance stress test of Fig. 3a.
func CutInScenario(speed, triggerDistance float64) (*world.World, *world.Obstacle) {
	rng := sim.NewRNG(7)
	w := world.NewCorridor(400, rng)
	// The pedestrian starts just off-lane and steps to the centerline
	// quickly once triggered. The vehicle starts at x=0 at `speed`.
	pedX := 120.0
	triggerTime := time.Duration((pedX - triggerDistance) / speed * float64(time.Second))
	ped := w.AddCutInPedestrian(pedX, triggerTime, 6.0) // fast step-in: ~0.5 s to centerline
	return w, ped
}

// IntersectionScenario builds an unsignalized crossing: a vehicle-class
// obstacle crosses the corridor perpendicular to travel, timed to conflict
// with the ego vehicle unless it yields. crossSpeed sets how fast the
// crosser moves (m/s).
func IntersectionScenario(egoSpeed, crossSpeed float64) *world.World {
	rng := sim.NewRNG(17)
	w := world.NewCorridor(400, rng)
	const conflictX = 110.0
	// The crosser starts 30 m to the side and is timed so both reach the
	// conflict point together if neither yields.
	egoETA := conflictX / egoSpeed
	startOffset := 30.0
	crosserStart := time.Duration((egoETA - startOffset/crossSpeed) * float64(time.Second))
	if crosserStart < 0 {
		crosserStart = 0
	}
	w.Obstacles = append(w.Obstacles, &world.Obstacle{
		ID: len(w.Obstacles) + 1, Kind: world.KindVehicle, Radius: 1.0, Height: 1.6,
		Traj: world.LinearTrajectory(
			mathx.Vec2{X: conflictX, Y: -startOffset},
			mathx.Vec2{Y: crossSpeed}, crosserStart),
	})
	return w
}

// CutInOutcome is the result of one cut-in trial.
type CutInOutcome struct {
	Stopped       bool
	Collided      bool
	MinClearanceM float64
	Reactive      bool // the reactive path fired
}

// RunCutIn executes a cut-in trial with the given config and trigger
// distance and reports the outcome.
func RunCutIn(cfg Config, triggerDistance float64, duration time.Duration) CutInOutcome {
	w, ped := CutInScenario(cfg.TargetSpeed, triggerDistance)
	s := New(cfg, w)
	rep := s.Run(duration)
	_ = ped
	return CutInOutcome{
		Stopped:       s.Vehicle().State().Speed < 0.05,
		Collided:      rep.Collisions > 0,
		MinClearanceM: rep.MinClearance,
		Reactive:      rep.ReactiveEngagements > 0,
	}
}

// RunSuddenObstacle executes the Eq. 1 worst case: an obstacle materializes
// directly in the lane when the vehicle is exactly triggerDistance meters
// away. Unlike a crossing pedestrian (which may clear the path on its own),
// the outcome here is decided purely by distance vs. reaction latency:
// inside the braking floor a collision is physically guaranteed.
func RunSuddenObstacle(cfg Config, triggerDistance float64, duration time.Duration) CutInOutcome {
	const obsX = 120.0
	// triggerDistance is measured to the obstacle's near surface.
	crossX := obsX - world.SuddenObstacleRadius - triggerDistance
	// Pass 1: probe when this exact configuration's vehicle crosses the
	// trigger position (heavier variants lag the nominal schedule).
	probe := New(cfg, world.NewCorridor(400, sim.NewRNG(7)))
	triggerTime := time.Duration(-1)
	probe.OnPhysicsStep = func(now time.Duration, st vehicle.State) bool {
		if st.Pos.X >= crossX {
			triggerTime = now
			return true
		}
		return false
	}
	probe.Run(duration)
	if triggerTime < 0 {
		triggerTime = time.Duration(crossX / cfg.TargetSpeed * float64(time.Second))
	}

	// Pass 2: identical run with the obstacle materializing at that time.
	w := world.NewCorridor(400, sim.NewRNG(7))
	w.AddSuddenObstacle(mathx.Vec2{X: obsX}, triggerTime)
	s := New(cfg, w)
	rep := s.Run(duration)
	return CutInOutcome{
		Stopped:       s.Vehicle().State().Speed < 0.05,
		Collided:      rep.Collisions > 0,
		MinClearanceM: rep.MinClearance,
		Reactive:      rep.ReactiveEngagements > 0,
	}
}
