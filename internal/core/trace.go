package core

import (
	"bufio"
	"encoding/json"
	"io"
	"math"

	"sov/internal/stats"
)

// TraceRecord is one control cycle's telemetry — the "vehicle statistics"
// stream the deployed fleet condenses and uploads (Fig. 1). Recorded as
// JSON lines so field runs can be archived and re-analyzed offline.
type TraceRecord struct {
	Cycle          int     `json:"cycle"`
	TimeMs         float64 `json:"t_ms"`
	PosX           float64 `json:"x"`
	PosY           float64 `json:"y"`
	Speed          float64 `json:"v"`
	SensingMs      float64 `json:"sensing_ms"`
	PerceptionMs   float64 `json:"perception_ms"`
	PlanningMs     float64 `json:"planning_ms"`
	TcompMs        float64 `json:"tcomp_ms"`
	Complexity     float64 `json:"complexity"`
	Objects        int     `json:"objects"`
	Blocked        bool    `json:"blocked,omitempty"`
	ReactiveActive bool    `json:"reactive,omitempty"`
	// InFlight counts commands captured earlier but not yet delivered at
	// this cycle's capture instant — the virtual-time pipeline depth.
	InFlight int `json:"inflight"`
}

// Tracer serializes trace records to a writer.
type Tracer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewTracer wraps a writer.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// Record appends one line. The marshaled bytes and the terminating newline
// are written separately: appending '\n' to json.Marshal's exactly-sized
// result would reallocate the slice on every record.
func (t *Tracer) Record(r TraceRecord) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Err returns the first error the tracer hit, without flushing.
func (t *Tracer) Err() error { return t.err }

// Flush pushes buffered records to the underlying writer and returns the
// tracer's first error (including any flush error), with the same semantics
// Close reports.
func (t *Tracer) Flush() error {
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes and reports the record count and first error.
func (t *Tracer) Close() (int, error) {
	return t.n, t.Flush()
}

// AttachTracer streams every control cycle of subsequent runs to the
// tracer. Call before Run.
func (s *SoV) AttachTracer(tr *Tracer) { s.tracer = tr }

// TraceSummary re-analyzes an archived trace: the offline half of the
// fleet telemetry loop.
type TraceSummary struct {
	Cycles        int
	TcompMs       stats.Summary
	InFlight      stats.Summary
	DistanceM     float64
	BlockedCycles int
	// MalformedLines counts lines that failed to parse and were skipped —
	// a truncated tail from a crashed run must not hide the rest of the
	// archive. Callers that need strictness can reject summaries with a
	// non-zero count.
	MalformedLines int
}

// SummarizeTrace reads a JSONL trace and recomputes the run's headline
// statistics. Malformed lines are skipped and counted in MalformedLines
// rather than aborting the analysis; an empty trace yields a zero summary
// and no error.
func SummarizeTrace(r io.Reader) (TraceSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	tcomp := stats.NewSample()
	inflight := stats.NewSample()
	var out TraceSummary
	var lastX, lastY float64
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			out.MalformedLines++
			continue
		}
		out.Cycles++
		tcomp.Observe(rec.TcompMs)
		inflight.Observe(float64(rec.InFlight))
		if rec.Blocked {
			out.BlockedCycles++
		}
		if !first {
			out.DistanceM += math.Hypot(rec.PosX-lastX, rec.PosY-lastY)
		}
		lastX, lastY = rec.PosX, rec.PosY
		first = false
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	out.TcompMs = tcomp.Summarize()
	out.InFlight = inflight.Summarize()
	return out, nil
}

// recordTrace is called from the plan stage when a tracer is attached. It
// reads only frame snapshots (captured on the engine thread), so it is safe
// on the pipelined plan goroutine and produces byte-identical lines in both
// modes.
func (s *SoV) recordTrace(fr *cycleFrame) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(TraceRecord{
		Cycle:          fr.cycle,
		TimeMs:         fr.t0.Seconds() * 1000,
		PosX:           fr.st.Pos.X,
		PosY:           fr.st.Pos.Y,
		Speed:          fr.st.Speed,
		SensingMs:      ms(fr.d.Sensing),
		PerceptionMs:   ms(fr.d.Perception),
		PlanningMs:     ms(fr.d.Planning),
		TcompMs:        ms(fr.d.Tcomp),
		Complexity:     fr.complexity,
		Objects:        fr.objects,
		Blocked:        fr.blocked,
		ReactiveActive: fr.overrideActive,
		InFlight:       fr.inflight,
	})
}
