package core

import (
	"fmt"
	"math"
	"time"

	"sov/internal/canbus"
	"sov/internal/detect"
	"sov/internal/fusion"
	"sov/internal/mathx"
	"sov/internal/models"
	"sov/internal/parallel"
	"sov/internal/planning"
	"sov/internal/rpr"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/track"
	"sov/internal/vehicle"
	"sov/internal/world"
)

// planner abstracts the two planning backends.
type planner interface {
	Plan(planning.Input) planning.Plan
}

// SoV is the assembled on-vehicle system.
type SoV struct {
	cfg    Config
	world  *world.World
	route  world.Route
	lane   world.Lane
	engine *sim.Engine
	rng    *sim.RNG

	veh      *vehicle.Vehicle
	ecu      *vehicle.ECU
	bus      *canbus.Bus
	det      *detect.Detector
	radarRig *sensors.RadarRig
	sonarRig *sensors.SonarRig
	tracker  *track.RadarTracker
	plan     planner
	lat      *latencyModel
	rprMgr   *rpr.Manager

	battery *vehicle.Battery
	tracer  *Tracer

	report Report
	cycle  int
	seq    uint16

	// OnPhysicsStep, when set, observes each physics step; returning true
	// stops the run (used by scenario probes).
	OnPhysicsStep func(now time.Duration, st vehicle.State) (stop bool)
}

// New assembles an SoV over a world. The vehicle starts at the head of the
// world's first lane (or the origin when the world has no lanes).
func New(cfg Config, w *world.World) *SoV {
	rng := sim.NewRNG(cfg.Seed)
	lane := world.Lane{Start: mathx.Vec2{}, End: mathx.Vec2{X: 1000}, Width: 3}
	route := world.Route{Lanes: []world.Lane{lane}}
	if len(w.Lanes) > 0 {
		lane = w.Lanes[0]
		route = world.Route{Lanes: w.Lanes}
	}
	veh := vehicle.New(cfg.Vehicle, vehicle.State{
		Pos:     lane.Start,
		Heading: lane.Direction().Angle(),
		Speed:   cfg.TargetSpeed,
	})
	s := &SoV{
		cfg:      cfg,
		world:    w,
		route:    route,
		lane:     lane,
		engine:   sim.NewEngine(),
		rng:      rng,
		veh:      veh,
		ecu:      vehicle.NewECU(veh),
		bus:      canbus.NewBus(),
		det:      detect.New(cfg.Detector, w, rng.Fork()),
		radarRig: sensors.NewRadarRig(w, rng.Fork()),
		sonarRig: sensors.NewSonarRig(w, rng.Fork()),
		tracker:  track.NewRadarTracker(),
		lat:      newLatencyModel(cfg, rng.Fork()),
	}
	if cfg.EMPlanner {
		s.plan = planning.NewEMPlanner(planning.DefaultEMConfig())
	} else {
		s.plan = planning.NewMPC(planning.DefaultMPCConfig())
	}
	if cfg.RPREnabled {
		s.rprMgr = rpr.NewManager()
	}
	s.battery = vehicle.NewBattery(models.DefaultEnergyModel().CapacityKWh)
	s.report.init()
	return s
}

// Battery exposes the pack for long-run inspection.
func (s *SoV) Battery() *vehicle.Battery { return s.battery }

// Vehicle exposes the vehicle for scenario assertions.
func (s *SoV) Vehicle() *vehicle.Vehicle { return s.veh }

// pose returns the vehicle's current pose.
func (s *SoV) pose() world.Pose {
	st := s.veh.State()
	return world.Pose{Pos: st.Pos, Heading: st.Heading}
}

// Run executes the simulation for the given duration and returns the
// accumulated report.
func (s *SoV) Run(duration time.Duration) *Report {
	ctrlPeriod := time.Duration(float64(time.Second) / s.cfg.ControlRate)
	physPeriod := time.Duration(float64(time.Second) / s.cfg.PhysicsRate)
	reactiveRate := s.cfg.ReactiveRate
	if reactiveRate <= 0 {
		reactiveRate = s.cfg.RadarRate
	}
	reactivePeriod := time.Duration(float64(time.Second) / reactiveRate)

	s.engine.Every(physPeriod, "physics", func() { s.physicsStep(physPeriod) })
	s.engine.Every(ctrlPeriod, "control", s.controlCycle)
	if s.cfg.ReactivePath {
		s.engine.Every(reactivePeriod, "reactive", s.reactiveCheck)
	}
	s.engine.Run(duration)
	s.report.finish(duration, s)
	return &s.report
}

// physicsStep advances the vehicle and records safety metrics.
func (s *SoV) physicsStep(dt time.Duration) {
	// Drain the pack at Pv + PAD; an empty pack ends the drive.
	load := s.cfg.Vehicle.BasePowerKW + models.DefaultPowerBudget().TotalKW()
	if !s.battery.Drain(load, dt) {
		s.engine.Stop()
		return
	}
	st := s.veh.Step(dt)
	now := s.engine.Now()
	for _, o := range s.world.Obstacles {
		pos, _ := o.At(now)
		clear := st.Pos.DistTo(pos) - o.Radius
		if clear < s.report.MinClearance {
			s.report.MinClearance = clear
		}
		if clear < 0 && !s.report.collided[o.ID] {
			s.report.collided[o.ID] = true
			s.report.Collisions++
		}
	}
	if s.ecu.OverrideActive() {
		s.report.reactiveSteps++
	}
	off := s.lane.LateralOffset(st.Pos)
	s.report.lateralSumSq += off * off
	s.report.physSteps++
	if s.OnPhysicsStep != nil && s.OnPhysicsStep(now, st) {
		s.engine.Stop()
	}
}

// controlCycle runs one proactive-path iteration: capture, perceive, plan,
// and schedule the command's delivery after the drawn computing latency.
func (s *SoV) controlCycle() {
	s.cycle++
	t0 := s.engine.Now()
	pose := s.pose()
	st := s.veh.State()

	// Route following: hand over to the next leg as the vehicle
	// progresses (the annotated lane map's job). The lookahead anchor
	// starts the corner handover while the vehicle still has the speed to
	// steer through it.
	lookahead := mathx.Clamp(st.Speed*1.5, 2, 6)
	anchor := pose.Pos.Add(mathx.Vec2{X: math.Cos(pose.Heading), Y: math.Sin(pose.Heading)}.Scale(lookahead))
	s.lane = s.route.Lanes[s.route.ActiveLane(anchor)]

	complexity := s.world.SceneComplexity(pose, t0)
	keyframe := s.cfg.KeyframeEvery > 0 && s.cycle%s.cfg.KeyframeEvery == 0
	radarStable := true
	if p := s.radarRig.Units[0].Config.DropoutProb; p > 0 {
		radarStable = !s.rng.Bernoulli(p)
	}

	d := s.lat.draw(complexity, keyframe, radarStable)
	// RPR swap cost folds into localization when the front-end variant
	// changes (Sec. V-B3: < 3 ms).
	if s.rprMgr != nil {
		bs := rpr.BitstreamFeatureTrack
		if keyframe {
			bs = rpr.BitstreamFeatureExtract
		}
		if res := s.rprMgr.Require(bs); res.Bytes > 0 {
			d.Localization += res.Duration
			if d.Localization > d.Perception {
				d.Perception = d.Localization
			}
			d.Tcomp = d.Sensing + d.Perception + d.Planning
		}
	}
	s.report.observe(d)

	// Pose-estimate noise is drawn before the branch dispatch so the
	// coordinator's RNG stream keeps its serial order (dropout Bernoulli,
	// then pose noise) regardless of worker count.
	locStd := s.cfg.LocalizationErrorStd
	if !s.cfg.HardwareSync {
		locStd *= s.cfg.SyncErrorFactor
	}
	var noiseX, noiseY, noiseH float64
	if locStd > 0 {
		noiseX = s.rng.Normal(0, locStd)
		noiseY = s.rng.Normal(0, locStd)
		noiseH = s.rng.Normal(0, locStd/2)
	}

	// The three perception branches — camera detection, radar scan +
	// trajectory tracking, and localization (estimated-pose composition) —
	// run concurrently, mirroring the per-sensor pipelines of the SoV's
	// computing stack. They are independent by construction: the detector
	// and radar rig own forked RNG streams, the tracker is deterministic in
	// its inputs, and the world is read-only during a cycle, so every
	// branch output is byte-identical to a serial run.
	var dets []detect.Object
	var tracks []track.RadarTrack
	var estPose world.Pose
	parallel.Do(
		func() { dets = s.det.Detect(t0, pose) },
		func() {
			var returns []sensors.RadarReturn
			for _, rr := range s.radarRig.ScanAll(t0, pose) {
				returns = append(returns, sensors.RadarReturn{
					ObstacleID: rr.ObstacleID,
					Range:      rr.VehiclePos.Norm(),
					Bearing:    rr.VehicleBearing,
					RadialVel:  rr.RadialVel,
					Time:       rr.Time,
				})
			}
			tracks = s.tracker.Observe(t0, returns)
		},
		func() {
			// The planner consumes the *estimated* pose. With the hardware
			// synchronizer and map-mode VIO the error is a few centimeters;
			// without synchronization it inflates per the Fig. 11 studies,
			// and the lane-keeping loop feels it.
			estPose = pose
			if locStd > 0 {
				estPose.Pos = estPose.Pos.Add(mathx.Vec2{X: noiseX, Y: noiseY})
				estPose.Heading = mathx.WrapAngle(estPose.Heading + noiseH)
			}
		},
	)
	var fused []fusion.FusedObject
	if s.cfg.RadarTracking {
		matches, ud, _ := fusion.SpatialSync(fusion.DefaultSpatialSyncConfig(), dets, tracks)
		fused = fusion.FuseAll(matches, ud)
	} else {
		for _, dt := range dets {
			fused = append(fused, fusion.FusedObject{Object: dt, Velocity: dt.Vel})
		}
	}

	in := s.planningInput(estPose, st, fused)
	p := s.plan.Plan(in)
	if p.Blocked {
		s.report.BlockedCycles++
	}
	s.recordTrace(d, complexity, len(fused), p.Blocked)

	// The command is computed Tcomp after capture, then crosses the CAN
	// bus (Tdata) and takes effect after Tmech inside the vehicle model.
	s.seq++
	cmd := p.Cmd
	cmd.Seq = s.seq
	frame, err := canbus.EncodeCommand(canbus.IDControlCommand, cmd)
	if err != nil {
		s.report.EncodeErrors++
		return
	}
	tdata := s.bus.CommandLatency()
	s.report.observeE2E(d.Tcomp + tdata + s.cfg.Vehicle.MechLatency)
	s.engine.Schedule(d.Tcomp+tdata, "command-delivery", func() {
		if err := s.ecu.Receive(frame); err == nil {
			s.report.CommandsDelivered++
		}
	})
}

// planningInput converts fused perception output into lane coordinates.
func (s *SoV) planningInput(pose world.Pose, st vehicle.State, fused []fusion.FusedObject) planning.Input {
	laneDir := s.lane.Direction()
	laneAngle := laneDir.Angle()
	in := planning.Input{
		Speed:       st.Speed,
		LaneOffset:  s.lane.LateralOffset(pose.Pos),
		HeadingErr:  mathx.WrapAngle(pose.Heading - laneAngle),
		TargetSpeed: s.cfg.TargetSpeed,
		LaneWidth:   s.lane.Width,
	}
	for _, f := range fused {
		worldPos := detect.ToWorld(pose, f.Object.Pos)
		rel := worldPos.Sub(pose.Pos)
		sAlong := rel.Dot(laneDir)
		if sAlong < -2 {
			continue // behind
		}
		velWorld := f.Velocity
		radius := f.Object.Radius
		if radius < 0.3 {
			radius = 0.3
		}
		in.Obstacles = append(in.Obstacles, planning.Obstacle{
			S:      sAlong,
			D:      s.lane.LateralOffset(worldPos),
			VS:     velWorld.Dot(laneDir),
			VD:     velWorld.Dot(mathx.Vec2{X: -laneDir.Y, Y: laneDir.X}),
			Radius: radius,
		})
	}
	return in
}

// reactiveCheck is the last line of defense: radar (and sonar) distances go
// straight to the ECU, overriding the proactive path when an object is
// inside the reaction envelope (Sec. IV).
func (s *SoV) reactiveCheck() {
	now := s.engine.Now()
	pose := s.pose()
	st := s.veh.State()
	if st.Speed < 0.05 {
		return
	}
	// Nearest object in the narrow forward cone, from the radar rig's
	// forward sector backed by the sonar ring.
	nearest := math.Inf(1)
	if ret, ok := s.radarRig.NearestInSector(now, pose, 0, 0.35); ok {
		nearest = ret.VehiclePos.Norm()
	}
	if d, ok := s.sonarRig.NearestInSector(now, pose, 0, 0.5); ok && d < nearest {
		nearest = d
	}
	if math.IsInf(nearest, 1) {
		return
	}
	// Trigger envelope: braking distance + distance covered during the
	// reactive latency + mechanical latency + the obstacle's footprint
	// margin.
	reaction := (s.cfg.ReactiveLatency + s.cfg.Vehicle.MechLatency).Seconds()
	trigger := s.veh.StopDistanceFrom(st.Speed) + st.Speed*reaction + s.cfg.ReactiveMarginM + 0.3
	if nearest > trigger {
		return
	}
	s.report.ReactiveEngagements++
	frame, err := canbus.EncodeCommand(canbus.IDReactiveOverride, canbus.Command{EStop: true, Seq: s.seq})
	if err != nil {
		s.report.EncodeErrors++
		return
	}
	s.engine.Schedule(s.cfg.ReactiveLatency, "reactive-override", func() {
		_ = s.ecu.Receive(frame)
	})
}

// String summarizes the SoV state.
func (s *SoV) String() string {
	st := s.veh.State()
	return fmt.Sprintf("sov: t=%v pos=(%.1f,%.1f) v=%.1f cycles=%d",
		s.engine.Now(), st.Pos.X, st.Pos.Y, st.Speed, s.cycle)
}
