package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"sov/internal/canbus"
	"sov/internal/detect"
	"sov/internal/mathx"
	"sov/internal/models"
	"sov/internal/obs"
	"sov/internal/parallel"
	"sov/internal/pipeline"
	"sov/internal/planning"
	"sov/internal/rpr"
	"sov/internal/sched"
	"sov/internal/sensors"
	"sov/internal/sim"
	"sov/internal/track"
	"sov/internal/vehicle"
	"sov/internal/world"
)

// planner abstracts the two planning backends.
type planner interface {
	Plan(planning.Input) planning.Plan
}

// SoV is the assembled on-vehicle system.
type SoV struct {
	cfg    Config
	world  *world.World
	route  world.Route
	lane   world.Lane
	engine *sim.Engine
	rng    *sim.RNG

	veh      *vehicle.Vehicle
	ecu      *vehicle.ECU
	bus      *canbus.Bus
	det      *detect.Detector
	radarRig *sensors.RadarRig
	sonarRig *sensors.SonarRig
	tracker  *track.RadarTracker
	plan     planner
	lat      *latencyModel
	rprMgr   *rpr.Manager
	sched    *sched.Scheduler

	battery *vehicle.Battery
	tracer  *Tracer

	// Telemetry attachments (nil unless Attach* was called before Run).
	obsM  *coreMetrics
	spans *obs.SpanWriter
	box   *obs.FlightRecorder

	report  Report
	cycle   int
	seq     uint16
	started bool

	// Staged control-loop state: the recycled serial frame, the pipelined
	// runtime (nil in serial mode), the in-flight command deadlines behind
	// the virtual-time pipeline-depth metric, and the recycled delivery
	// slots that keep steady-state scheduling allocation-free.
	serialFrame *cycleFrame
	pipe        *pipeline.Runtime[cycleFrame]
	framePool   *pipeline.FramePool[cycleFrame]
	outstanding []time.Duration
	freeSlots   []*deliverySlot

	// OnPhysicsStep, when set, observes each physics step; returning true
	// stops the run (used by scenario probes).
	OnPhysicsStep func(now time.Duration, st vehicle.State) (stop bool)
}

// New assembles an SoV over a world. The vehicle starts at the head of the
// world's first lane (or the origin when the world has no lanes).
func New(cfg Config, w *world.World) *SoV {
	rng := sim.NewRNG(cfg.Seed)
	lane := world.Lane{Start: mathx.Vec2{}, End: mathx.Vec2{X: 1000}, Width: 3}
	route := world.Route{Lanes: []world.Lane{lane}}
	if len(w.Lanes) > 0 {
		lane = w.Lanes[0]
		route = world.Route{Lanes: w.Lanes}
	}
	// Fleet runs stagger vehicles along a shared region loop: walk the
	// route to the requested centerline offset (wrapping around closed
	// routes) and start there instead of at the first lane's head.
	startPos, startHeading := lane.Start, lane.Direction().Angle()
	if cfg.StartOffsetM > 0 && route.TotalLength() > 0 {
		off := math.Mod(cfg.StartOffsetM, route.TotalLength())
		for _, l := range route.Lanes {
			if off <= l.Length() {
				startPos = l.CenterAt(off)
				startHeading = l.Direction().Angle()
				lane = l
				break
			}
			off -= l.Length()
		}
	}
	veh := vehicle.New(cfg.Vehicle, vehicle.State{
		Pos:     startPos,
		Heading: startHeading,
		Speed:   cfg.TargetSpeed,
	})
	s := &SoV{
		cfg:      cfg,
		world:    w,
		route:    route,
		lane:     lane,
		engine:   sim.NewEngine(),
		rng:      rng,
		veh:      veh,
		ecu:      vehicle.NewECU(veh),
		bus:      canbus.NewBus(),
		det:      detect.New(cfg.Detector, w, rng.Fork()),
		radarRig: sensors.NewRadarRig(w, rng.Fork()),
		sonarRig: sensors.NewSonarRig(w, rng.Fork()),
		tracker:  track.NewRadarTracker(),
		lat:      newLatencyModel(cfg, rng.Fork()),
	}
	if cfg.EMPlanner {
		s.plan = planning.NewEMPlanner(planning.DefaultEMConfig())
	} else {
		s.plan = planning.NewMPC(planning.DefaultMPCConfig())
	}
	if cfg.RPREnabled {
		s.rprMgr = rpr.NewManager()
	}
	s.battery = vehicle.NewBattery(models.DefaultEnergyModel().CapacityKWh)
	if cfg.InitialSoC > 0 {
		s.battery.SoC = cfg.InitialSoC
	}
	if cfg.Sched {
		sc := sched.DefaultConfig()
		sc.ControlRate = cfg.ControlRate
		if cfg.Cameras > 1 {
			sc.Cameras = cfg.Cameras
		}
		if cfg.AmbientC > 0 {
			sc.AmbientC = cfg.AmbientC
		}
		sc.Static = cfg.SchedStatic
		// -quant builds the perception stack on the int8 kernels, so the
		// scheduler may not float the operating point back out from under it.
		sc.QuantFloor = cfg.Quant
		if cfg.SchedMapping != "" {
			m, err := sched.ParseMapping(cfg.SchedMapping)
			if err != nil {
				panic(err)
			}
			sc.Mapping = m
		}
		sch, err := sched.New(sc)
		if err != nil {
			panic(err)
		}
		s.sched = sch
	}
	s.serialFrame = newCycleFrame()
	s.report.init(cfg.LeanReport)
	s.report.QuantizedPerception = cfg.Quant
	return s
}

// Battery exposes the pack for long-run inspection.
func (s *SoV) Battery() *vehicle.Battery { return s.battery }

// SchedBatching reports whether batched multi-image inference is currently
// allowed: always without the scheduler (the deployed GPU mapping batches),
// otherwise only while scene understanding sits on a batching-capable
// processor. The fleet substrate consults it before cross-vehicle batching.
func (s *SoV) SchedBatching() bool {
	if s.sched == nil {
		return true
	}
	return s.sched.BatchCapable()
}

// Cycles returns the number of control cycles captured so far (live — the
// fleet substrate reads it between epochs without finishing the run).
func (s *SoV) Cycles() int { return s.cycle }

// CollisionCount returns the obstacle contacts recorded so far.
func (s *SoV) CollisionCount() int { return s.report.Collisions }

// ReactiveCount returns the reactive-path engagements recorded so far
// (live — fleet telemetry reads it between epochs).
func (s *SoV) ReactiveCount() int { return s.report.ReactiveEngagements }

// Vehicle exposes the vehicle for scenario assertions.
func (s *SoV) Vehicle() *vehicle.Vehicle { return s.veh }

// pose returns the vehicle's current pose.
func (s *SoV) pose() world.Pose {
	st := s.veh.State()
	return world.Pose{Pos: st.Pos, Heading: st.Heading}
}

// Run executes the simulation for the given duration and returns the
// accumulated report. It is Start + AdvanceTo(duration) + Finish — the
// fleet substrate calls the three phases itself to advance many vehicles
// in lockstep epochs.
func (s *SoV) Run(duration time.Duration) *Report {
	s.Start()
	s.AdvanceTo(duration)
	return s.Finish(duration)
}

// Start arms the control loop: it resolves the serial/pipelined execution
// mode and schedules the periodic physics, control, and reactive events.
// Idempotent — a second Start (or a Run after a Start) is a no-op, so an
// epoch driver can Start once and AdvanceTo repeatedly.
func (s *SoV) Start() {
	if s.started {
		return
	}
	s.started = true
	ctrlPeriod := time.Duration(float64(time.Second) / s.cfg.ControlRate)
	physPeriod := time.Duration(float64(time.Second) / s.cfg.PhysicsRate)
	reactiveRate := s.cfg.ReactiveRate
	if reactiveRate <= 0 {
		reactiveRate = s.cfg.RadarRate
	}
	reactivePeriod := time.Duration(float64(time.Second) / reactiveRate)

	// The staged dataflow only pays off when stage goroutines can actually
	// overlap; on a single-CPU host it adds handoff overhead over the
	// serial loop (virtual-time results are byte-identical either way), so
	// fall back unless explicitly forced.
	switch {
	case !s.cfg.Pipeline:
		s.report.PipelineDecision = "serial"
	case runtime.GOMAXPROCS(0) > 1 || s.cfg.PipelineForce:
		s.startPipeline()
		s.report.PipelineDecision = "pipelined"
	default:
		s.report.PipelineDecision = "serial (pipeline fallback: GOMAXPROCS=1)"
	}
	s.engine.Every(physPeriod, "physics", func() { s.physicsStep(physPeriod) })
	s.engine.Every(ctrlPeriod, "control", s.controlCycle)
	if s.cfg.ReactivePath {
		s.engine.Every(reactivePeriod, "reactive", s.reactiveCheck)
	}
	if s.obsM != nil {
		s.obsM.par0 = parallel.CounterSnapshot()
	}
}

// AdvanceTo processes events up to the absolute virtual time t. Repeated
// calls with increasing horizons advance the run incrementally; each call
// leaves the clock exactly at t (unless the engine stopped — battery
// exhaustion or a scenario probe — which Halted reports).
func (s *SoV) AdvanceTo(t time.Duration) {
	s.engine.Run(t)
}

// Now returns the vehicle's current virtual time.
func (s *SoV) Now() time.Duration { return s.engine.Now() }

// Halted reports whether the engine stopped before its last horizon: the
// periodic events are gone, so further AdvanceTo calls cannot revive the
// vehicle.
func (s *SoV) Halted() bool { return s.engine.Stopped() }

// Finish closes out an incrementally advanced run: it drains the pipelined
// runtime (if armed), finalizes the report over the given total duration,
// and publishes the run-summary metrics.
func (s *SoV) Finish(duration time.Duration) *Report {
	s.stopPipeline()
	if s.sched != nil {
		st := s.sched.Snapshot()
		s.report.Sched = &st
	}
	s.report.finish(duration, s)
	s.publishRunMetrics()
	return &s.report
}

// physicsStep advances the vehicle and records safety metrics.
func (s *SoV) physicsStep(dt time.Duration) {
	// Drain the pack at Pv + PAD; an empty pack ends the drive.
	load := s.cfg.Vehicle.BasePowerKW + models.DefaultPowerBudget().TotalKW()
	if !s.battery.Drain(load, dt) {
		s.engine.Stop()
		return
	}
	st := s.veh.Step(dt)
	now := s.engine.Now()
	for _, o := range s.world.Obstacles {
		pos, _ := o.At(now)
		clear := st.Pos.DistTo(pos) - o.Radius
		if clear < s.report.MinClearance {
			s.report.MinClearance = clear
		}
		if clear < 0 && !s.report.collided[o.ID] {
			s.report.collided[o.ID] = true
			s.report.Collisions++
			if s.obsM != nil {
				s.obsM.collisions.Inc()
			}
			if s.box != nil {
				s.box.Trigger(obs.TriggerCollision, ms(now))
			}
		}
	}
	if s.ecu.OverrideActive() {
		s.report.reactiveSteps++
	}
	off := s.lane.LateralOffset(st.Pos)
	s.report.lateralSumSq += off * off
	s.report.physSteps++
	if s.OnPhysicsStep != nil && s.OnPhysicsStep(now, st) {
		s.engine.Stop()
	}
}

// controlCycle runs one proactive-path iteration: capture, perceive, plan,
// and schedule the command's delivery after the drawn computing latency.
// In pipelined mode capture runs here and the frame is handed to the stage
// goroutines; the delivery event synchronizes on the frame's completion.
func (s *SoV) controlCycle() {
	if s.pipe != nil {
		s.pipedCycle()
		return
	}
	fr := s.serialFrame
	s.captureInto(fr)
	s.perceiveFrame(fr)
	s.planFrame(fr)
	if !fr.encodeOK {
		return
	}
	// The command is computed Tcomp after capture, then crosses the CAN
	// bus (Tdata) and takes effect after Tmech inside the vehicle model.
	// The CAN frame is copied into a recycled delivery slot: the serial
	// frame is reused next cycle, long before this delivery fires.
	s.observeE2E(fr.d.Tcomp + fr.tdata + s.cfg.Vehicle.MechLatency)
	s.scheduleDelivery(fr.d.Tcomp+fr.tdata, fr.cmdFrame)
}

// deliverySlot carries one in-flight CAN frame to its delivery event. The
// fire closure is built once per slot so steady-state scheduling does not
// allocate; fired slots return to the SoV's free list.
type deliverySlot struct {
	frame canbus.Frame
	fire  func()
}

// scheduleDelivery enqueues a command's arrival at the ECU after delay.
func (s *SoV) scheduleDelivery(delay time.Duration, frame canbus.Frame) {
	var sl *deliverySlot
	if n := len(s.freeSlots); n > 0 {
		sl = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		sl = &deliverySlot{}
		sl.fire = func() {
			if err := s.ecu.Receive(sl.frame); err == nil {
				s.report.CommandsDelivered++
				if s.obsM != nil {
					s.obsM.delivered.Inc()
				}
			}
			s.freeSlots = append(s.freeSlots, sl)
		}
	}
	sl.frame = frame
	s.engine.Schedule(delay, "command-delivery", sl.fire)
}

// pipedCycle is the pipelined control event: capture the frame, schedule
// its delivery at the virtual-time deadline, and submit it to the stage
// goroutines. The delivery event blocks (wall-clock only) on the plan
// stage's completion signal, so virtual-time semantics are unchanged while
// frame N's planning overlaps frame N+1's perception and frame N+2's
// capture.
func (s *SoV) pipedCycle() {
	fr := s.framePool.Get()
	s.captureInto(fr)
	s.observeE2E(fr.d.Tcomp + fr.tdata + s.cfg.Vehicle.MechLatency)
	s.engine.Schedule(fr.d.Tcomp+fr.tdata, "command-delivery", fr.deliver)
	//sovlint:ignore poolescape ownership transfers into the stage pipeline by design; the frame's delivery event Puts it back
	s.pipe.Submit(fr)
}

// reactiveCheck is the last line of defense: radar (and sonar) distances go
// straight to the ECU, overriding the proactive path when an object is
// inside the reaction envelope (Sec. IV).
func (s *SoV) reactiveCheck() {
	now := s.engine.Now()
	pose := s.pose()
	st := s.veh.State()
	if st.Speed < 0.05 {
		return
	}
	// Nearest object in the narrow forward cone, from the radar rig's
	// forward sector backed by the sonar ring.
	nearest := math.Inf(1)
	if ret, ok := s.radarRig.NearestInSector(now, pose, 0, 0.35); ok {
		nearest = ret.VehiclePos.Norm()
	}
	if d, ok := s.sonarRig.NearestInSector(now, pose, 0, 0.5); ok && d < nearest {
		nearest = d
	}
	if math.IsInf(nearest, 1) {
		return
	}
	// Trigger envelope: braking distance + distance covered during the
	// reactive latency + mechanical latency + the obstacle's footprint
	// margin.
	reaction := (s.cfg.ReactiveLatency + s.cfg.Vehicle.MechLatency).Seconds()
	trigger := s.veh.StopDistanceFrom(st.Speed) + st.Speed*reaction + s.cfg.ReactiveMarginM + 0.3
	if nearest > trigger {
		return
	}
	s.report.ReactiveEngagements++
	if s.obsM != nil {
		s.obsM.reactive.Inc()
	}
	if s.box != nil {
		s.box.Trigger(obs.TriggerReactive, ms(now))
	}
	frame, err := canbus.EncodeCommand(canbus.IDReactiveOverride, canbus.Command{EStop: true, Seq: s.seq})
	if err != nil {
		s.report.EncodeErrors++
		if s.obsM != nil {
			s.obsM.encodeErr.Inc()
		}
		return
	}
	s.engine.Schedule(s.cfg.ReactiveLatency, "reactive-override", func() {
		_ = s.ecu.Receive(frame)
	})
}

// String summarizes the SoV state.
func (s *SoV) String() string {
	st := s.veh.State()
	return fmt.Sprintf("sov: t=%v pos=(%.1f,%.1f) v=%.1f cycles=%d",
		s.engine.Now(), st.Pos.X, st.Pos.Y, st.Speed, s.cycle)
}
