package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsEveryCycle(t *testing.T) {
	var buf bytes.Buffer
	s := New(DefaultConfig(), CruiseScenario(3))
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(20 * time.Second)
	n, err := tr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != rep.Cycles {
		t.Fatalf("trace records = %d, cycles = %d", n, rep.Cycles)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n {
		t.Fatalf("lines = %d, records = %d", lines, n)
	}
}

func TestTraceSummaryMatchesReport(t *testing.T) {
	var buf bytes.Buffer
	s := New(DefaultConfig(), CruiseScenario(3))
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(30 * time.Second)
	if _, err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != rep.Cycles {
		t.Fatalf("cycles %d vs %d", sum.Cycles, rep.Cycles)
	}
	// Offline re-analysis reproduces the live statistics.
	if math.Abs(sum.TcompMs.Mean-rep.Tcomp.Mean()) > 0.01 {
		t.Fatalf("trace mean %.2f vs live %.2f", sum.TcompMs.Mean, rep.Tcomp.Mean())
	}
	// Distance from cycle positions approximates the odometer (cycle
	// sampling misses sub-cycle curvature, so allow slack).
	if math.Abs(sum.DistanceM-rep.DistanceM) > rep.DistanceM*0.05 {
		t.Fatalf("trace distance %.1f vs odometer %.1f", sum.DistanceM, rep.DistanceM)
	}
}

func TestSummarizeTraceRejectsGarbage(t *testing.T) {
	if _, err := SummarizeTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected parse error")
	}
	// Empty trace is fine.
	sum, err := SummarizeTrace(strings.NewReader(""))
	if err != nil || sum.Cycles != 0 {
		t.Fatalf("empty trace: %+v err=%v", sum, err)
	}
}
