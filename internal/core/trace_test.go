package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsEveryCycle(t *testing.T) {
	var buf bytes.Buffer
	s := New(DefaultConfig(), CruiseScenario(3))
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(20 * time.Second)
	n, err := tr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != rep.Cycles {
		t.Fatalf("trace records = %d, cycles = %d", n, rep.Cycles)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n {
		t.Fatalf("lines = %d, records = %d", lines, n)
	}
}

func TestTraceSummaryMatchesReport(t *testing.T) {
	var buf bytes.Buffer
	s := New(DefaultConfig(), CruiseScenario(3))
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(30 * time.Second)
	if _, err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != rep.Cycles {
		t.Fatalf("cycles %d vs %d", sum.Cycles, rep.Cycles)
	}
	// Offline re-analysis reproduces the live statistics.
	if math.Abs(sum.TcompMs.Mean-rep.Tcomp.Mean()) > 0.01 {
		t.Fatalf("trace mean %.2f vs live %.2f", sum.TcompMs.Mean, rep.Tcomp.Mean())
	}
	// Distance from cycle positions approximates the odometer (cycle
	// sampling misses sub-cycle curvature, so allow slack).
	if math.Abs(sum.DistanceM-rep.DistanceM) > rep.DistanceM*0.05 {
		t.Fatalf("trace distance %.1f vs odometer %.1f", sum.DistanceM, rep.DistanceM)
	}
}

func TestSummarizeTraceSkipsGarbage(t *testing.T) {
	// Malformed lines are skipped and counted: a truncated tail from a
	// crashed run must not hide the rest of the archive.
	in := `{"cycle":1,"t_ms":0,"x":0,"y":0,"tcomp_ms":150,"inflight":1}
not json
{"cycle":2,"t_ms":100,"x":1,"y":0,"tcomp_ms":170,"inflight":2,"blocked":true}
{"cycle":3,"t_ms":200,"x":2,"y":0,"tcomp_ms":160,"inf` // truncated mid-record
	sum, err := SummarizeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != 2 || sum.MalformedLines != 2 {
		t.Fatalf("cycles=%d malformed=%d, want 2 and 2", sum.Cycles, sum.MalformedLines)
	}
	if sum.BlockedCycles != 1 {
		t.Fatalf("blocked=%d, want 1", sum.BlockedCycles)
	}
	if math.Abs(sum.TcompMs.Mean-160) > 1e-9 {
		t.Fatalf("Tcomp mean %.1f, want 160", sum.TcompMs.Mean)
	}
	if math.Abs(sum.DistanceM-1) > 1e-9 {
		t.Fatalf("distance %.2f, want 1", sum.DistanceM)
	}

	// Empty trace yields a zero summary, no error.
	sum, err = SummarizeTrace(strings.NewReader(""))
	if err != nil || sum.Cycles != 0 || sum.MalformedLines != 0 {
		t.Fatalf("empty trace: %+v err=%v", sum, err)
	}
}
