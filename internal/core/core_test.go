package core

import (
	"math"
	"sov/internal/sim"
	"sov/internal/vehicle"
	"sov/internal/world"
	"strings"
	"testing"
	"time"
)

func cruiseReport(t *testing.T, mutate func(*Config)) *Report {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	w := CruiseScenario(3)
	return New(cfg, w).Run(120 * time.Second)
}

func TestMeanComputingLatencyNear164ms(t *testing.T) {
	rep := cruiseReport(t, nil)
	if math.Abs(rep.Tcomp.Mean()-164) > 12 {
		t.Fatalf("mean Tcomp = %.1f ms, want ~164", rep.Tcomp.Mean())
	}
	// Mean close to best-case with a long tail (Fig. 10a).
	if rep.Tcomp.Min() < 120 || rep.Tcomp.Min() > rep.Tcomp.Mean() {
		t.Fatalf("best-case = %.1f ms, want ~149 < mean", rep.Tcomp.Min())
	}
	if rep.Tcomp.Quantile(0.99) < rep.Tcomp.Mean()*1.4 {
		t.Fatalf("p99 = %.1f ms lacks the long tail", rep.Tcomp.Quantile(0.99))
	}
}

func TestComputeShare88Percent(t *testing.T) {
	rep := cruiseReport(t, nil)
	if math.Abs(rep.ComputeShare()-0.885) > 0.03 {
		t.Fatalf("compute share = %.3f, want ~0.88", rep.ComputeShare())
	}
}

func TestSensingIsHalfOfTcomp(t *testing.T) {
	// The headline counter-intuitive result: sensing ≈ 50% of the SoV
	// latency (Sec. V-C).
	rep := cruiseReport(t, nil)
	if rep.SensingShare() < 0.45 || rep.SensingShare() > 0.62 {
		t.Fatalf("sensing share = %.2f, want ~0.5", rep.SensingShare())
	}
}

func TestPlanningInsignificant(t *testing.T) {
	rep := cruiseReport(t, nil)
	if rep.Planning.Mean() > 5 {
		t.Fatalf("planning mean = %.1f ms, want ~3", rep.Planning.Mean())
	}
	if rep.Planning.Mean()/rep.Tcomp.Mean() > 0.05 {
		t.Fatal("planning should be a few percent of Tcomp")
	}
}

func TestLocalizationMedianAndStd(t *testing.T) {
	// Sec. V-C: localization median 25 ms, std 14 ms.
	rep := cruiseReport(t, nil)
	if math.Abs(rep.Localization.Median()-25) > 8 {
		t.Fatalf("localization median = %.1f ms, want ~25", rep.Localization.Median())
	}
	if rep.Localization.Std() < 7 || rep.Localization.Std() > 25 {
		t.Fatalf("localization std = %.1f ms, want ~14", rep.Localization.Std())
	}
}

func TestThroughputMeets10Hz(t *testing.T) {
	rep := cruiseReport(t, nil)
	if rep.ThroughputHz < 9.5 {
		t.Fatalf("throughput = %.1f Hz, want ~10 (pipelined)", rep.ThroughputHz)
	}
}

func TestProactiveOver90Percent(t *testing.T) {
	rep := cruiseReport(t, nil)
	if rep.ProactiveFraction < 0.9 {
		t.Fatalf("proactive fraction = %.2f, want > 0.9", rep.ProactiveFraction)
	}
}

func TestCruiseIsCollisionFree(t *testing.T) {
	rep := cruiseReport(t, nil)
	if rep.Collisions != 0 {
		t.Fatalf("collisions = %d on cruise", rep.Collisions)
	}
	if rep.DistanceM < 500 {
		t.Fatalf("distance = %.0f m, vehicle stalled", rep.DistanceM)
	}
}

func TestNoFPGAOffloadInflatesPerception(t *testing.T) {
	// Fig. 8 ablation: sharing the GPU inflates perception ~1.6×.
	ours := cruiseReport(t, nil)
	shared := cruiseReport(t, func(c *Config) { c.FPGAOffload = false })
	ratio := shared.Perception.Mean() / ours.Perception.Mean()
	if ratio < 1.3 || ratio > 1.9 {
		t.Fatalf("perception inflation = %.2fx, want ~1.56x", ratio)
	}
	// And ~20% end-to-end cost (paper: 23% reduction from offloading).
	e2e := shared.Tcomp.Mean() / ours.Tcomp.Mean()
	if e2e < 1.1 || e2e > 1.45 {
		t.Fatalf("Tcomp inflation = %.2fx, want ~1.2-1.3x", e2e)
	}
}

func TestEMPlannerInflatesPlanning(t *testing.T) {
	// Sec. V-C: the EM planner costs ~100 ms vs our ~3 ms.
	rep := cruiseReport(t, func(c *Config) { c.EMPlanner = true })
	if rep.Planning.Mean() < 70 {
		t.Fatalf("EM planning mean = %.1f ms, want ~100", rep.Planning.Mean())
	}
}

func TestSoftwareSyncInflatesSensing(t *testing.T) {
	hw := cruiseReport(t, nil)
	sw := cruiseReport(t, func(c *Config) { c.HardwareSync = false })
	if sw.Sensing.Mean() <= hw.Sensing.Mean() {
		t.Fatal("software sync should add sensing latency")
	}
}

func TestKCFFallbackInflatesTracking(t *testing.T) {
	radar := cruiseReport(t, nil)
	kcf := cruiseReport(t, func(c *Config) { c.RadarTracking = false })
	ratio := kcf.Tracking.Mean() / radar.Tracking.Mean()
	if ratio < 8 {
		t.Fatalf("KCF/spatial-sync tracking ratio = %.1fx, want >> 1 (paper ~100x on CPU)", ratio)
	}
}

func TestSuddenObstacleFarAheadProactivelyAvoided(t *testing.T) {
	// An obstacle appearing 20 m ahead is well outside the 164 ms
	// avoidance envelope: the proactive path should handle it.
	out := RunSuddenObstacle(DefaultConfig(), 20, 40*time.Second)
	if out.Collided {
		t.Fatalf("collision at 20 m trigger: %+v", out)
	}
}

func TestSuddenObstacleCloseNeedsReactivePath(t *testing.T) {
	// At ~4.5 m the proactive path (≥5 m envelope at mean latency)
	// cannot respond in time; the reactive path must fire and stop the
	// vehicle (paper: reactive avoids objects ≥ ~4.1 m).
	cfg := DefaultConfig()
	out := RunSuddenObstacle(cfg, 4.5, 30*time.Second)
	if !out.Reactive {
		t.Fatalf("reactive path did not engage: %+v", out)
	}
	if out.Collided {
		t.Fatalf("collision despite reactive path: %+v", out)
	}
}

func TestSuddenObstacleCloseWithoutReactiveCollides(t *testing.T) {
	// Ablation: disarming the reactive path at a close appearance
	// distance removes the last line of defense.
	cfg := DefaultConfig()
	cfg.ReactivePath = false
	out := RunSuddenObstacle(cfg, 4.5, 30*time.Second)
	if !out.Collided {
		t.Fatalf("no collision without the reactive path at 4.5 m: %+v", out)
	}
	withReactive := RunSuddenObstacle(DefaultConfig(), 4.5, 30*time.Second)
	if withReactive.Collided {
		t.Fatalf("reactive path failed to prevent the same collision: %+v", withReactive)
	}
}

func TestSuddenObstacleInsideBrakingFloorUnavoidable(t *testing.T) {
	// 2.5 m is inside the ~3.9 m braking floor: physics forbids avoidance
	// (Fig. 3a's theoretical lower bound).
	out := RunSuddenObstacle(DefaultConfig(), 2.5, 30*time.Second)
	if !out.Collided {
		t.Fatalf("impossible avoidance succeeded: %+v", out)
	}
}

func TestCutInPedestrianHandled(t *testing.T) {
	// The crossing-pedestrian scenario (less adversarial than the sudden
	// obstacle: the pedestrian may clear the path on its own) must never
	// collide at a generous trigger distance.
	out := RunCutIn(DefaultConfig(), 15, 30*time.Second)
	if out.Collided {
		t.Fatalf("collision at 15 m pedestrian cut-in: %+v", out)
	}
}

func TestReportRender(t *testing.T) {
	rep := cruiseReport(t, nil)
	out := rep.Render()
	for _, want := range []string{"sensing", "perception", "planning", "throughput", "safety"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := cruiseReport(t, nil)
	b := cruiseReport(t, nil)
	if a.Tcomp.Mean() != b.Tcomp.Mean() || a.Collisions != b.Collisions {
		t.Fatal("same seed produced different runs")
	}
}

func TestSoVString(t *testing.T) {
	s := New(DefaultConfig(), CruiseScenario(1))
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestEnergyAccounting(t *testing.T) {
	rep := cruiseReport(t, nil)
	// 175 W for 120 s = 5.83 Wh.
	if math.Abs(rep.ADEnergyWh-175.0*120/3600) > 0.01 {
		t.Fatalf("AD energy = %v Wh", rep.ADEnergyWh)
	}
	if rep.BatteryShare <= 0 || rep.BatteryShare > 0.01 {
		t.Fatalf("battery share = %v", rep.BatteryShare)
	}
}

func TestRadarDropoutTriggersKCFFallback(t *testing.T) {
	// Failure injection: unstable radar forces the KCF fallback, raising
	// the tracking-stage latency on affected cycles (Sec. VI-B).
	stable := cruiseReport(t, nil)
	cfg := DefaultConfig()
	w := CruiseScenario(3)
	s := New(cfg, w)
	for _, u := range s.radarRig.Units {
		u.Config.DropoutProb = 0.5
	}
	flaky := s.Run(120 * time.Second)
	if flaky.Tracking.Mean() < 3*stable.Tracking.Mean() {
		t.Fatalf("dropouts should inflate tracking: stable %.2f vs flaky %.2f ms",
			stable.Tracking.Mean(), flaky.Tracking.Mean())
	}
}

func TestLaneKeepingTightWhenSynchronized(t *testing.T) {
	rep := cruiseReport(t, nil)
	if rep.LateralRMSM > 0.4 {
		t.Fatalf("lane-keeping RMS = %.3f m, want tight tracking", rep.LateralRMSM)
	}
}

func TestSoftwareSyncDegradesLaneKeeping(t *testing.T) {
	// The closed-loop consequence of the Fig. 11 localization study:
	// poorer pose estimates make the lane-keeping loop visibly sloppier.
	hw := cruiseReport(t, nil)
	sw := cruiseReport(t, func(c *Config) { c.HardwareSync = false })
	if sw.LateralRMSM < 1.5*hw.LateralRMSM {
		t.Fatalf("software sync should degrade lane keeping: hw %.3f vs sw %.3f m",
			hw.LateralRMSM, sw.LateralRMSM)
	}
}

func TestShuttleVariantRuns(t *testing.T) {
	// The 8-seater shuttle (heavier, softer brake, slower actuators)
	// drives the same stack; its braking floor shifts the safety
	// envelopes per Eq. 1.
	cfg := DefaultConfig()
	cfg.Vehicle = vehicle.ShuttleParams()
	rep := New(cfg, CruiseScenario(3)).Run(60 * time.Second)
	if rep.Collisions != 0 {
		t.Fatalf("shuttle cruise collided: %d", rep.Collisions)
	}
	if rep.DistanceM < 250 {
		t.Fatalf("shuttle stalled: %.0f m", rep.DistanceM)
	}
	// An appearance distance the pod survives is inside the shuttle's
	// envelope: floor = 5.6²/(2·3.2) = 4.9 m.
	out := RunSuddenObstacle(cfg, 4.5, 30*time.Second)
	if !out.Collided {
		t.Fatalf("4.5 m is inside the shuttle's 4.9 m braking floor: %+v", out)
	}
}

func TestSceneComplexitySlowsLocalization(t *testing.T) {
	// Sec. V-C: "In dynamic scenes ... new features can be extracted in
	// every frame, which slows down the localization algorithm."
	quiet := New(DefaultConfig(), CruiseScenario(99)) // crossings far apart
	quietRep := quiet.Run(60 * time.Second)

	cfg := DefaultConfig()
	busy := world.NewCorridor(2000, sim.NewRNG(3))
	// A dense stream of crossers keeps the scene dynamic the whole run.
	for x := 20.0; x < 400; x += 12 {
		busy.AddCutInPedestrian(x, 0, 1.0)
	}
	busyRep := New(cfg, busy).Run(60 * time.Second)
	if busyRep.Localization.Mean() <= quietRep.Localization.Mean() {
		t.Fatalf("busy scene localization (%.1f ms) should exceed quiet (%.1f ms)",
			busyRep.Localization.Mean(), quietRep.Localization.Mean())
	}
}

func TestIntersectionCrossingVehicleYielded(t *testing.T) {
	// An unsignalized crossing timed for conflict: the SoV must yield
	// (slow down) or otherwise avoid the crossing vehicle.
	cfg := DefaultConfig()
	w := IntersectionScenario(cfg.TargetSpeed, 3.0)
	s := New(cfg, w)
	minSpeed := cfg.TargetSpeed
	s.OnPhysicsStep = func(_ time.Duration, st vehicle.State) bool {
		if st.Speed < minSpeed {
			minSpeed = st.Speed
		}
		return false
	}
	rep := s.Run(40 * time.Second)
	if rep.Collisions != 0 {
		t.Fatalf("intersection collision: clearance %.2f", rep.MinClearance)
	}
	if minSpeed > cfg.TargetSpeed-1.0 {
		t.Fatalf("vehicle never yielded: min speed %.2f", minSpeed)
	}
}

func TestBatteryDrainsDuringRun(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg, CruiseScenario(3))
	s.Run(120 * time.Second)
	b := s.Battery()
	// 0.775 kW for 120 s ≈ 25.8 Wh of the 6 kWh pack.
	wantSoC := 1 - 0.775*120.0/3600/6
	if math.Abs(b.SoC-wantSoC) > 0.001 {
		t.Fatalf("SoC = %v, want ~%v", b.SoC, wantSoC)
	}
	if b.Empty() {
		t.Fatal("pack cannot be empty after 2 minutes")
	}
}

func TestRenderHistogram(t *testing.T) {
	rep := cruiseReport(t, nil)
	out := rep.RenderHistogram(10, 30)
	if !strings.Contains(out, "#") || !strings.Contains(out, "Tcomp") {
		t.Fatalf("histogram:\n%s", out)
	}
	var empty Report
	empty.init(false)
	if !strings.Contains(empty.RenderHistogram(5, 10), "no cycles") {
		t.Fatal("empty histogram should say so")
	}
}

// TestIncrementalAdvanceMatchesRun pins the fleet-facing decomposition:
// Start + AdvanceTo in 1 s epochs + Finish must produce the same report
// as a one-shot Run, byte for byte — the epoch barriers only slice the
// event loop, they never reorder or perturb it.
func TestIncrementalAdvanceMatchesRun(t *testing.T) {
	const horizon = 30 * time.Second
	oneShot := New(DefaultConfig(), CruiseScenario(3)).Run(horizon)

	s := New(DefaultConfig(), CruiseScenario(3))
	s.Start()
	for at := time.Second; at <= horizon; at += time.Second {
		s.AdvanceTo(at)
		if s.Now() != at {
			t.Fatalf("Now() = %v after AdvanceTo(%v)", s.Now(), at)
		}
	}
	stepped := s.Finish(horizon)

	if got, want := stepped.Render(), oneShot.Render(); got != want {
		t.Fatalf("epoch-stepped report differs from one-shot Run:\n--- stepped ---\n%s\n--- one-shot ---\n%s", got, want)
	}
	if stepped.Cycles != oneShot.Cycles || stepped.Collisions != oneShot.Collisions {
		t.Fatalf("stepped cycles/collisions %d/%d vs %d/%d",
			stepped.Cycles, stepped.Collisions, oneShot.Cycles, oneShot.Collisions)
	}
}

// TestLeanReportMatchesFullMeans pins the lean (Welford) report against
// the sample-retaining one: identical cycle counts and matching latency
// means, with rendering and the derived shares staying finite.
func TestLeanReportMatchesFullMeans(t *testing.T) {
	full := cruiseReport(t, nil)
	lean := cruiseReport(t, func(c *Config) { c.LeanReport = true })
	if lean.Cycles != full.Cycles {
		t.Fatalf("lean cycles %d vs full %d", lean.Cycles, full.Cycles)
	}
	if math.Abs(lean.MeanTcompMS()-full.Tcomp.Mean()) > 1e-6 {
		t.Fatalf("lean Tcomp mean %.4f vs full %.4f", lean.MeanTcompMS(), full.Tcomp.Mean())
	}
	if math.Abs(lean.MeanE2EMS()-full.EndToEnd.Mean()) > 1e-6 {
		t.Fatalf("lean e2e mean %.4f vs full %.4f", lean.MeanE2EMS(), full.EndToEnd.Mean())
	}
	if math.Abs(lean.ComputeShare()-full.ComputeShare()) > 1e-6 {
		t.Fatal("lean compute share diverged")
	}
	out := lean.Render()
	if !strings.Contains(out, "lean report") {
		t.Fatalf("lean render missing marker:\n%s", out)
	}
	if !strings.Contains(lean.RenderHistogram(5, 10), "no cycles") {
		t.Fatal("lean histogram should degrade gracefully")
	}
}
