// Package core wires the Systems-on-a-Vehicle together: synchronized
// sensing, perception (localization ∥ scene understanding), MPC planning,
// the CAN/ECU/actuator chain, and the radar/sonar reactive path that
// overrides it all (Figs. 5 and 7). It runs as a discrete-event simulation
// on a virtual clock, with stage latencies drawn from the calibrated
// distributions of Sec. V-C, and produces the end-to-end latency
// characterization of Fig. 10 plus safety outcomes for the scenario studies.
package core

import (
	"os"
	"time"

	"sov/internal/detect"
	"sov/internal/vehicle"
)

// Config selects the SoV build options; the zero-value-adjusted Default
// reflects the deployed vehicle.
type Config struct {
	// Seed drives every random stream in the run.
	Seed int64
	// Vehicle is the physical platform.
	Vehicle vehicle.Params
	// TargetSpeed is the cruise set point (m/s).
	TargetSpeed float64
	// ControlRate is the planning/command rate (10 Hz deployed).
	ControlRate float64
	// PhysicsRate integrates vehicle dynamics.
	PhysicsRate float64
	// RadarRate drives the radar scans feeding the tracker.
	RadarRate float64
	// ReactiveRate is the safety-override check rate. The six radar units
	// are staggered, so the fused forward view refreshes faster than any
	// single 20 Hz unit — which is how the reactive path achieves its
	// 30 ms reaction.
	ReactiveRate float64

	// FPGAOffload maps localization to the FPGA (our design). Disabling
	// it shares the GPU and inflates perception (Fig. 8 ablation).
	FPGAOffload bool
	// HardwareSync enables the hardware synchronizer; without it the
	// perception quality degrades per the Fig. 11 studies (modeled as
	// extra detection-position noise and localization error).
	HardwareSync bool
	// ReactivePath arms the radar/sonar safety override.
	ReactivePath bool
	// RadarTracking replaces KCF visual tracking with radar + spatial
	// synchronization (Sec. VI-B); when radar is unstable the KCF
	// fallback cost is paid.
	RadarTracking bool
	// EMPlanner swaps the MPC for the 33×-cost EM planner (ablation).
	EMPlanner bool
	// RPREnabled time-shares the FPGA localization front-end between the
	// feature-extract and feature-track bitstreams.
	RPREnabled bool
	// KeyframeEvery spaces feature-extraction keyframes (RPR swaps).
	KeyframeEvery int
	// Pipeline runs the control loop as a staged dataflow: sensing capture
	// on the simulation thread, perception and planning as overlapped
	// pipeline stages with recycled frame buffers (internal/pipeline).
	// Virtual-time results are byte-identical to the serial loop; only
	// wall-clock execution changes. On a single-CPU host (GOMAXPROCS=1)
	// the stage goroutines only add handoff overhead, so Run falls back to
	// the serial loop unless PipelineForce is set; the decision lands in
	// Report.PipelineDecision.
	Pipeline bool
	// PipelineForce keeps the staged dataflow even when the host has a
	// single CPU (tests and diagnostics of the pipelined runtime itself).
	PipelineForce bool
	// Quant backs perception with the int8 fixed-point kernels
	// (internal/nn QNetwork, fixed-point ISP/stereo/decode): the dense
	// scene-understanding latency draws divide by platform.QuantSpeedup,
	// the software counterpart of moving those tasks onto the FPGA's
	// fixed-point dataflow (DESIGN.md §8).
	Quant bool
	// Sched attaches the online heterogeneous scheduler (internal/sched):
	// runtime task remapping, quant↔float operating-point switching under
	// thermal/SoC pressure, contention-aware co-location, and multi-camera
	// batching, all from observed virtual-time latencies (DESIGN.md §13).
	// It supersedes the FPGAOffload ablation — contention comes from the
	// chosen mapping instead.
	Sched bool
	// SchedMapping overrides the scheduler's initial "SU/Loc" mapping
	// (default GPU/FPGA, the deployed design).
	SchedMapping string
	// SchedStatic pins the scheduler to its initial mapping with all online
	// decisions disabled — the static baselines of the Fig. 6/8 dynamic
	// regeneration.
	SchedStatic bool
	// Cameras is the number of cameras feeding scene-understanding
	// inference per cycle (default 1). Without the scheduler the extra
	// inferences run sequentially; the scheduler batches them when scene
	// understanding sits on a batching-capable processor.
	Cameras int
	// AmbientC is the enclosure ambient temperature for the scheduler's
	// thermal model (default 25).
	AmbientC float64
	// InitialSoC overrides the battery's starting state of charge when
	// positive (scheduler battery-pressure studies).
	InitialSoC float64
	// DynamicKeyframe forces a localization keyframe whenever the scene
	// complexity reaches 0.6 — dynamic traffic extracts fresh features
	// nearly every frame, which is what shifts the RPR swap economics.
	DynamicKeyframe bool

	// LeanReport keeps the report's latency statistics as streaming
	// Welford accumulators instead of raw samples. A single vehicle's
	// characterization run wants the full Fig. 10 distributions; a fleet
	// of thousands of vehicles cannot afford per-cycle sample retention,
	// and only consumes the means and counters anyway.
	LeanReport bool
	// StartOffsetM places the vehicle this many meters along the route
	// centerline instead of at the first lane's start — fleet runs stagger
	// vehicles around a shared region loop with it. Zero keeps the
	// historical placement.
	StartOffsetM float64

	// Detector configures the oracle-noise detection channel.
	Detector detect.Config

	// ReactiveLatency is the radar→ECU override latency (30 ms deployed).
	ReactiveLatency time.Duration
	// ReactiveMarginM pads the reactive trigger distance.
	ReactiveMarginM float64

	// LocalizationErrorStd is the lateral/longitudinal standard deviation
	// of the pose estimate the planner consumes (map-mode VIO at ~a few
	// cm when synchronized). When HardwareSync is off it is inflated by
	// SyncErrorFactor — the closed-loop consequence of Fig. 11.
	LocalizationErrorStd float64
	// SyncErrorFactor multiplies the localization error without the
	// hardware synchronizer.
	SyncErrorFactor float64
}

// pipelineDefault is the process-wide default for Config.Pipeline, set by
// command-line front-ends (-pipeline) so helpers that build DefaultConfig
// internally (the experiment suite) pick the pipelined runtime up too. The
// SOV_PIPELINE environment variable seeds it, letting CI rerun the whole
// test suite under the pipelined runtime (results are byte-identical, so
// every assertion must hold in both modes).
var pipelineDefault = os.Getenv("SOV_PIPELINE") == "1"

// SetPipelineDefault makes subsequent DefaultConfig calls enable (or
// disable) the pipelined control-loop runtime.
func SetPipelineDefault(on bool) { pipelineDefault = on }

// quantDefault mirrors pipelineDefault for Config.Quant: the -quant flags
// seed it, and the SOV_QUANT environment variable lets CI rerun suites on
// the fixed-point perception path.
var quantDefault = os.Getenv("SOV_QUANT") == "1"

// SetQuantDefault makes subsequent DefaultConfig calls enable (or disable)
// the quantized perception path.
func SetQuantDefault(on bool) { quantDefault = on }

// schedDefault mirrors pipelineDefault for Config.Sched: the -sched flags
// on sovsim/sovbench/sovfleet seed it so helpers that build DefaultConfig
// internally (the experiment suite) attach the scheduler too.
var schedDefault bool

// SetSchedDefault makes subsequent DefaultConfig calls attach (or not) the
// online heterogeneous scheduler.
func SetSchedDefault(on bool) { schedDefault = on }

// DefaultConfig returns the deployed configuration.
func DefaultConfig() Config {
	return Config{
		Pipeline:        pipelineDefault,
		Quant:           quantDefault,
		Sched:           schedDefault,
		Cameras:         1,
		AmbientC:        25,
		Seed:            1,
		Vehicle:         vehicle.DefaultParams(),
		TargetSpeed:     5.6,
		ControlRate:     10,
		PhysicsRate:     100,
		RadarRate:       20,
		ReactiveRate:    50,
		FPGAOffload:     true,
		HardwareSync:    true,
		ReactivePath:    true,
		RadarTracking:   true,
		EMPlanner:       false,
		RPREnabled:      true,
		KeyframeEvery:   5,
		Detector:        detect.DefaultConfig(),
		ReactiveLatency: 30 * time.Millisecond,
		ReactiveMarginM: 0.2,

		LocalizationErrorStd: 0.04,
		SyncErrorFactor:      12,
	}
}
