package core

import (
	"math"
	"time"

	"sov/internal/canbus"
	"sov/internal/detect"
	"sov/internal/fusion"
	"sov/internal/mathx"
	"sov/internal/parallel"
	"sov/internal/pipeline"
	"sov/internal/planning"
	"sov/internal/rpr"
	"sov/internal/sched"
	"sov/internal/sensors"
	"sov/internal/track"
	"sov/internal/vehicle"
	"sov/internal/world"
)

// The control loop is split into three stages — capture, perceive, plan —
// that communicate through a cycleFrame. Serial mode runs them back to back
// inside the control event; pipelined mode runs perceive and plan on
// internal/pipeline stage goroutines so frame N plans while N+1 perceives
// and N+2 captures.
//
// The split is drawn along the determinism boundary. Everything that touches
// shared mutable state or the coordinator RNG stream stays in capture, on
// the simulation-engine thread, in cycle order: the lane handover, the
// latency draw, the radar scan (its per-unit RNG streams interleave with the
// reactive path's scans), the shared-stream noise draws, the command
// sequence number, and the delivery schedule. Perceive and plan touch only
// state they own exclusively (the detector's forked RNG, the tracker, the
// planner's warm start, the tracer) plus frame snapshots, so running them
// behind FIFO queues on single goroutines reproduces the serial results
// bit for bit.

// pipeQueueCap bounds each inter-stage ring; with ~100 ms control periods
// and ~165 ms compute latency the steady-state depth is 2-3 frames, so a
// small bound provides backpressure without stalling capture.
const pipeQueueCap = 4

// cycleFrame carries one control cycle through the stages. All slices are
// recycled buffers: stages truncate and refill them, never reallocate once
// warm.
type cycleFrame struct {
	// Captured on the engine thread.
	cycle          int
	t0             time.Duration
	pose           world.Pose
	st             vehicle.State
	lane           world.Lane
	complexity     float64
	d              latencyDraw
	seq            uint16
	locStd         float64
	noiseX, noiseY float64
	noiseH         float64
	tdata          time.Duration
	inflight       int
	overrideActive bool
	// Scheduler decisions snapshotted at capture, so the plan stage can
	// emit their spans/metrics without touching scheduler state.
	schedRemap    bool
	schedOpSwitch bool
	schedSwap     time.Duration
	rig           []sensors.RigReturn
	returns       []sensors.RadarReturn

	// Perceive-stage outputs.
	dets    []detect.Object
	tracks  []track.RadarTrack
	estPose world.Pose
	fused   []fusion.FusedObject
	sync    fusion.SyncScratch

	// Plan-stage outputs.
	obstacles []planning.Obstacle
	objects   int
	blocked   bool
	cmdFrame  canbus.Frame
	encodeOK  bool
	// done signals the plan stage finished this frame; the delivery event
	// waits on it in pipelined mode.
	done chan struct{}
	// deliver is the frame's delivery-event closure, built once when the
	// frame pool creates the frame so scheduling never allocates.
	deliver func()
}

func newCycleFrame() *cycleFrame {
	return &cycleFrame{done: make(chan struct{}, 1)}
}

// startPipeline builds the frame pool and the two-stage runtime. Called
// from Run when cfg.Pipeline is set.
func (s *SoV) startPipeline() {
	pool := pipeline.NewFramePool(func() *cycleFrame {
		fr := newCycleFrame()
		fr.deliver = func() {
			<-fr.done // the command must be computed before it can arrive
			if fr.encodeOK {
				if err := s.ecu.Receive(fr.cmdFrame); err == nil {
					s.report.CommandsDelivered++
					if s.obsM != nil {
						s.obsM.delivered.Inc()
					}
				}
			}
			s.framePool.Put(fr)
		}
		return fr
	}, func(fr *cycleFrame) {
		select {
		case <-fr.done: // drain a stale completion token (unfired delivery)
		default:
		}
	})
	s.framePool = pool
	s.pipe = pipeline.NewRuntime(pipeQueueCap,
		pipeline.Stage[cycleFrame]{Name: "perceive", Fn: s.perceiveFrame},
		pipeline.Stage[cycleFrame]{Name: "plan", Fn: func(fr *cycleFrame) {
			s.planFrame(fr)
			fr.done <- struct{}{}
		}},
	)
}

// stopPipeline waits out in-flight frames, joins the stage goroutines, and
// files the wall-clock diagnostics into the report.
func (s *SoV) stopPipeline() {
	if s.pipe == nil {
		return
	}
	s.pipe.Drain()
	s.pipe.Stop()
	s.report.Pipeline = &PipelineStats{Stages: s.pipe.Stats(), Pool: s.framePool.Stats()}
	//sovlint:ignore detflow the PIDHost span track is host-class diagnostics by contract, outside the determinism boundary
	s.emitHostSpans(s.report.Pipeline)
	s.pipe = nil
	s.framePool = nil
}

// captureInto runs the capture stage: everything RNG- or shared-state-
// dependent, in the exact order of the historical serial cycle, snapshotted
// into the frame.
func (s *SoV) captureInto(fr *cycleFrame) {
	s.cycle++
	fr.cycle = s.cycle
	fr.t0 = s.engine.Now()
	fr.pose = s.pose()
	fr.st = s.veh.State()

	// Route following: hand over to the next leg as the vehicle
	// progresses (the annotated lane map's job). The lookahead anchor
	// starts the corner handover while the vehicle still has the speed to
	// steer through it.
	lookahead := mathx.Clamp(fr.st.Speed*1.5, 2, 6)
	anchor := fr.pose.Pos.Add(mathx.Vec2{X: math.Cos(fr.pose.Heading), Y: math.Sin(fr.pose.Heading)}.Scale(lookahead))
	s.lane = s.route.Lanes[s.route.ActiveLane(anchor)]
	fr.lane = s.lane

	fr.complexity = s.world.SceneComplexity(fr.pose, fr.t0)
	keyframe := s.cfg.KeyframeEvery > 0 && s.cycle%s.cfg.KeyframeEvery == 0
	if s.cfg.DynamicKeyframe && fr.complexity >= 0.6 {
		// Dynamic traffic extracts fresh features nearly every frame.
		keyframe = true
	}
	radarStable := true
	if p := s.radarRig.Units[0].Config.DropoutProb; p > 0 {
		radarStable = !s.rng.Bernoulli(p)
	}

	// The online scheduler runs at capture, on the engine thread, in cycle
	// order: its inputs (battery SoC, keyframe schedule, the EWMAs fed by
	// prior draws) are all virtual-class, so the decision sequence — and
	// therefore every multiplier it hands the latency model — is identical
	// across worker counts and control-loop modes.
	var tr *sched.Transform
	fr.schedRemap, fr.schedOpSwitch, fr.schedSwap = false, false, 0
	if s.sched != nil {
		var ev sched.Events
		tr, ev = s.sched.BeginCycle(s.battery.SoC, keyframe)
		fr.schedRemap, fr.schedOpSwitch = ev.Remapped, ev.OpSwitched
	}

	fr.d = s.lat.draw(fr.complexity, keyframe, radarStable, tr)
	if s.sched != nil {
		// Feed the drawn latencies back before the RPR swap charge, so the
		// EWMAs track task compute, not front-end reconfiguration.
		s.sched.Observe(fr.d.Depth, fr.d.Detection, fr.d.Tracking, fr.d.Localization,
			!(s.cfg.RadarTracking && radarStable))
	}
	// RPR swap cost folds into localization when the front-end variant
	// changes (Sec. V-B3: < 3 ms). The scheduler may hold the extract
	// bitstream resident (sticky front-end) instead of following the
	// keyframe schedule; either way the swap latency is charged to the
	// cycle that triggered it.
	if s.rprMgr != nil {
		bs := rpr.BitstreamFeatureTrack
		if keyframe {
			bs = rpr.BitstreamFeatureExtract
		}
		if s.sched != nil {
			bs = s.sched.FrontEnd()
		}
		if res := s.rprMgr.Require(bs); res.Bytes > 0 {
			fr.d.Localization += res.Duration
			if fr.d.Localization > fr.d.Perception {
				fr.d.Perception = fr.d.Localization
			}
			fr.d.Tcomp = fr.d.Sensing + fr.d.Perception + fr.d.Planning
			if s.sched != nil {
				s.sched.NoteSwap(res.Duration)
				fr.schedSwap = res.Duration
			}
		}
	}
	s.report.observe(fr.d)

	// Pose-estimate noise is drawn at capture so the coordinator's RNG
	// stream keeps its serial order (dropout Bernoulli, then pose noise)
	// regardless of how the later stages are scheduled.
	fr.locStd = s.cfg.LocalizationErrorStd
	if !s.cfg.HardwareSync {
		fr.locStd *= s.cfg.SyncErrorFactor
	}
	fr.noiseX, fr.noiseY, fr.noiseH = 0, 0, 0
	if fr.locStd > 0 {
		fr.noiseX = s.rng.Normal(0, fr.locStd)
		fr.noiseY = s.rng.Normal(0, fr.locStd)
		fr.noiseH = s.rng.Normal(0, fr.locStd/2)
	}

	// The radar scan stays at capture: its per-unit RNG streams are shared
	// with the reactive path's scans, so the draw order must follow the
	// virtual clock, not pipeline wall-clock.
	fr.rig = s.radarRig.ScanAllInto(fr.rig[:0], fr.t0, fr.pose)
	fr.returns = fr.returns[:0]
	for _, rr := range fr.rig {
		fr.returns = append(fr.returns, sensors.RadarReturn{
			ObstacleID: rr.ObstacleID,
			Range:      rr.VehiclePos.Norm(),
			Bearing:    rr.VehicleBearing,
			RadialVel:  rr.RadialVel,
			Time:       rr.Time,
		})
	}

	// The command sequence number is assigned at capture — in virtual time
	// the cycle's command exists from its capture instant, which is what
	// the reactive override's Seq must reflect in both modes.
	s.seq++
	fr.seq = s.seq
	fr.tdata = s.bus.CommandLatency()
	fr.overrideActive = s.ecu.OverrideActive()

	// Pipeline depth in virtual time: commands captured earlier whose
	// delivery lies beyond this capture are still in flight. Identical in
	// serial and pipelined runs — the overlap the dataflow exploits is a
	// property of the latency model, not of the host scheduling.
	n := 0
	for _, deadline := range s.outstanding {
		if deadline > fr.t0 {
			s.outstanding[n] = deadline
			n++
		}
	}
	s.outstanding = s.outstanding[:n]
	fr.inflight = len(s.outstanding)
	s.report.observeDepth(fr.inflight)
	s.outstanding = append(s.outstanding, fr.t0+fr.d.Tcomp+fr.tdata)
	s.observeCycleMetrics(fr)
}

// perceiveFrame runs the perception stage on a captured frame: camera
// detection and radar-track maintenance (concurrent kernels when workers
// allow), then spatial synchronization into the fused object list.
func (s *SoV) perceiveFrame(fr *cycleFrame) {
	if parallel.Workers() <= 1 {
		s.perceiveDetect(fr)
		s.perceiveTrack(fr)
	} else {
		parallel.Do(
			func() { s.perceiveDetect(fr) },
			func() { s.perceiveTrack(fr) },
		)
	}
	fr.fused = fr.fused[:0]
	if s.cfg.RadarTracking {
		matches, ud, _ := fr.sync.SpatialSyncInto(fusion.DefaultSpatialSyncConfig(), fr.dets, fr.tracks)
		fr.fused = fusion.FuseAllInto(fr.fused, matches, ud)
	} else {
		for _, dt := range fr.dets {
			fr.fused = append(fr.fused, fusion.FusedObject{Object: dt, Velocity: dt.Vel})
		}
	}
}

func (s *SoV) perceiveDetect(fr *cycleFrame) {
	fr.dets = s.det.DetectInto(fr.dets[:0], fr.t0, fr.pose)
}

func (s *SoV) perceiveTrack(fr *cycleFrame) {
	fr.tracks = s.tracker.ObserveInto(fr.t0, fr.returns, fr.tracks[:0])
	// The planner consumes the *estimated* pose. With the hardware
	// synchronizer and map-mode VIO the error is a few centimeters;
	// without synchronization it inflates per the Fig. 11 studies, and
	// the lane-keeping loop feels it.
	fr.estPose = fr.pose
	if fr.locStd > 0 {
		fr.estPose.Pos = fr.estPose.Pos.Add(mathx.Vec2{X: fr.noiseX, Y: fr.noiseY})
		fr.estPose.Heading = mathx.WrapAngle(fr.estPose.Heading + fr.noiseH)
	}
}

// planFrame runs the planning stage: lane-frame conversion, the planner,
// telemetry, and command encoding.
func (s *SoV) planFrame(fr *cycleFrame) {
	in := s.planningInput(fr)
	p := s.plan.Plan(in)
	fr.blocked = p.Blocked
	if p.Blocked {
		s.report.BlockedCycles++
		if s.obsM != nil {
			s.obsM.blocked.Inc()
		}
	}
	fr.objects = len(fr.fused)
	s.recordTrace(fr)
	s.recordSpans(fr)
	s.recordBox(fr)

	cmd := p.Cmd
	cmd.Seq = fr.seq
	frame, err := canbus.EncodeCommand(canbus.IDControlCommand, cmd)
	if err != nil {
		s.report.EncodeErrors++
		if s.obsM != nil {
			s.obsM.encodeErr.Inc()
		}
		fr.encodeOK = false
		return
	}
	fr.cmdFrame = frame
	fr.encodeOK = true
}

// planningInput converts fused perception output into lane coordinates,
// filling the frame's obstacle buffer.
func (s *SoV) planningInput(fr *cycleFrame) planning.Input {
	laneDir := fr.lane.Direction()
	laneAngle := laneDir.Angle()
	in := planning.Input{
		Speed:       fr.st.Speed,
		LaneOffset:  fr.lane.LateralOffset(fr.estPose.Pos),
		HeadingErr:  mathx.WrapAngle(fr.estPose.Heading - laneAngle),
		TargetSpeed: s.cfg.TargetSpeed,
		LaneWidth:   fr.lane.Width,
	}
	fr.obstacles = fr.obstacles[:0]
	for _, f := range fr.fused {
		worldPos := detect.ToWorld(fr.estPose, f.Object.Pos)
		rel := worldPos.Sub(fr.estPose.Pos)
		sAlong := rel.Dot(laneDir)
		if sAlong < -2 {
			continue // behind
		}
		velWorld := f.Velocity
		radius := f.Object.Radius
		if radius < 0.3 {
			radius = 0.3
		}
		fr.obstacles = append(fr.obstacles, planning.Obstacle{
			S:      sAlong,
			D:      fr.lane.LateralOffset(worldPos),
			VS:     velWorld.Dot(laneDir),
			VD:     velWorld.Dot(mathx.Vec2{X: -laneDir.Y, Y: laneDir.X}),
			Radius: radius,
		})
	}
	in.Obstacles = fr.obstacles
	return in
}
