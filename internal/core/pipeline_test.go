package core

import (
	"bytes"
	"testing"
	"time"
)

// tracedRun executes a cruise run in the given mode and returns the full
// per-cycle trace plus the report.
func tracedRun(t *testing.T, pipelined bool, dur time.Duration) (string, *Report) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Pipeline = pipelined
	s := New(cfg, CruiseScenario(3))
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(dur)
	if _, err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep
}

// TestPipelinedByteIdenticalToSerial is the determinism contract of the
// staged dataflow: the pipelined runtime must reproduce the serial control
// loop bit for bit — every trace line and every headline figure — because
// the stage split follows the RNG/shared-state boundary exactly.
func TestPipelinedByteIdenticalToSerial(t *testing.T) {
	serTrace, serRep := tracedRun(t, false, 30*time.Second)
	pipTrace, pipRep := tracedRun(t, true, 30*time.Second)
	if serTrace != pipTrace {
		t.Fatal("pipelined trace differs from serial trace")
	}
	if serRep.Cycles != pipRep.Cycles ||
		serRep.CommandsDelivered != pipRep.CommandsDelivered ||
		serRep.BlockedCycles != pipRep.BlockedCycles ||
		serRep.Collisions != pipRep.Collisions ||
		serRep.Tcomp.Mean() != pipRep.Tcomp.Mean() ||
		serRep.EndToEnd.Mean() != pipRep.EndToEnd.Mean() ||
		serRep.LateralRMSM != pipRep.LateralRMSM ||
		serRep.PipelineDepth.Mean() != pipRep.PipelineDepth.Mean() {
		t.Fatalf("pipelined report diverged:\nserial: cycles=%d delivered=%d tcomp=%v e2e=%v\npiped:  cycles=%d delivered=%d tcomp=%v e2e=%v",
			serRep.Cycles, serRep.CommandsDelivered, serRep.Tcomp.Mean(), serRep.EndToEnd.Mean(),
			pipRep.Cycles, pipRep.CommandsDelivered, pipRep.Tcomp.Mean(), pipRep.EndToEnd.Mean())
	}
}

// TestPipelinedRunReportsStageDiagnostics: a pipelined run must surface the
// wall-clock stage counters and frame-pool reuse; a serial run must not.
func TestPipelinedRunReportsStageDiagnostics(t *testing.T) {
	_, serRep := tracedRun(t, false, 10*time.Second)
	if serRep.Pipeline != nil {
		t.Fatal("serial run should not carry pipeline diagnostics")
	}
	_, pipRep := tracedRun(t, true, 10*time.Second)
	p := pipRep.Pipeline
	if p == nil {
		t.Fatal("pipelined run missing stage diagnostics")
	}
	if len(p.Stages) != 2 || p.Stages[0].Name != "perceive" || p.Stages[1].Name != "plan" {
		t.Fatalf("unexpected stages: %+v", p.Stages)
	}
	for _, st := range p.Stages {
		if st.Frames != int64(pipRep.Cycles) {
			t.Fatalf("stage %s processed %d frames, want %d", st.Name, st.Frames, pipRep.Cycles)
		}
	}
	// Steady state recycles a handful of frames; the pool must show heavy
	// reuse, not per-cycle allocation.
	if p.Pool.News > 2*pipeQueueCap+4 {
		t.Fatalf("frame pool allocated %d frames for %d cycles", p.Pool.News, pipRep.Cycles)
	}
	if p.Pool.Reuses < int64(pipRep.Cycles)/2 {
		t.Fatalf("frame pool reused only %d of %d cycles", p.Pool.Reuses, pipRep.Cycles)
	}
}

// TestPipelinedReactivePreemption replays the Eq. 1 worst case with the
// pipelined runtime: a sudden obstacle at 4.5 m — inside the proactive
// envelope, outside the braking floor — must still be caught by the
// synchronous reactive path while the pipeline is busy, with the identical
// outcome to the serial loop.
func TestPipelinedReactivePreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = true
	out := RunSuddenObstacle(cfg, 4.5, 30*time.Second)
	if !out.Reactive {
		t.Fatalf("reactive path did not preempt the busy pipeline: %+v", out)
	}
	if out.Collided {
		t.Fatalf("Eq. 1 brake-latency bound violated under -pipeline: %+v", out)
	}
	serial := RunSuddenObstacle(DefaultConfig(), 4.5, 30*time.Second)
	if out != serial {
		t.Fatalf("pipelined outcome %+v differs from serial %+v", out, serial)
	}
	// Inside the braking floor the collision stays physically guaranteed —
	// pipelining must not "rescue" an impossible case either.
	floor := RunSuddenObstacle(cfg, 2.5, 30*time.Second)
	if !floor.Collided {
		t.Fatalf("impossible avoidance succeeded under -pipeline: %+v", floor)
	}
}

// TestPipelineDepthMatchesLatencyModel: with ~165 ms compute at 10 Hz, 1-2
// earlier commands are still in flight at each capture — in both modes,
// because depth is a virtual-time property of the latency model.
func TestPipelineDepthMatchesLatencyModel(t *testing.T) {
	_, rep := tracedRun(t, true, 30*time.Second)
	if m := rep.PipelineDepth.Mean(); m < 0.8 || m > 2.5 {
		t.Fatalf("mean in-flight depth = %.2f, want ~1-2 at 10 Hz x 165 ms", m)
	}
	if rep.PipelineDepth.Max() < 1 {
		t.Fatal("no overlap observed at all")
	}
}
