package core

import (
	"bytes"
	"math"
	"runtime"
	"testing"
	"time"

	"sov/internal/platform"
)

// tracedRun executes a cruise run in the given mode and returns the full
// per-cycle trace plus the report.
func tracedRun(t *testing.T, pipelined bool, dur time.Duration) (string, *Report) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Pipeline = pipelined
	// These tests exercise the pipelined runtime itself, so keep it staged
	// even on a single-CPU host where Run would otherwise fall back.
	cfg.PipelineForce = pipelined
	s := New(cfg, CruiseScenario(3))
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s.AttachTracer(tr)
	rep := s.Run(dur)
	if _, err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep
}

// TestPipelinedByteIdenticalToSerial is the determinism contract of the
// staged dataflow: the pipelined runtime must reproduce the serial control
// loop bit for bit — every trace line and every headline figure — because
// the stage split follows the RNG/shared-state boundary exactly.
func TestPipelinedByteIdenticalToSerial(t *testing.T) {
	serTrace, serRep := tracedRun(t, false, 30*time.Second)
	pipTrace, pipRep := tracedRun(t, true, 30*time.Second)
	if serTrace != pipTrace {
		t.Fatal("pipelined trace differs from serial trace")
	}
	if serRep.Cycles != pipRep.Cycles ||
		serRep.CommandsDelivered != pipRep.CommandsDelivered ||
		serRep.BlockedCycles != pipRep.BlockedCycles ||
		serRep.Collisions != pipRep.Collisions ||
		serRep.Tcomp.Mean() != pipRep.Tcomp.Mean() ||
		serRep.EndToEnd.Mean() != pipRep.EndToEnd.Mean() ||
		serRep.LateralRMSM != pipRep.LateralRMSM ||
		serRep.PipelineDepth.Mean() != pipRep.PipelineDepth.Mean() {
		t.Fatalf("pipelined report diverged:\nserial: cycles=%d delivered=%d tcomp=%v e2e=%v\npiped:  cycles=%d delivered=%d tcomp=%v e2e=%v",
			serRep.Cycles, serRep.CommandsDelivered, serRep.Tcomp.Mean(), serRep.EndToEnd.Mean(),
			pipRep.Cycles, pipRep.CommandsDelivered, pipRep.Tcomp.Mean(), pipRep.EndToEnd.Mean())
	}
}

// TestPipelinedRunReportsStageDiagnostics: a pipelined run must surface the
// wall-clock stage counters and frame-pool reuse; a serial run must not.
func TestPipelinedRunReportsStageDiagnostics(t *testing.T) {
	_, serRep := tracedRun(t, false, 10*time.Second)
	if serRep.Pipeline != nil {
		t.Fatal("serial run should not carry pipeline diagnostics")
	}
	_, pipRep := tracedRun(t, true, 10*time.Second)
	p := pipRep.Pipeline
	if p == nil {
		t.Fatal("pipelined run missing stage diagnostics")
	}
	if len(p.Stages) != 2 || p.Stages[0].Name != "perceive" || p.Stages[1].Name != "plan" {
		t.Fatalf("unexpected stages: %+v", p.Stages)
	}
	for _, st := range p.Stages {
		if st.Frames != int64(pipRep.Cycles) {
			t.Fatalf("stage %s processed %d frames, want %d", st.Name, st.Frames, pipRep.Cycles)
		}
	}
	// Steady state recycles a handful of frames; the pool must show heavy
	// reuse, not per-cycle allocation.
	if p.Pool.News > 2*pipeQueueCap+4 {
		t.Fatalf("frame pool allocated %d frames for %d cycles", p.Pool.News, pipRep.Cycles)
	}
	if p.Pool.Reuses < int64(pipRep.Cycles)/2 {
		t.Fatalf("frame pool reused only %d of %d cycles", p.Pool.Reuses, pipRep.Cycles)
	}
}

// TestPipelinedReactivePreemption replays the Eq. 1 worst case with the
// pipelined runtime: a sudden obstacle at 4.5 m — inside the proactive
// envelope, outside the braking floor — must still be caught by the
// synchronous reactive path while the pipeline is busy, with the identical
// outcome to the serial loop.
func TestPipelinedReactivePreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = true
	cfg.PipelineForce = true
	out := RunSuddenObstacle(cfg, 4.5, 30*time.Second)
	if !out.Reactive {
		t.Fatalf("reactive path did not preempt the busy pipeline: %+v", out)
	}
	if out.Collided {
		t.Fatalf("Eq. 1 brake-latency bound violated under -pipeline: %+v", out)
	}
	serial := RunSuddenObstacle(DefaultConfig(), 4.5, 30*time.Second)
	if out != serial {
		t.Fatalf("pipelined outcome %+v differs from serial %+v", out, serial)
	}
	// Inside the braking floor the collision stays physically guaranteed —
	// pipelining must not "rescue" an impossible case either.
	floor := RunSuddenObstacle(cfg, 2.5, 30*time.Second)
	if !floor.Collided {
		t.Fatalf("impossible avoidance succeeded under -pipeline: %+v", floor)
	}
}

// TestPipelineSingleCPUFallback: on a GOMAXPROCS=1 host the staged dataflow
// cannot overlap and only adds handoff overhead, so Run must fall back to
// the serial loop — recording the decision — unless PipelineForce is set.
// Virtual-time results are byte-identical in every mode, so the fallback is
// purely a wall-clock optimization.
func TestPipelineSingleCPUFallback(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	cfg := DefaultConfig()
	cfg.Pipeline = true
	rep := New(cfg, CruiseScenario(3)).Run(5 * time.Second)
	if rep.Pipeline != nil {
		t.Fatal("single-CPU run kept the staged dataflow without PipelineForce")
	}
	if rep.PipelineDecision != "serial (pipeline fallback: GOMAXPROCS=1)" {
		t.Fatalf("fallback decision not recorded: %q", rep.PipelineDecision)
	}

	cfg.PipelineForce = true
	rep = New(cfg, CruiseScenario(3)).Run(5 * time.Second)
	if rep.Pipeline == nil {
		t.Fatal("PipelineForce did not keep the staged dataflow on a single CPU")
	}
	if rep.PipelineDecision != "pipelined" {
		t.Fatalf("forced decision not recorded: %q", rep.PipelineDecision)
	}

	cfg = DefaultConfig()
	cfg.Pipeline = false
	rep = New(cfg, CruiseScenario(3)).Run(5 * time.Second)
	if rep.PipelineDecision != "serial" {
		t.Fatalf("serial decision not recorded: %q", rep.PipelineDecision)
	}
}

// TestQuantKnobScalesSceneUnderstanding: -quant must divide the dense
// scene-understanding draws by platform.QuantSpeedup without disturbing any
// other stage (the RNG stream is shared, so every other draw is identical).
func TestQuantKnobScalesSceneUnderstanding(t *testing.T) {
	base := DefaultConfig()
	quant := base
	quant.Quant = true
	refRep := New(base, CruiseScenario(3)).Run(20 * time.Second)
	qRep := New(quant, CruiseScenario(3)).Run(20 * time.Second)

	if !qRep.QuantizedPerception || refRep.QuantizedPerception {
		t.Fatal("QuantizedPerception flag not recorded")
	}
	if refRep.Cycles != qRep.Cycles {
		t.Fatalf("cycle count changed under -quant: %d vs %d", refRep.Cycles, qRep.Cycles)
	}
	for _, c := range []struct {
		name     string
		ref, q   float64
		expected float64
	}{
		{"depth", refRep.Depth.Mean(), qRep.Depth.Mean(), platform.QuantSpeedup},
		{"detection", refRep.Detection.Mean(), qRep.Detection.Mean(), platform.QuantSpeedup},
		{"sensing", refRep.Sensing.Mean(), qRep.Sensing.Mean(), 1},
		{"planning", refRep.Planning.Mean(), qRep.Planning.Mean(), 1},
		{"localization", refRep.Localization.Mean(), qRep.Localization.Mean(), 1},
	} {
		if ratio := c.ref / c.q; math.Abs(ratio-c.expected) > 0.02 {
			t.Fatalf("%s mean ratio = %.3f, want %.3f", c.name, ratio, c.expected)
		}
	}
	if qRep.Tcomp.Mean() >= refRep.Tcomp.Mean() {
		t.Fatal("quantized Tcomp did not improve")
	}
}

// TestPipelineDepthMatchesLatencyModel: with ~165 ms compute at 10 Hz, 1-2
// earlier commands are still in flight at each capture — in both modes,
// because depth is a virtual-time property of the latency model.
func TestPipelineDepthMatchesLatencyModel(t *testing.T) {
	_, rep := tracedRun(t, true, 30*time.Second)
	if m := rep.PipelineDepth.Mean(); m < 0.8 || m > 2.5 {
		t.Fatalf("mean in-flight depth = %.2f, want ~1-2 at 10 Hz x 165 ms", m)
	}
	if rep.PipelineDepth.Max() < 1 {
		t.Fatal("no overlap observed at all")
	}
}
