package core

import (
	"testing"
	"time"

	"sov/internal/sim"
	"sov/internal/vehicle"
	"sov/internal/world"
)

func TestRouteFollowingCampusLoop(t *testing.T) {
	// The rectangular campus loop: the vehicle must negotiate the 90°
	// corners by handing over to each leg's lane frame in turn.
	cfg := DefaultConfig()
	cfg.TargetSpeed = 3.0 // corner-appropriate speed
	w := world.CampusLoop(80, sim.NewRNG(4))
	s := New(cfg, w)
	var far float64
	s.OnPhysicsStep = func(_ time.Duration, st vehicle.State) bool {
		p := s.route.Progress(s.route.ActiveLane(st.Pos), st.Pos)
		if p > far {
			far = p
		}
		return false
	}
	rep := s.Run(70 * time.Second)
	if rep.Collisions != 0 {
		t.Fatalf("loop collision, clearance %.2f", rep.MinClearance)
	}
	// 70 s at ~3 m/s is ~210 m: at least two legs (160 m) completed.
	if far < 150 {
		t.Fatalf("progress = %.0f m, expected to negotiate corners", far)
	}
	if rep.LateralRMSM > 1.2 {
		t.Fatalf("lane keeping on the loop too loose: %.2f m RMS", rep.LateralRMSM)
	}
}
