package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sov/internal/models"
	"sov/internal/pipeline"
	"sov/internal/platform"
	"sov/internal/sched"
	"sov/internal/stats"
)

// PipelineStats carries the wall-clock diagnostics of a pipelined run: per-
// stage busy/wait/occupancy counters and frame-pool reuse. Virtual-time
// metrics live in the Report proper; these describe only host execution.
type PipelineStats struct {
	Stages []pipeline.StageStats
	Pool   pipeline.PoolStats
}

// Report is the run's characterization output: the Fig. 10 latency
// distributions plus safety/throughput counters.
type Report struct {
	// Stage latency samples in milliseconds.
	Tcomp        *stats.Sample
	Sensing      *stats.Sample
	Perception   *stats.Sample
	Planning     *stats.Sample
	Depth        *stats.Sample
	Detection    *stats.Sample
	Tracking     *stats.Sample
	Localization *stats.Sample
	// EndToEnd includes Tdata and Tmech (Fig. 2's pre-braking chain).
	EndToEnd *stats.Sample
	// PipelineDepth samples, at each capture, how many earlier commands are
	// still in flight (captured but undelivered) — the virtual-time overlap
	// the staged dataflow exploits. Identical in serial and pipelined runs.
	PipelineDepth *stats.Sample

	// Pipeline holds wall-clock stage/pool diagnostics when the run used
	// the pipelined runtime; nil for serial runs.
	Pipeline *PipelineStats
	// PipelineDecision records how Run resolved the control-loop execution
	// mode: "serial", "pipelined", or the single-CPU fallback note.
	PipelineDecision string
	// QuantizedPerception records whether the run drew scene-understanding
	// latencies from the int8 fixed-point operating points (-quant).
	QuantizedPerception bool
	// Sched holds the online scheduler's cumulative decision record when the
	// run attached it (-sched); nil otherwise.
	Sched *sched.Stats

	Cycles              int
	CommandsDelivered   int
	BlockedCycles       int
	ReactiveEngagements int
	EncodeErrors        int
	Collisions          int
	MinClearance        float64
	// ProactiveFraction is the share of driving time NOT under a reactive
	// override (the paper: > 90% in the field).
	ProactiveFraction float64
	// ThroughputHz is delivered commands per second.
	ThroughputHz float64
	// DistanceM is the odometer distance covered.
	DistanceM float64
	// ADEnergyWh is the energy consumed by the autonomous-driving system
	// over the run (Table I's PAD integrated over the duration).
	ADEnergyWh float64
	// BatteryShare is ADEnergyWh as a fraction of the 6 kWh pack.
	BatteryShare float64
	// LateralRMSM is the root-mean-square lane-keeping error in meters —
	// the closed-loop navigation-quality metric the synchronization and
	// localization choices feed into.
	LateralRMSM float64

	collided      map[int]bool
	reactiveSteps int
	physSteps     int
	lateralSumSq  float64

	// Lean mode (Config.LeanReport): per-cycle latencies fold into
	// streaming accumulators instead of the raw Samples above, so a
	// thousand-vehicle fleet does not retain every cycle of every vehicle.
	// The observation order is the serial cycle order either way, so the
	// accumulated means are deterministic.
	lean      bool
	leanTcomp stats.Welford
	leanE2E   stats.Welford
	leanDepth stats.Welford
}

func (r *Report) init(lean bool) {
	r.lean = lean
	if !lean {
		r.Tcomp = stats.NewSample()
		r.Sensing = stats.NewSample()
		r.Perception = stats.NewSample()
		r.Planning = stats.NewSample()
		r.Depth = stats.NewSample()
		r.Detection = stats.NewSample()
		r.Tracking = stats.NewSample()
		r.Localization = stats.NewSample()
		r.EndToEnd = stats.NewSample()
		r.PipelineDepth = stats.NewSample()
	}
	r.MinClearance = math.Inf(1)
	r.collided = make(map[int]bool)
}

func ms(d time.Duration) float64 { return d.Seconds() * 1000 }

func (r *Report) observe(d latencyDraw) {
	r.Cycles++
	if r.lean {
		r.leanTcomp.Observe(ms(d.Tcomp))
		return
	}
	r.Tcomp.Observe(ms(d.Tcomp))
	r.Sensing.Observe(ms(d.Sensing))
	r.Perception.Observe(ms(d.Perception))
	r.Planning.Observe(ms(d.Planning))
	r.Depth.Observe(ms(d.Depth))
	r.Detection.Observe(ms(d.Detection))
	r.Tracking.Observe(ms(d.Tracking))
	r.Localization.Observe(ms(d.Localization))
}

func (r *Report) observeE2E(total time.Duration) {
	if r.lean {
		r.leanE2E.Observe(ms(total))
		return
	}
	r.EndToEnd.Observe(ms(total))
}

func (r *Report) observeDepth(inflight int) {
	if r.lean {
		r.leanDepth.Observe(float64(inflight))
		return
	}
	r.PipelineDepth.Observe(float64(inflight))
}

// MeanTcompMS returns the mean per-cycle computing latency in milliseconds,
// from whichever store the report keeps (raw samples or the lean
// accumulator).
func (r *Report) MeanTcompMS() float64 {
	if r.lean {
		return r.leanTcomp.Mean()
	}
	return r.Tcomp.Mean()
}

// MeanE2EMS returns the mean end-to-end latency (Tcomp+Tdata+Tmech) in
// milliseconds.
func (r *Report) MeanE2EMS() float64 {
	if r.lean {
		return r.leanE2E.Mean()
	}
	return r.EndToEnd.Mean()
}

// MeanPipelineDepth returns the mean number of commands in flight at
// capture.
func (r *Report) MeanPipelineDepth() float64 {
	if r.lean {
		return r.leanDepth.Mean()
	}
	return r.PipelineDepth.Mean()
}

func (r *Report) finish(duration time.Duration, s *SoV) {
	if r.physSteps > 0 {
		r.ProactiveFraction = 1 - float64(r.reactiveSteps)/float64(r.physSteps)
	}
	if duration > 0 {
		r.ThroughputHz = float64(r.CommandsDelivered) / duration.Seconds()
	}
	r.DistanceM = s.veh.Odometer()
	padW := models.DefaultPowerBudget().TotalW()
	r.ADEnergyWh = padW * duration.Hours()
	em := models.DefaultEnergyModel()
	r.BatteryShare = r.ADEnergyWh / (em.CapacityKWh * 1000)
	if r.physSteps > 0 {
		r.LateralRMSM = math.Sqrt(r.lateralSumSq / float64(r.physSteps))
	}
}

// ComputeShare returns mean Tcomp / mean end-to-end (the paper: 88%).
func (r *Report) ComputeShare() float64 {
	if r.MeanE2EMS() == 0 {
		return 0
	}
	return r.MeanTcompMS() / r.MeanE2EMS()
}

// SensingShare returns mean sensing / mean Tcomp (the paper: ≈50%). Lean
// reports do not retain the per-stage breakdown and return zero.
func (r *Report) SensingShare() float64 {
	if r.lean || r.Tcomp.Mean() == 0 {
		return 0
	}
	return r.Sensing.Mean() / r.Tcomp.Mean()
}

// Render formats the Fig. 10-style characterization tables.
func (r *Report) Render() string {
	if r.lean {
		return r.renderLean()
	}
	var b strings.Builder
	row := func(name string, s *stats.Sample) {
		fmt.Fprintf(&b, "%-14s best=%7.1f  mean=%7.1f  p99=%7.1f  max=%7.1f ms\n",
			name, s.Min(), s.Mean(), s.Quantile(0.99), s.Max())
	}
	fmt.Fprintf(&b, "computing latency (Tcomp) over %d cycles:\n", r.Cycles)
	row("  sensing", r.Sensing)
	row("  perception", r.Perception)
	row("  planning", r.Planning)
	row("  total", r.Tcomp)
	fmt.Fprintf(&b, "perception tasks (average case):\n")
	row("  depth", r.Depth)
	row("  detection", r.Detection)
	row("  tracking", r.Tracking)
	row("  localization", r.Localization)
	fmt.Fprintf(&b, "end-to-end (=Tcomp+Tdata+Tmech): mean=%.1f ms, computing share=%.0f%%\n",
		r.EndToEnd.Mean(), 100*r.ComputeShare())
	fmt.Fprintf(&b, "sensing share of Tcomp: %.0f%%\n", 100*r.SensingShare())
	fmt.Fprintf(&b, "throughput: %.1f Hz commands, proactive %.1f%% of time, %d reactive engagements\n",
		r.ThroughputHz, 100*r.ProactiveFraction, r.ReactiveEngagements)
	fmt.Fprintf(&b, "safety: %d collisions, min clearance %.2f m, distance %.0f m\n",
		r.Collisions, r.MinClearance, r.DistanceM)
	fmt.Fprintf(&b, "energy: AD system used %.1f Wh (%.2f%% of the 6 kWh pack)\n",
		r.ADEnergyWh, 100*r.BatteryShare)
	fmt.Fprintf(&b, "navigation: lane-keeping RMS %.3f m\n", r.LateralRMSM)
	fmt.Fprintf(&b, "pipeline depth (commands in flight at capture): mean=%.2f max=%.0f\n",
		r.PipelineDepth.Mean(), r.PipelineDepth.Max())
	if r.PipelineDecision != "" {
		fmt.Fprintf(&b, "control loop: %s\n", r.PipelineDecision)
	}
	if r.QuantizedPerception {
		fmt.Fprintf(&b, "perception compute: int8 fixed-point operating points (x%.1f)\n", platform.QuantSpeedup)
	}
	if sc := r.Sched; sc != nil {
		fmt.Fprintf(&b, "online scheduler: mapping=%s quant=%v sticky=%v temp=%.1fC windows=%d remaps=%d op-switches=%d rpr-swaps=%d (%.1f ms)\n",
			sc.Mapping, sc.Quantized, sc.Sticky, sc.TempC, sc.Windows, sc.Remaps, sc.OpSwitches, sc.Swaps, ms(sc.SwapTotal))
	}
	if p := r.Pipeline; p != nil {
		fmt.Fprintf(&b, "pipelined runtime (wall clock):\n")
		for _, st := range p.Stages {
			busy := st.Busy.Seconds() * 1000
			wait := st.Wait.Seconds() * 1000
			util := 0.0
			if tot := busy + wait; tot > 0 {
				util = 100 * busy / tot
			}
			fmt.Fprintf(&b, "  %-9s frames=%d busy=%.1fms wait=%.1fms util=%.0f%% queue: mean occ=%.2f max=%d stalls=%d\n",
				st.Name, st.Frames, busy, wait, util,
				st.Queue.MeanOcc, st.Queue.MaxOcc, st.Queue.FullStalls)
		}
		fmt.Fprintf(&b, "  frame pool: %d allocated, %d reused\n", p.Pool.News, p.Pool.Reuses)
	}
	return b.String()
}

// renderLean is the compact characterization of a lean report: means and
// counters only, no distributions.
func (r *Report) renderLean() string {
	var b strings.Builder
	fmt.Fprintf(&b, "computing latency (Tcomp) over %d cycles: mean=%.1f ms (lean report, no distribution)\n",
		r.Cycles, r.leanTcomp.Mean())
	fmt.Fprintf(&b, "end-to-end (=Tcomp+Tdata+Tmech): mean=%.1f ms, computing share=%.0f%%\n",
		r.leanE2E.Mean(), 100*r.ComputeShare())
	fmt.Fprintf(&b, "throughput: %.1f Hz commands, proactive %.1f%% of time, %d reactive engagements\n",
		r.ThroughputHz, 100*r.ProactiveFraction, r.ReactiveEngagements)
	fmt.Fprintf(&b, "safety: %d collisions, min clearance %.2f m, distance %.0f m\n",
		r.Collisions, r.MinClearance, r.DistanceM)
	fmt.Fprintf(&b, "energy: AD system used %.1f Wh (%.2f%% of the 6 kWh pack)\n",
		r.ADEnergyWh, 100*r.BatteryShare)
	fmt.Fprintf(&b, "navigation: lane-keeping RMS %.3f m\n", r.LateralRMSM)
	fmt.Fprintf(&b, "pipeline depth (commands in flight at capture): mean=%.2f\n", r.leanDepth.Mean())
	if r.PipelineDecision != "" {
		fmt.Fprintf(&b, "control loop: %s\n", r.PipelineDecision)
	}
	if sc := r.Sched; sc != nil {
		fmt.Fprintf(&b, "online scheduler: mapping=%s quant=%v sticky=%v temp=%.1fC windows=%d remaps=%d op-switches=%d rpr-swaps=%d (%.1f ms)\n",
			sc.Mapping, sc.Quantized, sc.Sticky, sc.TempC, sc.Windows, sc.Remaps, sc.OpSwitches, sc.Swaps, ms(sc.SwapTotal))
	}
	return b.String()
}

// RenderHistogram draws the Tcomp distribution as a terminal bar chart
// (the visual form of Fig. 10a).
func (r *Report) RenderHistogram(bins, width int) string {
	if r.lean || r.Tcomp.N() == 0 {
		return "(no cycles)\n"
	}
	lo := r.Tcomp.Min()
	hi := r.Tcomp.Max() + 1
	h := stats.NewHistogram(lo, hi, bins)
	for q := 0.0; q <= 1.0; q += 1.0 / float64(r.Tcomp.N()) {
		h.Observe(r.Tcomp.Quantile(q))
	}
	return "Tcomp distribution (ms):\n" + h.Render(width)
}
