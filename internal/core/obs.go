package core

import (
	"time"

	"sov/internal/nn"
	"sov/internal/obs"
	"sov/internal/parallel"
)

// This file wires the unified telemetry layer (internal/obs) into the
// control loop. The split follows the determinism boundary documented in
// dataflow.go: everything recorded per cycle derives from frame snapshots
// (capture-time values), so metrics, spans, and flight-recorder content on
// the virtual track are byte-identical across worker counts and control-loop
// modes. Host wall-clock diagnostics (pipeline stage utilization, parallel
// substrate scheduling) are published as ClassHost metrics and on the
// PIDHost span track, outside the byte-identity contract.

// Span thread lanes on the virtual-time track, one per control-loop stage.
// The order mirrors the causal chain: capture → sensing → perception
// {depth, detect, track, vio} → planning → deliver (CAN) → actuate (Tmech).
const (
	tidCapture = 1 + iota
	tidSensing
	tidPerception
	tidDepth
	tidDetect
	tidTrack
	tidVIO
	tidPlanning
	tidDeliver
	tidActuate
	// tidSched carries the online scheduler's decision events; the lane is
	// only declared when the scheduler is attached, so trace output without
	// -sched is unchanged.
	tidSched
)

// Span names are package constants so the hot record path never builds
// strings (see obs.SpanWriter's allocation contract).
const (
	spanCapture    = "capture"
	spanSensing    = "sensing"
	spanPerception = "perception"
	spanDepth      = "depth"
	spanDetect     = "detect"
	spanTrack      = "track"
	spanVIO        = "vio"
	spanPlanning   = "planning"
	spanDeliver    = "deliver"
	spanActuate    = "actuate"
	spanSched      = "sched"
	spanSchedRemap = "sched-remap"
	spanSchedOp    = "sched-op-switch"
	spanSchedSwap  = "sched-rpr-swap"
)

// Host-track stage lanes (one per pipeline stage, in Runtime order).
const tidHostStageBase = 1

// coreMetrics bundles the SoV's registry handles. The steady-state handles
// are created at attach time; run-summary metrics register lazily at the
// first publish so repeated Runs on one SoV update rather than re-register.
type coreMetrics struct {
	reg *obs.Registry

	// Steady-state instruments (touched every cycle; allocation-free).
	cycles     *obs.Counter
	delivered  *obs.Counter
	blocked    *obs.Counter
	reactive   *obs.Counter
	encodeErr  *obs.Counter
	collisions *obs.Counter
	tcompMs    *obs.Histogram
	e2eMs      *obs.Histogram
	inflightH  *obs.Histogram

	// Scheduler decision counters; nil unless the scheduler is attached so
	// the exposition without -sched is byte-stable against its goldens.
	schedRemaps     *obs.Counter
	schedOpSwitches *obs.Counter
	schedSwaps      *obs.Counter

	// Lazily registered run-summary handles, plus the previously published
	// totals so cumulative sources (ECU, rigs, bus) publish deltas and stay
	// monotone counters across repeated Runs.
	counters map[string]*obs.Counter
	gauges   map[string]*obs.Gauge
	prev     map[string]int64

	// par0 scopes the process-wide parallel substrate counters to this run.
	par0 parallel.Counters
	// nn0 scopes the process-wide quantized kernel dispatch counters likewise.
	nn0 nn.KernelCounters
}

// AttachMetrics registers the control loop's steady-state instruments on reg
// and arranges for run-summary metrics (safety, energy, subsystem activity,
// host diagnostics) to be published at the end of each Run. Call before Run.
func (s *SoV) AttachMetrics(reg *obs.Registry) {
	m := &coreMetrics{
		reg:      reg,
		counters: make(map[string]*obs.Counter),
		gauges:   make(map[string]*obs.Gauge),
		prev:     make(map[string]int64),
	}
	m.cycles = reg.Counter("sov_cycles_total", "control cycles captured", obs.ClassVirtual)
	m.delivered = reg.Counter("sov_commands_delivered_total", "commands accepted by the ECU", obs.ClassVirtual)
	m.blocked = reg.Counter("sov_blocked_cycles_total", "cycles where the planner found no feasible trajectory", obs.ClassVirtual)
	m.reactive = reg.Counter("sov_reactive_engagements_total", "reactive-path safety engagements", obs.ClassVirtual)
	m.encodeErr = reg.Counter("sov_encode_errors_total", "commands that failed CAN encoding", obs.ClassVirtual)
	m.collisions = reg.Counter("sov_collisions_total", "obstacle contacts", obs.ClassVirtual)
	m.tcompMs = reg.Histogram("sov_tcomp_ms", "per-cycle computing latency Tcomp (ms)", obs.ClassVirtual, 0, 800, 40)
	m.e2eMs = reg.Histogram("sov_e2e_ms", "end-to-end latency Tcomp+Tdata+Tmech (ms)", obs.ClassVirtual, 0, 800, 40)
	m.inflightH = reg.Histogram("sov_inflight_commands", "commands in flight at capture (virtual pipeline depth)", obs.ClassVirtual, 0, 8, 8)
	if s.sched != nil {
		m.schedRemaps = reg.Counter("sov_sched_remaps_total", "online scheduler task remappings", obs.ClassVirtual)
		m.schedOpSwitches = reg.Counter("sov_sched_op_switches_total", "online scheduler quant/float operating-point switches", obs.ClassVirtual)
		m.schedSwaps = reg.Counter("sov_sched_rpr_swaps_total", "RPR bitstream swaps charged by the scheduler", obs.ClassVirtual)
	}
	s.obsM = m
}

// AttachSpans streams per-cycle stage spans of subsequent runs to sw. Call
// before Run; the caller owns Close.
func (s *SoV) AttachSpans(sw *obs.SpanWriter) {
	sw.DeclareProcess(obs.PIDVirtual, "sov virtual time")
	sw.DeclareThread(obs.PIDVirtual, tidCapture, spanCapture)
	sw.DeclareThread(obs.PIDVirtual, tidSensing, spanSensing)
	sw.DeclareThread(obs.PIDVirtual, tidPerception, spanPerception)
	sw.DeclareThread(obs.PIDVirtual, tidDepth, spanDepth)
	sw.DeclareThread(obs.PIDVirtual, tidDetect, spanDetect)
	sw.DeclareThread(obs.PIDVirtual, tidTrack, spanTrack)
	sw.DeclareThread(obs.PIDVirtual, tidVIO, spanVIO)
	sw.DeclareThread(obs.PIDVirtual, tidPlanning, spanPlanning)
	sw.DeclareThread(obs.PIDVirtual, tidDeliver, spanDeliver)
	sw.DeclareThread(obs.PIDVirtual, tidActuate, spanActuate)
	if s.sched != nil {
		sw.DeclareThread(obs.PIDVirtual, tidSched, spanSched)
	}
	s.spans = sw
}

// AttachFlightRecorder feeds every control cycle of subsequent runs into the
// recorder's ring and raises its anomaly triggers. Call before Run; the
// caller owns Close.
func (s *SoV) AttachFlightRecorder(f *obs.FlightRecorder) { s.box = f }

// observeCycleMetrics records the capture-time steady-state metrics. Called
// at the end of captureInto, on the engine thread.
//
//sov:hotpath
func (s *SoV) observeCycleMetrics(fr *cycleFrame) {
	m := s.obsM
	if m == nil {
		return
	}
	m.cycles.Inc()
	m.tcompMs.Observe(ms(fr.d.Tcomp))
	m.inflightH.Observe(float64(fr.inflight))
	if m.schedRemaps != nil {
		if fr.schedRemap {
			m.schedRemaps.Inc()
		}
		if fr.schedOpSwitch {
			m.schedOpSwitches.Inc()
		}
		if fr.schedSwap > 0 {
			m.schedSwaps.Inc()
		}
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// observeE2E files one cycle's end-to-end latency with the report and, when
// attached, the metrics registry.
func (s *SoV) observeE2E(total time.Duration) {
	s.report.observeE2E(total)
	if s.obsM != nil {
		s.obsM.e2eMs.Observe(ms(total))
	}
}

// recordSpans emits one cycle's stage spans from frame snapshots. Runs on
// the plan stage (the only SpanWriter caller during a run), so pipelined and
// serial modes produce identical event sets; the writer's sort-at-Close
// keeps each lane monotonic regardless of latency overlap between cycles.
//
//sov:hotpath
func (s *SoV) recordSpans(fr *cycleFrame) {
	sw := s.spans
	if sw == nil {
		return
	}
	t0 := fr.t0
	c := fr.cycle
	// Capture is instantaneous in virtual time: a zero-duration anchor
	// carrying the cycle id.
	sw.Span(obs.PIDVirtual, tidCapture, spanCapture, "", c, t0, 0)
	sw.Span(obs.PIDVirtual, tidSensing, spanSensing, spanCapture, c, t0, fr.d.Sensing)
	pStart := t0 + fr.d.Sensing
	sw.Span(obs.PIDVirtual, tidPerception, spanPerception, spanSensing, c, pStart, fr.d.Perception)
	// Perception's concurrent leaves: depth and detect start with the stage;
	// track chains serially after detect; vio (localization) races the
	// scene-understanding group (latencyModel.draw).
	sw.Span(obs.PIDVirtual, tidDepth, spanDepth, spanPerception, c, pStart, fr.d.Depth)
	sw.Span(obs.PIDVirtual, tidDetect, spanDetect, spanPerception, c, pStart, fr.d.Detection)
	sw.Span(obs.PIDVirtual, tidTrack, spanTrack, spanPerception, c, pStart+fr.d.Detection, fr.d.Tracking)
	sw.Span(obs.PIDVirtual, tidVIO, spanVIO, spanPerception, c, pStart, fr.d.Localization)
	sw.Span(obs.PIDVirtual, tidPlanning, spanPlanning, spanPerception, c, pStart+fr.d.Perception, fr.d.Planning)
	sw.Span(obs.PIDVirtual, tidDeliver, spanDeliver, spanPlanning, c, t0+fr.d.Tcomp, fr.tdata)
	sw.Span(obs.PIDVirtual, tidActuate, spanActuate, spanDeliver, c, t0+fr.d.Tcomp+fr.tdata, s.cfg.Vehicle.MechLatency)
	// Scheduler decision events, snapshotted into the frame at capture so
	// this (plan-stage) emitter stays the only SpanWriter caller.
	if fr.schedRemap {
		sw.Span(obs.PIDVirtual, tidSched, spanSchedRemap, spanCapture, c, t0, 0)
	}
	if fr.schedOpSwitch {
		sw.Span(obs.PIDVirtual, tidSched, spanSchedOp, spanCapture, c, t0, 0)
	}
	if fr.schedSwap > 0 {
		sw.Span(obs.PIDVirtual, tidSched, spanSchedSwap, spanCapture, c, t0, fr.schedSwap)
	}
}

// recordBox files one cycle with the flight recorder. Runs on the plan
// stage; all fields are capture-time snapshots, so ring content at any
// virtual time is mode-independent.
//
//sov:hotpath
func (s *SoV) recordBox(fr *cycleFrame) {
	if s.box == nil {
		return
	}
	s.box.Record(obs.CycleRecord{
		Cycle:        fr.cycle,
		TMs:          fr.t0.Seconds() * 1000,
		X:            fr.st.Pos.X,
		Y:            fr.st.Pos.Y,
		Speed:        fr.st.Speed,
		SensingMs:    ms(fr.d.Sensing),
		PerceptionMs: ms(fr.d.Perception),
		PlanningMs:   ms(fr.d.Planning),
		TcompMs:      ms(fr.d.Tcomp),
		Objects:      fr.objects,
		Blocked:      fr.blocked,
		Reactive:     fr.overrideActive,
		InFlight:     fr.inflight,
	})
}

// counterSet publishes a cumulative total under name, registering the
// counter on first use and adding only the delta since the last publish so
// the metric stays monotone across repeated Runs.
func (m *coreMetrics) counterSet(name, help string, class obs.Class, total int64) {
	c := m.counters[name]
	if c == nil {
		c = m.reg.Counter(name, help, class)
		m.counters[name] = c
	}
	if d := total - m.prev[name]; d > 0 {
		c.Add(d)
	}
	m.prev[name] = total
}

// gaugeSet publishes a point-in-time value, registering on first use.
func (m *coreMetrics) gaugeSet(name, help string, class obs.Class, v float64) {
	g := m.gauges[name]
	if g == nil {
		g = m.reg.Gauge(name, help, class)
		m.gauges[name] = g
	}
	g.Set(v)
}

// publishRunMetrics files the run-summary metrics after report.finish: the
// virtual-time safety/energy/subsystem totals, then the host-class pipeline
// and parallel-substrate diagnostics. Cold path — runs once per Run.
func (s *SoV) publishRunMetrics() {
	m := s.obsM
	if m == nil {
		return
	}
	r := &s.report

	// Vehicle + safety summary (virtual).
	m.gaugeSet("sov_distance_m", "odometer distance covered", obs.ClassVirtual, r.DistanceM)
	m.gaugeSet("sov_min_clearance_m", "closest obstacle approach over the run", obs.ClassVirtual, r.MinClearance)
	m.gaugeSet("sov_lateral_rms_m", "lane-keeping RMS error", obs.ClassVirtual, r.LateralRMSM)
	m.gaugeSet("sov_proactive_fraction", "share of driving time not under reactive override", obs.ClassVirtual, r.ProactiveFraction)
	m.gaugeSet("sov_ad_energy_wh", "autonomous-driving system energy over the run", obs.ClassVirtual, r.ADEnergyWh)
	m.gaugeSet("sov_battery_soc", "battery state of charge at end of run", obs.ClassVirtual, s.battery.SoC)

	// Online scheduler summary (virtual: the thermal projection is a pure
	// function of virtual-time duty EWMAs).
	if s.sched != nil {
		m.gaugeSet("sov_sched_temp_c", "scheduler float-equivalent steady temperature projection", obs.ClassVirtual, s.sched.TempC())
		m.gaugeSet("sov_sched_quantized", "current operating point (1 = int8)", obs.ClassVirtual, b2f(s.sched.Quantized()))
	}

	// ECU (virtual): every state transition happens at a virtual-time event.
	frames, overrides, rejected := s.ecu.Stats()
	m.counterSet("sov_ecu_frames_total", "CAN frames processed by the ECU", obs.ClassVirtual, int64(frames))
	m.counterSet("sov_ecu_overrides_total", "reactive override frames accepted", obs.ClassVirtual, int64(overrides))
	m.counterSet("sov_ecu_rejected_total", "malformed frames dropped by the ECU", obs.ClassVirtual, int64(rejected))

	// CAN segment (virtual).
	bs := s.bus.Stats()
	m.counterSet("sov_can_frames_submitted_total", "frames queued for bus arbitration", obs.ClassVirtual, bs.Submitted)
	m.counterSet("sov_can_arbitration_windows_total", "arbitration rounds carrying frames", obs.ClassVirtual, bs.Windows)
	m.counterSet("sov_can_arbitration_deferred_total", "frames that lost arbitration and waited", obs.ClassVirtual, bs.Deferred)
	m.counterSet("sov_can_command_queries_total", "per-cycle command latency evaluations", obs.ClassVirtual, bs.CommandQueries)

	// Sensor rigs (virtual: engine-thread-only, virtual-time ordered).
	rs := s.radarRig.Stats()
	m.counterSet("sov_radar_scans_total", "per-unit radar scans", obs.ClassVirtual, rs.Scans)
	m.counterSet("sov_radar_echoes_total", "merged radar returns", obs.ClassVirtual, rs.Echoes)
	m.counterSet("sov_radar_sector_queries_total", "radar reactive-sector queries", obs.ClassVirtual, rs.SectorQueries)
	ss := s.sonarRig.Stats()
	m.counterSet("sov_sonar_pings_total", "sonar pings issued", obs.ClassVirtual, ss.Pings)
	m.counterSet("sov_sonar_sector_queries_total", "sonar reactive-sector queries", obs.ClassVirtual, ss.SectorQueries)

	// Parallel substrate (host: the pool/inline split depends on scheduling).
	par := parallel.CounterSnapshot()
	m.counterSet("sov_parallel_runs_total", "parallel fan-out invocations this process", obs.ClassHost, par.Runs-m.par0.Runs+m.prev["sov_parallel_runs_total"])
	m.counterSet("sov_parallel_tiles_total", "tiles executed across all fan-outs", obs.ClassHost, par.Tiles-m.par0.Tiles+m.prev["sov_parallel_tiles_total"])
	m.counterSet("sov_parallel_pool_tiles_total", "tiles claimed via the shared pool queue", obs.ClassHost, par.PoolTiles-m.par0.PoolTiles+m.prev["sov_parallel_pool_tiles_total"])
	m.par0 = par

	// Quantized kernel dispatch (host: backend choice is a per-shape
	// performance decision, not part of the virtual-time contract).
	kc := nn.KernelCounterSnapshot()
	m.counterSet("sov_qconv_gemm_dispatches_total", "QConv2D calls routed to the im2col GEMM backend", obs.ClassHost, kc.GEMMDispatches-m.nn0.GEMMDispatches+m.prev["sov_qconv_gemm_dispatches_total"])
	m.counterSet("sov_qconv_direct_dispatches_total", "QConv2D calls routed to the direct SWAR kernel", obs.ClassHost, kc.DirectDispatches-m.nn0.DirectDispatches+m.prev["sov_qconv_direct_dispatches_total"])
	m.counterSet("sov_qnn_batch_images_total", "images processed through batched network forwards", obs.ClassHost, kc.BatchImages-m.nn0.BatchImages+m.prev["sov_qnn_batch_images_total"])
	m.nn0 = kc

	// Pipelined runtime (host wall-clock) when the run used it.
	if p := r.Pipeline; p != nil {
		for _, st := range p.Stages {
			m.counterSet("sov_pipe_"+st.Name+"_frames_total", "frames processed by the stage", obs.ClassHost, st.Frames)
			m.gaugeSet("sov_pipe_"+st.Name+"_busy_ms", "stage busy wall-clock time", obs.ClassHost, st.Busy.Seconds()*1000)
			m.gaugeSet("sov_pipe_"+st.Name+"_wait_ms", "stage idle wall-clock time", obs.ClassHost, st.Wait.Seconds()*1000)
			m.counterSet("sov_pipe_"+st.Name+"_queue_stalls_total", "submissions that found the stage queue full", obs.ClassHost, st.Queue.FullStalls)
			m.gaugeSet("sov_pipe_"+st.Name+"_queue_mean_occupancy", "mean inbound queue occupancy", obs.ClassHost, st.Queue.MeanOcc)
			m.gaugeSet("sov_pipe_"+st.Name+"_queue_max_occupancy", "max inbound queue occupancy", obs.ClassHost, float64(st.Queue.MaxOcc))
		}
		m.counterSet("sov_pipe_pool_news_total", "frames allocated by the pool", obs.ClassHost, p.Pool.News)
		m.counterSet("sov_pipe_pool_reuses_total", "frames recycled by the pool", obs.ClassHost, p.Pool.Reuses)
	}
}

// emitHostSpans files the pipelined runtime's wall-clock utilization on the
// host span track: per stage, a busy span followed by a wait span, so the
// Perfetto lane reads as a utilization bar. Called after the stage
// goroutines have joined.
func (s *SoV) emitHostSpans(p *PipelineStats) {
	sw := s.spans
	if sw == nil || p == nil {
		return
	}
	sw.DeclareProcess(obs.PIDHost, "host wall-clock (pipeline diagnostics)")
	for i, st := range p.Stages {
		tid := tidHostStageBase + i
		sw.DeclareThread(obs.PIDHost, tid, st.Name)
		// Stage names come from the static Runtime construction, never from
		// user input, so embedding them in thread metadata is JSON-safe.
		sw.Span(obs.PIDHost, tid, "busy", "", 0, 0, st.Busy)
		sw.Span(obs.PIDHost, tid, "wait", "busy", 0, st.Busy, st.Wait)
	}
}
