package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sov/internal/obs"
	"sov/internal/parallel"
)

// obsOutputs is one instrumented run's telemetry artifacts, reduced to the
// pieces covered by the determinism contract.
type obsOutputs struct {
	metricsVirtual string // virtual-only registry exposition
	spansVirtual   string // PIDVirtual lines of the span file
	box            string // flight-recorder dump stream, verbatim
	rep            *Report
}

// obsRun executes one fully instrumented cruise in the given mode.
func obsRun(t *testing.T, pipelined, quant bool, workers int, dur time.Duration) obsOutputs {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))

	cfg := DefaultConfig()
	cfg.Pipeline = pipelined
	cfg.PipelineForce = pipelined
	cfg.Quant = quant
	s := New(cfg, CruiseScenario(3))

	reg := obs.NewRegistry()
	s.AttachMetrics(reg)
	var spanBuf, boxBuf bytes.Buffer
	sw := obs.NewSpanWriter(&spanBuf)
	s.AttachSpans(sw)
	box := obs.NewFlightRecorder(&boxBuf, 16, 3)
	s.AttachFlightRecorder(box)

	rep := s.Run(dur)
	if _, err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := box.Close(); err != nil {
		t.Fatal(err)
	}
	var met bytes.Buffer
	if err := reg.WriteText(&met, false); err != nil {
		t.Fatal(err)
	}
	// Keep only the virtual-time track: host spans (pipelined runs emit
	// stage-utilization spans on PIDHost) are wall-clock diagnostics.
	// A pipelined run appends host events after the last virtual one, which
	// turns the final virtual line's separator into a trailing comma — strip
	// it so the comparison sees only event content.
	var virt []string
	for _, line := range strings.Split(spanBuf.String(), "\n") {
		if strings.Contains(line, `"pid":1,`) {
			virt = append(virt, strings.TrimSuffix(line, ","))
		}
	}
	return obsOutputs{
		metricsVirtual: met.String(),
		spansVirtual:   strings.Join(virt, "\n"),
		box:            boxBuf.String(),
		rep:            rep,
	}
}

// TestObsVirtualOutputsByteIdentical is the telemetry determinism contract:
// the virtual-only metrics exposition, the virtual span track, and the
// flight-recorder stream must be byte-identical across worker counts and
// serial/pipelined control loops, for both the float and quantized latency
// models.
func TestObsVirtualOutputsByteIdentical(t *testing.T) {
	const dur = 30 * time.Second
	for _, quant := range []bool{false, true} {
		name := "float"
		if quant {
			name = "quant"
		}
		ref := obsRun(t, false, quant, 1, dur)
		if ref.rep.Cycles == 0 {
			t.Fatalf("%s: no cycles ran", name)
		}
		for _, mode := range []struct {
			label     string
			pipelined bool
			workers   int
		}{
			{"serial/8w", false, 8},
			{"pipelined/1w", true, 1},
			{"pipelined/8w", true, 8},
		} {
			got := obsRun(t, mode.pipelined, quant, mode.workers, dur)
			if got.metricsVirtual != ref.metricsVirtual {
				t.Errorf("%s %s: virtual metrics exposition diverged from serial/1w", name, mode.label)
			}
			if got.spansVirtual != ref.spansVirtual {
				t.Errorf("%s %s: virtual span track diverged from serial/1w", name, mode.label)
			}
			if got.box != ref.box {
				t.Errorf("%s %s: flight-recorder stream diverged from serial/1w", name, mode.label)
			}
		}
	}
}

// TestObsMetricsMatchReport: the registry's steady-state counters must agree
// exactly with the report's own counters — one source of truth, two views.
func TestObsMetricsMatchReport(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg, CruiseScenario(3))
	reg := obs.NewRegistry()
	s.AttachMetrics(reg)
	rep := s.Run(30 * time.Second)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf, true); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if ok {
			got[name] = val
		}
	}
	check := func(name string, want int) {
		t.Helper()
		if got[name] != itoa(want) {
			t.Errorf("%s = %s, report says %d", name, got[name], want)
		}
	}
	check("sov_cycles_total", rep.Cycles)
	check("sov_commands_delivered_total", rep.CommandsDelivered)
	check("sov_blocked_cycles_total", rep.BlockedCycles)
	check("sov_reactive_engagements_total", rep.ReactiveEngagements)
	check("sov_encode_errors_total", rep.EncodeErrors)
	check("sov_collisions_total", rep.Collisions)
	check("sov_tcomp_ms_count", rep.Cycles)
	check("sov_e2e_ms_count", rep.Cycles)
	check("sov_inflight_commands_count", rep.Cycles)
	// The per-cycle CommandLatency draw maps 1:1 onto cycles.
	check("sov_can_command_queries_total", rep.Cycles)
	if _, ok := got["sov_distance_m"]; !ok {
		t.Error("run-summary gauge sov_distance_m missing from exposition")
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestObsSpanCountAndLayout: every cycle contributes exactly ten spans on
// the virtual track, and a forced-pipelined run adds the host utilization
// track without touching the virtual one.
func TestObsSpanCountAndLayout(t *testing.T) {
	out := obsRun(t, true, false, 1, 20*time.Second)
	virtSpans := strings.Count(out.spansVirtual, `"ph":"X"`)
	if want := out.rep.Cycles * 10; virtSpans != want {
		t.Fatalf("virtual spans = %d, want %d (10 per cycle over %d cycles)", virtSpans, want, out.rep.Cycles)
	}
	// The whole file parses and the host track is present and labeled.
	sum, err := obs.SummarizeSpans(strings.NewReader(rebuildSpanFile(t, true, 20*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles != out.rep.Cycles || sum.Events != virtSpans {
		t.Fatalf("summary sees %d events over %d cycles, want %d over %d", sum.Events, sum.Cycles, virtSpans, out.rep.Cycles)
	}
	if sum.HostEvents == 0 {
		t.Fatal("forced-pipelined run emitted no host utilization spans")
	}
}

// rebuildSpanFile reruns the instrumented cruise and returns the raw span
// file (obsRun strips it down to the virtual lines).
func rebuildSpanFile(t *testing.T, pipelined bool, dur time.Duration) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Pipeline = pipelined
	cfg.PipelineForce = pipelined
	s := New(cfg, CruiseScenario(3))
	var buf bytes.Buffer
	sw := obs.NewSpanWriter(&buf)
	s.AttachSpans(sw)
	s.Run(dur)
	if _, err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestObsFlightRecorderCapturesReactive: a sudden obstacle inside the
// proactive envelope engages the reactive path, and the flight recorder must
// dump the surrounding cycles — identically in both control-loop modes.
func TestObsFlightRecorderCapturesReactive(t *testing.T) {
	run := func(pipelined bool) (string, *Report) {
		cfg := DefaultConfig()
		cfg.Pipeline = pipelined
		cfg.PipelineForce = pipelined
		w, _ := CutInScenario(cfg.TargetSpeed, 4.5)
		s := New(cfg, w)
		var buf bytes.Buffer
		box := obs.NewFlightRecorder(&buf, 16, 3)
		s.AttachFlightRecorder(box)
		rep := s.Run(30 * time.Second)
		if _, err := box.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	serial, rep := run(false)
	if rep.ReactiveEngagements == 0 {
		t.Skip("scenario did not engage the reactive path at this configuration")
	}
	if serial == "" {
		t.Fatal("reactive engagement produced no flight-recorder dump")
	}
	var d obs.Dump
	if err := json.Unmarshal([]byte(strings.SplitN(serial, "\n", 2)[0]), &d); err != nil {
		t.Fatalf("bad dump: %v", err)
	}
	if d.Trigger != "reactive-engagement" || len(d.Records) == 0 {
		t.Fatalf("dump wrong: trigger=%q records=%d", d.Trigger, len(d.Records))
	}
	piped, _ := run(true)
	if piped != serial {
		t.Fatal("flight-recorder stream differs between serial and pipelined modes")
	}
}
