package core

import (
	"time"

	"sov/internal/isp"
	"sov/internal/platform"
	"sov/internal/sim"
)

// latencyDraw is one control cycle's stage latency decomposition.
type latencyDraw struct {
	Sensing      time.Duration
	Depth        time.Duration
	Detection    time.Duration
	Tracking     time.Duration
	Localization time.Duration
	Perception   time.Duration
	Planning     time.Duration
	Tcomp        time.Duration
}

// latencyModel draws per-cycle stage latencies calibrated to Sec. V-C:
// sensing ≈ 84 ms mean (≈50% of Tcomp), perception 77 ms on the deployed
// mapping (120 ms without the FPGA offload), planning ≈ 3 ms; mean Tcomp
// 164 ms, best ≈ 149 ms, with a long tail reaching the 740 ms worst case.
type latencyModel struct {
	cfg    Config
	pipe   isp.Pipeline
	rng    *sim.RNG
	delays []time.Duration // reused per-draw ISP trace buffer
}

func newLatencyModel(cfg Config, rng *sim.RNG) *latencyModel {
	return &latencyModel{cfg: cfg, pipe: isp.DefaultPipeline(), rng: rng}
}

const (
	exposure = 8 * time.Millisecond
	readout  = 12 * time.Millisecond
)

// draw produces one cycle's latencies. complexity in [0,1] scales the
// scene-dependent terms (dynamic scenes extract new features every frame,
// slowing localization; more objects slow detection post-processing).
// keyframe selects the feature-extraction front-end variant (slower than
// tracking by ~2×: 20 ms vs 10 ms class).
func (m *latencyModel) draw(complexity float64, keyframe, radarStable bool) latencyDraw {
	var d latencyDraw

	// Sensing: exposure + readout + ISP/kernel/app pipeline.
	tr := m.pipe.DeliverInto(m.delays, m.rng)
	m.delays = tr.Delays
	d.Sensing = exposure + readout + tr.Total
	if !m.cfg.HardwareSync {
		// Software sync adds an alignment search at the application
		// layer (buffering + nearest-timestamp matching).
		d.Sensing += time.Duration(m.rng.TruncNormal(4e6, 2e6, 0, 15e6))
	}

	// Perception tasks (deployed mapping: scene understanding on the GPU,
	// localization on the FPGA).
	d.Depth = time.Duration(m.rng.TruncNormal(40e6, 4e6, 32e6, 70e6))
	det := m.rng.TruncNormal(69e6, 5e6, 60e6, 100e6) * (1 + 0.1*complexity)
	// Rare inference stalls produce the field's long tail.
	if m.rng.Bernoulli(0.012) {
		det += m.rng.Exponential(120e6)
		if det > 600e6 {
			det = 600e6
		}
	}
	d.Detection = time.Duration(det)

	// Quantized perception: the int8 fused kernels back the dense
	// scene-understanding tasks, dividing their draws by the documented
	// fixed-point speedup. The factor is a constant, not a host
	// measurement, so quantized runs stay reproducible across machines
	// (BenchmarkQuantSpeedup validates the floor). Scaling happens after
	// the draws so the RNG stream is identical with and without -quant.
	if m.cfg.Quant {
		d.Depth = platform.QuantizedLatency(d.Depth)
		d.Detection = platform.QuantizedLatency(d.Detection)
	}

	if m.cfg.RadarTracking && radarStable {
		// Spatial synchronization on the CPU: ~1 ms (Sec. VI-B).
		d.Tracking = time.Duration(m.rng.TruncNormal(1e6, 0.2e6, 0.5e6, 2e6))
	} else {
		// KCF fallback: ~100× the spatial-sync cost.
		d.Tracking = time.Duration(m.rng.TruncNormal(17e6, 3e6, 10e6, 30e6))
	}

	// Localization: 25 ms median, 14 ms std, complexity-driven (Sec. V-C).
	locMean := 21e6 + 16e6*complexity
	loc := 10e6 + m.rng.LogNormal(0, 0.5)*locMean*0.7
	if keyframe {
		loc *= 1.5 // feature extraction vs tracking front-end
	}
	if loc > 120e6 {
		loc = 120e6
	}
	d.Localization = time.Duration(loc)

	su := d.Detection + d.Tracking
	if d.Depth > su {
		su = d.Depth
	}
	locLat := d.Localization
	if !m.cfg.FPGAOffload {
		// Sharing the GPU inflates both groups (Fig. 8: 77→120 ms).
		su = time.Duration(float64(su) * 120.0 / 77.0)
		locLat = time.Duration(float64(locLat) * 120.0 / 77.0)
	}
	d.Perception = su
	if locLat > d.Perception {
		d.Perception = locLat
	}

	// Planning (Sec. V-C: ~3 ms MPC; ~100 ms EM).
	if m.cfg.EMPlanner {
		d.Planning = time.Duration(m.rng.TruncNormal(100e6, 10e6, 70e6, 150e6))
	} else {
		d.Planning = time.Duration(m.rng.TruncNormal(3e6, 0.8e6, 1.5e6, 8e6))
	}

	d.Tcomp = d.Sensing + d.Perception + d.Planning
	return d
}
