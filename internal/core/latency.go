package core

import (
	"time"

	"sov/internal/isp"
	"sov/internal/platform"
	"sov/internal/sched"
	"sov/internal/sim"
)

// latencyDraw is one control cycle's stage latency decomposition.
type latencyDraw struct {
	Sensing      time.Duration
	Depth        time.Duration
	Detection    time.Duration
	Tracking     time.Duration
	Localization time.Duration
	Perception   time.Duration
	Planning     time.Duration
	Tcomp        time.Duration
}

// latencyModel draws per-cycle stage latencies calibrated to Sec. V-C:
// sensing ≈ 84 ms mean (≈50% of Tcomp), perception 77 ms on the deployed
// mapping (120 ms without the FPGA offload), planning ≈ 3 ms; mean Tcomp
// 164 ms, best ≈ 149 ms, with a long tail reaching the 740 ms worst case.
type latencyModel struct {
	cfg    Config
	pipe   isp.Pipeline
	rng    *sim.RNG
	delays []time.Duration // reused per-draw ISP trace buffer
}

func newLatencyModel(cfg Config, rng *sim.RNG) *latencyModel {
	return &latencyModel{cfg: cfg, pipe: isp.DefaultPipeline(), rng: rng}
}

const (
	exposure = 8 * time.Millisecond
	readout  = 12 * time.Millisecond
)

// draw produces one cycle's latencies. complexity in [0,1] scales the
// scene-dependent terms (dynamic scenes extract new features every frame,
// slowing localization; more objects slow detection post-processing).
// keyframe selects the feature-extraction front-end variant (slower than
// tracking by ~2×: 20 ms vs 10 ms class).
//
// tr, when non-nil, is the online scheduler's per-cycle Transform: mapping/
// operating-point/camera multipliers applied after every RNG draw, so the
// random stream is byte-identical for every scheduling decision. It
// supersedes the static Quant and FPGAOffload scaling (the scheduler owns
// the operating point and the contention factors fold into its mapping
// ratios), and at the deployed GPU/FPGA float point every multiplier is
// exactly 1.0 — the draw is bit-identical to the scheduler-off path.
func (m *latencyModel) draw(complexity float64, keyframe, radarStable bool, tr *sched.Transform) latencyDraw {
	var d latencyDraw

	// Sensing: exposure + readout + ISP/kernel/app pipeline.
	ispTr := m.pipe.DeliverInto(m.delays, m.rng)
	m.delays = ispTr.Delays
	d.Sensing = exposure + readout + ispTr.Total
	if !m.cfg.HardwareSync {
		// Software sync adds an alignment search at the application
		// layer (buffering + nearest-timestamp matching).
		d.Sensing += time.Duration(m.rng.TruncNormal(4e6, 2e6, 0, 15e6))
	}

	// Perception tasks (deployed mapping: scene understanding on the GPU,
	// localization on the FPGA).
	d.Depth = time.Duration(m.rng.TruncNormal(40e6, 4e6, 32e6, 70e6))
	det := m.rng.TruncNormal(69e6, 5e6, 60e6, 100e6) * (1 + 0.1*complexity)
	// Rare inference stalls produce the field's long tail.
	if m.rng.Bernoulli(0.012) {
		det += m.rng.Exponential(120e6)
		if det > 600e6 {
			det = 600e6
		}
	}
	d.Detection = time.Duration(det)

	// Quantized perception: the int8 fused kernels back the dense
	// scene-understanding tasks, dividing their draws by the documented
	// fixed-point speedup. The factor is a constant, not a host
	// measurement, so quantized runs stay reproducible across machines
	// (BenchmarkQuantSpeedup validates the floor). Scaling happens after
	// the draws so the RNG stream is identical with and without -quant.
	if tr == nil && m.cfg.Quant {
		d.Depth = platform.QuantizedLatency(d.Depth)
		d.Detection = platform.QuantizedLatency(d.Detection)
	}
	if tr != nil {
		if tr.Quant {
			d.Depth = platform.QuantizedLatency(d.Depth)
			d.Detection = platform.QuantizedLatency(d.Detection)
		}
		d.Depth = time.Duration(float64(d.Depth) * tr.Depth)
		d.Detection = time.Duration(float64(d.Detection) * tr.Det)
	} else if m.cfg.Cameras > 1 {
		// Without the scheduler extra cameras run sequential inferences.
		d.Detection *= time.Duration(m.cfg.Cameras)
	}

	kcf := !(m.cfg.RadarTracking && radarStable)
	if !kcf {
		// Spatial synchronization on the CPU: ~1 ms (Sec. VI-B).
		d.Tracking = time.Duration(m.rng.TruncNormal(1e6, 0.2e6, 0.5e6, 2e6))
	} else {
		// KCF fallback: ~100× the spatial-sync cost. The fallback is visual
		// tracking on the scene-understanding processor, so the scheduler's
		// mapping ratio applies here and only here.
		d.Tracking = time.Duration(m.rng.TruncNormal(17e6, 3e6, 10e6, 30e6))
		if tr != nil {
			d.Tracking = time.Duration(float64(d.Tracking) * tr.Track)
		}
	}

	// Localization: 25 ms median, 14 ms std, complexity-driven (Sec. V-C).
	locMean := 21e6 + 16e6*complexity
	loc := 10e6 + m.rng.LogNormal(0, 0.5)*locMean*0.7
	if keyframe {
		loc *= 1.5 // feature extraction vs tracking front-end
	}
	if loc > 120e6 {
		loc = 120e6
	}
	if tr != nil {
		loc *= tr.Loc
	}
	d.Localization = time.Duration(loc)

	su := d.Detection + d.Tracking
	if d.Depth > su {
		su = d.Depth
	}
	locLat := d.Localization
	if tr == nil && !m.cfg.FPGAOffload {
		// Sharing the GPU inflates both groups (Fig. 8: 77→120 ms). With
		// the scheduler attached the contention lives in the mapping ratios
		// instead (platform.Contended folds it into every candidate).
		su = time.Duration(float64(su) * 120.0 / 77.0)
		locLat = time.Duration(float64(locLat) * 120.0 / 77.0)
	}
	d.Perception = su
	if locLat > d.Perception {
		d.Perception = locLat
	}

	// Planning (Sec. V-C: ~3 ms MPC; ~100 ms EM).
	if m.cfg.EMPlanner {
		d.Planning = time.Duration(m.rng.TruncNormal(100e6, 10e6, 70e6, 150e6))
	} else {
		d.Planning = time.Duration(m.rng.TruncNormal(3e6, 0.8e6, 1.5e6, 8e6))
	}

	d.Tcomp = d.Sensing + d.Perception + d.Planning
	return d
}
