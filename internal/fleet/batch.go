package fleet

import (
	"sov/internal/detect"
	"sov/internal/nn"
)

// Cross-vehicle batched perception: PR 6's layer-major quantized batching
// (one weight-panel traversal per layer across a whole batch) applied
// across vehicles instead of cameras. One master QYOLOHead is quantized
// once; each shard holds a ShareClone (aliased weights, private scratch)
// plus its own input tensors and detect scratch, so the shard fan-out runs
// every clone concurrently while all of them stream the same cache-resident
// weight panels. After warmup the phase allocates nothing.

const (
	batchInH, batchInW = 32, 32
	batchClasses       = 2
	objThreshold       = 0.35
	iouThreshold       = 0.5
)

// shardNN is one shard's private perception state.
type shardNN struct {
	model   *nn.QYOLOHead
	scratch detect.QuantDetectScratch
	inputs  []*nn.Tensor
	outs    [][]detect.BBox
	units   []*unit // this shard's vehicles, ascending id
}

// initShards quantizes the master detector (calibrated on a fixed ramp,
// seeded from the fleet seed) and hands each shard a ShareClone with
// preallocated inputs sized to the shard.
func (f *Fleet) initShards() {
	y := nn.NewTinyYOLO(batchInH, batchInW, batchClasses, splitSeed(f.cfg.Seed, streamModel, 0))
	calib := nn.NewTensor(1, batchInH, batchInW)
	for i := range calib.Data {
		calib.Data[i] = float32(i%13) / 13
	}
	master := nn.QuantizeYOLO(y, calib)
	for s := 0; s < f.nShards; s++ {
		lo := s * f.shardLen
		hi := lo + f.shardLen
		if hi > len(f.units) {
			hi = len(f.units)
		}
		sh := &shardNN{
			model: master.ShareClone(),
			units: f.units[lo:hi],
		}
		sh.inputs = make([]*nn.Tensor, len(sh.units))
		for i := range sh.inputs {
			sh.inputs[i] = nn.NewTensor(1, batchInH, batchInW)
		}
		f.shards = append(f.shards, sh)
	}
}

// shardRange is the perception fan-out body: shards [start, end) fill
// their input tensors from vehicle state and run the layer-major batch.
// Shards own disjoint vehicles and private clones, so the phase is
// race-free and tiling-independent; parallel.For tiles it across the pool.
func (f *Fleet) shardRange(start, end int) {
	for s := start; s < end; s++ {
		sh := f.shards[s]
		batch := true
		for i, u := range sh.units {
			fillInput(sh.inputs[i].Data, u.id, f.epoch, int(u.odo*16))
			if !u.sov.SchedBatching() {
				batch = false
			}
		}
		if batch {
			sh.outs = detect.RunQuantCNNBatch(sh.outs, sh.model, sh.inputs, objThreshold, iouThreshold, &sh.scratch)
			for i, u := range sh.units {
				u.boxes = len(sh.outs[i])
			}
			continue
		}
		// The online scheduler moved some vehicle's scene understanding off a
		// batching-capable processor: fall back to per-image inference (byte-
		// identical results — RunQuantCNNBatch is bit-exact with the per-image
		// path — but no cross-vehicle weight-panel amortization).
		for len(sh.outs) < len(sh.inputs) {
			sh.outs = append(sh.outs, nil)
		}
		for i, u := range sh.units {
			sh.outs[i] = detect.RunQuantCNNInto(sh.outs[i][:0], sh.model, sh.inputs[i], objThreshold, iouThreshold, &sh.scratch)
			u.boxes = len(sh.outs[i])
		}
	}
}

// nested fan-out note: shardRange runs inside a parallel.For worker, and
// RunQuantCNNBatch itself issues parallel.For calls. The pool's caller-
// drains-queue protocol makes that nesting deadlock-free (see
// internal/parallel), and determinism holds because every kernel below is
// tiling-independent.

// fillInput synthesizes a deterministic per-vehicle frame from (vehicle,
// epoch, odometer) via an integer mix — a stand-in for a camera capture
// that exercises the full quantized path without touching any RNG stream
// or float transcendentals.
//
//sov:hotpath
func fillInput(dst []float32, id, epoch, odo16 int) {
	h := uint32(id)*0x9e3779b9 ^ uint32(epoch)*0x85ebca6b ^ uint32(odo16)*0xc2b2ae35
	for i := range dst {
		h ^= h << 13
		h ^= h >> 17
		h ^= h << 5
		dst[i] = float32(h&0xff) / 255
	}
}
