package fleet

import (
	"fmt"
	"time"

	"sov/internal/obs"
)

// Bounded-cardinality fleet telemetry. The registry has no label support
// by design (labels are where cardinality explosions hide), so per-vehicle
// series are off the table: vehicle activity is aggregated into at most
// maxShards per-shard counter pairs, named at registration time
// (fleet_shard00_cycles_total …). The per-epoch publish path does only
// Counter.Add / Gauge.Set / Histogram.Observe, all of which are
// allocation-free, so fleet metrics ride inside the substrate's
// zero-steady-state-alloc budget.
type fleetMetrics struct {
	arrived   *obs.Counter
	assigned  *obs.Counter
	completed *obs.Counter
	waitS     *obs.Histogram
	tripS     *obs.Histogram

	idle     *obs.Gauge
	busy     *obs.Gauge
	charging *obs.Gauge
	halted   *obs.Gauge
	waiting  *obs.Gauge
	tph      *obs.Gauge
	peakTPH  *obs.Gauge
	avail    *obs.Gauge
	soc      *obs.Gauge

	shardCycles []*obs.Counter
	shardTrips  []*obs.Counter

	// prev* hold the totals already published, so the epoch path can Add
	// deltas instead of re-counting from zero.
	prevArrived, prevAssigned, prevCompleted int64
}

func newFleetMetrics(reg *obs.Registry, shards int) *fleetMetrics {
	m := &fleetMetrics{
		arrived:   reg.Counter("fleet_riders_arrived_total", "trip requests generated", obs.ClassVirtual),
		assigned:  reg.Counter("fleet_trips_assigned_total", "riders matched to a vehicle", obs.ClassVirtual),
		completed: reg.Counter("fleet_trips_completed_total", "trips dropped off", obs.ClassVirtual),
		waitS:     reg.Histogram("fleet_wait_s", "rider wait from request to pickup (s)", obs.ClassVirtual, 0, 600, 12),
		tripS:     reg.Histogram("fleet_trip_duration_s", "trip duration pickup to dropoff (s)", obs.ClassVirtual, 0, 1200, 12),
		idle:      reg.Gauge("fleet_vehicles_idle", "vehicles idle and dispatchable", obs.ClassVirtual),
		busy:      reg.Gauge("fleet_vehicles_busy", "vehicles en route to pickup or on trip", obs.ClassVirtual),
		charging:  reg.Gauge("fleet_vehicles_charging", "vehicles at the depot charger", obs.ClassVirtual),
		halted:    reg.Gauge("fleet_vehicles_halted", "vehicles retired (dead pack)", obs.ClassVirtual),
		waiting:   reg.Gauge("fleet_riders_waiting", "riders queued without a vehicle", obs.ClassVirtual),
		tph:       reg.Gauge("fleet_trips_per_hour", "completed trips per virtual hour", obs.ClassVirtual),
		peakTPH:   reg.Gauge("fleet_peak_trips_per_hour", "best 5-minute completion window, hourly rate", obs.ClassVirtual),
		avail:     reg.Gauge("fleet_availability", "fraction of vehicle-time in service", obs.ClassVirtual),
		soc:       reg.Gauge("fleet_mean_soc", "fleet mean state of charge", obs.ClassVirtual),
	}
	for s := 0; s < shards; s++ {
		m.shardCycles = append(m.shardCycles, reg.Counter(
			fmt.Sprintf("fleet_shard%02d_cycles_total", s),
			"control cycles captured by this shard's vehicles", obs.ClassVirtual))
		m.shardTrips = append(m.shardTrips, reg.Counter(
			fmt.Sprintf("fleet_shard%02d_trips_total", s),
			"trips completed by this shard's vehicles", obs.ClassVirtual))
	}
	return m
}

// publish pushes the epoch's deltas and gauges. Runs on the serial barrier.
func (m *fleetMetrics) publish(f *Fleet) {
	m.arrived.Add(f.totArrived - m.prevArrived)
	m.prevArrived = f.totArrived
	m.assigned.Add(f.totAssigned - m.prevAssigned)
	m.prevAssigned = f.totAssigned
	m.completed.Add(f.totCompleted - m.prevCompleted)
	m.prevCompleted = f.totCompleted

	idle, busy, charging, halted := f.counts()
	m.idle.Set(float64(idle))
	m.busy.Set(float64(busy))
	m.charging.Set(float64(charging))
	m.halted.Set(float64(halted))
	m.waiting.Set(float64(f.waiting()))
	if f.epochEnd > 0 {
		m.tph.Set(float64(f.totCompleted) / f.epochEnd.Hours())
	}
	windowHours := (time.Duration(len(f.window)) * f.cfg.Epoch).Hours()
	if windowHours > 0 {
		m.peakTPH.Set(float64(f.peakWindow) / windowHours)
	}
	if f.totalEpochs > 0 {
		m.avail.Set(float64(f.availEpochs) / float64(f.totalEpochs))
	}
	m.soc.Set(f.meanSoC())

	// Shard aggregation: vehicles map to shards by contiguous id blocks, so
	// the per-shard totals are simple strided sums over the unit slice.
	for s := 0; s < f.nShards; s++ {
		lo := s * f.shardLen
		hi := lo + f.shardLen
		if hi > len(f.units) {
			hi = len(f.units)
		}
		var cyc, trips int64
		for i := lo; i < hi; i++ {
			cyc += int64(f.units[i].sov.Cycles())
			trips += f.units[i].trips
		}
		m.shardCycles[s].Add(cyc - f.prevCycles[s])
		f.prevCycles[s] = cyc
		m.shardTrips[s].Add(trips - f.prevTrips[s])
		f.prevTrips[s] = trips
	}
}
