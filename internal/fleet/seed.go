package fleet

// RNG stream splitting (DESIGN.md §11). One fleet seed fans out into an
// unbounded family of independent streams — one per vehicle, one per
// region's world generator, one per region's demand process, one for the
// initial-charge spread — by mixing (seed, stream class, index) through a
// splitmix64-style finalizer. The derivation is a pure function of the
// triple, so stream k is the same whether the fleet has 10 vehicles or
// 10 000, and adding regions never perturbs vehicle streams.

type streamClass uint64

const (
	streamVehicle streamClass = iota + 1
	streamRegionWorld
	streamDemand
	streamInitialSoC
	streamModel
)

// splitSeed derives an independent child seed from (seed, class, index).
//
//sov:hotpath
func splitSeed(seed int64, class streamClass, index int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(class)<<32+uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z & 0x7fffffffffffffff)
	if s == 0 {
		s = 1
	}
	return s
}
