// Package fleet is the sharded fleet-simulation substrate: it advances N
// core.SoV instances in lockstep virtual-time epochs over the
// internal/parallel pool, each vehicle with its own seeded RNG streams, a
// shared read-only world region, and private scratch. Between epochs a
// serial barrier settles trips, generates rider demand, dispatches idle
// vehicles, and emits fleet telemetry — so fleet traces, reports, and
// metrics are byte-identical for any -workers count (DESIGN.md §11).
//
// This is the paper's Fig. 1 loop lifted from one vehicle to the deployed
// fleet: the computing system's latency/energy budget exists to buy trips
// per hour, bounded wait times, and availability, which is exactly what
// this package measures.
package fleet

import (
	"fmt"
	"io"
	"math"
	"time"

	"sov/internal/core"
	"sov/internal/models"
	"sov/internal/obs"
	"sov/internal/parallel"
	"sov/internal/sim"
	"sov/internal/stats"
	"sov/internal/telemetry"
	"sov/internal/world"
)

// Config sizes and seeds a fleet run. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Vehicles is the fleet size (hundreds to thousands).
	Vehicles int
	// Regions is the number of independent service regions; vehicles are
	// assigned round-robin and riders only match vehicles in their region.
	Regions int
	// Shards bounds the per-shard telemetry cardinality and the batched-
	// perception clone count. Defaults to 8, capped at maxShards.
	Shards int
	// Seed drives every stream in the fleet: per-vehicle seeds, region
	// worlds, demand arrivals, and initial charge are all split from it.
	Seed int64
	// Epoch is the lockstep advance quantum. All cross-vehicle coupling
	// (dispatch, charging, metrics) happens on epoch barriers.
	Epoch time.Duration
	// Vehicle is the per-vehicle template; Seed, StartOffsetM, and
	// LeanReport are overridden per vehicle.
	Vehicle core.Config
	// RegionSideM is the side of each region's campus-loop world.
	RegionSideM float64
	// DemandPerHour is the mean rider-arrival rate per region at the
	// diurnal peak's midline (arrivals modulate ±50% over a virtual day).
	DemandPerHour float64
	// TripMinM and TripMaxM bound the requested trip length.
	TripMinM, TripMaxM float64
	// RechargeSoC sends an idle vehicle to the charger below this state of
	// charge; FullSoC returns it to service.
	RechargeSoC, FullSoC float64
	// ChargeRateKW is the depot charger power (models.DepotChargeRateKW).
	ChargeRateKW float64
	// InitialSoCMin/Max spread the fleet's starting charge uniformly so
	// recharge churn appears without hours of virtual driving.
	InitialSoCMin, InitialSoCMax float64
	// PerceptionEvery runs the batched quantized detector across each
	// shard's vehicles every k epochs (0 disables): PR 6's layer-major
	// batching applied across vehicles instead of cameras, so one weight-
	// panel traversal serves a whole shard.
	PerceptionEvery int
	// Trace, when non-nil, receives one JSONL record per epoch (including
	// the epoch's dispatch assignments). The encoder is allocation-free
	// and byte-identical for any worker count.
	Trace io.Writer
	// Cloud, when non-nil, receives per-vehicle telemetry events from the
	// serial barrier (epoch snapshots, assignments, pickups/dropoffs,
	// collision and reactive-brake deltas, halts), flushed as one store
	// batch per epoch. The emitted byte stream is byte-identical for any
	// worker count (see cloud.go).
	Cloud *telemetry.Ingestor
}

// maxShards bounds per-shard metric cardinality: shard-aggregated series
// instead of one series per vehicle keep the exposition size and the
// per-epoch metric work independent of fleet size.
const maxShards = 32

// DefaultConfig returns a deployable fleet configuration over the deployed
// per-vehicle config.
func DefaultConfig() Config {
	return Config{
		Vehicles:        100,
		Regions:         4,
		Shards:          8,
		Seed:            1,
		Epoch:           time.Second,
		Vehicle:         core.DefaultConfig(),
		RegionSideM:     250,
		DemandPerHour:   120,
		TripMinM:        200,
		TripMaxM:        800,
		RechargeSoC:     0.20,
		FullSoC:         0.95,
		ChargeRateKW:    models.DepotChargeRateKW,
		InitialSoCMin:   0.60,
		InitialSoCMax:   1.00,
		PerceptionEvery: 0,
	}
}

// vehState is a vehicle's service state, transitioned only on epoch
// barriers.
type vehState uint8

const (
	stateIdle vehState = iota
	stateToPickup
	stateOnTrip
	stateCharging
	stateHalted
)

// unit is one fleet vehicle: the SoV instance plus the dispatch-facing
// snapshot the barrier reads. During the parallel advance phase each unit
// is written only by the worker that claimed it; the barrier reads and
// transitions them serially in id order.
type unit struct {
	id       int
	region   int32
	state    vehState
	halt     bool
	sov      *core.SoV
	startOff float64
	odo      float64
	soc      float64
	rider    int32
	pickup   float64 // odometer reading at which the assigned rider boards
	dropoff  float64 // odometer reading at which the trip completes
	trips    int64
	boxes    int // detections from the last batched-perception epoch

	// Cloud-uplink deltas: counter values already emitted as events.
	prevColl  int
	prevReact int
}

// rider is one trip request. Slots live in an arena and recycle through a
// free list so steady-state demand allocates nothing.
type rider struct {
	seq     int64 // stable id for traces (arena slots are reused)
	region  int32
	pos     float64 // ring position of the pickup point
	tripLen float64
	arriveT time.Duration
	pickupT time.Duration
}

// fifo is a reusable FIFO of rider arena indices.
type fifo struct {
	idx  []int32
	head int
}

func (q *fifo) len() int     { return len(q.idx) - q.head }
func (q *fifo) peek() int32  { return q.idx[q.head] }
func (q *fifo) push(r int32) { q.idx = append(q.idx, r) }
func (q *fifo) pop() int32 {
	r := q.idx[q.head]
	q.head++
	if q.head == len(q.idx) {
		q.idx = q.idx[:0]
		q.head = 0
	}
	return r
}

// region is one service area: a shared read-only world, its demand stream,
// and the rider queue.
type region struct {
	id       int
	world    *world.World
	vehicles []int // unit ids serving this region, ascending
	rng      *sim.RNG
	queue    fifo
}

// assignment records one dispatch decision for the epoch trace.
type assignment struct {
	rider   int64
	vehicle int
}

// Fleet is the sharded substrate. Step advances every vehicle one epoch;
// Run loops Step to a horizon and returns the summary.
type Fleet struct {
	cfg      Config
	units    []*unit
	regions  []*region
	perim    float64
	grain    int
	nShards  int
	shardLen int

	epoch    int
	epochEnd time.Duration

	riders     []rider
	freeRiders []int32
	riderSeq   int64

	assignments []assignment

	// Pre-bound fan-out closures: built once so the steady-state epoch
	// loop never allocates for scheduling.
	advanceFn func(start, end int)
	shardFn   func(start, end int)

	shards []*shardNN

	tr *traceWriter
	m  *fleetMetrics

	cloud    *telemetry.Ingestor
	cloudErr error

	// Run aggregates (updated serially on barriers).
	totArrived   int64
	totAssigned  int64
	totCompleted int64
	totBoxes     int64
	waitW        stats.Welford
	waitMax      float64
	waitHist     *stats.Histogram
	tripW        stats.Welford
	availEpochs  int64 // vehicle-epochs in service (idle or serving)
	totalEpochs  int64 // vehicle-epochs overall
	window       []int32
	windowSum    int64
	peakWindow   int64
	prevCycles   []int64 // per-shard cycle totals at the last barrier
	prevTrips    []int64 // per-shard trip totals at the last barrier
}

// New builds the fleet: regions, vehicles (each with its own split seed and
// staggered start), shard state, and (optionally) the shared quantized
// detector clones. Worlds are read-only after construction, so vehicles of
// one region share a single instance.
func New(cfg Config) *Fleet {
	if cfg.Vehicles <= 0 {
		panic("fleet: need at least one vehicle")
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 1
	}
	if cfg.Regions > cfg.Vehicles {
		cfg.Regions = cfg.Vehicles
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > maxShards {
		cfg.Shards = maxShards
	}
	if cfg.Shards > cfg.Vehicles {
		cfg.Shards = cfg.Vehicles
	}
	if cfg.RegionSideM <= 0 {
		cfg.RegionSideM = 250
	}
	if cfg.TripMaxM < cfg.TripMinM {
		cfg.TripMaxM = cfg.TripMinM
	}
	if cfg.ChargeRateKW <= 0 {
		cfg.ChargeRateKW = models.DepotChargeRateKW
	}
	if cfg.InitialSoCMax <= 0 {
		cfg.InitialSoCMin, cfg.InitialSoCMax = 1, 1
	}

	f := &Fleet{
		cfg:      cfg,
		perim:    4 * cfg.RegionSideM,
		grain:    8,
		nShards:  cfg.Shards,
		waitHist: stats.NewHistogram(0, 600, 24), // wait seconds, 25 s bins
	}
	f.shardLen = (cfg.Vehicles + f.nShards - 1) / f.nShards
	f.prevCycles = make([]int64, f.nShards)
	f.prevTrips = make([]int64, f.nShards)
	f.window = make([]int32, peakWindowEpochs(cfg.Epoch))

	for r := 0; r < cfg.Regions; r++ {
		wrng := sim.NewRNG(splitSeed(cfg.Seed, streamRegionWorld, int64(r)))
		f.regions = append(f.regions, &region{
			id:    r,
			world: world.CampusLoop(cfg.RegionSideM, wrng),
			rng:   sim.NewRNG(splitSeed(cfg.Seed, streamDemand, int64(r))),
		})
	}

	socRNG := sim.NewRNG(splitSeed(cfg.Seed, streamInitialSoC, 0))
	maxPerRegion := (cfg.Vehicles + cfg.Regions - 1) / cfg.Regions
	spacing := f.perim / float64(maxPerRegion)
	for i := 0; i < cfg.Vehicles; i++ {
		r := i % cfg.Regions
		vcfg := cfg.Vehicle
		vcfg.Seed = splitSeed(cfg.Seed, streamVehicle, int64(i))
		vcfg.LeanReport = true
		vcfg.StartOffsetM = spacing * float64(i/cfg.Regions)
		s := core.New(vcfg, f.regions[r].world)
		if cfg.InitialSoCMax < 1 || cfg.InitialSoCMin < 1 {
			s.Battery().SoC = socRNG.Uniform(cfg.InitialSoCMin, cfg.InitialSoCMax)
		}
		u := &unit{
			id:       i,
			region:   int32(r),
			sov:      s,
			startOff: vcfg.StartOffsetM,
			soc:      s.Battery().SoC,
			rider:    -1,
		}
		f.units = append(f.units, u)
		f.regions[r].vehicles = append(f.regions[r].vehicles, i)
	}
	for _, u := range f.units {
		u.sov.Start()
	}
	f.advanceFn = f.advanceRange
	if cfg.PerceptionEvery > 0 {
		f.initShards()
		f.shardFn = f.shardRange
	}
	if cfg.Trace != nil {
		f.tr = newTraceWriter(cfg.Trace)
	}
	f.cloud = cfg.Cloud
	return f
}

// AttachMetrics registers the fleet's bounded-cardinality metrics on reg:
// fleet-wide counters/histograms/gauges plus one counter pair per shard
// (never per vehicle). Call before the first Step.
func (f *Fleet) AttachMetrics(reg *obs.Registry) { f.m = newFleetMetrics(reg, f.nShards) }

// Now returns the fleet's virtual time (the last completed epoch barrier).
func (f *Fleet) Now() time.Duration { return f.epochEnd }

// Epochs returns the number of completed epochs.
func (f *Fleet) Epochs() int { return f.epoch }

// Step advances the whole fleet one epoch: the parallel advance phase
// (each vehicle's engine runs to the epoch barrier), the optional batched
// perception fan-out, then the serial barrier (trip settlement, demand,
// dispatch, telemetry) in fixed vehicle/region order. Steady state
// allocates nothing.
func (f *Fleet) Step() {
	f.epoch++
	f.epochEnd = time.Duration(f.epoch) * f.cfg.Epoch
	parallel.For(len(f.units), f.grain, f.advanceFn)
	if f.shardFn != nil && f.epoch%f.cfg.PerceptionEvery == 0 {
		parallel.For(f.nShards, 1, f.shardFn)
	}
	f.assignments = f.assignments[:0]
	completed := f.settle()
	f.arrivals()
	f.dispatch()
	f.observe(completed)
}

// Run advances the fleet to the given horizon and returns the summary.
func (f *Fleet) Run(horizon time.Duration) *Summary {
	for f.epochEnd+f.cfg.Epoch <= horizon || f.epoch == 0 {
		f.Step()
		if f.epochEnd >= horizon {
			break
		}
	}
	return f.Summarize()
}

// advanceRange is the parallel advance body: vehicles [start, end) run
// their engines to the epoch barrier and snapshot the fields the serial
// barrier reads. Each unit is touched by exactly one worker per epoch, and
// a vehicle's virtual-time evolution depends only on its own streams, so
// the results are independent of the tiling.
func (f *Fleet) advanceRange(start, end int) {
	for i := start; i < end; i++ {
		u := f.units[i]
		if u.state == stateHalted {
			continue
		}
		u.sov.AdvanceTo(f.epochEnd)
		u.odo = u.sov.Vehicle().Odometer()
		u.soc = u.sov.Battery().SoC
		if u.sov.Halted() {
			u.halt = true
		}
	}
}

// ringPos maps a unit's odometer onto its region loop.
//
//sov:hotpath
func ringPos(startOff, odo, perim float64) float64 {
	p := math.Mod(startOff+odo, perim)
	if p < 0 {
		p += perim
	}
	return p
}

// ringDist is the forward distance a one-way vehicle at vpos covers to
// reach pos on a loop of length perim.
//
//sov:hotpath
func ringDist(vpos, pos, perim float64) float64 {
	d := pos - vpos
	if d < 0 {
		d += perim
	}
	return d
}

// settle is the first barrier phase: in vehicle-id order, retire halted
// vehicles, board and complete trips the epoch's driving reached, and run
// the charge cycle. Returns the number of trips completed this epoch.
func (f *Fleet) settle() int {
	completed := 0
	for _, u := range f.units {
		if u.halt && u.state != stateHalted {
			// A dead pack strands its rider: the request goes back to the
			// head region queue for re-dispatch.
			if u.rider >= 0 {
				f.regions[u.region].queue.push(u.rider)
				u.rider = -1
			}
			u.state = stateHalted
			if f.cloud != nil {
				f.emitHalt(u)
			}
		}
		switch u.state {
		case stateToPickup:
			if u.odo >= u.pickup {
				r := &f.riders[u.rider]
				r.pickupT = f.epochEnd
				wait := (f.epochEnd - r.arriveT).Seconds()
				f.waitW.Observe(wait)
				f.waitHist.Observe(wait)
				if wait > f.waitMax {
					f.waitMax = wait
				}
				if f.m != nil {
					f.m.waitS.Observe(wait)
				}
				if f.cloud != nil {
					f.emitPickup(u, r.seq, wait)
				}
				u.state = stateOnTrip
			}
		}
		if u.state == stateOnTrip && u.odo >= u.dropoff {
			r := &f.riders[u.rider]
			f.tripW.Observe((f.epochEnd - r.pickupT).Seconds())
			if f.m != nil {
				f.m.tripS.Observe((f.epochEnd - r.pickupT).Seconds())
			}
			if f.cloud != nil {
				f.emitDropoff(u, r.seq, (f.epochEnd - r.pickupT).Seconds())
			}
			f.freeRiders = append(f.freeRiders, u.rider)
			u.rider = -1
			u.trips++
			f.totCompleted++
			completed++
			u.state = stateIdle
		}
		switch u.state {
		case stateIdle:
			if u.soc < f.cfg.RechargeSoC {
				u.state = stateCharging
			}
		case stateCharging:
			// The depot feed outruns the drive load, so the vehicle keeps
			// its engine warm (events keep firing) while the pack refills.
			u.sov.Battery().Charge(f.cfg.ChargeRateKW, f.cfg.Epoch)
			u.soc = u.sov.Battery().SoC
			if u.soc >= f.cfg.FullSoC {
				u.state = stateIdle
			}
		}
		f.totalEpochs++
		if u.state == stateIdle || u.state == stateToPickup || u.state == stateOnTrip {
			f.availEpochs++
		}
	}
	return completed
}

// arrivals is the demand phase: per region (in region order, one RNG
// stream each), a Poisson-distributed number of riders arrives with
// uniform pickup points and trip lengths, modulated by the diurnal curve.
func (f *Fleet) arrivals() {
	if f.cfg.DemandPerHour <= 0 {
		return
	}
	lambda := f.cfg.DemandPerHour / 3600 * f.cfg.Epoch.Seconds() * diurnal(f.epochEnd)
	for _, rg := range f.regions {
		n := poisson(rg.rng, lambda)
		for k := 0; k < n; k++ {
			pos := rg.rng.Uniform(0, f.perim)
			tripLen := rg.rng.Uniform(f.cfg.TripMinM, f.cfg.TripMaxM)
			idx := f.allocRider()
			r := &f.riders[idx]
			r.region = int32(rg.id)
			r.pos = pos
			r.tripLen = tripLen
			r.arriveT = f.epochEnd
			r.pickupT = 0
			rg.queue.push(idx)
			f.totArrived++
		}
	}
}

// allocRider returns a rider arena slot, recycling completed slots so
// steady-state demand does not grow the arena.
func (f *Fleet) allocRider() int32 {
	f.riderSeq++
	if n := len(f.freeRiders); n > 0 {
		idx := f.freeRiders[n-1]
		f.freeRiders = f.freeRiders[:n-1]
		f.riders[idx].seq = f.riderSeq
		return idx
	}
	f.riders = append(f.riders, rider{seq: f.riderSeq})
	return int32(len(f.riders) - 1)
}

// dispatch is the assignment phase: per region, riders leave the FIFO in
// arrival order and each takes the nearest idle vehicle by forward ring
// distance (ties to the lowest vehicle id). A head-of-line rider with no
// idle vehicle waits — later riders do not jump the queue.
func (f *Fleet) dispatch() {
	for _, rg := range f.regions {
		for rg.queue.len() > 0 {
			ridx := rg.queue.peek()
			r := &f.riders[ridx]
			best, bestDist := -1, math.Inf(1)
			for _, vid := range rg.vehicles {
				u := f.units[vid]
				if u.state != stateIdle {
					continue
				}
				d := ringDist(ringPos(u.startOff, u.odo, f.perim), r.pos, f.perim)
				if d < bestDist {
					best, bestDist = vid, d
				}
			}
			if best < 0 {
				break
			}
			rg.queue.pop()
			u := f.units[best]
			u.state = stateToPickup
			u.rider = ridx
			u.pickup = u.odo + bestDist
			u.dropoff = u.pickup + r.tripLen
			f.totAssigned++
			f.assignments = append(f.assignments, assignment{rider: r.seq, vehicle: best})
			if f.cloud != nil {
				f.emitAssign(u, r.seq, bestDist)
			}
		}
	}
}

// waiting returns the total queued riders across regions.
func (f *Fleet) waiting() int {
	n := 0
	for _, rg := range f.regions {
		n += rg.queue.len()
	}
	return n
}

// diurnal modulates demand ±50% over a 24 h virtual day (peak at 1/4 day).
func diurnal(t time.Duration) float64 {
	const day = 24 * 3600.0
	return 1 + 0.5*math.Sin(2*math.Pi*t.Seconds()/day)
}

// poisson draws a Poisson(lambda) count via Knuth's product method — exact
// for the small per-epoch arrival rates the fleet uses, and consuming a
// deterministic stream of uniforms.
//
//sov:hotpath
func poisson(rng *sim.RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// peakWindowEpochs sizes the peak-throughput rolling window to ~5 virtual
// minutes.
func peakWindowEpochs(epoch time.Duration) int {
	n := int((5 * time.Minute) / epoch)
	if n < 1 {
		n = 1
	}
	return n
}

// observe is the telemetry phase: rolling peak-throughput window, metrics
// registry updates, and the epoch trace record.
func (f *Fleet) observe(completed int) {
	slot := (f.epoch - 1) % len(f.window)
	f.windowSum += int64(completed) - int64(f.window[slot])
	f.window[slot] = int32(completed)
	if f.windowSum > f.peakWindow {
		f.peakWindow = f.windowSum
	}
	for _, u := range f.units {
		f.totBoxes += int64(u.boxes)
		u.boxes = 0
	}
	if f.m != nil {
		f.m.publish(f)
	}
	if f.tr != nil {
		f.tr.record(f, completed)
	}
	if f.cloud != nil {
		f.emitEpochEvents()
		f.flushCloud()
	}
}

// counts tallies the fleet's service states (serial barrier data).
func (f *Fleet) counts() (idle, busy, charging, halted int) {
	for _, u := range f.units {
		switch u.state {
		case stateIdle:
			idle++
		case stateToPickup, stateOnTrip:
			busy++
		case stateCharging:
			charging++
		case stateHalted:
			halted++
		}
	}
	return
}

// distance sums the fleet odometer.
func (f *Fleet) distance() float64 {
	d := 0.0
	for _, u := range f.units {
		d += u.odo
	}
	return d
}

// cycles sums captured control cycles across the fleet.
func (f *Fleet) cycles() int64 {
	var n int64
	for _, u := range f.units {
		n += int64(u.sov.Cycles())
	}
	return n
}

// collisions sums obstacle contacts across the fleet.
func (f *Fleet) collisions() int {
	n := 0
	for _, u := range f.units {
		n += u.sov.CollisionCount()
	}
	return n
}

// meanSoC averages the fleet state of charge in vehicle-id order.
func (f *Fleet) meanSoC() float64 {
	s := 0.0
	for _, u := range f.units {
		s += u.soc
	}
	return s / float64(len(f.units))
}

// Summary is the fleet-utility report: the EM411-style vehicle/fleet MVU
// metrics (trips per hour, peak throughput, wait distribution,
// availability) plus the substrate's own totals.
type Summary struct {
	Vehicles, Regions, Epochs int
	VirtualTime               time.Duration

	RidersArrived  int64
	TripsAssigned  int64
	TripsCompleted int64
	TripsPerHour   float64
	// PeakTripsPerHour is the best 5-minute completion window, annualized
	// to an hourly rate.
	PeakTripsPerHour float64
	WaitMeanS        float64
	WaitMaxS         float64
	TripMeanS        float64
	// Availability is the fraction of vehicle-epochs spent in service
	// (idle or serving) rather than charging or dead.
	Availability float64
	WaitingNow   int

	DistanceM                    float64
	Cycles                       int64
	Collisions                   int
	MeanSoC                      float64
	Detections                   int64
	Idle, Busy, Charging, Halted int
}

// Summarize closes over the current epoch state. It does not stop the
// fleet — Step may continue afterwards.
func (f *Fleet) Summarize() *Summary {
	s := &Summary{
		Vehicles:       len(f.units),
		Regions:        len(f.regions),
		Epochs:         f.epoch,
		VirtualTime:    f.epochEnd,
		RidersArrived:  f.totArrived,
		TripsAssigned:  f.totAssigned,
		TripsCompleted: f.totCompleted,
		WaitMeanS:      f.waitW.Mean(),
		WaitMaxS:       f.waitMax,
		TripMeanS:      f.tripW.Mean(),
		WaitingNow:     f.waiting(),
		DistanceM:      f.distance(),
		Cycles:         f.cycles(),
		Collisions:     f.collisions(),
		MeanSoC:        f.meanSoC(),
		Detections:     f.totBoxes,
	}
	if f.epochEnd > 0 {
		s.TripsPerHour = float64(f.totCompleted) / f.epochEnd.Hours()
	}
	windowHours := (time.Duration(len(f.window)) * f.cfg.Epoch).Hours()
	if windowHours > 0 {
		s.PeakTripsPerHour = float64(f.peakWindow) / windowHours
	}
	if f.totalEpochs > 0 {
		s.Availability = float64(f.availEpochs) / float64(f.totalEpochs)
	}
	s.Idle, s.Busy, s.Charging, s.Halted = f.counts()
	return s
}

// WaitHistogram renders the wait-time distribution as a terminal chart.
func (f *Fleet) WaitHistogram(width int) string {
	if f.waitHist.Total() == 0 {
		return "(no pickups)\n"
	}
	return "rider wait distribution (s):\n" + f.waitHist.Render(width)
}

// Render formats the fleet-utility summary.
func (s *Summary) Render() string {
	out := fmt.Sprintf("fleet: %d vehicles, %d regions, %d epochs (%v virtual)\n",
		s.Vehicles, s.Regions, s.Epochs, s.VirtualTime)
	out += fmt.Sprintf("demand: %d riders arrived, %d assigned, %d completed (%d waiting now)\n",
		s.RidersArrived, s.TripsAssigned, s.TripsCompleted, s.WaitingNow)
	out += fmt.Sprintf("utility: %.1f trips/hour (peak %.1f), wait mean %.1f s max %.1f s, trip mean %.1f s\n",
		s.TripsPerHour, s.PeakTripsPerHour, s.WaitMeanS, s.WaitMaxS, s.TripMeanS)
	out += fmt.Sprintf("availability: %.1f%% of vehicle-time in service (%d idle, %d busy, %d charging, %d halted)\n",
		100*s.Availability, s.Idle, s.Busy, s.Charging, s.Halted)
	out += fmt.Sprintf("substrate: %.0f m driven, %d control cycles, %d collisions, mean SoC %.1f%%\n",
		s.DistanceM, s.Cycles, s.Collisions, 100*s.MeanSoC)
	if s.Detections > 0 {
		out += fmt.Sprintf("perception: %d batched detections across the fleet\n", s.Detections)
	}
	return out
}
