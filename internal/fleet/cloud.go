package fleet

import (
	"strconv"

	"sov/internal/telemetry"
)

// Cloud uplink: when Config.Cloud is set, the serial barrier emits one
// telemetry event per fleet transition — epoch snapshots, dispatch
// assignments, pickups, dropoffs, collision and reactive-brake deltas,
// halts — and flushes them as one store batch per epoch. Every emission
// happens on the serial barrier in fixed vehicle/region order, so the
// ingested byte stream (and therefore the store's on-disk state) is
// byte-identical for any -workers count, matching the trace/metrics
// determinism contract (DESIGN.md §11, §14).

// stateNames renders vehState for epoch-snapshot payloads.
var stateNames = [...]string{"idle", "to-pickup", "on-trip", "charging", "halted"}

// emitAssign records a dispatch decision.
func (f *Fleet) emitAssign(u *unit, riderSeq int64, distM float64) {
	b := f.cloud.PayloadBuf()
	b = append(b, `{"rider":`...)
	b = strconv.AppendInt(b, riderSeq, 10)
	b = append(b, `,"dist_m":`...)
	b = strconv.AppendFloat(b, distM, 'f', 1, 64)
	b = append(b, '}')
	f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindAssign, b)
	f.cloud.KeepPayloadBuf(b)
}

// emitPickup records a rider boarding with their realized wait.
func (f *Fleet) emitPickup(u *unit, riderSeq int64, waitS float64) {
	b := f.cloud.PayloadBuf()
	b = append(b, `{"rider":`...)
	b = strconv.AppendInt(b, riderSeq, 10)
	b = append(b, `,"wait_s":`...)
	b = strconv.AppendFloat(b, waitS, 'f', 2, 64)
	b = append(b, '}')
	f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindPickup, b)
	f.cloud.KeepPayloadBuf(b)
}

// emitDropoff records a completed trip with its duration.
func (f *Fleet) emitDropoff(u *unit, riderSeq int64, tripS float64) {
	b := f.cloud.PayloadBuf()
	b = append(b, `{"rider":`...)
	b = strconv.AppendInt(b, riderSeq, 10)
	b = append(b, `,"trip_s":`...)
	b = strconv.AppendFloat(b, tripS, 'f', 2, 64)
	b = append(b, '}')
	f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindDropoff, b)
	f.cloud.KeepPayloadBuf(b)
}

// emitHalt records a vehicle leaving service for good.
func (f *Fleet) emitHalt(u *unit) {
	b := f.cloud.PayloadBuf()
	b = append(b, `{"soc":`...)
	b = strconv.AppendFloat(b, u.soc, 'f', 4, 64)
	b = append(b, `,"odo_m":`...)
	b = strconv.AppendFloat(b, u.odo, 'f', 1, 64)
	b = append(b, '}')
	f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindHalt, b)
	f.cloud.KeepPayloadBuf(b)
}

// emitEpochEvents runs in observe(): per vehicle in id order, the epoch
// snapshot plus collision/reactive-brake deltas since the last barrier,
// then one batch flush (one WAL record per epoch).
func (f *Fleet) emitEpochEvents() {
	for _, u := range f.units {
		if d := u.sov.CollisionCount() - u.prevColl; d > 0 {
			u.prevColl += d
			b := f.cloud.PayloadBuf()
			b = append(b, `{"n":`...)
			b = strconv.AppendInt(b, int64(d), 10)
			b = append(b, '}')
			f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindCollision, b)
			f.cloud.KeepPayloadBuf(b)
		}
		if d := u.sov.ReactiveCount() - u.prevReact; d > 0 {
			u.prevReact += d
			b := f.cloud.PayloadBuf()
			b = append(b, `{"n":`...)
			b = strconv.AppendInt(b, int64(d), 10)
			b = append(b, '}')
			f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindReactiveBrake, b)
			f.cloud.KeepPayloadBuf(b)
		}
		b := f.cloud.PayloadBuf()
		b = append(b, `{"soc":`...)
		b = strconv.AppendFloat(b, u.soc, 'f', 4, 64)
		b = append(b, `,"odo_m":`...)
		b = strconv.AppendFloat(b, u.odo, 'f', 1, 64)
		b = append(b, `,"state":"`...)
		b = append(b, stateNames[u.state]...)
		b = append(b, `","trips":`...)
		b = strconv.AppendInt(b, u.trips, 10)
		b = append(b, '}')
		f.cloud.Add(uint32(u.id), f.epochEnd, telemetry.KindEpoch, b)
		f.cloud.KeepPayloadBuf(b)
	}
}

// flushCloud submits the epoch's accumulated events. A store error halts
// the uplink (the simulation itself keeps running) and is surfaced via
// CloudErr.
func (f *Fleet) flushCloud() {
	if err := f.cloud.Flush(); err != nil && f.cloudErr == nil {
		f.cloudErr = err
		f.cloud = nil
	}
}

// CloudErr reports the first telemetry-uplink failure, if any.
func (f *Fleet) CloudErr() error { return f.cloudErr }
