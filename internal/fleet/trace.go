package fleet

import (
	"io"
	"strconv"
)

// traceWriter emits one JSONL record per epoch. The encoder is hand-rolled
// over strconv.Append* into a single reused buffer: fmt would box every
// argument into an interface (one alloc each), which would blow the
// substrate's zero-steady-state-alloc budget at thousands of epochs. The
// record is a pure function of barrier state, so trace bytes are identical
// for any -workers count — the determinism tests diff them directly.
type traceWriter struct {
	w   io.Writer
	buf []byte
}

func newTraceWriter(w io.Writer) *traceWriter {
	return &traceWriter{w: w, buf: make([]byte, 0, 1024)}
}

func (t *traceWriter) key(k string) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, k...)
	t.buf = append(t.buf, '"', ':')
}

func (t *traceWriter) intField(k string, v int64) {
	t.key(k)
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

func (t *traceWriter) floatField(k string, v float64) {
	t.key(k)
	t.buf = strconv.AppendFloat(t.buf, v, 'f', 3, 64)
}

// record writes the epoch line. Runs on the serial barrier after dispatch,
// so the assignment list is the epoch's complete decision log — the replay
// test re-derives it from the seed and compares.
func (t *traceWriter) record(f *Fleet, completed int) {
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"epoch":`...)
	t.buf = strconv.AppendInt(t.buf, int64(f.epoch), 10)
	t.intField("t_ms", f.epochEnd.Milliseconds())
	t.intField("arrived", f.totArrived)
	t.key("assignments")
	t.buf = append(t.buf, '[')
	for i, a := range f.assignments {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, '[')
		t.buf = strconv.AppendInt(t.buf, a.rider, 10)
		t.buf = append(t.buf, ',')
		t.buf = strconv.AppendInt(t.buf, int64(a.vehicle), 10)
		t.buf = append(t.buf, ']')
	}
	t.buf = append(t.buf, ']')
	t.intField("completed", int64(completed))
	t.intField("trips", f.totCompleted)
	t.intField("waiting", int64(f.waiting()))
	idle, busy, charging, halted := f.counts()
	t.intField("idle", int64(idle))
	t.intField("busy", int64(busy))
	t.intField("charging", int64(charging))
	t.intField("halted", int64(halted))
	t.intField("cycles", f.cycles())
	t.intField("collisions", int64(f.collisions()))
	t.floatField("dist_m", f.distance())
	t.floatField("soc", f.meanSoC())
	t.buf = append(t.buf, '}', '\n')
	t.w.Write(t.buf)
}
