package fleet

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"sov/internal/core"
	"sov/internal/obs"
	"sov/internal/parallel"
	"sov/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cheapVehicle is a reduced-rate per-vehicle config for fleet tests: the
// determinism and dispatch properties under test do not depend on the
// deployed control rates, and the full-rate template makes multi-config
// matrices too slow for tier-1.
func cheapVehicle() core.Config {
	cfg := core.DefaultConfig()
	cfg.ControlRate = 5
	cfg.PhysicsRate = 25
	cfg.RadarRate = 10
	cfg.ReactiveRate = 10
	cfg.Pipeline = false
	cfg.PipelineForce = false
	cfg.Quant = false
	return cfg
}

func testConfig(vehicles int) Config {
	cfg := DefaultConfig()
	cfg.Vehicles = vehicles
	cfg.Regions = 2
	cfg.Shards = 4
	cfg.Seed = 7
	cfg.Vehicle = cheapVehicle()
	cfg.DemandPerHour = 1800 // ~0.5 riders/region-second: trips happen fast
	cfg.TripMinM = 30
	cfg.TripMaxM = 120
	return cfg
}

func TestSplitSeedStreamsIndependent(t *testing.T) {
	seen := map[int64]string{}
	record := func(who string, s int64) {
		if s == 0 {
			t.Fatalf("%s: zero seed", who)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("seed collision between %s and %s", prev, who)
		}
		seen[s] = who
	}
	for i := int64(0); i < 1000; i++ {
		record("vehicle", splitSeed(1, streamVehicle, i))
	}
	for r := int64(0); r < 32; r++ {
		record("world", splitSeed(1, streamRegionWorld, r))
		record("demand", splitSeed(1, streamDemand, r))
	}
	// Stream k must not depend on fleet shape: same triple, same seed.
	if splitSeed(1, streamVehicle, 17) != splitSeed(1, streamVehicle, 17) {
		t.Fatal("splitSeed is not a pure function")
	}
	// Different fleet seeds must decorrelate the whole family.
	if splitSeed(1, streamVehicle, 0) == splitSeed(2, streamVehicle, 0) {
		t.Fatal("fleet seed does not propagate")
	}
}

func TestFIFOReusesCapacity(t *testing.T) {
	var q fifo
	for round := 0; round < 3; round++ {
		for i := int32(0); i < 10; i++ {
			q.push(i)
		}
		for i := int32(0); i < 10; i++ {
			if q.peek() != i {
				t.Fatalf("peek = %d, want %d", q.peek(), i)
			}
			if got := q.pop(); got != i {
				t.Fatalf("pop = %d, want %d", got, i)
			}
		}
		if q.len() != 0 {
			t.Fatalf("len = %d after drain", q.len())
		}
		if cap(q.idx) > 16 {
			t.Fatalf("fifo grew to cap %d; drain should reset for reuse", cap(q.idx))
		}
	}
}

func TestPoissonDeterministicAndCalibrated(t *testing.T) {
	a, b := sim.NewRNG(3), sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		if poisson(a, 0.7) != poisson(b, 0.7) {
			t.Fatal("same stream, different draws")
		}
	}
	rng := sim.NewRNG(5)
	const n, lambda = 20000, 0.8
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.03 {
		t.Fatalf("poisson mean = %.3f, want ~%.1f", mean, lambda)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("lambda 0 must yield 0")
	}
}

func TestRingGeometry(t *testing.T) {
	const perim = 1000.0
	if got := ringPos(900, 250, perim); math.Abs(got-150) > 1e-9 {
		t.Fatalf("ringPos wrap = %v, want 150", got)
	}
	if got := ringDist(800, 100, perim); math.Abs(got-300) > 1e-9 {
		t.Fatalf("ringDist wrap = %v, want 300", got)
	}
	if got := ringDist(100, 800, perim); math.Abs(got-700) > 1e-9 {
		t.Fatalf("ringDist forward = %v, want 700", got)
	}
}

// TestDispatchInvariants drives a small fleet and checks every recorded
// assignment: vehicle in the rider's region, idle at assignment time, and
// riders of one region leave the queue in arrival (seq) order.
func TestDispatchInvariants(t *testing.T) {
	cfg := testConfig(16)
	f := New(cfg)
	totalAssigned := 0
	lastSeq := map[int32]int64{}
	for e := 0; e < 30; e++ {
		f.Step()
		for _, a := range f.assignments {
			u := f.units[a.vehicle]
			if u.state != stateToPickup {
				t.Fatalf("epoch %d: assigned vehicle %d not heading to pickup", f.epoch, a.vehicle)
			}
			if u.rider < 0 || f.riders[u.rider].seq != a.rider {
				t.Fatalf("epoch %d: assignment/rider mismatch", f.epoch)
			}
			rg := u.region
			if a.rider <= lastSeq[rg] {
				t.Fatalf("epoch %d: region %d dispatched rider %d after %d (FIFO broken)",
					f.epoch, rg, a.rider, lastSeq[rg])
			}
			lastSeq[rg] = a.rider
			totalAssigned++
		}
	}
	if totalAssigned == 0 {
		t.Fatal("no assignments in 30 s at 0.5 riders/region-second")
	}
	s := f.Summarize()
	if s.TripsAssigned != int64(totalAssigned) {
		t.Fatalf("summary assigned %d, counted %d", s.TripsAssigned, totalAssigned)
	}
	if s.RidersArrived < s.TripsAssigned {
		t.Fatal("assigned more riders than arrived")
	}
	if s.TripsCompleted > s.TripsAssigned {
		t.Fatal("completed more trips than assigned")
	}
}

// TestRechargeCycle starts the fleet nearly empty so vehicles hit the
// charger: availability must dip below 1 and the pack must refill.
func TestRechargeCycle(t *testing.T) {
	cfg := testConfig(8)
	cfg.DemandPerHour = 0
	cfg.InitialSoCMin, cfg.InitialSoCMax = 0.15, 0.21
	cfg.RechargeSoC = 0.20
	cfg.FullSoC = 0.30
	cfg.ChargeRateKW = 50 // compress the recharge cycle into the test horizon
	f := New(cfg)
	sawCharging := false
	for e := 0; e < 240; e++ {
		f.Step()
		if _, _, charging, _ := f.counts(); charging > 0 {
			sawCharging = true
		}
	}
	s := f.Summarize()
	if !sawCharging {
		t.Fatal("no vehicle ever charged despite starting at ~22% SoC")
	}
	if s.Availability >= 1 {
		t.Fatal("availability should reflect charging downtime")
	}
	if s.Halted != 0 {
		t.Fatalf("%d vehicles died; the charger must outrun the drive load", s.Halted)
	}
	if s.MeanSoC <= 0.21 {
		t.Fatalf("mean SoC %.3f never recovered", s.MeanSoC)
	}
}

func runFleetTrace(t *testing.T, cfg Config, workers int, horizon time.Duration) (string, string) {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	var buf bytes.Buffer
	cfg.Trace = &buf
	f := New(cfg)
	s := f.Run(horizon)
	return buf.String(), s.Render()
}

// TestDeterminismAcrossWorkersAndModes is the fleet determinism matrix:
// trace bytes and the rendered summary must be identical for any worker
// count, in serial and pipelined per-vehicle runtimes, on the float and
// quantized perception paths (satellite: workers {1,4,8} x {serial,
// pipelined} x {float,quant}).
func TestDeterminismAcrossWorkersAndModes(t *testing.T) {
	horizon := 12 * time.Second
	modes := []struct {
		name                   string
		pipeline, quant, sched bool
	}{
		{"serial/float", false, false, false},
		{"serial/quant", false, true, false},
		{"pipelined/float", true, false, false},
		{"pipelined/quant", true, true, false},
		{"serial/sched", false, false, true},
		{"pipelined/sched", true, false, true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := testConfig(24)
			cfg.PerceptionEvery = 4
			cfg.Vehicle.Quant = m.quant
			cfg.Vehicle.Pipeline = m.pipeline
			cfg.Vehicle.PipelineForce = m.pipeline
			cfg.Vehicle.Sched = m.sched
			refTrace, refSummary := runFleetTrace(t, cfg, 1, horizon)
			if refTrace == "" {
				t.Fatal("empty trace")
			}
			for _, w := range []int{4, 8} {
				trace, summary := runFleetTrace(t, cfg, w, horizon)
				if trace != refTrace {
					t.Fatalf("trace at %d workers differs from 1 worker:\n%s\nvs\n%s", w, firstDiff(trace, refTrace), refTrace[:min(200, len(refTrace))])
				}
				if summary != refSummary {
					t.Fatalf("summary at %d workers differs:\n%s\nvs\n%s", w, summary, refSummary)
				}
			}
		})
	}
}

// TestReplayFromSeed rebuilds the fleet from the same seed and requires
// identical dispatch decisions epoch by epoch — the trace embeds every
// (rider, vehicle) assignment, so byte equality is decision equality.
func TestReplayFromSeed(t *testing.T) {
	cfg := testConfig(16)
	a, _ := runFleetTrace(t, cfg, 1, 15*time.Second)
	b, _ := runFleetTrace(t, cfg, 2, 15*time.Second)
	if a != b {
		t.Fatalf("replay from seed diverged:\n%s", firstDiff(a, b))
	}
	cfg.Seed = 8
	c, _ := runFleetTrace(t, cfg, 1, 15*time.Second)
	if a == c {
		t.Fatal("different seeds produced identical fleets")
	}
}

// TestConcurrentShardsRace is the scratch-aliasing regression test
// (satellite: 64 vehicles advancing concurrently under -race, with the
// batched perception clones active so shared-weight scratch is exercised).
func TestConcurrentShardsRace(t *testing.T) {
	cfg := testConfig(64)
	cfg.Regions = 4
	cfg.Shards = 8
	cfg.PerceptionEvery = 1
	defer parallel.SetWorkers(parallel.SetWorkers(8))
	f := New(cfg)
	for e := 0; e < 5; e++ {
		f.Step()
	}
	if f.cycles() == 0 {
		t.Fatal("no control cycles captured")
	}
	s := f.Summarize()
	if s.Detections == 0 {
		t.Fatal("batched perception produced no detections over 5 epochs x 64 vehicles")
	}
}

// TestZeroAllocEpochSteadyState is the substrate's allocation gate: once
// warm, Step (advance + settle + demand + dispatch + metrics + trace)
// allocates nothing at one worker. (The multi-worker fan-out allocates its
// per-call closure in parallel.run, same as every other fan-out in the
// repo; the serial path is the budget.)
func TestZeroAllocEpochSteadyState(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	cfg := testConfig(8)
	cfg.PerceptionEvery = 1
	cfg.Trace = nullWriter{}
	f := New(cfg)
	f.AttachMetrics(obs.NewRegistry())
	// Warmup is long: beyond the obvious arenas (riders, queues, NN
	// scratch, trace buffer) the per-vehicle event free lists settle over
	// a few hundred epochs before the loop goes fully heap-silent.
	for e := 0; e < 300; e++ {
		f.Step()
	}
	if avg := testing.AllocsPerRun(30, f.Step); avg > 0 {
		t.Fatalf("fleet epoch allocates %.1f times in steady state, want 0", avg)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestMetricsGolden pins the fleet metrics exposition: bounded per-shard
// cardinality, stable ordering, stable names.
func TestMetricsGolden(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	cfg := testConfig(16)
	reg := obs.NewRegistry()
	f := New(cfg)
	f.AttachMetrics(reg)
	f.Run(20 * time.Second)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleet_metrics.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fleet exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestThousandVehicles is the scale smoke: 1000 vehicles advance one epoch
// with identical traces at 1 and 8 workers. Skipped under -short.
func TestThousandVehicles(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-vehicle epoch is slow on tier-1 budgets")
	}
	cfg := testConfig(1000)
	cfg.Regions = 8
	cfg.Shards = 16
	a, _ := runFleetTrace(t, cfg, 1, time.Second)
	b, _ := runFleetTrace(t, cfg, 8, time.Second)
	if a == "" || a != b {
		t.Fatalf("1000-vehicle epoch not worker-invariant:\n%s", firstDiff(a, b))
	}
}

func firstDiff(a, b string) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return "diff at byte " + strconv.Itoa(i) + ":\n..." + a[lo:min(len(a), i+80)] + "\nvs\n..." + b[lo:min(len(b), i+80)]
		}
	}
	return "length mismatch: " + strconv.Itoa(len(a)) + " vs " + strconv.Itoa(len(b))
}
