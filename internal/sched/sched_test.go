package sched

import (
	"sort"
	"testing"
	"time"

	"sov/internal/platform"
	"sov/internal/rpr"
)

func ms(v float64) time.Duration { return time.Duration(v * 1e6) }

func mustMapping(t *testing.T, s string) platform.Mapping {
	t.Helper()
	m, err := ParseMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// drive advances the scheduler n cycles against a synthetic workload: the
// given baseline (GPU/FPGA float, per-camera) task latencies in ms, scaled
// by whatever Transform the scheduler issues — exactly what the core latency
// model does — then observed back. Keyframes fire every kfEvery cycles
// (0 = never). Tracking always reports the KCF branch.
func drive(s *Scheduler, n int, soc float64, kfEvery int, depth, det, track, loc float64) {
	for i := 0; i < n; i++ {
		kf := kfEvery > 0 && s.cycle%kfEvery == 0
		tr, _ := s.BeginCycle(soc, kf)
		q := 1.0
		if tr.Quant {
			q = platform.QuantSpeedup
		}
		s.Observe(ms(depth/q*tr.Depth), ms(det/q*tr.Det), ms(track*tr.Track), ms(loc*tr.Loc), true)
	}
}

// calm is the steady-cruise workload: the Fig. 6 GPU/FPGA latencies at a
// light duty that keeps the thermal model far from its ceiling.
func calm(s *Scheduler, n int, soc float64) { drive(s, n, soc, 5, 4, 6, 1.7, 3.1) }

func TestParseMapping(t *testing.T) {
	m, err := ParseMapping("GPU/FPGA")
	if err != nil || m.SceneUnderstanding != "GPU" || m.Localization != "FPGA" {
		t.Fatalf("ParseMapping(GPU/FPGA) = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "GPU", "/FPGA", "GPU/"} {
		if _, err := ParseMapping(bad); err == nil {
			t.Fatalf("ParseMapping(%q) accepted", bad)
		}
	}
}

func TestNewRejectsUnknownMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mapping = mustMapping(t, "XPU/FPGA")
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a mapping outside the catalog")
	}
	cfg = DefaultConfig()
	cfg.WindowCycles = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted WindowCycles=0")
	}
}

// TestCandidatesNameOrdered pins the determinism prerequisite of the remap
// scan: the candidate table is built in sorted name order, so the strict-<
// best search resolves ties identically on every run.
func TestCandidatesNameOrdered(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(s.cand))
	for i, c := range s.cand {
		names[i] = c.name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("candidate table is not name-ordered: %v", names)
	}
	if len(names) != 16 {
		t.Fatalf("expected 4x4 candidate pairs, got %d: %v", len(names), names)
	}
}

// TestRemapConvergesFromContendedStart: started on the contended GPU/GPU
// pair, the scheduler must remap to the deployed GPU/FPGA point at the first
// window — and then never move again (the margin blocks ping-ponging).
func TestRemapConvergesFromContendedStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mapping = mustMapping(t, "GPU/GPU")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 200, 1, 5, 40, 60, 17, 31)
	st := s.Snapshot()
	if st.Mapping != "GPU/FPGA" {
		t.Fatalf("converged to %s, want GPU/FPGA", st.Mapping)
	}
	if st.Remaps != 1 {
		t.Fatalf("remaps = %d, want exactly 1 (no ping-pong)", st.Remaps)
	}
}

// TestRemapHoldsAtDeployedPoint: from the deployed mapping under the
// deployed workload there is nothing better, so no remap may ever fire.
func TestRemapHoldsAtDeployedPoint(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 200, 1, 5, 40, 60, 17, 31)
	if st := s.Snapshot(); st.Remaps != 0 || st.Mapping != "GPU/FPGA" {
		t.Fatalf("deployed point drifted: %+v", st)
	}
}

// TestStaticPinsEverything: Static disables the decision function entirely —
// no windows, no remaps, no operating-point switches, even from a bad start
// under pressure.
func TestStaticPinsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mapping = mustMapping(t, "GPU/GPU")
	cfg.Static = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(s, 100, 0.1, 5, 40, 60, 17, 31)
	st := s.Snapshot()
	if st.Windows != 0 || st.Remaps != 0 || st.OpSwitches != 0 {
		t.Fatalf("static scheduler decided something: %+v", st)
	}
	if st.Mapping != "GPU/GPU" || st.Quantized {
		t.Fatalf("static scheduler moved: %+v", st)
	}
}

// TestSoCHysteresis walks the battery-pressure band window by window: quant
// enters at SoCEnter, a recovery inside the band does nothing, and the exit
// waits out MinDwellWindows even once SoC clears SoCExit — so the operating
// point can never flap.
func TestSoCHysteresis(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := s.cfg.WindowCycles

	calm(s, w+1, 1) // first window boundary: healthy, stays float
	if s.Quantized() {
		t.Fatal("quantized while healthy")
	}
	calm(s, w, 0.20) // at/below SoCEnter: must enter int8
	if !s.Quantized() || s.Snapshot().OpSwitches != 1 {
		t.Fatalf("no quant entry at soc=0.20: %+v", s.Snapshot())
	}
	calm(s, w, 0.30) // inside the band: no exit
	if !s.Quantized() || s.Snapshot().OpSwitches != 1 {
		t.Fatalf("exited inside the hysteresis band: %+v", s.Snapshot())
	}
	// Recovered above SoCExit, but the dwell guard (MinDwellWindows=3 since
	// the switch) must hold the point through the next boundary — the second
	// window since entry — then release at the third.
	calm(s, w, 0.50)
	if !s.Quantized() {
		t.Fatal("exited before MinDwellWindows")
	}
	calm(s, w, 0.50)
	if s.Quantized() || s.Snapshot().OpSwitches != 2 {
		t.Fatalf("no exit after dwell + recovery: %+v", s.Snapshot())
	}
	calm(s, 5*w, 0.50) // and it stays out
	if st := s.Snapshot(); st.OpSwitches != 2 {
		t.Fatalf("operating point flapped: %+v", st)
	}
}

// TestThermalOpPoint: a detection-stall workload hot enough to push the
// projected steady temperature past the component ceiling forces the int8
// point; while the *float-equivalent* temperature stays above ThermalExitC
// the switch holds (no flap); once the load — and with it the projection —
// subsides, the scheduler returns to float exactly once.
func TestThermalOpPoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AmbientC = 45
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Saturated scene: 700 ms float-equivalent detection stalls.
	drive(s, 2*cfg.WindowCycles, 1, 1, 40, 700, 17, 31)
	if !s.Quantized() {
		t.Fatalf("no quant entry under thermal pressure (temp %.1fC)", s.TempC())
	}
	if s.TempC() < cfg.Thermal.MaxComponentTempC {
		t.Fatalf("entered quant below the ceiling: %.1fC", s.TempC())
	}
	sw := s.Snapshot().OpSwitches
	drive(s, 10*cfg.WindowCycles, 1, 1, 40, 700, 17, 31)
	if got := s.Snapshot().OpSwitches; got != sw {
		t.Fatalf("operating point flapped under sustained load: %d -> %d switches", sw, got)
	}
	// Load subsides: the duty EWMA decays, the float-equivalent projection
	// drops below ThermalExitC, and the point floats again — once.
	calm(s, 40*cfg.WindowCycles, 1)
	st := s.Snapshot()
	if st.Quantized || st.OpSwitches != sw+1 {
		t.Fatalf("no clean thermal exit: %+v", st)
	}
	if st.TempC > cfg.ThermalExitC {
		t.Fatalf("exited while projecting %.1fC > exit %.0fC", st.TempC, cfg.ThermalExitC)
	}
}

// TestQuantFloorNeverFloats: with the perception stack built quantized
// (-quant), the scheduler starts at int8 and may never switch to float,
// regardless of how cold the enclosure runs.
func TestQuantFloorNeverFloats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuantFloor = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Quantized() {
		t.Fatal("QuantFloor did not start quantized")
	}
	calm(s, 20*cfg.WindowCycles, 1)
	if st := s.Snapshot(); !st.Quantized || st.OpSwitches != 0 {
		t.Fatalf("QuantFloor floated: %+v", st)
	}
}

// TestStickyFrontEndBothWays: when the keyframe schedule transitions nearly
// every cycle and localization is cheap, holding the extract bitstream
// resident beats paying the swap rate — the scheduler goes sticky and
// FrontEnd ignores the schedule. When keyframes thin out and localization
// grows expensive, the tracking-on-extract penalty dominates and the policy
// reverts, with the margin guarding both transitions.
func TestStickyFrontEndBothWays(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Alternating keyframes (a swap almost every cycle), 5 ms localization.
	drive(s, 300, 1, 2, 4, 6, 1.7, 5)
	if !s.Snapshot().Sticky {
		t.Fatal("never went sticky under per-cycle keyframe transitions")
	}
	if tr, _ := s.BeginCycle(1, false); tr.Loc <= s.cand[s.cur].locR {
		t.Fatal("sticky off-key cycle did not pay the tracking-on-extract penalty")
	}
	if s.FrontEnd() != rpr.BitstreamFeatureExtract {
		t.Fatal("sticky front-end did not hold the extract bitstream off-key")
	}
	// Sparse keyframes, 60 ms localization: the penalty now costs more than
	// the (rare) swaps, so the policy must revert to following the schedule.
	drive(s, 400, 1, 10, 4, 6, 1.7, 60)
	if s.Snapshot().Sticky {
		t.Fatal("never reverted to the follow policy")
	}
	if _, _ = s.BeginCycle(1, false); s.FrontEnd() != rpr.BitstreamFeatureTrack {
		t.Fatal("follow policy did not track the schedule off-key")
	}
}

// TestNoteSwapAccounting: swaps charged via NoteSwap accumulate in the stats
// and feed the amortization EWMA the sticky decision reads.
func TestNoteSwapAccounting(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := s.swapMsEWMA
	s.NoteSwap(3 * time.Millisecond)
	s.NoteSwap(3 * time.Millisecond)
	st := s.Snapshot()
	if st.Swaps != 2 || st.SwapTotal != 6*time.Millisecond {
		t.Fatalf("swap accounting: %+v", st)
	}
	if s.swapMsEWMA <= before || s.swapMsEWMA > 3 {
		t.Fatalf("swap EWMA %.3f did not move toward 3 ms from %.3f", s.swapMsEWMA, before)
	}
}

// TestMulticamBatching: the detection multiplier a candidate is charged for
// extra cameras depends on its batching capability — marginal cost on the
// batching-capable GPU, full sequential cost elsewhere — and BatchCapable
// gates the batched path accordingly.
func TestMulticamBatching(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cameras = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := s.BeginCycle(1, true)
	want := 1 + cfg.BatchMarginal*2 // GPU batches: 1 + 0.4/extra image
	if tr.Det != want || !s.BatchCapable() {
		t.Fatalf("GPU 3-camera Det = %.2f batch=%v, want %.2f/true", tr.Det, s.BatchCapable(), want)
	}

	cfg.Mapping = mustMapping(t, "FPGA/FPGA")
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ = s.BeginCycle(1, true)
	seq := s.cand[s.cur].detR * 3 // FPGA runs cameras sequentially
	if tr.Det != seq || s.BatchCapable() {
		t.Fatalf("FPGA 3-camera Det = %.2f batch=%v, want %.2f/false", tr.Det, s.BatchCapable(), seq)
	}
}

// TestSchedulerDeterministic: two schedulers fed the identical cycle
// sequence land in identical states — the decision function is pure over
// EWMA state accumulated in cycle order.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() Stats {
		cfg := DefaultConfig()
		cfg.Mapping = mustMapping(t, "GPU/GPU")
		cfg.AmbientC = 45
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		drive(s, 150, 1, 5, 40, 700, 17, 31)
		s.NoteSwap(2 * time.Millisecond)
		drive(s, 150, 0.2, 3, 4, 6, 1.7, 3.1)
		return s.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical drives diverged:\n%+v\n%+v", a, b)
	}
}
