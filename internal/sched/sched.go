// Package sched is the online heterogeneous scheduler: it treats the
// perception stage graph (depth ∥ detection→tracking, localization) as a
// dataflow over the platform.Catalog processors and re-evaluates the
// task-to-processor mapping every cycle window from *observed* virtual-time
// latencies instead of the static Fig. 6 table. Three decisions are made at
// window boundaries, all deterministic functions of EWMA state accumulated
// on the engine thread in cycle order:
//
//   - remapping: per-task latency EWMAs, normalized back to the baseline
//     GPU/FPGA float operating point, are projected onto every candidate
//     (SU, Loc) processor pair — GPU contention included in the *candidate*
//     scoring via platform.Contended, so scoring and final evaluation cannot
//     diverge — and the mapping moves only when the best candidate beats the
//     current one by RemapMargin (hysteresis against ping-ponging).
//
//   - operating point: a lumped thermal model (models.ThermalModel) over the
//     duty-scaled processor powers decides quant↔float switches. Entering the
//     int8 operating point requires the projected steady temperature to reach
//     the component ceiling (or battery SoC to fall to SoCEnter); exiting
//     requires the *float-equivalent* temperature — what the enclosure would
//     see if the switch were undone — to fall below ThermalExitC, plus a
//     minimum dwell and SoC recovery, so the switch can never flap.
//
//   - localization front-end: the RPR keyframe schedule swaps bitstreams at
//     a measured rate; when the keyframe duty rises (dynamic traffic forcing
//     feature extraction almost every frame) the scheduler amortizes the
//     <3 ms swap cost against the cost of just leaving the extract bitstream
//     resident (paying a small tracking-on-extract penalty on the remaining
//     non-key cycles) and goes sticky, with a margin on both transitions.
//
// Every input is virtual-class (drawn latencies, virtual SoC, keyframe
// schedule), all state updates happen in BeginCycle/Observe on the engine
// thread in cycle order, and the decision functions are pure over that
// state — so runs are byte-identical across worker counts and control-loop
// modes. The hot per-cycle methods are allocation-free (//sov:hotpath).
package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sov/internal/models"
	"sov/internal/platform"
	"sov/internal/rpr"
)

// Transform is the per-cycle latency scaling the scheduler hands the core
// latency model: multipliers relative to the baseline GPU/FPGA float draw,
// applied after the RNG draws so the random stream is identical for every
// mapping and operating point. Quant selects the int8 operating point for
// the dense scene-understanding tasks (the same platform.QuantizedLatency
// division the -quant flag applies); Det folds in both the mapping ratio
// and the multi-camera factor (sequential cameras multiply, batched cameras
// amortize); Track applies only to the KCF fallback branch (radar spatial
// sync runs on the CPU regardless of mapping).
type Transform struct {
	Depth, Det, Track, Loc float64
	Quant                  bool
}

// Events reports what a BeginCycle decided at a window boundary, for the
// observability layer (spans and counters are emitted by the core loop).
type Events struct {
	Remapped   bool
	OpSwitched bool
}

// Stats is the scheduler's cumulative decision record.
type Stats struct {
	Windows    int
	Remaps     int
	OpSwitches int
	// Swaps counts RPR bitstream swaps charged to cycles (via NoteSwap);
	// SwapTotal is their summed latency.
	Swaps     int
	SwapTotal time.Duration
	// Mapping is the current "SU/Loc" assignment; Quantized and Sticky are
	// the current operating point and front-end policy.
	Mapping   string
	Quantized bool
	Sticky    bool
	// TempC is the last float-equivalent steady temperature the thermal
	// model projected.
	TempC float64
}

// Config parameterizes the scheduler. DefaultConfig returns the deployed
// values; the hysteresis constants are documented in DESIGN.md §13.
type Config struct {
	// Cameras feeding scene understanding (detection inference per cycle).
	Cameras int
	// ControlRate converts per-cycle latencies into processor duty.
	ControlRate float64
	// AmbientC is the enclosure ambient for the thermal model.
	AmbientC float64

	// WindowCycles is the decision cadence.
	WindowCycles int
	// EWMAAlpha smooths the per-task latency estimates.
	EWMAAlpha float64
	// DutyAlpha smooths the thermal duty and front-end rate estimates
	// (slower, so single-cycle spikes do not flap decisions).
	DutyAlpha float64
	// RemapMargin: a candidate must beat the current mapping's projected
	// perception latency by this fraction before a remap fires.
	RemapMargin float64
	// ThermalExitC: the float-equivalent temperature must fall below this
	// (strictly under the enter ceiling) before quant can be undone.
	ThermalExitC float64
	// SoCEnter/SoCExit bound the battery-pressure hysteresis band.
	SoCEnter, SoCExit float64
	// MinDwellWindows is the minimum number of windows between operating-
	// point switches.
	MinDwellWindows int
	// StickyMargin is the hysteresis ratio on front-end policy changes.
	StickyMargin float64
	// TrackOnExtractPenalty is the localization slowdown of running the
	// feature-extract bitstream on a non-keyframe cycle (sticky policy).
	TrackOnExtractPenalty float64
	// BatchMarginal is the marginal cost of one extra image in a batched
	// inference relative to a standalone forward (layer-major batching
	// amortizes weight traffic; nn.ForwardBatchPooled).
	BatchMarginal float64

	// Mapping is the initial (SU, Loc) assignment; Static pins it and
	// disables all online decisions (experiment baselines).
	Mapping platform.Mapping
	Static  bool
	// QuantFloor pins the operating point at int8 (the -quant flag: the
	// perception stack is built quantized, so the scheduler may not float).
	QuantFloor bool

	// Thermal is the enclosure model; BaseW the non-server power floor
	// (sensors, idle) the duty-scaled processor powers add onto.
	Thermal models.ThermalModel
	BaseW   float64
}

// DefaultConfig returns the deployed scheduler parameters.
func DefaultConfig() Config {
	return Config{
		Cameras:               1,
		ControlRate:           10,
		AmbientC:              25,
		WindowCycles:          10,
		EWMAAlpha:             0.2,
		DutyAlpha:             0.05,
		RemapMargin:           0.05,
		ThermalExitC:          79,
		SoCEnter:              0.25,
		SoCExit:               0.35,
		MinDwellWindows:       3,
		StickyMargin:          1.25,
		TrackOnExtractPenalty: 0.10,
		BatchMarginal:         0.4,
		Mapping:               platform.OurDesign(),
		Thermal:               models.DefaultThermalModel(),
		BaseW:                 models.DefaultPowerBudget().TotalW() - models.ServerDynamicPowerW,
	}
}

// ParseMapping parses an "SU/Loc" processor pair ("GPU/FPGA").
func ParseMapping(s string) (platform.Mapping, error) {
	su, loc, ok := strings.Cut(s, "/")
	if !ok || su == "" || loc == "" {
		return platform.Mapping{}, fmt.Errorf("sched: mapping %q is not SU/Loc", s)
	}
	return platform.Mapping{SceneUnderstanding: su, Localization: loc}, nil
}

// candidate is one precomputed (SU, Loc) assignment: task-latency ratios
// relative to the baseline GPU/FPGA float operating point (contention
// folded in), active powers for the thermal model, and batching capability.
type candidate struct {
	name                       string
	m                          platform.Mapping
	depthR, detR, trackR, locR float64
	powSU, powLoc              float64
	batch                      bool
}

// Scheduler is the online mapping/operating-point controller. All methods
// must be called from the engine thread in cycle order.
type Scheduler struct {
	cfg  Config
	cand []candidate
	cur  int

	cycle int

	// Per-task latency EWMAs, normalized to the baseline GPU/FPGA float
	// per-camera operating point (milliseconds), so candidate scoring is a
	// pure projection. seeded marks the first observation.
	nDepth, nDet, nTrack, nLoc float64
	seeded                     bool

	// Thermal duty EWMAs: the current mapping's float-equivalent scene-
	// understanding and localization busy milliseconds per cycle.
	suDutyMs, locDutyMs float64

	// Front-end policy state: keyframe duty, the rate at which the legacy
	// follow-the-keyframe policy would swap bitstreams, the observed swap
	// latency, and whether the extract bitstream is held resident.
	kfDuty, transRate float64
	swapMsEWMA        float64
	lastLegacyExtract bool
	feInit            bool
	sticky            bool
	feExtract         bool // this cycle's front-end choice

	quant        bool
	dwellWindows int

	lastTempC float64

	tr Transform
	// locApplied is the Loc multiplier issued this cycle (sticky penalty
	// included), needed to normalize the observation back out.
	locApplied float64

	stats Stats
}

// New builds a scheduler over the platform catalog. The initial mapping
// must name catalog processors that support the perception tasks.
func New(cfg Config) (*Scheduler, error) {
	if cfg.WindowCycles <= 0 || cfg.ControlRate <= 0 {
		return nil, fmt.Errorf("sched: config needs positive WindowCycles and ControlRate")
	}
	if cfg.Cameras < 1 {
		cfg.Cameras = 1
	}
	cat := platform.Catalog()
	baseDepth := float64(cat["GPU"].Latency[platform.TaskDepth])
	baseDet := float64(cat["GPU"].Latency[platform.TaskDetection])
	baseTrack := float64(cat["GPU"].Latency[platform.TaskTracking])
	baseLoc := float64(cat["FPGA"].Latency[platform.TaskLocalization])

	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)

	s := &Scheduler{cfg: cfg, cur: -1, swapMsEWMA: 2.7}
	for _, su := range names {
		sp := cat[su]
		d, ok1 := sp.Latency[platform.TaskDepth]
		det, ok2 := sp.Latency[platform.TaskDetection]
		trk, ok3 := sp.Latency[platform.TaskTracking]
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		for _, loc := range names {
			lp := cat[loc]
			ll, ok := lp.Latency[platform.TaskLocalization]
			if !ok {
				continue
			}
			c := candidate{
				name:   su + "/" + loc,
				m:      platform.Mapping{SceneUnderstanding: su, Localization: loc},
				depthR: float64(d) / baseDepth,
				detR:   float64(det) / baseDet,
				trackR: float64(trk) / baseTrack,
				locR:   float64(ll) / baseLoc,
				powSU:  sp.PowerW,
				powLoc: lp.PowerW,
				batch:  sp.Batching,
			}
			if platform.Contended(cat, c.m) {
				c.depthR *= platform.ContentionFactor
				c.detR *= platform.ContentionFactor
				c.trackR *= platform.ContentionFactor
			}
			s.cand = append(s.cand, c)
			if c.m == cfg.Mapping {
				s.cur = len(s.cand) - 1
			}
		}
	}
	if s.cur < 0 {
		return nil, fmt.Errorf("sched: initial mapping %s/%s is not a schedulable catalog pair",
			cfg.Mapping.SceneUnderstanding, cfg.Mapping.Localization)
	}
	s.quant = cfg.QuantFloor
	s.lastTempC = cfg.Thermal.SteadyTempC(cfg.BaseW+cfg.Thermal.FanPowerW, cfg.AmbientC)
	return s, nil
}

// camFactor is the detection multiplier for the camera count on a
// candidate: batching-capable processors amortize extra images at the
// marginal cost, everything else runs them sequentially.
func (s *Scheduler) camFactor(c *candidate) float64 {
	if s.cfg.Cameras <= 1 {
		return 1
	}
	if c.batch {
		return 1 + s.cfg.BatchMarginal*float64(s.cfg.Cameras-1)
	}
	return float64(s.cfg.Cameras)
}

// score projects the normalized EWMAs onto a candidate at the current
// operating point: max(scene understanding, localization) in baseline-
// equivalent milliseconds. Pure over the EWMA state.
func (s *Scheduler) score(c *candidate) float64 {
	qf := 1.0
	if s.quant {
		qf = 1 / platform.QuantSpeedup
	}
	su := s.nDet*qf*c.detR*s.camFactor(c) + s.nTrack*c.trackR
	if d := s.nDepth * qf * c.depthR; d > su {
		su = d
	}
	if loc := s.nLoc * c.locR; loc > su {
		return loc
	}
	return su
}

// BeginCycle advances the scheduler one control cycle: at window boundaries
// it runs the decision function, then fills and returns the cycle's
// Transform plus any decision events. keyframe is the localization
// front-end schedule, soc the battery state of charge. The returned
// Transform is owned by the scheduler and valid until the next BeginCycle.
//
//sov:hotpath
func (s *Scheduler) BeginCycle(soc float64, keyframe bool) (*Transform, Events) {
	s.cycle++
	var ev Events
	if !s.cfg.Static && s.cycle > 1 && (s.cycle-1)%s.cfg.WindowCycles == 0 {
		ev = s.decide(soc)
	}

	c := &s.cand[s.cur]
	s.tr.Quant = s.quant
	s.tr.Depth = c.depthR
	s.tr.Det = c.detR * s.camFactor(c)
	s.tr.Track = c.trackR

	// Front-end choice: follow the keyframe schedule, or hold the extract
	// bitstream resident and pay the tracking-on-extract penalty off-key.
	s.feExtract = keyframe || s.sticky
	s.tr.Loc = c.locR
	if s.sticky && !keyframe {
		s.tr.Loc *= 1 + s.cfg.TrackOnExtractPenalty
	}
	s.locApplied = s.tr.Loc

	// Policy-independent front-end telemetry: what the legacy schedule
	// would have loaded, and how often it transitions.
	legacyExtract := keyframe
	if s.feInit {
		t := 0.0
		if legacyExtract != s.lastLegacyExtract {
			t = 1
		}
		s.transRate += s.cfg.DutyAlpha * (t - s.transRate)
	}
	s.lastLegacyExtract = legacyExtract
	s.feInit = true
	kf := 0.0
	if keyframe {
		kf = 1
	}
	s.kfDuty += s.cfg.DutyAlpha * (kf - s.kfDuty)

	return &s.tr, ev
}

// Observe feeds one cycle's drawn task latencies (post-Transform, pre-RPR
// swap charge) back into the EWMA state, normalizing the applied mapping,
// operating-point, and camera factors back out so the estimates stay in
// baseline GPU/FPGA float per-camera terms. kcf reports whether tracking
// ran the KCF fallback (mapping-dependent) or radar spatial sync (CPU,
// mapping-independent).
//
//sov:hotpath
func (s *Scheduler) Observe(depth, det, track, loc time.Duration, kcf bool) {
	c := &s.cand[s.cur]
	qf := 1.0
	if s.quant {
		qf = platform.QuantSpeedup
	}
	depthMs := float64(depth) / 1e6
	detMs := float64(det) / 1e6
	trackMs := float64(track) / 1e6
	locMs := float64(loc) / 1e6

	nd := depthMs * qf / c.depthR
	ndet := detMs * qf / (c.detR * s.camFactor(c))
	ntrk := trackMs
	if kcf {
		ntrk = trackMs / c.trackR
	}
	nloc := locMs / s.locApplied

	a := s.cfg.EWMAAlpha
	if !s.seeded {
		s.nDepth, s.nDet, s.nTrack, s.nLoc = nd, ndet, ntrk, nloc
		s.suDutyMs = s.floatSU(depthMs, detMs, trackMs, qf)
		s.locDutyMs = locMs
		s.seeded = true
		return
	}
	s.nDepth += a * (nd - s.nDepth)
	s.nDet += a * (ndet - s.nDet)
	s.nTrack += a * (ntrk - s.nTrack)
	s.nLoc += a * (nloc - s.nLoc)

	// Thermal duty tracks the *float-equivalent* busy time of the current
	// mapping, so the exit condition evaluates the world where the quant
	// switch is undone (anti-flap: see decide).
	da := s.cfg.DutyAlpha
	s.suDutyMs += da * (s.floatSU(depthMs, detMs, trackMs, qf) - s.suDutyMs)
	s.locDutyMs += da * (locMs - s.locDutyMs)
}

// floatSU reconstructs the cycle's float-equivalent scene-understanding
// milliseconds from the observed (possibly quantized) draws.
func (s *Scheduler) floatSU(depthMs, detMs, trackMs, qf float64) float64 {
	su := detMs*qf + trackMs
	if d := depthMs * qf; d > su {
		su = d
	}
	return su
}

// decide runs at window boundaries: operating point, mapping, front-end
// policy. Pure over the EWMA state and soc.
func (s *Scheduler) decide(soc float64) Events {
	var ev Events
	s.stats.Windows++
	cfg := &s.cfg
	c := &s.cand[s.cur]

	// Operating point: duty-scaled processor powers over the base load. The
	// duty EWMAs are kept in observed (mapping-applied, float-equivalent)
	// milliseconds, so duty = busy ms / control period directly.
	perCycle := 1000 / cfg.ControlRate // ms of wall per control cycle
	loadF := cfg.BaseW + cfg.Thermal.FanPowerW +
		s.suDutyMs/perCycle*c.powSU + s.locDutyMs/perCycle*c.powLoc
	tempF := cfg.Thermal.SteadyTempC(loadF, cfg.AmbientC)
	s.lastTempC = tempF

	s.dwellWindows++
	if !s.quant {
		if tempF >= cfg.Thermal.MaxComponentTempC || soc <= cfg.SoCEnter {
			s.quant = true
			s.stats.OpSwitches++
			s.dwellWindows = 0
			ev.OpSwitched = true
		}
	} else if !cfg.QuantFloor && s.dwellWindows >= cfg.MinDwellWindows &&
		tempF <= cfg.ThermalExitC && soc >= cfg.SoCExit {
		s.quant = false
		s.stats.OpSwitches++
		s.dwellWindows = 0
		ev.OpSwitched = true
	}

	// Remap: strict improvement beyond the margin, candidates visited in
	// name order so ties resolve deterministically.
	curScore := s.score(c)
	best, bestScore := s.cur, curScore
	for i := range s.cand {
		if sc := s.score(&s.cand[i]); sc < bestScore {
			best, bestScore = i, sc
		}
	}
	if best != s.cur && bestScore < (1-cfg.RemapMargin)*curScore {
		s.cur = best
		s.stats.Remaps++
		ev.Remapped = true
	}

	// Front-end policy: amortize the swap rate against the sticky penalty.
	costFollow := s.transRate * s.swapMsEWMA
	costSticky := (1 - s.kfDuty) * cfg.TrackOnExtractPenalty * s.nLoc * s.cand[s.cur].locR
	if !s.sticky {
		if costSticky*cfg.StickyMargin < costFollow {
			s.sticky = true
		}
	} else if costFollow*cfg.StickyMargin < costSticky {
		s.sticky = false
	}
	return ev
}

// FrontEnd returns the localization front-end bitstream the current cycle
// should have resident (BeginCycle must have run this cycle).
//
//sov:hotpath
func (s *Scheduler) FrontEnd() rpr.Bitstream {
	if s.feExtract {
		return rpr.BitstreamFeatureExtract
	}
	return rpr.BitstreamFeatureTrack
}

// NoteSwap charges an RPR swap to the scheduler's accounting and updates
// the amortization estimate.
//
//sov:hotpath
func (s *Scheduler) NoteSwap(d time.Duration) {
	s.stats.Swaps++
	s.stats.SwapTotal += d
	s.swapMsEWMA += s.cfg.EWMAAlpha * (float64(d)/1e6 - s.swapMsEWMA)
}

// BatchCapable reports whether scene understanding currently sits on a
// batching-capable processor — the gate for multi-camera (and fleet
// cross-vehicle) batched inference.
func (s *Scheduler) BatchCapable() bool { return s.cand[s.cur].batch }

// MappingName returns the current "SU/Loc" assignment.
func (s *Scheduler) MappingName() string { return s.cand[s.cur].name }

// Quantized reports the current operating point.
func (s *Scheduler) Quantized() bool { return s.quant }

// TempC returns the last float-equivalent steady temperature projection.
func (s *Scheduler) TempC() float64 { return s.lastTempC }

// Snapshot returns the cumulative decision record.
func (s *Scheduler) Snapshot() Stats {
	st := s.stats
	st.Mapping = s.cand[s.cur].name
	st.Quantized = s.quant
	st.Sticky = s.sticky
	st.TempC = s.lastTempC
	return st
}
