package canbus

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PeriodicMessage is one entry of the vehicle's CAN schedule.
type PeriodicMessage struct {
	Name   string
	ID     uint32
	DLC    int
	Period time.Duration
}

// DefaultSchedule returns the deployed bus schedule: reactive overrides
// (event-driven, modeled at their radar rate), control commands at 10 Hz,
// vehicle status at 50 Hz, diagnostics at 1 Hz.
func DefaultSchedule() []PeriodicMessage {
	return []PeriodicMessage{
		{Name: "reactive-override", ID: IDReactiveOverride, DLC: 8, Period: 50 * time.Millisecond},
		{Name: "control-command", ID: IDControlCommand, DLC: 8, Period: 100 * time.Millisecond},
		{Name: "vehicle-status", ID: IDVehicleStatus, DLC: 8, Period: 20 * time.Millisecond},
		{Name: "diagnostics", ID: IDDiagnostics, DLC: 8, Period: time.Second},
	}
}

// frameTime returns the wire time of one message instance.
func frameTime(m PeriodicMessage, bitRate int) time.Duration {
	f := Frame{ID: m.ID, DLC: m.DLC}
	return time.Duration(float64(f.BitLength()) / float64(bitRate) * float64(time.Second))
}

// BusLoad returns the schedule's utilization fraction of the bus.
func BusLoad(sched []PeriodicMessage, bitRate int) float64 {
	u := 0.0
	for _, m := range sched {
		if m.Period <= 0 {
			continue
		}
		u += frameTime(m, bitRate).Seconds() / m.Period.Seconds()
	}
	return u
}

// ResponseTime holds the classical CAN worst-case response-time analysis
// result for one message.
type ResponseTime struct {
	Message PeriodicMessage
	// Blocking is the longest lower-priority frame that can be mid-flight.
	Blocking time.Duration
	// Interference is the queueing delay from higher-priority traffic.
	Interference time.Duration
	// WorstCase = Blocking + Interference + own transmission.
	WorstCase time.Duration
	// MeetsDeadline assumes deadline = period.
	MeetsDeadline bool
}

// AnalyzeSchedule performs fixed-point worst-case response-time analysis
// (Tindell/Davis style) over the schedule on a bus of the given bit rate.
// Lower ID = higher priority; a frame in flight cannot be preempted.
func AnalyzeSchedule(sched []PeriodicMessage, bitRate int) []ResponseTime {
	msgs := make([]PeriodicMessage, len(sched))
	copy(msgs, sched)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })

	out := make([]ResponseTime, len(msgs))
	for i, m := range msgs {
		own := frameTime(m, bitRate)
		// Blocking: the longest frame among lower-priority messages.
		var blocking time.Duration
		for j := i + 1; j < len(msgs); j++ {
			if ft := frameTime(msgs[j], bitRate); ft > blocking {
				blocking = ft
			}
		}
		// Fixed-point iteration on the queueing delay w:
		// w = blocking + sum_{hp} ceil((w + tau) / T_hp) * C_hp.
		const tau = time.Microsecond // arbitration granularity
		w := blocking
		for iter := 0; iter < 100; iter++ {
			next := blocking
			for j := 0; j < i; j++ {
				hp := msgs[j]
				chp := frameTime(hp, bitRate)
				n := (w + tau + hp.Period - 1) / hp.Period
				next += time.Duration(n) * chp
			}
			if next == w {
				break
			}
			w = next
			if w > 10*time.Second {
				break // unschedulable; bail out
			}
		}
		rt := ResponseTime{
			Message:      m,
			Blocking:     blocking,
			Interference: w - blocking,
			WorstCase:    w + own,
		}
		rt.MeetsDeadline = rt.WorstCase <= m.Period
		out[i] = rt
	}
	return out
}

// RenderAnalysis formats the schedule analysis as a table.
func RenderAnalysis(rts []ResponseTime, bitRate int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %10s %12s %12s %6s\n",
		"message", "ID", "period", "worst-case", "blocking", "ok")
	for _, rt := range rts {
		fmt.Fprintf(&b, "%-20s %#8x %10v %12v %12v %6v\n",
			rt.Message.Name, rt.Message.ID, rt.Message.Period,
			rt.WorstCase.Round(time.Microsecond), rt.Blocking.Round(time.Microsecond), rt.MeetsDeadline)
	}
	fmt.Fprintf(&b, "bus load: %.2f%%\n", 100*BusLoad(schedOf(rts), bitRate))
	return b.String()
}

func schedOf(rts []ResponseTime) []PeriodicMessage {
	out := make([]PeriodicMessage, len(rts))
	for i, rt := range rts {
		out[i] = rt.Message
	}
	return out
}
