package canbus

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		{},
		{SteerRad: 0.25, AccelMps2: -4, EStop: true, Seq: 42},
		{SteerRad: -0.5, AccelMps2: 2.5, Seq: 65535},
	}
	for _, c := range cases {
		f, err := EncodeCommand(IDControlCommand, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCommand(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.SteerRad-c.SteerRad) > 0.005 ||
			math.Abs(got.AccelMps2-c.AccelMps2) > 0.005 ||
			got.EStop != c.EStop || got.Seq != c.Seq {
			t.Fatalf("roundtrip %+v -> %+v", c, got)
		}
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(steer, accel float64, estop bool, seq uint16) bool {
		if math.IsNaN(steer) || math.IsNaN(accel) {
			return true
		}
		steer = math.Mod(steer, 3)
		accel = math.Mod(accel, 10)
		c := Command{SteerRad: steer, AccelMps2: accel, EStop: estop, Seq: seq}
		fr, err := EncodeCommand(IDControlCommand, c)
		if err != nil {
			return false
		}
		got, err := DecodeCommand(fr)
		if err != nil {
			return false
		}
		return math.Abs(got.SteerRad-steer) <= 0.0051 &&
			math.Abs(got.AccelMps2-accel) <= 0.0051 &&
			got.EStop == estop && got.Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsHugeValues(t *testing.T) {
	if _, err := EncodeCommand(IDControlCommand, Command{SteerRad: 1e6}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	f, err := EncodeCommand(IDControlCommand, Command{SteerRad: 0.1, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	f.Data[1] ^= 0xFF
	if _, err := DecodeCommand(f); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	f, _ := NewFrame(IDControlCommand, []byte{1, 2, 3})
	if _, err := DecodeCommand(f); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(0x800, nil); err == nil {
		t.Fatal("expected 11-bit ID error")
	}
	if _, err := NewFrame(0x10, make([]byte, 9)); err == nil {
		t.Fatal("expected payload length error")
	}
}

func TestBitLength(t *testing.T) {
	f, _ := NewFrame(0x10, make([]byte, 8))
	// 47 + 64 payload + stuffing((34+64)/5 = 19) = 130.
	if got := f.BitLength(); got != 130 {
		t.Fatalf("bit length = %d, want 130", got)
	}
	empty, _ := NewFrame(0x10, nil)
	if empty.BitLength() >= f.BitLength() {
		t.Fatal("empty frame should be shorter")
	}
}

func TestCommandLatencyAboutOneMillisecond(t *testing.T) {
	// Paper: Tdata ≈ 1 ms.
	lat := NewBus().CommandLatency()
	if lat < 700*time.Microsecond || lat > 1300*time.Microsecond {
		t.Fatalf("command latency = %v, want ~1 ms", lat)
	}
}

func TestArbitrationPriority(t *testing.T) {
	b := NewBus()
	lo, _ := NewFrame(IDDiagnostics, []byte{1})
	hi, _ := NewFrame(IDReactiveOverride, []byte{2})
	mid, _ := NewFrame(IDControlCommand, []byte{3})
	b.Submit(lo)
	b.Submit(hi)
	b.Submit(mid)
	ds := b.Arbitrate()
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	if ds[0].Frame.ID != IDReactiveOverride || ds[1].Frame.ID != IDControlCommand || ds[2].Frame.ID != IDDiagnostics {
		t.Fatalf("order = %#x %#x %#x", ds[0].Frame.ID, ds[1].Frame.ID, ds[2].Frame.ID)
	}
	// Latencies accumulate: each later frame waits for earlier ones.
	if !(ds[0].Latency < ds[1].Latency && ds[1].Latency < ds[2].Latency) {
		t.Fatalf("latencies not cumulative: %v", ds)
	}
}

func TestArbitrationFIFOWithinID(t *testing.T) {
	b := NewBus()
	f1, _ := NewFrame(IDControlCommand, []byte{1})
	f2, _ := NewFrame(IDControlCommand, []byte{2})
	b.Submit(f1)
	b.Submit(f2)
	ds := b.Arbitrate()
	if ds[0].Frame.Data[0] != 1 || ds[1].Frame.Data[0] != 2 {
		t.Fatal("FIFO within same ID violated")
	}
}

func TestArbitrateEmpty(t *testing.T) {
	if ds := NewBus().Arbitrate(); ds != nil {
		t.Fatalf("empty arbitrate = %v", ds)
	}
}

func TestReactiveOverrideOutranksControl(t *testing.T) {
	if IDReactiveOverride >= IDControlCommand {
		t.Fatal("reactive override must have the highest priority (lowest ID)")
	}
}

func TestTransmitTimeZeroBitrate(t *testing.T) {
	b := &Bus{BitRate: 0}
	f, _ := NewFrame(0x1, []byte{1})
	if b.TransmitTime(f) != 0 {
		t.Fatal("zero bitrate should yield zero time, not Inf")
	}
}
