// Package canbus models the Controller Area Network that connects the
// computing platform to the vehicle's ECU (Fig. 7). It provides CAN 2.0A
// frame encoding for control commands, priority arbitration (lower ID wins),
// and a bit-level timing model that reproduces the ~1 ms Tdata the paper
// measures for command delivery.
package canbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Standard 11-bit identifiers used on the vehicle bus. Lower ID = higher
// priority; the reactive-path override outranks everything else.
const (
	IDReactiveOverride uint32 = 0x010
	IDControlCommand   uint32 = 0x020
	IDVehicleStatus    uint32 = 0x030
	IDDiagnostics      uint32 = 0x100

	maxStandardID uint32 = 0x7FF
)

// Frame is a classic CAN 2.0A data frame (11-bit ID, up to 8 data bytes).
type Frame struct {
	ID   uint32
	Data [8]byte
	DLC  int
}

// NewFrame builds a frame, validating the identifier and payload length.
func NewFrame(id uint32, payload []byte) (Frame, error) {
	if id > maxStandardID {
		return Frame{}, fmt.Errorf("canbus: id %#x exceeds 11-bit range", id)
	}
	if len(payload) > 8 {
		return Frame{}, fmt.Errorf("canbus: payload %d bytes exceeds 8", len(payload))
	}
	f := Frame{ID: id, DLC: len(payload)}
	copy(f.Data[:], payload)
	return f, nil
}

// BitLength returns the worst-case wire length of the frame in bits: the
// 47 overhead bits of a standard data frame plus 8*DLC payload bits plus
// worst-case bit stuffing (one stuff bit per 5 bits of the stuffable
// region).
func (f Frame) BitLength() int {
	stuffable := 34 + 8*f.DLC // SOF..CRC region subject to stuffing
	stuffBits := stuffable / 5
	return 47 + 8*f.DLC + stuffBits
}

// Command is the planner's control output carried over the bus: steering
// angle, acceleration (negative = braking), and an emergency-stop flag for
// the reactive path.
type Command struct {
	SteerRad  float64 // steering angle, positive left
	AccelMps2 float64 // longitudinal acceleration demand
	EStop     bool    // reactive-path hard stop
	Seq       uint16  // sequence number for loss detection
}

// scale factors for the fixed-point encoding (centirad / centi-m/s²).
const cmdScale = 100.0

// EncodeCommand packs a Command into a CAN frame with the given ID.
func EncodeCommand(id uint32, c Command) (Frame, error) {
	steer := c.SteerRad * cmdScale
	accel := c.AccelMps2 * cmdScale
	if math.Abs(steer) > math.MaxInt16 || math.Abs(accel) > math.MaxInt16 {
		return Frame{}, fmt.Errorf("canbus: command out of encodable range: %+v", c)
	}
	var payload [8]byte
	binary.BigEndian.PutUint16(payload[0:2], uint16(int16(math.Round(steer))))
	binary.BigEndian.PutUint16(payload[2:4], uint16(int16(math.Round(accel))))
	if c.EStop {
		payload[4] = 1
	}
	binary.BigEndian.PutUint16(payload[5:7], c.Seq)
	payload[7] = checksum(payload[:7])
	return NewFrame(id, payload[:])
}

// ErrBadChecksum is returned when a decoded frame fails its checksum.
var ErrBadChecksum = errors.New("canbus: bad command checksum")

// ErrShortFrame is returned when a frame is too short to hold a Command.
var ErrShortFrame = errors.New("canbus: frame too short for command")

// DecodeCommand unpacks a Command from a frame.
func DecodeCommand(f Frame) (Command, error) {
	if f.DLC < 8 {
		return Command{}, ErrShortFrame
	}
	if checksum(f.Data[:7]) != f.Data[7] {
		return Command{}, ErrBadChecksum
	}
	return Command{
		SteerRad:  float64(int16(binary.BigEndian.Uint16(f.Data[0:2]))) / cmdScale,
		AccelMps2: float64(int16(binary.BigEndian.Uint16(f.Data[2:4]))) / cmdScale,
		EStop:     f.Data[4] == 1,
		Seq:       binary.BigEndian.Uint16(f.Data[5:7]),
	}, nil
}

func checksum(b []byte) byte {
	var s byte
	for _, v := range b {
		s ^= v
		s = s<<1 | s>>7
	}
	return s
}

// Bus models a single CAN segment. Frames submitted in the same arbitration
// window contend by ID; transmission time follows the bit-time model.
type Bus struct {
	// BitRate in bits/second (500 kbit/s typical for powertrain buses).
	BitRate int
	// ControllerDelay models driver + controller queuing at each end;
	// this is what pushes the measured Tdata toward the paper's ~1 ms.
	ControllerDelay time.Duration

	pending []Frame
	busyFor time.Duration

	stats BusStats
}

// BusStats counts the segment's traffic for the telemetry layer. All four
// counters advance in virtual-time order, so they are deterministic for a
// fixed scenario.
type BusStats struct {
	// Submitted counts frames queued for arbitration.
	Submitted int64
	// Windows counts arbitration rounds that carried at least one frame.
	Windows int64
	// Deferred counts frames that lost arbitration to a higher-priority
	// frame in their window and waited for the bus (the "arbitration loss"
	// counter — CAN arbitration is lossless but not waitless).
	Deferred int64
	// CommandQueries counts CommandLatency evaluations (the control loop's
	// per-cycle Tdata draw).
	CommandQueries int64
}

// Stats returns the segment's traffic counters.
func (b *Bus) Stats() BusStats { return b.stats }

// NewBus returns a 500 kbit/s bus with controller delays calibrated so a
// command frame's end-to-end Tdata is ≈1 ms.
func NewBus() *Bus {
	return &Bus{BitRate: 500_000, ControllerDelay: 350 * time.Microsecond}
}

// TransmitTime returns the pure wire time for one frame.
func (b *Bus) TransmitTime(f Frame) time.Duration {
	if b.BitRate <= 0 {
		return 0
	}
	return time.Duration(float64(f.BitLength()) / float64(b.BitRate) * float64(time.Second))
}

// Submit queues a frame for the current arbitration window.
func (b *Bus) Submit(f Frame) {
	b.pending = append(b.pending, f)
	b.stats.Submitted++
}

// Delivery is a frame paired with its arrival latency relative to the start
// of the arbitration window.
type Delivery struct {
	Frame   Frame
	Latency time.Duration
}

// Arbitrate drains the pending frames in CAN priority order (lowest ID
// first; FIFO within an ID) and returns their deliveries with cumulative
// bus-occupancy latencies. This models a non-preemptive bus: a lower-
// priority frame waits for every higher-priority frame queued in the same
// window.
func (b *Bus) Arbitrate() []Delivery {
	if len(b.pending) == 0 {
		return nil
	}
	frames := b.pending
	b.pending = nil
	b.stats.Windows++
	b.stats.Deferred += int64(len(frames) - 1)
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].ID < frames[j].ID })
	out := make([]Delivery, len(frames))
	elapsed := b.busyFor
	for i, f := range frames {
		elapsed += b.TransmitTime(f)
		out[i] = Delivery{Frame: f, Latency: elapsed + 2*b.ControllerDelay}
	}
	b.busyFor = 0
	return out
}

// CommandLatency is the one-shot convenience used by the SoV pipeline: the
// end-to-end Tdata for a single command frame on an otherwise idle bus.
func (b *Bus) CommandLatency() time.Duration {
	f, err := EncodeCommand(IDControlCommand, Command{})
	if err != nil {
		panic(err) // zero command is always encodable
	}
	b.stats.CommandQueries++
	return b.TransmitTime(f) + 2*b.ControllerDelay
}
