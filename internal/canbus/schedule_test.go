package canbus

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultScheduleLoadLow(t *testing.T) {
	load := BusLoad(DefaultSchedule(), 500_000)
	// The vehicle bus is nearly idle — a design property, not an accident.
	if load > 0.05 {
		t.Fatalf("bus load = %.3f, want < 5%%", load)
	}
	if load <= 0 {
		t.Fatal("load must be positive")
	}
}

func TestAllDeadlinesMet(t *testing.T) {
	rts := AnalyzeSchedule(DefaultSchedule(), 500_000)
	for _, rt := range rts {
		if !rt.MeetsDeadline {
			t.Fatalf("%s misses its deadline: %v > %v", rt.Message.Name, rt.WorstCase, rt.Message.Period)
		}
	}
}

func TestReactiveOverrideHasLowestWorstCase(t *testing.T) {
	// The safety override is the highest-priority frame: its worst case
	// is one blocking frame plus its own transmission — well under 1 ms.
	rts := AnalyzeSchedule(DefaultSchedule(), 500_000)
	if rts[0].Message.ID != IDReactiveOverride {
		t.Fatal("analysis not sorted by priority")
	}
	if rts[0].WorstCase > time.Millisecond {
		t.Fatalf("override worst case = %v, want < 1 ms", rts[0].WorstCase)
	}
	if rts[0].Interference != 0 {
		t.Fatalf("highest priority should see no interference: %v", rts[0].Interference)
	}
	// Lower priorities accumulate interference.
	last := rts[len(rts)-1]
	if last.Interference == 0 {
		t.Fatal("lowest priority should see interference")
	}
}

func TestWorstCaseMonotonicInPriority(t *testing.T) {
	rts := AnalyzeSchedule(DefaultSchedule(), 500_000)
	for i := 1; i < len(rts); i++ {
		if rts[i].WorstCase < rts[i-1].WorstCase {
			t.Fatalf("worst case not monotonic: %v then %v", rts[i-1].WorstCase, rts[i].WorstCase)
		}
	}
}

func TestOverloadedBusDetected(t *testing.T) {
	// 1000 Hz × many messages on a slow bus: the analysis must flag it.
	sched := []PeriodicMessage{
		{Name: "a", ID: 0x10, DLC: 8, Period: time.Millisecond},
		{Name: "b", ID: 0x20, DLC: 8, Period: time.Millisecond},
		{Name: "c", ID: 0x30, DLC: 8, Period: time.Millisecond},
		{Name: "d", ID: 0x40, DLC: 8, Period: time.Millisecond},
	}
	if BusLoad(sched, 125_000) < 1 {
		t.Fatal("expected overload")
	}
	rts := AnalyzeSchedule(sched, 125_000)
	missed := false
	for _, rt := range rts {
		if !rt.MeetsDeadline {
			missed = true
		}
	}
	if !missed {
		t.Fatal("overloaded schedule reported schedulable")
	}
}

func TestRenderAnalysis(t *testing.T) {
	rts := AnalyzeSchedule(DefaultSchedule(), 500_000)
	out := RenderAnalysis(rts, 500_000)
	for _, want := range []string{"reactive-override", "bus load", "control-command"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
