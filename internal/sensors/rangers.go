package sensors

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

// GPSConfig describes the GNSS receiver.
type GPSConfig struct {
	RateHz   float64
	NoiseStd float64 // meters, horizontal, per axis
}

// DefaultGPSConfig returns a 10 Hz receiver with ~0.5 m noise (RTK-free).
func DefaultGPSConfig() GPSConfig { return GPSConfig{RateHz: 10, NoiseStd: 0.5} }

// GPSFix is one position fix. Valid is false during outages (tunnels,
// multipath) — the trigger for the corrected-VIO fallback of Sec. VI-B.
type GPSFix struct {
	Pos   mathx.Vec2
	Time  time.Duration
	Valid bool
}

// GPS samples ground-truth position with noise and honors world outages.
type GPS struct {
	Config GPSConfig
	World  *world.World
	rng    *sim.RNG
}

// NewGPS returns a GPS bound to a world.
func NewGPS(cfg GPSConfig, w *world.World, rng *sim.RNG) *GPS {
	return &GPS{Config: cfg, World: w, rng: rng}
}

// FixAt returns the fix for true position pos at time t.
func (g *GPS) FixAt(t time.Duration, pos mathx.Vec2) GPSFix {
	if g.World != nil && !g.World.GPSAvailable(t) {
		return GPSFix{Time: t, Valid: false}
	}
	return GPSFix{
		Pos:   pos.Add(mathx.Vec2{X: g.rng.Normal(0, g.Config.NoiseStd), Y: g.rng.Normal(0, g.Config.NoiseStd)}),
		Time:  t,
		Valid: true,
	}
}

// RadarConfig describes one automotive radar unit.
type RadarConfig struct {
	RateHz      float64
	MaxRange    float64 // meters
	FOV         float64 // radians
	RangeStd    float64 // meters
	VelocityStd float64 // m/s (radial)
	// DropoutProb is the per-scan probability of an unstable return (the
	// condition under which the SoV falls back to KCF visual tracking).
	DropoutProb float64
}

// DefaultRadarConfig returns the deployed forward radar.
func DefaultRadarConfig() RadarConfig {
	return RadarConfig{RateHz: 20, MaxRange: 40, FOV: math.Pi / 2,
		RangeStd: 0.15, VelocityStd: 0.1, DropoutProb: 0}
}

// RadarReturn is one target echo: range, bearing, and — the radar's unique
// direct measurement — radial velocity.
type RadarReturn struct {
	ObstacleID int // ground-truth association (used only for evaluation)
	Range      float64
	Bearing    float64
	RadialVel  float64 // negative = closing
	Time       time.Duration
}

// Radar produces returns for obstacles in its cone.
type Radar struct {
	Config RadarConfig
	World  *world.World
	rng    *sim.RNG
	// dets is the unit's visibility scratch; a radar scans from one
	// goroutine at a time (in the SoV, the simulation-engine thread).
	dets []world.Detection
}

// NewRadar returns a radar bound to a world.
func NewRadar(cfg RadarConfig, w *world.World, rng *sim.RNG) *Radar {
	return &Radar{Config: cfg, World: w, rng: rng}
}

// ScanAt returns the echo list for a scan from the given pose at time t.
// A dropout (unstable signal) returns nil even if targets are present.
func (r *Radar) ScanAt(t time.Duration, pose world.Pose) []RadarReturn {
	return r.ScanAtInto(nil, t, pose)
}

// ScanAtInto appends the scan's echoes to dst (reusing its capacity) and
// returns it — the zero-allocation variant of ScanAt for a recycled buffer.
// RNG draw order is identical to ScanAt.
func (r *Radar) ScanAtInto(dst []RadarReturn, t time.Duration, pose world.Pose) []RadarReturn {
	if r.Config.DropoutProb > 0 && r.rng.Bernoulli(r.Config.DropoutProb) {
		return dst
	}
	r.dets = r.World.VisibleObstaclesInto(r.dets[:0], pose, t, r.Config.MaxRange, r.Config.FOV)
	out := dst
	for _, d := range r.dets {
		losDir := d.Pos.Sub(pose.Pos)
		rn := losDir.Norm()
		if rn == 0 {
			continue
		}
		losUnit := losDir.Scale(1 / rn)
		radial := d.Vel.Dot(losUnit) // observer assumed the moving frame origin; ego-motion removed upstream
		// The echo comes off the near surface, not the centroid.
		surface := d.Range - d.Obstacle.Radius
		if surface < 0 {
			surface = 0
		}
		out = append(out, RadarReturn{
			ObstacleID: d.Obstacle.ID,
			Range:      math.Max(0, surface+r.rng.Normal(0, r.Config.RangeStd)),
			Bearing:    d.Bearing + r.rng.Normal(0, 0.01),
			RadialVel:  radial + r.rng.Normal(0, r.Config.VelocityStd),
			Time:       t,
		})
	}
	return out
}

// SonarConfig describes one ultrasonic ranger.
type SonarConfig struct {
	RateHz   float64
	MaxRange float64
	FOV      float64
	RangeStd float64
}

// DefaultSonarConfig returns the deployed short-range sonar.
func DefaultSonarConfig() SonarConfig {
	return SonarConfig{RateHz: 20, MaxRange: 5, FOV: math.Pi / 3, RangeStd: 0.05}
}

// SonarPing is one range-only measurement (no bearing, no velocity).
type SonarPing struct {
	Range float64
	Valid bool
	Time  time.Duration
}

// Sonar produces the nearest-obstacle range inside its cone.
type Sonar struct {
	Config SonarConfig
	World  *world.World
	rng    *sim.RNG
}

// NewSonar returns a sonar bound to a world.
func NewSonar(cfg SonarConfig, w *world.World, rng *sim.RNG) *Sonar {
	return &Sonar{Config: cfg, World: w, rng: rng}
}

// PingAt returns the nearest surface range at time t, or Valid=false when
// clear.
func (s *Sonar) PingAt(t time.Duration, pose world.Pose) SonarPing {
	d, ok := s.World.NearestAhead(pose, t, s.Config.MaxRange, s.Config.FOV)
	if !ok {
		return SonarPing{Time: t}
	}
	surface := d.Range - d.Obstacle.Radius
	if surface < 0 {
		surface = 0
	}
	return SonarPing{Range: math.Max(0, surface+s.rng.Normal(0, s.Config.RangeStd)), Valid: true, Time: t}
}
