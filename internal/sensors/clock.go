// Package sensors models the vehicle's sensing hardware: stereo cameras,
// IMU, GPS, radar, and sonar. Each device has its own oscillator (with
// drift and offset), trigger schedule, and delivery pipeline latency — the
// properties that make real-world sensor synchronization hard (Sec. VI-A).
package sensors

import "time"

// Clock models a sensor-local oscillator: local = true*(1+drift) + offset.
// Independent per-sensor clocks are why "trigger each sensor on its own
// timer" cannot synchronize a rig.
type Clock struct {
	// DriftPPM is the frequency error in parts-per-million.
	DriftPPM float64
	// Offset is the phase error at true time zero.
	Offset time.Duration
}

// Local converts true (simulation) time to this sensor's local timestamp.
func (c Clock) Local(trueTime time.Duration) time.Duration {
	scaled := float64(trueTime) * (1 + c.DriftPPM*1e-6)
	return time.Duration(scaled) + c.Offset
}

// TrueFromLocal inverts Local.
func (c Clock) TrueFromLocal(local time.Duration) time.Duration {
	return time.Duration(float64(local-c.Offset) / (1 + c.DriftPPM*1e-6))
}

// PerfectClock is a zero-drift, zero-offset clock (the GPS-disciplined
// common timer of the hardware synchronizer).
var PerfectClock = Clock{}
