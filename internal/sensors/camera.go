package sensors

import (
	"fmt"
	"time"

	"sov/internal/sim"
)

// CameraConfig describes one camera module.
type CameraConfig struct {
	Name string
	// FPS is the frame rate when free-running (30 in the deployed rig).
	FPS float64
	// Exposure is the shutter-open time per frame.
	Exposure time.Duration
	// Readout is the sensor-to-interface transmission time (analog-buffer
	// readout + MIPI/CSI-2 transfer); constant per the paper.
	Readout time.Duration
	// Clock is the camera's local oscillator, used when free-running.
	Clock Clock
	// WidthPx/HeightPx size the frames (used by the vision substrate and
	// the bandwidth model).
	WidthPx, HeightPx int
}

// DefaultCameraConfig returns the deployed 30 FPS global-shutter config.
// Exposure + readout are the *constant* delays the hardware-collaborative
// sync design compensates in software.
func DefaultCameraConfig(name string) CameraConfig {
	return CameraConfig{
		Name:     name,
		FPS:      30,
		Exposure: 8 * time.Millisecond,
		Readout:  12 * time.Millisecond,
		WidthPx:  1920,
		HeightPx: 1080,
	}
}

// Frame is one camera capture.
type Frame struct {
	Camera string
	Seq    int
	// TrueCaptureTime is the ground-truth mid-exposure instant (what an
	// ideal synchronizer would timestamp).
	TrueCaptureTime time.Duration
	// SensorTimestamp is the timestamp available where the frame was
	// stamped — at the sensor interface under hardware sync, or at the
	// application layer under software sync (then including variable
	// pipeline delay).
	SensorTimestamp time.Duration
	// ArrivalTime is when the frame reached the consumer (true time).
	ArrivalTime time.Duration
}

// FrameBytes returns the raw frame size (16 bpp Bayer) — the reason the
// hardware synchronizer does NOT route frames through itself (a 1080p frame
// is ~6 MB more than a 20-byte IMU sample).
func (c CameraConfig) FrameBytes() int { return c.WidthPx * c.HeightPx * 2 }

// Period returns the frame period.
func (c CameraConfig) Period() time.Duration {
	if c.FPS <= 0 {
		panic(fmt.Sprintf("sensors: camera %q has non-positive FPS", c.Name))
	}
	return time.Duration(float64(time.Second) / c.FPS)
}

// Camera produces frames either free-running on its local clock or from an
// external trigger (the hardware synchronizer).
type Camera struct {
	Config CameraConfig
	seq    int
}

// NewCamera returns a camera with the given config.
func NewCamera(cfg CameraConfig) *Camera { return &Camera{Config: cfg} }

// CaptureAt produces the frame for a trigger at true time t. The returned
// frame's SensorTimestamp is left at the *interface arrival* local time;
// the synchronization layers adjust it per their strategy.
func (c *Camera) CaptureAt(trueTrigger time.Duration) Frame {
	c.seq++
	cfg := c.Config
	mid := trueTrigger + cfg.Exposure/2
	interfaceArrival := trueTrigger + cfg.Exposure + cfg.Readout
	return Frame{
		Camera:          cfg.Name,
		Seq:             c.seq,
		TrueCaptureTime: mid,
		SensorTimestamp: cfg.Clock.Local(interfaceArrival),
		ArrivalTime:     interfaceArrival,
	}
}

// FreeRunTriggers returns the true times at which a free-running camera
// fires during [0, horizon), according to its own (drifting) clock.
func (c *Camera) FreeRunTriggers(horizon time.Duration) []time.Duration {
	var out []time.Duration
	period := c.Config.Period()
	for local := time.Duration(0); ; local += period {
		trueT := c.Config.Clock.TrueFromLocal(local)
		if trueT >= horizon {
			return out
		}
		if trueT >= 0 {
			out = append(out, trueT)
		}
	}
}

// IMUConfig describes the inertial measurement unit.
type IMUConfig struct {
	// RateHz is the sample rate (240 in the deployed rig: 8× camera).
	RateHz float64
	// Clock is the IMU's local oscillator.
	Clock Clock
	// GyroNoiseStd / AccelNoiseStd are white-noise standard deviations.
	GyroNoiseStd  float64 // rad/s
	AccelNoiseStd float64 // m/s²
	// GyroBias / AccelBias are constant biases the VIO estimates.
	GyroBias  float64 // rad/s (yaw axis)
	AccelBias float64 // m/s² (body x)
}

// DefaultIMUConfig returns the deployed 240 Hz configuration.
func DefaultIMUConfig() IMUConfig {
	return IMUConfig{
		RateHz:        240,
		GyroNoiseStd:  0.003,
		AccelNoiseStd: 0.03,
		GyroBias:      0.002,
		AccelBias:     0.05,
	}
}

// IMUSample is one inertial measurement: body-frame acceleration and
// angular rate, plus the timestamps the sync layers compare.
type IMUSample struct {
	Seq             int
	AccelX, AccelY  float64 // body frame, m/s²
	YawRate         float64 // rad/s
	TrueSampleTime  time.Duration
	SensorTimestamp time.Duration
}

// SampleBytes is the IMU sample wire size; small enough that the hardware
// synchronizer timestamps and forwards IMU data itself.
const SampleBytes = 20

// IMU generates samples from ground-truth motion with noise and bias.
type IMU struct {
	Config IMUConfig
	rng    *sim.RNG
	seq    int
}

// NewIMU returns an IMU with its own RNG stream.
func NewIMU(cfg IMUConfig, rng *sim.RNG) *IMU {
	return &IMU{Config: cfg, rng: rng}
}

// Period returns the sample period.
func (u *IMU) Period() time.Duration {
	return time.Duration(float64(time.Second) / u.Config.RateHz)
}

// SampleAt produces the measurement for a trigger at true time t given the
// ground-truth body-frame acceleration (ax, ay) and yaw rate.
func (u *IMU) SampleAt(trueT time.Duration, ax, ay, yawRate float64) IMUSample {
	u.seq++
	cfg := u.Config
	return IMUSample{
		Seq:             u.seq,
		AccelX:          ax + cfg.AccelBias + u.rng.Normal(0, cfg.AccelNoiseStd),
		AccelY:          ay + u.rng.Normal(0, cfg.AccelNoiseStd),
		YawRate:         yawRate + cfg.GyroBias + u.rng.Normal(0, cfg.GyroNoiseStd),
		TrueSampleTime:  trueT,
		SensorTimestamp: cfg.Clock.Local(trueT),
	}
}
