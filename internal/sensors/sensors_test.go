package sensors

import (
	"math"
	"testing"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

func TestClockDriftAndOffset(t *testing.T) {
	c := Clock{DriftPPM: 100, Offset: 5 * time.Millisecond}
	trueT := 10 * time.Second
	local := c.Local(trueT)
	// 100 ppm over 10 s = 1 ms drift, plus 5 ms offset.
	want := trueT + time.Millisecond + 5*time.Millisecond
	if d := local - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("local = %v, want ~%v", local, want)
	}
	back := c.TrueFromLocal(local)
	if d := back - trueT; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("roundtrip = %v, want %v", back, trueT)
	}
}

func TestPerfectClockIsIdentity(t *testing.T) {
	if PerfectClock.Local(time.Second) != time.Second {
		t.Fatal("perfect clock not identity")
	}
}

func TestCameraCapturePipeline(t *testing.T) {
	cam := NewCamera(DefaultCameraConfig("front-left"))
	f := cam.CaptureAt(100 * time.Millisecond)
	// Mid-exposure: trigger + 4 ms.
	if f.TrueCaptureTime != 104*time.Millisecond {
		t.Fatalf("capture time = %v", f.TrueCaptureTime)
	}
	// Interface arrival: trigger + 8 + 12 ms.
	if f.ArrivalTime != 120*time.Millisecond {
		t.Fatalf("arrival = %v", f.ArrivalTime)
	}
	if f.Seq != 1 || f.Camera != "front-left" {
		t.Fatalf("frame meta = %+v", f)
	}
	f2 := cam.CaptureAt(200 * time.Millisecond)
	if f2.Seq != 2 {
		t.Fatalf("seq = %d", f2.Seq)
	}
}

func TestCameraFrameBytes(t *testing.T) {
	cfg := DefaultCameraConfig("x")
	// ~6 MB for a 1080p frame (the paper's figure motivating near-sensor
	// timestamping instead of routing frames through the synchronizer).
	if b := cfg.FrameBytes(); b < 3_000_000 || b > 8_000_000 {
		t.Fatalf("frame bytes = %d", b)
	}
	if cfg.FrameBytes() <= SampleBytes*1000 {
		t.Fatal("frame must be orders of magnitude larger than an IMU sample")
	}
}

func TestCameraPeriod(t *testing.T) {
	cfg := DefaultCameraConfig("x")
	if cfg.Period() != time.Second/30 {
		t.Fatalf("period = %v", cfg.Period())
	}
}

func TestCameraPeriodPanicsOnZeroFPS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(CameraConfig{Name: "bad"}).Period()
}

func TestFreeRunTriggersDrift(t *testing.T) {
	fast := NewCamera(CameraConfig{Name: "a", FPS: 30, Clock: Clock{DriftPPM: 50000}}) // +5%
	slow := NewCamera(CameraConfig{Name: "b", FPS: 30, Clock: Clock{}})
	horizon := 10 * time.Second
	fa := fast.FreeRunTriggers(horizon)
	sa := slow.FreeRunTriggers(horizon)
	// A fast oscillator reaches its local frame periods sooner in true
	// time, so it fires more true-time triggers over the same horizon.
	if len(fa) <= len(sa) {
		t.Fatalf("fast clock should fire more true-time triggers: fast=%d slow=%d", len(fa), len(sa))
	}
	// Triggers must be within horizon, non-negative, increasing.
	prev := -time.Nanosecond
	for _, tt := range sa {
		if tt < 0 || tt >= horizon || tt <= prev {
			t.Fatalf("bad trigger sequence: %v", tt)
		}
		prev = tt
	}
}

func TestFreeRunTriggersDivergeAcrossSensors(t *testing.T) {
	// Two 30 FPS cameras with slightly different oscillators lose frame
	// alignment over time: the core problem of Sec. VI-A.
	a := NewCamera(CameraConfig{Name: "a", FPS: 30, Clock: Clock{DriftPPM: 200}})
	b := NewCamera(CameraConfig{Name: "b", FPS: 30, Clock: Clock{DriftPPM: -200, Offset: time.Millisecond}})
	ta := a.FreeRunTriggers(60 * time.Second)
	tb := b.FreeRunTriggers(60 * time.Second)
	n := len(ta)
	if len(tb) < n {
		n = len(tb)
	}
	last := ta[n-1] - tb[n-1]
	if last < 0 {
		last = -last
	}
	if last < 5*time.Millisecond {
		t.Fatalf("drifting cameras should diverge by several ms, got %v", last)
	}
}

func TestIMUSampleNoiseAndBias(t *testing.T) {
	cfg := DefaultIMUConfig()
	u := NewIMU(cfg, sim.NewRNG(1))
	n := 5000
	var sumYaw, sumAx float64
	for i := 0; i < n; i++ {
		s := u.SampleAt(time.Duration(i)*u.Period(), 1.0, 0, 0.2)
		sumYaw += s.YawRate
		sumAx += s.AccelX
	}
	meanYaw := sumYaw / float64(n)
	meanAx := sumAx / float64(n)
	if math.Abs(meanYaw-(0.2+cfg.GyroBias)) > 0.001 {
		t.Fatalf("mean yaw = %v, want %v", meanYaw, 0.2+cfg.GyroBias)
	}
	if math.Abs(meanAx-(1.0+cfg.AccelBias)) > 0.01 {
		t.Fatalf("mean ax = %v", meanAx)
	}
}

func TestIMURateIs8xCamera(t *testing.T) {
	u := NewIMU(DefaultIMUConfig(), sim.NewRNG(2))
	cam := DefaultCameraConfig("x")
	ratio := cam.Period().Seconds() / u.Period().Seconds()
	if math.Abs(ratio-8) > 1e-4 {
		t.Fatalf("IMU/camera rate ratio = %v, want 8 (240 Hz vs 30 FPS)", ratio)
	}
}

func TestGPSNoiseAndOutage(t *testing.T) {
	w := &world.World{GPSOutages: []world.TimeWindow{{From: 10 * time.Second, To: 20 * time.Second}}}
	g := NewGPS(DefaultGPSConfig(), w, sim.NewRNG(3))
	pos := mathx.Vec2{X: 100, Y: 50}
	fix := g.FixAt(time.Second, pos)
	if !fix.Valid {
		t.Fatal("fix should be valid outside outage")
	}
	if fix.Pos.DistTo(pos) > 5 {
		t.Fatalf("fix too far: %v", fix.Pos)
	}
	out := g.FixAt(15*time.Second, pos)
	if out.Valid {
		t.Fatal("fix should be invalid during outage")
	}
}

func TestGPSNoiseStatistics(t *testing.T) {
	g := NewGPS(DefaultGPSConfig(), &world.World{}, sim.NewRNG(4))
	var sumSq float64
	n := 2000
	for i := 0; i < n; i++ {
		f := g.FixAt(0, mathx.Vec2{})
		sumSq += f.Pos.X * f.Pos.X
	}
	std := math.Sqrt(sumSq / float64(n))
	if math.Abs(std-0.5) > 0.05 {
		t.Fatalf("GPS noise std = %v, want ~0.5", std)
	}
}

func TestRadarMeasuresRadialVelocity(t *testing.T) {
	w := &world.World{}
	// Target ahead, closing at 2 m/s.
	w.Obstacles = append(w.Obstacles, &world.Obstacle{
		ID: 1, Kind: world.KindVehicle, Radius: 0.5,
		Traj: world.LinearTrajectory(mathx.Vec2{X: 20}, mathx.Vec2{X: -2}, 0),
	})
	r := NewRadar(DefaultRadarConfig(), w, sim.NewRNG(5))
	var sumVel, sumRange float64
	n := 500
	for i := 0; i < n; i++ {
		rets := r.ScanAt(0, world.Pose{})
		if len(rets) != 1 {
			t.Fatalf("returns = %d", len(rets))
		}
		sumVel += rets[0].RadialVel
		sumRange += rets[0].Range
	}
	if math.Abs(sumVel/float64(n)-(-2)) > 0.05 {
		t.Fatalf("mean radial vel = %v, want -2", sumVel/float64(n))
	}
	// The echo ranges to the near surface: center 20 m minus 0.5 m radius.
	if math.Abs(sumRange/float64(n)-19.5) > 0.1 {
		t.Fatalf("mean range = %v, want 19.5 (surface)", sumRange/float64(n))
	}
}

func TestRadarDropout(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 10}, 0.5)
	cfg := DefaultRadarConfig()
	cfg.DropoutProb = 1.0
	r := NewRadar(cfg, w, sim.NewRNG(6))
	if rets := r.ScanAt(0, world.Pose{}); rets != nil {
		t.Fatal("dropout should return nil")
	}
}

func TestRadarRespectsRangeLimit(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 100}, 0.5)
	r := NewRadar(DefaultRadarConfig(), w, sim.NewRNG(7))
	if rets := r.ScanAt(0, world.Pose{}); len(rets) != 0 {
		t.Fatal("target beyond MaxRange returned")
	}
}

func TestSonarNearestOnly(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 2}, 0.3)
	w.AddStaticObstacle(mathx.Vec2{X: 4}, 0.3)
	s := NewSonar(DefaultSonarConfig(), w, sim.NewRNG(8))
	p := s.PingAt(0, world.Pose{})
	if !p.Valid {
		t.Fatal("expected ping")
	}
	// Surface range: 2 m to center minus the 0.3 m radius.
	if math.Abs(p.Range-1.7) > 0.3 {
		t.Fatalf("range = %v, want ~1.7 (surface)", p.Range)
	}
}

func TestSonarClearPath(t *testing.T) {
	s := NewSonar(DefaultSonarConfig(), &world.World{}, sim.NewRNG(9))
	if p := s.PingAt(0, world.Pose{}); p.Valid {
		t.Fatal("clear path should be invalid ping")
	}
}

func TestSonarNonNegativeRange(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 0.01}, 0.3)
	s := NewSonar(DefaultSonarConfig(), w, sim.NewRNG(10))
	for i := 0; i < 100; i++ {
		if p := s.PingAt(0, world.Pose{}); p.Valid && p.Range < 0 {
			t.Fatal("negative sonar range")
		}
	}
}
