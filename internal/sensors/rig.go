package sensors

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

// Mount places a sensor on the vehicle body: an offset in the vehicle frame
// and a facing bearing relative to the vehicle heading.
type Mount struct {
	Name    string
	Offset  mathx.Vec2
	Bearing float64
}

// sensorPose composes the vehicle pose with the mount.
func (m Mount) sensorPose(p world.Pose) world.Pose {
	return world.Pose{
		Pos:     p.Pos.Add(m.Offset.Rotate(p.Heading)),
		Heading: mathx.WrapAngle(p.Heading + m.Bearing),
	}
}

// RadarRig is the deployed 6-radar arrangement: two forward, one per side,
// two rear (Table I). The scratch buffers make a rig single-threaded: scans
// must stay on one goroutine (in the SoV, the simulation-engine thread,
// which also keeps the per-unit RNG draw order deterministic).
type RadarRig struct {
	Units  []*Radar
	Mounts []Mount

	unitScratch   []RadarReturn // per-unit echoes, reused across scans
	sectorScratch []RigReturn   // NearestInSector's merged-scan buffer

	stats RigStats
}

// RigStats counts a radar rig's activity for the telemetry layer. Scans
// and echoes advance in virtual-time order (the rig is engine-thread-only),
// so the counters are deterministic for a fixed scenario.
type RigStats struct {
	// Scans counts per-unit radar scans (each ScanAll sweeps every unit).
	Scans int64
	// Echoes counts merged vehicle-frame returns produced.
	Echoes int64
	// SectorQueries counts NearestInSector evaluations (the reactive path).
	SectorQueries int64
}

// Stats returns the rig's activity counters.
func (r *RadarRig) Stats() RigStats { return r.stats }

// NewRadarRig builds the rig over a world; each unit gets its own RNG
// stream.
func NewRadarRig(w *world.World, rng *sim.RNG) *RadarRig {
	mounts := []Mount{
		{Name: "front-left", Offset: mathx.Vec2{X: 2.0, Y: 0.4}, Bearing: 0.15},
		{Name: "front-right", Offset: mathx.Vec2{X: 2.0, Y: -0.4}, Bearing: -0.15},
		{Name: "side-left", Offset: mathx.Vec2{X: 0.5, Y: 0.8}, Bearing: math.Pi / 2},
		{Name: "side-right", Offset: mathx.Vec2{X: 0.5, Y: -0.8}, Bearing: -math.Pi / 2},
		{Name: "rear-left", Offset: mathx.Vec2{X: -1.5, Y: 0.4}, Bearing: math.Pi - 0.15},
		{Name: "rear-right", Offset: mathx.Vec2{X: -1.5, Y: -0.4}, Bearing: -(math.Pi - 0.15)},
	}
	rig := &RadarRig{Mounts: mounts}
	for range mounts {
		rig.Units = append(rig.Units, NewRadar(DefaultRadarConfig(), w, rng.Fork()))
	}
	return rig
}

// RigReturn is a radar return expressed in the vehicle frame.
type RigReturn struct {
	Unit string
	RadarReturn
	// VehicleBearing is the target bearing in the vehicle frame.
	VehicleBearing float64
	// VehiclePos is the target position in the vehicle frame.
	VehiclePos mathx.Vec2
}

// ScanAll scans every unit and merges the returns into the vehicle frame.
func (r *RadarRig) ScanAll(t time.Duration, pose world.Pose) []RigReturn {
	return r.ScanAllInto(nil, t, pose)
}

// ScanAllInto appends the merged vehicle-frame returns to dst (reusing its
// capacity) and returns it — the zero-allocation variant of ScanAll for a
// recycled buffer. RNG draw order is identical to ScanAll.
func (r *RadarRig) ScanAllInto(dst []RigReturn, t time.Duration, pose world.Pose) []RigReturn {
	base := len(dst)
	r.stats.Scans += int64(len(r.Units))
	for i, u := range r.Units {
		m := r.Mounts[i]
		sp := m.sensorPose(pose)
		r.unitScratch = u.ScanAtInto(r.unitScratch[:0], t, sp)
		for _, ret := range r.unitScratch {
			// Target position in the vehicle frame: sensor offset plus
			// the polar return rotated by the mount bearing.
			rel := mathx.Vec2{
				X: ret.Range * math.Cos(ret.Bearing),
				Y: ret.Range * math.Sin(ret.Bearing),
			}.Rotate(m.Bearing).Add(m.Offset)
			dst = append(dst, RigReturn{
				Unit:           m.Name,
				RadarReturn:    ret,
				VehicleBearing: rel.Angle(),
				VehiclePos:     rel,
			})
		}
	}
	r.stats.Echoes += int64(len(dst) - base)
	return dst
}

// NearestInSector returns the closest vehicle-frame return whose bearing
// falls inside ±halfWidth of center, and whether one exists. The reactive
// path uses the forward sector; a parking assist would use the rear.
func (r *RadarRig) NearestInSector(t time.Duration, pose world.Pose, center, halfWidth float64) (RigReturn, bool) {
	r.stats.SectorQueries++
	best := RigReturn{}
	found := false
	bestD := math.Inf(1)
	r.sectorScratch = r.ScanAllInto(r.sectorScratch[:0], t, pose)
	for _, ret := range r.sectorScratch {
		if math.Abs(mathx.WrapAngle(ret.VehicleBearing-center)) > halfWidth {
			continue
		}
		d := ret.VehiclePos.Norm()
		if d < bestD {
			bestD = d
			best = ret
			found = true
		}
	}
	return best, found
}

// SonarRig is the deployed 8-sonar ring (Table I): short-range coverage
// around the full body.
type SonarRig struct {
	Units  []*Sonar
	Mounts []Mount

	stats SonarRigStats
}

// SonarRigStats counts a sonar ring's activity for the telemetry layer.
type SonarRigStats struct {
	// Pings counts per-unit pings issued by sector queries.
	Pings int64
	// SectorQueries counts NearestInSector evaluations.
	SectorQueries int64
}

// Stats returns the ring's activity counters.
func (r *SonarRig) Stats() SonarRigStats { return r.stats }

// NewSonarRig builds the 8-unit ring.
func NewSonarRig(w *world.World, rng *sim.RNG) *SonarRig {
	rig := &SonarRig{}
	for i := 0; i < 8; i++ {
		ang := 2 * math.Pi * float64(i) / 8
		rig.Mounts = append(rig.Mounts, Mount{
			Name:    "sonar-" + string(rune('a'+i)),
			Offset:  mathx.Vec2{X: 1.2 * math.Cos(ang), Y: 1.2 * math.Sin(ang)},
			Bearing: ang,
		})
		rig.Units = append(rig.Units, NewSonar(DefaultSonarConfig(), w, rng.Fork()))
	}
	return rig
}

// NearestInSector pings all units facing within ±halfWidth of center and
// returns the closest valid range (measured from the vehicle origin).
func (r *SonarRig) NearestInSector(t time.Duration, pose world.Pose, center, halfWidth float64) (float64, bool) {
	r.stats.SectorQueries++
	best := math.Inf(1)
	found := false
	for i, u := range r.Units {
		m := r.Mounts[i]
		if math.Abs(mathx.WrapAngle(m.Bearing-center)) > halfWidth {
			continue
		}
		r.stats.Pings++
		ping := u.PingAt(t, m.sensorPose(pose))
		if !ping.Valid {
			continue
		}
		d := ping.Range + m.Offset.Norm()*math.Cos(mathx.WrapAngle(m.Bearing-center))
		if d < best {
			best = d
			found = true
		}
	}
	return best, found
}
