package sensors

import (
	"math"
	"testing"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

func TestRadarRigCovers360(t *testing.T) {
	w := &world.World{}
	// Obstacles on all four sides.
	w.AddStaticObstacle(mathx.Vec2{X: 12}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: -12}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{Y: 12}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{Y: -12}, 0.5)
	rig := NewRadarRig(w, sim.NewRNG(1))
	if len(rig.Units) != 6 {
		t.Fatalf("units = %d, want 6 (Table I)", len(rig.Units))
	}
	rets := rig.ScanAll(0, world.Pose{})
	seen := map[string]bool{}
	for _, r := range rets {
		quadrant := "front"
		switch {
		case math.Abs(r.VehicleBearing) < math.Pi/4:
			quadrant = "front"
		case math.Abs(r.VehicleBearing) > 3*math.Pi/4:
			quadrant = "rear"
		case r.VehicleBearing > 0:
			quadrant = "left"
		default:
			quadrant = "right"
		}
		seen[quadrant] = true
	}
	for _, q := range []string{"front", "rear", "left", "right"} {
		if !seen[q] {
			t.Fatalf("no returns from %s quadrant: %+v", q, rets)
		}
	}
}

func TestRadarRigVehicleFramePosition(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 10}, 0.5)
	rig := NewRadarRig(w, sim.NewRNG(2))
	// Vehicle rotated 90°: the obstacle at world +X is at vehicle -Y.
	pose := world.Pose{Heading: math.Pi / 2}
	ret, ok := rig.NearestInSector(0, pose, -math.Pi/2, 0.5)
	if !ok {
		t.Fatal("no return in right sector")
	}
	if math.Abs(ret.VehiclePos.Y+10) > 1.5 || math.Abs(ret.VehiclePos.X) > 2.5 {
		t.Fatalf("vehicle-frame pos = %v, want ~(0,-10)", ret.VehiclePos)
	}
}

func TestNearestInSectorPicksClosest(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 20}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: 8}, 0.5)
	rig := NewRadarRig(w, sim.NewRNG(3))
	ret, ok := rig.NearestInSector(0, world.Pose{}, 0, 0.4)
	if !ok {
		t.Fatal("no forward return")
	}
	if math.Abs(ret.VehiclePos.Norm()-8) > 1 {
		t.Fatalf("nearest = %v, want ~8 m", ret.VehiclePos.Norm())
	}
}

func TestNearestInSectorRespectsSector(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: -8}, 0.5) // behind only
	rig := NewRadarRig(w, sim.NewRNG(4))
	if _, ok := rig.NearestInSector(0, world.Pose{}, 0, 0.4); ok {
		t.Fatal("rear obstacle leaked into the forward sector")
	}
	if _, ok := rig.NearestInSector(0, world.Pose{}, math.Pi, 0.4); !ok {
		t.Fatal("rear sector missed the rear obstacle")
	}
}

func TestSonarRigRing(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 3}, 0.3)
	rig := NewSonarRig(w, sim.NewRNG(5))
	if len(rig.Units) != 8 {
		t.Fatalf("units = %d, want 8 (Table I)", len(rig.Units))
	}
	d, ok := rig.NearestInSector(0, world.Pose{}, 0, math.Pi/4)
	if !ok {
		t.Fatal("forward sonar missed a 3 m obstacle")
	}
	if math.Abs(d-3) > 0.6 {
		t.Fatalf("sonar distance = %v, want ~3", d)
	}
	// Nothing behind.
	if _, ok := rig.NearestInSector(0, world.Pose{}, math.Pi, math.Pi/4); ok {
		t.Fatal("rear sonar hallucinated")
	}
}
