package pipeline

import (
	"sync"
	"testing"
	"time"
)

func TestRingFIFOOrder(t *testing.T) {
	r := NewRing[int](4)
	go func() {
		for i := 0; i < 100; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	for want := 0; want < 100; want++ {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %d ok=%v", want, got, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop after close+drain should report closed")
	}
}

func TestRingBackpressureBlocksProducer(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	pushed := make(chan struct{})
	go func() {
		r.Push(3) // must block until a Pop frees a slot
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push succeeded on a full ring")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("push did not resume after a slot freed")
	}
	if s := r.Stats(); s.FullStalls != 1 {
		t.Fatalf("full stalls = %d, want 1", s.FullStalls)
	}
}

func TestRingCloseUnblocksBothSides(t *testing.T) {
	r := NewRing[int](1)
	r.Push(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.Push(2) }() // blocked: full
	go func() { defer wg.Done(); r.Pop(); r.Pop(); r.Pop() }()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close left a goroutine blocked")
	}
}

func TestFramePoolRecycles(t *testing.T) {
	type frame struct{ buf []int }
	resets := 0
	p := NewFramePool(
		func() *frame { return &frame{buf: make([]int, 0, 8)} },
		func(f *frame) { f.buf = f.buf[:0]; resets++ },
	)
	a := p.Get()
	a.buf = append(a.buf, 1, 2, 3)
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("pool did not recycle the returned frame")
	}
	if len(b.buf) != 0 || cap(b.buf) != 8 {
		t.Fatalf("reset failed: len=%d cap=%d", len(b.buf), cap(b.buf))
	}
	if resets != 1 {
		t.Fatalf("resets = %d", resets)
	}
	c := p.Get()
	if c == b {
		t.Fatal("pool returned a frame still in use")
	}
	st := p.Stats()
	if st.News != 2 || st.Reuses != 1 {
		t.Fatalf("stats = %+v, want 2 news 1 reuse", st)
	}
}

// TestRuntimeOrderedHandOff proves the determinism backbone: frames pass
// through every stage in submission order, whatever the stage timings.
func TestRuntimeOrderedHandOff(t *testing.T) {
	type frame struct {
		id   int
		seen []string
	}
	var mu sync.Mutex
	var order []int
	rt := NewRuntime(2,
		Stage[frame]{Name: "a", Fn: func(f *frame) {
			if f.id%3 == 0 {
				time.Sleep(time.Millisecond) // jitter must not reorder
			}
			f.seen = append(f.seen, "a")
		}},
		Stage[frame]{Name: "b", Fn: func(f *frame) {
			f.seen = append(f.seen, "b")
			mu.Lock()
			order = append(order, f.id)
			mu.Unlock()
		}},
	)
	const n = 50
	for i := 0; i < n; i++ {
		if !rt.Submit(&frame{id: i}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	rt.Drain()
	rt.Stop()
	if len(order) != n {
		t.Fatalf("completed %d frames, want %d", len(order), n)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("frame %d completed out of order (slot %d)", id, i)
		}
	}
	stats := rt.Stats()
	if len(stats) != 2 || stats[0].Frames != n || stats[1].Frames != n {
		t.Fatalf("stage stats = %+v", stats)
	}
}

func TestRuntimeDrainWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	var done int64
	var mu sync.Mutex
	rt := NewRuntime(1, Stage[int]{Name: "slow", Fn: func(*int) {
		<-release
		mu.Lock()
		done++
		mu.Unlock()
	}})
	v := 0
	rt.Submit(&v)
	drained := make(chan struct{})
	go func() { rt.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned with a frame in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(time.Second):
		t.Fatal("Drain never returned")
	}
	rt.Stop()
	mu.Lock()
	defer mu.Unlock()
	if done != 1 {
		t.Fatalf("done = %d", done)
	}
}

func TestRuntimeSubmitAfterStopRejected(t *testing.T) {
	rt := NewRuntime(1, Stage[int]{Name: "s", Fn: func(*int) {}})
	rt.Stop()
	v := 0
	if rt.Submit(&v) {
		t.Fatal("submit after Stop succeeded")
	}
	rt.Drain() // must not hang on the rejected frame
}

// TestPipelineSteadyStateAllocs verifies the runtime itself adds no per-frame
// allocations once warm: recycled frames flow through without any new memory.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	type frame struct{ payload [64]byte }
	pool := NewFramePool(func() *frame { return new(frame) }, nil)
	rt := NewRuntime(2,
		Stage[frame]{Name: "a", Fn: func(f *frame) { f.payload[0]++ }},
		Stage[frame]{Name: "b", Fn: func(f *frame) { f.payload[1]++ }},
	)
	defer rt.Stop()
	cycle := func() {
		f := pool.Get()
		rt.Submit(f)
		rt.Drain()
		pool.Put(f)
	}
	for i := 0; i < 16; i++ {
		cycle() // warm the pool and rings
	}
	avg := testing.AllocsPerRun(200, cycle)
	if avg > 0.1 {
		t.Fatalf("steady-state pipeline allocates %.2f allocs/cycle, want 0", avg)
	}
}
