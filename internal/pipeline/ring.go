package pipeline

import "sync"

// Ring is a bounded FIFO queue used as the hand-off between two pipeline
// stages. It is designed for single-producer/single-consumer use (one
// goroutine pushing, one popping), though the mutex keeps it safe under any
// access pattern. Push blocks while the ring is full — that is the
// pipeline's backpressure: a fast upstream stage is paced by the slowest
// stage downstream instead of queuing unboundedly.
type Ring[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []T
	head     int
	n        int
	closed   bool

	pushes    int64
	occSum    int64
	occMax    int
	fullStall int64
}

// NewRing returns a ring holding at most capacity elements.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = 1
	}
	r := &Ring[T]{buf: make([]T, capacity)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// Push appends v, blocking while the ring is full. It returns false when the
// ring has been closed (v is dropped).
func (r *Ring[T]) Push(v T) bool {
	r.mu.Lock()
	if r.n == len(r.buf) && !r.closed {
		r.fullStall++
		for r.n == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	r.pushes++
	r.occSum += int64(r.n)
	if r.n > r.occMax {
		r.occMax = r.n
	}
	r.notEmpty.Signal()
	r.mu.Unlock()
	return true
}

// Pop removes the oldest element, blocking while the ring is empty. The
// second result is false once the ring is closed and drained.
func (r *Ring[T]) Pop() (T, bool) {
	r.mu.Lock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	var zero T
	if r.n == 0 {
		r.mu.Unlock()
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.notFull.Signal()
	r.mu.Unlock()
	return v, true
}

// Close marks the ring closed: pending Pops drain the remaining elements and
// then return false; blocked and future Pushes return false.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// Len returns the current occupancy.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// RingStats summarizes a ring's traffic: mean/max occupancy observed at push
// time and how often a push had to stall on a full ring (backpressure
// events).
type RingStats struct {
	Pushes     int64
	MeanOcc    float64
	MaxOcc     int
	FullStalls int64
}

// Stats returns the ring's traffic counters.
func (r *Ring[T]) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RingStats{Pushes: r.pushes, MaxOcc: r.occMax, FullStalls: r.fullStall}
	if r.pushes > 0 {
		s.MeanOcc = float64(r.occSum) / float64(r.pushes)
	}
	return s
}
