// Package pipeline is the staged dataflow runtime behind the SoV control
// loop: bounded single-producer/single-consumer ring queues between
// per-stage goroutines, a recycling frame pool, and per-stage occupancy and
// latency counters. The paper's computing system overlaps sensing,
// perception, and planning so throughput is set by the slowest stage rather
// than the sum of stages (Eq. 1 charges only the critical path); this
// package provides that overlap as a reusable substrate.
//
// Determinism contract: every stage runs on exactly one goroutine and the
// rings are FIFO, so frames traverse each stage in submission order. A
// stage function that is deterministic in (its own state, the frame) — the
// detector's forked RNG stream, the tracker's filter state, the MPC warm
// start — therefore produces byte-identical results whether the stages
// overlap or run inline. Wall-clock stage statistics are diagnostic only
// and excluded from that contract.
package pipeline

import (
	"sync"
	"time"
)

// Stage is one pipeline step: a name for reporting and the function applied
// to every frame. Fn runs on the stage's single goroutine.
type Stage[T any] struct {
	Name string
	Fn   func(*T)
}

// StageStats is one stage's wall-clock profile over a run.
type StageStats struct {
	Name string
	// Frames is the number of frames the stage processed.
	Frames int64
	// Busy is the total time spent inside the stage function.
	Busy time.Duration
	// Wait is the total time spent blocked on an empty input ring.
	Wait time.Duration
	// Queue reports the input ring's traffic (occupancy, backpressure).
	Queue RingStats
}

type stageRec struct {
	mu     sync.Mutex
	frames int64
	busy   time.Duration
	wait   time.Duration
}

// Runtime drives frames of type *T through an ordered list of stages, one
// goroutine per stage, with bounded rings in between. Submit hands a frame
// to the first stage and blocks only when the pipeline is full
// (backpressure); Drain blocks until every submitted frame has left the
// last stage; Stop closes the rings and joins the goroutines.
type Runtime[T any] struct {
	stages []Stage[T]
	rings  []*Ring[*T]
	recs   []stageRec
	wg     sync.WaitGroup

	mu        sync.Mutex
	emptied   sync.Cond
	submitted int64
	completed int64
}

// NewRuntime starts the stage goroutines. queueCap bounds each inter-stage
// ring (minimum 1); at least one stage is required.
func NewRuntime[T any](queueCap int, stages ...Stage[T]) *Runtime[T] {
	if len(stages) == 0 {
		panic("pipeline: NewRuntime needs at least one stage")
	}
	r := &Runtime[T]{stages: stages, recs: make([]stageRec, len(stages))}
	r.emptied.L = &r.mu
	for range stages {
		r.rings = append(r.rings, NewRing[*T](queueCap))
	}
	for i := range stages {
		r.wg.Add(1)
		go r.worker(i)
	}
	return r
}

// worker is stage i's goroutine: pop, run, push, account. The time.Now /
// time.Since pairs feed only the StageStats diagnostics, which the package
// contract explicitly excludes from determinism — nothing derived from
// them touches frame data or the virtual clock.
//
//sovlint:wallclock per-stage busy/wait stats are diagnostic only
func (r *Runtime[T]) worker(i int) {
	defer r.wg.Done()
	in := r.rings[i]
	rec := &r.recs[i]
	for {
		t0 := time.Now()
		f, ok := in.Pop()
		wait := time.Since(t0)
		if !ok {
			// Input closed and drained: propagate shutdown downstream.
			if i+1 < len(r.rings) {
				r.rings[i+1].Close()
			}
			return
		}
		t1 := time.Now()
		r.stages[i].Fn(f)
		busy := time.Since(t1)

		rec.mu.Lock()
		rec.frames++
		rec.busy += busy
		rec.wait += wait
		rec.mu.Unlock()

		if i+1 < len(r.rings) {
			r.rings[i+1].Push(f)
		} else {
			r.mu.Lock()
			r.completed++
			r.emptied.Broadcast()
			r.mu.Unlock()
		}
	}
}

// Submit hands a frame to the first stage, blocking while the input ring is
// full. It returns false after Stop.
func (r *Runtime[T]) Submit(f *T) bool {
	r.mu.Lock()
	r.submitted++
	r.mu.Unlock()
	if r.rings[0].Push(f) {
		return true
	}
	r.mu.Lock()
	r.submitted--
	r.mu.Unlock()
	return false
}

// Drain blocks until every submitted frame has completed the final stage.
func (r *Runtime[T]) Drain() {
	r.mu.Lock()
	for r.completed < r.submitted {
		r.emptied.Wait()
	}
	r.mu.Unlock()
}

// Stop closes the pipeline and joins the stage goroutines. In-flight frames
// finish; frames pushed after Stop are rejected.
func (r *Runtime[T]) Stop() {
	r.rings[0].Close()
	r.wg.Wait()
}

// Stats returns the per-stage wall-clock profile.
//
//sovlint:wallclock per-stage busy/wait figures are host-class diagnostics
func (r *Runtime[T]) Stats() []StageStats {
	out := make([]StageStats, len(r.stages))
	for i := range r.stages {
		rec := &r.recs[i]
		rec.mu.Lock()
		out[i] = StageStats{
			Name:   r.stages[i].Name,
			Frames: rec.frames,
			Busy:   rec.busy,
			Wait:   rec.wait,
			Queue:  r.rings[i].Stats(),
		}
		rec.mu.Unlock()
	}
	return out
}
