package pipeline

import "sync"

// FramePool recycles frame objects so a steady-state pipeline allocates
// nothing per cycle: every buffer a frame carries (images, tensors,
// detection slices, point clouds) is built once and reused. Unlike
// sync.Pool it never drops entries under GC pressure and its Put never
// allocates, so reuse is deterministic and measurable.
type FramePool[T any] struct {
	mu    sync.Mutex
	free  []*T
	newFn func() *T
	reset func(*T)

	news   int64
	reuses int64
}

// NewFramePool builds a pool. newFn constructs a frame on a miss; reset (may
// be nil) restores a recycled frame to its ready state before reuse — buffer
// capacities should be kept, lengths and stale values cleared.
func NewFramePool[T any](newFn func() *T, reset func(*T)) *FramePool[T] {
	return &FramePool[T]{newFn: newFn, reset: reset}
}

// Get returns a ready frame, recycling a returned one when available.
func (p *FramePool[T]) Get() *T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		if p.reset != nil {
			p.reset(f)
		}
		return f
	}
	p.news++
	p.mu.Unlock()
	return p.newFn()
}

// Put returns a frame to the pool for reuse.
func (p *FramePool[T]) Put(f *T) {
	if f == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, f)
	p.mu.Unlock()
}

// PoolStats reports how many frames were constructed versus recycled; in a
// healthy steady state News stays at the pipeline depth while Reuses grows
// with the cycle count.
type PoolStats struct {
	News   int64
	Reuses int64
}

// Stats returns the construction/reuse counters.
func (p *FramePool[T]) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{News: p.news, Reuses: p.reuses}
}
