// Package planning implements the planning module of the proactive path:
// a Model-Predictive-Control planner (Table III) operating at lane
// granularity — the reason planning contributes only ~1-2% of the end-to-end
// latency (Sec. V-C) — plus the compute-heavy EM-style planner (DP path
// search + QP smoothing, after Baidu Apollo) that the paper measures at
// ~33× the cost, constant-velocity obstacle prediction, and collision
// checking.
//
// Planning operates in lane (Frenet-like) coordinates: s along the lane,
// d lateral offset (positive left).
package planning

import (
	"math"

	"sov/internal/canbus"
	"sov/internal/mathx"
)

// Obstacle is a planning-frame obstacle: position and velocity in lane
// coordinates (s along lane, d lateral), with a footprint radius.
type Obstacle struct {
	S, D   float64
	VS, VD float64
	Radius float64
}

// Input is one planning cycle's world view.
type Input struct {
	// Speed is the current longitudinal speed (m/s).
	Speed float64
	// LaneOffset is the current lateral offset from the lane center (m).
	LaneOffset float64
	// HeadingErr is the heading error relative to the lane direction.
	HeadingErr float64
	// TargetSpeed is the cruise set point.
	TargetSpeed float64
	// LaneWidth bounds lateral motion.
	LaneWidth float64
	// Obstacles ahead, in lane coordinates relative to the vehicle (S=0).
	Obstacles []Obstacle
}

// TrajPoint is one point of a planned trajectory.
type TrajPoint struct {
	T    float64 // seconds from now
	S, D float64 // lane coordinates relative to the plan origin
	V    float64 // speed
}

// Plan is a planner's output.
type Plan struct {
	Cmd  canbus.Command
	Traj []TrajPoint
	// Blocked reports that no safe plan at positive speed exists; the
	// command will be a braking command.
	Blocked bool
	// Cost is the optimized objective value (planner-specific scale).
	Cost float64
}

// Predict propagates obstacles with constant velocity over the horizon,
// returning per-step positions. This is the "action/traffic prediction"
// block of Fig. 5 — micromobility speeds make constant-velocity prediction
// adequate.
func Predict(obs []Obstacle, dt float64, steps int) [][]Obstacle {
	out := make([][]Obstacle, steps)
	for k := 0; k < steps; k++ {
		t := dt * float64(k+1)
		row := make([]Obstacle, len(obs))
		for i, o := range obs {
			row[i] = Obstacle{S: o.S + o.VS*t, D: o.D + o.VD*t, VS: o.VS, VD: o.VD, Radius: o.Radius}
		}
		out[k] = row
	}
	return out
}

// CollisionCheck returns whether the trajectory comes within margin of any
// predicted obstacle, and the minimum clearance observed.
func CollisionCheck(traj []TrajPoint, obs []Obstacle, margin float64) (collides bool, minClear float64) {
	minClear = math.Inf(1)
	for _, p := range traj {
		for _, o := range obs {
			os := o.S + o.VS*p.T
			od := o.D + o.VD*p.T
			clear := math.Hypot(p.S-os, p.D-od) - o.Radius
			if clear < minClear {
				minClear = clear
			}
		}
	}
	if len(traj) == 0 || len(obs) == 0 {
		return false, minClear
	}
	return minClear < margin, minClear
}

// simulate rolls the simple planning model forward: s' = v, v' = a,
// d' = v*sin(heading), heading' = steer rate proxy. The same model backs
// both planners so their costs are comparable.
func simulate(in Input, accel, steer []float64, dt float64) []TrajPoint {
	return simulateInto(make([]TrajPoint, len(accel)), in, accel, steer, dt)
}

// simulateInto writes the rollout into dst, which must have len(accel)
// points — the zero-allocation variant for a planner-owned trajectory
// buffer.
func simulateInto(dst []TrajPoint, in Input, accel, steer []float64, dt float64) []TrajPoint {
	s, d, v, h := 0.0, in.LaneOffset, in.Speed, in.HeadingErr
	for k := range accel {
		v = mathx.Clamp(v+accel[k]*dt, 0, 12)
		h += steer[k] * dt
		h = mathx.Clamp(h, -2.5, 2.5)
		s += v * math.Cos(h) * dt
		d += v * math.Sin(h) * dt
		dst[k] = TrajPoint{T: dt * float64(k+1), S: s, D: d, V: v}
	}
	return dst
}
