package planning

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func cruiseInput() Input {
	return Input{Speed: 5.6, TargetSpeed: 5.6, LaneWidth: 3}
}

func TestMPCCruisesAtTargetSpeed(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	p := m.Plan(cruiseInput())
	if p.Blocked {
		t.Fatal("empty road should not block")
	}
	if math.Abs(p.Cmd.AccelMps2) > 0.5 {
		t.Fatalf("cruise accel = %v, want ~0", p.Cmd.AccelMps2)
	}
	if math.Abs(p.Cmd.SteerRad) > 0.1 {
		t.Fatalf("cruise steer = %v, want ~0", p.Cmd.SteerRad)
	}
}

func TestMPCAcceleratesWhenSlow(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	in.Speed = 2
	p := m.Plan(in)
	if p.Cmd.AccelMps2 <= 0.2 {
		t.Fatalf("accel = %v, want positive", p.Cmd.AccelMps2)
	}
}

func TestMPCBrakesForBlockingObstacle(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	// Stopped obstacle dead ahead at 6 m, spanning the lane.
	in.Obstacles = []Obstacle{{S: 6, D: 0, Radius: 1.5}}
	p := m.Plan(in)
	if p.Cmd.AccelMps2 >= 0 {
		t.Fatalf("accel = %v, want braking", p.Cmd.AccelMps2)
	}
}

func TestMPCSteersAroundOffsetObstacle(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	// Narrow obstacle slightly right of center 10 m ahead: swerve left.
	in.Obstacles = []Obstacle{{S: 10, D: -0.3, Radius: 0.4}}
	// Run a few cycles to warm-start.
	var p Plan
	for i := 0; i < 3; i++ {
		p = m.Plan(in)
	}
	lateralAt10 := 0.0
	for _, tp := range p.Traj {
		if tp.S >= 9 && tp.S <= 11 && math.Abs(tp.D) > math.Abs(lateralAt10) {
			lateralAt10 = tp.D
		}
	}
	if lateralAt10 < 0.2 {
		t.Fatalf("planned lateral at obstacle = %v, want leftward evasion", lateralAt10)
	}
}

func TestMPCRecentersOnLane(t *testing.T) {
	m := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	in.LaneOffset = 1.0
	p := m.Plan(in)
	// The trajectory should drive the lateral offset down.
	last := p.Traj[len(p.Traj)-1]
	if math.Abs(last.D) >= 0.9 {
		t.Fatalf("final lateral offset = %v, want re-centered", last.D)
	}
}

func TestEMPlannerCruise(t *testing.T) {
	e := NewEMPlanner(DefaultEMConfig())
	p := e.Plan(cruiseInput())
	if p.Blocked {
		t.Fatal("empty road should not block")
	}
	// Speed profile should hold near target.
	for _, tp := range p.Traj[2:] {
		if math.Abs(tp.V-5.6) > 1.5 {
			t.Fatalf("EM speed at s=%v is %v, want ~5.6", tp.S, tp.V)
		}
	}
}

func TestEMPlannerAvoidsObstacle(t *testing.T) {
	e := NewEMPlanner(DefaultEMConfig())
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 20, D: 0, Radius: 0.8}}
	p := e.Plan(in)
	// The path should be laterally displaced near s=20.
	displaced := false
	for _, tp := range p.Traj {
		if tp.S >= 17 && tp.S <= 23 && math.Abs(tp.D) > 0.8 {
			displaced = true
		}
	}
	if !displaced && !p.Blocked {
		t.Fatal("EM planner neither avoided nor blocked on obstacle")
	}
}

func TestEMPlannerBlocksOnWall(t *testing.T) {
	e := NewEMPlanner(DefaultEMConfig())
	in := cruiseInput()
	// A wall of obstacles across all laterals at 8 m, too wide to pass.
	for d := -4.0; d <= 4.0; d += 1 {
		in.Obstacles = append(in.Obstacles, Obstacle{S: 8, D: d, Radius: 1.2})
	}
	p := e.Plan(in)
	if !p.Blocked && p.Cmd.AccelMps2 > -1 {
		t.Fatalf("wall should force blocked/braking, got %+v", p.Cmd)
	}
}

func TestPredictConstantVelocity(t *testing.T) {
	obs := []Obstacle{{S: 10, D: 1, VS: -2, VD: 0.5, Radius: 0.3}}
	pred := Predict(obs, 0.1, 5)
	if len(pred) != 5 {
		t.Fatalf("steps = %d", len(pred))
	}
	last := pred[4][0]
	if math.Abs(last.S-9) > 1e-9 || math.Abs(last.D-1.25) > 1e-9 {
		t.Fatalf("predicted = %+v", last)
	}
}

func TestCollisionCheck(t *testing.T) {
	traj := []TrajPoint{{T: 1, S: 5, D: 0, V: 5}}
	hit, clear := CollisionCheck(traj, []Obstacle{{S: 5, D: 0.2, Radius: 0.3}}, 0.5)
	if !hit {
		t.Fatal("expected collision flag")
	}
	if clear > 0 {
		t.Fatalf("clearance = %v, want negative", clear)
	}
	hit, clear = CollisionCheck(traj, []Obstacle{{S: 50, D: 0, Radius: 0.3}}, 0.5)
	if hit || clear < 40 {
		t.Fatalf("far obstacle: hit=%v clear=%v", hit, clear)
	}
}

func TestCollisionCheckMovingObstacle(t *testing.T) {
	// Obstacle starts far but closes at 10 m/s; at T=2 it reaches S=5.
	traj := []TrajPoint{{T: 2, S: 5, D: 0, V: 2.5}}
	hit, _ := CollisionCheck(traj, []Obstacle{{S: 25, D: 0, VS: -10, Radius: 0.5}}, 0.5)
	if !hit {
		t.Fatal("moving obstacle should collide at T=2")
	}
}

func TestCollisionCheckEmpty(t *testing.T) {
	if hit, _ := CollisionCheck(nil, nil, 1); hit {
		t.Fatal("empty inputs should not collide")
	}
}

func TestMPCDeterministicCost(t *testing.T) {
	a := NewMPC(DefaultMPCConfig())
	b := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 12, D: 0.5, Radius: 0.5}}
	pa := a.Plan(in)
	pb := b.Plan(in)
	if pa.Cost != pb.Cost {
		t.Fatalf("non-deterministic: %v vs %v", pa.Cost, pb.Cost)
	}
}

func TestEMPlannerIsMuchMoreExpensiveThanMPC(t *testing.T) {
	// Sec. V-C: the EM planner costs ~33× the MPC. Verify the ratio is at
	// least an order of magnitude on identical inputs (exact ratios are
	// host-dependent; bench_test.go reports the measured value).
	if testing.Short() {
		t.Skip("timing test")
	}
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 20, D: 0.3, Radius: 0.5}}
	m := NewMPC(DefaultMPCConfig())
	e := NewEMPlanner(DefaultEMConfig())
	mpcT := timeIt(200, func() { m.Plan(in) })
	emT := timeIt(20, func() { e.Plan(in) })
	if emT < 5*mpcT {
		t.Fatalf("EM/MPC cost ratio = %.1f, want >= 5 (paper: ~33)", emT/mpcT)
	}
}

func timeIt(n int, f func()) float64 {
	t0 := nowSeconds()
	for i := 0; i < n; i++ {
		f()
	}
	return (nowSeconds() - t0) / float64(n)
}

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

func BenchmarkMPCPlan(b *testing.B) {
	m := NewMPC(DefaultMPCConfig())
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 20, D: 0.3, Radius: 0.5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Plan(in)
	}
}

func BenchmarkEMPlan(b *testing.B) {
	e := NewEMPlanner(DefaultEMConfig())
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 20, D: 0.3, Radius: 0.5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Plan(in)
	}
}

func TestMPCCommandsAlwaysWithinLimits(t *testing.T) {
	// Property: whatever the scene, the emitted command respects the
	// actuator envelope.
	cfg := DefaultMPCConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMPC(cfg)
		in := Input{
			Speed:       rng.Float64() * 9,
			LaneOffset:  rng.Float64()*4 - 2,
			HeadingErr:  rng.Float64() - 0.5,
			TargetSpeed: rng.Float64() * 9,
			LaneWidth:   3,
		}
		for k := 0; k < rng.Intn(5); k++ {
			in.Obstacles = append(in.Obstacles, Obstacle{
				S:      rng.Float64() * 40,
				D:      rng.Float64()*6 - 3,
				VS:     rng.Float64()*6 - 3,
				VD:     rng.Float64()*2 - 1,
				Radius: 0.3 + rng.Float64(),
			})
		}
		p := m.Plan(in)
		if p.Cmd.AccelMps2 < -cfg.MaxBrake-1e-9 || p.Cmd.AccelMps2 > cfg.MaxAccel+1e-9 {
			return false
		}
		return p.Cmd.SteerRad >= -0.55-1e-9 && p.Cmd.SteerRad <= 0.55+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEMPlannerSpeedsNonNegative(t *testing.T) {
	e := NewEMPlanner(DefaultEMConfig())
	in := cruiseInput()
	in.Obstacles = []Obstacle{{S: 15, D: 0, VS: -3, Radius: 1}}
	p := e.Plan(in)
	for _, tp := range p.Traj {
		if tp.V < 0 {
			t.Fatalf("negative speed in profile: %+v", tp)
		}
	}
}
