package planning

import (
	"math"

	"sov/internal/canbus"
	"sov/internal/mathx"
)

// MPCConfig tunes the receding-horizon controller.
type MPCConfig struct {
	Horizon int     // steps
	Dt      float64 // seconds per step
	Iters   int     // gradient iterations
	// Cost weights.
	WSpeed, WLane, WHeading, WEffort, WObstacle float64
	// SafeDistance is the obstacle clearance the cost enforces.
	SafeDistance float64
	MaxAccel     float64
	MaxBrake     float64
	MaxSteerRate float64
}

// DefaultMPCConfig matches the deployed planner: a 2-second horizon at
// 10 Hz, coarse enough for lane-granularity maneuvers and cheap enough for
// the ~3 ms planning budget of Fig. 10a.
func DefaultMPCConfig() MPCConfig {
	return MPCConfig{
		Horizon: 20, Dt: 0.1, Iters: 5,
		WSpeed: 1.0, WLane: 2.0, WHeading: 1.0, WEffort: 0.1, WObstacle: 30.0,
		SafeDistance: 2.0,
		MaxAccel:     2.0, MaxBrake: 4.0, MaxSteerRate: 0.5,
	}
}

// MPC is the production planner: gradient-based shooting over acceleration
// and steering-rate sequences with a quadratic tracking cost and an
// obstacle barrier.
type MPC struct {
	Cfg MPCConfig
	// warm-start buffers reused across cycles.
	accel, steer []float64
	// traj is the rollout buffer reused across cycles; each Plan's Traj
	// aliases it and stays valid until the next Plan call.
	traj []TrajPoint
}

// NewMPC returns a planner with the given configuration.
func NewMPC(cfg MPCConfig) *MPC {
	return &MPC{
		Cfg:   cfg,
		accel: make([]float64, cfg.Horizon),
		steer: make([]float64, cfg.Horizon),
		traj:  make([]TrajPoint, cfg.Horizon),
	}
}

// cost evaluates the objective for a control sequence without allocating:
// the rollout is fused into the accumulation (this runs thousands of times
// per planning cycle).
func (m *MPC) cost(in Input, accel, steer []float64) float64 {
	cfg := m.Cfg
	dt := cfg.Dt
	s, d, v, h := 0.0, in.LaneOffset, in.Speed, in.HeadingErr
	c := 0.0
	for k := range accel {
		v = mathx.Clamp(v+accel[k]*dt, 0, 12)
		h = mathx.Clamp(h+steer[k]*dt, -2.5, 2.5)
		s += v * math.Cos(h) * dt
		d += v * math.Sin(h) * dt
		t := dt * float64(k+1)

		dv := v - in.TargetSpeed
		c += cfg.WSpeed * dv * dv
		c += cfg.WLane * d * d
		c += cfg.WEffort * (accel[k]*accel[k] + 4*steer[k]*steer[k])
		for _, o := range in.Obstacles {
			ds := s - (o.S + o.VS*t)
			dd := d - (o.D + o.VD*t)
			clear := math.Sqrt(ds*ds+dd*dd) - o.Radius
			if clear < cfg.SafeDistance {
				pen := cfg.SafeDistance - clear
				c += cfg.WObstacle * pen * pen
			}
		}
	}
	// Terminal heading alignment.
	c += cfg.WHeading * h * h
	return c
}

// Plan runs one receding-horizon optimization and returns the first-step
// command. The optimizer is coordinate-wise numerical gradient descent with
// a fixed iteration budget — deterministic compute cost, as an embedded
// planner requires.
func (m *MPC) Plan(in Input) Plan {
	cfg := m.Cfg
	if in.LaneWidth == 0 {
		in.LaneWidth = 3
	}
	// Warm start: shift the previous solution one step.
	copy(m.accel, m.accel[1:])
	copy(m.steer, m.steer[1:])

	lr := 0.5
	base := m.cost(in, m.accel, m.steer)
	const eps = 1e-3
	for it := 0; it < cfg.Iters; it++ {
		improved := false
		for k := 0; k < cfg.Horizon; k++ {
			// Numerical gradient for accel[k].
			m.accel[k] += eps
			ca := m.cost(in, m.accel, m.steer)
			m.accel[k] -= eps
			ga := (ca - base) / eps
			// And steer[k].
			m.steer[k] += eps
			cs := m.cost(in, m.accel, m.steer)
			m.steer[k] -= eps
			gs := (cs - base) / eps

			na := mathx.Clamp(m.accel[k]-lr*ga, -cfg.MaxBrake, cfg.MaxAccel)
			ns := mathx.Clamp(m.steer[k]-lr*gs, -cfg.MaxSteerRate, cfg.MaxSteerRate)
			olda, olds := m.accel[k], m.steer[k]
			m.accel[k], m.steer[k] = na, ns
			c := m.cost(in, m.accel, m.steer)
			if c < base {
				base = c
				improved = true
			} else {
				m.accel[k], m.steer[k] = olda, olds
			}
		}
		if !improved {
			lr /= 2
			if lr < 1e-3 {
				break
			}
		}
	}

	traj := simulateInto(m.traj, in, m.accel, m.steer, cfg.Dt)
	collides, _ := CollisionCheck(traj, in.Obstacles, 0.5)
	// Convert the first-step heading rate to a bicycle steering angle:
	// steer = atan(L * hdot / v).
	const wheelBase = 1.8
	v := math.Max(in.Speed, 0.5)
	plan := Plan{
		Cmd: canbus.Command{
			SteerRad:  mathx.Clamp(math.Atan(wheelBase*m.steer[0]/v), -0.55, 0.55),
			AccelMps2: m.accel[0],
		},
		Traj: traj,
		Cost: base,
	}
	if collides {
		// No safe trajectory found: command a full brake and flag it; the
		// reactive path is the backstop if this is too late.
		plan.Blocked = true
		plan.Cmd = canbus.Command{AccelMps2: -cfg.MaxBrake}
	}
	return plan
}
