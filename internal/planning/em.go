package planning

import (
	"math"

	"sov/internal/canbus"
	"sov/internal/mathx"
)

// EMConfig sizes the EM-style planner's lattices. The defaults follow the
// Apollo EM Motion Planner's structure — dense station-lateral DP for the
// path, quadratic-programming smoothing, then station-time DP for speed,
// and QP smoothing again — which is what makes it ~33× more expensive than
// the lane-granularity MPC (Sec. V-C).
type EMConfig struct {
	// Stations is the number of longitudinal samples over the horizon.
	Stations int
	// StationStep is the spacing in meters.
	StationStep float64
	// Laterals is the number of lateral offsets per station.
	Laterals int
	// LateralSpan is the +/- lateral range in meters.
	LateralSpan float64
	// SpeedLevels discretizes speed for the speed-DP.
	SpeedLevels int
	// QPIters is the Gauss-Seidel iteration count for each smoothing pass.
	QPIters int
	// SafeDistance is the required obstacle clearance.
	SafeDistance float64
}

// DefaultEMConfig plans 60 m ahead at centimeter-class smoothing effort.
func DefaultEMConfig() EMConfig {
	return EMConfig{
		Stations: 80, StationStep: 0.75,
		Laterals: 31, LateralSpan: 3.0,
		SpeedLevels: 48, QPIters: 1200,
		SafeDistance: 2.0,
	}
}

// EMPlanner is the DP+QP baseline.
type EMPlanner struct {
	Cfg EMConfig
}

// NewEMPlanner returns a planner with the given configuration.
func NewEMPlanner(cfg EMConfig) *EMPlanner { return &EMPlanner{Cfg: cfg} }

// Plan runs the full E-step/M-step pipeline: path DP, path QP, speed DP,
// speed QP, then emits the first-step command.
func (e *EMPlanner) Plan(in Input) Plan {
	cfg := e.Cfg
	path := e.pathDP(in)
	path = e.qpSmooth(path, 0.4)
	speeds, blocked := e.speedDP(in, path)
	speeds = e.qpSmooth(speeds, 0.2)

	// Assemble the trajectory (time from speeds, lateral from path).
	traj := make([]TrajPoint, cfg.Stations)
	t := 0.0
	for i := 0; i < cfg.Stations; i++ {
		v := speeds[i]
		if v < 0.1 {
			v = 0.1
		}
		t += cfg.StationStep / v
		traj[i] = TrajPoint{T: t, S: cfg.StationStep * float64(i+1), D: path[i], V: speeds[i]}
	}

	// The DP penalties are soft; a least-cost trajectory that still
	// collides means the scene is infeasible.
	if hit, _ := CollisionCheck(traj, in.Obstacles, 0.3); hit {
		blocked = true
	}

	// First-step command.
	accel := (speeds[0] - in.Speed) / math.Max(traj[0].T, 0.05)
	accel = mathx.Clamp(accel, -4, 2)
	headingTo := math.Atan2(path[0]-in.LaneOffset, cfg.StationStep)
	steer := mathx.Clamp(headingTo-in.HeadingErr, -0.55, 0.55)
	plan := Plan{
		Cmd:     canbus.Command{SteerRad: steer, AccelMps2: accel},
		Traj:    traj,
		Blocked: blocked,
	}
	if blocked {
		plan.Cmd = canbus.Command{AccelMps2: -4}
	}
	return plan
}

// pathDP searches the station-lateral lattice for the cheapest path.
func (e *EMPlanner) pathDP(in Input) []float64 {
	cfg := e.Cfg
	nL := cfg.Laterals
	lat := func(j int) float64 {
		return -cfg.LateralSpan + 2*cfg.LateralSpan*float64(j)/float64(nL-1)
	}
	// cost[i][j]: best cost to reach station i, lateral j.
	cost := make([][]float64, cfg.Stations)
	from := make([][]int, cfg.Stations)
	for i := range cost {
		cost[i] = make([]float64, nL)
		from[i] = make([]int, nL)
	}
	obstaclePenalty := func(s, d float64) float64 {
		p := 0.0
		for _, o := range in.Obstacles {
			// Static view of obstacles for the path E-step (the speed
			// step handles dynamics), matching the EM decomposition.
			clear := math.Hypot(s-o.S, d-o.D) - o.Radius
			if clear < cfg.SafeDistance {
				pen := cfg.SafeDistance - clear
				p += 50 * pen * pen
			}
		}
		return p
	}
	for j := 0; j < nL; j++ {
		d := lat(j)
		dd := d - in.LaneOffset
		cost[0][j] = d*d + 4*dd*dd + obstaclePenalty(cfg.StationStep, d)
	}
	for i := 1; i < cfg.Stations; i++ {
		s := cfg.StationStep * float64(i+1)
		for j := 0; j < nL; j++ {
			d := lat(j)
			best := math.Inf(1)
			bestK := 0
			for k := 0; k < nL; k++ {
				trans := lat(j) - lat(k)
				c := cost[i-1][k] + 8*trans*trans
				if c < best {
					best = c
					bestK = k
				}
			}
			cost[i][j] = best + d*d + obstaclePenalty(s, d)
			from[i][j] = bestK
		}
	}
	// Backtrack.
	bestJ := 0
	for j := 1; j < nL; j++ {
		if cost[cfg.Stations-1][j] < cost[cfg.Stations-1][bestJ] {
			bestJ = j
		}
	}
	path := make([]float64, cfg.Stations)
	for i := cfg.Stations - 1; i >= 0; i-- {
		path[i] = lat(bestJ)
		bestJ = from[i][bestJ]
	}
	return path
}

// speedDP assigns a speed per station with dynamic obstacles respected.
func (e *EMPlanner) speedDP(in Input, path []float64) (speeds []float64, blocked bool) {
	cfg := e.Cfg
	nV := cfg.SpeedLevels
	vmax := math.Max(in.TargetSpeed*1.2, 1)
	level := func(j int) float64 { return vmax * float64(j) / float64(nV-1) }

	cost := make([][]float64, cfg.Stations)
	from := make([][]int, cfg.Stations)
	times := make([][]float64, cfg.Stations)
	for i := range cost {
		cost[i] = make([]float64, nV)
		from[i] = make([]int, nV)
		times[i] = make([]float64, nV)
		for j := range cost[i] {
			cost[i][j] = math.Inf(1)
		}
	}
	dynPenalty := func(s, d, t float64) float64 {
		p := 0.0
		for _, o := range in.Obstacles {
			os := o.S + o.VS*t
			od := o.D + o.VD*t
			clear := math.Hypot(s-os, d-od) - o.Radius
			if clear < cfg.SafeDistance {
				pen := cfg.SafeDistance - clear
				p += 100 * pen * pen
			}
		}
		return p
	}
	for j := 0; j < nV; j++ {
		v := level(j)
		dv0 := v - in.Speed
		if math.Abs(dv0) > 2.5 {
			continue // respect accel limits from the current speed
		}
		t := cfg.StationStep / math.Max(v, 0.1)
		dv := v - in.TargetSpeed
		cost[0][j] = dv*dv + dynPenalty(cfg.StationStep, path[0], t) + dv0*dv0
		times[0][j] = t
	}
	for i := 1; i < cfg.Stations; i++ {
		s := cfg.StationStep * float64(i+1)
		for j := 0; j < nV; j++ {
			v := level(j)
			for k := 0; k < nV; k++ {
				if math.IsInf(cost[i-1][k], 1) {
					continue
				}
				dv := v - level(k)
				if math.Abs(dv) > 2.0 { // accel limit per station
					continue
				}
				t := times[i-1][k] + cfg.StationStep/math.Max(v, 0.1)
				dvt := v - in.TargetSpeed
				c := cost[i-1][k] + dvt*dvt + 2*dv*dv + dynPenalty(s, path[i], t)
				if c < cost[i][j] {
					cost[i][j] = c
					from[i][j] = k
					times[i][j] = t
				}
			}
		}
	}
	bestJ, bestC := 0, math.Inf(1)
	for j := 0; j < nV; j++ {
		if cost[cfg.Stations-1][j] < bestC {
			bestC = cost[cfg.Stations-1][j]
			bestJ = j
		}
	}
	speeds = make([]float64, cfg.Stations)
	if math.IsInf(bestC, 1) {
		return speeds, true // no feasible profile: stop
	}
	for i := cfg.Stations - 1; i >= 0; i-- {
		speeds[i] = level(bestJ)
		bestJ = from[i][bestJ]
	}
	// A profile that has to crawl immediately counts as blocked.
	if speeds[0] < 0.3 && in.TargetSpeed > 1 {
		blocked = true
	}
	return speeds, blocked
}

// qpSmooth minimizes sum (x_i - ref_i)^2 + w*sum (x_{i+1}-2x_i+x_{i-1})^2
// by Gauss–Seidel sweeps — the "QP" M-step.
func (e *EMPlanner) qpSmooth(ref []float64, w float64) []float64 {
	n := len(ref)
	x := make([]float64, n)
	copy(x, ref)
	for it := 0; it < e.Cfg.QPIters; it++ {
		for i := 1; i < n-1; i++ {
			// d/dx_i of the objective = 0 solved for x_i.
			x[i] = (ref[i] + w*2*(x[i-1]+x[i+1])) / (1 + 4*w)
		}
	}
	return x
}
