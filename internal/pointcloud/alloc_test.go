package pointcloud

import (
	"testing"

	"sov/internal/mathx"
	"sov/internal/parallel"
	"sov/internal/sim"
)

// TestLocalizeSteadyStateAllocs is the satellite audit gate: a warm serial
// ICP localization must not allocate — its per-iteration correspondence
// lists come from the match pool.
func TestLocalizeSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	rng := sim.NewRNG(6)
	target := GenerateScan(800, 11, rng)
	src := target.Transform(0.02, mathx.Vec3{X: 0.1, Y: -0.05})
	tree := Build(target, nil)
	run := func() { Localize(tree, src, nil, 5, 2) }
	for i := 0; i < 3; i++ {
		run() // warm the match pool
	}
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Fatalf("warm Localize allocates %.2f allocs/op, want 0", avg)
	}
}

// TestLocalizePooledMatchesUnpooled pins the pooled correspondence path to
// the historical result: the pool must not change a single bit of the
// estimate.
func TestLocalizePooledMatchesUnpooled(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	rng := sim.NewRNG(7)
	target := GenerateScan(1500, 11, rng)
	src := target.Transform(0.05, mathx.Vec3{X: 0.4, Y: -0.2})
	tree := Build(target, nil)
	first := Localize(tree, src, nil, 20, 2)
	for i := 0; i < 3; i++ {
		again := Localize(tree, src, nil, 20, 2)
		if again != first {
			t.Fatalf("pooled rerun diverged: %+v != %+v", again, first)
		}
	}
}
