package pointcloud

import (
	"math"
	"testing"

	"sov/internal/mathx"
	"sov/internal/sim"
)

func TestVoxelDownsampleMergesCells(t *testing.T) {
	c := &Cloud{}
	// 100 points inside one 1 m voxel, 1 point far away.
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		c.Pts = append(c.Pts, mathx.Vec3{X: rng.Uniform(0, 0.9), Y: rng.Uniform(0, 0.9), Z: rng.Uniform(0, 0.9)})
	}
	c.Pts = append(c.Pts, mathx.Vec3{X: 10, Y: 10, Z: 0})
	out := VoxelDownsample(c, nil, 1.0)
	if out.Len() != 2 {
		t.Fatalf("voxels = %d, want 2", out.Len())
	}
}

func TestVoxelDownsampleCentroid(t *testing.T) {
	c := &Cloud{Pts: []mathx.Vec3{{X: 0.2}, {X: 0.4}}}
	out := VoxelDownsample(c, nil, 1.0)
	if out.Len() != 1 {
		t.Fatalf("len = %d", out.Len())
	}
	if math.Abs(out.Pts[0].X-0.3) > 1e-9 {
		t.Fatalf("centroid = %v", out.Pts[0])
	}
}

func TestVoxelDownsampleZeroVoxelCopies(t *testing.T) {
	c := &Cloud{Pts: []mathx.Vec3{{X: 1}, {X: 2}}}
	out := VoxelDownsample(c, nil, 0)
	if out.Len() != 2 {
		t.Fatal("zero voxel should copy")
	}
	out.Pts[0].X = 99
	if c.Pts[0].X == 99 {
		t.Fatal("copy aliases source")
	}
}

func TestRansacGroundSeparatesPlaneFromObjects(t *testing.T) {
	rng := sim.NewRNG(2)
	c := &Cloud{}
	// Tilted ground plane z = 0.02x + 0.01y.
	for i := 0; i < 800; i++ {
		x, y := rng.Uniform(-15, 15), rng.Uniform(-15, 15)
		c.Pts = append(c.Pts, mathx.Vec3{X: x, Y: y, Z: 0.02*x + 0.01*y + rng.Normal(0, 0.01)})
	}
	// A box obstacle well above the plane.
	for i := 0; i < 200; i++ {
		c.Pts = append(c.Pts, mathx.Vec3{X: rng.Uniform(4, 6), Y: rng.Uniform(-1, 1), Z: rng.Uniform(0.5, 2)})
	}
	plane, ground, rest := RansacGround(c, nil, 60, 0.1, rng)
	if math.Abs(plane.A-0.02) > 0.01 || math.Abs(plane.B-0.01) > 0.01 {
		t.Fatalf("plane = %+v", plane)
	}
	if len(ground) < 700 {
		t.Fatalf("ground inliers = %d, want ~800", len(ground))
	}
	if len(rest) < 150 {
		t.Fatalf("obstacle outliers = %d, want ~200", len(rest))
	}
	// No obstacle point misclassified as ground.
	for _, i := range ground {
		if c.Pts[i].Z > 0.45 {
			t.Fatalf("obstacle point %v classified as ground", c.Pts[i])
		}
	}
}

func TestRansacGroundDegenerate(t *testing.T) {
	rng := sim.NewRNG(3)
	c := &Cloud{Pts: []mathx.Vec3{{X: 1}}}
	_, ground, rest := RansacGround(c, nil, 10, 0.1, rng)
	if len(ground) != 0 || len(rest) != 1 {
		t.Fatalf("degenerate split: %d/%d", len(ground), len(rest))
	}
}

func TestPlaneFrom3Collinear(t *testing.T) {
	if _, ok := planeFrom3(mathx.Vec3{}, mathx.Vec3{X: 1}, mathx.Vec3{X: 2}); ok {
		t.Fatal("collinear points should fail")
	}
}

func TestRansacOnSyntheticScan(t *testing.T) {
	rng := sim.NewRNG(4)
	scan := GenerateScan(2000, 5, rng.Fork())
	_, ground, rest := RansacGround(scan, nil, 80, 0.08, rng.Fork())
	// The generator puts ~50% of points on the ground plane.
	frac := float64(len(ground)) / float64(scan.Len())
	if frac < 0.35 || frac > 0.75 {
		t.Fatalf("ground fraction = %.2f, want ~0.5", frac)
	}
	if len(ground)+len(rest) != scan.Len() {
		t.Fatal("split does not partition the cloud")
	}
}

func BenchmarkVoxelDownsample(b *testing.B) {
	scan := GenerateScan(10000, 1, sim.NewRNG(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VoxelDownsample(scan, nil, 0.2)
	}
}

func BenchmarkRansacGround(b *testing.B) {
	rng := sim.NewRNG(6)
	scan := GenerateScan(10000, 1, rng.Fork())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RansacGround(scan, nil, 60, 0.08, rng)
	}
}
