package pointcloud

import (
	"math"

	"sov/internal/mathx"
	"sov/internal/sim"
)

// VoxelDownsample replaces all points falling into each cell of a voxel
// grid with their centroid — PCL's standard pre-filter. The hash-grid pass
// is *regular* streaming; its cache behaviour contrasts with the kd-tree
// kernels (part of why preprocessing is cheap and neighbor search is not).
func VoxelDownsample(c *Cloud, tr Tracker, voxel float64) *Cloud {
	if voxel <= 0 || c.Len() == 0 {
		out := &Cloud{Pts: make([]mathx.Vec3, len(c.Pts)), Region: c.Region}
		copy(out.Pts, c.Pts)
		return out
	}
	type cell struct {
		sum mathx.Vec3
		n   int
	}
	grid := make(map[[3]int32]*cell, c.Len()/4)
	for i, p := range c.Pts {
		c.access(tr, i)
		key := [3]int32{
			int32(math.Floor(p.X / voxel)),
			int32(math.Floor(p.Y / voxel)),
			int32(math.Floor(p.Z / voxel)),
		}
		cl, ok := grid[key]
		if !ok {
			cl = &cell{}
			grid[key] = cl
		}
		cl.sum = cl.sum.Add(p)
		cl.n++
	}
	out := &Cloud{Pts: make([]mathx.Vec3, 0, len(grid)), Region: c.Region}
	for _, cl := range grid {
		out.Pts = append(out.Pts, cl.sum.Scale(1/float64(cl.n)))
	}
	return out
}

// Plane is z = A*x + B*y + C (a near-horizontal plane parameterization
// adequate for ground extraction).
type Plane struct {
	A, B, C float64
}

// DistanceTo returns the vertical distance of p from the plane.
func (pl Plane) DistanceTo(p mathx.Vec3) float64 {
	return math.Abs(p.Z - (pl.A*p.X + pl.B*p.Y + pl.C))
}

// RansacGround fits the dominant near-horizontal plane by RANSAC and
// returns the plane, the inlier indices (ground), and the outlier indices
// (obstacles). This is the ground-removal step every LiDAR pipeline runs
// before clustering.
func RansacGround(c *Cloud, tr Tracker, iterations int, tolerance float64, rng *sim.RNG) (Plane, []int, []int) {
	n := c.Len()
	if n < 3 {
		return Plane{}, nil, indicesUpTo(n)
	}
	best := Plane{}
	bestCount := -1
	for it := 0; it < iterations; it++ {
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if i == j || j == k || i == k {
			continue
		}
		c.access(tr, i)
		c.access(tr, j)
		c.access(tr, k)
		pl, ok := planeFrom3(c.Pts[i], c.Pts[j], c.Pts[k])
		if !ok || math.Hypot(pl.A, pl.B) > 0.3 { // reject steep planes
			continue
		}
		count := 0
		// Count inliers on a subsample for speed; exact split afterwards.
		stride := 1 + n/512
		for p := 0; p < n; p += stride {
			c.access(tr, p)
			if pl.DistanceTo(c.Pts[p]) < tolerance {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			best = pl
		}
	}
	if bestCount < 0 {
		return Plane{}, nil, indicesUpTo(n)
	}
	var ground, rest []int
	for p := 0; p < n; p++ {
		c.access(tr, p)
		if best.DistanceTo(c.Pts[p]) < tolerance {
			ground = append(ground, p)
		} else {
			rest = append(rest, p)
		}
	}
	return best, ground, rest
}

// planeFrom3 solves z = Ax + By + C through three points.
func planeFrom3(p1, p2, p3 mathx.Vec3) (Plane, bool) {
	// Solve the 3x3 linear system [x y 1][A B C]' = z.
	a := mathx.MatFromRows([][]float64{
		{p1.X, p1.Y, 1},
		{p2.X, p2.Y, 1},
		{p3.X, p3.Y, 1},
	})
	// Determinant check via expansion.
	det := p1.X*(p2.Y-p3.Y) - p1.Y*(p2.X-p3.X) + (p2.X*p3.Y - p3.X*p2.Y)
	if math.Abs(det) < 1e-9 {
		return Plane{}, false
	}
	// Cramer's rule.
	z := []float64{p1.Z, p2.Z, p3.Z}
	solve := func(col int) float64 {
		m := a.Clone()
		for r := 0; r < 3; r++ {
			m.Set(r, col, z[r])
		}
		return (m.At(0, 0)*(m.At(1, 1)*m.At(2, 2)-m.At(1, 2)*m.At(2, 1)) -
			m.At(0, 1)*(m.At(1, 0)*m.At(2, 2)-m.At(1, 2)*m.At(2, 0)) +
			m.At(0, 2)*(m.At(1, 0)*m.At(2, 1)-m.At(1, 1)*m.At(2, 0))) / det
	}
	return Plane{A: solve(0), B: solve(1), C: solve(2)}, true
}

func indicesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
