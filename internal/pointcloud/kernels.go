package pointcloud

import (
	"math"

	"sov/internal/mathx"
)

// ICPResult is the estimated rigid transform (yaw + translation) aligning
// the source cloud onto the target, plus convergence diagnostics.
type ICPResult struct {
	Yaw        float64
	Trans      mathx.Vec3
	Iterations int
	RMSE       float64
}

// Localize runs point-to-point ICP of src against the target tree — the
// LiDAR localization kernel of Fig. 4. A planar (yaw + translation) motion
// model matches the ground vehicle. subsample > 1 uses every k-th source
// point per iteration.
func Localize(tree *KDTree, src *Cloud, tr Tracker, iters, subsample int) ICPResult {
	if subsample < 1 {
		subsample = 1
	}
	yaw, trans := 0.0, mathx.Vec3{}
	res := ICPResult{}
	for it := 0; it < iters; it++ {
		s, c := math.Sin(yaw), math.Cos(yaw)
		// Accumulate correspondences.
		var srcCx, srcCy, dstCx, dstCy float64
		var sxx, sxy, syx, syy float64
		var zSum float64
		type pair struct{ sx, sy, dx, dy, dz float64 }
		pairs := make([]pair, 0, src.Len()/subsample+1)
		var sse float64
		for i := 0; i < src.Len(); i += subsample {
			src.access(tr, i)
			p := src.Pts[i]
			// Current transform estimate applied to the source point.
			q := mathx.Vec3{X: c*p.X - s*p.Y + trans.X, Y: s*p.X + c*p.Y + trans.Y, Z: p.Z + trans.Z}
			j, d2 := tree.Nearest(q)
			if j < 0 || d2 > 4.0 {
				continue
			}
			d := tree.cloud.Pts[j]
			pairs = append(pairs, pair{sx: q.X, sy: q.Y, dx: d.X, dy: d.Y, dz: d.Z - q.Z})
			sse += d2
		}
		if len(pairs) < 3 {
			break
		}
		for _, pr := range pairs {
			srcCx += pr.sx
			srcCy += pr.sy
			dstCx += pr.dx
			dstCy += pr.dy
			zSum += pr.dz
		}
		n := float64(len(pairs))
		srcCx /= n
		srcCy /= n
		dstCx /= n
		dstCy /= n
		for _, pr := range pairs {
			ax, ay := pr.sx-srcCx, pr.sy-srcCy
			bx, by := pr.dx-dstCx, pr.dy-dstCy
			sxx += ax * bx
			sxy += ax * by
			syx += ay * bx
			syy += ay * by
		}
		dyaw := math.Atan2(sxy-syx, sxx+syy)
		yaw += dyaw
		sNew, cNew := math.Sin(dyaw), math.Cos(dyaw)
		// Incremental transform: q' = R(dyaw)q + tInc with
		// tInc = dstCentroid - R(dyaw)*srcCentroid. Compose onto the
		// accumulated transform (rotate old translation first).
		tx := dstCx - (cNew*srcCx - sNew*srcCy)
		ty := dstCy - (sNew*srcCx + cNew*srcCy)
		ox, oy := trans.X, trans.Y
		trans.X = cNew*ox - sNew*oy + tx
		trans.Y = sNew*ox + cNew*oy + ty
		trans.Z += zSum / n
		res.Iterations = it + 1
		res.RMSE = math.Sqrt(sse / n)
		if math.Abs(dyaw) < 1e-5 && math.Hypot(tx, ty) < 1e-4 {
			break
		}
	}
	res.Yaw = yaw
	res.Trans = trans
	return res
}

// LocalizePointToPlane runs point-to-plane ICP: residuals are projected
// onto the target surface normals, which converges in far fewer iterations
// than point-to-point on structured scenes (the standard production
// refinement). Normals must come from EstimateNormals on the target cloud.
func LocalizePointToPlane(tree *KDTree, normals []Normal, src *Cloud, tr Tracker, iters, subsample int) ICPResult {
	if subsample < 1 {
		subsample = 1
	}
	yaw, trans := 0.0, mathx.Vec3{}
	res := ICPResult{}
	for it := 0; it < iters; it++ {
		s, c := math.Sin(yaw), math.Cos(yaw)
		// Linearized system over (dyaw, tx, ty): for each correspondence,
		// n·(R p + t - q) ≈ 0 with R ≈ I + dyaw×.
		var a [3][3]float64
		var bvec [3]float64
		var sse float64
		n := 0
		for i := 0; i < src.Len(); i += subsample {
			src.access(tr, i)
			p := src.Pts[i]
			qp := mathx.Vec3{X: c*p.X - s*p.Y + trans.X, Y: s*p.X + c*p.Y + trans.Y, Z: p.Z + trans.Z}
			j, d2 := tree.Nearest(qp)
			if j < 0 || d2 > 4.0 {
				continue
			}
			q := tree.cloud.Pts[j]
			nv := normals[j]
			// Planar (yaw-only) rotation derivative: d(Rp)/dyaw = (-py', px', 0).
			jyaw := -qp.Y*nv.X + qp.X*nv.Y
			row := [3]float64{jyaw, nv.X, nv.Y}
			r := nv.X*(qp.X-q.X) + nv.Y*(qp.Y-q.Y) + nv.Z*(qp.Z-q.Z)
			for ri := 0; ri < 3; ri++ {
				for ci := 0; ci < 3; ci++ {
					a[ri][ci] += row[ri] * row[ci]
				}
				bvec[ri] -= row[ri] * r
			}
			sse += r * r
			n++
		}
		if n < 6 {
			break
		}
		am := mathx.MatFromRows([][]float64{
			{a[0][0] + 1e-9, a[0][1], a[0][2]},
			{a[1][0], a[1][1] + 1e-9, a[1][2]},
			{a[2][0], a[2][1], a[2][2] + 1e-9},
		})
		sol, err := mathx.SolveSPD(am, bvec[:])
		if err != nil {
			break
		}
		dyaw, tx, ty := sol[0], sol[1], sol[2]
		yaw += dyaw
		sNew, cNew := math.Sin(dyaw), math.Cos(dyaw)
		ox, oy := trans.X, trans.Y
		trans.X = cNew*ox - sNew*oy + tx
		trans.Y = sNew*ox + cNew*oy + ty
		res.Iterations = it + 1
		res.RMSE = math.Sqrt(sse / float64(n))
		if math.Abs(dyaw) < 1e-6 && math.Hypot(tx, ty) < 1e-5 {
			break
		}
	}
	res.Yaw = yaw
	res.Trans = trans
	return res
}

// Segment performs Euclidean cluster extraction: connected components under
// the "within radius" relation, ignoring near-ground points. Returns point
// index groups of at least minPts.
func Segment(tree *KDTree, cloud *Cloud, tr Tracker, radius float64, minPts int) [][]int {
	n := cloud.Len()
	visited := make([]bool, n)
	var clusters [][]int
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		cloud.access(tr, i)
		if cloud.Pts[i].Z < 0.15 { // ground rejection
			visited[i] = true
			continue
		}
		// BFS flood fill through radius neighborhoods.
		var cluster []int
		queue := []int{i}
		visited[i] = true
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			cluster = append(cluster, j)
			for _, k := range tree.Radius(cloud.Pts[j], radius) {
				if !visited[k] && cloud.Pts[k].Z >= 0.15 {
					visited[k] = true
					queue = append(queue, k)
				}
			}
		}
		if len(cluster) >= minPts {
			clusters = append(clusters, cluster)
		}
	}
	return clusters
}

// Descriptor is a compact shape signature (a simplified viewpoint feature
// histogram): radial-distance and height histograms about the centroid.
type Descriptor [16]float64

// Describe computes the descriptor of a cluster.
func Describe(cloud *Cloud, tr Tracker, cluster []int) Descriptor {
	var d Descriptor
	if len(cluster) == 0 {
		return d
	}
	var centroid mathx.Vec3
	for _, i := range cluster {
		cloud.access(tr, i)
		centroid = centroid.Add(cloud.Pts[i])
	}
	centroid = centroid.Scale(1 / float64(len(cluster)))
	maxR := 1e-9
	for _, i := range cluster {
		cloud.access(tr, i)
		if r := cloud.Pts[i].Sub(centroid).Norm(); r > maxR {
			maxR = r
		}
	}
	for _, i := range cluster {
		cloud.access(tr, i)
		rel := cloud.Pts[i].Sub(centroid)
		rbin := int(rel.Norm() / maxR * 7.999)
		zbin := 8 + int((rel.Z/maxR+1)/2*7.999)
		if rbin < 0 {
			rbin = 0
		}
		if rbin > 7 {
			rbin = 7
		}
		if zbin < 8 {
			zbin = 8
		}
		if zbin > 15 {
			zbin = 15
		}
		d[rbin]++
		d[zbin]++
	}
	// L1 normalize.
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum > 0 {
		for i := range d {
			d[i] /= sum
		}
	}
	return d
}

// Recognize matches each cluster's descriptor against a template library
// by L1 distance, returning the best template index per cluster. This is
// the "recognition" kernel of Fig. 4b.
func Recognize(cloud *Cloud, tree *KDTree, tr Tracker, clusters [][]int, library []Descriptor) []int {
	out := make([]int, len(clusters))
	for ci, cluster := range clusters {
		d := Describe(cloud, tr, cluster)
		best, bestDist := -1, math.Inf(1)
		for li, tmpl := range library {
			dist := 0.0
			for k := range d {
				dist += math.Abs(d[k] - tmpl[k])
			}
			if dist < bestDist {
				bestDist = dist
				best = li
			}
		}
		out[ci] = best
	}
	return out
}

// Normal is an estimated unit surface normal.
type Normal = mathx.Vec3

// EstimateNormals fits a plane to each point's k-neighborhood (PCA smallest
// eigenvector via plane least-squares) — the core of surface reconstruction.
func EstimateNormals(tree *KDTree, cloud *Cloud, tr Tracker, k int) []Normal {
	n := cloud.Len()
	out := make([]Normal, n)
	for i := 0; i < n; i++ {
		cloud.access(tr, i)
		nbrs := tree.KNN(cloud.Pts[i], k)
		var centroid mathx.Vec3
		for _, j := range nbrs {
			cloud.access(tr, j)
			centroid = centroid.Add(cloud.Pts[j])
		}
		centroid = centroid.Scale(1 / float64(len(nbrs)))
		// Covariance accumulation.
		var xx, xy, xz, yy, yz, zz float64
		for _, j := range nbrs {
			r := cloud.Pts[j].Sub(centroid)
			xx += r.X * r.X
			xy += r.X * r.Y
			xz += r.X * r.Z
			yy += r.Y * r.Y
			yz += r.Y * r.Z
			zz += r.Z * r.Z
		}
		out[i] = smallestEigenvector(xx, xy, xz, yy, yz, zz)
	}
	return out
}

// smallestEigenvector of a symmetric 3x3 via inverse power iteration with
// a small regularizer (adequate for well-conditioned neighborhoods).
func smallestEigenvector(xx, xy, xz, yy, yz, zz float64) mathx.Vec3 {
	a := mathx.MatFromRows([][]float64{
		{xx + 1e-9, xy, xz},
		{xy, yy + 1e-9, yz},
		{xz, yz, zz + 1e-9},
	})
	v := []float64{0, 0, 1}
	for it := 0; it < 8; it++ {
		sol, err := mathx.SolveSPD(a, v)
		if err != nil {
			return mathx.Vec3{Z: 1}
		}
		norm := math.Sqrt(sol[0]*sol[0] + sol[1]*sol[1] + sol[2]*sol[2])
		if norm == 0 {
			return mathx.Vec3{Z: 1}
		}
		for i := range sol {
			sol[i] /= norm
		}
		v = sol
	}
	return mathx.Vec3{X: v[0], Y: v[1], Z: v[2]}
}

// Reconstruct estimates normals and counts greedy local surface links —
// a simplified greedy-projection triangulation that reproduces the memory
// behaviour (kNN per point) of PCL's reconstruction. Returns the triangle
// count.
func Reconstruct(tree *KDTree, cloud *Cloud, tr Tracker, k int) int {
	normals := EstimateNormals(tree, cloud, tr, k)
	triangles := 0
	for i := 0; i < cloud.Len(); i++ {
		nbrs := tree.KNN(cloud.Pts[i], 3)
		if len(nbrs) < 3 {
			continue
		}
		// Accept the local triangle when the neighbor normals agree.
		dot := normals[nbrs[0]].Dot(normals[nbrs[1]])
		if math.Abs(dot) > 0.5 {
			triangles++
		}
	}
	return triangles
}
