package pointcloud

import (
	"math"
	"sync"

	"sov/internal/mathx"
	"sov/internal/parallel"
)

// icpMatch is one accepted correspondence of an ICP iteration: the
// transformed source point, the matched target point index, and the
// squared match distance. Both ICP variants replay their floating-point
// reductions serially over the ordered match list, so the estimate is
// bit-identical to a fully serial scan.
type icpMatch struct {
	q  mathx.Vec3
	j  int
	d2 float64
}

// icpParallelMin is the candidate count below which the correspondence
// search stays serial (fan-out overhead would dominate).
const icpParallelMin = 512

// icpGrain is the fixed correspondence-search tile size; it depends only
// on the input, never the worker count, so tile-ordered outputs are
// byte-identical for any parallelism.
const icpGrain = 256

// matchPool recycles the per-iteration correspondence buffers: both ICP
// variants borrow one list per iteration and return it before the next, so
// a warm localization loop allocates nothing for matches.
var matchPool parallel.SlicePool[icpMatch]

// icpMatchOne matches one source point against the target tree and appends
// the accepted correspondence to out. It is a plain function (not a closure
// over the iteration state) so the serial path stays allocation-free.
//
//sov:hotpath
func icpMatchOne(tree *KDTree, src *Cloud, tr Tracker, i int, s, c float64, trans mathx.Vec3, reuse []int, out []icpMatch) []icpMatch {
	src.access(tr, i)
	p := src.Pts[i]
	// Current transform estimate applied to the source point.
	q := mathx.Vec3{X: c*p.X - s*p.Y + trans.X, Y: s*p.X + c*p.Y + trans.Y, Z: p.Z + trans.Z}
	j, d2 := tree.nearestInto(q, reuse)
	if j < 0 || d2 > 4.0 {
		return out
	}
	return append(out, icpMatch{q: q, j: j, d2: d2})
}

// collectMatches gathers the accepted correspondences of one ICP iteration
// in source-point order. With no tracker attached the nearest-neighbor
// searches fan out across the worker pool: each tile owns a scratch reuse
// counter (merged afterwards — integer adds are exact in any order) and a
// tile-ordered bucket, so the returned slice matches the serial scan
// exactly. With a tracker the walk stays serial, preserving the cache
// simulator's access order. The returned slice is borrowed from matchPool;
// callers release it with matchPool.Put once consumed.
func collectMatches(tree *KDTree, src *Cloud, tr Tracker, subsample int, yaw float64, trans mathx.Vec3) []icpMatch {
	s, c := math.Sin(yaw), math.Cos(yaw)
	m := (src.Len() + subsample - 1) / subsample // candidate count
	if tr != nil || parallel.Workers() <= 1 || m < icpParallelMin {
		matches := matchPool.Get(m)[:0]
		for i := 0; i < src.Len(); i += subsample {
			matches = icpMatchOne(tree, src, tr, i, s, c, trans, tree.Reuse, matches)
		}
		return matches
	}
	buckets := make([][]icpMatch, parallel.Tiles(m, icpGrain))
	var mu sync.Mutex
	parallel.ForTiled(m, icpGrain, func(tile, k0, k1 int) {
		reuse := parallel.GetIntsZeroed(tree.cloud.Len())
		out := make([]icpMatch, 0, k1-k0)
		for k := k0; k < k1; k++ {
			out = icpMatchOne(tree, src, tr, k*subsample, s, c, trans, reuse, out)
		}
		buckets[tile] = out
		mu.Lock()
		for i, r := range reuse {
			if r != 0 {
				tree.Reuse[i] += r
			}
		}
		mu.Unlock()
		parallel.PutInts(reuse)
	})
	matches := matchPool.Get(m)[:0]
	for _, b := range buckets {
		matches = append(matches, b...)
	}
	return matches
}

// ICPResult is the estimated rigid transform (yaw + translation) aligning
// the source cloud onto the target, plus convergence diagnostics.
type ICPResult struct {
	Yaw        float64
	Trans      mathx.Vec3
	Iterations int
	RMSE       float64
}

// Localize runs point-to-point ICP of src against the target tree — the
// LiDAR localization kernel of Fig. 4. A planar (yaw + translation) motion
// model matches the ground vehicle. subsample > 1 uses every k-th source
// point per iteration.
func Localize(tree *KDTree, src *Cloud, tr Tracker, iters, subsample int) ICPResult {
	if subsample < 1 {
		subsample = 1
	}
	yaw, trans := 0.0, mathx.Vec3{}
	res := ICPResult{}
	for it := 0; it < iters; it++ {
		// Correspondence search (parallel when untracked); all reductions
		// below replay the ordered match list serially, keeping the same
		// floating-point association as a single-threaded scan.
		pairs := collectMatches(tree, src, tr, subsample, yaw, trans)
		if len(pairs) < 3 {
			matchPool.Put(pairs)
			break
		}
		var srcCx, srcCy, dstCx, dstCy float64
		var sxx, sxy, syx, syy float64
		var zSum float64
		var sse float64
		for _, pr := range pairs {
			d := tree.cloud.Pts[pr.j]
			sse += pr.d2
			srcCx += pr.q.X
			srcCy += pr.q.Y
			dstCx += d.X
			dstCy += d.Y
			zSum += d.Z - pr.q.Z
		}
		n := float64(len(pairs))
		srcCx /= n
		srcCy /= n
		dstCx /= n
		dstCy /= n
		for _, pr := range pairs {
			d := tree.cloud.Pts[pr.j]
			ax, ay := pr.q.X-srcCx, pr.q.Y-srcCy
			bx, by := d.X-dstCx, d.Y-dstCy
			sxx += ax * bx
			sxy += ax * by
			syx += ay * bx
			syy += ay * by
		}
		matchPool.Put(pairs)
		dyaw := math.Atan2(sxy-syx, sxx+syy)
		yaw += dyaw
		sNew, cNew := math.Sin(dyaw), math.Cos(dyaw)
		// Incremental transform: q' = R(dyaw)q + tInc with
		// tInc = dstCentroid - R(dyaw)*srcCentroid. Compose onto the
		// accumulated transform (rotate old translation first).
		tx := dstCx - (cNew*srcCx - sNew*srcCy)
		ty := dstCy - (sNew*srcCx + cNew*srcCy)
		ox, oy := trans.X, trans.Y
		trans.X = cNew*ox - sNew*oy + tx
		trans.Y = sNew*ox + cNew*oy + ty
		trans.Z += zSum / n
		res.Iterations = it + 1
		res.RMSE = math.Sqrt(sse / n)
		if math.Abs(dyaw) < 1e-5 && math.Hypot(tx, ty) < 1e-4 {
			break
		}
	}
	res.Yaw = yaw
	res.Trans = trans
	return res
}

// LocalizePointToPlane runs point-to-plane ICP: residuals are projected
// onto the target surface normals, which converges in far fewer iterations
// than point-to-point on structured scenes (the standard production
// refinement). Normals must come from EstimateNormals on the target cloud.
func LocalizePointToPlane(tree *KDTree, normals []Normal, src *Cloud, tr Tracker, iters, subsample int) ICPResult {
	if subsample < 1 {
		subsample = 1
	}
	yaw, trans := 0.0, mathx.Vec3{}
	res := ICPResult{}
	for it := 0; it < iters; it++ {
		// Correspondence search (parallel when untracked); the normal-equation
		// accumulation replays the ordered match list serially.
		pairs := collectMatches(tree, src, tr, subsample, yaw, trans)
		if len(pairs) < 6 {
			matchPool.Put(pairs)
			break
		}
		// Linearized system over (dyaw, tx, ty): for each correspondence,
		// n·(R p + t - q) ≈ 0 with R ≈ I + dyaw×.
		var a [3][3]float64
		var bvec [3]float64
		var sse float64
		n := len(pairs)
		for _, pr := range pairs {
			qp := pr.q
			q := tree.cloud.Pts[pr.j]
			nv := normals[pr.j]
			// Planar (yaw-only) rotation derivative: d(Rp)/dyaw = (-py', px', 0).
			jyaw := -qp.Y*nv.X + qp.X*nv.Y
			row := [3]float64{jyaw, nv.X, nv.Y}
			r := nv.X*(qp.X-q.X) + nv.Y*(qp.Y-q.Y) + nv.Z*(qp.Z-q.Z)
			for ri := 0; ri < 3; ri++ {
				for ci := 0; ci < 3; ci++ {
					a[ri][ci] += row[ri] * row[ci]
				}
				bvec[ri] -= row[ri] * r
			}
			sse += r * r
		}
		matchPool.Put(pairs)
		am := mathx.MatFromRows([][]float64{
			{a[0][0] + 1e-9, a[0][1], a[0][2]},
			{a[1][0], a[1][1] + 1e-9, a[1][2]},
			{a[2][0], a[2][1], a[2][2] + 1e-9},
		})
		sol, err := mathx.SolveSPD(am, bvec[:])
		if err != nil {
			break
		}
		dyaw, tx, ty := sol[0], sol[1], sol[2]
		yaw += dyaw
		sNew, cNew := math.Sin(dyaw), math.Cos(dyaw)
		ox, oy := trans.X, trans.Y
		trans.X = cNew*ox - sNew*oy + tx
		trans.Y = sNew*ox + cNew*oy + ty
		res.Iterations = it + 1
		res.RMSE = math.Sqrt(sse / float64(n))
		if math.Abs(dyaw) < 1e-6 && math.Hypot(tx, ty) < 1e-5 {
			break
		}
	}
	res.Yaw = yaw
	res.Trans = trans
	return res
}

// Segment performs Euclidean cluster extraction: connected components under
// the "within radius" relation, ignoring near-ground points. Returns point
// index groups of at least minPts.
func Segment(tree *KDTree, cloud *Cloud, tr Tracker, radius float64, minPts int) [][]int {
	n := cloud.Len()
	visited := make([]bool, n)
	var clusters [][]int
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		cloud.access(tr, i)
		if cloud.Pts[i].Z < 0.15 { // ground rejection
			visited[i] = true
			continue
		}
		// BFS flood fill through radius neighborhoods.
		var cluster []int
		queue := []int{i}
		visited[i] = true
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			cluster = append(cluster, j)
			for _, k := range tree.Radius(cloud.Pts[j], radius) {
				if !visited[k] && cloud.Pts[k].Z >= 0.15 {
					visited[k] = true
					queue = append(queue, k)
				}
			}
		}
		if len(cluster) >= minPts {
			clusters = append(clusters, cluster)
		}
	}
	return clusters
}

// Descriptor is a compact shape signature (a simplified viewpoint feature
// histogram): radial-distance and height histograms about the centroid.
type Descriptor [16]float64

// Describe computes the descriptor of a cluster.
func Describe(cloud *Cloud, tr Tracker, cluster []int) Descriptor {
	var d Descriptor
	if len(cluster) == 0 {
		return d
	}
	var centroid mathx.Vec3
	for _, i := range cluster {
		cloud.access(tr, i)
		centroid = centroid.Add(cloud.Pts[i])
	}
	centroid = centroid.Scale(1 / float64(len(cluster)))
	maxR := 1e-9
	for _, i := range cluster {
		cloud.access(tr, i)
		if r := cloud.Pts[i].Sub(centroid).Norm(); r > maxR {
			maxR = r
		}
	}
	for _, i := range cluster {
		cloud.access(tr, i)
		rel := cloud.Pts[i].Sub(centroid)
		rbin := int(rel.Norm() / maxR * 7.999)
		zbin := 8 + int((rel.Z/maxR+1)/2*7.999)
		if rbin < 0 {
			rbin = 0
		}
		if rbin > 7 {
			rbin = 7
		}
		if zbin < 8 {
			zbin = 8
		}
		if zbin > 15 {
			zbin = 15
		}
		d[rbin]++
		d[zbin]++
	}
	// L1 normalize.
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum > 0 {
		for i := range d {
			d[i] /= sum
		}
	}
	return d
}

// Recognize matches each cluster's descriptor against a template library
// by L1 distance, returning the best template index per cluster. This is
// the "recognition" kernel of Fig. 4b.
func Recognize(cloud *Cloud, tree *KDTree, tr Tracker, clusters [][]int, library []Descriptor) []int {
	out := make([]int, len(clusters))
	for ci, cluster := range clusters {
		d := Describe(cloud, tr, cluster)
		best, bestDist := -1, math.Inf(1)
		for li, tmpl := range library {
			dist := 0.0
			for k := range d {
				dist += math.Abs(d[k] - tmpl[k])
			}
			if dist < bestDist {
				bestDist = dist
				best = li
			}
		}
		out[ci] = best
	}
	return out
}

// Normal is an estimated unit surface normal.
type Normal = mathx.Vec3

// EstimateNormals fits a plane to each point's k-neighborhood (PCA smallest
// eigenvector via plane least-squares) — the core of surface reconstruction.
// Points are independent, so untracked runs fan the kNN searches out across
// the worker pool (per-tile reuse scratch, merged afterwards); each point's
// accumulation is self-contained, so the normals are byte-identical for any
// worker count.
func EstimateNormals(tree *KDTree, cloud *Cloud, tr Tracker, k int) []Normal {
	n := cloud.Len()
	out := make([]Normal, n)
	one := func(i int, reuse []int) {
		cloud.access(tr, i)
		nbrs := tree.knnInto(cloud.Pts[i], k, reuse)
		var centroid mathx.Vec3
		for _, j := range nbrs {
			cloud.access(tr, j)
			centroid = centroid.Add(cloud.Pts[j])
		}
		centroid = centroid.Scale(1 / float64(len(nbrs)))
		// Covariance accumulation.
		var xx, xy, xz, yy, yz, zz float64
		for _, j := range nbrs {
			r := cloud.Pts[j].Sub(centroid)
			xx += r.X * r.X
			xy += r.X * r.Y
			xz += r.X * r.Z
			yy += r.Y * r.Y
			yz += r.Y * r.Z
			zz += r.Z * r.Z
		}
		out[i] = smallestEigenvector(xx, xy, xz, yy, yz, zz)
	}
	if tr != nil || parallel.Workers() <= 1 || n < icpParallelMin {
		for i := 0; i < n; i++ {
			one(i, tree.Reuse)
		}
		return out
	}
	var mu sync.Mutex
	parallel.For(n, icpGrain, func(i0, i1 int) {
		reuse := parallel.GetIntsZeroed(tree.cloud.Len())
		for i := i0; i < i1; i++ {
			one(i, reuse)
		}
		mu.Lock()
		for i, r := range reuse {
			if r != 0 {
				tree.Reuse[i] += r
			}
		}
		mu.Unlock()
		parallel.PutInts(reuse)
	})
	return out
}

// smallestEigenvector of a symmetric 3x3 via inverse power iteration with
// a small regularizer (adequate for well-conditioned neighborhoods).
func smallestEigenvector(xx, xy, xz, yy, yz, zz float64) mathx.Vec3 {
	a := mathx.MatFromRows([][]float64{
		{xx + 1e-9, xy, xz},
		{xy, yy + 1e-9, yz},
		{xz, yz, zz + 1e-9},
	})
	v := []float64{0, 0, 1}
	for it := 0; it < 8; it++ {
		sol, err := mathx.SolveSPD(a, v)
		if err != nil {
			return mathx.Vec3{Z: 1}
		}
		norm := math.Sqrt(sol[0]*sol[0] + sol[1]*sol[1] + sol[2]*sol[2])
		if norm == 0 {
			return mathx.Vec3{Z: 1}
		}
		for i := range sol {
			sol[i] /= norm
		}
		v = sol
	}
	return mathx.Vec3{X: v[0], Y: v[1], Z: v[2]}
}

// Reconstruct estimates normals and counts greedy local surface links —
// a simplified greedy-projection triangulation that reproduces the memory
// behaviour (kNN per point) of PCL's reconstruction. Returns the triangle
// count.
func Reconstruct(tree *KDTree, cloud *Cloud, tr Tracker, k int) int {
	normals := EstimateNormals(tree, cloud, tr, k)
	triangles := 0
	for i := 0; i < cloud.Len(); i++ {
		nbrs := tree.KNN(cloud.Pts[i], 3)
		if len(nbrs) < 3 {
			continue
		}
		// Accept the local triangle when the neighbor normals agree.
		dot := normals[nbrs[0]].Dot(normals[nbrs[1]])
		if math.Abs(dot) > 0.5 {
			triangles++
		}
	}
	return triangles
}
