package pointcloud

import (
	"math"
	"testing"

	"sov/internal/cachesim"
	"sov/internal/mathx"
	"sov/internal/sim"
)

func grid(n int) *Cloud {
	c := &Cloud{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Pts = append(c.Pts, mathx.Vec3{X: float64(i), Y: float64(j), Z: 0.5})
		}
	}
	return c
}

func TestNearestExact(t *testing.T) {
	c := grid(10)
	tr := Build(c, nil)
	idx, d2 := tr.Nearest(mathx.Vec3{X: 3.2, Y: 7.1, Z: 0.5})
	if c.Pts[idx].X != 3 || c.Pts[idx].Y != 7 {
		t.Fatalf("nearest = %v", c.Pts[idx])
	}
	if math.Abs(d2-(0.04+0.01)) > 1e-9 {
		t.Fatalf("d2 = %v", d2)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(1)
	c := GenerateScan(500, 7, rng)
	tr := Build(c, nil)
	for q := 0; q < 50; q++ {
		query := mathx.Vec3{X: rng.Uniform(-20, 20), Y: rng.Uniform(-20, 20), Z: rng.Uniform(0, 3)}
		bi, bd := -1, math.Inf(1)
		for i, p := range c.Pts {
			d := p.Sub(query)
			if d2 := d.Dot(d); d2 < bd {
				bd = d2
				bi = i
			}
		}
		gi, gd := tr.Nearest(query)
		if gi != bi && math.Abs(gd-bd) > 1e-12 {
			t.Fatalf("query %d: tree %d(%v) vs brute %d(%v)", q, gi, gd, bi, bd)
		}
	}
}

func TestRadiusMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(2)
	c := GenerateScan(400, 3, rng)
	tr := Build(c, nil)
	query := mathx.Vec3{X: 1, Y: 2, Z: 1}
	r := 3.0
	got := map[int]bool{}
	for _, i := range tr.Radius(query, r) {
		got[i] = true
	}
	for i, p := range c.Pts {
		in := p.Sub(query).Norm() <= r
		if in != got[i] {
			t.Fatalf("radius mismatch at %d: in=%v got=%v", i, in, got[i])
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(3)
	c := GenerateScan(300, 4, rng)
	tr := Build(c, nil)
	query := mathx.Vec3{X: 0, Y: 0, Z: 1}
	k := 7
	got := tr.KNN(query, k)
	if len(got) != k {
		t.Fatalf("knn size = %d", len(got))
	}
	// The max distance among returned must equal the k-th smallest overall.
	var maxGot float64
	for _, i := range got {
		if d := c.Pts[i].Sub(query).Norm(); d > maxGot {
			maxGot = d
		}
	}
	dists := make([]float64, len(c.Pts))
	for i, p := range c.Pts {
		dists[i] = p.Sub(query).Norm()
	}
	// selection of k-th smallest
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(dists); j++ {
			if dists[j] < dists[min] {
				min = j
			}
		}
		dists[i], dists[min] = dists[min], dists[i]
	}
	if math.Abs(maxGot-dists[k-1]) > 1e-9 {
		t.Fatalf("kth distance: got %v want %v", maxGot, dists[k-1])
	}
}

func TestKNNZeroK(t *testing.T) {
	c := grid(3)
	tr := Build(c, nil)
	if got := tr.KNN(mathx.Vec3{}, 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestLocalizeRecoversTransform(t *testing.T) {
	rng := sim.NewRNG(4)
	target := GenerateScan(3000, 11, rng)
	// The vehicle moved: the new scan sees the world shifted by the
	// inverse motion. Localize src onto target should recover it.
	src := target.Transform(0.05, mathx.Vec3{X: 0.4, Y: -0.2})
	tree := Build(target, nil)
	res := Localize(tree, src, nil, 30, 2)
	// Aligning src onto target must find the inverse: yaw ≈ -0.05.
	if math.Abs(res.Yaw+0.05) > 0.01 {
		t.Fatalf("yaw = %v, want ~-0.05", res.Yaw)
	}
	if res.RMSE > 0.5 {
		t.Fatalf("RMSE = %v", res.RMSE)
	}
}

func TestLocalizeIdentity(t *testing.T) {
	rng := sim.NewRNG(5)
	target := GenerateScan(1000, 11, rng)
	src := target.Transform(0, mathx.Vec3{})
	tree := Build(target, nil)
	res := Localize(tree, src, nil, 10, 1)
	if math.Abs(res.Yaw) > 1e-3 || res.Trans.Norm() > 1e-2 {
		t.Fatalf("identity ICP moved: yaw=%v trans=%v", res.Yaw, res.Trans)
	}
}

func TestSegmentSeparatesClusters(t *testing.T) {
	c := &Cloud{}
	// Two dense clusters above ground, far apart, plus ground points.
	for i := 0; i < 50; i++ {
		c.Pts = append(c.Pts, mathx.Vec3{X: float64(i%5) * 0.1, Y: float64(i/5%5) * 0.1, Z: 1 + float64(i%3)*0.1})
		c.Pts = append(c.Pts, mathx.Vec3{X: 10 + float64(i%5)*0.1, Y: float64(i/5%5) * 0.1, Z: 1})
		c.Pts = append(c.Pts, mathx.Vec3{X: float64(i) * 0.3, Y: 5, Z: 0.0}) // ground
	}
	tree := Build(c, nil)
	clusters := Segment(tree, c, nil, 0.5, 10)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
}

func TestDescribeNormalized(t *testing.T) {
	rng := sim.NewRNG(6)
	c := GenerateScan(500, 2, rng)
	tree := Build(c, nil)
	clusters := Segment(tree, c, nil, 1.0, 20)
	if len(clusters) == 0 {
		t.Skip("no clusters in this scan")
	}
	d := Describe(c, nil, clusters[0])
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("descriptor not normalized: %v", sum)
	}
}

func TestDescribeEmptyCluster(t *testing.T) {
	c := grid(2)
	d := Describe(c, nil, nil)
	for _, v := range d {
		if v != 0 {
			t.Fatal("empty cluster should give zero descriptor")
		}
	}
}

func TestRecognizeSelectsClosestTemplate(t *testing.T) {
	c := grid(5)
	cluster := []int{0, 1, 2, 3, 4, 5, 6}
	d := Describe(c, nil, cluster)
	other := Descriptor{}
	other[0] = 1
	got := Recognize(c, nil, nil, [][]int{cluster}, []Descriptor{other, d})
	if got[0] != 1 {
		t.Fatalf("recognized template %d, want 1 (exact match)", got[0])
	}
}

func TestEstimateNormalsOnPlane(t *testing.T) {
	c := grid(12) // flat plane at z=0.5
	tree := Build(c, nil)
	normals := EstimateNormals(tree, c, nil, 8)
	for i, n := range normals {
		if math.Abs(math.Abs(n.Z)-1) > 0.05 {
			t.Fatalf("normal %d = %v, want ±z", i, n)
		}
	}
}

func TestReconstructCountsTriangles(t *testing.T) {
	c := grid(10)
	tree := Build(c, nil)
	tris := Reconstruct(tree, c, nil, 6)
	if tris < 50 {
		t.Fatalf("triangles = %d, want most of the plane linked", tris)
	}
}

func TestReuseIsIrregular(t *testing.T) {
	// Fig. 4a: reuse counts vary widely across points and differ between
	// two scenes scanned by the same LiDAR.
	rng := sim.NewRNG(7)
	scanA := GenerateScan(2000, 100, rng.Fork())
	scanB := GenerateScan(2000, 200, rng.Fork())
	moved := scanA.Transform(0.03, mathx.Vec3{X: 0.3})
	movedB := scanB.Transform(0.03, mathx.Vec3{X: 0.3})

	treeA := Build(scanA, nil)
	Localize(treeA, moved, nil, 15, 2)
	treeB := Build(scanB, nil)
	Localize(treeB, movedB, nil, 15, 2)

	statsOf := func(tr *KDTree) (min, max int, mean float64) {
		min, max = 1<<30, 0
		sum := 0
		for _, r := range tr.Reuse {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
		}
		return min, max, float64(sum) / float64(len(tr.Reuse))
	}
	minA, maxA, meanA := statsOf(treeA)
	_, maxB, meanB := statsOf(treeB)
	if maxA < 10*(minA+1) {
		t.Fatalf("reuse not irregular: min=%d max=%d", minA, maxA)
	}
	// The distributions differ across scenes.
	if maxA == maxB && math.Abs(meanA-meanB) < 1e-9 {
		t.Fatal("two scenes produced identical reuse statistics")
	}
	h := treeA.ReuseHistogram(50)
	if len(h) < 3 {
		t.Fatalf("histogram too narrow: %v", h)
	}
}

func TestCacheTrafficExceedsOptimal(t *testing.T) {
	// Fig. 4b: kd-tree kernels' off-chip traffic is far above compulsory.
	rng := sim.NewRNG(8)
	scan := GenerateScan(4000, 42, rng)
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.2})
	cache := cachesim.New(cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8})
	tree := Build(scan, cache)
	cache.Reset() // measure the query phase, not construction
	Localize(tree, moved, cache, 10, 2)
	s := cache.Stats()
	if s.TrafficRatio() < 3 {
		t.Fatalf("localization traffic ratio = %v, want >> 1", s.TrafficRatio())
	}
}

func TestGenerateScanDeterministicPerSeed(t *testing.T) {
	a := GenerateScan(100, 5, sim.NewRNG(9))
	b := GenerateScan(100, 5, sim.NewRNG(9))
	for i := range a.Pts {
		if a.Pts[i] != b.Pts[i] {
			t.Fatal("scan generation not deterministic")
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	c := grid(4)
	moved := c.Transform(0.3, mathx.Vec3{X: 1, Y: -2, Z: 0.1})
	back := moved.Transform(-0.3, mathx.Vec3{})
	// back = R(-0.3)(R(0.3)p + t) = p + R(-0.3)t; just verify rotation is
	// undone by checking pairwise distances are preserved.
	d0 := c.Pts[0].DistTo(c.Pts[5])
	d1 := back.Pts[0].DistTo(back.Pts[5])
	if math.Abs(d0-d1) > 1e-9 {
		t.Fatalf("rigid transform distorted distances: %v vs %v", d0, d1)
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	rng := sim.NewRNG(10)
	scan := GenerateScan(10000, 1, rng)
	tree := Build(scan, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(mathx.Vec3{X: float64(i % 20), Y: float64(i % 17), Z: 1})
	}
}

func BenchmarkLocalizeICP(b *testing.B) {
	rng := sim.NewRNG(11)
	scan := GenerateScan(5000, 1, rng)
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.2})
	tree := Build(scan, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Localize(tree, moved, nil, 10, 4)
	}
}

func TestPointToPlaneICPRecoversTransform(t *testing.T) {
	rng := sim.NewRNG(13)
	target := GenerateScan(3000, 11, rng)
	src := target.Transform(0.04, mathx.Vec3{X: 0.3, Y: -0.15})
	tree := Build(target, nil)
	normals := EstimateNormals(tree, target, nil, 8)
	res := LocalizePointToPlane(tree, normals, src, nil, 20, 2)
	if math.Abs(res.Yaw+0.04) > 0.01 {
		t.Fatalf("yaw = %v, want ~-0.04", res.Yaw)
	}
	if res.RMSE > 0.4 {
		t.Fatalf("RMSE = %v", res.RMSE)
	}
}

func TestPointToPlaneConvergesFasterThanPointToPoint(t *testing.T) {
	rng := sim.NewRNG(14)
	target := GenerateScan(3000, 11, rng)
	src := target.Transform(0.05, mathx.Vec3{X: 0.4})
	tree := Build(target, nil)
	normals := EstimateNormals(tree, target, nil, 8)
	p2pl := LocalizePointToPlane(tree, normals, src, nil, 30, 2)
	p2p := Localize(tree, src, nil, 30, 2)
	if p2pl.Iterations > p2p.Iterations {
		t.Fatalf("point-to-plane took %d iterations vs point-to-point %d",
			p2pl.Iterations, p2p.Iterations)
	}
	if math.Abs(p2pl.Yaw+0.05) > 0.015 {
		t.Fatalf("point-to-plane yaw = %v", p2pl.Yaw)
	}
}

func TestPointToPlaneDegenerate(t *testing.T) {
	c := &Cloud{Pts: []mathx.Vec3{{X: 1}}}
	tree := Build(c, nil)
	res := LocalizePointToPlane(tree, []Normal{{Z: 1}}, c, nil, 5, 1)
	if res.Yaw != 0 || res.Trans.Norm() != 0 {
		t.Fatalf("degenerate input moved: %+v", res)
	}
}

func BenchmarkLocalizePointToPlane(b *testing.B) {
	rng := sim.NewRNG(15)
	scan := GenerateScan(5000, 1, rng)
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.2})
	tree := Build(scan, nil)
	normals := EstimateNormals(tree, scan, nil, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalizePointToPlane(tree, normals, moved, nil, 10, 4)
	}
}
