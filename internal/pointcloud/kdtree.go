// Package pointcloud implements the LiDAR-processing comparator of the
// Sec. III-D case study: a kd-tree and the four Point-Cloud-Library-style
// kernels the paper measures — localization (ICP registration), recognition,
// reconstruction, and segmentation — instrumented so that every point and
// tree-node access can be routed through a cache model (internal/cachesim)
// to reproduce Fig. 4's irregular-reuse and memory-traffic results.
package pointcloud

import (
	"math"
	"sort"

	"sov/internal/mathx"
	"sov/internal/parallel"
	"sov/internal/sim"
)

// Tracker observes memory accesses; cachesim.Cache satisfies it.
type Tracker interface {
	Access(addr, size int64)
}

// address-space layout constants for the instrumented accesses.
const (
	pointBytes   = 24 // 3 float64
	nodeBytes    = 32
	pointRegion  = 0
	nodeRegion   = 1 << 30
	secondRegion = 1 << 31
)

// Cloud is a 3-D point cloud.
type Cloud struct {
	Pts []mathx.Vec3
	// Region offsets this cloud's instrumented addresses so two clouds
	// don't alias (source vs. target in registration).
	Region int64
}

// Len returns the point count.
func (c *Cloud) Len() int { return len(c.Pts) }

// access records a read of point i.
func (c *Cloud) access(tr Tracker, i int) {
	if tr != nil {
		tr.Access(c.Region+pointRegion+int64(i)*pointBytes, pointBytes)
	}
}

type kdNode struct {
	axis        int
	split       float64
	idx         int // point index at this node
	left, right int32
}

// KDTree is a k-d tree over a cloud with access instrumentation and
// per-point reuse counting (Fig. 4a).
type KDTree struct {
	cloud *Cloud
	nodes []kdNode
	root  int32
	tr    Tracker
	// Reuse counts accesses per point during queries.
	Reuse []int
}

// Build constructs a balanced kd-tree over the cloud. The tracker (may be
// nil) observes query accesses.
//
// Nodes are laid out in preorder: the subtree over m points occupies m
// contiguous slots, with the left child block immediately after the node
// and the right block after it. The layout is a pure function of the
// input, so large sibling subtrees build concurrently into disjoint slot
// ranges and the tree is byte-identical for any worker count (and to the
// previous serial append-order builder).
func Build(c *Cloud, tr Tracker) *KDTree {
	t := &KDTree{cloud: c, tr: tr, Reuse: make([]int, len(c.Pts))}
	idxs := make([]int, len(c.Pts))
	for i := range idxs {
		idxs[i] = i
	}
	t.nodes = make([]kdNode, len(c.Pts))
	if len(idxs) == 0 {
		t.root = -1
		return t
	}
	t.root = 0
	t.buildAt(idxs, 0, 0)
	return t
}

// kdParallelMin is the subtree size below which sibling builds stay serial
// (the fan-out overhead would exceed the sort work).
const kdParallelMin = 1024

// buildAt builds the subtree over idxs into slots [at, at+len(idxs)).
// Sibling calls sort disjoint sub-slices of the shared index array and
// write disjoint node ranges, so they are safe to run concurrently.
func (t *KDTree) buildAt(idxs []int, depth int, at int32) {
	if len(idxs) == 0 {
		return
	}
	axis := depth % 3
	sort.Slice(idxs, func(i, j int) bool {
		return coord(t.cloud.Pts[idxs[i]], axis) < coord(t.cloud.Pts[idxs[j]], axis)
	})
	mid := len(idxs) / 2
	left, right := int32(-1), int32(-1)
	if mid > 0 {
		left = at + 1
	}
	if mid+1 < len(idxs) {
		right = at + 1 + int32(mid)
	}
	t.nodes[at] = kdNode{
		axis:  axis,
		split: coord(t.cloud.Pts[idxs[mid]], axis),
		idx:   idxs[mid],
		left:  left,
		right: right,
	}
	if len(idxs) >= kdParallelMin {
		parallel.Do(
			func() { t.buildAt(idxs[:mid], depth+1, at+1) },
			func() { t.buildAt(idxs[mid+1:], depth+1, at+1+int32(mid)) },
		)
		return
	}
	t.buildAt(idxs[:mid], depth+1, at+1)
	t.buildAt(idxs[mid+1:], depth+1, at+1+int32(mid))
}

func coord(p mathx.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

// visitInto records a node visit, crediting the reuse counter slice the
// caller owns — t.Reuse on the serial path, a per-worker scratch on
// parallel query paths (merged afterwards; integer adds are exact in any
// order).
func (t *KDTree) visitInto(n int32, reuse []int) *kdNode {
	node := &t.nodes[n]
	if t.tr != nil {
		t.tr.Access(t.cloud.Region+nodeRegion+int64(n)*nodeBytes, nodeBytes)
	}
	t.cloud.access(t.tr, node.idx)
	reuse[node.idx]++
	return node
}

func (t *KDTree) visit(n int32) *kdNode { return t.visitInto(n, t.Reuse) }

// Nearest returns the index and squared distance of the closest point.
func (t *KDTree) Nearest(q mathx.Vec3) (int, float64) {
	return t.nearestInto(q, t.Reuse)
}

// nearestInto is Nearest crediting visits to the given reuse slice.
func (t *KDTree) nearestInto(q mathx.Vec3, reuse []int) (int, float64) {
	bestIdx, bestD2 := -1, math.Inf(1)
	t.nearest(t.root, q, &bestIdx, &bestD2, reuse)
	return bestIdx, bestD2
}

func (t *KDTree) nearest(n int32, q mathx.Vec3, bestIdx *int, bestD2 *float64, reuse []int) {
	if n < 0 {
		return
	}
	node := t.visitInto(n, reuse)
	p := t.cloud.Pts[node.idx]
	d2 := p.Sub(q).Dot(p.Sub(q))
	if d2 < *bestD2 {
		*bestD2 = d2
		*bestIdx = node.idx
	}
	diff := coord(q, node.axis) - node.split
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.nearest(near, q, bestIdx, bestD2, reuse)
	if diff*diff < *bestD2 {
		t.nearest(far, q, bestIdx, bestD2, reuse)
	}
}

// Radius returns the indices of all points within r of q.
func (t *KDTree) Radius(q mathx.Vec3, r float64) []int {
	var out []int
	t.radius(t.root, q, r*r, &out)
	return out
}

func (t *KDTree) radius(n int32, q mathx.Vec3, r2 float64, out *[]int) {
	if n < 0 {
		return
	}
	node := t.visit(n)
	p := t.cloud.Pts[node.idx]
	if d := p.Sub(q); d.Dot(d) <= r2 {
		*out = append(*out, node.idx)
	}
	diff := coord(q, node.axis) - node.split
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	t.radius(near, q, r2, out)
	if diff*diff <= r2 {
		t.radius(far, q, r2, out)
	}
}

// KNN returns the k nearest point indices (unsorted beyond the heap order).
func (t *KDTree) KNN(q mathx.Vec3, k int) []int {
	return t.knnInto(q, k, t.Reuse)
}

// knnInto is KNN crediting visits to the given reuse slice.
func (t *KDTree) knnInto(q mathx.Vec3, k int, reuse []int) []int {
	if k <= 0 {
		return nil
	}
	// Simple bounded max-heap over (d2, idx).
	type cand struct {
		d2  float64
		idx int
	}
	heap := make([]cand, 0, k)
	var push func(c cand)
	push = func(c cand) {
		if len(heap) < k {
			heap = append(heap, c)
			// Sift up toward max-root.
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p].d2 < heap[i].d2 {
					heap[p], heap[i] = heap[i], heap[p]
					i = p
				} else {
					break
				}
			}
			return
		}
		if c.d2 >= heap[0].d2 {
			return
		}
		heap[0] = c
		// Sift down.
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < k && heap[l].d2 > heap[big].d2 {
				big = l
			}
			if r < k && heap[r].d2 > heap[big].d2 {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	var walk func(n int32)
	walk = func(n int32) {
		if n < 0 {
			return
		}
		node := t.visitInto(n, reuse)
		p := t.cloud.Pts[node.idx]
		d := p.Sub(q)
		push(cand{d2: d.Dot(d), idx: node.idx})
		diff := coord(q, node.axis) - node.split
		near, far := node.left, node.right
		if diff > 0 {
			near, far = far, near
		}
		walk(near)
		if len(heap) < k || diff*diff < heap[0].d2 {
			walk(far)
		}
	}
	walk(t.root)
	out := make([]int, len(heap))
	for i, c := range heap {
		out[i] = c.idx
	}
	return out
}

// ReuseHistogram bins the per-point access counts (Fig. 4a's x-axis is the
// reuse frequency, y the number of points with that frequency).
func (t *KDTree) ReuseHistogram(binWidth int) map[int]int {
	if binWidth <= 0 {
		binWidth = 1
	}
	h := make(map[int]int)
	for _, c := range t.Reuse {
		h[c/binWidth*binWidth]++
	}
	return h
}

// GenerateScan builds a synthetic LiDAR-like scan: a ground plane, wall
// segments, poles, and box obstacles with range-dependent density and
// noise. The variant seed changes the scene composition (Fig. 4a compares
// two different scenes captured by the same LiDAR).
func GenerateScan(n int, variant int64, rng *sim.RNG) *Cloud {
	c := &Cloud{Pts: make([]mathx.Vec3, 0, n)}
	vr := sim.NewRNG(variant)
	// Scene composition.
	nBoxes := 3 + vr.Intn(4)
	type box struct{ x, y, w, d, h float64 }
	boxes := make([]box, nBoxes)
	for i := range boxes {
		boxes[i] = box{
			x: vr.Uniform(-15, 15), y: vr.Uniform(-15, 15),
			w: vr.Uniform(0.5, 3), d: vr.Uniform(0.5, 3), h: vr.Uniform(0.5, 2.5),
		}
	}
	for len(c.Pts) < n {
		r := rng.Float64()
		var p mathx.Vec3
		switch {
		case r < 0.5:
			// Ground plane with 1/r density falloff.
			rad := 2 + 18*math.Sqrt(rng.Float64())
			ang := rng.Uniform(0, 2*math.Pi)
			p = mathx.Vec3{X: rad * math.Cos(ang), Y: rad * math.Sin(ang), Z: rng.Normal(0, 0.02)}
		case r < 0.8:
			// Box surfaces.
			b := boxes[rng.Intn(len(boxes))]
			p = mathx.Vec3{
				X: b.x + rng.Uniform(-b.w/2, b.w/2),
				Y: b.y + rng.Uniform(-b.d/2, b.d/2),
				Z: rng.Uniform(0, b.h),
			}
		default:
			// Poles.
			ang := rng.Uniform(0, 2*math.Pi)
			rad := rng.Uniform(4, 18)
			p = mathx.Vec3{
				X: rad*math.Cos(ang) + rng.Normal(0, 0.01),
				Y: rad*math.Sin(ang) + rng.Normal(0, 0.01),
				Z: rng.Uniform(0, 3),
			}
		}
		c.Pts = append(c.Pts, p)
	}
	return c
}

// Transform applies a yaw rotation and translation to every point,
// returning a new cloud (the "vehicle moved" second scan).
func (c *Cloud) Transform(yaw float64, t mathx.Vec3) *Cloud {
	out := &Cloud{Pts: make([]mathx.Vec3, len(c.Pts)), Region: secondRegion}
	s, co := math.Sin(yaw), math.Cos(yaw)
	for i, p := range c.Pts {
		out.Pts[i] = mathx.Vec3{
			X: co*p.X - s*p.Y + t.X,
			Y: s*p.X + co*p.Y + t.Y,
			Z: p.Z + t.Z,
		}
	}
	return out
}
