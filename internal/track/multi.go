package track

import (
	"time"

	"sov/internal/vision"
)

// VisualTarget is one object under multi-target KCF tracking.
type VisualTarget struct {
	ID       int
	X, Y     float64
	Peak     float64
	Misses   int
	LastSeen time.Duration
}

// MultiKCF manages one KCF filter per target — the visual-tracking fallback
// configuration when radar is unstable across several objects at once.
// Targets spawn from detections (by pixel position), update per frame, and
// are pruned after consecutive low-confidence responses.
type MultiKCF struct {
	// PatchSize is the per-target template size (power of two).
	PatchSize int
	// SpawnGate is the pixel distance under which a detection is
	// considered the same object as an existing target.
	SpawnGate float64
	// MaxMisses prunes a target after this many failed updates.
	MaxMisses int

	filters map[int]*KCF
	targets map[int]*VisualTarget
	nextID  int
}

// NewMultiKCF returns a manager with 32 px templates.
func NewMultiKCF() *MultiKCF {
	return &MultiKCF{
		PatchSize: 32, SpawnGate: 12, MaxMisses: 3,
		filters: make(map[int]*KCF),
		targets: make(map[int]*VisualTarget),
	}
}

// Spawn registers detections as targets: detections near an existing target
// are ignored (it is already tracked); the rest initialize new filters.
func (m *MultiKCF) Spawn(im *vision.Image, detections [][2]float64, now time.Duration) {
	for _, d := range detections {
		dup := false
		for _, t := range m.targets {
			dx, dy := t.X-d[0], t.Y-d[1]
			if dx*dx+dy*dy < m.SpawnGate*m.SpawnGate {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		m.nextID++
		k := NewKCF(m.PatchSize)
		k.Init(im, d[0], d[1])
		m.filters[m.nextID] = k
		m.targets[m.nextID] = &VisualTarget{ID: m.nextID, X: d[0], Y: d[1], LastSeen: now}
	}
}

// Update advances every target on the new frame and returns the live set.
func (m *MultiKCF) Update(im *vision.Image, now time.Duration) []VisualTarget {
	for id, k := range m.filters {
		t := m.targets[id]
		r := k.Update(im)
		if r.OK {
			t.X, t.Y = r.X, r.Y
			t.Peak = r.Peak
			t.Misses = 0
			t.LastSeen = now
		} else {
			t.Misses++
			if t.Misses >= m.MaxMisses {
				delete(m.filters, id)
				delete(m.targets, id)
			}
		}
	}
	out := make([]VisualTarget, 0, len(m.targets))
	for _, t := range m.targets {
		out = append(out, *t)
	}
	return out
}

// Count returns the live target count.
func (m *MultiKCF) Count() int { return len(m.targets) }
