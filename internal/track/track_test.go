package track

import (
	"math"
	"testing"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
	"sov/internal/vision"
)

// renderTarget draws a textured box centered at (cx, cy) in camera-frame
// meters at the given depth.
func renderTarget(cxM, cyM float64) *vision.Image {
	s := vision.Scene{
		Background: 2, BgDepth: 25,
		Boxes: []vision.Box{{X: cxM, Y: cyM, Z: 6, W: 1.8, H: 1.8, Texture: 17}},
	}
	return s.Render(vision.DefaultIntrinsics(), 0)
}

func TestKCFTracksMovingTarget(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	im0 := renderTarget(0, 0)
	k := NewKCF(32)
	k.Init(im0, intr.Cx, intr.Cy)

	// Move the target right in steps of 0.1 m at 6 m depth → 2 px/frame.
	trueX := intr.Cx
	for step := 1; step <= 8; step++ {
		m := 0.1 * float64(step)
		im := renderTarget(m, 0)
		trueX = intr.Cx + m/6*intr.Fx
		r := k.Update(im)
		if !r.OK {
			t.Fatalf("lost target at step %d (peak %v)", step, r.Peak)
		}
		if math.Abs(r.X-trueX) > 2.0 {
			t.Fatalf("step %d: tracked x = %.1f, want %.1f", step, r.X, trueX)
		}
		if math.Abs(r.Y-intr.Cy) > 2.0 {
			t.Fatalf("step %d: tracked y = %.1f, want %.1f", step, r.Y, intr.Cy)
		}
	}
	cx, _ := k.Center()
	if math.Abs(cx-trueX) > 2.0 {
		t.Fatalf("final center %v, want %v", cx, trueX)
	}
}

func TestKCFStationaryTargetStays(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	im := renderTarget(0, 0)
	k := NewKCF(32)
	k.Init(im, intr.Cx, intr.Cy)
	for i := 0; i < 5; i++ {
		r := k.Update(im)
		if !r.OK {
			t.Fatalf("lost stationary target, peak %v", r.Peak)
		}
		if math.Abs(r.X-intr.Cx) > 0.5 || math.Abs(r.Y-intr.Cy) > 0.5 {
			t.Fatalf("drifted to (%.2f, %.2f)", r.X, r.Y)
		}
	}
}

func TestKCFUpdateWithoutInit(t *testing.T) {
	k := NewKCF(16)
	if r := k.Update(vision.NewImage(64, 64)); r.OK {
		t.Fatal("update without init should not succeed")
	}
}

func TestKCFPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKCF(20)
}

func TestRadarTrackerBuildsTrajectory(t *testing.T) {
	rt := NewRadarTracker()
	// Target approaching from 20 m at -2 m/s along the boresight.
	for i := 0; i <= 20; i++ {
		ti := time.Duration(i) * 50 * time.Millisecond
		rng := 20 - 2*ti.Seconds()
		rets := []sensors.RadarReturn{{ObstacleID: 1, Range: rng, Bearing: 0, RadialVel: -2, Time: ti}}
		rt.Observe(ti, rets)
	}
	tracks := rt.Confirmed(5)
	if len(tracks) != 1 {
		t.Fatalf("confirmed tracks = %d, want 1", len(tracks))
	}
	tr := tracks[0]
	if math.Abs(tr.Pos.X-18) > 0.5 {
		t.Fatalf("track pos = %v, want x≈18", tr.Pos)
	}
	if math.Abs(tr.Vel.X-(-2)) > 0.5 {
		t.Fatalf("track vel = %v, want x≈-2", tr.Vel)
	}
	if tr.RadialV != -2 {
		t.Fatalf("radial vel = %v", tr.RadialV)
	}
}

func TestRadarTrackerSeparatesTargets(t *testing.T) {
	rt := NewRadarTracker()
	for i := 0; i <= 10; i++ {
		ti := time.Duration(i) * 50 * time.Millisecond
		rets := []sensors.RadarReturn{
			{ObstacleID: 1, Range: 10, Bearing: 0, RadialVel: 0, Time: ti},
			{ObstacleID: 2, Range: 10, Bearing: 0.6, RadialVel: 0, Time: ti},
		}
		rt.Observe(ti, rets)
	}
	if got := len(rt.Confirmed(5)); got != 2 {
		t.Fatalf("tracks = %d, want 2", got)
	}
}

func TestRadarTrackerExpiresStaleTracks(t *testing.T) {
	rt := NewRadarTracker()
	rt.Observe(0, []sensors.RadarReturn{{Range: 10, Bearing: 0}})
	// No observations for > MaxAge.
	out := rt.Observe(time.Second, nil)
	if len(out) != 0 {
		t.Fatalf("stale track survived: %v", out)
	}
}

func TestRadarTrackerGateRejectsJumps(t *testing.T) {
	rt := NewRadarTracker()
	rt.Observe(0, []sensors.RadarReturn{{Range: 10, Bearing: 0}})
	// A return 8 m away should start a new track, not teleport the old.
	out := rt.Observe(50*time.Millisecond, []sensors.RadarReturn{{Range: 18, Bearing: 0}})
	if len(out) != 2 {
		t.Fatalf("tracks = %d, want 2 (gate must reject)", len(out))
	}
}

func TestRadarTrackerVelocityFromTrajectoryNotJustRadial(t *testing.T) {
	rt := NewRadarTracker()
	// Crossing target: constant range 10 m, bearing sweeping → tangential
	// velocity invisible to radial Doppler but visible to the trajectory.
	for i := 0; i <= 30; i++ {
		ti := time.Duration(i) * 50 * time.Millisecond
		b := -0.3 + 0.02*float64(i)
		rets := []sensors.RadarReturn{{Range: 10, Bearing: b, RadialVel: 0, Time: ti}}
		rt.Observe(ti, rets)
	}
	tracks := rt.Confirmed(10)
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	// Tangential speed ≈ 10 m * 0.4 rad/s = 4 m/s.
	if tracks[0].Vel.Norm() < 1.5 {
		t.Fatalf("trajectory velocity = %v, want tangential component", tracks[0].Vel)
	}
}

func BenchmarkKCFUpdate32(b *testing.B) {
	intr := vision.DefaultIntrinsics()
	im := renderTarget(0, 0)
	k := NewKCF(32)
	k.Init(im, intr.Cx, intr.Cy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Update(im)
	}
}

func BenchmarkKCFUpdate64(b *testing.B) {
	intr := vision.DefaultIntrinsics()
	im := renderTarget(0, 0)
	k := NewKCF(64)
	k.Init(im, intr.Cx, intr.Cy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Update(im)
	}
}

func BenchmarkRadarTrackerObserve(b *testing.B) {
	rt := NewRadarTracker()
	rets := []sensors.RadarReturn{
		{Range: 10, Bearing: 0, RadialVel: -1},
		{Range: 15, Bearing: 0.3, RadialVel: 0.5},
		{Range: 20, Bearing: -0.4, RadialVel: -2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Observe(time.Duration(i)*50*time.Millisecond, rets)
	}
}

var _ = mathx.Vec2{} // keep import for helpers

func twoTargetScene(x1, x2 float64) *vision.Image {
	s := vision.Scene{
		Background: 2, BgDepth: 25,
		Boxes: []vision.Box{
			{X: x1, Y: -0.8, Z: 6, W: 1.4, H: 1.4, Texture: 17},
			{X: x2, Y: 0.8, Z: 6, W: 1.4, H: 1.4, Texture: 33},
		},
	}
	return s.Render(vision.DefaultIntrinsics(), 0)
}

func TestMultiKCFTracksTwoTargets(t *testing.T) {
	intr := vision.DefaultIntrinsics()
	m := NewMultiKCF()
	im0 := twoTargetScene(-1.2, 1.2)
	// Detections in pixels: x = cx + X/Z*f, y = cy + Y/Z*f.
	px := func(X, Y float64) [2]float64 {
		return [2]float64{intr.Cx + X/6*intr.Fx, intr.Cy + Y/6*intr.Fy}
	}
	m.Spawn(im0, [][2]float64{px(-1.2, -0.8), px(1.2, 0.8)}, 0)
	if m.Count() != 2 {
		t.Fatalf("targets = %d", m.Count())
	}
	// Duplicate spawn is rejected.
	m.Spawn(im0, [][2]float64{px(-1.2, -0.8)}, 0)
	if m.Count() != 2 {
		t.Fatal("duplicate detection spawned a target")
	}
	// Both targets drift right 0.05 m/frame.
	for i := 1; i <= 5; i++ {
		im := twoTargetScene(-1.2+0.05*float64(i), 1.2+0.05*float64(i))
		targets := m.Update(im, time.Duration(i)*33*time.Millisecond)
		if len(targets) != 2 {
			t.Fatalf("frame %d: targets = %d", i, len(targets))
		}
	}
	// Final positions moved ~5 px right.
	for _, tr := range m.Update(twoTargetScene(-0.95, 1.45), 200*time.Millisecond) {
		var want float64
		if tr.Y < float64(intr.Cy) {
			want = intr.Cx + (-0.95)/6*intr.Fx
		} else {
			want = intr.Cx + 1.45/6*intr.Fx
		}
		if math.Abs(tr.X-want) > 3 {
			t.Fatalf("target %d at x=%.1f, want ~%.1f", tr.ID, tr.X, want)
		}
	}
}

func TestMultiKCFPrunesLostTargets(t *testing.T) {
	m := NewMultiKCF()
	im := twoTargetScene(-1.2, 1.2)
	m.Spawn(im, [][2]float64{{80, 44}}, 0)
	if m.Count() != 1 {
		t.Fatalf("targets = %d", m.Count())
	}
	// Flat frames kill the response; target should be pruned.
	flat := vision.NewImage(im.W, im.H)
	for i := 0; i < 5; i++ {
		m.Update(flat, time.Duration(i)*33*time.Millisecond)
	}
	if m.Count() != 0 {
		t.Fatalf("lost target not pruned: %d", m.Count())
	}
}
