package track

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
)

// RadarTrack is one maintained target trajectory in the vehicle frame.
type RadarTrack struct {
	ID       int
	Pos      mathx.Vec2 // vehicle frame
	Vel      mathx.Vec2 // vehicle frame estimate
	RadialV  float64    // latest direct radial-velocity measurement
	Hits     int
	LastSeen time.Duration
}

// RadarTracker combines consecutive radar returns of the same target into
// trajectories (the paper: "Radars directly measure the relative radial
// velocity of an object and combine consecutive observations of the same
// target into a trajectory"). Association is nearest-neighbor with a
// Euclidean gate; state update is an alpha-beta filter.
type RadarTracker struct {
	// Gate is the association distance in meters.
	Gate float64
	// Alpha/Beta are the filter gains.
	Alpha, Beta float64
	// MaxAge drops tracks not seen for this long.
	MaxAge time.Duration

	tracks []RadarTrack
	nextID int
	used   []bool // association scratch, reused across scans
}

// NewRadarTracker returns a tracker with field-typical gains.
func NewRadarTracker() *RadarTracker {
	return &RadarTracker{Gate: 2.0, Alpha: 0.6, Beta: 0.2, MaxAge: 500 * time.Millisecond}
}

// Observe ingests one radar scan taken at time t and returns the live
// tracks. Returns are in polar vehicle-frame coordinates.
func (rt *RadarTracker) Observe(t time.Duration, returns []sensors.RadarReturn) []RadarTrack {
	out := make([]RadarTrack, 0, len(rt.tracks)+len(returns))
	return rt.ObserveInto(t, returns, out)
}

// ObserveInto is the reusing variant of Observe: the live tracks append to
// dst (grown as needed) and the association scratch is kept on the tracker,
// so a warm steady state allocates nothing. Filter updates are identical to
// Observe.
//
//sov:hotpath
func (rt *RadarTracker) ObserveInto(t time.Duration, returns []sensors.RadarReturn, dst []RadarTrack) []RadarTrack {
	if cap(rt.used) < len(returns) {
		//sovlint:ignore hotalloc grow path runs only when the return count exceeds every previous frame; amortized zero
		rt.used = make([]bool, len(returns))
	}
	used := rt.used[:len(returns)]
	for j := range used {
		used[j] = false
	}
	// Update existing tracks with the nearest gated return.
	for i := range rt.tracks {
		tr := &rt.tracks[i]
		bestJ := -1
		bestD := rt.Gate
		for j, r := range returns {
			if used[j] {
				continue
			}
			p := polar(r.Range, r.Bearing)
			if d := p.DistTo(tr.Pos); d < bestD {
				bestD = d
				bestJ = j
			}
		}
		if bestJ < 0 {
			continue
		}
		used[bestJ] = true
		r := returns[bestJ]
		meas := polar(r.Range, r.Bearing)
		dt := (t - tr.LastSeen).Seconds()
		if dt <= 0 {
			dt = 1e-3
		}
		// Alpha-beta update.
		pred := tr.Pos.Add(tr.Vel.Scale(dt))
		resid := meas.Sub(pred)
		tr.Pos = pred.Add(resid.Scale(rt.Alpha))
		tr.Vel = tr.Vel.Add(resid.Scale(rt.Beta / dt))
		tr.RadialV = r.RadialVel
		tr.Hits++
		tr.LastSeen = t
	}
	// Start new tracks for unassociated returns.
	for j, r := range returns {
		if used[j] {
			continue
		}
		rt.nextID++
		losUnit := polar(1, r.Bearing)
		rt.tracks = append(rt.tracks, RadarTrack{
			ID:       rt.nextID,
			Pos:      polar(r.Range, r.Bearing),
			Vel:      losUnit.Scale(r.RadialVel), // radial component seeds velocity
			RadialV:  r.RadialVel,
			Hits:     1,
			LastSeen: t,
		})
	}
	// Expire stale tracks.
	n := 0
	for _, tr := range rt.tracks {
		if t-tr.LastSeen <= rt.MaxAge {
			rt.tracks[n] = tr
			n++
		}
	}
	rt.tracks = rt.tracks[:n]
	return append(dst, rt.tracks...)
}

// Confirmed returns tracks with at least minHits associations.
func (rt *RadarTracker) Confirmed(minHits int) []RadarTrack {
	var out []RadarTrack
	for _, tr := range rt.tracks {
		if tr.Hits >= minHits {
			out = append(out, tr)
		}
	}
	return out
}

func polar(r, bearing float64) mathx.Vec2 {
	return mathx.Vec2{X: r * math.Cos(bearing), Y: r * math.Sin(bearing)}
}
