// Package track implements the two object-tracking paths of the SoV:
// the Kernelized Correlation Filter (KCF, Table III) — the compute-heavy
// visual baseline used when radar signals are unstable — and the radar
// trajectory tracker that normally replaces it (Sec. VI-B: "augmenting
// computing with sensors").
package track

import (
	"fmt"
	"math"

	"sov/internal/mathx"
	"sov/internal/parallel"
	"sov/internal/vision"
)

// kcfGrain is the elementwise tile size for the filter's frequency-domain
// loops; fixed so tiling never depends on the worker count.
const kcfGrain = 4096

// KCF is a single-scale kernelized correlation filter with raw-pixel
// features, a cosine (Hann) window, Gaussian target labels, and Gaussian
// kernel correlation computed in the Fourier domain — the classic
// formulation of Henriques et al.
type KCF struct {
	Size   int // square patch side, power of two
	Sigma  float64
	Lambda float64
	// OutputSigma is the Gaussian label width in pixels.
	OutputSigma float64

	window []float64
	yf     []complex128
	// model
	alphaF []complex128
	xf     []complex128 // FFT of the training patch (windowed)
	xNorm  float64      // ||x||²
	cx, cy float64      // current target center
}

// NewKCF returns a tracker with a size×size template (size must be a power
// of two for the FFT).
func NewKCF(size int) *KCF {
	if size < 8 || size&(size-1) != 0 {
		panic(fmt.Sprintf("track: KCF size %d must be a power of two >= 8", size))
	}
	k := &KCF{Size: size, Sigma: 0.5, Lambda: 1e-4, OutputSigma: float64(size) / 10}
	k.window = make([]float64, size*size)
	for y := 0; y < size; y++ {
		wy := 0.5 * (1 - math.Cos(2*math.Pi*float64(y)/float64(size-1)))
		for x := 0; x < size; x++ {
			wx := 0.5 * (1 - math.Cos(2*math.Pi*float64(x)/float64(size-1)))
			k.window[y*size+x] = wx * wy
		}
	}
	// Gaussian labels centered at (0,0) with wrap-around.
	y := make([]complex128, size*size)
	s2 := k.OutputSigma * k.OutputSigma
	for yy := 0; yy < size; yy++ {
		dy := float64(yy)
		if dy > float64(size)/2 {
			dy -= float64(size)
		}
		for xx := 0; xx < size; xx++ {
			dx := float64(xx)
			if dx > float64(size)/2 {
				dx -= float64(size)
			}
			y[yy*size+xx] = complex(math.Exp(-(dx*dx+dy*dy)/(2*s2)), 0)
		}
	}
	if err := mathx.FFT2D(y, size, size, false); err != nil {
		panic(err)
	}
	k.yf = y
	return k
}

// extract pulls the windowed, zero-mean patch centered at (cx, cy) into a
// pooled buffer the caller must release with parallel.PutC128. Sampling
// rows are independent and fan out; the mean is a serial ordered reduction,
// so the patch is byte-identical for any worker count.
func (k *KCF) extract(im *vision.Image, cx, cy float64) []complex128 {
	n := k.Size
	patch := parallel.GetC128(n * n)
	half := float64(n) / 2
	vals := parallel.GetF64(n * n)
	parallel.ForRows(n, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < n; x++ {
				vals[y*n+x] = float64(im.Bilinear(cx-half+float64(x), cy-half+float64(y)))
			}
		}
	})
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n * n)
	parallel.For(n*n, kcfGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			patch[i] = complex((vals[i]-mean)*k.window[i], 0)
		}
	})
	parallel.PutF64(vals)
	return patch
}

// gaussianCorrelationF computes the Fourier transform of the Gaussian
// kernel correlation between patches whose FFTs are xf and zf. The result
// is a pooled buffer the caller must release with parallel.PutC128.
func (k *KCF) gaussianCorrelationF(xf, zf []complex128, xNorm, zNorm float64) []complex128 {
	n := k.Size
	prod := parallel.GetC128(n * n)
	parallel.For(n*n, kcfGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			// conj(xf)*zf — cross-correlation in Fourier domain.
			prod[i] = complex(real(xf[i]), -imag(xf[i])) * zf[i]
		}
	})
	if err := mathx.FFT2D(prod, n, n, true); err != nil {
		panic(err)
	}
	out := parallel.GetC128(n * n)
	norm := float64(n * n)
	s2 := k.Sigma * k.Sigma
	parallel.For(n*n, kcfGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			d := (xNorm + zNorm - 2*real(prod[i])) / norm
			if d < 0 {
				d = 0
			}
			out[i] = complex(math.Exp(-d/s2), 0)
		}
	})
	parallel.PutC128(prod)
	if err := mathx.FFT2D(out, n, n, false); err != nil {
		panic(err)
	}
	return out
}

// Init trains the filter on the patch centered at (cx, cy).
func (k *KCF) Init(im *vision.Image, cx, cy float64) {
	n := k.Size
	x := k.extract(im, cx, cy)
	k.xNorm = 0
	for _, v := range x {
		k.xNorm += real(v) * real(v)
	}
	// xf and alphaF are retained as model state, so they come from make,
	// not the scratch pools.
	xf := make([]complex128, len(x))
	copy(xf, x)
	parallel.PutC128(x)
	if err := mathx.FFT2D(xf, n, n, false); err != nil {
		panic(err)
	}
	k.xf = xf
	kf := k.gaussianCorrelationF(xf, xf, k.xNorm, k.xNorm)
	if k.alphaF == nil || len(k.alphaF) != len(kf) {
		k.alphaF = make([]complex128, len(kf))
	}
	alphaF := k.alphaF
	parallel.For(len(kf), kcfGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			alphaF[i] = k.yf[i] / (kf[i] + complex(k.Lambda, 0))
		}
	})
	parallel.PutC128(kf)
	k.cx, k.cy = cx, cy
}

// Result is one tracking step outcome.
type Result struct {
	X, Y float64 // new center
	Peak float64 // response peak (confidence)
	OK   bool
}

// Update locates the target in the new frame starting from the previous
// center and retrains the model with linear interpolation.
func (k *KCF) Update(im *vision.Image) Result {
	if k.alphaF == nil {
		return Result{}
	}
	n := k.Size
	z := k.extract(im, k.cx, k.cy)
	var zNorm float64
	for _, v := range z {
		zNorm += real(v) * real(v)
	}
	zf := parallel.GetC128(len(z))
	copy(zf, z)
	parallel.PutC128(z)
	if err := mathx.FFT2D(zf, n, n, false); err != nil {
		panic(err)
	}
	kzf := k.gaussianCorrelationF(k.xf, zf, k.xNorm, zNorm)
	parallel.PutC128(zf)
	resp := parallel.GetC128(len(kzf))
	alphaF := k.alphaF
	parallel.For(len(kzf), kcfGrain, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			resp[i] = kzf[i] * alphaF[i]
		}
	})
	parallel.PutC128(kzf)
	if err := mathx.FFT2D(resp, n, n, true); err != nil {
		panic(err)
	}
	// Peak search with wrap-around displacement decoding.
	best := math.Inf(-1)
	bx, by := 0, 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := real(resp[y*n+x])
			if v > best {
				best = v
				bx, by = x, y
			}
		}
	}
	dx, dy := float64(bx), float64(by)
	// Sub-pixel parabola refinement with wrap-around neighbors.
	at := func(x, y int) float64 { return real(resp[((y+n)%n)*n+(x+n)%n]) }
	if den := at(bx-1, by) - 2*best + at(bx+1, by); den < -1e-12 {
		dx += 0.5 * (at(bx-1, by) - at(bx+1, by)) / den
	}
	if den := at(bx, by-1) - 2*best + at(bx, by+1); den < -1e-12 {
		dy += 0.5 * (at(bx, by-1) - at(bx, by+1)) / den
	}
	parallel.PutC128(resp)
	if dx > float64(n)/2 {
		dx -= float64(n)
	}
	if dy > float64(n)/2 {
		dy -= float64(n)
	}
	k.cx += dx
	k.cy += dy
	ok := best > 0.15
	if ok {
		// Retrain on the new location (full replace keeps the model
		// simple; interpolation factor 1.0).
		k.Init(im, k.cx, k.cy)
	}
	return Result{X: k.cx, Y: k.cy, Peak: best, OK: ok}
}

// Center returns the current estimated target center.
func (k *KCF) Center() (float64, float64) { return k.cx, k.cy }
