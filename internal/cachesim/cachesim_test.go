package cachesim

import (
	"testing"
	"testing/quick"
)

func TestSequentialScanIsCompulsoryOnly(t *testing.T) {
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for a := int64(0); a < 2048; a += 8 {
		c.Access(a, 8)
	}
	s := c.Stats()
	// 2048/64 = 32 lines, each missed exactly once.
	if s.Misses != 32 {
		t.Fatalf("misses = %d, want 32", s.Misses)
	}
	if s.TrafficRatio() != 1.0 {
		t.Fatalf("ratio = %v, want 1 for streaming", s.TrafficRatio())
	}
}

func TestRepeatedAccessHitsAfterFirst(t *testing.T) {
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for i := 0; i < 100; i++ {
		c.Access(128, 8)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Accesses != 100 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
}

func TestThrashingBeyondCapacity(t *testing.T) {
	// Working set 8x the cache, cyclic access: every access misses (LRU
	// pathological case).
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	for round := 0; round < 4; round++ {
		for a := int64(0); a < 8*1024; a += 64 {
			c.Access(a, 1)
		}
	}
	s := c.Stats()
	if s.MissRate() < 0.99 {
		t.Fatalf("miss rate = %v, want ~1 under thrash", s.MissRate())
	}
	if s.TrafficRatio() < 3.9 {
		t.Fatalf("traffic ratio = %v, want ~4 (4 rounds)", s.TrafficRatio())
	}
}

func TestAssociativityConflicts(t *testing.T) {
	// Direct-mapped: two lines mapping to the same set always conflict.
	dm := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	// sets = 2; addresses 0 and 128 both map to set 0.
	for i := 0; i < 10; i++ {
		dm.Access(0, 1)
		dm.Access(128, 1)
	}
	if dm.Stats().Misses != 20 {
		t.Fatalf("direct-mapped conflict misses = %d, want 20", dm.Stats().Misses)
	}
	// 2-way tolerates them.
	sa := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	for i := 0; i < 10; i++ {
		sa.Access(0, 1)
		sa.Access(128, 1)
	}
	if sa.Stats().Misses != 2 {
		t.Fatalf("2-way misses = %d, want 2", sa.Stats().Misses)
	}
}

func TestMultiLineAccess(t *testing.T) {
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	c.Access(60, 8) // straddles lines 0 and 1
	if c.Stats().Misses != 2 {
		t.Fatalf("straddle misses = %d, want 2", c.Stats().Misses)
	}
}

func TestZeroSizeAccessCountsOne(t *testing.T) {
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	c.Access(0, 0)
	if c.Stats().Accesses != 1 {
		t.Fatalf("accesses = %d", c.Stats().Accesses)
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(0, 64)
	c.Reset()
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 || s.CompulsoryBytes != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	c.Access(0, 1)
	if c.Stats().Misses != 1 {
		t.Fatal("line survived reset")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestTrafficRatioAlwaysAtLeastOne(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{SizeBytes: 512, LineBytes: 64, Ways: 2})
		for _, a := range addrs {
			c.Access(int64(a), 4)
		}
		s := c.Stats()
		if s.Accesses == 0 {
			return true
		}
		return s.TrafficRatio() >= 0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStats(t *testing.T) {
	s := New(DefaultConfig()).Stats()
	if s.TrafficRatio() != 0 || s.MissRate() != 0 {
		t.Fatal("empty cache should report zero ratios")
	}
}
