// Package cachesim provides a set-associative LRU cache model used to
// measure the off-chip memory traffic of point-cloud kernels (Fig. 4b).
// The kernels funnel their data accesses through a Cache; misses count as
// off-chip transfers. Comparing the miss traffic against the compulsory
// (optimal) traffic — each distinct byte fetched exactly once — reproduces
// the paper's observation that irregular LiDAR processing moves orders of
// magnitude more data than an ideal on-chip-reuse machine would.
package cachesim

import "fmt"

// Config sizes the cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// DefaultConfig returns a cache scaled to our synthetic clouds the way a
// 9 MB LLC relates to full-size LiDAR working sets: the point clouds in the
// benchmarks are ~100× smaller than real scans, so the cache is scaled down
// by the same factor to preserve the capacity-pressure regime.
func DefaultConfig() Config {
	return Config{SizeBytes: 96 * 1024, LineBytes: 64, Ways: 12}
}

// Cache is a set-associative LRU cache with access accounting.
type Cache struct {
	cfg  Config
	sets int
	// tags[set][way]; lru[set][way] holds recency counters.
	tags    [][]uint64
	valid   [][]bool
	lruTick [][]uint64
	tick    uint64

	accesses int64
	misses   int64
	touched  map[uint64]struct{}
}

// New builds a cache; size must be divisible by line*ways.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cachesim: invalid config %+v", cfg))
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if sets == 0 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets, touched: make(map[uint64]struct{})}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lruTick = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.lruTick[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// Access touches size bytes starting at addr (virtual address space chosen
// by the caller; any consistent mapping works).
func (c *Cache) Access(addr, size int64) {
	if size <= 0 {
		size = 1
	}
	line := int64(c.cfg.LineBytes)
	for a := addr / line; a <= (addr+size-1)/line; a++ {
		c.accessLine(uint64(a))
	}
}

func (c *Cache) accessLine(lineAddr uint64) {
	c.accesses++
	c.tick++
	c.touched[lineAddr] = struct{}{}
	set := int(lineAddr % uint64(c.sets))
	tag := lineAddr / uint64(c.sets)
	ways := c.cfg.Ways
	// Hit?
	for w := 0; w < ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lruTick[set][w] = c.tick
			return
		}
	}
	// Miss: evict LRU.
	c.misses++
	victim := 0
	oldest := c.lruTick[set][0]
	for w := 0; w < ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lruTick[set][w] < oldest {
			oldest = c.lruTick[set][w]
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lruTick[set][victim] = c.tick
}

// Stats summarizes the run.
type Stats struct {
	Accesses int64
	Misses   int64
	// TrafficBytes is the off-chip traffic (misses × line).
	TrafficBytes int64
	// CompulsoryBytes is the optimal traffic: distinct lines touched once.
	CompulsoryBytes int64
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Accesses:        c.accesses,
		Misses:          c.misses,
		TrafficBytes:    c.misses * int64(c.cfg.LineBytes),
		CompulsoryBytes: int64(len(c.touched)) * int64(c.cfg.LineBytes),
	}
}

// TrafficRatio is off-chip traffic normalized to the optimal case (>= 1 for
// any real run; Fig. 4b's y-axis).
func (s Stats) TrafficRatio() float64 {
	if s.CompulsoryBytes == 0 {
		return 0
	}
	return float64(s.TrafficBytes) / float64(s.CompulsoryBytes)
}

// MissRate returns misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Reset clears counters and contents.
func (c *Cache) Reset() {
	for i := 0; i < c.sets; i++ {
		for w := 0; w < c.cfg.Ways; w++ {
			c.valid[i][w] = false
			c.lruTick[i][w] = 0
		}
	}
	c.accesses, c.misses, c.tick = 0, 0, 0
	c.touched = make(map[uint64]struct{})
}
