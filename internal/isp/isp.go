// Package isp models the camera data path between the sensor interface and
// the application: ISP processing, kernel/driver, DRAM staging, and
// user-space delivery. Its defining property — variable, non-deterministic
// per-stage latency — is both a large share of the SoV's sensing latency
// (Fig. 10a) and the reason software-only sensor synchronization fails
// (Fig. 12b): by the time a frame reaches the application, its arrival time
// says little about its capture time.
package isp

import (
	"time"

	"sov/internal/sim"
)

// Stage is one hop of the camera pipeline with a base latency and jitter.
type Stage struct {
	Name string
	// Base is the constant part of the stage latency.
	Base time.Duration
	// JitterStd is the standard deviation of the variable part.
	JitterStd time.Duration
	// TailProb/TailScale add a long tail: with TailProb, an extra
	// exponential delay of mean TailScale is incurred (GC pause, page
	// fault, scheduler preemption).
	TailProb  float64
	TailScale time.Duration
}

// Pipeline is an ordered list of stages.
type Pipeline struct {
	Stages []Stage
}

// DefaultPipeline returns the deployed camera stack, calibrated so that
// sensing (exposure+readout upstream plus this pipeline) averages ≈84 ms —
// about half of the 164 ms mean computing latency — with a long tail, and
// so the ISP stage alone varies by ~10 ms as the paper reports.
func DefaultPipeline() Pipeline {
	return Pipeline{Stages: []Stage{
		{Name: "sensor-interface", Base: 1 * time.Millisecond, JitterStd: 200 * time.Microsecond},
		{Name: "isp", Base: 28 * time.Millisecond, JitterStd: 4 * time.Millisecond,
			TailProb: 0.02, TailScale: 10 * time.Millisecond},
		{Name: "kernel-driver", Base: 14 * time.Millisecond, JitterStd: 3 * time.Millisecond,
			TailProb: 0.03, TailScale: 20 * time.Millisecond},
		{Name: "dram-copy", Base: 6 * time.Millisecond, JitterStd: 1 * time.Millisecond},
		{Name: "app-delivery", Base: 15 * time.Millisecond, JitterStd: 5 * time.Millisecond,
			TailProb: 0.05, TailScale: 60 * time.Millisecond},
	}}
}

// StageDelay draws one latency for a stage.
func (s Stage) StageDelay(rng *sim.RNG) time.Duration {
	d := s.Base + time.Duration(rng.TruncNormal(0, float64(s.JitterStd), -float64(s.JitterStd), 4*float64(s.JitterStd)))
	if s.TailProb > 0 && rng.Bernoulli(s.TailProb) {
		d += time.Duration(rng.Exponential(float64(s.TailScale)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Trace is the per-stage latency breakdown of one frame's traversal.
type Trace struct {
	Delays []time.Duration
	Total  time.Duration
}

// Deliver draws the traversal latency of one frame through the pipeline.
func (p Pipeline) Deliver(rng *sim.RNG) Trace {
	return p.DeliverInto(make([]time.Duration, 0, len(p.Stages)), rng)
}

// DeliverInto is Deliver writing the per-stage breakdown into a reused
// buffer (truncated, then appended to), so per-frame draws don't allocate.
func (p Pipeline) DeliverInto(delays []time.Duration, rng *sim.RNG) Trace {
	t := Trace{Delays: delays[:0]}
	for _, s := range p.Stages {
		d := s.StageDelay(rng)
		t.Delays = append(t.Delays, d)
		t.Total += d
	}
	return t
}

// InterfaceDelay returns the latency up to and including the sensor
// interface — the point where the hardware-collaborative design timestamps
// frames. Everything after it is the variable region software-only sync
// cannot compensate.
func (p Pipeline) InterfaceDelay(rng *sim.RNG) time.Duration {
	if len(p.Stages) == 0 {
		return 0
	}
	return p.Stages[0].StageDelay(rng)
}

// MeanTotal returns the analytic mean traversal latency (base sums plus
// tail expectations); useful for calibration checks.
func (p Pipeline) MeanTotal() time.Duration {
	var sum time.Duration
	for _, s := range p.Stages {
		sum += s.Base + time.Duration(s.TailProb*float64(s.TailScale))
	}
	return sum
}
