package isp

import (
	"math"

	"sov/internal/vision"
)

// The pixel side of the ISP: the actual processing the latency model's
// "isp" stage stands for. A minimal grayscale chain — black-level
// subtraction, 3×3 denoise, gamma, unsharp mask — operating on the vision
// substrate's images. Benchmarked to show where sensing's compute actually
// goes (the paper: the camera pipeline dominates sensing latency).

// PixelPipelineConfig tunes the processing chain.
type PixelPipelineConfig struct {
	// BlackLevel is subtracted from every pixel (sensor pedestal).
	BlackLevel float32
	// DenoiseStrength in [0,1] blends the 3×3 box blur.
	DenoiseStrength float32
	// Gamma applies v^(1/Gamma) tone mapping.
	Gamma float32
	// SharpenAmount adds (v - blur(v)) * amount.
	SharpenAmount float32
}

// DefaultPixelPipeline matches the deployed tuning.
func DefaultPixelPipeline() PixelPipelineConfig {
	return PixelPipelineConfig{BlackLevel: 0.02, DenoiseStrength: 0.4, Gamma: 2.2, SharpenAmount: 0.3}
}

// Process runs the chain, returning a new image.
func (c PixelPipelineConfig) Process(in *vision.Image) *vision.Image {
	out := vision.NewImage(in.W, in.H)
	blur := vision.NewImage(in.W, in.H)
	c.ProcessInto(out, blur, in)
	return out
}

// ProcessInto runs the chain writing into out, using blur as blur scratch;
// both must match in's dimensions and may hold stale frames on entry. This
// is the zero-allocation variant of Process for recycled frame buffers.
//
//sov:hotpath
func (c PixelPipelineConfig) ProcessInto(out, blur *vision.Image, in *vision.Image) {
	if out.W != in.W || out.H != in.H || blur.W != in.W || blur.H != in.H {
		panic("isp: ProcessInto buffer dimensions do not match input")
	}
	copy(out.Pix, in.Pix)
	// Black level.
	if c.BlackLevel != 0 {
		for i, v := range out.Pix {
			v -= c.BlackLevel
			if v < 0 {
				v = 0
			}
			out.Pix[i] = v
		}
	}
	// Denoise: blend with a 3x3 box blur.
	if c.DenoiseStrength > 0 {
		boxBlur3Into(blur, out)
		a := c.DenoiseStrength
		for i := range out.Pix {
			out.Pix[i] = out.Pix[i]*(1-a) + blur.Pix[i]*a
		}
	}
	// Gamma.
	if c.Gamma > 0 && c.Gamma != 1 {
		inv := 1 / float64(c.Gamma)
		for i, v := range out.Pix {
			if v < 0 {
				v = 0
			}
			out.Pix[i] = float32(math.Pow(float64(v), inv))
		}
	}
	// Unsharp mask.
	if c.SharpenAmount > 0 {
		boxBlur3Into(blur, out)
		for i := range out.Pix {
			v := out.Pix[i] + (out.Pix[i]-blur.Pix[i])*c.SharpenAmount
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out.Pix[i] = v
		}
	}
}

// boxBlur3Into writes a 3x3 mean filter of im into out (border clamped).
//
//sov:hotpath
func boxBlur3Into(out, im *vision.Image) {
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					s += im.At(x+dx, y+dy)
				}
			}
			out.Set(x, y, s/9)
		}
	}
}
