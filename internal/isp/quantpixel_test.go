package isp

import (
	"math"
	"testing"

	"sov/internal/vision"
)

func renderTestFrame() *vision.Image {
	s := vision.Scene{Background: 7, BgDepth: 12, Boxes: []vision.Box{
		{X: -0.5, Y: 0, Z: 5, W: 1.2, H: 1.2, Texture: 3},
		{X: 1, Y: 0.2, Z: 8, W: 2, H: 1, Texture: 9},
	}}
	return s.Render(vision.DefaultIntrinsics(), 0)
}

// TestQuantPipelineTracksFloat runs the fixed-point chain against the float
// chain on a rendered frame. Budget (DESIGN.md §8): mean error within two
// 8-bit codes; max error 0.09, dominated by the gamma curve's steep slope
// near black, where one input code spans many output codes.
func TestQuantPipelineTracksFloat(t *testing.T) {
	in := renderTestFrame()
	cfg := DefaultPixelPipeline()
	ref := cfg.Process(in)

	qp := cfg.Quantized()
	qout := qp.Process(vision.QuantizeImage(in))
	got := qout.Dequantize()

	var sum, worst float64
	for i := range ref.Pix {
		d := math.Abs(float64(got.Pix[i] - ref.Pix[i]))
		sum += d
		if d > worst {
			worst = d
		}
	}
	if mean := sum / float64(len(ref.Pix)); mean > 2.0/255 {
		t.Errorf("mean |quant - float| = %g (budget %g)", mean, 2.0/255)
	}
	if worst > 0.09 {
		t.Errorf("max |quant - float| = %g (budget 0.09)", worst)
	}
}

// TestQuantPipelineDeterministic: the fixed-point chain is pure integer
// arithmetic — two runs must agree bit for bit.
func TestQuantPipelineDeterministic(t *testing.T) {
	in := vision.QuantizeImage(renderTestFrame())
	qp := DefaultPixelPipeline().Quantized()
	a := qp.Process(in)
	b := qp.Process(in)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs between runs: %d != %d", i, a.Pix[i], b.Pix[i])
		}
	}
}

// TestQuantPipelineZeroAlloc: the ProcessInto steady state must not allocate.
func TestQuantPipelineZeroAlloc(t *testing.T) {
	in := vision.QuantizeImage(renderTestFrame())
	qp := DefaultPixelPipeline().Quantized()
	out := vision.NewQImage(in.W, in.H)
	blur := vision.NewQImage(in.W, in.H)
	if allocs := testing.AllocsPerRun(20, func() { qp.ProcessInto(out, blur, in) }); allocs > 0 {
		t.Fatalf("warm fixed-point ISP pass allocates %.1f times per run, want 0", allocs)
	}
}

// TestQuantGammaTableMatchesFloat: every 8-bit code's gamma output must be
// the rounding of the float curve.
func TestQuantGammaTableMatchesFloat(t *testing.T) {
	cfg := PixelPipelineConfig{Gamma: 2.2}
	qp := cfg.Quantized()
	for i := 0; i < 256; i++ {
		want := math.Pow(float64(i)/255, 1/2.2) * 255
		if d := math.Abs(float64(qp.gamma[i]) - want); d > 0.5+1e-9 {
			t.Fatalf("gamma[%d] = %d, float curve gives %g", i, qp.gamma[i], want)
		}
	}
}
