package isp

import (
	"math"
	"testing"

	"sov/internal/vision"
)

func noisyRamp() *vision.Image {
	im := vision.NewImage(64, 48)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float32(x)/64 + float32((x*7+y*13)%5)*0.01
			im.Set(x, y, v)
		}
	}
	return im
}

func TestProcessDoesNotMutateInput(t *testing.T) {
	im := noisyRamp()
	before := im.Clone()
	DefaultPixelPipeline().Process(im)
	if vision.MeanAbsDiff(im, before) != 0 {
		t.Fatal("pipeline mutated its input")
	}
}

func TestBlackLevelSubtraction(t *testing.T) {
	im := vision.NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = 0.01 // below the pedestal
	}
	cfg := PixelPipelineConfig{BlackLevel: 0.02}
	out := cfg.Process(im)
	for _, v := range out.Pix {
		if v != 0 {
			t.Fatalf("pedestal not clamped: %v", v)
		}
	}
}

func TestDenoiseReducesNoise(t *testing.T) {
	im := noisyRamp()
	cfg := PixelPipelineConfig{DenoiseStrength: 0.8}
	out := cfg.Process(im)
	// Measure high-frequency energy via neighbor differences.
	hf := func(im *vision.Image) float64 {
		var s float64
		for y := 1; y < im.H-1; y++ {
			for x := 1; x < im.W-1; x++ {
				d := float64(im.At(x, y) - im.At(x+1, y))
				s += d * d
			}
		}
		return s
	}
	if hf(out) >= hf(im) {
		t.Fatal("denoise did not reduce high-frequency energy")
	}
}

func TestGammaBrightensShadows(t *testing.T) {
	im := vision.NewImage(2, 2)
	for i := range im.Pix {
		im.Pix[i] = 0.25
	}
	cfg := PixelPipelineConfig{Gamma: 2.0}
	out := cfg.Process(im)
	want := float32(math.Sqrt(0.25))
	if math.Abs(float64(out.Pix[0]-want)) > 1e-6 {
		t.Fatalf("gamma = %v, want %v", out.Pix[0], want)
	}
}

func TestSharpenIncreasesEdgeContrast(t *testing.T) {
	// Mid-level step edge (headroom for overshoot on both sides).
	im := vision.NewImage(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				im.Set(x, y, 0.3)
			} else {
				im.Set(x, y, 0.7)
			}
		}
	}
	cfg := PixelPipelineConfig{SharpenAmount: 0.8}
	out := cfg.Process(im)
	// The first bright column should overshoot above the flat level.
	if out.At(8, 4) <= im.At(8, 4) {
		t.Fatalf("no overshoot: %v vs %v", out.At(8, 4), im.At(8, 4))
	}
	// And the last dark column should undershoot.
	if out.At(7, 4) >= im.At(7, 4) {
		t.Fatalf("no undershoot: %v vs %v", out.At(7, 4), im.At(7, 4))
	}
	// Output must stay clamped.
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("unclamped output %v", v)
		}
	}
}

func TestFullChainPreservesTrackability(t *testing.T) {
	// The chain must not destroy the features downstream vision uses.
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 5, BgDepth: 10,
		Boxes: []vision.Box{{X: 0, Y: 0, Z: 4, W: 3, H: 2, Texture: 9}}}
	raw := scene.Render(intr, 0)
	processed := DefaultPixelPipeline().Process(raw)
	rawCorners := vision.DetectCorners(raw, 50, 0.02, 5)
	procCorners := vision.DetectCorners(processed, 50, 0.02, 5)
	if len(procCorners) < len(rawCorners)/2 {
		t.Fatalf("processing destroyed corners: %d -> %d", len(rawCorners), len(procCorners))
	}
}

func BenchmarkPixelPipeline160x120(b *testing.B) {
	intr := vision.DefaultIntrinsics()
	scene := vision.Scene{Background: 5, BgDepth: 10}
	im := scene.Render(intr, 0)
	cfg := DefaultPixelPipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Process(im)
	}
}
