package isp

import (
	"math"

	"sov/internal/vision"
)

// Fixed-point pixel pipeline (DESIGN.md §8): the same black-level → denoise
// → gamma → unsharp chain as ProcessInto, operating on 8-bit codes with
// integer arithmetic only. Blend coefficients are 8.8 fixed point, the gamma
// curve is a 256-entry table (the float path's math.Pow per pixel is the
// single most expensive operation in the whole ISP), and the 3×3 blur
// accumulates in int32 with exact rounding division. The chain is bitwise
// deterministic for any worker count and allocates nothing once constructed.

// QuantPixelPipeline is a PixelPipelineConfig compiled for 8-bit frames.
// Build one with PixelPipelineConfig.Quantized and reuse it across frames.
type QuantPixelPipeline struct {
	blackLevel int32 // code units
	denoiseA   int32 // 8.8 fixed-point blend weight
	sharpenA   int32 // 8.8 fixed-point sharpen amount
	gamma      [256]uint8
	hasGamma   bool
}

// Quantized compiles the float config into its fixed-point form. The gamma
// table is the only float computation, done once here.
func (c PixelPipelineConfig) Quantized() *QuantPixelPipeline {
	q := &QuantPixelPipeline{
		blackLevel: int32(c.BlackLevel*255 + 0.5),
		denoiseA:   int32(c.DenoiseStrength*256 + 0.5),
		sharpenA:   int32(c.SharpenAmount*256 + 0.5),
	}
	if c.Gamma > 0 && c.Gamma != 1 {
		q.hasGamma = true
		inv := 1 / float64(c.Gamma)
		for i := 0; i < 256; i++ {
			v := math.Pow(float64(i)/255, inv)
			q.gamma[i] = uint8(v*255 + 0.5)
		}
	}
	return q
}

// Process runs the fixed-point chain, returning a new image.
func (q *QuantPixelPipeline) Process(in *vision.QImage) *vision.QImage {
	out := vision.NewQImage(in.W, in.H)
	blur := vision.NewQImage(in.W, in.H)
	q.ProcessInto(out, blur, in)
	return out
}

// ProcessInto runs the fixed-point chain writing into out, using blur as
// blur scratch; both must match in's dimensions. Zero allocations.
//
//sov:hotpath
func (q *QuantPixelPipeline) ProcessInto(out, blur *vision.QImage, in *vision.QImage) {
	if out.W != in.W || out.H != in.H || blur.W != in.W || blur.H != in.H {
		panic("isp: ProcessInto buffer dimensions do not match input")
	}
	copy(out.Pix, in.Pix)
	// Black level: saturating subtract in code units.
	if q.blackLevel != 0 {
		bl := q.blackLevel
		for i, v := range out.Pix {
			d := int32(v) - bl
			if d < 0 {
				d = 0
			}
			out.Pix[i] = uint8(d)
		}
	}
	// Denoise: 8.8 fixed-point blend with the 3×3 box blur.
	if q.denoiseA > 0 {
		qBoxBlur3Into(blur, out)
		a := q.denoiseA
		for i := range out.Pix {
			v := int32(out.Pix[i])
			b := int32(blur.Pix[i])
			out.Pix[i] = uint8((v*(256-a) + b*a + 128) >> 8)
		}
	}
	// Gamma: one table lookup per pixel.
	if q.hasGamma {
		for i, v := range out.Pix {
			out.Pix[i] = q.gamma[v]
		}
	}
	// Unsharp mask: v + (v - blur)·amount in 8.8 fixed point, saturating.
	if q.sharpenA > 0 {
		qBoxBlur3Into(blur, out)
		a := q.sharpenA
		for i := range out.Pix {
			v := int32(out.Pix[i])
			t := (v - int32(blur.Pix[i])) * a
			if t >= 0 {
				t = (t + 128) >> 8
			} else {
				t = -((-t + 128) >> 8) // round half away from zero
			}
			v += t
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out.Pix[i] = uint8(v)
		}
	}
}

// qBoxBlur3Into writes a 3×3 mean filter of im into out (border clamped):
// int32 accumulation, exact rounding division by 9, and a branch-free
// subslice loop over the interior rows.
//
//sov:hotpath
func qBoxBlur3Into(out, im *vision.QImage) {
	w, h := im.W, im.H
	for y := 0; y < h; y++ {
		if y > 0 && y < h-1 && w >= 3 {
			// Interior row: only the two edge columns need clamping.
			qBlurEdge(out, im, 0, y)
			r0 := im.Pix[(y-1)*w : y*w]
			r1 := im.Pix[y*w : (y+1)*w]
			r2 := im.Pix[(y+1)*w : (y+2)*w]
			o := out.Pix[y*w : (y+1)*w]
			for x := 1; x < w-1; x++ {
				s := int32(r0[x-1]) + int32(r0[x]) + int32(r0[x+1]) +
					int32(r1[x-1]) + int32(r1[x]) + int32(r1[x+1]) +
					int32(r2[x-1]) + int32(r2[x]) + int32(r2[x+1])
				o[x] = uint8((s + 4) / 9) // round(s/9): 9 is odd, no ties
			}
			qBlurEdge(out, im, w-1, y)
		} else {
			for x := 0; x < w; x++ {
				qBlurEdge(out, im, x, y)
			}
		}
	}
}

// qBlurEdge computes one border-clamped 3×3 mean at (x, y).
//
//sov:hotpath
func qBlurEdge(out, im *vision.QImage, x, y int) {
	var s int32
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			s += int32(im.At(x+dx, y+dy))
		}
	}
	out.Set(x, y, uint8((s+4)/9))
}
