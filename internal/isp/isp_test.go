package isp

import (
	"testing"
	"time"

	"sov/internal/sim"
	"sov/internal/stats"
)

func TestDeliverPositiveAndDecomposed(t *testing.T) {
	p := DefaultPipeline()
	rng := sim.NewRNG(1)
	tr := p.Deliver(rng)
	if len(tr.Delays) != len(p.Stages) {
		t.Fatalf("delays = %d, want %d", len(tr.Delays), len(p.Stages))
	}
	var sum time.Duration
	for i, d := range tr.Delays {
		if d < 0 {
			t.Fatalf("stage %d negative delay %v", i, d)
		}
		sum += d
	}
	if sum != tr.Total {
		t.Fatalf("total %v != sum %v", tr.Total, sum)
	}
}

func TestPipelineMeanNearCalibration(t *testing.T) {
	p := DefaultPipeline()
	rng := sim.NewRNG(2)
	s := stats.NewSample()
	for i := 0; i < 20000; i++ {
		s.Observe(p.Deliver(rng).Total.Seconds() * 1000)
	}
	mean := s.Mean()
	// Pipeline ≈ 64-69 ms; with 20 ms exposure+readout upstream this puts
	// sensing at ≈ 84-89 ms.
	if mean < 60 || mean > 75 {
		t.Fatalf("mean pipeline latency = %.1f ms, want ~64-69", mean)
	}
	// Long tail exists: p99 well above mean.
	if s.Quantile(0.99) < mean*1.3 {
		t.Fatalf("p99 = %.1f ms not a long tail over mean %.1f", s.Quantile(0.99), mean)
	}
}

func TestISPStageVariesByAboutTenMs(t *testing.T) {
	// The paper: "ISP processing latency may vary by about 10 ms".
	p := DefaultPipeline()
	var ispStage Stage
	found := false
	for _, s := range p.Stages {
		if s.Name == "isp" {
			ispStage = s
			found = true
		}
	}
	if !found {
		t.Fatal("no isp stage")
	}
	rng := sim.NewRNG(3)
	s := stats.NewSample()
	for i := 0; i < 10000; i++ {
		s.Observe(ispStage.StageDelay(rng).Seconds() * 1000)
	}
	spread := s.Quantile(0.99) - s.Quantile(0.01)
	if spread < 5 || spread > 40 {
		t.Fatalf("ISP spread = %.1f ms, want ~10-30", spread)
	}
}

func TestInterfaceDelaySmallAndStable(t *testing.T) {
	// Timestamping at the sensor interface sees only ~1 ms, nearly
	// constant — the premise of near-sensor synchronization.
	p := DefaultPipeline()
	rng := sim.NewRNG(4)
	s := stats.NewSample()
	for i := 0; i < 5000; i++ {
		s.Observe(p.InterfaceDelay(rng).Seconds() * 1000)
	}
	if s.Mean() > 2 {
		t.Fatalf("interface mean = %.2f ms, want ~1", s.Mean())
	}
	if s.Std() > 0.5 {
		t.Fatalf("interface std = %.2f ms, want tiny", s.Std())
	}
}

func TestApplicationVariationMuchLargerThanInterface(t *testing.T) {
	p := DefaultPipeline()
	rng := sim.NewRNG(5)
	iface := stats.NewSample()
	app := stats.NewSample()
	for i := 0; i < 10000; i++ {
		iface.Observe(p.InterfaceDelay(rng).Seconds() * 1000)
		app.Observe(p.Deliver(rng).Total.Seconds() * 1000)
	}
	if app.Std() < 10*iface.Std() {
		t.Fatalf("app-layer variation (%.2f) should dwarf interface variation (%.2f)",
			app.Std(), iface.Std())
	}
	// Tail reaches toward ~100 ms as the paper reports at the app layer.
	if app.Max() < 90 {
		t.Fatalf("app-layer max = %.1f ms, want a ~100 ms tail", app.Max())
	}
}

func TestMeanTotalAnalytic(t *testing.T) {
	p := DefaultPipeline()
	rng := sim.NewRNG(6)
	var sum float64
	n := 30000
	for i := 0; i < n; i++ {
		sum += p.Deliver(rng).Total.Seconds()
	}
	empirical := sum / float64(n)
	analytic := p.MeanTotal().Seconds()
	if empirical < analytic*0.9 || empirical > analytic*1.15 {
		t.Fatalf("empirical mean %.4f vs analytic %.4f", empirical, analytic)
	}
}

func TestEmptyPipeline(t *testing.T) {
	p := Pipeline{}
	rng := sim.NewRNG(7)
	if p.Deliver(rng).Total != 0 {
		t.Fatal("empty pipeline should be zero latency")
	}
	if p.InterfaceDelay(rng) != 0 {
		t.Fatal("empty pipeline interface delay should be zero")
	}
}
