package cloud

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestCompressRoundTripTable: Compress∘Decompress is the identity across
// payload shapes — empty, tiny, repetitive (compressible), random
// (incompressible), binary with zero runs, and multi-megabyte.
func TestCompressRoundTripTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 64<<10)
	rng.Read(random)
	zeros := make([]byte, 32<<10)
	big := bytes.Repeat([]byte(`{"cycle":1,"t_ms":100,"v":2.5,"objects":3}`+"\n"), 100_000)

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"one byte", []byte{0x42}},
		{"short text", []byte("hello, fleet")},
		{"repetitive jsonl", []byte(strings.Repeat(`{"soc":0.95,"odo_m":120.5}`+"\n", 500))},
		{"random", random},
		{"zero run", zeros},
		{"multi-megabyte trace", big},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			z, err := Compress(c.payload)
			if err != nil {
				t.Fatalf("compress: %v", err)
			}
			back, err := Decompress(z)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(back, c.payload) {
				t.Fatalf("round trip broke: %d bytes in, %d bytes back", len(c.payload), len(back))
			}
			// Deterministic within a build: same input, same bytes.
			z2, err := Compress(c.payload)
			if err != nil || !bytes.Equal(z, z2) {
				t.Fatalf("compression not deterministic (err=%v)", err)
			}
		})
	}
	// Repetitive payloads must actually shrink — the hourly upload's point.
	z, _ := Compress(big)
	if len(z) >= len(big)/10 {
		t.Fatalf("repetitive payload barely compressed: %d -> %d", len(big), len(z))
	}
}

// TestDecompressTruncatedAndCorrupt: every mangled input must return an
// error — never panic, never silently succeed with wrong bytes.
func TestDecompressTruncatedAndCorrupt(t *testing.T) {
	payload := []byte(strings.Repeat("sensor sample 0123456789 ", 2000))
	z, err := Compress(payload)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated stream", func(t *testing.T) {
		for _, keep := range []int{1, 2, len(z) / 2, len(z) - 1} {
			if _, err := Decompress(z[:keep]); err == nil {
				t.Fatalf("truncation to %d bytes decompressed without error", keep)
			}
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := Decompress(nil); err == nil {
			t.Fatal("empty input must fail (no terminator)")
		}
	})
	t.Run("flipped header byte", func(t *testing.T) {
		mut := append([]byte(nil), z...)
		mut[0] ^= 0xff
		out, err := Decompress(mut)
		if err == nil && bytes.Equal(out, payload) {
			t.Fatal("corrupt header silently produced the original payload")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		junk := make([]byte, 4096)
		rand.New(rand.NewSource(3)).Read(junk)
		// flate may or may not error on arbitrary bytes, but it must not
		// panic and must not reproduce anything but what the bytes decode
		// to; exercising it pins the no-panic contract.
		if out, err := Decompress(junk); err == nil && bytes.Equal(out, payload) {
			t.Fatal("garbage decoded to the original payload")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), z...), 0xde, 0xad)
		out, err := Decompress(mut)
		// flate stops at the stream terminator; the payload must survive.
		if err == nil && !bytes.Equal(out, payload) {
			t.Fatal("trailing garbage corrupted the payload")
		}
	})
}
