package cloud

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"
)

// Compress deflates a payload (the hourly field-data upload of Sec. VII:
// "sensor samples captured in the field could be compressed and uploaded to
// the cloud; this task ... happens only once per hour, and thus could be
// swapped in only when needed" via RPR).
func Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress inflates a payload produced by Compress.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompressionAccelerator models the FPGA compression engine that RPR swaps
// in for the hourly upload: fixed throughput and power while resident, zero
// cost while swapped out.
type CompressionAccelerator struct {
	// ThroughputBps is the streaming compression rate.
	ThroughputBps float64
	// PowerW while the accelerator is resident and active.
	PowerW float64
}

// DefaultCompressionAccelerator returns a 200 MB/s, 2 W engine.
func DefaultCompressionAccelerator() CompressionAccelerator {
	return CompressionAccelerator{ThroughputBps: 200e6, PowerW: 2}
}

// Job is one compression task's cost estimate.
type Job struct {
	InputBytes int64
	Duration   time.Duration
	EnergyJ    float64
}

// Estimate returns the accelerator cost for a payload.
func (a CompressionAccelerator) Estimate(inputBytes int64) Job {
	if a.ThroughputBps <= 0 {
		return Job{InputBytes: inputBytes}
	}
	d := time.Duration(float64(inputBytes) / a.ThroughputBps * float64(time.Second))
	return Job{InputBytes: inputBytes, Duration: d, EnergyJ: a.PowerW * d.Seconds()}
}

// HourlyUploadPlan is the Sec. VII RPR use case evaluated end to end: swap
// the compressor in, compress an hour of sensor data, swap the localization
// variant back. It returns a human-readable cost summary.
func HourlyUploadPlan(hourBytes int64, acc CompressionAccelerator, swapCost time.Duration) string {
	job := acc.Estimate(hourBytes)
	total := job.Duration + 2*swapCost
	return fmt.Sprintf(
		"hourly upload: %.1f GB -> compress %.1fs + 2 swaps %.1f ms = %.1fs busy/hour (%.4f%% duty)",
		float64(hourBytes)/1e9, job.Duration.Seconds(), 2*swapCost.Seconds()*1000,
		total.Seconds(), 100*total.Seconds()/3600)
}
