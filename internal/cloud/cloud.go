// Package cloud models the offline half of Fig. 1 to the extent the
// on-vehicle system interacts with it: the condensed hourly operational log
// (the only real-time upload — a few KB/hour), the raw-data SSD spool that
// is uploaded manually at end of day (up to ~1 TB/day), and the annotated
// OpenStreetMap-style lane map the vehicles consume.
package cloud

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// LogEntry is one condensed operational record.
type LogEntry struct {
	At       time.Duration `json:"at_ns"`
	Kind     string        `json:"kind"`
	Severity int           `json:"severity"`
	Note     string        `json:"note,omitempty"`
}

// OperationalLog accumulates events and condenses them into the small
// hourly payload uploaded in real time.
type OperationalLog struct {
	entries []LogEntry
	// MaxUploadBytes bounds one condensed payload (the paper: a few KB).
	MaxUploadBytes int
}

// NewOperationalLog returns a log with the deployed 8 KB payload cap.
func NewOperationalLog() *OperationalLog {
	return &OperationalLog{MaxUploadBytes: 8 * 1024}
}

// Record appends an event.
func (l *OperationalLog) Record(at time.Duration, kind string, severity int, note string) {
	l.entries = append(l.entries, LogEntry{At: at, Kind: kind, Severity: severity, Note: note})
}

// Len returns the number of buffered entries.
func (l *OperationalLog) Len() int { return len(l.entries) }

// CondensedUpload produces the hourly payload: entries are aggregated per
// kind with counts, and the highest-severity individual events are retained
// until the byte budget is spent. The buffer is cleared.
func (l *OperationalLog) CondensedUpload() ([]byte, error) {
	type aggregate struct {
		Kind  string `json:"kind"`
		Count int    `json:"count"`
		MaxAt int64  `json:"last_ns"`
	}
	counts := map[string]*aggregate{}
	for _, e := range l.entries {
		a, ok := counts[e.Kind]
		if !ok {
			a = &aggregate{Kind: e.Kind}
			counts[e.Kind] = a
		}
		a.Count++
		if int64(e.At) > a.MaxAt {
			a.MaxAt = int64(e.At)
		}
	}
	aggs := make([]aggregate, 0, len(counts))
	for _, a := range counts {
		aggs = append(aggs, *a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].Kind < aggs[j].Kind })

	// Severity-sorted individual events, greedily packed.
	crit := make([]LogEntry, len(l.entries))
	copy(crit, l.entries)
	sort.SliceStable(crit, func(i, j int) bool { return crit[i].Severity > crit[j].Severity })

	payload := struct {
		Aggregates []aggregate `json:"aggregates"`
		Critical   []LogEntry  `json:"critical"`
	}{Aggregates: aggs}
	for _, e := range crit {
		payload.Critical = append(payload.Critical, e)
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		if len(b) > l.MaxUploadBytes {
			payload.Critical = payload.Critical[:len(payload.Critical)-1]
			break
		}
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	l.entries = l.entries[:0]
	return b, nil
}

// RawDataSpool models the on-vehicle SSD holding raw training data for the
// manual end-of-day upload.
type RawDataSpool struct {
	// CapacityBytes is the SSD size.
	CapacityBytes int64
	usedBytes     int64
	dropped       int64
}

// NewRawDataSpool returns a 2 TB spool (≈2 operating days of headroom at
// the paper's 1 TB/day).
func NewRawDataSpool() *RawDataSpool {
	return &RawDataSpool{CapacityBytes: 2 << 40}
}

// Store records bytes; returns false (and counts the drop) when full.
func (s *RawDataSpool) Store(bytes int64) bool {
	if s.usedBytes+bytes > s.CapacityBytes {
		s.dropped += bytes
		return false
	}
	s.usedBytes += bytes
	return true
}

// Drain simulates the end-of-day manual upload, returning bytes moved.
func (s *RawDataSpool) Drain() int64 {
	n := s.usedBytes
	s.usedBytes = 0
	return n
}

// Used returns occupied bytes; Dropped the bytes refused.
func (s *RawDataSpool) Used() int64    { return s.usedBytes }
func (s *RawDataSpool) Dropped() int64 { return s.dropped }

// MapAnnotation is one semantic annotation on the base OSM-style map.
type MapAnnotation struct {
	LaneID  int
	Kind    string // "crosswalk", "stop-line", "speed-limit", ...
	Station float64
	Value   string
	Version int
}

// MapStore is the annotated map with versioned updates (the "map update"
// arrow of Fig. 1).
type MapStore struct {
	version     int
	annotations map[int][]MapAnnotation
}

// NewMapStore returns an empty map at version 0.
func NewMapStore() *MapStore {
	return &MapStore{annotations: make(map[int][]MapAnnotation)}
}

// Annotate adds an annotation and bumps the map version.
func (m *MapStore) Annotate(a MapAnnotation) int {
	m.version++
	a.Version = m.version
	m.annotations[a.LaneID] = append(m.annotations[a.LaneID], a)
	return m.version
}

// Lane returns the annotations on a lane.
func (m *MapStore) Lane(laneID int) []MapAnnotation {
	return m.annotations[laneID]
}

// Version returns the current map version.
func (m *MapStore) Version() int { return m.version }

// DeltaSince returns annotations newer than the given version — what the
// vehicle downloads on update.
func (m *MapStore) DeltaSince(version int) []MapAnnotation {
	var out []MapAnnotation
	for _, as := range m.annotations {
		for _, a := range as {
			if a.Version > version {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// String summarizes the store.
func (m *MapStore) String() string {
	n := 0
	//sovlint:ignore maprange order-independent aggregation: the loop only sums lengths
	for _, as := range m.annotations {
		n += len(as)
	}
	return fmt.Sprintf("mapstore v%d: %d annotations on %d lanes", m.version, n, len(m.annotations))
}
