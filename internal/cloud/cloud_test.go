package cloud

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCondensedUploadSmallAndComplete(t *testing.T) {
	l := NewOperationalLog()
	for i := 0; i < 10000; i++ {
		l.Record(time.Duration(i)*time.Second, "heartbeat", 0, "")
	}
	l.Record(time.Hour, "reactive-override", 3, "pedestrian cut-in at 4.2m")
	b, err := l.CondensedUpload()
	if err != nil {
		t.Fatal(err)
	}
	// The paper: real-time uploads are a few KB despite hours of events.
	if len(b) > 8*1024 {
		t.Fatalf("payload = %d bytes, want <= 8 KB", len(b))
	}
	s := string(b)
	if !strings.Contains(s, "heartbeat") || !strings.Contains(s, "reactive-override") {
		t.Fatalf("payload missing aggregates: %s", s)
	}
	if !json.Valid(b) {
		t.Fatal("invalid JSON")
	}
	if l.Len() != 0 {
		t.Fatal("buffer not cleared after upload")
	}
}

func TestCondensedUploadPrioritizesSeverity(t *testing.T) {
	l := NewOperationalLog()
	l.MaxUploadBytes = 700
	for i := 0; i < 50; i++ {
		l.Record(time.Duration(i)*time.Second, "noise", 0, strings.Repeat("x", 50))
	}
	l.Record(time.Minute, "collision-near-miss", 5, "critical")
	b, err := l.CondensedUpload()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "collision-near-miss") {
		t.Fatal("critical event dropped before low-severity noise")
	}
	if len(b) > 700+200 {
		t.Fatalf("payload = %d over budget", len(b))
	}
}

func TestRawDataSpool(t *testing.T) {
	s := &RawDataSpool{CapacityBytes: 1000}
	if !s.Store(600) || !s.Store(300) {
		t.Fatal("stores within capacity failed")
	}
	if s.Store(200) {
		t.Fatal("overflow store should fail")
	}
	if s.Dropped() != 200 || s.Used() != 900 {
		t.Fatalf("used=%d dropped=%d", s.Used(), s.Dropped())
	}
	if s.Drain() != 900 || s.Used() != 0 {
		t.Fatal("drain wrong")
	}
}

func TestDefaultSpoolHoldsTwoDays(t *testing.T) {
	s := NewRawDataSpool()
	day := int64(1) << 40 // ~1 TB/day per the paper
	if !s.Store(day) || !s.Store(day) {
		t.Fatal("spool should hold two days of raw data")
	}
}

func TestMapStoreVersioning(t *testing.T) {
	m := NewMapStore()
	v1 := m.Annotate(MapAnnotation{LaneID: 1, Kind: "crosswalk", Station: 30})
	v2 := m.Annotate(MapAnnotation{LaneID: 1, Kind: "stop-line", Station: 55})
	v3 := m.Annotate(MapAnnotation{LaneID: 2, Kind: "speed-limit", Value: "20mph"})
	if v1 != 1 || v2 != 2 || v3 != 3 || m.Version() != 3 {
		t.Fatalf("versions = %d %d %d", v1, v2, v3)
	}
	if len(m.Lane(1)) != 2 || len(m.Lane(2)) != 1 {
		t.Fatal("lane annotation counts wrong")
	}
	delta := m.DeltaSince(1)
	if len(delta) != 2 || delta[0].Version != 2 || delta[1].Version != 3 {
		t.Fatalf("delta = %+v", delta)
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDeltaSinceCurrentIsEmpty(t *testing.T) {
	m := NewMapStore()
	m.Annotate(MapAnnotation{LaneID: 1, Kind: "crosswalk"})
	if d := m.DeltaSince(m.Version()); len(d) != 0 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	payload := []byte(strings.Repeat(`{"kind":"heartbeat","at":123456}`, 200))
	c, err := Compress(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(payload)/4 {
		t.Fatalf("repetitive JSON compressed to %d/%d — ratio too weak", len(c), len(payload))
	}
	back, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err == nil {
		t.Fatal("garbage should not inflate")
	}
}

func TestCompressionAcceleratorEstimate(t *testing.T) {
	acc := DefaultCompressionAccelerator()
	// 1 hour of raw data at the paper's ~1 TB/day is ~42 GB.
	job := acc.Estimate(42 << 30)
	if job.Duration < 100*time.Second || job.Duration > 400*time.Second {
		t.Fatalf("42 GB at 200 MB/s = %v, want ~225 s", job.Duration)
	}
	if job.EnergyJ <= 0 {
		t.Fatal("energy must be positive")
	}
	if z := (CompressionAccelerator{}).Estimate(100); z.Duration != 0 {
		t.Fatal("degenerate accelerator should be zero, not Inf")
	}
}

func TestHourlyUploadPlanLowDuty(t *testing.T) {
	out := HourlyUploadPlan(42<<30, DefaultCompressionAccelerator(), 3*time.Millisecond)
	if !strings.Contains(out, "duty") {
		t.Fatalf("plan: %s", out)
	}
	// The whole point of RPR here: the compressor occupies the fabric a
	// few percent of the hour, not permanently.
	if !strings.Contains(out, "swaps") {
		t.Fatal("plan should include swap cost")
	}
}
