package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// Ingestor is the batching front end of the store: producers Add events
// during an epoch (the fleet does it from its serial barrier), and Flush
// submits the accumulated batch — one WAL record, one shard-parallel
// sort, one memtable merge. Payload bytes are copied at Add time into a
// reused arena, so producers may reuse their buffers immediately.
type Ingestor struct {
	store  *Store
	events []Event
	arena  []byte
	buf    []byte // payload-builder scratch loaned out via PayloadBuf
}

// NewIngestor wraps a store.
func NewIngestor(store *Store) *Ingestor {
	return &Ingestor{store: store, arena: make([]byte, 0, 16<<10)}
}

// Store returns the underlying store.
func (in *Ingestor) Store() *Store { return in.store }

// Add queues one event. Seq is assigned at Flush; payload is copied.
//
//sov:hotpath
func (in *Ingestor) Add(vehicle uint32, t time.Duration, kind Kind, payload []byte) {
	off := len(in.arena)
	in.arena = append(in.arena, payload...)
	in.events = append(in.events, Event{
		Key:     Key{Vehicle: vehicle, TMs: VirtualMs(t), Kind: kind},
		Payload: in.arena[off:len(in.arena):len(in.arena)],
	})
}

// PayloadBuf loans the caller a reset scratch buffer to build a payload
// in; pass the result to Add, which copies it out.
func (in *Ingestor) PayloadBuf() []byte { return in.buf[:0] }

// KeepPayloadBuf returns the (possibly grown) scratch so the next
// PayloadBuf call reuses its capacity.
func (in *Ingestor) KeepPayloadBuf(b []byte) { in.buf = b }

// Pending returns the queued event count.
func (in *Ingestor) Pending() int { return len(in.events) }

// Flush submits the batch to the store and resets the batcher.
func (in *Ingestor) Flush() error {
	if len(in.events) == 0 {
		return nil
	}
	err := in.store.Ingest(in.events)
	in.events = in.events[:0]
	in.arena = in.arena[:0]
	return err
}

// tRecord is the minimal schema the JSONL adapters need: every condensed
// per-cycle trace line and flight-recorder dump carries a t_ms field.
type tRecord struct {
	TMs float64 `json:"t_ms"`
}

// IngestJSONL reads newline-delimited JSON records (a condensed per-cycle
// trace from `sovsim -trace`, or any JSONL stream with a t_ms field) and
// queues each line as one event of the given kind for the vehicle.
// Malformed lines are skipped and counted, never fatal — a truncated
// upload must not hide the rest of the archive.
func (in *Ingestor) IngestJSONL(vehicle uint32, kind Kind, r io.Reader) (added, malformed int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec tRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.TMs < 0 {
			malformed++
			continue
		}
		in.Add(vehicle, time.Duration(rec.TMs*float64(time.Millisecond)), kind, line)
		added++
	}
	return added, malformed, sc.Err()
}

// IngestTrace queues a per-cycle condensed log (KindLog lines).
func (in *Ingestor) IngestTrace(vehicle uint32, r io.Reader) (added, malformed int, err error) {
	return in.IngestJSONL(vehicle, KindLog, r)
}

// IngestBlackbox queues a flight-recorder dump stream (KindBlackbox
// lines; obs.FlightRecorder JSONL dumps).
func (in *Ingestor) IngestBlackbox(vehicle uint32, r io.Reader) (added, malformed int, err error) {
	return in.IngestJSONL(vehicle, KindBlackbox, r)
}

// IngestMetrics queues one metrics-registry snapshot blob (typically
// obs.Registry.WriteJSON output) as a fleet-wide KindMetric event.
func (in *Ingestor) IngestMetrics(t time.Duration, snapshot []byte) {
	in.Add(FleetVehicle, t, KindMetric, snapshot)
}
