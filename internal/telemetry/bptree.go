package telemetry

// The secondary index is a B+-tree over (kind, time, vehicle, seq): the
// inverted ordering of the primary key space, so kind-first questions
// ("all reactive-brake events in hour 3") walk one contiguous leaf range
// instead of probing every vehicle's timeline. Leaves are linked for
// in-order range scans; interior nodes hold separator keys only. The tree
// is memory-resident and rebuilt lazily from the store on first use —
// every entry it holds also lives in the LSM primary, so it needs no WAL
// of its own.

// skey is the secondary ordering.
type skey struct {
	kind    Kind
	tMs     uint64
	vehicle uint32
	seq     uint32
}

// skeyOf reorders a primary key.
//
//sov:hotpath
func skeyOf(k Key) skey {
	return skey{kind: k.Kind, tMs: k.TMs, vehicle: k.Vehicle, seq: k.Seq}
}

// primary converts back to the primary ordering.
//
//sov:hotpath
func (s skey) primary() Key {
	return Key{Vehicle: s.vehicle, TMs: s.tMs, Kind: s.kind, Seq: s.seq}
}

// less orders (kind, t, vehicle, seq).
//
//sov:hotpath
func (s skey) less(o skey) bool {
	if s.kind != o.kind {
		return s.kind < o.kind
	}
	if s.tMs != o.tMs {
		return s.tMs < o.tMs
	}
	if s.vehicle != o.vehicle {
		return s.vehicle < o.vehicle
	}
	return s.seq < o.seq
}

// bptOrder is the fan-out: leaves hold up to bptOrder keys, interior nodes
// up to bptOrder children. 64 keeps the tree ~3 levels deep at millions of
// events while staying cache-friendly per node.
const bptOrder = 64

// bptNode is one tree node. Leaves use keys+next; interior nodes use
// keys as separators (keys[i] = smallest key in children[i+1]).
type bptNode struct {
	leaf     bool
	n        int
	keys     [bptOrder]skey
	children [bptOrder + 1]*bptNode
	next     *bptNode // leaf chain
}

// bptree is the index proper.
type bptree struct {
	root *bptNode
	size int
}

func newBPTree() *bptree {
	return &bptree{root: &bptNode{leaf: true}}
}

// insert adds a key (duplicates are impossible by construction: Seq
// disambiguates every event).
func (t *bptree) insert(k skey) {
	mid, right := t.root.insert(k)
	if right != nil {
		newRoot := &bptNode{}
		newRoot.keys[0] = mid
		newRoot.children[0] = t.root
		newRoot.children[1] = right
		newRoot.n = 1
		t.root = newRoot
	}
	t.size++
}

// insert descends to the leaf, splitting full children on the way back up.
// Returns the separator and new right sibling when this node split.
func (nd *bptNode) insert(k skey) (skey, *bptNode) {
	if nd.leaf {
		i := nd.search(k)
		copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
		nd.keys[i] = k
		nd.n++
		if nd.n < bptOrder {
			return skey{}, nil
		}
		return nd.splitLeaf()
	}
	i := nd.search(k)
	mid, right := nd.children[i].insert(k)
	if right == nil {
		return skey{}, nil
	}
	copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
	copy(nd.children[i+2:nd.n+2], nd.children[i+1:nd.n+1])
	nd.keys[i] = mid
	nd.children[i+1] = right
	nd.n++
	if nd.n < bptOrder {
		return skey{}, nil
	}
	return nd.splitInterior()
}

// search returns the index of the first key >= k (leaf) or the child slot
// to descend into (interior).
//
//sov:hotpath
func (nd *bptNode) search(k skey) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid].less(k) {
			lo = mid + 1
		} else if nd.leaf && !k.less(nd.keys[mid]) {
			// equal in a leaf: insert position is after (append order);
			// equality cannot occur for inserts but keeps search total.
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (nd *bptNode) splitLeaf() (skey, *bptNode) {
	half := nd.n / 2
	right := &bptNode{leaf: true}
	right.n = copy(right.keys[:], nd.keys[half:nd.n])
	nd.n = half
	right.next = nd.next
	nd.next = right
	return right.keys[0], right
}

func (nd *bptNode) splitInterior() (skey, *bptNode) {
	half := nd.n / 2
	mid := nd.keys[half]
	right := &bptNode{}
	right.n = copy(right.keys[:], nd.keys[half+1:nd.n])
	copy(right.children[:], nd.children[half+1:nd.n+1])
	nd.n = half
	return mid, right
}

// scanRange calls fn for every key in [lo, hi] in ascending order via the
// leaf chain. Returning false stops the scan.
func (t *bptree) scanRange(lo, hi skey, fn func(k skey) bool) {
	nd := t.root
	for !nd.leaf {
		nd = nd.children[nd.search(lo)]
	}
	for nd != nil {
		for i := 0; i < nd.n; i++ {
			k := nd.keys[i]
			if k.less(lo) {
				continue
			}
			if hi.less(k) {
				return
			}
			if !fn(k) {
				return
			}
		}
		nd = nd.next
	}
}

// height reports the tree depth (1 = root leaf), for tests.
func (t *bptree) height() int {
	h := 1
	for nd := t.root; !nd.leaf; nd = nd.children[0] {
		h++
	}
	return h
}
