package telemetry

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"sov/internal/parallel"
)

// TestKeyEncodingOrderAgrees: lexicographic order of encoded keys must
// equal Key.Less, and decode must invert encode.
func TestKeyEncodingOrderAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 500)
	for i := range keys {
		keys[i] = Key{
			Vehicle: uint32(rng.Intn(1000)),
			TMs:     uint64(rng.Intn(100000)),
			Kind:    Kind(rng.Intn(int(numKinds))),
			Seq:     uint32(rng.Intn(1 << 20)),
		}
	}
	for i := 0; i < len(keys)-1; i++ {
		a, b := keys[i], keys[i+1]
		ea := appendKey(nil, a)
		eb := appendKey(nil, b)
		if got := decodeKey(ea); got != a {
			t.Fatalf("decode(encode(%v)) = %v", a, got)
		}
		if a.Less(b) != (bytes.Compare(ea, eb) < 0) && a != b {
			t.Fatalf("order disagreement: %v vs %v", a, b)
		}
	}
}

// TestKindNames: round-trip and stability of the kind table.
func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if k, _ := KindByName("reactive-brake"); k != KindReactiveBrake {
		t.Fatal("reactive-brake mismapped")
	}
}

// TestBloomNoFalseNegatives: every inserted key tests positive; absent
// keys mostly test negative.
func TestBloomNoFalseNegatives(t *testing.T) {
	const n = 5000
	f := newBloom(n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = appendKey(buf[:0], Key{Vehicle: uint32(i), TMs: uint64(i * 7)})
		f.add(buf)
	}
	for i := 0; i < n; i++ {
		buf = appendKey(buf[:0], Key{Vehicle: uint32(i), TMs: uint64(i * 7)})
		if !f.test(buf) {
			t.Fatalf("false negative at %d", i)
		}
	}
	fp := 0
	for i := 0; i < n; i++ {
		buf = appendKey(buf[:0], Key{Vehicle: uint32(i + n*10), TMs: uint64(i)})
		if f.test(buf) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.03 {
		t.Fatalf("false-positive rate %.3f, want < 3%%", rate)
	}
	// Marshal round-trip preserves behavior.
	g := unmarshalBloom(f.marshal())
	if g == nil {
		t.Fatal("unmarshal failed")
	}
	buf = appendKey(buf[:0], Key{Vehicle: 3, TMs: 21})
	if !g.test(buf) {
		t.Fatal("round-tripped filter lost a key")
	}
	if unmarshalBloom([]byte{1, 2, 3}) != nil {
		t.Fatal("bad bloom accepted")
	}
}

// TestMemtableMergeAndScan: out-of-order batches merge into global key
// order; get and scan agree.
func TestMemtableMergeAndScan(t *testing.T) {
	m := newMemtable()
	var batch []memEntry
	put := func(keys ...Key) {
		batch = batch[:0]
		for _, k := range keys {
			batch = append(batch, m.put(k, []byte(fmt.Sprintf("p%d-%d", k.Vehicle, k.TMs))))
		}
		m.mergeBatch(batch)
	}
	put(Key{Vehicle: 5, TMs: 10}, Key{Vehicle: 5, TMs: 30})
	put(Key{Vehicle: 2, TMs: 20}) // merges before
	put(Key{Vehicle: 5, TMs: 20}) // interleaves
	put(Key{Vehicle: 9, TMs: 1})  // fast-path append
	if m.len() != 5 {
		t.Fatalf("len = %d", m.len())
	}
	var got []Key
	m.scan(Key{}, Key{Vehicle: 1 << 31}, func(k Key, p []byte) bool {
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Less(got[j]) }) {
		t.Fatalf("scan out of order: %v", got)
	}
	if p, ok := m.get(Key{Vehicle: 5, TMs: 20}); !ok || string(p) != "p5-20" {
		t.Fatalf("get = %q, %v", p, ok)
	}
	if _, ok := m.get(Key{Vehicle: 5, TMs: 21}); ok {
		t.Fatal("phantom get")
	}
	// Bounded scan.
	got = got[:0]
	m.scan(Key{Vehicle: 5}, Key{Vehicle: 5, TMs: 20}, func(k Key, p []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("bounded scan hit %d, want 2", len(got))
	}
}

// TestWALFramingAndTornTail: intact frames replay; a torn tail stops the
// scan without error; mid-log corruption is detected via crc.
func TestWALFramingAndTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	b1 := appendBatchBody(nil, []Event{{Key: Key{Vehicle: 1, TMs: 5}, Payload: []byte("a")}})
	b2 := appendBatchBody(nil, []Event{{Key: Key{Vehicle: 2, TMs: 6}, Payload: []byte("bb")}})
	if err := w.appendBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.appendBatch(b2); err != nil {
		t.Fatal(err)
	}
	w.close()

	batches, torn, err := readWAL(dir)
	if err != nil || torn || len(batches) != 2 {
		t.Fatalf("read: %d batches torn=%v err=%v", len(batches), torn, err)
	}
	ev, err := decodeBatchBody(batches[1])
	if err != nil || len(ev) != 1 || string(ev[0].Payload) != "bb" {
		t.Fatalf("decode: %v %v", ev, err)
	}

	// Torn tail: append half a frame.
	path := filepath.Join(dir, walName)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{9, 0, 0, 0, 1, 2})
	f.Close()
	batches, torn, err = readWAL(dir)
	if err != nil || !torn || len(batches) != 2 {
		t.Fatalf("torn read: %d batches torn=%v err=%v", len(batches), torn, err)
	}

	// Corrupt a byte inside the first frame's body: crc catches it and the
	// scan ends there (sequential framing cannot resync).
	raw, _ := os.ReadFile(path)
	raw[10] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	batches, torn, _ = readWAL(dir)
	if !torn || len(batches) != 0 {
		t.Fatalf("corrupt read: %d batches torn=%v", len(batches), torn)
	}
}

// makeEvents builds a deterministic synthetic fleet workload: V vehicles,
// E epochs, an epoch snapshot per vehicle plus sparse sparse events.
func makeEvents(vehicles, epochs int) []Event {
	var out []Event
	for e := 1; e <= epochs; e++ {
		tMs := uint64(e * 1000)
		for v := 0; v < vehicles; v++ {
			payload := fmt.Sprintf(`{"soc":%d.%02d,"odo":%d}`, v%2, (v*7+e)%100, v*e)
			out = append(out, Event{Key: Key{Vehicle: uint32(v), TMs: tMs, Kind: KindEpoch}, Payload: []byte(payload)})
			if (v+e)%13 == 0 {
				out = append(out, Event{Key: Key{Vehicle: uint32(v), TMs: tMs, Kind: KindReactiveBrake}, Payload: []byte(`{"d":1.5}`)})
			}
			if (v+e)%29 == 0 {
				out = append(out, Event{Key: Key{Vehicle: uint32(v), TMs: tMs, Kind: KindCollision}, Payload: []byte(`{"x":1}`)})
			}
		}
	}
	return out
}

// ingestInBatches pushes events through the store epoch-batch-wise.
func ingestInBatches(t *testing.T, s *Store, events []Event, batch int) {
	t.Helper()
	for off := 0; off < len(events); off += batch {
		end := off + batch
		if end > len(events) {
			end = len(events)
		}
		// Copy: Ingest mutates Seq in place and callers reuse buffers.
		b := make([]Event, end-off)
		copy(b, events[off:end])
		if err := s.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
}

// collectScan snapshots a query result (copying payloads).
func collectScan(t *testing.T, s *Store, q Query) []Event {
	t.Helper()
	var out []Event
	err := s.Scan(q, func(e Event) bool {
		out = append(out, Event{Key: e.Key, Payload: append([]byte(nil), e.Payload...)})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStoreEndToEnd: ingest a workload big enough to flush and compact,
// then read every event back in order via Scan and spot-check Get.
func TestStoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FlushBytes: 8 << 10, Shards: 4}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := makeEvents(40, 60)
	ingestInBatches(t, s, events, 200)

	st := s.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("want flushes and compactions, got %+v", st)
	}
	if st.WriteAmplification() <= 1 {
		t.Fatalf("write amplification %.2f must exceed 1 (WAL + runs)", st.WriteAmplification())
	}

	got := collectScan(t, s, Query{})
	if len(got) != len(events) {
		t.Fatalf("scan returned %d events, want %d", len(got), len(events))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Key.Less(got[i].Key) {
			t.Fatalf("scan out of order at %d", i)
		}
	}
	// Every original event present with its payload.
	want := make(map[Key]string, len(events))
	for i, e := range events {
		k := e.Key
		k.Seq = uint32(i) // Ingest assigns global submission order
		want[k] = string(e.Payload)
	}
	for _, e := range got {
		if want[e.Key] != string(e.Payload) {
			t.Fatalf("payload mismatch at %v: %q vs %q", e.Key, e.Payload, want[e.Key])
		}
		delete(want, e.Key)
	}
	if len(want) != 0 {
		t.Fatalf("%d events missing from scan", len(want))
	}

	// Point reads: a present key and an absent one (bloom should skip).
	pk := got[len(got)/2].Key
	if p, ok, err := s.Get(pk); err != nil || !ok || string(p) != string(got[len(got)/2].Payload) {
		t.Fatalf("get(%v) = %q %v %v", pk, p, ok, err)
	}
	before := s.Stats().BloomSkips
	if _, ok, _ := s.Get(Key{Vehicle: 9999, TMs: 1}); ok {
		t.Fatal("phantom key")
	}
	if s.Stats().BloomSkips == before && len(s.runs) > 0 {
		t.Log("note: absent-key probe did not exercise a bloom skip (in-range miss)")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same contents.
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got2 := collectScan(t, s2, Query{})
	if len(got2) != len(got) {
		t.Fatalf("reopen scan %d events, want %d", len(got2), len(got))
	}
}

// TestRangeQueries: vehicle/time windows and kind filters, primary scan
// vs B+-tree index agree on the result set.
func TestRangeQueries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushBytes: 8 << 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	events := makeEvents(50, 40)
	ingestInBatches(t, s, events, 500)

	q := Query{VehicleMin: 10, VehicleMax: 20, TMinMs: 5000, TMaxMs: 20000}
	prim := collectScan(t, s, q)
	if len(prim) == 0 {
		t.Fatal("empty window")
	}
	for _, e := range prim {
		if e.Key.Vehicle < 10 || e.Key.Vehicle > 20 || e.Key.TMs < 5000 || e.Key.TMs > 20000 {
			t.Fatalf("event outside window: %v", e.Key)
		}
	}

	// Kind-filtered, via primary scan and via the secondary index: same
	// set, index order is time-major.
	qk := q
	qk.Kinds = []Kind{KindReactiveBrake}
	primK := collectScan(t, s, qk)
	var idxK []Event
	err = s.ScanByKind(qk, func(e Event) bool {
		idxK = append(idxK, Event{Key: e.Key, Payload: append([]byte(nil), e.Payload...)})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxK) != len(primK) {
		t.Fatalf("index query %d events, primary %d", len(idxK), len(primK))
	}
	inPrim := make(map[Key]bool)
	for _, e := range primK {
		if e.Key.Kind != KindReactiveBrake {
			t.Fatalf("kind filter leaked %v", e.Key)
		}
		inPrim[e.Key] = true
	}
	for i, e := range idxK {
		if !inPrim[e.Key] {
			t.Fatalf("index-only event %v", e.Key)
		}
		if i > 0 && idxK[i-1].Key.TMs > e.Key.TMs {
			t.Fatal("index scan not time-major")
		}
	}
	if n, h := s.IndexSize(); n == 0 || h < 2 {
		t.Fatalf("index size %d height %d", n, h)
	}
	// Count through the index path.
	n, err := s.Count(qk)
	if err != nil || int(n) != len(primK) {
		t.Fatalf("count = %d want %d (%v)", n, len(primK), err)
	}
}

// TestBPTreeAgainstReference: randomized inserts, full and bounded range
// scans must match a sorted reference slice.
func TestBPTreeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := newBPTree()
	var ref []skey
	for i := 0; i < 20000; i++ {
		k := skey{
			kind:    Kind(rng.Intn(4)),
			tMs:     uint64(rng.Intn(5000)),
			vehicle: uint32(rng.Intn(300)),
			seq:     uint32(i),
		}
		tree.insert(k)
		ref = append(ref, k)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i].less(ref[j]) })
	var got []skey
	tree.scanRange(skey{}, skey{kind: numKinds, tMs: 1 << 62}, func(k skey) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("full scan %d keys, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, got[i], ref[i])
		}
	}
	if tree.height() < 3 {
		t.Fatalf("height %d, want >= 3 at 20k keys", tree.height())
	}
	// Bounded scan.
	lo := skey{kind: 1, tMs: 1000}
	hi := skey{kind: 1, tMs: 2000, vehicle: 1 << 31, seq: 1 << 31}
	var bounded []skey
	tree.scanRange(lo, hi, func(k skey) bool { bounded = append(bounded, k); return true })
	for _, k := range bounded {
		if k.less(lo) || hi.less(k) {
			t.Fatalf("bounded scan leaked %v", k)
		}
	}
	nWant := 0
	for _, k := range ref {
		if !k.less(lo) && !hi.less(k) {
			nWant++
		}
	}
	if len(bounded) != nWant {
		t.Fatalf("bounded scan %d keys, want %d", len(bounded), nWant)
	}
}

// dirFingerprint hashes every store file's bytes (manifest, runs, wal).
func dirFingerprint(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = fmt.Sprintf("%d:%x", len(b), b)
	}
	return out
}

// TestDeterminismAcrossShardsAndWorkers: run files, MANIFEST, and query
// output must be byte-identical for shard counts {1, 3, 8} × workers
// {1, 8}.
func TestDeterminismAcrossShardsAndWorkers(t *testing.T) {
	events := makeEvents(30, 30)
	type result struct {
		files map[string]string
		rows  string
		label string
	}
	var results []result
	for _, shards := range []int{1, 3, 8} {
		for _, workers := range []int{1, 8} {
			prev := parallel.SetWorkers(workers)
			dir := t.TempDir()
			s, err := Open(dir, Options{FlushBytes: 8 << 10, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			ingestInBatches(t, s, events, 170)
			var rows bytes.Buffer
			if _, err := s.WriteJSONL(&rows, Query{VehicleMin: 5, VehicleMax: 25, TMinMs: 2000, TMaxMs: 25000}); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			results = append(results, result{
				files: dirFingerprint(t, dir),
				rows:  rows.String(),
				label: fmt.Sprintf("shards=%d workers=%d", shards, workers),
			})
			parallel.SetWorkers(prev)
		}
	}
	base := results[0]
	for _, r := range results[1:] {
		if r.rows != base.rows {
			t.Fatalf("query rows differ: %s vs %s", base.label, r.label)
		}
		if len(r.files) != len(base.files) {
			t.Fatalf("file sets differ: %s has %d files, %s has %d", base.label, len(base.files), r.label, len(r.files))
		}
		for name, fp := range base.files {
			if r.files[name] != fp {
				t.Fatalf("file %s differs between %s and %s", name, base.label, r.label)
			}
		}
	}
	if base.rows == "" {
		t.Fatal("empty query output")
	}
}

// TestCrashRecoveryReplaysToIdenticalStore: a store killed mid-stream
// (open WAL tail, unflushed memtable) must reopen to the same contents,
// and after Close its on-disk state must match a never-crashed twin.
func TestCrashRecoveryReplaysToIdenticalStore(t *testing.T) {
	events := makeEvents(25, 40)
	opts := Options{FlushBytes: 8 << 10, Shards: 4}

	cleanDir := t.TempDir()
	clean, err := Open(cleanDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestInBatches(t, clean, events, 120)
	cleanRows := collectScan(t, clean, Query{})
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}

	crashDir := t.TempDir()
	victim, err := Open(crashDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestInBatches(t, victim, events, 120)
	if victim.MemLen() == 0 {
		t.Fatal("test wants unflushed events at crash time; tune batch size")
	}
	victim.crash() // no flush, WAL tail left behind

	recovered, err := Open(crashDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Stats().Replayed == 0 {
		t.Fatal("no WAL replay happened")
	}
	recRows := collectScan(t, recovered, Query{})
	if len(recRows) != len(cleanRows) {
		t.Fatalf("recovered %d events, clean %d", len(recRows), len(cleanRows))
	}
	for i := range recRows {
		if recRows[i].Key != cleanRows[i].Key || !bytes.Equal(recRows[i].Payload, cleanRows[i].Payload) {
			t.Fatalf("row %d differs after recovery", i)
		}
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close, both directories are byte-identical.
	cleanFP := dirFingerprint(t, cleanDir)
	recFP := dirFingerprint(t, crashDir)
	if len(cleanFP) != len(recFP) {
		t.Fatalf("file sets differ: clean %d, recovered %d", len(cleanFP), len(recFP))
	}
	for name, fp := range cleanFP {
		if recFP[name] != fp {
			t.Fatalf("file %s differs between clean close and crash recovery", name)
		}
	}
}

// TestTornWALTailRecovered: garbage appended to the WAL (torn last write)
// must not block recovery of the intact prefix.
func TestTornWALTailRecovered(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FlushBytes: 1 << 20, Shards: 2} // no flush: all in WAL
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := makeEvents(5, 4)
	ingestInBatches(t, s, events, 7)
	s.crash()
	// Tear the tail.
	f, _ := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{42, 0, 0, 0, 9, 9, 9})
	f.Close()
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := collectScan(t, re, Query{})
	if len(got) != len(events) {
		t.Fatalf("recovered %d events, want %d", len(got), len(events))
	}
}

// TestIngestorAdaptersAndMalformedLines: JSONL adapters key events by
// t_ms, skip malformed lines with a count, and round-trip payloads.
func TestIngestorAdaptersAndMalformedLines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := NewIngestor(s)

	trace := `{"cycle":1,"t_ms":100.5,"v":2.0}
not json at all
{"cycle":2,"t_ms":200.25,"v":2.1}

{"cycle":3,"t_ms":-5}
`
	added, malformed, err := in.IngestTrace(7, strings.NewReader(trace))
	if err != nil || added != 2 || malformed != 2 {
		t.Fatalf("trace: added=%d malformed=%d err=%v", added, malformed, err)
	}
	bb := `{"seq":1,"trigger":"collision","t_ms":1500,"records":[]}` + "\n"
	added, malformed, err = in.IngestBlackbox(7, strings.NewReader(bb))
	if err != nil || added != 1 || malformed != 0 {
		t.Fatalf("blackbox: added=%d malformed=%d err=%v", added, malformed, err)
	}
	in.IngestMetrics(3*time.Second, []byte(`[{"name":"x","value":1}]`))
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}

	got := collectScan(t, s, Query{})
	if len(got) != 4 {
		t.Fatalf("got %d events", len(got))
	}
	// Keys: trace lines at 100 ms and 200 ms (ms truncation), blackbox at
	// 1500 ms, metric on the fleet pseudo-vehicle.
	if got[0].Key != (Key{Vehicle: 7, TMs: 100, Kind: KindLog, Seq: 0}) {
		t.Fatalf("first key %v", got[0].Key)
	}
	if got[2].Key.Kind != KindBlackbox || got[2].Key.TMs != 1500 {
		t.Fatalf("blackbox key %v", got[2].Key)
	}
	if got[3].Key.Vehicle != FleetVehicle || got[3].Key.Kind != KindMetric {
		t.Fatalf("metric key %v", got[3].Key)
	}
	// Payload preserved verbatim.
	if !strings.Contains(string(got[2].Payload), `"trigger":"collision"`) {
		t.Fatalf("blackbox payload %q", got[2].Payload)
	}
	// JSONL rendering embeds raw payload JSON and names the fleet row.
	var buf bytes.Buffer
	if _, err := s.WriteJSONL(&buf, Query{Kinds: []Kind{KindMetric}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"vehicle":"fleet"`) || !strings.Contains(buf.String(), `[{"name":"x","value":1}]`) {
		t.Fatalf("jsonl row %q", buf.String())
	}
}

// TestRunFileCorruptionDetected: a flipped byte in a data block fails the
// block crc on read; a flipped index byte fails open.
func TestRunFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FlushBytes: 4 << 10, Shards: 2, NoCompact: true}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestInBatches(t, s, makeEvents(10, 20), 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var runFile string
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".sst") {
			runFile = filepath.Join(dir, de.Name())
			break
		}
	}
	if runFile == "" {
		t.Fatal("no run file")
	}
	raw, _ := os.ReadFile(runFile)

	// Flip a data byte (inside the first block, after the magic).
	mut := append([]byte(nil), raw...)
	mut[len(runMagic)+3] ^= 0x40
	os.WriteFile(runFile, mut, 0o644)
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err) // index/footer intact: open succeeds
	}
	err = s2.Scan(Query{}, func(Event) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("scan over corrupt block: %v", err)
	}
	s2.crash()

	// Flip an index byte: open fails on the metadata crc.
	mut = append([]byte(nil), raw...)
	mut[len(mut)-footerSize-3] ^= 0x01
	os.WriteFile(runFile, mut, 0o644)
	if _, err := Open(dir, opts); err == nil {
		t.Fatal("open accepted corrupt index")
	}
	os.WriteFile(runFile, raw, 0o644)
}

// TestTierOf: size buckets quadruple.
func TestTierOf(t *testing.T) {
	cases := []struct {
		bytes int64
		tier  int
	}{
		{1, 0}, {tierBase, 0}, {tierBase*tierFanout - 1, 0},
		{tierBase * tierFanout, 1}, {tierBase * tierFanout * tierFanout, 2},
	}
	for _, c := range cases {
		if got := tierOf(c.bytes); got != c.tier {
			t.Fatalf("tierOf(%d) = %d, want %d", c.bytes, got, c.tier)
		}
	}
}

// TestCompactionReducesRunCount: with compaction on, sustained ingest
// keeps the run count far below the flush count.
func TestCompactionReducesRunCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushBytes: 4 << 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ingestInBatches(t, s, makeEvents(40, 80), 150)
	st := s.Stats()
	runs, _ := s.Runs()
	if st.Flushes < 8 {
		t.Fatalf("want many flushes, got %d", st.Flushes)
	}
	if runs >= int(st.Flushes) {
		t.Fatalf("compaction did not reduce runs: %d runs after %d flushes", runs, st.Flushes)
	}
	if runs >= tierFanout*4 {
		t.Fatalf("run count %d not bounded by tiering", runs)
	}
}
