package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"sort"
	"strconv"
)

// errShortEntry marks a corrupt block encountered mid-scan.
var errShortEntry = errors.New("telemetry: short block entry in scan")

// Query selects a rectangle of the telemetry space: a vehicle range, a
// virtual-time window, and optionally a kind set. The zero value selects
// everything.
type Query struct {
	VehicleMin uint32
	VehicleMax uint32 // 0 means "no upper bound"
	TMinMs     uint64
	TMaxMs     uint64 // 0 means "no upper bound"
	Kinds      []Kind
}

// normalize resolves the zero-value defaults.
func (q Query) normalize() Query {
	if q.VehicleMax == 0 {
		q.VehicleMax = math.MaxUint32
	}
	if q.TMaxMs == 0 {
		q.TMaxMs = math.MaxUint64
	}
	sort.Slice(q.Kinds, func(i, j int) bool { return q.Kinds[i] < q.Kinds[j] })
	return q
}

// matchKind reports whether k passes the kind filter.
func (q Query) matchKind(k Kind) bool {
	if len(q.Kinds) == 0 {
		return true
	}
	for _, want := range q.Kinds {
		if k == want {
			return true
		}
	}
	return false
}

// Scan streams every matching event in primary (vehicle-major, then time)
// order: a k-way merge of the memtable and every run, each source reading
// only the blocks its index says overlap the query rectangle. Payload
// slices alias internal buffers — copy to retain. Returning false from fn
// stops the scan.
func (s *Store) Scan(q Query, fn func(Event) bool) error {
	q = q.normalize()
	lo := Key{Vehicle: q.VehicleMin, TMs: q.TMinMs}
	hi := Key{Vehicle: q.VehicleMax, TMs: q.TMaxMs, Kind: Kind(math.MaxUint16), Seq: math.MaxUint32}

	sources := make([]*scanCursor, 0, len(s.runs)+1)
	for _, r := range s.runs {
		c, err := newRunCursor(r, lo, hi, &s.stats)
		if err != nil {
			return err
		}
		if c != nil {
			sources = append(sources, c)
		}
	}
	sources = append(sources, newMemCursor(s.mem, lo, hi))

	for {
		best := -1
		for i, c := range sources {
			if c.done {
				continue
			}
			if best < 0 || c.key.Less(sources[best].key) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		c := sources[best]
		k := c.key
		emit := k.TMs >= q.TMinMs && k.TMs <= q.TMaxMs && q.matchKind(k.Kind)
		if emit && !fn(Event{Key: k, Payload: c.val}) {
			return nil
		}
		if err := c.next(); err != nil {
			return err
		}
	}
}

// ScanByKind answers kind-first queries through the B+-tree secondary
// index: leaves are walked in (kind, time, vehicle) order over exactly the
// requested window and each hit is resolved with a bloom-guarded point
// read. Events stream in time-major order per kind — the triage ordering —
// rather than the primary vehicle-major order.
func (s *Store) ScanByKind(q Query, fn func(Event) bool) error {
	q = q.normalize()
	if len(q.Kinds) == 0 {
		for k := Kind(0); k < numKinds; k++ {
			q.Kinds = append(q.Kinds, k)
		}
	}
	if err := s.ensureIndex(); err != nil {
		return err
	}
	for _, kind := range q.Kinds {
		lo := skey{kind: kind, tMs: q.TMinMs, vehicle: q.VehicleMin}
		hi := skey{kind: kind, tMs: q.TMaxMs, vehicle: math.MaxUint32, seq: math.MaxUint32}
		stop := false
		var ierr error
		s.idx.scanRange(lo, hi, func(sk skey) bool {
			if sk.vehicle < q.VehicleMin || sk.vehicle > q.VehicleMax {
				return true
			}
			payload, ok, err := s.Get(sk.primary())
			if err != nil {
				ierr, stop = err, true
				return false
			}
			if !ok {
				// Index entries always resolve; a miss means corruption.
				return true
			}
			if !fn(Event{Key: sk.primary(), Payload: payload}) {
				stop = true
				return false
			}
			return true
		})
		if ierr != nil {
			return ierr
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ensureIndex builds the secondary index on first use by replaying the
// primary space; afterwards ingest keeps it current incrementally.
func (s *Store) ensureIndex() error {
	if s.idx != nil {
		return nil
	}
	t := newBPTree()
	err := s.Scan(Query{}, func(e Event) bool {
		t.insert(skeyOf(e.Key))
		return true
	})
	if err != nil {
		return err
	}
	s.idx = t
	return nil
}

// IndexSize reports the secondary index entry count and tree height
// (0, 0 before the index is built).
func (s *Store) IndexSize() (entries, height int) {
	if s.idx == nil {
		return 0, 0
	}
	return s.idx.size, s.idx.height()
}

// scanCursor is one merge source: the memtable or one run.
type scanCursor struct {
	key  Key
	val  []byte
	done bool

	// memtable source
	mem *memtable
	mi  int

	// run source
	iter *boundedRunIter
	hi   Key
}

func newMemCursor(m *memtable, lo, hi Key) *scanCursor {
	i := sort.Search(len(m.entries), func(i int) bool { return !m.entries[i].key.Less(lo) })
	c := &scanCursor{mem: m, mi: i, hi: hi}
	c.advanceMem()
	return c
}

func (c *scanCursor) advanceMem() {
	if c.mi >= len(c.mem.entries) {
		c.done = true
		return
	}
	e := c.mem.entries[c.mi]
	if c.hi.Less(e.key) {
		c.done = true
		return
	}
	c.key = e.key
	c.val = c.mem.arena[e.off : e.off+e.n]
	c.mi++
}

// boundedRunIter walks one run across [lo, hi].
type boundedRunIter struct {
	r     *run
	st    *Stats
	hi    Key
	block []byte
	bi    int
}

func newRunCursor(r *run, lo, hi Key, st *Stats) (*scanCursor, error) {
	if hi.Less(r.meta.minKey) || r.meta.maxKey.Less(lo) {
		return nil, nil
	}
	bi := r.blockFor(lo)
	if bi < 0 {
		bi = 0
	}
	it := &boundedRunIter{r: r, st: st, hi: hi, bi: bi - 1}
	c := &scanCursor{iter: it, hi: hi}
	// Position on the first key >= lo.
	for {
		if err := c.nextRun(); err != nil {
			return nil, err
		}
		if c.done || !c.key.Less(lo) {
			return c, nil
		}
	}
}

func (c *scanCursor) next() error {
	if c.mem != nil {
		c.advanceMem()
		return nil
	}
	return c.nextRun()
}

func (c *scanCursor) nextRun() error {
	it := c.iter
	for {
		if len(it.block) == 0 {
			it.bi++
			if it.bi >= len(it.r.index) || c.hi.Less(it.r.index[it.bi].firstKey) {
				c.done = true
				return nil
			}
			b, err := it.r.readBlock(it.bi, it.st)
			if err != nil {
				return err
			}
			// Copy out of the run's shared scratch: sibling cursors in the
			// same merge interleave readBlock calls on other runs, and the
			// merge holds this block's entries across those calls.
			it.block = append(it.block[:0], b...)
		}
		b := it.block
		if len(b) < KeySize {
			c.done = true
			return errShortEntry
		}
		k := decodeKey(b)
		b = b[KeySize:]
		pn, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < pn {
			c.done = true
			return errShortEntry
		}
		c.key = k
		c.val = b[n : n+int(pn)]
		it.block = b[n+int(pn):]
		if c.hi.Less(k) {
			c.done = true
			return nil
		}
		return nil
	}
}

// Count runs a query and returns the matching event count (using the
// secondary index when the query names kinds).
func (s *Store) Count(q Query) (int64, error) {
	var n int64
	scan := s.Scan
	if len(q.Kinds) > 0 {
		scan = s.ScanByKind
	}
	err := scan(q, func(Event) bool { n++; return true })
	return n, err
}

// AppendRowJSON renders one event as a compact JSON line (without the
// trailing newline): stable field order, payload embedded raw when it is
// itself valid JSON, else as a JSON string.
func AppendRowJSON(b []byte, e Event) []byte {
	b = append(b, `{"vehicle":`...)
	if e.Key.Vehicle == FleetVehicle {
		b = append(b, `"fleet"`...)
	} else {
		b = strconv.AppendUint(b, uint64(e.Key.Vehicle), 10)
	}
	b = append(b, `,"t_ms":`...)
	b = strconv.AppendUint(b, e.Key.TMs, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Key.Kind.String()...)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, uint64(e.Key.Seq), 10)
	b = append(b, `,"payload":`...)
	if len(e.Payload) > 0 && json.Valid(e.Payload) {
		b = append(b, e.Payload...)
	} else {
		qb, _ := json.Marshal(string(e.Payload))
		b = append(b, qb...)
	}
	return append(b, '}')
}

// WriteJSONL streams a query's rows as JSON lines. Kind-filtered queries
// go through the secondary index (time-major order); unfiltered queries
// scan the primary (vehicle-major order).
func (s *Store) WriteJSONL(w io.Writer, q Query) (int64, error) {
	var buf []byte
	var n int64
	scan := s.Scan
	if len(q.Kinds) > 0 {
		scan = s.ScanByKind
	}
	var werr error
	err := scan(q, func(e Event) bool {
		buf = AppendRowJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			werr = err
			return false
		}
		n++
		return true
	})
	if err == nil {
		err = werr
	}
	return n, err
}
