package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The write-ahead log makes ingest durable before the memtable applies it:
// one framed record per ingest batch, in submission order (before the
// shard fan-out), so WAL bytes are identical for any shard/worker count.
// On open, the tail of the log past the last flush checkpoint is replayed
// through the normal ingest path; because flush decisions are a pure
// function of ingested bytes, a crashed store replays to byte-identical
// runs and manifest.
//
// Frame: u32 length | u32 crc32(body) | body. A truncated or corrupt tail
// (the crash case) stops replay at the last intact frame.

const walName = "wal.log"

// walWriter appends framed batch records to the log.
type walWriter struct {
	f     *os.File
	buf   []byte
	bytes int64
}

func openWAL(dir string) (*walWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, bytes: st.Size()}, nil
}

// appendBatch frames and writes one serialized batch body.
func (w *walWriter) appendBatch(body []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, body...)
	n, err := w.f.Write(w.buf)
	w.bytes += int64(n)
	return err
}

// reset truncates the log after a flush made its contents durable in runs.
func (w *walWriter) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	_, err := w.f.Seek(0, io.SeekStart)
	w.bytes = 0
	return err
}

func (w *walWriter) close() error { return w.f.Close() }

// errWALTail marks a torn final frame — expected after a crash, not an
// error for replay.
var errWALTail = errors.New("telemetry: torn wal tail")

// readWAL returns the intact batch bodies in the log. A torn or corrupt
// tail ends the scan without error (tornTail reports it); corruption in
// the middle of the log is a real error.
func readWAL(dir string) (batches [][]byte, tornTail bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	off := 0
	for off < len(b) {
		body, n, err := walFrame(b[off:])
		if err != nil {
			if errors.Is(err, errWALTail) {
				return batches, true, nil
			}
			return nil, false, fmt.Errorf("telemetry: wal frame at %d: %w", off, err)
		}
		batches = append(batches, body)
		off += n
	}
	return batches, false, nil
}

// walFrame decodes one frame, distinguishing a torn tail (short frame or
// bad crc at end-of-buffer) from mid-log corruption by construction: any
// failure here is reported as a tail and the caller decides whether more
// intact frames follow (they cannot — framing is sequential).
func walFrame(b []byte) (body []byte, n int, err error) {
	if len(b) < 8 {
		return nil, 0, errWALTail
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if len(b) < 8+int(ln) {
		return nil, 0, errWALTail
	}
	body = b[8 : 8+ln]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, 0, errWALTail
	}
	return body, 8 + int(ln), nil
}

// Batch body serialization: uvarint count, then per event key + uvarint
// payload length + payload, in submission order.

func appendBatchBody(b []byte, events []Event) []byte {
	b = binary.AppendUvarint(b, uint64(len(events)))
	for _, e := range events {
		b = appendKey(b, e.Key)
		b = binary.AppendUvarint(b, uint64(len(e.Payload)))
		b = append(b, e.Payload...)
	}
	return b
}

// decodeBatchBody parses a batch body back into events. Payload slices
// alias the body buffer.
func decodeBatchBody(b []byte) ([]Event, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errors.New("telemetry: bad batch count")
	}
	b = b[n:]
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < KeySize {
			return nil, errors.New("telemetry: short batch key")
		}
		k := decodeKey(b)
		b = b[KeySize:]
		pn, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < pn {
			return nil, errors.New("telemetry: short batch payload")
		}
		events = append(events, Event{Key: k, Payload: b[n : n+int(pn)]})
		b = b[n+int(pn):]
	}
	if len(b) != 0 {
		return nil, errors.New("telemetry: trailing batch bytes")
	}
	return events, nil
}
