package telemetry

import "encoding/binary"

// bloom is a fixed-size bloom filter over encoded keys. Runs build one at
// flush time and persist it in the run footer: point reads consult it
// before touching any data block, which is where the read-amplification
// win of the LSM shape comes from (most runs do not hold the key).
//
// Double hashing (Kirsch–Mitzenmacher) derives the k probe positions from
// two 64-bit halves of a single FNV-1a pass, so membership tests hash the
// key exactly once.
type bloom struct {
	bits []uint64
	k    uint32
}

// bloomBitsPerKey=10 with k=7 gives a ~0.8% false-positive rate — the
// standard LSM operating point (RocksDB's default is the same 10 bits).
const (
	bloomBitsPerKey = 10
	bloomK          = 7
)

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*bloomBitsPerKey + 63) / 64
	return &bloom{bits: make([]uint64, words), k: bloomK}
}

// bloomHash is FNV-1a over the encoded key, split into two independent
// 32-bit-mixed halves for double hashing.
//
//sov:hotpath
func bloomHash(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	// Split-mix the second stream so h2 is not a linear function of h1.
	h2 := h
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	return h, h2 | 1 // odd increment covers all positions
}

// add inserts an encoded key.
//
//sov:hotpath
func (f *bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	m := uint64(len(f.bits)) * 64
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// test reports whether the key may be present (false negatives never).
//
//sov:hotpath
func (f *bloom) test(key []byte) bool {
	h1, h2 := bloomHash(key)
	m := uint64(len(f.bits)) * 64
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// marshal renders the filter deterministically (little-endian words).
func (f *bloom) marshal() []byte {
	out := make([]byte, 4+8*len(f.bits))
	binary.LittleEndian.PutUint32(out[0:4], f.k)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[4+8*i:], w)
	}
	return out
}

// unmarshalBloom reads a marshaled filter.
func unmarshalBloom(b []byte) *bloom {
	if len(b) < 4 || (len(b)-4)%8 != 0 {
		return nil
	}
	f := &bloom{k: binary.LittleEndian.Uint32(b[0:4])}
	n := (len(b) - 4) / 8
	f.bits = make([]uint64, n)
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(b[4+8*i:])
	}
	if f.k == 0 || f.k > 64 || n == 0 {
		return nil
	}
	return f
}
