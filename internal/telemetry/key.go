// Package telemetry is the fleet telemetry backend: the offline half of the
// paper's Fig. 1 loop built as a real storage engine instead of the toy
// JSON buffer internal/cloud started as. Per-vehicle condensed logs,
// flight-recorder (blackbox) dumps, and metric snapshots flow through a
// sharded ingestion front end into an LSM-tree store — an arena-backed
// sorted memtable, immutable sorted runs with bloom filters, size-tiered
// compaction, and a checksummed write-ahead log with crash-recovery
// replay — keyed by (vehicle, virtual-time). A B+-tree secondary index
// keyed by (kind, virtual-time) answers kind-first range queries ("all
// reactive-brake events for vehicles 100–200 in hour 3") without scanning
// the primary space.
//
// Everything in the store is deterministic: run files, the manifest, and
// query results are byte-identical for any ingest shard count and any
// -workers value, so the same diff-based determinism tests that pin the
// simulator pin the storage engine (DESIGN.md §14).
package telemetry

import (
	"encoding/binary"
	"time"
)

// Kind classifies one telemetry event. The numeric value is part of the
// on-disk key encoding, so the enum is append-only.
type Kind uint16

const (
	// KindEpoch is the per-vehicle per-epoch condensed snapshot (state,
	// SoC, odometer, trips) — the fleet's heartbeat stream.
	KindEpoch Kind = iota
	// KindAssign records a dispatch decision (rider → vehicle).
	KindAssign
	// KindPickup records a rider boarding.
	KindPickup
	// KindDropoff records a completed trip.
	KindDropoff
	// KindCollision records an obstacle contact.
	KindCollision
	// KindReactiveBrake records a radar/sonar safety-path engagement.
	KindReactiveBrake
	// KindHalt records a vehicle leaving service (dead pack).
	KindHalt
	// KindBlackbox is one flight-recorder dump line (obs.Dump JSON).
	KindBlackbox
	// KindMetric is a metrics-registry snapshot blob.
	KindMetric
	// KindLog is one condensed operational-log line (per-cycle trace or
	// cloud.LogEntry style records).
	KindLog

	numKinds
)

// kindNames is the fixed Kind↔string table; order matches the enum.
var kindNames = [numKinds]string{
	"epoch", "assign", "pickup", "dropoff", "collision",
	"reactive-brake", "halt", "blackbox", "metric", "log",
}

// String returns the kind's stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a kind name; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// FleetVehicle is the pseudo-vehicle id carrying fleet-wide events (metric
// snapshots) that belong to no single vehicle.
const FleetVehicle uint32 = 1<<32 - 1

// Key orders the primary space: vehicle-major, then virtual time, then
// kind, then a sequence disambiguator assigned at ingest so concurrent
// events at one (vehicle, t, kind) coordinate keep their submission order.
type Key struct {
	Vehicle uint32
	TMs     uint64 // virtual milliseconds
	Kind    Kind
	Seq     uint32
}

// KeySize is the fixed encoded key length.
const KeySize = 18

// appendKey encodes k big-endian so lexicographic byte order equals the
// (vehicle, t, kind, seq) order.
//
//sov:hotpath
func appendKey(b []byte, k Key) []byte {
	var buf [KeySize]byte
	binary.BigEndian.PutUint32(buf[0:4], k.Vehicle)
	binary.BigEndian.PutUint64(buf[4:12], k.TMs)
	binary.BigEndian.PutUint16(buf[12:14], uint16(k.Kind))
	binary.BigEndian.PutUint32(buf[14:18], k.Seq)
	return append(b, buf[:]...)
}

// decodeKey reads an encoded key back.
//
//sov:hotpath
func decodeKey(b []byte) Key {
	return Key{
		Vehicle: binary.BigEndian.Uint32(b[0:4]),
		TMs:     binary.BigEndian.Uint64(b[4:12]),
		Kind:    Kind(binary.BigEndian.Uint16(b[12:14])),
		Seq:     binary.BigEndian.Uint32(b[14:18]),
	}
}

// Less orders keys (vehicle, t, kind, seq).
//
//sov:hotpath
func (k Key) Less(o Key) bool {
	if k.Vehicle != o.Vehicle {
		return k.Vehicle < o.Vehicle
	}
	if k.TMs != o.TMs {
		return k.TMs < o.TMs
	}
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	return k.Seq < o.Seq
}

// Event is one telemetry record: a key plus an opaque payload (typically
// compact JSON). Payload aliases store-owned arenas on the read path;
// callers that retain events must copy.
type Event struct {
	Key     Key
	Payload []byte
}

// VirtualMs converts a virtual-time duration to the key's millisecond
// resolution.
func VirtualMs(t time.Duration) uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t / time.Millisecond)
}
