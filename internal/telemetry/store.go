package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sov/internal/parallel"
)

// Options sizes a store.
type Options struct {
	// FlushBytes is the memtable size that triggers a flush to a new
	// sorted run. Flush decisions are a pure function of ingested bytes,
	// which is what makes crash-recovery replay land on identical runs.
	FlushBytes int
	// Shards is the ingest fan-out: batches are partitioned by
	// vehicle%Shards, sorted shard-parallel over the worker pool, and
	// merged serially, so the stored bytes are identical for any value.
	Shards int
	// NoCompact disables size-tiered compaction (benchmarks isolate the
	// pure write path with it).
	NoCompact bool
}

// DefaultOptions returns the deployed configuration: 256 KB memtables,
// 8-way sharded ingest.
func DefaultOptions() Options {
	return Options{FlushBytes: 256 << 10, Shards: 8}
}

// Stats counts the store's I/O work. Write amplification is
// (WAL + run bytes written) / user bytes; read amplification for a query
// is run bytes read / result bytes.
type Stats struct {
	Events          int64 // events ingested
	UserBytes       int64 // key+payload bytes handed to Ingest
	WALBytes        int64 // bytes appended to the write-ahead log
	RunBytesWritten int64 // bytes written to run files (flush + compaction)
	RunBytesRead    int64 // data-block bytes read back
	BlocksRead      int64 // data blocks fetched
	BloomSkips      int64 // point reads short-circuited by a bloom filter
	Flushes         int64
	Compactions     int64
	Replayed        int64 // events recovered from the WAL at open
}

// WriteAmplification returns total storage writes per user byte.
func (s Stats) WriteAmplification() float64 {
	if s.UserBytes == 0 {
		return 0
	}
	return float64(s.WALBytes+s.RunBytesWritten) / float64(s.UserBytes)
}

// Store is the LSM-tree telemetry store rooted at one directory:
// MANIFEST, wal.log, and run-*.sst files. Not safe for concurrent use —
// the fleet ingests from its serial epoch barrier, and queries run
// between ingest batches.
type Store struct {
	dir  string
	opts Options

	mem     *memtable
	runs    []*run // ascending id = oldest first
	nextRun uint64
	seq     uint64 // global event sequence (Key.Seq)
	wal     *walWriter

	idx *bptree // lazy secondary index; nil until first kind query

	stats Stats

	// reused ingest scratch
	shardIdx   [][]int32
	batchEnts  []memEntry
	walBody    []byte
	heads      []int
	tierCounts map[int][]int
}

const manifestName = "MANIFEST"

// Open loads (or creates) a store in dir, replaying any WAL tail left by
// a crash through the normal ingest path so the recovered state — runs,
// manifest, memtable — is byte-identical to what a non-crashed store
// would hold.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 256 << 10
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		mem:        newMemtable(),
		nextRun:    1,
		tierCounts: make(map[int][]int),
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	// Replay the WAL tail before opening it for append: these batches were
	// ingested but not yet flushed when the store last stopped.
	batches, _, err := readWAL(dir)
	if err != nil {
		return nil, err
	}
	s.wal, err = openWAL(dir)
	if err != nil {
		return nil, err
	}
	lastFlushed := -1
	for i, body := range batches {
		events, err := decodeBatchBody(body)
		if err != nil {
			return nil, fmt.Errorf("telemetry: wal replay: %w", err)
		}
		for _, e := range events {
			if uint64(e.Key.Seq) >= s.seq {
				s.seq = uint64(e.Key.Seq) + 1
			}
			s.stats.Replayed++
		}
		flushesBefore := s.stats.Flushes
		if err := s.apply(events); err != nil {
			return nil, err
		}
		if s.stats.Flushes != flushesBefore {
			lastFlushed = i
		}
	}
	// A flush mid-replay truncated the log; re-secure the batches that are
	// still only in the memtable so a second crash replays them too.
	if lastFlushed >= 0 {
		if err := s.wal.reset(); err != nil {
			return nil, err
		}
		for _, body := range batches[lastFlushed+1:] {
			if err := s.wal.appendBatch(body); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Ingest assigns sequence numbers, logs the batch to the WAL, and applies
// it to the memtable (flushing and compacting when thresholds trip).
// Events must carry Vehicle, TMs, Kind, and Payload; Seq is assigned here
// in submission order.
func (s *Store) Ingest(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	for i := range events {
		events[i].Key.Seq = uint32(s.seq)
		s.seq++
		s.stats.Events++
		s.stats.UserBytes += int64(KeySize + len(events[i].Payload))
	}
	s.walBody = appendBatchBody(s.walBody[:0], events)
	if err := s.wal.appendBatch(s.walBody); err != nil {
		return err
	}
	s.stats.WALBytes += int64(8 + len(s.walBody))
	return s.apply(events)
}

// apply shard-sorts a batch and folds it into the memtable and (if built)
// the secondary index, then runs the flush/compaction policy. The merged
// order is the global key order whatever the shard count.
func (s *Store) apply(events []Event) error {
	nsh := s.opts.Shards
	if nsh > len(events) {
		nsh = len(events)
	}
	if nsh < 1 {
		nsh = 1
	}
	for len(s.shardIdx) < nsh {
		s.shardIdx = append(s.shardIdx, nil)
	}
	shards := s.shardIdx[:nsh]
	for i := range shards {
		shards[i] = shards[i][:0]
	}
	for i := range events {
		sh := int(events[i].Key.Vehicle) % nsh
		shards[sh] = append(shards[sh], int32(i))
	}
	// Shard phase: each shard's slice sorts independently on the pool.
	parallel.For(nsh, 1, func(start, end int) {
		for sh := start; sh < end; sh++ {
			idx := shards[sh]
			sort.Slice(idx, func(a, b int) bool {
				return events[idx[a]].Key.Less(events[idx[b]].Key)
			})
		}
	})
	// Serial merge phase: k-way merge of the sorted shards into arena
	// order; the memtable folds the result in with one linear pass.
	ents := s.batchEnts[:0]
	for len(s.heads) < nsh {
		s.heads = append(s.heads, 0)
	}
	heads := s.heads[:nsh]
	for i := range heads {
		heads[i] = 0
	}
	for {
		best := -1
		for sh := 0; sh < nsh; sh++ {
			if heads[sh] >= len(shards[sh]) {
				continue
			}
			k := events[shards[sh][heads[sh]]].Key
			if best < 0 || k.Less(events[shards[best][heads[best]]].Key) {
				best = sh
			}
		}
		if best < 0 {
			break
		}
		e := events[shards[best][heads[best]]]
		heads[best]++
		ents = append(ents, s.mem.put(e.Key, e.Payload))
		if s.idx != nil {
			s.idx.insert(skeyOf(e.Key))
		}
	}
	s.batchEnts = ents[:0]
	s.mem.mergeBatch(ents)
	if s.mem.sizeBytes() >= s.opts.FlushBytes {
		if err := s.flush(); err != nil {
			return err
		}
	}
	return nil
}

// flush writes the memtable as a new level-0 run, durably records it in
// the manifest, resets the WAL, and triggers compaction.
func (s *Store) flush() error {
	if s.mem.len() == 0 {
		return nil
	}
	id := s.nextRun
	s.nextRun++
	w, err := newRunWriter(runPath(s.dir, id), s.mem.len())
	if err != nil {
		return err
	}
	for _, e := range s.mem.entries {
		if err := w.add(e.key, s.mem.arena[e.off:e.off+e.n]); err != nil {
			return err
		}
	}
	meta, err := w.finish()
	if err != nil {
		return err
	}
	meta.id = id
	meta.tier = tierOf(meta.bytes)
	s.stats.RunBytesWritten += meta.bytes
	s.stats.Flushes++
	r, err := openRun(runPath(s.dir, id), meta)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, r)
	s.mem.reset()
	if err := s.writeManifest(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	if !s.opts.NoCompact {
		return s.compact()
	}
	return nil
}

// Size-tiered compaction: runs are bucketed by size tier (quadrupling
// widths); when a tier accumulates tierFanout runs, the oldest tierFanout
// merge into one run a tier up. Write amplification stays O(log n) per
// byte instead of the O(n) a single sorted level would cost.

const (
	tierBase   = 16 << 10
	tierFanout = 4
)

// tierOf buckets a run size.
func tierOf(bytes int64) int {
	t := 0
	for x := bytes / tierBase; x >= tierFanout; x /= tierFanout {
		t++
	}
	return t
}

// compact repeatedly merges the lowest overflowing tier until no tier
// holds tierFanout runs.
func (s *Store) compact() error {
	for {
		clear(s.tierCounts)
		maxTier := 0
		for i, r := range s.runs {
			s.tierCounts[r.meta.tier] = append(s.tierCounts[r.meta.tier], i)
			if r.meta.tier > maxTier {
				maxTier = r.meta.tier
			}
		}
		victim := -1
		for t := 0; t <= maxTier; t++ {
			if len(s.tierCounts[t]) >= tierFanout {
				victim = t
				break
			}
		}
		if victim < 0 {
			return nil
		}
		// Oldest tierFanout runs of the tier (runs are id-ordered).
		picks := s.tierCounts[victim][:tierFanout]
		if err := s.mergeRunsAt(picks); err != nil {
			return err
		}
	}
}

// mergeRunsAt merges the runs at the given positions (ascending) into a
// new run, deletes the inputs, and rewrites the manifest.
func (s *Store) mergeRunsAt(positions []int) error {
	victims := make([]*run, len(positions))
	var total uint64
	for i, p := range positions {
		victims[i] = s.runs[p]
		total += s.runs[p].meta.entries
	}
	id := s.nextRun
	s.nextRun++
	w, err := newRunWriter(runPath(s.dir, id), int(total))
	if err != nil {
		return err
	}
	if err := mergeRuns(victims, &s.stats, w); err != nil {
		return err
	}
	meta, err := w.finish()
	if err != nil {
		return err
	}
	meta.id = id
	meta.tier = tierOf(meta.bytes)
	s.stats.RunBytesWritten += meta.bytes
	s.stats.Compactions++

	// Replace victims with the merged run, keeping id order.
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	kept := s.runs[:0]
	for i, r := range s.runs {
		if drop[i] {
			r.close()
			os.Remove(runPath(s.dir, r.meta.id))
			continue
		}
		kept = append(kept, r)
	}
	nr, err := openRun(runPath(s.dir, id), meta)
	if err != nil {
		return err
	}
	s.runs = append(kept, nr)
	sort.Slice(s.runs, func(i, j int) bool { return s.runs[i].meta.id < s.runs[j].meta.id })
	return s.writeManifest()
}

// Flush forces the memtable to disk (used by Close and checkpoints).
func (s *Store) Flush() error { return s.flush() }

// Close flushes the memtable, rewrites the manifest, and closes every
// file. The WAL is empty after a clean close.
func (s *Store) Close() error {
	var first error
	if err := s.flush(); err != nil {
		first = err
	}
	if err := s.writeManifest(); err != nil && first == nil {
		first = err
	}
	if err := s.wal.close(); err != nil && first == nil {
		first = err
	}
	for _, r := range s.runs {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// crash closes every file handle WITHOUT flushing the memtable or
// resetting the WAL — the crash-recovery tests' process-kill stand-in.
func (s *Store) crash() {
	s.wal.close()
	for _, r := range s.runs {
		r.close()
	}
}

// Stats returns a copy of the I/O counters.
func (s *Store) Stats() Stats { return s.stats }

// Runs reports the live run count and total run bytes.
func (s *Store) Runs() (count int, bytes int64) {
	for _, r := range s.runs {
		bytes += r.meta.bytes
	}
	return len(s.runs), bytes
}

// MemLen reports buffered (unflushed) events.
func (s *Store) MemLen() int { return s.mem.len() }

// Get returns the payload for an exact key: memtable first, then runs
// newest-to-oldest with bloom-filter short-circuiting.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	if p, ok := s.mem.get(k); ok {
		return p, true, nil
	}
	var keyBuf [KeySize]byte
	for i := len(s.runs) - 1; i >= 0; i-- {
		p, ok, err := s.runs[i].get(k, keyBuf[:0], &s.stats)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return p, true, nil
		}
	}
	return nil, false, nil
}

// manifest serialization — line-oriented text, atomically replaced, byte-
// identical for a given run set.

func (s *Store) writeManifest() error {
	var b []byte
	b = append(b, "sovtelemetry manifest v1\n"...)
	b = append(b, "next-run "...)
	b = strconv.AppendUint(b, s.nextRun, 10)
	b = append(b, "\nseq "...)
	b = strconv.AppendUint(b, s.seq, 10)
	b = append(b, '\n')
	for _, r := range s.runs {
		m := r.meta
		b = append(b, "run "...)
		b = appendUintPad(b, m.id, 6)
		b = append(b, " tier "...)
		b = strconv.AppendInt(b, int64(m.tier), 10)
		b = append(b, " entries "...)
		b = strconv.AppendUint(b, m.entries, 10)
		b = append(b, " bytes "...)
		b = strconv.AppendInt(b, m.bytes, 10)
		b = append(b, " min "...)
		b = appendKeyHex(b, m.minKey)
		b = append(b, " max "...)
		b = appendKeyHex(b, m.maxKey)
		b = append(b, " crc "...)
		b = appendUintHex(b, uint64(m.crc), 8)
		b = append(b, '\n')
	}
	b = append(b, "end\n"...)
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, manifestName))
}

func (s *Store) loadManifest() error {
	f, err := os.Open(filepath.Join(s.dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != "sovtelemetry manifest v1" {
		return errors.New("telemetry: bad manifest header")
	}
	sawEnd := false
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "next-run":
			s.nextRun, err = strconv.ParseUint(fields[1], 10, 64)
		case "seq":
			s.seq, err = strconv.ParseUint(fields[1], 10, 64)
		case "run":
			if len(fields) != 14 {
				return fmt.Errorf("telemetry: bad manifest run line %q", sc.Text())
			}
			var m runMeta
			m.id, err = strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return err
			}
			tier, err := strconv.Atoi(fields[3])
			if err != nil {
				return err
			}
			m.tier = tier
			m.entries, err = strconv.ParseUint(fields[5], 10, 64)
			if err != nil {
				return err
			}
			m.bytes, err = strconv.ParseInt(fields[7], 10, 64)
			if err != nil {
				return err
			}
			r, err := openRun(runPath(s.dir, m.id), m)
			if err != nil {
				return err
			}
			s.runs = append(s.runs, r)
		case "end":
			sawEnd = true
		default:
			return fmt.Errorf("telemetry: unknown manifest line %q", sc.Text())
		}
		if err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawEnd {
		return errors.New("telemetry: truncated manifest")
	}
	sort.Slice(s.runs, func(i, j int) bool { return s.runs[i].meta.id < s.runs[j].meta.id })
	return nil
}

// ManifestBytes returns the manifest's current on-disk contents (the
// determinism tests diff it across shard/worker counts).
func (s *Store) ManifestBytes() ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, manifestName))
}

const hexDigits = "0123456789abcdef"

func appendUintPad(b []byte, v uint64, width int) []byte {
	var tmp [20]byte
	n := len(strconv.AppendUint(tmp[:0], v, 10))
	for i := n; i < width; i++ {
		b = append(b, '0')
	}
	return strconv.AppendUint(b, v, 10)
}

func appendUintHex(b []byte, v uint64, width int) []byte {
	for i := width - 1; i >= 0; i-- {
		b = append(b, hexDigits[(v>>(4*i))&0xf])
	}
	return b
}

func appendKeyHex(b []byte, k Key) []byte {
	var kb [KeySize]byte
	enc := appendKey(kb[:0], k)
	for _, c := range enc {
		b = append(b, hexDigits[c>>4], hexDigits[c&0xf])
	}
	return b
}
