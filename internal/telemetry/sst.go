package telemetry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sov/internal/cloud"
)

// Sorted immutable runs are the LSM tree's on-disk level unit. A run file
// is a sequence of ~4 KB data blocks (each optionally deflate-compressed
// through internal/cloud's codec when that saves space), followed by a
// block index (first key, offset, stored/raw lengths, per-block crc), the
// run's bloom filter, and a fixed footer. Point reads consult the bloom,
// binary-search the index, and read exactly one block; range scans read
// only the overlapping blocks — the index is what makes the range query
// "indexed" rather than a file scan.
//
// Every byte of a run is a pure function of the sorted entries it holds,
// so run files are byte-identical across shard/worker counts and across a
// crash-recovery replay.

const (
	runMagic       = "SOVTRUN1"
	runFooterMagic = "SOVTEND1"
	blockTarget    = 4096 // uncompressed data-block payload target
)

// blockMeta is one index entry.
type blockMeta struct {
	firstKey   Key
	compressed bool
	off        uint64
	storedLen  uint32
	rawLen     uint32
	count      uint32
	crc        uint32
}

const blockMetaSize = KeySize + 1 + 8 + 4 + 4 + 4 + 4

// footer layout: indexOff u64 | blockCount u32 | bloomOff u64 | bloomLen
// u32 | entryCount u64 | minKey | maxKey | metaCRC u32 | magic.
const footerSize = 8 + 4 + 8 + 4 + 8 + KeySize + KeySize + 4 + 8

// runWriter streams sorted entries into a run file.
type runWriter struct {
	f       *os.File
	bw      *bufio.Writer
	off     uint64
	block   []byte // current uncompressed block body
	blockN  uint32
	keyBuf  []byte
	index   []blockMeta
	filter  *bloom
	first   Key
	minKey  Key
	maxKey  Key
	count   uint64
	started bool
	written int64
}

func newRunWriter(path string, expectEntries int) (*runWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &runWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), filter: newBloom(expectEntries)}
	if _, err := w.bw.WriteString(runMagic); err != nil {
		f.Close()
		return nil, err
	}
	w.off = uint64(len(runMagic))
	w.written = int64(len(runMagic))
	return w, nil
}

// add appends one entry; keys must arrive in strictly ascending order.
func (w *runWriter) add(k Key, payload []byte) error {
	if !w.started {
		w.minKey = k
		w.started = true
	}
	w.maxKey = k
	if w.blockN == 0 {
		w.first = k
	}
	w.keyBuf = appendKey(w.keyBuf[:0], k)
	w.filter.add(w.keyBuf)
	w.block = append(w.block, w.keyBuf...)
	w.block = binary.AppendUvarint(w.block, uint64(len(payload)))
	w.block = append(w.block, payload...)
	w.blockN++
	w.count++
	if len(w.block) >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

// flushBlock writes the pending block, compressing when it pays.
func (w *runWriter) flushBlock() error {
	if w.blockN == 0 {
		return nil
	}
	body := w.block
	compressed := false
	if c, err := cloud.Compress(body); err == nil && len(c) < len(body)-len(body)/10 {
		body, compressed = c, true
	}
	w.index = append(w.index, blockMeta{
		firstKey:   w.first,
		compressed: compressed,
		off:        w.off,
		storedLen:  uint32(len(body)),
		rawLen:     uint32(len(w.block)),
		count:      w.blockN,
		crc:        crc32.ChecksumIEEE(body),
	})
	if _, err := w.bw.Write(body); err != nil {
		return err
	}
	w.off += uint64(len(body))
	w.written += int64(len(body))
	w.block = w.block[:0]
	w.blockN = 0
	return nil
}

// finish writes index, bloom, and footer, then closes the file. It returns
// the run's metadata for the manifest.
func (w *runWriter) finish() (meta runMeta, err error) {
	if err := w.flushBlock(); err != nil {
		w.f.Close()
		return runMeta{}, err
	}
	indexOff := w.off
	var metaBuf []byte
	for _, bm := range w.index {
		metaBuf = appendKey(metaBuf, bm.firstKey)
		if bm.compressed {
			metaBuf = append(metaBuf, 1)
		} else {
			metaBuf = append(metaBuf, 0)
		}
		metaBuf = binary.LittleEndian.AppendUint64(metaBuf, bm.off)
		metaBuf = binary.LittleEndian.AppendUint32(metaBuf, bm.storedLen)
		metaBuf = binary.LittleEndian.AppendUint32(metaBuf, bm.rawLen)
		metaBuf = binary.LittleEndian.AppendUint32(metaBuf, bm.count)
		metaBuf = binary.LittleEndian.AppendUint32(metaBuf, bm.crc)
	}
	bloomOff := indexOff + uint64(len(metaBuf))
	bloomBytes := w.filter.marshal()
	metaBuf = append(metaBuf, bloomBytes...)

	footer := make([]byte, 0, footerSize)
	footer = binary.LittleEndian.AppendUint64(footer, indexOff)
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(w.index)))
	footer = binary.LittleEndian.AppendUint64(footer, bloomOff)
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(bloomBytes)))
	footer = binary.LittleEndian.AppendUint64(footer, w.count)
	footer = appendKey(footer, w.minKey)
	footer = appendKey(footer, w.maxKey)
	crc := crc32.ChecksumIEEE(metaBuf)
	footer = binary.LittleEndian.AppendUint32(footer, crc)
	footer = append(footer, runFooterMagic...)

	if _, err := w.bw.Write(metaBuf); err != nil {
		w.f.Close()
		return runMeta{}, err
	}
	if _, err := w.bw.Write(footer); err != nil {
		w.f.Close()
		return runMeta{}, err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return runMeta{}, err
	}
	w.written += int64(len(metaBuf) + len(footer))
	if err := w.f.Close(); err != nil {
		return runMeta{}, err
	}
	return runMeta{
		entries: w.count,
		bytes:   w.written,
		minKey:  w.minKey,
		maxKey:  w.maxKey,
		crc:     crc,
	}, nil
}

// runMeta is what the manifest records per run.
type runMeta struct {
	id      uint64
	tier    int
	entries uint64
	bytes   int64
	minKey  Key
	maxKey  Key
	crc     uint32
}

// run is an open immutable run: its index and bloom resident in memory,
// data blocks read on demand.
type run struct {
	meta     runMeta
	f        *os.File
	index    []blockMeta
	filter   *bloom
	scratch  []byte // block read buffer
	inflated []byte // decompression target
}

// openRun loads a run's index and bloom and validates the footer.
func openRun(path string, meta runMeta) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(runMagic)+footerSize) {
		f.Close()
		return nil, fmt.Errorf("telemetry: run %s truncated", path)
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[footerSize-8:]) != runFooterMagic {
		f.Close()
		return nil, fmt.Errorf("telemetry: run %s bad footer magic", path)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:8])
	blockCount := binary.LittleEndian.Uint32(footer[8:12])
	bloomOff := binary.LittleEndian.Uint64(footer[12:20])
	bloomLen := binary.LittleEndian.Uint32(footer[20:24])
	entryCount := binary.LittleEndian.Uint64(footer[24:32])
	minKey := decodeKey(footer[32 : 32+KeySize])
	maxKey := decodeKey(footer[32+KeySize : 32+2*KeySize])
	wantCRC := binary.LittleEndian.Uint32(footer[32+2*KeySize : 32+2*KeySize+4])

	metaLen := bloomOff + uint64(bloomLen) - indexOff
	metaBuf := make([]byte, metaLen)
	if _, err := f.ReadAt(metaBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(metaBuf) != wantCRC {
		f.Close()
		return nil, fmt.Errorf("telemetry: run %s index crc mismatch", path)
	}
	r := &run{meta: meta, f: f}
	r.meta.entries = entryCount
	r.meta.minKey, r.meta.maxKey, r.meta.crc = minKey, maxKey, wantCRC
	idxBuf := metaBuf[:bloomOff-indexOff]
	if len(idxBuf) != int(blockCount)*blockMetaSize {
		f.Close()
		return nil, fmt.Errorf("telemetry: run %s index size mismatch", path)
	}
	r.index = make([]blockMeta, blockCount)
	for i := range r.index {
		b := idxBuf[i*blockMetaSize:]
		r.index[i] = blockMeta{
			firstKey:   decodeKey(b[:KeySize]),
			compressed: b[KeySize] == 1,
			off:        binary.LittleEndian.Uint64(b[KeySize+1:]),
			storedLen:  binary.LittleEndian.Uint32(b[KeySize+9:]),
			rawLen:     binary.LittleEndian.Uint32(b[KeySize+13:]),
			count:      binary.LittleEndian.Uint32(b[KeySize+17:]),
			crc:        binary.LittleEndian.Uint32(b[KeySize+21:]),
		}
	}
	if r.filter = unmarshalBloom(metaBuf[bloomOff-indexOff:]); r.filter == nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: run %s bad bloom", path)
	}
	return r, nil
}

func (r *run) close() error { return r.f.Close() }

// readBlock fetches and (if needed) inflates block i, charging the read to
// st. The returned slice aliases the run's scratch buffers.
func (r *run) readBlock(i int, st *Stats) ([]byte, error) {
	bm := r.index[i]
	if cap(r.scratch) < int(bm.storedLen) {
		r.scratch = make([]byte, bm.storedLen)
	}
	buf := r.scratch[:bm.storedLen]
	if _, err := r.f.ReadAt(buf, int64(bm.off)); err != nil {
		return nil, err
	}
	st.BlocksRead++
	st.RunBytesRead += int64(bm.storedLen)
	if crc32.ChecksumIEEE(buf) != bm.crc {
		return nil, fmt.Errorf("telemetry: run block %d crc mismatch", i)
	}
	if !bm.compressed {
		return buf, nil
	}
	out, err := cloud.Decompress(buf)
	if err != nil {
		return nil, err
	}
	r.inflated = out
	return out, nil
}

// blockFor returns the index of the block that could contain k.
func (r *run) blockFor(k Key) int {
	i := sort.Search(len(r.index), func(i int) bool {
		return k.Less(r.index[i].firstKey)
	})
	return i - 1 // -1 when k precedes the first block
}

// get returns the payload for an exact key. The bloom filter short-
// circuits most absent keys without any block I/O.
func (r *run) get(k Key, keyBuf []byte, st *Stats) ([]byte, bool, error) {
	if k.Less(r.meta.minKey) || r.meta.maxKey.Less(k) {
		return nil, false, nil
	}
	keyBuf = appendKey(keyBuf[:0], k)
	if !r.filter.test(keyBuf) {
		st.BloomSkips++
		return nil, false, nil
	}
	bi := r.blockFor(k)
	if bi < 0 {
		return nil, false, nil
	}
	block, err := r.readBlock(bi, st)
	if err != nil {
		return nil, false, err
	}
	found := false
	var payload []byte
	err = decodeBlock(block, func(ek Key, p []byte) bool {
		if ek == k {
			payload, found = p, true
			return false
		}
		return !k.Less(ek)
	})
	return payload, found, err
}

// scan calls fn for every entry with lo <= key <= hi in key order, reading
// only the blocks that overlap the range.
func (r *run) scan(lo, hi Key, st *Stats, fn func(k Key, payload []byte) bool) error {
	if hi.Less(r.meta.minKey) || r.meta.maxKey.Less(lo) {
		return nil
	}
	bi := r.blockFor(lo)
	if bi < 0 {
		bi = 0
	}
	for ; bi < len(r.index); bi++ {
		if hi.Less(r.index[bi].firstKey) {
			return nil
		}
		block, err := r.readBlock(bi, st)
		if err != nil {
			return err
		}
		stop := false
		err = decodeBlock(block, func(k Key, p []byte) bool {
			if hi.Less(k) {
				stop = true
				return false
			}
			if k.Less(lo) {
				return true
			}
			if !fn(k, p) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// decodeBlock walks a raw block's entries.
func decodeBlock(b []byte, fn func(k Key, payload []byte) bool) error {
	for len(b) > 0 {
		if len(b) < KeySize {
			return fmt.Errorf("telemetry: short block entry")
		}
		k := decodeKey(b)
		b = b[KeySize:]
		pn, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < pn {
			return fmt.Errorf("telemetry: short block payload")
		}
		if !fn(k, b[n:n+int(pn)]) {
			return nil
		}
		b = b[n+int(pn):]
	}
	return nil
}

// runPath names run id's file.
func runPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("run-%06d.sst", id))
}

// iterators for merging runs during compaction.

// runIter walks a whole run sequentially.
type runIter struct {
	r     *run
	st    *Stats
	block []byte
	bi    int
	key   Key
	val   []byte
	done  bool
	err   error
}

func newRunIter(r *run, st *Stats) *runIter {
	it := &runIter{r: r, st: st, bi: -1}
	it.next()
	return it
}

// next advances to the following entry; done is set at end.
func (it *runIter) next() {
	for {
		if len(it.block) == 0 {
			it.bi++
			if it.bi >= len(it.r.index) {
				it.done = true
				return
			}
			b, err := it.r.readBlock(it.bi, it.st)
			if err != nil {
				it.err, it.done = err, true
				return
			}
			// Copy: readBlock reuses the run's scratch buffer and the
			// iterator must survive interleaved reads from sibling runs.
			it.block = append([]byte(nil), b...)
		}
		b := it.block
		if len(b) < KeySize {
			it.err, it.done = fmt.Errorf("telemetry: short iter entry"), true
			return
		}
		it.key = decodeKey(b)
		b = b[KeySize:]
		pn, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < pn {
			it.err, it.done = fmt.Errorf("telemetry: short iter payload"), true
			return
		}
		it.val = b[n : n+int(pn)]
		it.block = b[n+int(pn):]
		return
	}
}

// mergeRuns streams the union of the given runs (newest-wins on equal
// keys, which cannot occur in practice since Seq disambiguates) into a new
// run file via w. Runs must be passed oldest-first.
func mergeRuns(runs []*run, st *Stats, w *runWriter) error {
	iters := make([]*runIter, len(runs))
	for i, r := range runs {
		iters[i] = newRunIter(r, st)
	}
	for {
		best := -1
		for i, it := range iters {
			if it.done {
				if it.err != nil {
					return it.err
				}
				continue
			}
			if best < 0 || it.key.Less(iters[best].key) {
				best = i
			} else if it.key == iters[best].key {
				// Equal keys: the later (newer) run wins; skip the older.
				iters[best].next()
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		if err := w.add(iters[best].key, iters[best].val); err != nil {
			return err
		}
		iters[best].next()
		if iters[best].err != nil && iters[best].done {
			if err := iters[best].err; err != nil {
				return err
			}
		}
	}
}
