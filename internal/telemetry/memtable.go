package telemetry

import "sort"

// memEntry locates one event inside the memtable arena.
type memEntry struct {
	key Key
	off int32
	n   int32
}

// memtable is the mutable head of the LSM tree: payload bytes live in one
// append-only arena, order lives in a sorted entry slice. Batches arrive
// pre-sorted from the shard phase and are folded in with a single linear
// merge, so steady-state ingest does per-event O(1) amortized work and the
// arena/entry slices are the only growth points.
type memtable struct {
	arena   []byte
	entries []memEntry
	scratch []memEntry // reused merge target
}

// newMemtable pre-sizes the arena so early batches do not churn.
func newMemtable() *memtable {
	return &memtable{
		arena:   make([]byte, 0, 64<<10),
		entries: make([]memEntry, 0, 1024),
		scratch: make([]memEntry, 0, 1024),
	}
}

// sizeBytes is the flush-accounting size: payload bytes plus fixed key
// overhead per entry, mirroring what the run file will serialize.
func (m *memtable) sizeBytes() int {
	return len(m.arena) + len(m.entries)*(KeySize+2)
}

func (m *memtable) len() int { return len(m.entries) }

// put stores one event's payload in the arena and returns its entry.
//
//sov:hotpath
func (m *memtable) put(k Key, payload []byte) memEntry {
	off := int32(len(m.arena))
	m.arena = append(m.arena, payload...)
	return memEntry{key: k, off: off, n: int32(len(payload))}
}

// mergeBatch folds a sorted batch of entries (already put into the arena)
// into the sorted entry slice with one linear pass. Duplicate keys cannot
// occur: the ingest front end disambiguates with Key.Seq.
func (m *memtable) mergeBatch(batch []memEntry) {
	if len(batch) == 0 {
		return
	}
	if len(m.entries) == 0 {
		m.entries = append(m.entries[:0], batch...)
		return
	}
	// Common fast path: the batch starts after the current tail (time moves
	// forward within one vehicle), append without merging.
	if m.entries[len(m.entries)-1].key.Less(batch[0].key) {
		m.entries = append(m.entries, batch...)
		return
	}
	out := m.scratch[:0]
	i, j := 0, 0
	for i < len(m.entries) && j < len(batch) {
		if m.entries[i].key.Less(batch[j].key) {
			out = append(out, m.entries[i])
			i++
		} else {
			out = append(out, batch[j])
			j++
		}
	}
	out = append(out, m.entries[i:]...)
	out = append(out, batch[j:]...)
	m.scratch = m.entries // recycle the old slice as the next merge target
	m.entries = out
}

// get returns the payload for an exact key.
func (m *memtable) get(k Key) ([]byte, bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return !m.entries[i].key.Less(k)
	})
	if i < len(m.entries) && m.entries[i].key == k {
		e := m.entries[i]
		return m.arena[e.off : e.off+e.n], true
	}
	return nil, false
}

// scan calls fn for every entry with lo <= key <= hi, in key order.
// Returning false stops the scan.
func (m *memtable) scan(lo, hi Key, fn func(k Key, payload []byte) bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return !m.entries[i].key.Less(lo)
	})
	for ; i < len(m.entries); i++ {
		e := m.entries[i]
		if hi.Less(e.key) {
			return
		}
		if !fn(e.key, m.arena[e.off:e.off+e.n]) {
			return
		}
	}
}

// reset clears the memtable for reuse after a flush, keeping capacity.
func (m *memtable) reset() {
	m.arena = m.arena[:0]
	m.entries = m.entries[:0]
}
