package parallel

import (
	"math/bits"
	"sync"
)

// Scratch-buffer pools. Hot kernels (SGM scanline aggregation, stereo cost
// vectors, FFT column gathers, KCF spectra, ICP reuse counters) borrow
// per-tile scratch here instead of allocating per call. Buffers are
// size-classed by power of two; Get returns a slice of the requested
// length whose contents are unspecified — callers must overwrite before
// reading (or use the Zeroed variants).
//
// Cross-vehicle sharing (fleet audit, DESIGN.md §11). These pools are
// process-global: in a fleet run every vehicle's kernels draw from the
// same free lists, concurrently. That is safe under one ownership rule —
// between Get and the matching Put a buffer has exactly one owner, and
// Put surrenders it: the caller must hold no alias past Put (no stashing
// a sub-slice in longer-lived state). Every repo call site follows the
// paired get/defer-put or get/use/put-in-same-frame shape; nothing
// retains pooled memory across a frame boundary. The floor-class rule in
// Put (a non-power-of-two cap files under the next class down) can only
// shrink the capacity a future Get sees, never splice two live buffers
// together, so aliasing can arise from a double Put alone — which the
// ownership rule forbids. TestPoolNoCrossOwnerAliasing churns the pools
// from many goroutines with per-owner tags (and the fleet's 64-vehicle
// -race test exercises the same property end to end through the full
// perception stack).

const poolClasses = 31

func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

type f64Pools struct{ classes [poolClasses]sync.Pool }

var f64pool f64Pools

// GetF64 returns a float64 scratch slice of length n (contents unspecified).
func GetF64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := f64pool.classes[c].Get(); v != nil {
		return (*(v.(*[]float64)))[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutF64 returns a slice obtained from GetF64 to its pool.
func PutF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c-- // cap is not a power of two: file under the floor class
	}
	full := s[:cap(s)]
	f64pool.classes[c].Put(&full)
}

type f32Pools struct{ classes [poolClasses]sync.Pool }

var f32pool f32Pools

// GetF32 returns a float32 scratch slice of length n (contents unspecified).
func GetF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := f32pool.classes[c].Get(); v != nil {
		return (*(v.(*[]float32)))[:n]
	}
	return make([]float32, n, 1<<c)
}

// PutF32 returns a slice obtained from GetF32 to its pool.
func PutF32(s []float32) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	full := s[:cap(s)]
	f32pool.classes[c].Put(&full)
}

type c128Pools struct{ classes [poolClasses]sync.Pool }

var c128pool c128Pools

// GetC128 returns a complex128 scratch slice of length n (contents
// unspecified).
func GetC128(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := c128pool.classes[c].Get(); v != nil {
		return (*(v.(*[]complex128)))[:n]
	}
	return make([]complex128, n, 1<<c)
}

// PutC128 returns a slice obtained from GetC128 to its pool.
func PutC128(s []complex128) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	full := s[:cap(s)]
	c128pool.classes[c].Put(&full)
}

// SlicePool is a size-classed free list for frame-rate scratch slices (NN
// activation tensors, ICP correspondence buffers, fused-object lists). The
// sync.Pool-backed Get*/Put* helpers above are the right tool for per-tile
// scratch inside a parallel kernel — contention-free, GC-aware — but their
// Put boxes the slice header, costing one small allocation per call. A
// SlicePool trades a mutex for a true zero-allocation steady state: Get pops
// a free slice and Put pushes it back with no boxing, so a control loop that
// borrows a few buffers per frame allocates nothing once warm. Returned
// slices have the requested length and unspecified contents.
type SlicePool[T any] struct {
	mu      sync.Mutex
	classes [poolClasses][][]T
	hits    int64
	misses  int64
}

// Get returns a slice of length n (contents unspecified, capacity the
// enclosing power of two).
func (p *SlicePool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	p.mu.Lock()
	if free := p.classes[c]; len(free) > 0 {
		s := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		p.hits++
		p.mu.Unlock()
		return s[:n]
	}
	p.misses++
	p.mu.Unlock()
	//sovlint:ignore hotalloc pool-miss slow path; amortized away once the size class is warm
	return make([]T, n, 1<<c)
}

// Put returns a slice obtained from Get to its size class for reuse.
func (p *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c-- // cap is not a power of two: file under the floor class
	}
	p.mu.Lock()
	p.classes[c] = append(p.classes[c], s[:cap(s)])
	p.mu.Unlock()
}

// Stats reports reuse hits and construction misses since creation.
func (p *SlicePool[T]) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

type i32Pools struct{ classes [poolClasses]sync.Pool }

var i32pool i32Pools

// GetI32 returns an int32 scratch slice of length n (contents unspecified) —
// the cost vectors of the fixed-point stereo kernels.
func GetI32(n int) []int32 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := i32pool.classes[c].Get(); v != nil {
		return (*(v.(*[]int32)))[:n]
	}
	//sovlint:ignore hotalloc pool-miss slow path; amortized away once the size class is warm
	return make([]int32, n, 1<<c)
}

// PutI32 returns a slice obtained from GetI32 to its pool.
func PutI32(s []int32) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	full := s[:cap(s)]
	//sovlint:ignore hotalloc sync.Pool boxing of the slice header; bytes are recycled, header churn is accepted
	i32pool.classes[c].Put(&full)
}

type u64Pools struct{ classes [poolClasses]sync.Pool }

var u64pool u64Pools

// GetU64 returns a uint64 scratch slice of length n (contents unspecified) —
// the packed SWAR lane words of the second-generation int8 kernels.
func GetU64(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := u64pool.classes[c].Get(); v != nil {
		return (*(v.(*[]uint64)))[:n]
	}
	//sovlint:ignore hotalloc pool-miss slow path; amortized away once the size class is warm
	return make([]uint64, n, 1<<c)
}

// PutU64 returns a slice obtained from GetU64 to its pool.
func PutU64(s []uint64) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	full := s[:cap(s)]
	//sovlint:ignore hotalloc sync.Pool boxing of the slice header; bytes are recycled, header churn is accepted
	u64pool.classes[c].Put(&full)
}

type intPools struct{ classes [poolClasses]sync.Pool }

var intpool intPools

// GetIntsZeroed returns an int scratch slice of length n with every element
// zero — the per-tile counter accumulators (e.g. kd-tree reuse counts).
func GetIntsZeroed(n int) []int {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if v := intpool.classes[c].Get(); v != nil {
		s := (*(v.(*[]int)))[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]int, n, 1<<c)
}

// PutInts returns a slice obtained from GetIntsZeroed to its pool.
func PutInts(s []int) {
	if cap(s) == 0 {
		return
	}
	c := sizeClass(cap(s))
	if 1<<c != cap(s) {
		c--
	}
	full := s[:cap(s)]
	intpool.classes[c].Put(&full)
}
