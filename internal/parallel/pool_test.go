package parallel

import (
	"sync"
	"testing"
)

// TestPoolNoCrossOwnerAliasing is the fleet-era pool hygiene regression
// test: many concurrent owners churn the global size-classed pools, each
// stamping a unique tag over its whole buffer and verifying the stamp
// survives until Put. If the pools ever handed one buffer to two live
// owners (double Put, size-class splice, racing free list), a foreign tag
// shows up — and under -race the write collision trips the detector too.
func TestPoolNoCrossOwnerAliasing(t *testing.T) {
	const (
		owners = 16
		rounds = 200
	)
	sizes := []int{1, 7, 64, 100, 1000, 4096}
	var wg sync.WaitGroup
	errs := make(chan string, owners)
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := sizes[(tag+r)%len(sizes)]
				f64 := GetF64(n)
				f32 := GetF32(n)
				i32 := GetI32(n)
				u64 := GetU64(n)
				ints := GetIntsZeroed(n)
				for i := 0; i < n; i++ {
					f64[i] = float64(tag)
					f32[i] = float32(tag)
					i32[i] = int32(tag)
					u64[i] = uint64(tag)
					if ints[i] != 0 {
						errs <- "GetIntsZeroed returned a dirty buffer"
						return
					}
					ints[i] = tag
				}
				for i := 0; i < n; i++ {
					if f64[i] != float64(tag) || f32[i] != float32(tag) ||
						i32[i] != int32(tag) || u64[i] != uint64(tag) || ints[i] != tag {
						errs <- "buffer mutated while owned: two owners alias one pooled slice"
						return
					}
				}
				PutF64(f64)
				PutF32(f32)
				PutI32(i32)
				PutU64(u64)
				PutInts(ints)
			}
		}(o + 1)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestPoolFloorClassCapacity pins the floor-class rule the aliasing
// audit leans on: a returned slice with a non-power-of-two capacity is
// filed under the class whose buffers it can fully satisfy, so a future
// Get never receives a slice shorter than it asked for.
func TestPoolFloorClassCapacity(t *testing.T) {
	s := make([]float64, 100) // cap 100: between classes 6 (64) and 7 (128)
	PutF64(s)
	for i := 0; i < 8; i++ {
		got := GetF64(100)
		if len(got) != 100 {
			t.Fatalf("GetF64(100) returned len %d", len(got))
		}
		PutF64(got)
	}
	// Class 6 requests must also be satisfiable by the odd-capacity buffer.
	got := GetF64(64)
	if len(got) != 64 {
		t.Fatalf("GetF64(64) returned len %d", len(got))
	}
	PutF64(got)
}
