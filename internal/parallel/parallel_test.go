package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", Workers(), runtime.NumCPU())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			const n = 1237
			counts := make([]int32, n)
			For(n, 16, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
				}
			}
		})
	}
}

func TestForRowsDisjointWrites(t *testing.T) {
	withWorkers(t, 8, func() {
		const h, wdt = 64, 32
		out := make([]int, h*wdt)
		ForRows(h, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				for x := 0; x < wdt; x++ {
					out[y*wdt+x] = y*wdt + x
				}
			}
		})
		for i, v := range out {
			if v != i {
				t.Fatalf("out[%d] = %d", i, v)
			}
		}
	})
}

// TestForTiledDecompositionIsWorkerIndependent is the determinism linchpin:
// the tile boundaries seen by reduction kernels must not move with the
// worker count.
func TestForTiledDecompositionIsWorkerIndependent(t *testing.T) {
	const n, grain = 1000, 96
	gather := func(workers int) [][2]int {
		var out [][2]int
		withWorkers(t, workers, func() {
			out = make([][2]int, Tiles(n, grain))
			ForTiled(n, grain, func(tile, start, end int) {
				out[tile] = [2]int{start, end}
			})
		})
		return out
	}
	a, b := gather(1), gather(8)
	if len(a) != len(b) {
		t.Fatalf("tile counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tile %d bounds differ: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOrderedTileReductionIsDeterministic(t *testing.T) {
	const n, grain = 4096, 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	sum := func(workers int) float64 {
		var s float64
		withWorkers(t, workers, func() {
			partial := make([]float64, Tiles(n, grain))
			ForTiled(n, grain, func(tile, start, end int) {
				var p float64
				for i := start; i < end; i++ {
					p += xs[i]
				}
				partial[tile] = p
			})
			for _, p := range partial {
				s += p
			}
		})
		return s
	}
	if a, b := sum(1), sum(8); a != b {
		t.Fatalf("ordered reduction differs: %v vs %v", a, b)
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			var a, b, c int32
			Do(
				func() { atomic.AddInt32(&a, 1) },
				func() { atomic.AddInt32(&b, 1) },
				func() { atomic.AddInt32(&c, 1) },
			)
			if a != 1 || b != 1 || c != 1 {
				t.Fatalf("workers=%d: Do ran (%d,%d,%d)", w, a, b, c)
			}
		})
	}
}

// TestNestedForDoesNotDeadlock exercises parallel-inside-parallel: the
// submit path must never block when the pool is saturated.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 8, func() {
		var total int64
		For(16, 1, func(s, e int) {
			For(64, 4, func(s2, e2 int) {
				atomic.AddInt64(&total, int64(e2-s2))
			})
		})
		if total != 16*64 {
			t.Fatalf("nested total = %d, want %d", total, 16*64)
		}
	})
}

func TestEmptyAndDegenerate(t *testing.T) {
	For(0, 4, func(int, int) { t.Fatal("fn called for n=0") })
	ForTiled(-3, 4, func(int, int, int) { t.Fatal("fn called for n<0") })
	Do()
	if Tiles(0, 8) != 0 || Tiles(9, 4) != 3 || Tiles(8, 0) != 8 {
		t.Fatalf("Tiles miscounted: %d %d %d", Tiles(0, 8), Tiles(9, 4), Tiles(8, 0))
	}
}

func TestScratchPools(t *testing.T) {
	f := GetF64(100)
	if len(f) != 100 {
		t.Fatalf("GetF64 len %d", len(f))
	}
	PutF64(f)
	g := GetF32(33)
	if len(g) != 33 {
		t.Fatalf("GetF32 len %d", len(g))
	}
	PutF32(g)
	z := GetC128(8)
	if len(z) != 8 {
		t.Fatalf("GetC128 len %d", len(z))
	}
	PutC128(z)
	in := GetIntsZeroed(57)
	for i := range in {
		in[i] = i + 1
	}
	PutInts(in)
	in2 := GetIntsZeroed(57)
	for i, v := range in2 {
		if v != 0 {
			t.Fatalf("GetIntsZeroed[%d] = %d after reuse", i, v)
		}
	}
	PutInts(in2)
	// Zero-length gets are nil and Puts of them are no-ops.
	if GetF64(0) != nil {
		t.Fatal("GetF64(0) != nil")
	}
	PutF64(nil)
}

func BenchmarkForOverhead(b *testing.B) {
	prev := SetWorkers(runtime.NumCPU())
	defer SetWorkers(prev)
	out := make([]float64, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(len(out), 1024, func(s, e int) {
			for j := s; j < e; j++ {
				out[j] = float64(j) * 1.5
			}
		})
	}
}
