// Package parallel is the multi-core compute substrate for the perception
// kernels: a shared worker pool sized from runtime.NumCPU, tiled
// parallel-for helpers, and scratch-buffer pools that stop hot loops from
// allocating per call.
//
// Determinism contract (the hard requirement of the calibrated figures):
// every helper here must produce byte-identical results for any worker
// count. The rules callers follow are
//
//  1. For/ForRows bodies may write only to locations owned by their index
//     range, and each element's value may depend only on inputs — never on
//     other tiles or on visitation order;
//  2. reductions go through ForTiled, whose tile decomposition depends only
//     on (n, grain) — never on the worker count — so per-tile partials are
//     identical however many workers run, and the caller combines them in
//     tile order;
//  3. commutative-exact merges (integer counters) may combine in any order.
//
// There is no data-dependent floating-point reassociation anywhere: a
// kernel either computes each output element with the same serial
// instruction stream as before, or reduces tile partials in a fixed order.
package parallel

import (
	"runtime"
	"sync/atomic"
)

// configured holds the SetWorkers override; 0 means runtime.NumCPU().
var configured atomic.Int64

// Workers returns the current parallelism target: the SetWorkers override
// when set, else runtime.NumCPU().
func Workers() int {
	if n := configured.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetWorkers overrides the worker count (n <= 0 resets to runtime.NumCPU)
// and returns the previous effective count. Outputs are byte-identical for
// any setting; only wall-clock time changes.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		n = 0
	}
	configured.Store(int64(n))
	return prev
}

// tasks is the shared pool's run queue. Helper execution is opportunistic:
// a submitting goroutine never blocks on the queue and always processes
// tiles itself, so a saturated pool (e.g. nested parallelism) degrades to
// caller-runs-everything instead of deadlocking.
var tasks chan func()

var poolStarted atomic.Bool

func ensurePool() {
	if poolStarted.Load() {
		return
	}
	if !poolStarted.CompareAndSwap(false, true) {
		return
	}
	n := runtime.NumCPU()
	if n < 4 {
		// Keep a few helpers even on small hosts so SetWorkers(n>NumCPU)
		// still interleaves goroutines (the determinism tests rely on it).
		n = 4
	}
	//sovlint:ignore hotalloc one-time pool bring-up behind the CAS; never runs again after the first fan-out
	tasks = make(chan func(), 8*n)
	for i := 0; i < n; i++ {
		//sovlint:ignore hotalloc one-time pool bring-up behind the CAS; never runs again after the first fan-out
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// Cumulative substrate counters for the telemetry layer: parallel-for
// invocations, tiles executed, and the share of tiles claimed through the
// shared pool queue rather than inline by the submitter. Tile totals are
// deterministic for a fixed worker count; the pool/inline split depends on
// host scheduling, so the registry publishes these as host-class metrics.
var (
	statRuns      atomic.Int64
	statTiles     atomic.Int64
	statPoolTiles atomic.Int64
)

// Counters is a snapshot of the substrate's cumulative activity since
// process start. Subtract two snapshots to scope a run.
type Counters struct {
	// Runs counts run() invocations (parallel For/ForTiled/Do fan-outs).
	Runs int64
	// Tiles counts tiles (or Do functions) executed across all runs.
	Tiles int64
	// PoolTiles counts tiles claimed via pool-queued loops; Tiles minus
	// PoolTiles were executed inline by the submitting goroutine.
	PoolTiles int64
}

// CounterSnapshot returns the current cumulative counters.
func CounterSnapshot() Counters {
	return Counters{
		Runs:      statRuns.Load(),
		Tiles:     statTiles.Load(),
		PoolTiles: statPoolTiles.Load(),
	}
}

// run executes task(0..count-1), each exactly once, using up to `helpers`
// pool goroutines plus the calling goroutine. While waiting for stragglers
// the caller drains the shared queue, so nested calls cannot deadlock.
func run(count, helpers int, task func(i int)) {
	var claimed, completed int64
	statRuns.Add(1)
	statTiles.Add(int64(count))
	if helpers > count-1 {
		helpers = count - 1
	}
	if helpers > 0 {
		ensurePool()
		//sovlint:ignore hotalloc one work-stealing loop closure per fan-out; the cost is the contract of going parallel at all
		loop := func() {
			for {
				i := atomic.AddInt64(&claimed, 1) - 1
				if i >= int64(count) {
					return
				}
				task(int(i))
				statPoolTiles.Add(1)
				atomic.AddInt64(&completed, 1)
			}
		}
	submit:
		for i := 0; i < helpers; i++ {
			select {
			case tasks <- loop:
			default:
				break submit // pool saturated: caller handles the rest
			}
		}
	}
	// The caller claims tiles inline until the queue is exhausted (same
	// claim protocol as the pool loop, without the pool-tile accounting).
	for {
		i := atomic.AddInt64(&claimed, 1) - 1
		if i >= int64(count) {
			break
		}
		task(int(i))
		atomic.AddInt64(&completed, 1)
	}
	for atomic.LoadInt64(&completed) < int64(count) {
		// Help with whatever is queued instead of blocking a pool slot.
		select {
		case f := <-tasks:
			f()
		default:
			runtime.Gosched()
		}
	}
}

// Tiles returns the tile count For/ForTiled use for n elements at the given
// grain. It depends only on (n, grain) — never on the worker count.
func Tiles(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For runs fn over [0, n) split into contiguous tiles of at most grain
// elements. fn must satisfy rule 1 of the package determinism contract:
// disjoint writes, element values independent of tiling. With one worker
// (or one tile) fn is invoked once as fn(0, n).
func For(n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	tiles := Tiles(n, grain)
	w := Workers()
	if w <= 1 || tiles <= 1 {
		fn(0, n)
		return
	}
	//sovlint:ignore hotalloc one tile-mapping closure per fan-out; the cost is the contract of going parallel at all
	run(tiles, w-1, func(t int) {
		start := t * grain
		end := start + grain
		if end > n {
			end = n
		}
		fn(start, end)
	})
}

// ForRows runs fn over the row range [0, h) one row per tile — the common
// decomposition for image kernels, where a row is already a substantial
// unit of work.
func ForRows(h int, fn func(y0, y1 int)) { For(h, 1, fn) }

// ForTiled runs fn(tile, start, end) over the fixed decomposition reported
// by Tiles(n, grain). Unlike For, the serial path also iterates per tile,
// so per-tile partial results (rule 2) are identical for any worker count
// and can be reduced in tile order by the caller.
func ForTiled(n, grain int, fn func(tile, start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	tiles := Tiles(n, grain)
	body := func(t int) {
		start := t * grain
		end := start + grain
		if end > n {
			end = n
		}
		fn(t, start, end)
	}
	w := Workers()
	if w <= 1 || tiles <= 1 {
		for t := 0; t < tiles; t++ {
			body(t)
		}
		return
	}
	run(tiles, w-1, body)
}

// Do runs the given functions, possibly concurrently, and returns when all
// have completed. The functions must be mutually independent; with one
// worker they run serially in argument order, so independence is also what
// makes the serial and parallel schedules indistinguishable.
func Do(fs ...func()) {
	if len(fs) == 0 {
		return
	}
	w := Workers()
	if w <= 1 || len(fs) == 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	if w > len(fs) {
		w = len(fs)
	}
	run(len(fs), w-1, func(i int) { fs[i]() })
}
