package lint

// The whole-program layer under the second-generation analyzers (DESIGN.md
// §12): every function declaration in the loaded package set, the static
// call graph over them, and a bottom-up SCC order for summary propagation.
// Construction is strictly deterministic — packages arrive sorted by import
// path, files sorted by name, declarations in source order — so the
// summaries (and therefore every finding derived from them) are identical
// for any worker count. The graph is built once per Run, before the
// package × analyzer matrix fans out, and is immutable afterwards.
//
// Only static module-internal edges exist: a call through a function value,
// an interface method, or into a package outside the loaded set has no
// edge. Each analyzer documents how it treats those unknowns (hotalloc and
// poolescape assume they are benign; detflow propagates argument taint
// through them).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// A ProgFunc is one function or method declaration plus its static
// module-internal call edges and bottom-up summaries.
type ProgFunc struct {
	// Obj is the declared (generic, not instantiated) function object.
	Obj *types.Func
	// Decl is the declaration; Decl.Body may be nil (assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Callees are the module-internal functions this one calls directly
	// (including calls made inside function literals in the body), each
	// once, ordered by first call site.
	Callees []*ProgFunc

	index int // position in Program.funcs

	alloc allocFact
	taint taintFact
	pool  poolFact
}

// Name returns "Recv.Name" for methods, "Name" otherwise — the same naming
// the hotKernels table uses.
func (pf *ProgFunc) Name() string { return funcKey(pf.Decl) }

// Program is the whole-program view shared read-only by every pass of an
// interprocedural analyzer.
type Program struct {
	funcs []*ProgFunc
	byObj map[*types.Func]*ProgFunc
	dirs  *directiveIndex
}

// BuildProgram indexes every function declaration in pkgs, wires the static
// call graph, and computes the bottom-up summaries. dirs supplies the
// //sovlint:ignore directives so sanctioned allocation sites do not poison
// may-allocate summaries (marking those directives used).
func BuildProgram(pkgs []*Package, dirs *directiveIndex) *Program {
	p := &Program{byObj: make(map[*types.Func]*ProgFunc), dirs: dirs}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				pf := &ProgFunc{Obj: obj, Decl: fn, Pkg: pkg, index: len(p.funcs)}
				p.funcs = append(p.funcs, pf)
				p.byObj[obj] = pf
			}
		}
	}
	for _, pf := range p.funcs {
		if pf.Decl.Body == nil {
			continue
		}
		seen := make(map[*ProgFunc]bool)
		ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.callee(pf.Pkg, call); callee != nil && !seen[callee] {
				seen[callee] = true
				pf.Callees = append(pf.Callees, callee)
			}
			return true
		})
	}
	computeSummaries(p)
	return p
}

// FuncOf returns the ProgFunc for a declared function object (resolving
// generic instantiations to their origin), or nil when the object is not a
// declaration in the loaded set.
func (p *Program) FuncOf(obj *types.Func) *ProgFunc {
	if obj == nil {
		return nil
	}
	return p.byObj[obj.Origin()]
}

// callee resolves a call expression to its module-internal target, or nil
// for dynamic calls, builtins, conversions, and functions outside the
// loaded set.
func (p *Program) callee(pkg *Package, call *ast.CallExpr) *ProgFunc {
	obj, _ := calleeObject(pkg.Info, call).(*types.Func)
	return p.FuncOf(obj)
}

// sccs returns the strongly connected components of the call graph in
// bottom-up order: every component is emitted after all components it
// calls into, so a single pass over the result (with a fixed-point loop
// inside each component) propagates summaries callee-to-caller. Tarjan's
// algorithm with deterministic visit order.
func (p *Program) sccs() [][]*ProgFunc {
	n := len(p.funcs)
	index := make([]int, n)   // 0 = unvisited; else 1-based discovery index
	lowlink := make([]int, n) // 1-based
	onStack := make([]bool, n)
	var stack []*ProgFunc
	var out [][]*ProgFunc
	next := 0

	var strongconnect func(pf *ProgFunc)
	strongconnect = func(pf *ProgFunc) {
		next++
		index[pf.index] = next
		lowlink[pf.index] = next
		stack = append(stack, pf)
		onStack[pf.index] = true
		for _, c := range pf.Callees {
			if index[c.index] == 0 {
				strongconnect(c)
				if lowlink[c.index] < lowlink[pf.index] {
					lowlink[pf.index] = lowlink[c.index]
				}
			} else if onStack[c.index] && index[c.index] < lowlink[pf.index] {
				lowlink[pf.index] = index[c.index]
			}
		}
		if lowlink[pf.index] == index[pf.index] {
			var scc []*ProgFunc
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m.index] = false
				scc = append(scc, m)
				if m == pf {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, pf := range p.funcs {
		if index[pf.index] == 0 {
			strongconnect(pf)
		}
	}
	return out
}

// qualifiedName returns "pkgpath.Func" for package-level functions and
// "pkgpath.Recv.Method" for methods — the key format of the analyzer
// source/sink tables.
func qualifiedName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name += named.Obj().Name() + "."
		}
	}
	return name + fn.Name()
}

// posLabel renders pos as "file.go:line" (basename only) — stable across
// machines, for use inside finding messages where absolute paths would
// break golden files.
func posLabel(pkg *Package, pos token.Pos) string {
	position := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}
