package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The annotation grammar (DESIGN.md §7, §12):
//
//	//sovlint:ignore <analyzer> <reason>   — suppress <analyzer> findings on
//	                                         this line and the next; the
//	                                         reason is mandatory.
//	//sovlint:wallclock [reason]           — on a function's doc comment:
//	                                         the function may read the wall
//	                                         clock (stats/diagnostics only).
//	                                         detflow still tracks the value:
//	                                         it must not reach a virtual-
//	                                         time output.
//	//sov:hotpath                          — on a function's doc comment:
//	                                         hotalloc checks every
//	                                         allocation site in the body
//	                                         and every call to a
//	                                         may-allocate module function.
const (
	directiveIgnore    = "//sovlint:ignore"
	directiveWallclock = "//sovlint:wallclock"
	directiveHotpath   = "//sov:hotpath"
)

// ignoreDirective is one parsed //sovlint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
	// used records whether the directive did any work this run: it
	// suppressed a reported finding, or it sanctioned an allocation site
	// during summary construction (a suppressed site does not poison its
	// function's may-allocate summary). Directives whose analyzer ran but
	// that did nothing are themselves findings — suppressions cannot rot.
	used bool
}

// fileDirectives holds the suppression state for one file.
type fileDirectives struct {
	// list preserves parse order for deterministic stale reporting.
	list []*ignoreDirective
	// ignores maps analyzer name → line → directive covering that line.
	ignores map[string]map[int]*ignoreDirective
	// malformed holds directives that failed to parse (missing analyzer or
	// reason); the driver reports these as findings of the "sovlint"
	// pseudo-analyzer so a typo cannot silently disable enforcement.
	malformed []malformedDirective
}

type malformedDirective struct {
	pos token.Pos
	msg string
}

// parseFileDirectives scans every comment in the file for //sovlint:ignore
// directives. A directive suppresses findings for its analyzer on the
// directive's own line (trailing-comment style) and on the following line
// (comment-above style).
func parseFileDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) *fileDirectives {
	fd := &fileDirectives{ignores: make(map[string]map[int]*ignoreDirective)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, directiveIgnore)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //sovlint:ignoreXYZ — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore needs an analyzer name and a reason"})
				continue
			}
			name := fields[0]
			if known != nil && !known[name] {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore names unknown analyzer " + strconv(name)})
				continue
			}
			if len(fields) < 2 {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore " + name + " needs a reason"})
				continue
			}
			line := fset.Position(c.Pos()).Line
			d := &ignoreDirective{
				analyzer: name,
				reason:   strings.Join(fields[1:], " "),
				line:     line,
				pos:      c.Pos(),
			}
			fd.list = append(fd.list, d)
			m := fd.ignores[name]
			if m == nil {
				m = make(map[int]*ignoreDirective)
				fd.ignores[name] = m
			}
			m[line] = d
			m[line+1] = d
		}
	}
	return fd
}

// strconv quotes a directive token for an error message without pulling in
// fmt at every call site.
func strconv(s string) string { return "\"" + s + "\"" }

// suppress reports whether a finding by the named analyzer at the given
// line is covered by an ignore directive, marking the directive used.
func (fd *fileDirectives) suppress(analyzer string, line int) bool {
	if fd == nil {
		return false
	}
	d := fd.ignores[analyzer][line]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// directiveIndex is the per-run view of every //sovlint:ignore directive in
// the loaded package set, shared by the finding filter and the summary
// builder (both mark directives used).
type directiveIndex struct {
	byFile map[string]*fileDirectives
}

// parseDirectiveIndex parses the directives of every file in pkgs,
// validating analyzer names against the run's analyzer set.
func parseDirectiveIndex(pkgs []*Package, known map[string]bool) *directiveIndex {
	ix := &directiveIndex{byFile: make(map[string]*fileDirectives)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if _, ok := ix.byFile[name]; !ok {
				ix.byFile[name] = parseFileDirectives(pkg.Fset, f, known)
			}
		}
	}
	return ix
}

// suppress reports whether a finding at file:line by the named analyzer is
// covered, marking the covering directive used.
func (ix *directiveIndex) suppress(analyzer, file string, line int) bool {
	if ix == nil {
		return false
	}
	return ix.byFile[file].suppress(analyzer, line)
}

// stale returns one finding per directive that did no work this run, for
// analyzers that actually ran (a detrand directive is not stale in a
// detnow-only run). Results are ordered by file, then parse order.
func (ix *directiveIndex) stale(ran map[string]bool, fset *token.FileSet) []Finding {
	files := make([]string, 0, len(ix.byFile))
	for name := range ix.byFile {
		files = append(files, name)
	}
	sort.Strings(files)
	var out []Finding
	for _, name := range files {
		for _, d := range ix.byFile[name].list {
			if d.used || !ran[d.analyzer] {
				continue
			}
			out = append(out, Finding{
				Pos:      fset.Position(d.pos),
				Analyzer: "sovlint",
				Message:  "sovlint:ignore " + d.analyzer + " suppresses nothing here; remove the stale directive",
			})
		}
	}
	return out
}

// funcHasDirective reports whether the function declaration's doc comment
// carries the given directive (e.g. //sovlint:wallclock, //sov:hotpath).
func funcHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
