package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar (DESIGN.md §7):
//
//	//sovlint:ignore <analyzer> <reason>   — suppress <analyzer> findings on
//	                                         this line and the next; the
//	                                         reason is mandatory.
//	//sovlint:wallclock [reason]           — on a function's doc comment:
//	                                         the function may read the wall
//	                                         clock (stats/diagnostics only).
//	//sov:hotpath                          — on a function's doc comment:
//	                                         hotalloc checks every
//	                                         allocation site in the body.
const (
	directiveIgnore    = "//sovlint:ignore"
	directiveWallclock = "//sovlint:wallclock"
	directiveHotpath   = "//sov:hotpath"
)

// ignoreDirective is one parsed //sovlint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
	// used records whether any finding was actually suppressed; the driver
	// does not report unused directives today, but the field keeps the
	// accounting ready for a -strict mode.
	used bool
}

// fileDirectives holds the suppression state for one file.
type fileDirectives struct {
	// ignores maps analyzer name → lines where findings are suppressed.
	ignores map[string]map[int]bool
	// malformed holds directives that failed to parse (missing analyzer or
	// reason); the driver reports these as findings of the "sovlint"
	// pseudo-analyzer so a typo cannot silently disable enforcement.
	malformed []malformedDirective
}

type malformedDirective struct {
	pos token.Pos
	msg string
}

// parseFileDirectives scans every comment in the file for //sovlint:ignore
// directives. A directive suppresses findings for its analyzer on the
// directive's own line (trailing-comment style) and on the following line
// (comment-above style).
func parseFileDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) *fileDirectives {
	fd := &fileDirectives{ignores: make(map[string]map[int]bool)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			rest, ok := strings.CutPrefix(text, directiveIgnore)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //sovlint:ignoreXYZ — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore needs an analyzer name and a reason"})
				continue
			}
			name := fields[0]
			if known != nil && !known[name] {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore names unknown analyzer " + strconv(name)})
				continue
			}
			if len(fields) < 2 {
				fd.malformed = append(fd.malformed, malformedDirective{
					pos: c.Pos(), msg: "sovlint:ignore " + name + " needs a reason"})
				continue
			}
			line := fset.Position(c.Pos()).Line
			m := fd.ignores[name]
			if m == nil {
				m = make(map[int]bool)
				fd.ignores[name] = m
			}
			m[line] = true
			m[line+1] = true
		}
	}
	return fd
}

// strconv quotes a directive token for an error message without pulling in
// fmt at every call site.
func strconv(s string) string { return "\"" + s + "\"" }

// suppressed reports whether a finding by the named analyzer at the given
// line is covered by an ignore directive.
func (fd *fileDirectives) suppressed(analyzer string, line int) bool {
	if fd == nil {
		return false
	}
	return fd.ignores[analyzer][line]
}

// funcHasDirective reports whether the function declaration's doc comment
// carries the given directive (e.g. //sovlint:wallclock, //sov:hotpath).
func funcHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
