// Package lint is sovlint's engine: a pure-stdlib (go/parser, go/ast,
// go/types, go/token — no golang.org/x/tools) analyzer driver plus the
// repo-specific analyzers that police the determinism, hot-path allocation,
// and concurrency invariants PRs 1–2 promised. The paper's latency and
// energy models (Eq. 1–2) assume a control loop whose compute time is
// reproducible; these invariants are what make Tcomp accounting auditable,
// so violations are rejected at review time instead of caught by a flaky
// reproduction run.
//
// The engine loads every package in the module with its own module-aware
// loader (stdlib dependencies are type-checked from GOROOT source via
// go/importer's "source" compiler), then fans the analyzer × package matrix
// out across internal/parallel. Findings are reported in a deterministic
// order regardless of worker count — the linter obeys the same contract it
// enforces.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package: the parsed files plus the go/types
// artifacts every analyzer needs.
type Package struct {
	// ImportPath is the module-relative import path ("sov/internal/nn").
	ImportPath string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the loader's shared file set (positions for every package).
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of a single module without
// shelling out to the go command. Stdlib imports are resolved from GOROOT
// source; module-internal imports are resolved by walking the module tree.
type Loader struct {
	// ModRoot is the absolute path of the directory containing go.mod.
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package // by import path
	// loading guards against import cycles (impossible in valid Go, but a
	// clear error beats a stack overflow on a broken tree).
	loading map[string]bool
}

// The stdlib is type-checked from GOROOT source exactly once per process
// and shared by every Loader. A source-importer owns an internal package
// cache keyed by import path, so sharing one instance (and the FileSet its
// positions live in) means the second and every later Loader — each golden
// fixture constructs its own — resolves `time`, `sync`, `fmt` & co. from
// cache instead of re-parsing and re-checking tens of thousands of stdlib
// lines. BenchmarkLintRepo pins the win. The importer is not safe for
// concurrent use, so stdMu serializes cross-loader access.
var (
	sharedFset = token.NewFileSet()
	stdMu      sync.Mutex
	stdOnce    sync.Once
	stdImp     types.ImporterFrom
)

func stdImport(path string) (*types.Package, error) {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImp.Import(path)
}

// NewLoader returns a loader for the module rooted at modRoot (the
// directory containing go.mod). All loaders share one FileSet and one
// GOROOT source importer, so the stdlib is type-checked once per process.
func NewLoader(modRoot string) (*Loader, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    sharedFset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll discovers every package directory under the module root
// (skipping testdata, vendor, hidden and underscore directories) and
// type-checks each. The result is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return l.LoadDirs(dirs)
}

// LoadDirs type-checks the packages rooted at the given directories (each
// must live under the module root). The result is sorted by import path.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var out []*Package
	seen := make(map[string]bool)
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		ip, err := l.importPathFor(abs)
		if err != nil {
			return nil, err
		}
		if seen[ip] {
			continue
		}
		seen[ip] = true
		pkg, err := l.load(ip, abs)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir type-checks a single directory as the package at importPath. It
// is the fixture entry point: the directory does not need to live under
// the module root, and importPath may be synthetic ("fixture/detnow").
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks one package, memoized by import path.
// Loading is serialized: the stdlib source importer is not safe for
// concurrent use, and package loading is a small fraction of a lint run
// (the analyzer matrix is where internal/parallel earns its keep).
func (l *Loader) load(importPath, dir string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadLocked(importPath, dir)
}

func (l *Loader) loadLocked(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importLocked(path)
		}),
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importLocked resolves one import during type checking: module-internal
// paths recurse into the loader, everything else goes to the GOROOT source
// importer.
func (l *Loader) importLocked(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		pkg, err := l.loadLocked(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return stdImport(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
