package lint

// hotalloc: no allocation sites in hot-path functions.
//
// PR 2 cut the steady-state control cycle to <1 allocation; that number is
// load-bearing (the alloc gate in CI and the latency model's assumption
// that Tcomp has no GC noise in it). This analyzer makes the property
// reviewable: inside functions annotated //sov:hotpath — plus the known
// per-frame kernel set in isp/nn/pointcloud/detect/fusion — it flags the
// constructs that allocate on every call: make/new, escaping (&T{...})
// composite literals, slice and map literals, append onto a slice declared
// without capacity, fmt calls, string concatenation and string<->[]byte
// conversions, interface boxing, and closures. Allocation sites inside
// panic arguments are exempt (shape-check error paths never run in steady
// state). Intentional exceptions carry //sovlint:ignore with a reason.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation sites in //sov:hotpath functions and the known
// kernel set.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation sites in //sov:hotpath functions and the known per-frame kernel set",
	Run:  runHotAlloc,
}

// hotKernels is the built-in per-frame kernel set: the zero-allocation
// Into-variants and inner-loop kernels the steady-state alloc gate
// measures. Methods are named "Receiver.Method". Entries must resolve to
// real functions — TestHotKernelTableFresh fails on drift.
var hotKernels = map[string][]string{
	"sov/internal/isp": {
		"PixelPipelineConfig.ProcessInto", "boxBlur3Into",
		// Fixed-point pixel chain (DESIGN.md §8).
		"QuantPixelPipeline.ProcessInto", "qBoxBlur3Into", "qBlurEdge",
	},
	"sov/internal/nn": {
		"Conv2D.ForwardInto", "Conv2D.forwardChannel", "MaxPool2.ForwardInto", "poolChannel",
		// int8 fused kernels (DESIGN.md §8).
		"QConv2D.ForwardInto", "QConv2D.forwardChannel", "QConv2D.accEdge",
		"QMaxPool2.ForwardInto", "qpoolChannel",
		"QGlobalAvgPool.ForwardInto", "qgapChannel",
		"QFC.ForwardInto", "QFC.swarRowQuad", "QFC.swarRow", "QFC.swarTail",
		"QuantizeTensorInto", "DequantizeTensorInto",
		"requant.apply", "SigmoidLUT.At", "QYOLOHead.decodeCellQ",
		// SWAR + im2col GEMM backend and batched inference (DESIGN.md §10).
		"QConv2D.swarChunk", "QConv2D.packInput",
		"QConv2D.forwardGEMM", "QConv2D.gemmBlock", "QConv2D.packACol",
		"QNetwork.ForwardBatchPooled", "QYOLOHead.ForwardRawBatch",
	},
	"sov/internal/pointcloud": {"icpMatchOne"},
	"sov/internal/detect": {
		"Detector.DetectInto",
		// Fixed-point grid decode (DESIGN.md §8).
		"DecodeQuantGridInto", "decodeQuantBox",
		// Scratch-reusing quantized pipeline entry points (DESIGN.md §10).
		"RunQuantCNNInto", "RunQuantCNNBatch",
	},
	"sov/internal/fusion": {"SyncScratch.SpatialSyncInto", "FuseAllInto"},
	"sov/internal/vision": {
		// Fixed-point stereo cost aggregation and 8-bit frame conversion
		// (DESIGN.md §8).
		"sadAtQ", "matchPixelQ", "QuantizeImageInto", "QImage.DequantizeInto",
		// SWAR SAD sweep and scratch-reusing stereo matchers (DESIGN.md §10).
		"sad8", "sadSweepSWAR", "BlockMatchQuantInto",
		"SupportPointsQuantInto", "SupportPointStereoQuantInto",
	},
	"sov/internal/obs": {
		// Telemetry steady-state record paths (DESIGN.md §9): touched every
		// control cycle when the obs layer is attached, so they obey the
		// same zero-allocation contract as the perception kernels.
		"Counter.Inc", "Counter.Add", "Gauge.Set", "Histogram.Observe",
		"SpanWriter.Span", "FlightRecorder.Record",
	},
	"sov/internal/core": {
		// Per-cycle telemetry emitters feeding the obs layer (DESIGN.md §9).
		"SoV.recordSpans", "SoV.recordBox", "SoV.observeCycleMetrics",
	},
	"sov/internal/fleet": {
		// Fleet epoch-loop leaves (DESIGN.md §11): ring geometry for the
		// dispatcher, Poisson demand draws, RNG stream derivation, and the
		// synthetic per-vehicle frame fill — all on the
		// zero-steady-state-alloc epoch path.
		"ringPos", "ringDist", "poisson", "splitSeed", "fillInput",
	},
}

// funcKey names a declaration the way hotKernels does.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// VerifyHotKernels returns the hotKernels entries that did not match any
// function declaration in the given packages — the drift guard the
// meta-test runs so a rename cannot silently drop a kernel from coverage.
func VerifyHotKernels(pkgs []*Package) []string {
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					seen[pkg.ImportPath+"."+funcKey(fn)] = true
				}
			}
		}
	}
	var missing []string
	for path, names := range hotKernels {
		for _, name := range names {
			if !seen[path+"."+name] {
				missing = append(missing, path+"."+name)
			}
		}
	}
	return missing
}

func isHotFunc(pkg *Package, fn *ast.FuncDecl) bool {
	if funcHasDirective(fn, directiveHotpath) {
		return true
	}
	for _, name := range hotKernels[pkg.ImportPath] {
		if name == funcKey(fn) {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotFunc(p.Pkg, fn) {
				continue
			}
			checkHotFunc(p, fn)
		}
	}
}

// posRange is a half-open source span.
type posRange struct{ lo, hi token.Pos }

func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info

	// Cold spans: panic arguments never run in steady state.
	var cold []posRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					cold = append(cold, posRange{call.Lparen, call.Rparen})
				}
			}
		}
		return true
	})
	inCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if pos > r.lo && pos < r.hi {
				return true
			}
		}
		return false
	}

	// Slice-sizing facts: which local slice variables are provably unsized
	// at their most recent (lexical) definition. Values: true = unsized.
	sliceState := make(map[*types.Var]bool)
	markDef := func(id *ast.Ident, init ast.Expr) {
		// x = append(...) does not establish sizing; keep the fact from the
		// declaration so `var s []T; s = append(s, v)` still counts as
		// growing an unsized slice.
		if call, ok := ast.Unparen(init).(*ast.CallExpr); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
				if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
					return
				}
			}
		}
		obj, _ := info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Uses[id].(*types.Var)
		}
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		sliceState[obj] = initIsUnsized(info, init)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						markDef(id, s.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						var init ast.Expr
						if i < len(vs.Values) {
							init = vs.Values[i]
						}
						markDef(id, init)
					}
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, format string, args ...any) {
		if !inCold(pos) {
			p.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "closure in hot path %s allocates per call (captured variables escape)", fn.Name.Name)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal in hot path %s escapes to the heap", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal in hot path %s allocates its backing array", fn.Name.Name)
				case *types.Map:
					report(e.Pos(), "map literal in hot path %s allocates", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.Pos(), "string concatenation in hot path %s allocates", fn.Name.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
				if tv, ok := info.Types[e.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.Pos(), "string concatenation in hot path %s allocates", fn.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, fn, e, info, sliceState, report)
		}
		return true
	})
}

// initIsUnsized classifies a slice definition's initializer: true when the
// slice provably starts with zero capacity (so the first append must
// allocate and a growing loop reallocates repeatedly).
func initIsUnsized(info *types.Info, init ast.Expr) bool {
	if init == nil {
		return true // var s []T
	}
	init = ast.Unparen(init)
	switch e := init.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0 // s := []T{} — a literal with elements is its own finding
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if len(e.Args) >= 3 {
					return false // capacity given
				}
				if len(e.Args) == 2 {
					if tv, ok := info.Types[e.Args[1]]; ok && tv.Value != nil {
						return tv.Value.String() == "0" // make([]T, 0): no capacity
					}
					return false // make([]T, n): sized
				}
			}
		}
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
	}
	return false // params, fields, slice expressions, call results: unknown
}

// allocFreeBuiltins are builtins whose calls never allocate and whose
// interface-looking signatures must not trip the boxing check.
var allocFreeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "real": true, "imag": true, "complex": true,
	"print": true, "println": true, "panic": true, "recover": true,
}

func checkHotCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, info *types.Info,
	sliceState map[*types.Var]bool, report func(token.Pos, string, ...any)) {

	// Builtins: make/new allocate; append onto an unsized local grows the
	// backing array; the rest are free.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make in hot path %s allocates; borrow from a pool or reuse a scratch buffer", fn.Name.Name)
			case "new":
				report(call.Pos(), "new in hot path %s allocates", fn.Name.Name)
			case "append":
				if len(call.Args) == 0 {
					return
				}
				base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return
				}
				obj, _ := info.Uses[base].(*types.Var)
				if obj == nil {
					obj, _ = info.Defs[base].(*types.Var)
				}
				if obj != nil && sliceState[obj] {
					report(call.Pos(), "append onto unsized slice %s in hot path %s reallocates as it grows; preallocate with capacity or reuse a buffer", base.Name, fn.Name.Name)
				}
			}
			return
		}
	}

	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if av, ok := info.Types[call.Args[0]]; ok {
			from := av.Type.Underlying()
			if isStringBytesConv(to, from) {
				report(call.Pos(), "string/[]byte conversion in hot path %s copies the data", fn.Name.Name)
				return
			}
			if _, isIface := to.(*types.Interface); isIface {
				if !isInterfaceOrNil(av) {
					report(call.Pos(), "conversion to interface in hot path %s boxes the value", fn.Name.Name)
				}
				return
			}
		}
		return
	}

	// fmt is formatting + boxing + (for the S-family) a fresh string.
	if obj := calleeObject(info, call); obj != nil {
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s in hot path %s allocates (formatting state, boxed arguments)", f.Name(), fn.Name.Name)
			return
		}
	}

	// Interface boxing at ordinary call sites: a concrete argument passed
	// to an interface parameter allocates unless it is pointer-shaped and
	// already escapes.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if av, ok := info.Types[arg]; ok && !isInterfaceOrNil(av) {
			report(arg.Pos(), "argument boxed into interface parameter in hot path %s", fn.Name.Name)
		}
	}
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// isInterfaceOrNil reports whether the argument is already an interface
// value or the untyped nil (neither boxes at the call).
func isInterfaceOrNil(tv types.TypeAndValue) bool {
	if tv.IsNil() {
		return true
	}
	_, isIface := tv.Type.Underlying().(*types.Interface)
	return isIface
}
