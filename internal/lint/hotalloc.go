package lint

// hotalloc: no allocation sites in hot-path functions — directly or
// transitively.
//
// PR 2 cut the steady-state control cycle to <1 allocation; that number is
// load-bearing (the alloc gate in CI and the latency model's assumption
// that Tcomp has no GC noise in it). This analyzer makes the property
// reviewable: inside functions annotated //sov:hotpath it flags the
// constructs that allocate on every call: make/new, escaping (&T{...})
// composite literals, slice and map literals, append onto a slice declared
// without capacity, fmt calls, string concatenation and string<->[]byte
// conversions, interface boxing, and closures. Allocation sites inside
// panic arguments are exempt (shape-check error paths never run in steady
// state). Intentional exceptions carry //sovlint:ignore with a reason.
//
// v2 (DESIGN.md §12) adds the interprocedural half: per-function
// "may-allocate" summaries are inferred bottom-up over the call graph, so a
// hot kernel calling an allocating helper is flagged at the call site with
// a witness chain down to the offending construct. A //sovlint:ignore on an
// allocation site sanctions it for summaries too (amortized-zero grow paths
// do not poison their callers), and callees that are themselves annotated
// //sov:hotpath are skipped — their own pass reports their sites. Dynamic
// calls (function values, interface methods) and calls outside the loaded
// set have no summary and are assumed allocation-free; fmt, the worst
// stdlib offender, is still caught per-site.
//
// The //sov:hotpath annotation is the source of truth for what is hot. The
// built-in hotKernels table is a drift-checked regression list of the
// kernels the steady-state alloc gates measure: VerifyHotKernels fails if a
// listed function disappears (rename drift) or loses its annotation
// (coverage drift).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation sites — intrinsic or via may-allocate callees —
// in //sov:hotpath functions.
var HotAlloc = &Analyzer{
	Name:         "hotalloc",
	Doc:          "allocation sites (direct or via may-allocate callees) in //sov:hotpath functions",
	NeedsProgram: true,
	Run:          runHotAlloc,
}

// hotKernels is the regression list of per-frame kernels: the
// zero-allocation Into-variants and inner-loop kernels the steady-state
// alloc gates measure. Methods are named "Receiver.Method". Every entry
// must resolve to a declared function carrying //sov:hotpath —
// TestHotKernelTableFresh fails on either kind of drift. Coverage itself
// comes from the annotations; this table only pins the measured set.
var hotKernels = map[string][]string{
	"sov/internal/isp": {
		"PixelPipelineConfig.ProcessInto", "boxBlur3Into",
		// Fixed-point pixel chain (DESIGN.md §8).
		"QuantPixelPipeline.ProcessInto", "qBoxBlur3Into", "qBlurEdge",
	},
	"sov/internal/nn": {
		"Conv2D.ForwardInto", "Conv2D.forwardChannel", "MaxPool2.ForwardInto", "poolChannel",
		// int8 fused kernels (DESIGN.md §8).
		"QConv2D.ForwardInto", "QConv2D.forwardChannel", "QConv2D.accEdge",
		"QMaxPool2.ForwardInto", "qpoolChannel",
		"QGlobalAvgPool.ForwardInto", "qgapChannel",
		"QFC.ForwardInto", "QFC.swarRowQuad", "QFC.swarRow", "QFC.swarTail",
		"QuantizeTensorInto", "DequantizeTensorInto",
		"requant.apply", "SigmoidLUT.At", "QYOLOHead.decodeCellQ",
		// SWAR + im2col GEMM backend and batched inference (DESIGN.md §10).
		"QConv2D.swarChunk", "QConv2D.packInput",
		"QConv2D.forwardGEMM", "QConv2D.gemmBlock", "QConv2D.packACol",
		"QNetwork.ForwardBatchPooled", "QYOLOHead.ForwardRawBatch",
	},
	"sov/internal/pointcloud": {"icpMatchOne"},
	"sov/internal/detect": {
		"Detector.DetectInto",
		// Fixed-point grid decode (DESIGN.md §8).
		"DecodeQuantGridInto", "decodeQuantBox",
		// Scratch-reusing quantized pipeline entry points (DESIGN.md §10).
		"RunQuantCNNInto", "RunQuantCNNBatch",
	},
	"sov/internal/fusion": {"SyncScratch.SpatialSyncInto", "FuseAllInto"},
	"sov/internal/vision": {
		// Fixed-point stereo cost aggregation and 8-bit frame conversion
		// (DESIGN.md §8).
		"sadAtQ", "matchPixelQ", "QuantizeImageInto", "QImage.DequantizeInto",
		// SWAR SAD sweep and scratch-reusing stereo matchers (DESIGN.md §10).
		"sad8", "sadSweepSWAR", "BlockMatchQuantInto",
		"SupportPointsQuantInto", "SupportPointStereoQuantInto",
	},
	"sov/internal/obs": {
		// Telemetry steady-state record paths (DESIGN.md §9): touched every
		// control cycle when the obs layer is attached, so they obey the
		// same zero-allocation contract as the perception kernels.
		"Counter.Inc", "Counter.Add", "Gauge.Set", "Histogram.Observe",
		"SpanWriter.Span", "FlightRecorder.Record",
	},
	"sov/internal/core": {
		// Per-cycle telemetry emitters feeding the obs layer (DESIGN.md §9).
		"SoV.recordSpans", "SoV.recordBox", "SoV.observeCycleMetrics",
	},
	"sov/internal/sched": {
		// Online-scheduler per-cycle methods (DESIGN.md §13): run inside
		// captureInto on the engine thread every control cycle, covered by
		// the sched variants of the steady-state alloc gate.
		"Scheduler.BeginCycle", "Scheduler.Observe", "Scheduler.FrontEnd",
		"Scheduler.NoteSwap",
	},
	"sov/internal/fleet": {
		// Fleet epoch-loop leaves (DESIGN.md §11): ring geometry for the
		// dispatcher, Poisson demand draws, RNG stream derivation, and the
		// synthetic per-vehicle frame fill — all on the
		// zero-steady-state-alloc epoch path.
		"ringPos", "ringDist", "poisson", "splitSeed", "fillInput",
	},
	"sov/internal/telemetry": {
		// Telemetry-store ingest path (DESIGN.md §14): per-event work on
		// the fleet barrier's uplink — batcher Add, memtable insert, key
		// encode/compare, bloom probes, and the secondary-index key
		// shuffles. Arena/slice growth roots carry //sovlint:ignore
		// (amortized, like the §11 arenas).
		"Ingestor.Add", "memtable.put", "appendKey", "Key.Less",
		"bloom.add", "bloom.test", "bloomHash",
		"skeyOf", "skey.primary", "skey.less", "bptNode.search",
	},
}

// funcKey names a declaration the way hotKernels does.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// VerifyHotKernels checks the regression list against the given packages
// and returns one entry per problem: a listed function that no longer
// resolves to a declaration (rename drift) or that no longer carries the
// //sov:hotpath annotation (coverage drift — the annotation, not this
// table, is what the analyzer enforces).
func VerifyHotKernels(pkgs []*Package) []string {
	annotated := make(map[string]bool)
	declared := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					key := pkg.ImportPath + "." + funcKey(fn)
					declared[key] = true
					if funcHasDirective(fn, directiveHotpath) {
						annotated[key] = true
					}
				}
			}
		}
	}
	var bad []string
	for path, names := range hotKernels {
		for _, name := range names {
			key := path + "." + name
			switch {
			case !declared[key]:
				bad = append(bad, key+" (no such function)")
			case !annotated[key]:
				bad = append(bad, key+" (missing //sov:hotpath annotation)")
			}
		}
	}
	return bad
}

func isHotFunc(pkg *Package, fn *ast.FuncDecl) bool {
	if funcHasDirective(fn, directiveHotpath) {
		return true
	}
	for _, name := range hotKernels[pkg.ImportPath] {
		if name == funcKey(fn) {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotFunc(p.Pkg, fn) {
				continue
			}
			scanAllocSites(p.Pkg, fn, func(pos token.Pos, kind allocKind, detail string) {
				p.Reportf(pos, "%s", kind.message(fn.Name.Name, detail))
			})
			if p.Prog != nil {
				checkHotCalls(p, fn)
			}
		}
	}
}

// checkHotCalls is the v2 interprocedural rule: a hot function calling a
// module-internal, non-hot callee whose bottom-up summary says it may
// allocate is flagged at the call site with the witness chain.
func checkHotCalls(p *Pass, fn *ast.FuncDecl) {
	cold := coldSpans(p.Pkg.Info, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || cold.contains(call.Pos()) {
			return true
		}
		callee := p.Prog.callee(p.Pkg, call)
		if callee == nil || callee.Decl.Body == nil {
			return true // dynamic or external: no summary, assumed benign
		}
		if isHotFunc(callee.Pkg, callee.Decl) {
			return true // its own hotalloc pass reports its sites
		}
		if !callee.alloc.may {
			return true
		}
		p.Reportf(call.Pos(),
			"call to %s in hot path %s may allocate (%s); make the callee allocation-free, annotate it //sov:hotpath, or suppress with a reason",
			callee.Name(), fn.Name.Name, callee.alloc.why)
		return true
	})
}

// allocKind classifies an allocation construct. The kind carries both the
// full per-site message and the short label used in may-allocate witness
// chains.
type allocKind int

const (
	allocMake allocKind = iota
	allocNew
	allocAppend
	allocClosure
	allocPtrLit
	allocSliceLit
	allocMapLit
	allocConcat
	allocConv
	allocBox
	allocFmt
)

// message renders the per-site finding text (unchanged from v1 so existing
// suppressions and goldens keep their meaning).
func (k allocKind) message(fnName, detail string) string {
	switch k {
	case allocMake:
		return "make in hot path " + fnName + " allocates; borrow from a pool or reuse a scratch buffer"
	case allocNew:
		return "new in hot path " + fnName + " allocates"
	case allocAppend:
		return "append onto unsized slice " + detail + " in hot path " + fnName + " reallocates as it grows; preallocate with capacity or reuse a buffer"
	case allocClosure:
		return "closure in hot path " + fnName + " allocates per call (captured variables escape)"
	case allocPtrLit:
		return "&composite literal in hot path " + fnName + " escapes to the heap"
	case allocSliceLit:
		return "slice literal in hot path " + fnName + " allocates its backing array"
	case allocMapLit:
		return "map literal in hot path " + fnName + " allocates"
	case allocConcat:
		return "string concatenation in hot path " + fnName + " allocates"
	case allocConv:
		return "string/[]byte conversion in hot path " + fnName + " copies the data"
	case allocBox:
		return "argument boxed into interface parameter in hot path " + fnName
	case allocFmt:
		return "fmt." + detail + " in hot path " + fnName + " allocates (formatting state, boxed arguments)"
	}
	return "allocation in hot path " + fnName
}

// label renders the short witness form for summary chains.
func (k allocKind) label(detail string) string {
	switch k {
	case allocMake:
		return "make"
	case allocNew:
		return "new"
	case allocAppend:
		return "append growth of " + detail
	case allocClosure:
		return "closure"
	case allocPtrLit:
		return "&composite literal"
	case allocSliceLit:
		return "slice literal"
	case allocMapLit:
		return "map literal"
	case allocConcat:
		return "string concatenation"
	case allocConv:
		return "string/[]byte conversion"
	case allocBox:
		return "interface boxing"
	case allocFmt:
		return "fmt." + detail
	}
	return "allocation"
}

// posRanges is a set of half-open source spans.
type posRanges []posRange

type posRange struct{ lo, hi token.Pos }

func (rs posRanges) contains(pos token.Pos) bool {
	for _, r := range rs {
		if pos > r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// coldSpans returns the argument spans of builtin panic calls: shape-check
// error paths that never run in steady state, exempt from every hotalloc
// rule.
func coldSpans(info *types.Info, body *ast.BlockStmt) posRanges {
	var cold posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					cold = append(cold, posRange{call.Lparen, call.Rparen})
				}
			}
		}
		return true
	})
	return cold
}

// scanAllocSites walks fn's body and emits every steady-state allocation
// construct (panic arguments excluded) in source order. Used by the
// per-site hot-path check and by the bottom-up may-allocate summaries.
func scanAllocSites(pkg *Package, fn *ast.FuncDecl, emit func(pos token.Pos, kind allocKind, detail string)) {
	info := pkg.Info
	cold := coldSpans(info, fn.Body)

	// Slice-sizing facts: which local slice variables are provably unsized
	// at their most recent (lexical) definition. Values: true = unsized.
	sliceState := make(map[*types.Var]bool)
	markDef := func(id *ast.Ident, init ast.Expr) {
		// x = append(...) does not establish sizing; keep the fact from the
		// declaration so `var s []T; s = append(s, v)` still counts as
		// growing an unsized slice.
		if call, ok := ast.Unparen(init).(*ast.CallExpr); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
				if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
					return
				}
			}
		}
		obj, _ := info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Uses[id].(*types.Var)
		}
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		sliceState[obj] = initIsUnsized(info, init)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						markDef(id, s.Rhs[i])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						var init ast.Expr
						if i < len(vs.Values) {
							init = vs.Values[i]
						}
						markDef(id, init)
					}
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, kind allocKind, detail string) {
		if !cold.contains(pos) {
			emit(pos, kind, detail)
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), allocClosure, "")
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), allocPtrLit, "")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), allocSliceLit, "")
				case *types.Map:
					report(e.Pos(), allocMapLit, "")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.Pos(), allocConcat, "")
					}
				}
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 {
				if tv, ok := info.Types[e.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.Pos(), allocConcat, "")
					}
				}
			}
		case *ast.CallExpr:
			scanAllocCall(e, info, sliceState, report)
		}
		return true
	})
}

// initIsUnsized classifies a slice definition's initializer: true when the
// slice provably starts with zero capacity (so the first append must
// allocate and a growing loop reallocates repeatedly).
func initIsUnsized(info *types.Info, init ast.Expr) bool {
	if init == nil {
		return true // var s []T
	}
	init = ast.Unparen(init)
	switch e := init.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0 // s := []T{} — a literal with elements is its own finding
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if len(e.Args) >= 3 {
					return false // capacity given
				}
				if len(e.Args) == 2 {
					if tv, ok := info.Types[e.Args[1]]; ok && tv.Value != nil {
						return tv.Value.String() == "0" // make([]T, 0): no capacity
					}
					return false // make([]T, n): sized
				}
			}
		}
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
	}
	return false // params, fields, slice expressions, call results: unknown
}

// allocFreeBuiltins are builtins whose calls never allocate and whose
// interface-looking signatures must not trip the boxing check.
var allocFreeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "real": true, "imag": true, "complex": true,
	"print": true, "println": true, "panic": true, "recover": true,
}

func scanAllocCall(call *ast.CallExpr, info *types.Info,
	sliceState map[*types.Var]bool, report func(token.Pos, allocKind, string)) {

	// Builtins: make/new allocate; append onto an unsized local grows the
	// backing array; the rest are free.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), allocMake, "")
			case "new":
				report(call.Pos(), allocNew, "")
			case "append":
				if len(call.Args) == 0 {
					return
				}
				base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return
				}
				obj, _ := info.Uses[base].(*types.Var)
				if obj == nil {
					obj, _ = info.Defs[base].(*types.Var)
				}
				if obj != nil && sliceState[obj] {
					report(call.Pos(), allocAppend, base.Name)
				}
			}
			return
		}
	}

	// Type conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if av, ok := info.Types[call.Args[0]]; ok {
			from := av.Type.Underlying()
			if isStringBytesConv(to, from) {
				report(call.Pos(), allocConv, "")
				return
			}
			if _, isIface := to.(*types.Interface); isIface {
				if !isInterfaceOrNil(av) {
					report(call.Pos(), allocBox, "")
				}
				return
			}
		}
		return
	}

	// fmt is formatting + boxing + (for the S-family) a fresh string.
	if obj := calleeObject(info, call); obj != nil {
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			report(call.Pos(), allocFmt, f.Name())
			return
		}
	}

	// Interface boxing at ordinary call sites: a concrete argument passed
	// to an interface parameter allocates unless it is pointer-shaped and
	// already escapes.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if av, ok := info.Types[arg]; ok && !isInterfaceOrNil(av) {
			report(arg.Pos(), allocBox, "")
		}
	}
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// isInterfaceOrNil reports whether the argument is already an interface
// value or the untyped nil (neither boxes at the call).
func isInterfaceOrNil(tv types.TypeAndValue) bool {
	if tv.IsNil() {
		return true
	}
	_, isIface := tv.Type.Underlying().(*types.Interface)
	return isIface
}
