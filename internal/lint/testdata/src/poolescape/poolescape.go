// Package poolescape is the fixture for the pool-ownership analyzer: every
// way a borrowed buffer can grow a second owner, next to the disciplined
// idioms that must stay silent.
package poolescape

import "sov/internal/parallel"

type holder struct {
	stash []float64
}

var global []float64

// fieldStore parks a borrowed buffer in state reachable from a parameter —
// the exact aliasing bug the fleet arena work hit.
func fieldStore(h *holder, n int) {
	buf := parallel.GetF64(n)
	h.stash = buf // want: stored into field h.stash
	parallel.PutF64(buf)
}

// globalStore parks the borrow in a package-level variable.
func globalStore(n int) {
	buf := parallel.GetF64(n)
	global = buf // want: stored into package-level var
	parallel.PutF64(buf)
}

// chanSend hands the borrow to another goroutine over a channel.
func chanSend(ch chan []float64, n int) {
	buf := parallel.GetF64(n)
	ch <- buf // want: sent on a channel
}

// goCapture leaks the borrow into a spawned goroutine's closure.
func goCapture(n int) {
	buf := parallel.GetF64(n)
	go func() { buf[0] = 1 }() // want: captured by a spawned goroutine
	parallel.PutF64(buf)
}

// useAfterPut touches the buffer after surrendering it.
func useAfterPut(n int) float64 {
	buf := parallel.GetF64(n)
	parallel.PutF64(buf)
	return buf[0] // want: used after release
}

// doublePut releases the same borrow twice.
func doublePut(n int) {
	buf := parallel.GetF64(n)
	parallel.PutF64(buf)
	parallel.PutF64(buf) // want: released twice
}

// returnPastDefer returns a buffer its own deferred Put already released.
func returnPastDefer(n int) []float64 {
	buf := parallel.GetF64(n)
	defer parallel.PutF64(buf)
	return buf // want: returned past deferred release
}

// park stores its parameter in escaping state; no finding here (the
// argument is the caller's problem), but the escapesParam summary is.
func park(h *holder, b []float64) {
	h.stash = b
}

// escapeViaCallee hands the borrow to a summarized module function that
// stores it — the interprocedural escape.
func escapeViaCallee(h *holder, n int) {
	buf := parallel.GetF64(n)
	park(h, buf) // want: passed to park, which stores it
	parallel.PutF64(buf)
}

// rent transfers ownership out to the caller — the legal "caller must
// release" idiom, recorded as a returnsPooled summary, not a finding.
func rent(n int) []float64 {
	return parallel.GetF64(n)
}

// disciplined is the clean life cycle: borrow through a helper, fan out
// with parallel.For (its closures run before For returns), release once.
func disciplined(n int) float64 {
	buf := rent(n)
	parallel.For(len(buf), 64, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			buf[i] = 1
		}
	})
	s := 0.0
	for _, v := range buf {
		s += v
	}
	parallel.PutF64(buf)
	return s
}

// conditionalRelease releases early on one branch only; the success path
// below must not be poisoned by that block-scoped Put.
func conditionalRelease(n int, bad bool) float64 {
	buf := parallel.GetF64(n)
	if bad {
		parallel.PutF64(buf)
		return 0
	}
	v := buf[0]
	parallel.PutF64(buf)
	return v
}
