// Package detnow is the seeded fixture for the detnow analyzer: wall-clock
// reads at package scope and in unannotated functions must be flagged;
// //sovlint:wallclock functions must not.
package detnow

import "time"

var epoch = time.Now() // want: package-scope wall-clock read

var deadline time.Time

func cycle() time.Duration {
	start := time.Now() // want: wall-clock in control path
	elapse()
	return time.Since(start) // want
}

func elapse() {
	_ = time.Until(deadline) // want
}

// statsProbe samples the wall clock for diagnostics only, like the
// pipeline Runtime's per-stage busy/wait counters.
//
//sovlint:wallclock diagnostics excluded from the determinism contract
func statsProbe() time.Duration {
	t0 := time.Now() // ok: function is annotated
	return time.Since(t0)
}
