// Package hotcalls is the fixture for hotalloc's interprocedural side:
// hot kernels reaching allocations through callees, where the per-site
// scanner sees nothing. Summaries are inferred bottom-up, so the witness
// chains name the path down to the construct.
package hotcalls

// grow allocates on demand; it is not hot, so its own site is silent.
func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// chain reaches grow's allocation one more level down.
func chain(s []int, n int) []int {
	return grow(s, n)
}

// spawn allocates a closure on every call.
func spawn(fns []func()) []func() {
	return append(fns, func() {})
}

// hotDirect calls an allocating helper from a hot path.
//
//sov:hotpath
func hotDirect(s []int, n int) []int {
	return grow(s, n) // want: grow may allocate
}

// hotChain reaches the allocation through two levels of calls.
//
//sov:hotpath
func hotChain(s []int, n int) []int {
	return chain(s, n) // want: chain → grow → make
}

// hotClosure reaches a closure allocation through a helper.
//
//sov:hotpath
func hotClosure(fns []func()) []func() {
	return spawn(fns) // want: spawn → closure
}

// sanctioned's allocation carries a reasoned suppression, so its summary
// stays allocation-free.
func sanctioned(n int) []int {
	//sovlint:ignore hotalloc amortized one-time growth, sanctioned for the fixture
	return make([]int, n)
}

// hotSanctioned is clean: the suppressed site does not poison the summary.
//
//sov:hotpath
func hotSanctioned(n int) []int {
	return sanctioned(n)
}

// hotCallsHot is clean at the call site: hotDirect is itself hot, so its
// body reports its own violations instead of every caller repeating them.
//
//sov:hotpath
func hotCallsHot(s []int, n int) []int {
	return hotDirect(s, n)
}
