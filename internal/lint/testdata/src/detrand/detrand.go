// Package detrand is the seeded fixture for the detrand analyzer: global
// math/rand draws and rand.New on an opaque source must be flagged;
// explicit rand.NewSource seeds must not.
package detrand

import "math/rand"

func draws() (float64, int) {
	f := rand.Float64() // want: global source
	n := rand.Intn(10)  // want: global source
	return f, n
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: global source
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: seed visible at the call site
}

func opaque(src rand.Source) *rand.Rand {
	return rand.New(src) // want: seed hidden behind the source value
}

func methodDraw(rng *rand.Rand) float64 {
	return rng.Float64() // ok: draws from an owned generator
}
