// Package hotalloc is the seeded fixture for the hotalloc analyzer: every
// allocation construct inside a //sov:hotpath function must be flagged,
// panic arguments and capacity-reusing appends must not, and unannotated
// functions are never checked.
package hotalloc

import "fmt"

type item struct{ id int }

func sink(v any) { _ = v }

// process is the per-frame kernel under test: one of every allocation
// construct.
//
//sov:hotpath
func process(dst []item, n int) []item {
	var grown []item
	for i := 0; i < n; i++ {
		grown = append(grown, item{id: i}) // want: append onto unsized slice
	}
	scratch := make([]int, n) // want: make
	_ = scratch
	boxed := &item{id: n} // want: escaping composite literal
	_ = boxed
	lit := []int{1, 2, 3} // want: slice literal
	_ = lit
	set := map[int]bool{} // want: map literal
	_ = set
	label := fmt.Sprintf("frame-%d", n) // want: fmt call (argument boxing is folded into it)
	label += "!"                        // want: string concatenation
	raw := []byte(label)                // want: string/[]byte conversion copies
	_ = raw
	sink(n) // want: argument boxed into interface parameter
	if n < 0 {
		panic(fmt.Sprintf("impossible frame %d", n)) // ok: panic argument is cold
	}
	return append(dst, grown...) // ok: append onto caller-provided capacity
}

// spawnClosure returns a closure — the capture escapes on every call.
//
//sov:hotpath
func spawnClosure(n int) func() int {
	return func() int { return n } // want: closure allocates per call
}

// reuse appends into capacity the caller owns; nothing to flag.
//
//sov:hotpath
func reuse(src []item) []item {
	out := src[:0]
	for _, it := range src {
		out = append(out, it) // ok: capacity comes from the caller
	}
	return out
}

// cold is not annotated and not in the kernel table: the same constructs
// are fine here.
func cold(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
