// Package detflow is the fixture for host→virtual taint flow: host-class
// reads (clock, CPU counts, env, pid) laundered through expressions,
// locals, helpers, and struct fields on their way into an RNG seed — plus
// the clean config-derived seeding that must stay silent.
package detflow

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// direct seeds straight from the clock in a single expression.
func direct() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want: time.Now reaches NewSource
}

// throughLocal launders the clock through locals and arithmetic.
func throughLocal() *rand.Rand {
	t := time.Now()
	n := t.UnixNano()
	mixed := n ^ 0x9e3779b9
	return rand.New(rand.NewSource(mixed)) // want: laundering through locals
}

// mix is a pure helper: its paramReturn summary carries taint through.
func mix(a, b int64) int64 {
	return a*31 + b
}

// throughHelper launders a CPU count through the helper.
func throughHelper() *rand.Rand {
	seed := mix(int64(runtime.NumCPU()), 7)
	return rand.New(rand.NewSource(seed)) // want: laundering through mix
}

type cfg struct {
	seed int64
}

// throughField launders GOMAXPROCS through a struct field (field-coarse
// tracking taints the whole struct).
func throughField() *rand.Rand {
	var c cfg
	c.seed = int64(runtime.GOMAXPROCS(0))
	return rand.New(rand.NewSource(c.seed)) // want: laundering through a field
}

// seedFrom reaches the sink with its parameter; the paramSink summary
// moves the finding to callers that pass host values.
func seedFrom(n int64) *rand.Rand {
	return rand.New(rand.NewSource(n))
}

// viaSinkHelper hands the pid to a helper that seeds with it.
func viaSinkHelper() *rand.Rand {
	return seedFrom(int64(os.Getpid())) // want: paramSink via seedFrom
}

// fromConfig is the clean path: the seed is data, not host state.
func fromConfig(c cfg) *rand.Rand {
	return seedFrom(c.seed)
}
