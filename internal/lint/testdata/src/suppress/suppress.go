// Package suppress is the fixture for the //sovlint:ignore machinery:
// well-formed directives (comment-above and trailing styles) suppress
// findings on their line and the next; malformed directives — missing
// reason, unknown analyzer — are themselves findings and suppress nothing;
// a directive that suppresses nothing for an analyzer that ran is stale.
package suppress

import "time"

var t0 time.Time

func cycle() time.Duration {
	//sovlint:ignore detnow harness-only timing, excluded from traces
	start := time.Now()    // suppressed: directive on the line above
	d := time.Since(start) //sovlint:ignore detnow trailing directive on the same line
	//sovlint:ignore detnow
	_ = time.Now() // want: directive above lacks a reason, so it suppresses nothing
	//sovlint:ignore nosuchanalyzer a typo must not silently disable enforcement
	_ = time.Now()     // want: unknown analyzer name, so it suppresses nothing
	_ = time.Since(t0) // want: no directive at all
	//sovlint:ignore detnow the read below was deleted two refactors ago
	return d // want: the directive above is stale — nothing fires here
}
