// Package gohygiene is the seeded fixture for the gohygiene analyzer:
// fire-and-forget goroutines, WaitGroup.Add inside spawned goroutines, and
// lock-carrying values in signatures must be flagged; the sanctioned
// lifecycle patterns must not.
package gohygiene

import "sync"

type server struct {
	mu sync.Mutex
	n  int
}

func leak() {
	go func() { // want: no visible join
		_ = 1
	}()
}

func addInsideGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want: Add races the parent's Wait
		defer wg.Done()
	}()
}

func fire(s *server) {
	go s.bump() // want: plain function, no join, no owning lifecycle
}

func (s *server) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func waited(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { // ok: Add before launch, Done inside
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type pool struct{ tasks chan func() }

func (p *pool) run() {
	go func() { // ok: channel-range worker exits when tasks closes
		for f := range p.tasks {
			f()
		}
	}()
}

type engine struct{ quit chan struct{} }

func (e *engine) Start() {
	go e.loop() // ok: engine has Stop
}

func (e *engine) loop() { <-e.quit }

func (e *engine) Stop() { close(e.quit) }

func byValue(s server) int { // want: parameter carries sync.Mutex by value
	return s.n
}

func (s server) Count() int { // want: value receiver carries sync.Mutex
	return s.n
}

func snapshot() server { // want: by-value result carries sync.Mutex
	return server{}
}

func viaPointer(s *server) int { // ok: pointer
	return s.n
}
