// Package maprange is the seeded fixture for the maprange analyzer: raw
// map iteration in serialization-path functions must be flagged; the
// collect-sort-range pattern and non-serialization functions must not.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders per-key counts — iterating the map directly makes the
// output order random.
func Report(counts map[string]int) string {
	var b strings.Builder
	for k, v := range counts { // want: randomized order leaks into output
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// WriteSorted is the sanctioned pattern: collect keys, sort, range the
// slice.
func WriteSorted(counts map[string]int) string {
	var keys []string
	for k := range counts { // ok: key-collection loop
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, counts[k])
	}
	return b.String()
}

// TraceKinds ranges key and value to emit — using the value disqualifies
// the key-collection allowance.
func TraceKinds(kinds map[int]string, sink func(string)) {
	for _, name := range kinds { // want: value used in output path
		sink(name)
	}
}

// accumulate is order-insensitive and not a serialization path; the
// analyzer stays quiet.
func accumulate(counts map[string]int) int {
	total := 0
	for _, v := range counts { // ok: not a serialization-path function
		total += v
	}
	return total
}
