package lint

// detnow: no wall-clock reads outside functions annotated
// //sovlint:wallclock.
//
// The whole simulation runs on virtual time (sim.Clock advances by modeled
// stage latencies), which is what makes traces byte-identical across runs,
// worker counts, and pipeline on/off — the property every calibrated
// figure and the Eq. 1–2 Tcomp accounting rest on. A single time.Now
// leaking into the control path silently re-couples results to host
// scheduling. The only sanctioned wall-clock consumers are diagnostics
// explicitly excluded from the determinism contract (today: the pipeline
// Runtime's per-stage busy/wait stats).

import (
	"go/ast"
)

// DetNow flags time.Now / time.Since / time.Until calls in functions not
// annotated //sovlint:wallclock.
var DetNow = &Analyzer{
	Name: "detnow",
	Doc:  "wall-clock reads (time.Now/Since/Until) outside //sovlint:wallclock functions",
	Run:  runDetNow,
}

func runDetNow(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkWithFunc(f, func(n ast.Node, fn *ast.FuncDecl) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			obj := calleeObject(p.Pkg.Info, call)
			if !isFuncFrom(obj, "time", "Now", "Since", "Until") {
				return
			}
			if funcHasDirective(fn, directiveWallclock) {
				return
			}
			where := "package scope"
			if fn != nil {
				where = fn.Name.Name
			}
			p.Reportf(call.Pos(),
				"time.%s in %s reads the wall clock; simulation is virtual-time only — annotate the function //sovlint:wallclock if this is stats-only",
				obj.Name(), where)
		})
	}
}
