package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestGoHygieneRealPackages runs the concurrency-hygiene analyzer against
// the two most goroutine-dense production packages — internal/pipeline
// (stage runtimes, rings) and internal/fleet (worker-sharded simulation) —
// rather than only the toy fixture. The test asserts both directions: the
// packages are clean, and they actually contain spawned goroutines, so a
// regression in the loader or the analyzer cannot pass vacuously.
func TestGoHygieneRealPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks module packages; skipped in -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDirs([]string{
		modRoot + "/internal/pipeline",
		modRoot + "/internal/fleet",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}

	goStmts := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					goStmts++
				}
				return true
			})
		}
	}
	if goStmts == 0 {
		t.Fatal("no go statements found in internal/pipeline or internal/fleet; the hygiene check is vacuous")
	}

	if findings := Run(pkgs, []*Analyzer{GoHygiene}); len(findings) > 0 {
		lines := Format(findings, modRoot)
		t.Errorf("gohygiene findings in production packages (%d):\n%s",
			len(findings), strings.Join(lines, "\n"))
	}
}
