package lint

import "testing"

// BenchmarkLintRepo measures one full sovlint run over the module: a fresh
// Loader (parse + type-check every package; the stdlib comes from the
// process-wide shared importer cache after the first iteration) plus the
// complete analyzer matrix. This is the loop CI and the pre-push hook pay
// for, and the benchmark pins the shared-stdlib-type-check win: without the
// cache every iteration re-checks tens of thousands of GOROOT source lines.
func BenchmarkLintRepo(b *testing.B) {
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(modRoot)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if findings := Run(pkgs, Analyzers()); len(findings) > 0 {
			b.Fatalf("repo is not lint-clean (%d findings)", len(findings))
		}
	}
}
