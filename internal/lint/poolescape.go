package lint

// poolescape: pooled buffers have exactly one owner between Get and Put.
//
// The scratch pools in internal/parallel and internal/pipeline are what
// keep the steady-state cycle allocation-free, and their contract
// (parallel/pool.go) is strict: whoever Gets a buffer owns it until Put,
// and Put surrenders it. PR 7's fleet-scale work hit the failure mode this
// analyzer now rejects at review time — a borrowed buffer aliased into
// longer-lived state, so two owners raced on one backing array.
//
// Tracked values come from the pool Get functions (parallel.GetF64 & co.,
// SlicePool.Get, pipeline's FramePool.Get), from module functions whose
// bottom-up summary says they return a still-borrowed buffer (poolFact.
// returnsPooled — the documented "caller must release" idiom, e.g. the KCF
// tracker's FFT helpers), and from borrowed-view sources (scratch-struct
// accessors and arena-slot addresses) that hand out aliases of state the
// callee still owns. Violations:
//
//   - storing a pooled/borrowed buffer into a struct field reachable from
//     a parameter or into a package-level variable (it outlives the borrow)
//   - sending one on a channel (ownership cannot transfer across
//     goroutines)
//   - capturing one in a go-statement closure (closures handed to
//     parallel.For are fine: For returns only after every closure ran)
//   - passing one to a module function that stores its parameter
//     (poolFact.escapesParam)
//   - using or re-releasing a buffer after its Put in straight-line code
//   - returning a buffer past its own deferred Put
//
// Returning a still-borrowed buffer with no Put is legal — that is the
// ownership-transfer idiom — and becomes the function's returnsPooled
// summary so its callers are tracked instead. The checks for use-after-Put
// and double-Put are deliberately scoped to the block the Put appears in:
// a conditional early release (`if err { Put(b); return }`) does not poison
// the success path. Dynamic calls and calls outside the loaded set are
// assumed benign; stores into purely local structs are not tracked.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape flags pool-ownership violations: escaping, use-after-put,
// double-put, and returns past a deferred put.
var PoolEscape = &Analyzer{
	Name:         "poolescape",
	Doc:          "pooled scratch buffers escaping their owner (field/global stores, channel sends, goroutine captures, use after Put)",
	NeedsProgram: true,
	Run:          runPoolEscape,
}

// poolGets maps qualified names of buffer-lending functions to the display
// name used in findings. The result of any of these is an owned borrow.
var poolGets = map[string]string{
	"sov/internal/parallel.GetF64":        "parallel.GetF64",
	"sov/internal/parallel.GetF32":        "parallel.GetF32",
	"sov/internal/parallel.GetC128":       "parallel.GetC128",
	"sov/internal/parallel.GetI32":        "parallel.GetI32",
	"sov/internal/parallel.GetU64":        "parallel.GetU64",
	"sov/internal/parallel.GetIntsZeroed": "parallel.GetIntsZeroed",
	"sov/internal/parallel.SlicePool.Get": "SlicePool.Get",
	"sov/internal/pipeline.FramePool.Get": "FramePool.Get",
}

// poolPuts maps qualified names of release functions to their display name.
// The released buffer is the first argument.
var poolPuts = map[string]string{
	"sov/internal/parallel.PutF64":        "parallel.PutF64",
	"sov/internal/parallel.PutF32":        "parallel.PutF32",
	"sov/internal/parallel.PutC128":       "parallel.PutC128",
	"sov/internal/parallel.PutI32":        "parallel.PutI32",
	"sov/internal/parallel.PutU64":        "parallel.PutU64",
	"sov/internal/parallel.PutInts":       "parallel.PutInts",
	"sov/internal/parallel.SlicePool.Put": "SlicePool.Put",
	"sov/internal/pipeline.FramePool.Put": "FramePool.Put",
}

// borrowedSources lend a view of state the callee still owns: the caller
// may read through it but must not let it outlive the call scope. No Put
// is expected.
var borrowedSources = map[string]string{
	"sov/internal/vision.StereoScratch.costBand": "StereoScratch.costBand",
}

// arenaElems are slice-element types whose address (&slice[i]) is an
// arena-slot borrow: fleet keeps riders in a flat arena and hands out slot
// pointers that must not outlive the dispatch step.
var arenaElems = map[string]string{
	"sov/internal/fleet.rider": "fleet rider arena",
}

func runPoolEscape(p *Pass) {
	for _, pf := range p.Prog.funcs {
		if pf.Pkg == p.Pkg && pf.Decl.Body != nil {
			poolWalk(p.Prog, pf, p)
		}
	}
}

// pval is the pool state of one variable.
type pval struct {
	origin   string // which Get/source lent it; "" = not tracked
	borrowed bool   // view-only borrow: no Put in its lifecycle
}

type release struct {
	pos token.Pos // the Put
	end token.Pos // End() of the block the Put statement appears in
}

// poolWalk runs the ownership walker over pf's body and returns its
// summary fact; with a non-nil pass it reports violations.
func poolWalk(prog *Program, pf *ProgFunc, pass *Pass) poolFact {
	w := &poolWalker{
		prog:     prog,
		pf:       pf,
		info:     pf.Pkg.Info,
		pass:     pass,
		state:    make(map[*types.Var]pval),
		released: make(map[*types.Var]release),
		deferred: make(map[*types.Var]token.Pos),
		pidx:     make(map[*types.Var]int),
	}
	sig := pf.Obj.Type().(*types.Signature)
	idx := 0
	if recv := sig.Recv(); recv != nil {
		w.pidx[recv] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.pidx[sig.Params().At(i)] = idx
		idx++
	}
	w.walkStmt(pf.Decl.Body, pf.Decl.Body.End())
	return w.fact
}

type poolWalker struct {
	prog     *Program
	pf       *ProgFunc
	info     *types.Info
	pass     *Pass
	state    map[*types.Var]pval
	released map[*types.Var]release
	deferred map[*types.Var]token.Pos
	pidx     map[*types.Var]int
	fact     poolFact
}

func (w *poolWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.pass != nil {
		w.pass.Reportf(pos, format, args...)
	}
}

func (w *poolWalker) varOf(id *ast.Ident) *types.Var {
	if v, ok := w.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// paramBit returns (bit, true) when v is a parameter of the function under
// analysis (receiver = bit 0 for methods).
func (w *poolWalker) paramBit(v *types.Var) (uint64, bool) {
	if i, ok := w.pidx[v]; ok && i < 64 {
		return 1 << i, true
	}
	return 0, false
}

// sourceOf classifies an expression as a borrow source: a pool Get, a
// summarized returns-pooled module call, a borrowed-view accessor, or an
// arena-slot address. Returns the zero pval for everything else.
func (w *poolWalker) sourceOf(e ast.Expr) pval {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		fn, _ := calleeObject(w.info, x).(*types.Func)
		if fn == nil {
			return pval{}
		}
		qn := qualifiedName(fn.Origin())
		if name, ok := poolGets[qn]; ok {
			return pval{origin: name}
		}
		if name, ok := borrowedSources[qn]; ok {
			return pval{origin: name, borrowed: true}
		}
		if callee := w.prog.FuncOf(fn); callee != nil && callee.pool.returnsPooled {
			return pval{origin: callee.pool.poolNote + " via " + callee.Name()}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
				if tv, ok := w.info.Types[ix.X]; ok {
					if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
						if name, ok := arenaElems[namedPath(sl.Elem())]; ok {
							return pval{origin: name, borrowed: true}
						}
					}
				}
			}
		}
	case *ast.Ident:
		// Aliasing: u := v copies the borrow state (two names, one owner —
		// the checks treat either name touching the buffer the same way).
		if v := w.varOf(x); v != nil {
			return w.state[v]
		}
	}
	return pval{}
}

// trackedIdent returns the variable and state when e is (after unwrapping
// parens) an identifier holding a tracked buffer.
func (w *poolWalker) trackedIdent(e ast.Expr) (*types.Var, pval) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, pval{}
	}
	v := w.varOf(id)
	if v == nil {
		return nil, pval{}
	}
	return v, w.state[v]
}

// checkUse reports a straight-line use of v after its Put. The release is
// scoped to the block the Put appeared in, so conditional early releases
// do not poison later code.
func (w *poolWalker) checkUse(v *types.Var, pos token.Pos) {
	rel, ok := w.released[v]
	if !ok || pos <= rel.pos || pos >= rel.end {
		return
	}
	delete(w.released, v) // one finding per release, not one per use
	w.reportf(pos, "pooled buffer %s is used after its release at %s; Put surrenders ownership",
		v.Name(), posLabel(w.pf.Pkg, rel.pos))
}

// scanUses walks an expression reporting use-after-put for every tracked
// identifier read inside it.
func (w *poolWalker) scanUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := w.varOf(id); v != nil {
				w.checkUse(v, id.Pos())
			}
		}
		return true
	})
}

// scanExpr is the one entry point for an expression in evaluation position:
// it reports use-after-put on identifiers, runs handleCall on every call in
// the expression (including calls buried in conditions, returns, and nested
// arguments), and walks function-literal bodies through the statement
// walker with the shared state (closures handed to parallel.For operate on
// the caller's borrows legitimately).
func (w *poolWalker) scanExpr(e ast.Expr, blockEnd token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkStmt(x.Body, x.Body.End())
			return false
		case *ast.CallExpr:
			// Evaluation order: arguments first, then the call itself — a
			// Put's own argument is a legal last use, not use-after-release.
			w.scanExpr(x.Fun, blockEnd)
			for _, a := range x.Args {
				w.scanExpr(a, blockEnd)
			}
			w.handleCall(x, blockEnd, false)
			return false
		case *ast.Ident:
			if v := w.varOf(x); v != nil {
				w.checkUse(v, x.Pos())
			}
		}
		return true
	})
}

// handleCall processes one call expression in evaluation position:
// releases, summarized escapes, and spawned work. blockEnd is the End() of
// the block the enclosing statement belongs to.
func (w *poolWalker) handleCall(call *ast.CallExpr, blockEnd token.Pos, deferredCall bool) {
	fn, _ := calleeObject(w.info, call).(*types.Func)
	if fn == nil {
		w.scanUses(call)
		return
	}
	qn := qualifiedName(fn.Origin())

	if name, ok := poolPuts[qn]; ok && len(call.Args) > 0 {
		v, st := w.trackedIdent(call.Args[0])
		if v == nil {
			return
		}
		if bit, isParam := w.paramBit(v); isParam {
			w.fact.putsParam |= bit
		}
		if deferredCall {
			w.deferred[v] = call.Pos()
			return
		}
		if rel, ok := w.released[v]; ok && call.Pos() > rel.pos && call.Pos() < rel.end {
			w.reportf(call.Pos(), "pooled buffer %s is released twice (first %s at %s); a double Put corrupts the pool free list",
				v.Name(), name, posLabel(w.pf.Pkg, rel.pos))
			return
		}
		_, isParam := w.pidx[v]
		if st.origin != "" || isParam {
			w.released[v] = release{pos: call.Pos(), end: blockEnd}
		}
		return
	}

	// Module-internal callee: apply its pool summary to tracked arguments.
	if callee := w.prog.FuncOf(fn); callee != nil && callee.Decl.Body != nil {
		args := w.alignedArgs(call, fn)
		nidx := len(args)
		for i, a := range args {
			if a == nil {
				continue
			}
			v, st := w.trackedIdent(a)
			if v == nil {
				continue
			}
			w.checkUse(v, a.Pos())
			bit := uint64(1) << min64(i, nidx-1)
			if callee.pool.escapesParam&bit != 0 {
				if st.origin != "" {
					w.reportf(a.Pos(), "pooled buffer %s (%s) is passed to %s, which stores it (%s); the callee would outlive the borrow — pass a copy or transfer ownership explicitly",
						v.Name(), st.origin, callee.Name(), callee.pool.escapeNote)
				}
				// A parameter handed to an escaping callee escapes from here
				// too — the summary is transitive.
				if pbit, isParam := w.paramBit(v); isParam && st.origin == "" {
					w.fact.escapesParam |= pbit
					if w.fact.escapeNote == "" {
						w.fact.escapeNote = "passed to " + callee.Name() + " (" + callee.pool.escapeNote + ")"
					}
				}
			}
			if callee.pool.putsParam&bit != 0 && st.origin != "" && !st.borrowed {
				w.released[v] = release{pos: call.Pos(), end: blockEnd}
			}
		}
		return
	}
	w.scanUses(call)
}

// alignedArgs lines call arguments up with the callee's parameter indexing
// (receiver first for methods).
func (w *poolWalker) alignedArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	var args []ast.Expr
	sig := fn.Origin().Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				args = append(args, sel.X)
			}
		}
	}
	return append(args, call.Args...)
}

func min64(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// assign processes one lvalue ← rvalue pair.
func (w *poolWalker) assign(lhs, rhs ast.Expr, blockEnd token.Pos) {
	st := w.sourceOf(rhs)
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		v := w.varOf(x)
		if v == nil {
			return
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// A bare store into a package-level variable escapes the borrow.
			if st.origin != "" {
				name := "buffer"
				if rv, _ := w.trackedIdent(rhs); rv != nil {
					name = rv.Name()
				}
				w.reportf(rhs.Pos(), "pooled buffer %s (%s) is stored into %s, which outlives the borrow; the pool contract is one owner between Get and Put",
					name, st.origin, w.storeDesc(lhs))
			}
			if pv, pst := w.trackedIdent(rhs); pv != nil && pst.origin == "" {
				if bit, isParam := w.paramBit(pv); isParam {
					w.fact.escapesParam |= bit
					if w.fact.escapeNote == "" {
						w.fact.escapeNote = "stored into " + w.storeDesc(lhs)
					}
				}
			}
			return
		}
		w.state[v] = st // strong update: a fresh value replaces the borrow
		delete(w.released, v)
		delete(w.deferred, v)
	default:
		if st.origin == "" {
			// Not a tracked buffer; still check whether a tracked PARAM is
			// being parked in escaping state for the summary.
			if v, pst := w.trackedIdent(rhs); v != nil && pst.origin == "" {
				if bit, isParam := w.paramBit(v); isParam && w.escapingStore(lhs) {
					w.fact.escapesParam |= bit
					if w.fact.escapeNote == "" {
						w.fact.escapeNote = "stored into " + w.storeDesc(lhs)
					}
				}
			}
			return
		}
		if w.escapingStore(lhs) {
			name := "buffer"
			if v, _ := w.trackedIdent(rhs); v != nil {
				name = v.Name()
			}
			w.reportf(rhs.Pos(), "pooled buffer %s (%s) is stored into %s, which outlives the borrow; the pool contract is one owner between Get and Put",
				name, st.origin, w.storeDesc(lhs))
		}
	}
}

// escapingStore reports whether the lvalue outlives the function's frame:
// a field/element reachable from a parameter or receiver, or a
// package-level variable. Stores into purely local structs are not escapes
// this analyzer sees (documented imprecision).
func (w *poolWalker) escapingStore(lhs ast.Expr) bool {
	base := lhs
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.Ident:
			v := w.varOf(x)
			if v == nil {
				return false
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return true // package-level variable
			}
			_, isParam := w.pidx[v]
			return isParam && base != lhs // a bare `param = x` is not a store-through
		default:
			return false
		}
	}
}

// storeDesc renders the store target for the finding message.
func (w *poolWalker) storeDesc(lhs ast.Expr) string {
	lhs = ast.Unparen(lhs)
	for { // peel element/deref wrappers: r.buf[i] describes as field r.buf
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			lhs = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			lhs = ast.Unparen(x.X)
			continue
		}
		break
	}
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return "field " + base.Name + "." + sel.Sel.Name
		}
		return "field " + sel.Sel.Name
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return "package-level var " + id.Name
	}
	return "longer-lived state"
}

// goCaptures reports pooled values crossing into a spawned goroutine:
// closure captures and direct arguments.
func (w *poolWalker) goCaptures(g *ast.GoStmt) {
	check := func(v *types.Var, pos token.Pos) {
		st := w.state[v]
		if st.origin != "" {
			w.reportf(pos, "pooled buffer %s (%s) is captured by a spawned goroutine; the pool contract is single-owner — pass a copy or release first",
				v.Name(), st.origin)
		}
		if bit, isParam := w.paramBit(v); isParam {
			w.fact.escapesParam |= bit
			if w.fact.escapeNote == "" {
				w.fact.escapeNote = "captured by a spawned goroutine"
			}
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.info.Uses[id].(*types.Var); ok {
					if _, tracked := w.state[v]; tracked {
						check(v, id.Pos())
					} else if _, isParam := w.pidx[v]; isParam {
						check(v, id.Pos())
					}
				}
			}
			return true
		})
	}
	for _, a := range g.Call.Args {
		if v, _ := w.trackedIdent(a); v != nil {
			check(v, a.Pos())
		}
	}
}

func (w *poolWalker) walkStmt(s ast.Stmt, blockEnd token.Pos) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range x.List {
			w.walkStmt(st, x.End())
		}
	case *ast.ExprStmt:
		w.scanExpr(x.X, blockEnd)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.scanExpr(r, blockEnd)
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i := range x.Lhs {
				w.assign(x.Lhs[i], x.Rhs[i], blockEnd)
			}
		} else if len(x.Rhs) == 1 {
			for _, l := range x.Lhs {
				w.assign(l, x.Rhs[0], blockEnd)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, n := range vs.Names {
						if i < len(vs.Values) {
							w.scanExpr(vs.Values[i], blockEnd)
							w.assign(n, vs.Values[i], blockEnd)
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scanExpr(r, blockEnd)
			v, st := w.trackedIdent(r)
			if v == nil {
				// A direct `return GetF64(n)` / `return pooledHelper()` is
				// the ownership-transfer idiom with no intermediate local.
				if rst := w.sourceOf(r); rst.origin != "" && !rst.borrowed && !w.fact.returnsPooled {
					w.fact.returnsPooled = true
					w.fact.poolNote = rst.origin
				}
				continue
			}
			if putPos, ok := w.deferred[v]; ok {
				w.reportf(r.Pos(), "pooled buffer %s is returned past its deferred release at %s; the caller receives a buffer the pool already owns",
					v.Name(), posLabel(w.pf.Pkg, putPos))
				continue
			}
			if st.origin != "" && !st.borrowed && !w.fact.returnsPooled {
				w.fact.returnsPooled = true
				w.fact.poolNote = st.origin
			}
		}
	case *ast.SendStmt:
		w.scanExpr(x.Chan, blockEnd)
		w.scanExpr(x.Value, blockEnd)
		if v, st := w.trackedIdent(x.Value); v != nil {
			if st.origin != "" {
				w.reportf(x.Value.Pos(), "pooled buffer %s (%s) is sent on a channel; ownership cannot cross goroutines — release it and send a copy or an index",
					v.Name(), st.origin)
			}
			if bit, isParam := w.paramBit(v); isParam {
				w.fact.escapesParam |= bit
				if w.fact.escapeNote == "" {
					w.fact.escapeNote = "sent on a channel"
				}
			}
		}
	case *ast.GoStmt:
		w.goCaptures(x)
	case *ast.DeferStmt:
		w.handleCall(x.Call, blockEnd, true)
		for _, a := range x.Call.Args {
			w.scanExpr(a, blockEnd) // defer args evaluate immediately
		}
	case *ast.IfStmt:
		w.walkStmt(x.Init, blockEnd)
		w.scanExpr(x.Cond, blockEnd)
		w.walkStmt(x.Body, blockEnd)
		w.walkStmt(x.Else, blockEnd)
	case *ast.ForStmt:
		w.walkStmt(x.Init, blockEnd)
		w.scanExpr(x.Cond, blockEnd)
		w.walkStmt(x.Body, blockEnd)
		w.walkStmt(x.Post, blockEnd)
	case *ast.RangeStmt:
		w.scanExpr(x.X, blockEnd)
		w.walkStmt(x.Body, blockEnd)
	case *ast.SwitchStmt:
		w.walkStmt(x.Init, blockEnd)
		w.scanExpr(x.Tag, blockEnd)
		w.walkStmt(x.Body, blockEnd)
	case *ast.TypeSwitchStmt:
		w.walkStmt(x.Init, blockEnd)
		w.walkStmt(x.Assign, blockEnd)
		w.walkStmt(x.Body, blockEnd)
	case *ast.CaseClause:
		for _, e := range x.List {
			w.scanExpr(e, blockEnd)
		}
		for _, st := range x.Body {
			w.walkStmt(st, blockEnd)
		}
	case *ast.SelectStmt:
		w.walkStmt(x.Body, blockEnd)
	case *ast.CommClause:
		w.walkStmt(x.Comm, blockEnd)
		for _, st := range x.Body {
			w.walkStmt(st, blockEnd)
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, blockEnd)
	}
}
