package lint

// gohygiene: goroutine and lock discipline in the concurrency substrate.
//
// Three rules, all aimed at the pipeline/parallel lifecycle bugs that race
// detectors only catch when the schedule cooperates:
//
//  1. Every `go` launch must have a visible join or lifecycle: a
//     WaitGroup.Add before the launch, a WaitGroup.Done inside the spawned
//     literal, a channel-range worker body (terminates on close), or an
//     enclosing method whose type provides Stop/Wait/Close/Shutdown/Join.
//     Fire-and-forget goroutines outlive Drain and corrupt the next run's
//     accounting.
//  2. WaitGroup.Add inside the spawned goroutine races the parent's Wait —
//     the classic TOCTOU that makes Drain return early once in a thousand
//     runs.
//  3. Lock-carrying values (sync.Mutex & friends, sync/atomic value types)
//     must not cross function boundaries by value: value receivers, value
//     parameters, and by-value returns all copy the lock. go vet's
//     copylocks catches assignments; this covers the signature surface.

import (
	"go/ast"
	"go/types"
)

// GoHygiene flags unpaired goroutine launches, WaitGroup.Add inside
// spawned goroutines, and lock-carrying values in function signatures.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc:  "goroutines without a join/lifecycle, WaitGroup.Add inside goroutines, locks passed by value",
	Run:  runGoHygiene,
}

// lifecycleMethods are the method names that count as a goroutine owner's
// teardown surface.
var lifecycleMethods = map[string]bool{
	"Stop": true, "Wait": true, "Close": true, "Shutdown": true, "Join": true,
}

func runGoHygiene(p *Pass) {
	// Method sets by receiver base type name, for the lifecycle rule.
	methods := make(map[string]map[string]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			recv := recvBaseName(fn)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]bool)
			}
			methods[recv][fn.Name.Name] = true
		}
	}

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignatureLocks(p, fn)
			if fn.Body == nil {
				continue
			}
			checkGoStmts(p, fn, methods)
		}
	}
}

func recvBaseName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isWaitGroupMethod reports whether the call invokes the named method on a
// sync.WaitGroup (by value or pointer).
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	return namedPath(recv) == "sync.WaitGroup"
}

func checkGoStmts(p *Pass, fn *ast.FuncDecl, methods map[string]map[string]bool) {
	info := p.Pkg.Info

	// Lexical positions of WaitGroup.Add calls in this function (outside
	// spawned literals they license a following `go`).
	var addPositions []int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Add") {
			addPositions = append(addPositions, int(call.Pos()))
		}
		return true
	})

	hasLifecycle := false
	if recv := recvBaseName(fn); recv != "" {
		for m := range lifecycleMethods {
			if methods[recv][m] {
				hasLifecycle = true
				break
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// Rule 2: WaitGroup.Add inside the spawned goroutine.
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Add") {
					p.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races the parent's Wait; Add before the go statement")
				}
				return true
			})
		}
		// Rule 1: visible join or lifecycle.
		if goStmtIsPaired(info, g, addPositions, hasLifecycle) {
			return true
		}
		p.Reportf(g.Pos(), "goroutine in %s has no visible join: pair it with WaitGroup.Add/Done, a channel-range worker body, or a Stop/Wait/Close method on the owning type", fn.Name.Name)
		return true
	})
}

func goStmtIsPaired(info *types.Info, g *ast.GoStmt, addPositions []int, hasLifecycle bool) bool {
	if hasLifecycle {
		return true
	}
	for _, pos := range addPositions {
		if pos < int(g.Pos()) {
			return true
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	done := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(info, call, "Done") {
			done = true
		}
		return !done
	})
	if done {
		return true
	}
	// Channel-range worker: the literal's top level is a `for range ch`
	// loop, so the goroutine exits when the channel closes.
	for _, stmt := range lit.Body.List {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if tv, ok := info.Types[rng.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	return false
}

// checkSignatureLocks flags lock-carrying values crossing the function
// boundary by value.
func checkSignatureLocks(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	checkField := func(field *ast.Field, what string) {
		tv, ok := info.Types[field.Type]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return
		}
		if path := containsLock(tv.Type); path != "" {
			p.Reportf(field.Pos(), "%s of %s is passed by value but carries %s; use a pointer", what, fn.Name.Name, path)
		}
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			checkField(field, "receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			checkField(field, "parameter")
		}
	}
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			checkField(field, "result")
		}
	}
}
