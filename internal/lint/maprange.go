package lint

// maprange: no raw map iteration in trace/report/serialization paths.
//
// Go randomizes map iteration order on purpose, so a `for range` over a
// map inside anything that renders output — trace writers, report
// formatters, marshalers, CSV/JSON emitters — is the classic source of
// byte-non-identical artifacts that only diverge once in a while. The rule
// is scoped to functions whose names mark them as serialization paths; the
// sanctioned pattern (collect the keys, sort, range the sorted slice) is
// recognized and allowed when the map-range body does nothing but gather
// keys.

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange flags for-range over a map inside serialization-path functions
// unless the loop only collects keys for sorting.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration in trace/report/serialization paths (randomized order leaks into output)",
	Run:  runMapRange,
}

// serializationMarkers are the lowercase substrings that mark a function
// as producing externally visible, order-sensitive output.
var serializationMarkers = []string{
	"trace", "report", "marshal", "serial", "encode",
	"write", "dump", "print", "format", "string",
	"csv", "json", "summar", "render", "emit",
}

func isSerializationFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, m := range serializationMarkers {
		if strings.Contains(lower, m) {
			return true
		}
	}
	return false
}

func runMapRange(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkWithFunc(f, func(n ast.Node, fn *ast.FuncDecl) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || fn == nil || !isSerializationFunc(fn.Name.Name) {
				return
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if isKeyCollectionLoop(rng) {
				return
			}
			p.Reportf(rng.Pos(),
				"range over map in serialization path %s iterates in randomized order; collect the keys, sort, then range the slice",
				fn.Name.Name)
		})
	}
}

// isKeyCollectionLoop recognizes the sanctioned sort prelude:
//
//	for k := range m { keys = append(keys, k) }
//
// The body must be exactly one append of the key variable — anything else
// (using the value, emitting output) is order-dependent.
func isKeyCollectionLoop(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	for _, arg := range call.Args[1:] {
		if id, ok := ast.Unparen(arg).(*ast.Ident); !ok || id.Name != key.Name {
			return false
		}
	}
	return true
}
