package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"sov/internal/parallel"
)

// An Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in findings and //sovlint:ignore
	// directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col: [analyzer]
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full sovlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetNow,
		DetRand,
		MapRange,
		HotAlloc,
		GoHygiene,
	}
}

// analyzerNames returns the set of valid names for directive validation.
func analyzerNames(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// Run executes every analyzer over every package, fanning the matrix out
// across internal/parallel (byte-identical findings for any worker count:
// each job owns its result slot and the merge is a fixed-order reduction).
// Suppressed findings are dropped; malformed //sovlint:ignore directives
// are reported as findings of the "sovlint" pseudo-analyzer. The result is
// sorted by position, then analyzer, then message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	type job struct {
		pkg *Package
		an  *Analyzer
	}
	var jobs []job
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			jobs = append(jobs, job{pkg, an})
		}
	}
	results := make([][]Finding, len(jobs))
	parallel.For(len(jobs), 1, func(start, end int) {
		for i := start; i < end; i++ {
			pass := &Pass{Analyzer: jobs[i].an, Pkg: jobs[i].pkg}
			pass.Analyzer.Run(pass)
			results[i] = pass.findings
		}
	})

	known := analyzerNames(analyzers)
	var out []Finding
	for _, pkg := range pkgs {
		directives := make(map[string]*fileDirectives, len(pkg.Files))
		for _, f := range pkg.Files {
			fd := parseFileDirectives(pkg.Fset, f, known)
			directives[pkg.Fset.Position(f.Pos()).Filename] = fd
			for _, m := range fd.malformed {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(m.pos),
					Analyzer: "sovlint",
					Message:  m.msg,
				})
			}
		}
		for i, j := range jobs {
			if j.pkg != pkg {
				continue
			}
			for _, f := range results[i] {
				if fd := directives[f.Pos.Filename]; fd.suppressed(f.Analyzer, f.Pos.Line) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// Format renders findings one per line with file paths relative to baseDir
// (absolute paths are kept when they do not share the base).
func Format(findings []Finding, baseDir string) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		g := f
		if rel, err := filepath.Rel(baseDir, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			g.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = g.String()
	}
	return out
}
