package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"sov/internal/parallel"
)

// An Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in findings and //sovlint:ignore
	// directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// NeedsProgram marks interprocedural analyzers: before the package ×
	// analyzer matrix fans out, the driver builds the whole-program call
	// graph and bottom-up summaries (callgraph.go, summary.go) and hands
	// them to every pass via Pass.Prog.
	NeedsProgram bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the shared whole-program view (non-nil when any analyzer in
	// the run set has NeedsProgram). It is immutable during the fan-out.
	Prog     *Program
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col: [analyzer]
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full sovlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetNow,
		DetRand,
		DetFlow,
		MapRange,
		HotAlloc,
		PoolEscape,
		GoHygiene,
	}
}

// analyzerNames returns the set of valid names for directive validation.
func analyzerNames(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// Run executes every analyzer over every package, fanning the matrix out
// across internal/parallel (byte-identical findings for any worker count:
// each job owns its result slot and the merge is a fixed-order reduction).
// When any analyzer is interprocedural the whole-program call graph and
// summaries are built serially first and shared read-only by every pass.
// Suppressed findings are dropped; malformed //sovlint:ignore directives
// and directives that suppressed nothing (stale suppressions) are reported
// as findings of the "sovlint" pseudo-analyzer. The result is sorted by
// position, then analyzer, then message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := analyzerNames(analyzers)
	dirs := parseDirectiveIndex(pkgs, known)

	var prog *Program
	for _, an := range analyzers {
		if an.NeedsProgram {
			prog = BuildProgram(pkgs, dirs)
			break
		}
	}

	type job struct {
		pkg *Package
		an  *Analyzer
	}
	var jobs []job
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			jobs = append(jobs, job{pkg, an})
		}
	}
	results := make([][]Finding, len(jobs))
	parallel.For(len(jobs), 1, func(start, end int) {
		for i := start; i < end; i++ {
			pass := &Pass{Analyzer: jobs[i].an, Pkg: jobs[i].pkg, Prog: prog}
			pass.Analyzer.Run(pass)
			results[i] = pass.findings
		}
	})

	var out []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fd := dirs.byFile[pkg.Fset.Position(f.Pos()).Filename]
			for _, m := range fd.malformed {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(m.pos),
					Analyzer: "sovlint",
					Message:  m.msg,
				})
			}
		}
		for i, j := range jobs {
			if j.pkg != pkg {
				continue
			}
			for _, f := range results[i] {
				if dirs.suppress(f.Analyzer, f.Pos.Filename, f.Pos.Line) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	if len(pkgs) > 0 {
		out = append(out, dirs.stale(known, pkgs[0].Fset)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// Format renders findings one per line with file paths relative to baseDir
// (absolute paths are kept when they do not share the base).
func Format(findings []Finding, baseDir string) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		g := relativize(f, baseDir)
		out[i] = g.String()
	}
	return out
}

func relativize(f Finding, baseDir string) Finding {
	if rel, err := filepath.Rel(baseDir, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		f.Pos.Filename = filepath.ToSlash(rel)
	}
	return f
}

// jsonFinding fixes the field order of the machine-readable output; the
// struct declaration order IS the wire order, so CI can diff two runs
// byte-for-byte.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FormatJSON renders findings as a JSON array (one object per finding,
// stable field order, findings in the driver's sorted order, trailing
// newline). Paths are relativized against baseDir like Format. The output
// is byte-identical for any worker count — the same contract as the text
// form — so CI and tooling can diff findings without parsing text.
func FormatJSON(findings []Finding, baseDir string) ([]byte, error) {
	arr := make([]jsonFinding, len(findings))
	for i, f := range findings {
		g := relativize(f, baseDir)
		arr[i] = jsonFinding{
			File:     g.Pos.Filename,
			Line:     g.Pos.Line,
			Col:      g.Pos.Column,
			Analyzer: g.Analyzer,
			Message:  g.Message,
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(arr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
