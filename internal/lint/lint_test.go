package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sov/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenCases maps each fixture package to the analyzers it seeds
// violations for. The suppress fixture runs detnow to prove directives
// filter findings (and that malformed directives are findings themselves).
var goldenCases = []struct {
	name      string
	analyzers []*Analyzer
}{
	{"detnow", []*Analyzer{DetNow}},
	{"detrand", []*Analyzer{DetRand}},
	{"maprange", []*Analyzer{MapRange}},
	{"hotalloc", []*Analyzer{HotAlloc}},
	{"hotcalls", []*Analyzer{HotAlloc}},
	{"poolescape", []*Analyzer{PoolEscape}},
	{"detflow", []*Analyzer{DetFlow}},
	{"gohygiene", []*Analyzer{GoHygiene}},
	{"suppress", []*Analyzer{DetNow}},
}

func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return loader, pkg
}

func fixtureFindings(t *testing.T, name string, analyzers []*Analyzer) []string {
	t.Helper()
	_, pkg := loadFixture(t, name)
	findings := Run([]*Package{pkg}, analyzers)
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return Format(findings, srcRoot)
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			lines := fixtureFindings(t, c.name, c.analyzers)
			if len(lines) == 0 {
				t.Fatalf("fixture %s produced no findings; the analyzer is blind to its seeded violations", c.name)
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join("testdata", "golden", c.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/lint -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuppression pins the directive semantics beyond the golden file: the
// two well-formed directives in the suppress fixture must remove exactly
// their findings, the two malformed directives must surface as [sovlint]
// findings, and the stale directive (nothing to suppress for an analyzer
// that ran) must surface too.
func TestSuppression(t *testing.T) {
	lines := fixtureFindings(t, "suppress", []*Analyzer{DetNow})
	var meta, detnow, stale int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "[sovlint]"):
			meta++
			if strings.Contains(l, "suppresses nothing here") {
				stale++
			}
		case strings.Contains(l, "[detnow]"):
			detnow++
		}
		if strings.Contains(l, "suppressed:") {
			t.Errorf("finding on a suppressed line leaked through: %s", l)
		}
	}
	if meta != 3 {
		t.Errorf("[sovlint] directive findings = %d, want 3 (2 malformed + 1 stale)\n%s", meta, strings.Join(lines, "\n"))
	}
	if stale != 1 {
		t.Errorf("stale directive findings = %d, want 1\n%s", stale, strings.Join(lines, "\n"))
	}
	if detnow != 3 {
		t.Errorf("unsuppressed detnow findings = %d, want 3\n%s", detnow, strings.Join(lines, "\n"))
	}
}

// TestFindingsDeterministic runs the full matrix over every fixture at
// worker counts 1 and 8 and requires byte-identical output — the linter
// obeys the determinism contract it enforces.
func TestFindingsDeterministic(t *testing.T) {
	collect := func() string {
		var all []string
		for _, c := range goldenCases {
			all = append(all, fixtureFindings(t, c.name, Analyzers())...)
		}
		return strings.Join(all, "\n")
	}
	prev := parallel.SetWorkers(1)
	serial := collect()
	parallel.SetWorkers(8)
	wide := collect()
	parallel.SetWorkers(prev)
	if serial != wide {
		t.Errorf("findings differ between 1 and 8 workers\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, wide)
	}
}

// TestFormatJSON pins the machine-readable output: valid JSON, stable
// field order, findings in driver order, and byte-identical bytes for any
// worker count (the same contract as the text form).
func TestFormatJSON(t *testing.T) {
	_, pkg := loadFixture(t, "detflow")
	render := func() []byte {
		findings := Run([]*Package{pkg}, []*Analyzer{DetFlow})
		if len(findings) == 0 {
			t.Fatal("detflow fixture produced no findings")
		}
		b, err := FormatJSON(findings, "")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prev := parallel.SetWorkers(1)
	serial := render()
	parallel.SetWorkers(8)
	wide := render()
	parallel.SetWorkers(prev)
	if string(serial) != string(wide) {
		t.Errorf("JSON output differs between 1 and 8 workers\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, wide)
	}

	var arr []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(serial, &arr); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	for _, f := range arr {
		if f.File == "" || f.Line == 0 || f.Analyzer != "detflow" || f.Message == "" {
			t.Errorf("incomplete finding object: %+v", f)
		}
	}
	if empty, err := FormatJSON(nil, ""); err != nil || strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("empty findings must render as []: %q, %v", empty, err)
	}
}
