package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sov/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenCases maps each fixture package to the analyzers it seeds
// violations for. The suppress fixture runs detnow to prove directives
// filter findings (and that malformed directives are findings themselves).
var goldenCases = []struct {
	name      string
	analyzers []*Analyzer
}{
	{"detnow", []*Analyzer{DetNow}},
	{"detrand", []*Analyzer{DetRand}},
	{"maprange", []*Analyzer{MapRange}},
	{"hotalloc", []*Analyzer{HotAlloc}},
	{"gohygiene", []*Analyzer{GoHygiene}},
	{"suppress", []*Analyzer{DetNow}},
}

func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return loader, pkg
}

func fixtureFindings(t *testing.T, name string, analyzers []*Analyzer) []string {
	t.Helper()
	_, pkg := loadFixture(t, name)
	findings := Run([]*Package{pkg}, analyzers)
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return Format(findings, srcRoot)
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			lines := fixtureFindings(t, c.name, c.analyzers)
			if len(lines) == 0 {
				t.Fatalf("fixture %s produced no findings; the analyzer is blind to its seeded violations", c.name)
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join("testdata", "golden", c.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/lint -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuppression pins the directive semantics beyond the golden file: the
// two well-formed directives in the suppress fixture must remove exactly
// their findings, and both malformed directives must surface as [sovlint]
// findings.
func TestSuppression(t *testing.T) {
	lines := fixtureFindings(t, "suppress", []*Analyzer{DetNow})
	var malformed, detnow int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "[sovlint]"):
			malformed++
		case strings.Contains(l, "[detnow]"):
			detnow++
		}
		if strings.Contains(l, "suppressed:") {
			t.Errorf("finding on a suppressed line leaked through: %s", l)
		}
	}
	if malformed != 2 {
		t.Errorf("malformed directive findings = %d, want 2\n%s", malformed, strings.Join(lines, "\n"))
	}
	if detnow != 3 {
		t.Errorf("unsuppressed detnow findings = %d, want 3\n%s", detnow, strings.Join(lines, "\n"))
	}
}

// TestFindingsDeterministic runs the full matrix over every fixture at
// worker counts 1 and 8 and requires byte-identical output — the linter
// obeys the determinism contract it enforces.
func TestFindingsDeterministic(t *testing.T) {
	collect := func() string {
		var all []string
		for _, c := range goldenCases {
			all = append(all, fixtureFindings(t, c.name, Analyzers())...)
		}
		return strings.Join(all, "\n")
	}
	prev := parallel.SetWorkers(1)
	serial := collect()
	parallel.SetWorkers(8)
	wide := collect()
	parallel.SetWorkers(prev)
	if serial != wide {
		t.Errorf("findings differ between 1 and 8 workers\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, wide)
	}
}
