package lint

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the meta-test: the repository must satisfy every
// invariant sovlint enforces. A failure here reads exactly like the CI
// step — file:line:col: [analyzer] message — so the fix is the same
// whether it is caught locally or at review time.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	if findings := Run(pkgs, Analyzers()); len(findings) > 0 {
		lines := Format(findings, modRoot)
		t.Errorf("repository violates its own invariants (%d findings):\n%s",
			len(findings), strings.Join(lines, "\n"))
	}
	if missing := VerifyHotKernels(pkgs); len(missing) > 0 {
		t.Errorf("hotalloc kernel table names functions that no longer exist (rename drift): %v", missing)
	}
}
