package lint

import (
	"go/ast"
	"go/types"
)

// walkWithFunc walks the file tracking the enclosing top-level function
// declaration: visit is called for every node with the FuncDecl whose body
// (lexically) contains it, or nil at package scope. Function literals do
// not change the enclosing declaration — a //sov:hotpath or
// //sovlint:wallclock annotation covers the closures the function spawns.
func walkWithFunc(f *ast.File, visit func(n ast.Node, fn *ast.FuncDecl)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			ast.Inspect(d, func(n ast.Node) bool {
				if n != nil {
					visit(n, d)
				}
				return true
			})
		default:
			ast.Inspect(d, func(n ast.Node) bool {
				if n != nil {
					visit(n, nil)
				}
				return true
			})
		}
	}
}

// calleeObject resolves the function object a call expression invokes, or
// nil when the callee is dynamic (a function value, method value, etc.).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// isFuncFrom reports whether obj is the named package-level function of the
// given package import path.
func isFuncFrom(obj types.Object, pkgPath string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// namedPath returns "pkgpath.TypeName" for a named or instantiated type,
// or "" for anything else.
func namedPath(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// lockCarriers names the types whose values must never be copied. Beyond
// the sync primitives, the sync/atomic value types are included: copying
// one tears the address the atomics operate on.
var lockCarriers = map[string]bool{
	"sync.Mutex":          true,
	"sync.RWMutex":        true,
	"sync.WaitGroup":      true,
	"sync.Once":           true,
	"sync.Cond":           true,
	"sync.Pool":           true,
	"sync.Map":            true,
	"sync/atomic.Bool":    true,
	"sync/atomic.Int32":   true,
	"sync/atomic.Int64":   true,
	"sync/atomic.Uint32":  true,
	"sync/atomic.Uint64":  true,
	"sync/atomic.Uintptr": true,
	"sync/atomic.Pointer": true,
	"sync/atomic.Value":   true,
}

// containsLock reports the dotted path of the first lock-carrying
// component reachable by value inside t ("" when none): the type itself, a
// struct field, or an array element. Pointers, slices, maps and channels
// are references — copying them does not copy the lock.
func containsLock(t types.Type) string {
	return lockPath(t, make(map[types.Type]bool))
}

func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if p := namedPath(t); lockCarriers[p] {
		return p
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				return f.Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(u.Elem(), seen); p != "" {
			return "[...]" + p
		}
	}
	return ""
}
