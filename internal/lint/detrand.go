package lint

// detrand: all randomness flows through explicitly seeded generators.
//
// Every stochastic model in the repo (detection noise, sensor jitter, ISP
// stage delays, scenario generation) draws from internal/sim's seeded RNG
// or from a *rand.Rand built on an explicit rand.NewSource(seed), so a run
// is a pure function of its seed. The global math/rand functions share
// process-wide state seeded who-knows-where and serialize concurrent draws
// through a mutex; rand.New on an opaque source hides the seed from the
// reproducibility audit. Both are banned outright — there is no annotation
// escape hatch, only //sovlint:ignore with a written reason.

import (
	"go/ast"
	"go/types"
)

// DetRand flags global math/rand top-level draws and rand.New calls whose
// source is not an explicit rand.NewSource(...).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "global math/rand state or rand.New without an explicit rand.NewSource seed",
	Run:  runDetRand,
}

// randConstructors are the math/rand package-level functions that build
// values rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkWithFunc(f, func(n ast.Node, _ *ast.FuncDecl) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn, ok := calleeObject(p.Pkg.Info, call).(*types.Func)
			if !ok || !isFuncFrom(fn, "math/rand", fn.Name()) {
				return
			}
			name := fn.Name()
			if !randConstructors[name] {
				p.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; use internal/sim's seeded RNG (or rand.New(rand.NewSource(seed)))",
					name)
				return
			}
			if name != "New" {
				return
			}
			// rand.New must take a literal rand.NewSource(...) so the seed
			// is visible at the call site.
			if len(call.Args) == 1 {
				if src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
					if isFuncFrom(calleeObject(p.Pkg.Info, src), "math/rand", "NewSource") {
						return
					}
				}
			}
			p.Reportf(call.Pos(),
				"rand.New without an inline rand.NewSource(seed) hides the seed from the reproducibility audit")
		})
	}
}
