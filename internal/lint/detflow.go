package lint

// detflow: host-class values must not reach virtual-class outputs.
//
// detnow and detrand police the *reads*: where the wall clock or an
// unseeded RNG may be consulted at all. detflow polices the *flows*: a
// host-class value (wall-clock time, CPU counts, environment) that is read
// legitimately — say inside a //sovlint:wallclock diagnostics function —
// must still never launder its way into a virtual-class output: a trace
// record, a fleet report field, or an RNG seed. One NumCPU folded into a
// seed and every calibrated figure silently depends on the machine that
// produced it.
//
// The analyzer is a flow-sensitive, field-coarse taint walker over each
// function body, made interprocedural by the bottom-up summaries in
// summary.go: a function that returns a host-derived value taints its
// callers' locals (taintFact.returnsHost), one that passes a parameter to a
// sink taints flags its callers' arguments (taintFact.paramSink), and
// parameter-to-return flows (taintFact.paramReturn) carry taint through
// helper functions, so laundering through locals, struct fields, or
// helpers is caught. Calls outside the loaded set propagate the join of
// their argument taints to their results — an unknown function cannot
// launder. Two walker passes per function pick up loop-carried taint.
//
// Known imprecision, chosen for zero-config operation: field assignments
// taint the whole root variable (no per-field tracking), package-level
// variables are not tracked across functions, and branch conditions do not
// taint the values assigned under them (data flow only, not control flow).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow flags host-class values (wall clock, CPU counts, env) flowing
// into virtual-class sinks (traces, reports, RNG seeds).
var DetFlow = &Analyzer{
	Name:         "detflow",
	Doc:          "host-class values (time, NumCPU, env) flowing into virtual-class sinks (traces, reports, RNG seeds)",
	NeedsProgram: true,
	Run:          runDetFlow,
}

// hostSources maps qualified function names to the host-class value they
// return. Any call to one of these produces a tainted result — even inside
// //sovlint:wallclock functions, where reading is sanctioned but the value
// is still host-class. Module-internal functions annotated
// //sovlint:wallclock are treated as sources too: the annotation declares
// their results host-class by contract (see evalSummarized).
var hostSources = map[string]string{
	"time.Now":             "time.Now",
	"time.Since":           "time.Since",
	"time.Until":           "time.Until",
	"runtime.NumCPU":       "runtime.NumCPU",
	"runtime.GOMAXPROCS":   "runtime.GOMAXPROCS",
	"runtime.NumGoroutine": "runtime.NumGoroutine",
	"os.Getenv":            "os.Getenv",
	"os.LookupEnv":         "os.LookupEnv",
	"os.Environ":           "os.Environ",
	"os.Getpid":            "os.Getpid",
	"os.Hostname":          "os.Hostname",
}

// hostSinks maps qualified function names to virtual-class outputs: any
// argument reaching one of these must be host-independent. Receivers do not
// count as sink inputs (the trace writer itself is not the data).
var hostSinks = map[string]string{
	"math/rand.NewSource":                       "math/rand.NewSource (RNG seed)",
	"math/rand.Seed":                            "math/rand.Seed (RNG seed)",
	"math/rand.Rand.Seed":                       "rand.Rand.Seed (RNG seed)",
	"sov/internal/sim.NewRNG":                   "sim.NewRNG (simulation RNG seed)",
	"sov/internal/core.Tracer.Record":           "the cycle trace (core.Tracer.Record)",
	"sov/internal/obs.SpanWriter.Span":          "the span trace (obs.SpanWriter.Span)",
	"sov/internal/obs.FlightRecorder.Record":    "the flight recorder (obs.FlightRecorder.Record)",
	"sov/internal/cloud.OperationalLog.Record":  "the operational log (cloud.OperationalLog.Record)",
	"sov/internal/fleet.traceWriter.intField":   "the fleet trace (traceWriter.intField)",
	"sov/internal/fleet.traceWriter.floatField": "the fleet trace (traceWriter.floatField)",
}

func runDetFlow(p *Pass) {
	for _, pf := range p.Prog.funcs {
		if pf.Pkg == p.Pkg && pf.Decl.Body != nil {
			taintWalk(p.Prog, pf, p)
		}
	}
}

// tval is the taint of one value: a host-class origin (empty = clean) plus
// the set of enclosing-function parameters whose values flow into it.
type tval struct {
	host   string
	params uint64
}

func (t tval) empty() bool { return t.host == "" && t.params == 0 }

func joinT(a, b tval) tval {
	if a.host == "" {
		a.host = b.host
	}
	a.params |= b.params
	return a
}

// taintWalk runs the taint walker over pf's body and returns its summary
// fact. With a non-nil pass it also reports host-to-sink flows (the second
// walker pass does the reporting, so loop-carried taint is visible). With a
// nil pass it is the summary builder called from computeSummaries.
func taintWalk(prog *Program, pf *ProgFunc, pass *Pass) taintFact {
	w := &taintWalker{
		prog:  prog,
		pf:    pf,
		info:  pf.Pkg.Info,
		state: make(map[*types.Var]tval),
		pidx:  make(map[*types.Var]int),
	}
	sig := pf.Obj.Type().(*types.Signature)
	idx := 0
	if recv := sig.Recv(); recv != nil {
		w.pidx[recv] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.pidx[sig.Params().At(i)] = idx
		idx++
	}
	for v, i := range w.pidx {
		if i < 64 {
			w.state[v] = tval{params: 1 << i}
		}
	}
	w.walkStmt(pf.Decl.Body) // pass 1: settle loop-carried taint
	w.pass = pass
	w.walkStmt(pf.Decl.Body) // pass 2: collect the fact, report flows
	return w.fact
}

type taintWalker struct {
	prog  *Program
	pf    *ProgFunc
	info  *types.Info
	state map[*types.Var]tval
	pidx  map[*types.Var]int
	pass  *Pass // nil during pass 1 and in summary mode
	fact  taintFact
}

func (w *taintWalker) report(pos token.Pos, origin, sink string) {
	if w.pass != nil {
		w.pass.Reportf(pos,
			"host-derived value (%s) reaches %s; virtual-class outputs must not depend on host state — derive it from sim config or the run seed, or drop the field",
			origin, sink)
	}
}

// sinkHit records that taint reached the named sink: host taint is a
// finding at the call site; parameter taint becomes a paramSink summary bit
// so callers are checked instead.
func (w *taintWalker) sinkHit(pos token.Pos, t tval, sink string) {
	if t.host != "" {
		w.report(pos, t.host, sink)
	}
	if t.params != 0 {
		w.fact.paramSink |= t.params
		if w.fact.sinkNote == "" {
			w.fact.sinkNote = sink
		}
	}
}

// varOf resolves an identifier to its variable object (definition or use).
func (w *taintWalker) varOf(id *ast.Ident) *types.Var {
	if v, ok := w.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// rootVar peels selectors, indexes, stars, and parens down to the base
// identifier's variable — the coarse unit of field/element taint.
func (w *taintWalker) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v := w.varOf(x)
			if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return nil // package-level var: not tracked
			}
			return v
		default:
			return nil
		}
	}
}

func (w *taintWalker) eval(e ast.Expr) tval {
	switch x := e.(type) {
	case nil:
		return tval{}
	case *ast.Ident:
		if v := w.varOf(x); v != nil {
			return w.state[v]
		}
		return tval{}
	case *ast.ParenExpr:
		return w.eval(x.X)
	case *ast.SelectorExpr:
		// Field read or method value: taint of the root variable. With no
		// root var the base may still be a tainted expression — a method
		// picked off a call result (time.Now().UnixNano()) stays tainted. A
		// package-qualified name bottoms out at a clean identifier.
		if v := w.rootVar(x); v != nil {
			return w.state[v]
		}
		return w.eval(x.X)
	case *ast.IndexExpr:
		if w.info.Types[x.X].IsType() {
			return tval{} // generic instantiation, not an index
		}
		return joinT(w.eval(x.X), tval{})
	case *ast.SliceExpr:
		return w.eval(x.X)
	case *ast.StarExpr:
		return w.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return tval{} // channel receive: cross-goroutine flow not tracked
		}
		return w.eval(x.X)
	case *ast.BinaryExpr:
		return joinT(w.eval(x.X), w.eval(x.Y))
	case *ast.CallExpr:
		return w.evalCall(x)
	case *ast.TypeAssertExpr:
		return w.eval(x.X)
	case *ast.CompositeLit:
		var t tval
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = joinT(t, w.eval(el))
		}
		return t
	case *ast.KeyValueExpr:
		return w.eval(x.Value)
	case *ast.FuncLit:
		// The closure shares this walker's state: captured taint flows in
		// and out through the shared locals.
		w.walkStmt(x.Body)
		return tval{}
	default:
		return tval{}
	}
}

// evalCall handles the four call classes: host source, known sink, summarized
// module function, and everything else (conservative join of arguments).
func (w *taintWalker) evalCall(call *ast.CallExpr) tval {
	// Conversions: T(x) keeps x's taint.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		var t tval
		for _, a := range call.Args {
			t = joinT(t, w.eval(a))
		}
		return t
	}

	fn, _ := calleeObject(w.info, call).(*types.Func)
	if fn != nil {
		qn := qualifiedName(fn.Origin())
		if origin, ok := hostSources[qn]; ok {
			for _, a := range call.Args {
				w.eval(a)
			}
			return tval{host: origin}
		}
		if sink, ok := hostSinks[qn]; ok {
			for _, a := range call.Args {
				w.sinkHit(a.Pos(), w.eval(a), sink)
			}
			return tval{}
		}
		if callee := w.prog.FuncOf(fn); callee != nil && callee.Decl.Body != nil {
			return w.evalSummarized(call, fn, callee)
		}
	}

	// Dynamic, builtin, or external call: no summary. The result joins every
	// argument's taint so an unknown helper cannot launder a host value.
	var t tval
	t = joinT(t, w.eval(call.Fun))
	for _, a := range call.Args {
		t = joinT(t, w.eval(a))
	}
	return t
}

// evalSummarized applies a module-internal callee's taintFact: arguments
// line up with the callee's parameter indexing (receiver first for
// methods; variadic extras clamp to the last parameter).
func (w *taintWalker) evalSummarized(call *ast.CallExpr, fn *types.Func, callee *ProgFunc) tval {
	var args []ast.Expr
	sig := fn.Origin().Type().(*types.Signature)
	if sig.Recv() != nil {
		// Method value: the receiver expression joins as parameter 0. A
		// method expression (T.Method(recv, ...)) already lines up.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				args = append(args, sel.X)
			}
		}
	}
	args = append(args, call.Args...)

	nidx := sig.Params().Len()
	if sig.Recv() != nil {
		nidx++
	}
	var out tval
	if callee.taint.returnsHost {
		out.host = callee.Name() + " → " + callee.taint.hostNote
	} else if funcHasDirective(callee.Decl, directiveWallclock) {
		// A //sovlint:wallclock annotation declares the function host-class
		// diagnostics: whatever it returns is host-derived by contract, even
		// when the current body happens not to read the clock directly.
		out.host = callee.Name() + " (//sovlint:wallclock)"
	}
	for i, a := range args {
		if a == nil {
			continue
		}
		t := w.eval(a)
		if t.empty() {
			continue
		}
		bit := i
		if bit >= nidx {
			bit = nidx - 1 // variadic tail
		}
		if bit >= 64 {
			continue
		}
		if callee.taint.paramReturn&(1<<bit) != 0 {
			out = joinT(out, t)
		}
		if callee.taint.paramSink&(1<<bit) != 0 {
			w.sinkHit(a.Pos(), t, callee.taint.sinkNote+" via "+callee.Name())
		}
	}
	return out
}

// assign writes taint to an lvalue: identifiers get a strong update,
// field/element stores taint the whole root variable (weak update — a
// clean field store never launders taint away from a dirty struct).
func (w *taintWalker) assign(lhs ast.Expr, t tval) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if v := w.varOf(x); v != nil {
			if base, ok := w.pidx[v]; ok && base < 64 {
				t.params |= 1 << base // a param var keeps carrying its own flow
			}
			w.state[v] = t
		}
	default:
		if v := w.rootVar(lhs); v != nil {
			w.state[v] = joinT(w.state[v], t)
		}
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range x.List {
			w.walkStmt(st)
		}
	case *ast.ExprStmt:
		w.eval(x.X)
	case *ast.AssignStmt:
		if len(x.Lhs) > 1 && len(x.Rhs) == 1 {
			t := w.eval(x.Rhs[0]) // tuple: every lhs gets the joined taint
			for _, l := range x.Lhs {
				w.assign(l, t)
			}
			return
		}
		for i, l := range x.Lhs {
			if i < len(x.Rhs) {
				t := w.eval(x.Rhs[i])
				if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
					t = joinT(t, w.eval(l)) // op= keeps the old taint
				}
				w.assign(l, t)
			}
		}
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Names) > 1 && len(vs.Values) == 1 {
				t := w.eval(vs.Values[0])
				for _, n := range vs.Names {
					w.assign(n, t)
				}
				continue
			}
			for i, n := range vs.Names {
				if i < len(vs.Values) {
					w.assign(n, w.eval(vs.Values[i]))
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			t := w.eval(r)
			if t.host != "" && !w.fact.returnsHost {
				w.fact.returnsHost = true
				w.fact.hostNote = t.host
			}
			w.fact.paramReturn |= t.params
		}
	case *ast.IfStmt:
		w.walkStmt(x.Init)
		w.eval(x.Cond)
		w.walkStmt(x.Body)
		w.walkStmt(x.Else)
	case *ast.ForStmt:
		w.walkStmt(x.Init)
		w.eval(x.Cond)
		w.walkStmt(x.Body)
		w.walkStmt(x.Post)
	case *ast.RangeStmt:
		t := w.eval(x.X)
		if x.Key != nil {
			w.assign(x.Key, tval{})
		}
		if x.Value != nil {
			w.assign(x.Value, t)
		}
		w.walkStmt(x.Body)
	case *ast.SwitchStmt:
		w.walkStmt(x.Init)
		w.eval(x.Tag)
		w.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(x.Init)
		w.walkStmt(x.Assign)
		w.walkStmt(x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			w.eval(e)
		}
		for _, st := range x.Body {
			w.walkStmt(st)
		}
	case *ast.SelectStmt:
		w.walkStmt(x.Body)
	case *ast.CommClause:
		w.walkStmt(x.Comm)
		for _, st := range x.Body {
			w.walkStmt(st)
		}
	case *ast.SendStmt:
		w.eval(x.Chan)
		w.eval(x.Value)
	case *ast.GoStmt:
		w.eval(x.Call)
	case *ast.DeferStmt:
		w.eval(x.Call)
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	}
}
