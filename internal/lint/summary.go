package lint

import "go/token"

// Bottom-up per-function summaries (DESIGN.md §12). Each ProgFunc carries
// three facts, inferred callee-before-caller over the SCC order that
// Program.sccs returns:
//
//   - allocFact: the function may allocate in steady state — an intrinsic
//     allocation site (hotalloc's per-site scanner, minus //sovlint:ignore-
//     sanctioned sites) or a call to a may-allocate module function. The
//     `why` string is a witness chain down to the construct.
//   - taintFact: how host-class values (wall clock, CPU counts, env) move
//     through the function — returned, parameter-to-return, or parameter-
//     to-sink (detflow.go owns the walker).
//   - poolFact: how pooled buffers move — returned to the caller still
//     borrowed, released via a parameter, or escaped via a parameter
//     (poolescape.go owns the walker).
//
// Facts are monotone (bits and booleans only ever turn on within the
// fixed-point loop of one SCC), so iterating each component until nothing
// changes terminates. Everything is deterministic: function order, callee
// order, and SCC order are all derived from the sorted package/file/decl
// order, so the summaries — and every finding derived from them — are
// byte-identical for any worker count.

type allocFact struct {
	// may reports that a call can allocate in steady state.
	may bool
	// why is the witness chain, e.g. "packACol → make at gemm.go:108".
	why string
}

type taintFact struct {
	// returnsHost: some return value derives from a host-class source.
	returnsHost bool
	// hostNote names the origin, e.g. "time.Now at runtime.go:92".
	hostNote string
	// paramReturn bit i: parameter i's value can flow to a return value.
	// For methods the receiver is parameter 0 and formals follow.
	paramReturn uint64
	// paramSink bit i: parameter i's value can reach a virtual-class sink
	// inside this function (directly or transitively).
	paramSink uint64
	// sinkNote names the sink reached by tainted parameters.
	sinkNote string
}

type poolFact struct {
	// returnsPooled: a return value is a still-borrowed pooled buffer (the
	// legal ownership-transfer idiom: "caller must release").
	returnsPooled bool
	// poolNote names the pool origin, e.g. "parallel.GetC128".
	poolNote string
	// putsParam bit i: the function releases parameter i back to its pool.
	putsParam uint64
	// escapesParam bit i: the function stores parameter i somewhere that
	// outlives the call (field, global, channel, spawned goroutine).
	escapesParam uint64
	// escapeNote describes where escaping parameters end up.
	escapeNote string
}

// computeSummaries fills in the per-function facts bottom-up. It runs once,
// serially, inside BuildProgram — before the analyzer matrix fans out — so
// every pass sees the same finished summaries.
func computeSummaries(p *Program) {
	computeAllocFacts(p)
	for _, scc := range p.sccs() {
		for changed := true; changed; {
			changed = false
			for _, pf := range scc {
				if pf.Decl.Body == nil {
					continue
				}
				// Compare only the monotone bits, not the witness strings:
				// in a recursive SCC a note that embeds a callee's note
				// would otherwise grow on every iteration and never settle.
				if tf := taintWalk(p, pf, nil); !taintEq(tf, pf.taint) {
					pf.taint = tf
					changed = true
				}
				if pl := poolWalk(p, pf, nil); !poolEq(pl, pf.pool) {
					pf.pool = pl
					changed = true
				}
			}
		}
	}
}

func taintEq(a, b taintFact) bool {
	return a.returnsHost == b.returnsHost &&
		a.paramReturn == b.paramReturn &&
		a.paramSink == b.paramSink
}

func poolEq(a, b poolFact) bool {
	return a.returnsPooled == b.returnsPooled &&
		a.putsParam == b.putsParam &&
		a.escapesParam == b.escapesParam
}

// computeAllocFacts seeds each function's may-allocate fact from its own
// allocation sites, then propagates callee facts up the call graph.
// Sites covered by a //sovlint:ignore hotalloc directive are sanctioned:
// they do not poison the summary, and the directive counts as used (so it
// is not reported stale).
func computeAllocFacts(p *Program) {
	for _, pf := range p.funcs {
		if pf.Decl.Body == nil {
			continue
		}
		scanAllocSites(pf.Pkg, pf.Decl, func(pos token.Pos, kind allocKind, detail string) {
			position := pf.Pkg.Fset.Position(pos)
			if p.dirs.suppress(HotAlloc.Name, position.Filename, position.Line) {
				return
			}
			if !pf.alloc.may {
				pf.alloc = allocFact{may: true, why: kind.label(detail) + " at " + posLabel(pf.Pkg, pos)}
			}
		})
	}
	for _, scc := range p.sccs() {
		for changed := true; changed; {
			changed = false
			for _, pf := range scc {
				if pf.alloc.may {
					continue
				}
				for _, c := range pf.Callees {
					if c != pf && c.alloc.may {
						pf.alloc = allocFact{may: true, why: c.Name() + " → " + c.alloc.why}
						changed = true
						break
					}
				}
			}
		}
	}
}
