// Package sim is the discrete-event simulation substrate for the SoV. The
// end-to-end characterization (Fig. 10) runs on a virtual clock so that the
// published latency distribution can be reproduced deterministically,
// independent of the host machine.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events at the same time fire in insertion
// order, which keeps the simulation deterministic.
type Event struct {
	At   time.Duration
	Name string
	Fn   func()

	seq int
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine runs events on a virtual clock.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	nextSeq int
	stopped bool
	// free recycles fired Event structs so a steady-state event loop does
	// not allocate per Schedule call.
	free []*Event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule enqueues fn to run after delay. Negative delays are clamped to
// "now" so callers can schedule with already-elapsed deadlines.
func (e *Engine) Schedule(delay time.Duration, name string, fn func()) {
	if delay < 0 {
		delay = 0
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{At: e.now + delay, Name: name, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// ScheduleAt enqueues fn at an absolute virtual time (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, name string, fn func()) {
	e.Schedule(at-e.now, name, fn)
}

// Every schedules fn at a fixed period starting after one period, until the
// engine stops or the horizon passes.
func (e *Engine) Every(period time.Duration, name string, fn func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v for %s", period, name))
	}
	var tick func()
	tick = func() {
		fn()
		if !e.stopped {
			e.Schedule(period, name, tick)
		}
	}
	e.Schedule(period, name, tick)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the engine was halted by Stop since the last Run
// began. Incremental drivers (the fleet epoch loop) check it between Run
// horizons: a stopped engine has dropped its periodic events, so advancing
// it further is a no-op and the vehicle should be retired instead.
func (e *Engine) Stopped() bool { return e.stopped }

// Run processes events until the queue is empty, the horizon is exceeded, or
// Stop is called. It returns the number of events processed.
func (e *Engine) Run(horizon time.Duration) int {
	e.stopped = false
	n := 0
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].At > horizon {
			e.now = horizon
			return n
		}
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		fn := ev.Fn
		// A fired event is referenced by nobody but this loop; recycle it
		// before running fn (which may Schedule and reuse it immediately).
		ev.Fn = nil
		e.free = append(e.free, ev)
		fn()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
