package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(3*time.Millisecond, "c", func() { order = append(order, "c") })
	e.Schedule(1*time.Millisecond, "a", func() { order = append(order, "a") })
	e.Schedule(2*time.Millisecond, "b", func() { order = append(order, "b") })
	n := e.Run(time.Second)
	if n != 3 {
		t.Fatalf("events = %d", n)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, "x", func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(7*time.Millisecond, "t", func() { at = e.Now() })
	e.Run(time.Second)
	if at != 7*time.Millisecond {
		t.Fatalf("now = %v", at)
	}
}

func TestHorizonCutsOff(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2*time.Second, "late", func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want horizon", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(100*time.Millisecond, "tick", func() { count++ })
	e.Run(time.Second)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(time.Millisecond, "tick", func() {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.Run(time.Second)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Millisecond, "outer", func() {
		times = append(times, e.Now())
		e.Schedule(time.Millisecond, "inner", func() {
			times = append(times, e.Now())
		})
	})
	e.Run(time.Second)
	if len(times) != 2 || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5*time.Millisecond, "past", func() { fired = true })
	e.Run(time.Second)
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.ScheduleAt(42*time.Millisecond, "abs", func() { at = e.Now() })
	e.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Fatalf("at = %v", at)
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Every(0, "bad", func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	c1 := r.Fork()
	c2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams too correlated: %d/100 equal", same)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(10, 50, 0, 20)
		if v < 0 || v > 20 {
			t.Fatalf("out of bounds: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("non-positive lognormal draw")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(3, 5)
		if v < 3 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("p=0 returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("p=1 returned false")
		}
	}
}
