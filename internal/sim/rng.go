package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the SoV latency models need.
// Every subsystem takes an explicit *RNG so whole runs are reproducible from
// a single seed.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream; used to give each sensor or
// pipeline stage its own stream so adding a component does not perturb the
// draws of the others.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Int63())
}

// Normal draws from N(mean, std²).
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// TruncNormal draws from N(mean, std²) truncated to [lo, hi] by clamping;
// adequate for latency jitter where the tails are re-shaped anyway.
func (r *RNG) TruncNormal(mean, std, lo, hi float64) float64 {
	v := r.Normal(mean, std)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogNormal draws from a log-normal with the given location (mu) and scale
// (sigma) of the underlying normal. Latency long tails (Fig. 10a) use this.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential draws from Exp(1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Uniform draws from U[lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
