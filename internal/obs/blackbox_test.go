package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func rec(cycle int, tMs float64, blocked bool) CycleRecord {
	return CycleRecord{Cycle: cycle, TMs: tMs, TcompMs: 160, Blocked: blocked}
}

func parseDumps(t *testing.T, buf *bytes.Buffer) []Dump {
	t.Helper()
	var dumps []Dump
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var d Dump
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad dump line: %v\n%s", err, line)
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// TestFlightRecorderDeferredTrigger: a trigger raised ahead of the record
// stream must wait for the stream to reach its virtual time, so the dump
// contains exactly the cycles up to the trigger — regardless of how far the
// recording (plan) stage lags the triggering (engine) thread on the host.
func TestFlightRecorderDeferredTrigger(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 4, 0)
	for c := 1; c <= 3; c++ {
		f.Record(rec(c, float64(c-1)*100, false))
	}
	// The physics thread reports a collision at t=250 ms — between records
	// 3 (t=200) and 4 (t=300).
	f.Trigger(TriggerCollision, 250)
	if st := f.Stats(); st.Dumps != 0 {
		t.Fatalf("dump fired before the record stream caught up: %+v", st)
	}
	f.Record(rec(4, 300, false))
	st := f.Stats()
	if st.Dumps != 1 || st.ByTrigger[TriggerCollision] != 1 {
		t.Fatalf("deferred dump did not fire on catch-up: %+v", st)
	}
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dumps := parseDumps(t, &buf)
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != "collision" || d.TMs != 250 || d.Recorded != 4 {
		t.Fatalf("dump header wrong: %+v", d)
	}
	if len(d.Records) != 4 || d.Records[0].Cycle != 1 || d.Records[3].Cycle != 4 {
		t.Fatalf("dump ring wrong (want cycles 1..4 oldest-first): %+v", d.Records)
	}
}

// TestFlightRecorderRingEviction: the ring keeps only the last depth cycles.
func TestFlightRecorderRingEviction(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 3, 0)
	for c := 1; c <= 10; c++ {
		f.Record(rec(c, float64(c-1)*100, false))
	}
	f.Trigger(TriggerCollision, 900)
	f.Record(rec(11, 1000, false))
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d := parseDumps(t, &buf)[0]
	if len(d.Records) != 3 || d.Records[0].Cycle != 9 || d.Records[2].Cycle != 11 {
		t.Fatalf("ring should hold cycles 9..11, got %+v", d.Records)
	}
}

// TestFlightRecorderRateLimit: repeated triggers of one kind inside the
// virtual-time gap collapse to one dump (counted as suppressed); a different
// kind still dumps, and the same kind dumps again past the gap.
func TestFlightRecorderRateLimit(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 8, 0)
	f.Record(rec(1, 0, false))
	f.Trigger(TriggerReactive, 0)
	f.Trigger(TriggerReactive, 50)
	f.Trigger(TriggerCollision, 60)
	f.Record(rec(2, 100, false))
	f.Trigger(TriggerReactive, 1200)
	f.Record(rec(3, 1300, false))
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Dumps != 3 || st.Suppressed != 1 {
		t.Fatalf("dumps=%d suppressed=%d, want 3 and 1: %+v", st.Dumps, st.Suppressed, st)
	}
	dumps := parseDumps(t, &buf)
	if dumps[0].Trigger != "reactive-engagement" || dumps[1].Trigger != "collision" || dumps[2].Trigger != "reactive-engagement" {
		t.Fatalf("dump triggers wrong: %+v", dumps)
	}
}

// TestFlightRecorderBlockedStreak: the streak trigger is raised internally
// when the configured number of consecutive blocked cycles lands in the
// ring; a non-blocked cycle resets the streak.
func TestFlightRecorderBlockedStreak(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 8, 3)
	f.Record(rec(1, 0, true))
	f.Record(rec(2, 100, true))
	f.Record(rec(3, 200, false)) // resets
	f.Record(rec(4, 300, true))
	f.Record(rec(5, 400, true))
	if st := f.Stats(); st.Dumps != 0 {
		t.Fatalf("streak fired early: %+v", st)
	}
	f.Record(rec(6, 500, true))
	st := f.Stats()
	if st.Dumps != 1 || st.ByTrigger[TriggerBlockedStreak] != 1 {
		t.Fatalf("streak of 3 did not dump: %+v", st)
	}
	if _, err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if d := parseDumps(t, &buf)[0]; d.Trigger != "blocked-streak" || d.TMs != 500 {
		t.Fatalf("streak dump wrong: %+v", d)
	}
}

// TestFlightRecorderCloseFlushesPending: triggers still waiting at end of
// run dump against the final ring instead of being lost.
func TestFlightRecorderCloseFlushesPending(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(&buf, 4, 0)
	f.Record(rec(1, 0, false))
	f.Trigger(TriggerCollision, 9999) // beyond the last record
	n, err := f.Close()
	if err != nil || n != 1 {
		t.Fatalf("Close = %d, %v, want 1 dump", n, err)
	}
	if d := parseDumps(t, &buf)[0]; d.Trigger != "collision" || len(d.Records) != 1 {
		t.Fatalf("flushed dump wrong: %+v", d)
	}
}

// TestFlightRecorderBoundedTriggerQueue: an anomaly storm beyond the pending
// capacity counts drops instead of growing without bound.
func TestFlightRecorderBoundedTriggerQueue(t *testing.T) {
	f := NewFlightRecorder(&bytes.Buffer{}, 4, 0)
	for i := 0; i < maxPending+5; i++ {
		f.Trigger(TriggerReactive, float64(i))
	}
	if st := f.Stats(); st.DroppedTriggers != 5 {
		t.Fatalf("dropped = %d, want 5", st.DroppedTriggers)
	}
}
