package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fillRegistry builds a registry with every instrument kind in both classes,
// registered in the given order, holding fixed values. Two registries built
// with different orders must render identical bytes.
func fillRegistry(reverse bool) *Registry {
	r := NewRegistry()
	build := []func(){
		func() { r.Counter("sov_cycles_total", "control cycles captured", ClassVirtual).Add(300) },
		func() { r.Gauge("sov_distance_m", "odometer distance covered", ClassVirtual).Set(168.125) },
		func() {
			h := r.Histogram("sov_tcomp_ms", "per-cycle computing latency (ms)", ClassVirtual, 0, 400, 4)
			for _, v := range []float64{150, 160, 170, 250, 399.9, 450 /* clamped */, -5 /* clamped */} {
				h.Observe(v)
			}
		},
		func() { r.Counter("sov_pipe_stalls_total", "queue-full stalls", ClassHost).Add(2) },
		func() { r.Gauge("sov_pipe_busy_ms", "stage busy wall-clock", ClassHost).Set(12.5) },
	}
	if reverse {
		for i := len(build) - 1; i >= 0; i-- {
			build[i]()
		}
	} else {
		for _, f := range build {
			f()
		}
	}
	return r
}

// TestTextExpositionGolden pins the exposition bytes: sections ordered
// virtual-then-host, names alphabetical within a section, HELP/TYPE
// comments, cumulative histogram buckets with a +Inf terminal.
func TestTextExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fillRegistry(false).WriteText(&buf, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTextExpositionOrderIndependent: the bytes depend only on the metric
// values, never on registration order.
func TestTextExpositionOrderIndependent(t *testing.T) {
	var a, b bytes.Buffer
	if err := fillRegistry(false).WriteText(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := fillRegistry(true).WriteText(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exposition bytes depend on registration order")
	}
}

// TestHostSectionExcluded: includeHost=false must drop every host-class
// metric and the host section header — the determinism-contract view.
func TestHostSectionExcluded(t *testing.T) {
	var buf bytes.Buffer
	if err := fillRegistry(false).WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if bytes.Contains(buf.Bytes(), []byte("sov_pipe")) {
		t.Fatalf("host metrics leaked into virtual-only exposition:\n%s", out)
	}
	if bytes.Contains(buf.Bytes(), []byte(headerHost)) {
		t.Fatal("host section header present in virtual-only exposition")
	}
}

// TestHistogramClampsAndCounts: out-of-range observations land in the edge
// bins; count and sum track every observation.
func TestHistogramClampsAndCounts(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", ClassVirtual, 0, 10, 2)
	for _, v := range []float64{-1, 0, 4.9, 5, 9.9, 10, 11} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if want := -1 + 0 + 4.9 + 5 + 9.9 + 10 + 11; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	counts, _, _ := h.snapshot()
	if counts[0] != 3 || counts[1] != 4 {
		t.Fatalf("bins = %v, want [3 4]", counts)
	}
}

// TestWriteJSONValidAndInfSafe: the JSON snapshot must parse, preserve the
// (class, name) order, and map non-finite gauges (an untouched min-clearance
// gauge is +Inf) to null instead of emitting invalid JSON.
func TestWriteJSONValidAndInfSafe(t *testing.T) {
	r := fillRegistry(false)
	r.Gauge("sov_min_clearance_m", "closest approach", ClassVirtual).Set(math.Inf(1))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	var snap []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(snap) != 6 {
		t.Fatalf("got %d metrics, want 6", len(snap))
	}
	for _, m := range snap {
		if m["name"] == "sov_min_clearance_m" {
			if v, ok := m["value"]; !ok || v != nil {
				t.Fatalf("+Inf gauge rendered as %v, want null", v)
			}
		}
	}
	// Virtual section leads: the first entry must be virtual-class.
	if snap[0]["class"] != "virtual" || snap[len(snap)-1]["class"] != "host" {
		t.Fatalf("class ordering broken: first=%v last=%v", snap[0]["class"], snap[len(snap)-1]["class"])
	}
}

// TestHistogramQuantiles: the fixed-bin quantile estimator interpolates
// inside the covering bin, clamps to the range, returns NaN when empty,
// and shows up in both expositions.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "test", ClassVirtual, 0, 100, 10)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// 100 observations, uniform one per unit in [0, 100): bin i holds 10.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0.50, 50}, // rank 50 = end of bin 4: 40 + 10*(50-40)/10
		{0.95, 95},
		{0.99, 99},
		{1.00, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// A spiked distribution: everything in one bin interpolates within it.
	r2 := NewRegistry()
	h2 := r2.Histogram("spike", "test", ClassVirtual, 0, 10, 10)
	for i := 0; i < 4; i++ {
		h2.Observe(3.5)
	}
	if got := h2.Quantile(0.5); got < 3 || got > 4 {
		t.Fatalf("spike p50 = %v, want within bin [3,4)", got)
	}

	var text bytes.Buffer
	if err := r.WriteText(&text, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`q{quantile="0.5"} 50`, `q{quantile="0.95"} 95`, `q{quantile="0.99"} 99`} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Fatalf("text exposition missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js, false); err != nil {
		t.Fatal(err)
	}
	var snap []map[string]any
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if p95, ok := snap[0]["p95"].(float64); !ok || math.Abs(p95-95) > 1e-9 {
		t.Fatalf("json p95 = %v", snap[0]["p95"])
	}
	// Empty histograms render null percentiles, not NaN (invalid JSON).
	r3 := NewRegistry()
	r3.Histogram("empty", "test", ClassVirtual, 0, 1, 2)
	var js3 bytes.Buffer
	if err := r3.WriteJSON(&js3, false); err != nil {
		t.Fatal(err)
	}
	var snap3 []map[string]any
	if err := json.Unmarshal(js3.Bytes(), &snap3); err != nil {
		t.Fatalf("empty-histogram snapshot invalid: %v\n%s", err, js3.String())
	}
	if v, ok := snap3[0]["p50"]; !ok || v != nil {
		t.Fatalf("empty p50 = %v, want null", v)
	}
}

// TestRegistryRejectsBadRegistrations: duplicate and malformed names panic
// at setup time, not silently collide at exposition time.
func TestRegistryRejectsBadRegistrations(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup", "first", ClassVirtual)
	expectPanic("duplicate name", func() { r.Gauge("dup", "second", ClassVirtual) })
	expectPanic("uppercase name", func() { r.Counter("BadName", "x", ClassVirtual) })
	expectPanic("empty name", func() { r.Counter("", "x", ClassVirtual) })
	expectPanic("zero-bin histogram", func() { r.Histogram("h", "x", ClassVirtual, 0, 1, 0) })
	expectPanic("inverted range", func() { r.Histogram("h2", "x", ClassVirtual, 5, 1, 4) })
}
