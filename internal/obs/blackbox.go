package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// Trigger identifies why a flight-recorder dump fired.
type Trigger uint8

const (
	// TriggerCollision fires when the vehicle first contacts an obstacle.
	TriggerCollision Trigger = iota
	// TriggerReactive fires when the radar/sonar safety path engages.
	TriggerReactive
	// TriggerBlockedStreak fires when consecutive planning cycles report
	// blocked (the planner cannot find a feasible trajectory).
	TriggerBlockedStreak

	numTriggers
)

func (t Trigger) String() string {
	switch t {
	case TriggerCollision:
		return "collision"
	case TriggerReactive:
		return "reactive-engagement"
	case TriggerBlockedStreak:
		return "blocked-streak"
	default:
		return "unknown"
	}
}

// CycleRecord is one control cycle's condensed record — what the ring
// retains for forensics. Field names match the JSONL trace so offline
// tooling can share parsers.
type CycleRecord struct {
	Cycle        int     `json:"cycle"`
	TMs          float64 `json:"t_ms"`
	X            float64 `json:"x"`
	Y            float64 `json:"y"`
	Speed        float64 `json:"v"`
	SensingMs    float64 `json:"sensing_ms"`
	PerceptionMs float64 `json:"perception_ms"`
	PlanningMs   float64 `json:"planning_ms"`
	TcompMs      float64 `json:"tcomp_ms"`
	Objects      int     `json:"objects"`
	Blocked      bool    `json:"blocked,omitempty"`
	Reactive     bool    `json:"reactive,omitempty"`
	InFlight     int     `json:"inflight"`
}

// Dump is one flight-recorder dump: the trigger, its virtual time, and the
// ring contents oldest-first at the dump instant. Dumps serialize as JSON
// lines on the recorder's sink.
type Dump struct {
	Seq      int           `json:"seq"`
	Trigger  string        `json:"trigger"`
	TMs      float64       `json:"t_ms"`
	Recorded int64         `json:"cycles_recorded"`
	Records  []CycleRecord `json:"records"`
}

// pendingTrigger is a trigger waiting for the record stream to catch up to
// its virtual time.
type pendingTrigger struct {
	tr  Trigger
	tMs float64
}

// maxPending bounds the deferred-trigger queue; anomaly storms beyond it
// are counted as dropped rather than queued unboundedly.
const maxPending = 16

// BoxStats summarizes a recorder's activity.
type BoxStats struct {
	Recorded        int64
	Dumps           int
	Suppressed      int
	DroppedTriggers int
	ByTrigger       [numTriggers]int64
}

// FlightRecorder keeps a fixed ring of the last N cycle records and dumps
// it when an anomaly trigger fires. Record is allocation-free; dumps (rare
// by construction) marshal through encoding/json.
//
// Determinism: triggers raised from the physics or reactive paths carry a
// virtual timestamp and are deferred until the cycle-record stream reaches
// that time, so a dump's content depends only on virtual-time ordering —
// never on how far the pipelined plan stage happens to lag on the host.
// Dump bytes are therefore byte-identical across worker counts and
// control-loop modes.
type FlightRecorder struct {
	mu   sync.Mutex
	w    io.Writer
	ring []CycleRecord

	total    int64
	streak   int
	streakAt int
	pending  []pendingTrigger
	nPending int

	// lastDumpMs rate-limits per-trigger dumps in virtual time so an
	// anomaly burst (a collision followed by repeated reactive engagements)
	// produces one dump per kind per window, not hundreds.
	lastDumpMs [numTriggers]float64

	stats BoxStats
	err   error
}

// dumpGapMs is the per-trigger virtual-time rate limit between dumps.
const dumpGapMs = 1000

// NewFlightRecorder returns a recorder ringing the last depth cycles
// (minimum 1) and dumping to w. blockedStreak sets how many consecutive
// blocked cycles raise TriggerBlockedStreak; 0 disables the streak trigger.
func NewFlightRecorder(w io.Writer, depth, blockedStreak int) *FlightRecorder {
	if depth < 1 {
		depth = 1
	}
	f := &FlightRecorder{
		w:        w,
		ring:     make([]CycleRecord, depth),
		streakAt: blockedStreak,
		pending:  make([]pendingTrigger, maxPending),
	}
	for i := range f.lastDumpMs {
		f.lastDumpMs[i] = math.Inf(-1)
	}
	return f
}

// Trigger raises an anomaly at virtual time tMs. The dump is deferred to
// the next Record whose capture time reaches tMs (or to Close), keeping the
// dump content independent of host scheduling. Safe to call from a
// different goroutine than Record.
func (f *FlightRecorder) Trigger(tr Trigger, tMs float64) {
	f.mu.Lock()
	if f.nPending == maxPending {
		f.stats.DroppedTriggers++
	} else {
		f.pending[f.nPending] = pendingTrigger{tr: tr, tMs: tMs}
		f.nPending++
	}
	f.mu.Unlock()
}

// Record appends one cycle record to the ring, fires any pending triggers
// the stream has caught up with, and maintains the blocked-streak trigger.
//
//sov:hotpath
func (f *FlightRecorder) Record(rec CycleRecord) {
	f.mu.Lock()
	f.ring[f.total%int64(len(f.ring))] = rec
	f.total++
	f.stats.Recorded++
	if f.streakAt > 0 {
		if rec.Blocked {
			f.streak++
			if f.streak == f.streakAt {
				f.dumpLocked(TriggerBlockedStreak, rec.TMs)
			}
		} else {
			f.streak = 0
		}
	}
	n := 0
	for i := 0; i < f.nPending; i++ {
		p := f.pending[i]
		if p.tMs <= rec.TMs {
			f.dumpLocked(p.tr, p.tMs)
		} else {
			f.pending[n] = p
			n++
		}
	}
	f.nPending = n
	f.mu.Unlock()
}

// dumpLocked writes one dump (rate-limited per trigger kind). Caller holds
// the mutex. This is the cold path: it allocates freely.
func (f *FlightRecorder) dumpLocked(tr Trigger, tMs float64) {
	f.stats.ByTrigger[tr]++
	if tMs-f.lastDumpMs[tr] < dumpGapMs {
		f.stats.Suppressed++
		return
	}
	f.lastDumpMs[tr] = tMs
	n := f.total
	depth := int64(len(f.ring))
	if n > depth {
		n = depth
	}
	//sovlint:ignore hotalloc trigger-dump path; runs once per incident, not per cycle
	records := make([]CycleRecord, 0, n)
	start := f.total - n
	for i := int64(0); i < n; i++ {
		records = append(records, f.ring[(start+i)%depth])
	}
	f.stats.Dumps++
	d := Dump{
		Seq:      f.stats.Dumps,
		Trigger:  tr.String(),
		TMs:      tMs,
		Recorded: f.total,
		Records:  records,
	}
	//sovlint:ignore hotalloc trigger-dump path; one JSON encode per incident, not per cycle
	b, err := json.Marshal(d)
	if err != nil {
		if f.err == nil {
			f.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := f.w.Write(b); err != nil && f.err == nil {
		f.err = err
	}
}

// Close flushes triggers still pending at end of run (each dumps against
// the final ring) and returns the dump count and first error.
func (f *FlightRecorder) Close() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < f.nPending; i++ {
		f.dumpLocked(f.pending[i].tr, f.pending[i].tMs)
	}
	f.nPending = 0
	return f.stats.Dumps, f.err
}

// Stats returns the recorder's activity counters.
func (f *FlightRecorder) Stats() BoxStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
