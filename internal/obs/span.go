package obs

import (
	"io"
	"sort"
	"strconv"
	"time"
)

// Process IDs of the two trace tracks. Virtual-time spans derive only from
// the simulation clock and latency draws, so their byte content is part of
// the determinism contract; host spans carry wall-clock diagnostics and are
// kept on their own clearly labeled process.
const (
	PIDVirtual = 1
	PIDHost    = 2
)

// spanEvent is one buffered trace event. Name and parent must be static
// strings (package constants), so buffering a span never allocates beyond
// amortized slice growth.
type spanEvent struct {
	pid    uint8
	tid    uint8
	cycle  int32
	name   string
	parent string
	ts     time.Duration
	dur    time.Duration
}

// threadMeta names one (pid, tid) lane for the viewer.
type threadMeta struct {
	pid  uint8
	tid  uint8
	name string
}

// SpanWriter records spans and exports them as Chrome trace_event JSON
// (the JSON array format Perfetto and chrome://tracing load). Events are
// buffered and sorted by (pid, tid, ts) at Close, so every track's
// timestamps are monotonic in the output no matter how cycle latencies
// overlap. Span and its callers must not retain dynamic strings: names are
// package constants, which keeps the steady-state record path free of
// per-span allocations.
//
// The writer is safe for single-goroutine use (the SoV plan stage); Close
// must follow the last Span.
type SpanWriter struct {
	w         io.Writer
	events    []spanEvent
	threads   []threadMeta
	processes []threadMeta // tid unused
	buf       []byte
	closed    bool
}

// NewSpanWriter buffers spans for the given sink.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{w: w}
}

// DeclareProcess names a process track (for example "sov virtual time").
// Call during setup, before the first Span on that pid.
func (sw *SpanWriter) DeclareProcess(pid int, name string) {
	sw.processes = append(sw.processes, threadMeta{pid: uint8(pid), name: name})
}

// DeclareThread names one (pid, tid) lane. Call during setup.
func (sw *SpanWriter) DeclareThread(pid, tid int, name string) {
	sw.threads = append(sw.threads, threadMeta{pid: uint8(pid), tid: uint8(tid), name: name})
}

// Span buffers one complete ("ph":"X") event. name and parent must be
// static strings without JSON metacharacters; parent is the causally
// preceding span's name ("" for roots) and lands in args.parent alongside
// args.cycle.
//
//sov:hotpath
func (sw *SpanWriter) Span(pid, tid int, name, parent string, cycle int, start, dur time.Duration) {
	sw.events = append(sw.events, spanEvent{
		pid:    uint8(pid),
		tid:    uint8(tid),
		cycle:  int32(cycle),
		name:   name,
		parent: parent,
		ts:     start,
		dur:    dur,
	})
}

// N returns the number of buffered span events (metadata excluded).
func (sw *SpanWriter) N() int { return len(sw.events) }

// appendUS renders a duration as trace_event microseconds with fixed
// 3-decimal precision (nanosecond resolution, deterministic formatting).
func appendUS(b []byte, d time.Duration) []byte {
	return strconv.AppendFloat(b, float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// Close sorts the buffered events by (pid, tid, ts, insertion order),
// writes the JSON array — one event per line — and returns the number of
// span events written and the first write error.
func (sw *SpanWriter) Close() (int, error) {
	if sw.closed {
		return len(sw.events), nil
	}
	sw.closed = true
	sort.SliceStable(sw.events, func(i, j int) bool {
		a, b := sw.events[i], sw.events[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		return a.ts < b.ts
	})

	b := append(sw.buf[:0], "[\n"...)
	wrote := false
	line := func() {
		if wrote {
			b = append(b, ",\n"...)
		}
		wrote = true
	}
	for _, p := range sw.processes {
		line()
		b = append(b, `{"ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(p.pid), 10)
		b = append(b, `,"name":"process_name","args":{"name":"`...)
		b = append(b, p.name...)
		b = append(b, `"}}`...)
	}
	for _, t := range sw.threads {
		line()
		b = append(b, `{"ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(t.pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(t.tid), 10)
		b = append(b, `,"name":"thread_name","args":{"name":"`...)
		b = append(b, t.name...)
		b = append(b, `"}}`...)
	}
	for _, ev := range sw.events {
		line()
		b = append(b, `{"ph":"X","pid":`...)
		b = strconv.AppendInt(b, int64(ev.pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(ev.tid), 10)
		b = append(b, `,"name":"`...)
		b = append(b, ev.name...)
		b = append(b, `","ts":`...)
		b = appendUS(b, ev.ts)
		b = append(b, `,"dur":`...)
		b = appendUS(b, ev.dur)
		b = append(b, `,"args":{"cycle":`...)
		b = strconv.AppendInt(b, int64(ev.cycle), 10)
		if ev.parent != "" {
			b = append(b, `,"parent":"`...)
			b = append(b, ev.parent...)
			b = append(b, '"')
		}
		b = append(b, `}}`...)
	}
	b = append(b, "\n]\n"...)
	sw.buf = b
	_, err := sw.w.Write(b)
	return len(sw.events), err
}
