package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TriggerSummary is one row of the blackbox triage table: every dump of a
// trigger kind collapsed to a count and its first/last virtual time.
type TriggerSummary struct {
	Trigger      string
	Dumps        int
	FirstTMs     float64
	LastTMs      float64
	CyclesCaught int // total ring records across the kind's dumps
}

// BlackboxSummary is the offline triage of a flight-recorder archive
// (the JSONL stream obs.FlightRecorder writes): per-trigger counts and
// time spans, oldest trigger first. Malformed lines are skipped and
// counted, never fatal, matching core.SummarizeTrace — a truncated upload
// must not hide the rest of the archive.
type BlackboxSummary struct {
	Dumps          int
	MalformedLines int
	ByTrigger      []TriggerSummary
}

// SummarizeBlackbox scans a flight-recorder JSONL stream and builds the
// triage table.
func SummarizeBlackbox(r io.Reader) (*BlackboxSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 16<<20) // dumps carry whole rings
	sum := &BlackboxSummary{}
	rows := map[string]*TriggerSummary{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d Dump
		if err := json.Unmarshal(line, &d); err != nil || d.Trigger == "" {
			sum.MalformedLines++
			continue
		}
		sum.Dumps++
		row := rows[d.Trigger]
		if row == nil {
			row = &TriggerSummary{Trigger: d.Trigger, FirstTMs: d.TMs, LastTMs: d.TMs}
			rows[d.Trigger] = row
		}
		row.Dumps++
		if d.TMs < row.FirstTMs {
			row.FirstTMs = d.TMs
		}
		if d.TMs > row.LastTMs {
			row.LastTMs = d.TMs
		}
		row.CyclesCaught += len(d.Records)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sum.ByTrigger = append(sum.ByTrigger, *rows[name])
	}
	sort.SliceStable(sum.ByTrigger, func(i, j int) bool {
		return sum.ByTrigger[i].FirstTMs < sum.ByTrigger[j].FirstTMs
	})
	return sum, nil
}

// Render formats the triage table.
func (s *BlackboxSummary) Render() string {
	if s.Dumps == 0 {
		out := "no flight-recorder dumps\n"
		if s.MalformedLines > 0 {
			out += fmt.Sprintf("malformed lines skipped: %d\n", s.MalformedLines)
		}
		return out
	}
	out := fmt.Sprintf("flight-recorder dumps: %d\n", s.Dumps)
	if s.MalformedLines > 0 {
		out += fmt.Sprintf("malformed lines skipped: %d\n", s.MalformedLines)
	}
	out += fmt.Sprintf("%-22s %6s %12s %12s %8s\n", "trigger", "dumps", "first (ms)", "last (ms)", "cycles")
	for _, row := range s.ByTrigger {
		out += fmt.Sprintf("%-22s %6d %12.1f %12.1f %8d\n",
			row.Trigger, row.Dumps, row.FirstTMs, row.LastTMs, row.CyclesCaught)
	}
	return out
}
